#include "subc/algorithms/classic_consensus.hpp"

namespace subc {

namespace {
void check_role(int role) {
  if (role != 0 && role != 1) {
    throw SimError("2-consensus role must be 0 or 1");
  }
}
}  // namespace

Value consensus2_from_swap(Context& ctx, TwoConsensusShared& shared,
                           SwapRegister& swap, int role, Value v) {
  check_role(role);
  shared.announce[role].write(ctx, v);
  const Value previous = swap.swap(ctx, role);
  if (previous == kBottom) {
    return v;  // first to swap: winner
  }
  return shared.announce[static_cast<int>(previous)].read(ctx);
}

Value consensus2_from_tas(Context& ctx, TwoConsensusShared& shared,
                          TestAndSet& tas, int role, Value v) {
  check_role(role);
  shared.announce[role].write(ctx, v);
  if (!tas.test_and_set(ctx)) {
    return v;  // winner
  }
  return shared.announce[1 - role].read(ctx);
}

Value consensus2_from_fetch_add(Context& ctx, TwoConsensusShared& shared,
                                FetchAdd& fa, int role, Value v) {
  check_role(role);
  shared.announce[role].write(ctx, v);
  if (fa.fetch_add(ctx, 1) == 0) {
    return v;  // winner
  }
  return shared.announce[1 - role].read(ctx);
}

Value consensus2_from_queue(Context& ctx, TwoConsensusShared& shared,
                            FifoQueue& queue, int role, Value v) {
  check_role(role);
  shared.announce[role].write(ctx, v);
  if (queue.dequeue(ctx) != kBottom) {
    return v;  // got the pre-loaded winner token
  }
  return shared.announce[1 - role].read(ctx);
}

Value consensus_from_object(Context& ctx, ConsensusObject& object, Value v) {
  return object.propose(ctx, v);
}

Value consensus_from_onk(Context& ctx, OnkObject& object, Value v) {
  return object.propose(ctx, /*component=*/0, v);
}

Value consensus2_attempt_from_wrn(Context& ctx, WrnObject& wrn, int role,
                                  Value v) {
  check_role(role);
  const Value t = wrn.wrn(ctx, role, v);
  return t != kBottom ? t : v;
}

Value consensus_attempt_from_gac(Context& ctx, GacObject& gac, Value v) {
  return gac.propose(ctx, v);
}

}  // namespace subc
