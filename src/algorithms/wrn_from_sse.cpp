#include "subc/algorithms/wrn_from_sse.hpp"

#include "subc/runtime/stepper.hpp"

namespace subc {

namespace {
constexpr Value kOpened = 0;
constexpr Value kClosed = 1;
}  // namespace

WrnFromSse::WrnFromSse(int k, Options options)
    : k_(k), options_(options), sse_(k, k - 1), doorway_(kOpened) {
  if (k < 3) {
    throw SimError("Algorithm 5 requires k >= 3");
  }
  if (options.use_register_snapshots) {
    r_regs_ = std::make_unique<SnapshotFromRegisters<Value>>(k, kBottom);
    o_regs_ = std::make_unique<SnapshotFromRegisters<View>>(k, View{});
  } else {
    r_atomic_ = std::make_unique<AtomicSnapshot<Value>>(k, kBottom);
    o_atomic_ = std::make_unique<AtomicSnapshot<View>>(k, View{});
  }
}

WrnFromSse::View WrnFromSse::snapshot_r(Context& ctx) {
  return r_atomic_ ? r_atomic_->scan(ctx) : r_regs_->scan(ctx);
}

void WrnFromSse::publish_view(Context& ctx, int index, View view) {
  if (o_atomic_) {
    o_atomic_->update(ctx, index, std::move(view));
  } else {
    o_regs_->update(ctx, index, std::move(view));
  }
}

std::vector<WrnFromSse::View> WrnFromSse::snapshot_o(Context& ctx) {
  return o_atomic_ ? o_atomic_->scan(ctx) : o_regs_->scan(ctx);
}

Value WrnFromSse::one_shot_wrn(Context& ctx, int index, Value v,
                               History* history) {
  if (index < 0 || index >= k_) {
    throw SimError("1sWRN index out of range");
  }
  if (v == kBottom) {
    throw SimError("1sWRN(i, ⊥) is illegal");
  }
  std::size_t handle = 0;
  if (history != nullptr) {
    handle = history->invoke(ctx.pid(), {static_cast<Value>(index), v});
  }
  const Value result = run_operation(ctx, index, v);
  if (history != nullptr) {
    history->respond(handle, {result});
  }
  return result;
}

Value WrnFromSse::run_operation(Context& ctx, int index, Value v) {
  // Line 6: R[i] ← v (announce at index i).
  if (r_atomic_) {
    r_atomic_->update(ctx, index, v);
  } else {
    r_regs_->update(ctx, index, v);
  }

  // Lines 7–12: the doorway and the strong set election. Without the
  // doorway (§5 ablation) every invocation runs the election directly.
  if (!options_.use_doorway || doorway_.read(ctx) == kOpened) {
    if (options_.use_doorway) {
      doorway_.write(ctx, kClosed);
    }
    if (sse_.invoke(ctx, static_cast<Value>(index)) ==
        static_cast<Value>(index)) {
      return kBottom;  // election winner: first linearized operation
    }
  }

  // Line 13: SR ← Snapshot(R).
  const View sr = snapshot_r(ctx);
  const auto succ = static_cast<std::size_t>((index + 1) % k_);
  if (options_.use_view_check) {
    // Line 14: O[i] ← SR.
    publish_view(ctx, index, sr);
    // Line 15: SO ← Snapshot(O).
    const std::vector<View> so = snapshot_o(ctx);

    // Lines 16–20: if some w_j saw our value but not our successor's, we
    // started before our successor finished — return ⊥.
    for (int j = 0; j < k_; ++j) {
      const View& seen = so[static_cast<std::size_t>(j)];
      if (seen.empty()) {
        continue;  // O[j] = ⊥: w_j published no view yet
      }
      if (seen[static_cast<std::size_t>(index)] == v &&
          seen[succ] == kBottom) {
        return kBottom;
      }
    }
  }

  // Line 21: return SR[(i+1) mod k].
  return sr[succ];
}

void WrnFromSse::SteppedOp::complete(StepContext& ctx, Value result) {
  if (history != nullptr) {
    history->respond(handle_, {result});
  }
  if (out != nullptr) {
    *out = result;
  }
  ctx.finish();
}

// The fiber body (`run_operation` above) with each sched_point turned into a
// SUBC_STEP_POINT; line numbering in comments as there. Same announcement
// order = same lazy ObjectId assignment = bit-identical exploration.
void WrnFromSse::SteppedOp::step(StepContext& ctx) {
  WrnFromSse& w = *object;
  std::size_t succ = 0;
  SUBC_STEP_BEGIN(ctx);
  if (index < 0 || index >= w.k_) {
    throw SimError("1sWRN index out of range");
  }
  if (value == kBottom) {
    throw SimError("1sWRN(i, ⊥) is illegal");
  }
  if (w.r_atomic_ == nullptr) {
    // Register-built snapshots scan cell-by-cell inside a helper call — the
    // body does not flatten; host it on the fiber engine instead.
    throw SimError(
        "stepped Algorithm 5 requires atomic snapshots "
        "(use_register_snapshots worlds stay on the fiber engine)");
  }
  if (history != nullptr) {
    handle_ = history->invoke(ctx.pid(), {static_cast<Value>(index), value});
  }

  // Line 6: R[i] ← v (announce at index i).
  SUBC_STEP_POINT(ctx, w.r_atomic_->oid(), AccessKind::kWrite);
  w.r_atomic_->step_update(index, value);

  // Lines 7–12: the doorway and the strong set election.
  if (w.options_.use_doorway) {
    SUBC_STEP_POINT(ctx, w.doorway_.oid(), AccessKind::kRead);
    door_ = w.doorway_.step_read(ctx);
  }
  if (!w.options_.use_doorway || door_ == kOpened) {
    if (w.options_.use_doorway) {
      SUBC_STEP_POINT(ctx, w.doorway_.oid(), AccessKind::kWrite);
      w.doorway_.step_write(ctx, kClosed);
    }
    SUBC_STEP_POINT(ctx, w.sse_.oid(), AccessKind::kChoose);
    SUBC_STEP_CALL(ctx, elected_,
                   w.sse_.step_invoke(ctx, static_cast<Value>(index)));
    if (elected_ == static_cast<Value>(index)) {
      complete(ctx, kBottom);  // election winner: first linearized op
      return;
    }
  }

  // Line 13: SR ← Snapshot(R).
  SUBC_STEP_POINT(ctx, w.r_atomic_->oid(), AccessKind::kRead);
  sr_ = w.r_atomic_->step_scan();
  succ = static_cast<std::size_t>((index + 1) % w.k_);
  if (w.options_.use_view_check) {
    // Line 14: O[i] ← SR.
    SUBC_STEP_POINT(ctx, w.o_atomic_->oid(), AccessKind::kWrite);
    w.o_atomic_->step_update(index, sr_);
    // Line 15: SO ← Snapshot(O).
    SUBC_STEP_POINT(ctx, w.o_atomic_->oid(), AccessKind::kRead);
    so_ = w.o_atomic_->step_scan();

    // Lines 16–20: pure computation, no further steps.
    succ = static_cast<std::size_t>((index + 1) % w.k_);
    for (int j = 0; j < w.k_; ++j) {
      const View& seen = so_[static_cast<std::size_t>(j)];
      if (seen.empty()) {
        continue;  // O[j] = ⊥: w_j published no view yet
      }
      if (seen[static_cast<std::size_t>(index)] == value &&
          seen[succ] == kBottom) {
        complete(ctx, kBottom);
        return;
      }
    }
  }

  // Line 21: return SR[(i+1) mod k].
  complete(ctx, sr_[succ]);
  return;
  SUBC_STEP_END(ctx);
}

}  // namespace subc
