#include "subc/algorithms/relaxed_wrn.hpp"

namespace subc {

RelaxedWrn::RelaxedWrn(int k)
    : inner_(k), counters_(static_cast<std::size_t>(k)) {
  if (k < 2) {
    throw SimError("RelaxedWrn requires k >= 2");
  }
}

Value RelaxedWrn::rlx_wrn(Context& ctx, int index, Value v) {
  if (index < 0 || index >= k()) {
    throw SimError("RlxWRN index out of range");
  }
  if (v == kBottom) {
    throw SimError("RlxWRN(i, ⊥) is illegal");
  }
  Counter& counter = counters_[static_cast<std::size_t>(index)];
  counter.increment(ctx);
  const Value c = counter.read(ctx);
  if (c == 1) {
    return inner_.wrn(ctx, index, v);
  }
  return kBottom;
}

}  // namespace subc
