#include "subc/algorithms/partition_set_consensus.hpp"

namespace subc {

PartitionSetConsensus::PartitionSetConsensus(int n, int m, int j)
    : n_(n), m_(m), j_(j) {
  if (n < 1) {
    throw SimError("PartitionSetConsensus requires n >= 1");
  }
  const int groups = (n + m - 1) / m;
  groups_.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    groups_.push_back(std::make_unique<SetConsensusObject>(m, j));
  }
}

int PartitionSetConsensus::agreement() const {
  return sc_partition_agreement(n_, m_, j_);
}

Value PartitionSetConsensus::propose(Context& ctx, int id, Value v) {
  if (id < 0 || id >= n_) {
    throw SimError("PartitionSetConsensus: id out of range");
  }
  return groups_[static_cast<std::size_t>(id / m_)]->propose(ctx, v);
}

}  // namespace subc
