#include "subc/algorithms/set_election.hpp"

// Header-only constructions; this translation unit pins their vtable-free
// symbols and verifies the header is self-contained.
