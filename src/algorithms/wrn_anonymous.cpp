#include "subc/algorithms/wrn_anonymous.hpp"

#include <algorithm>

namespace subc {

namespace {

/// All maps {0..2k−2} → {0..k−1}: k^(2k−1) of them.
std::vector<std::vector<int>> full_family(int k) {
  const int domain = 2 * k - 1;
  std::size_t total = 1;
  for (int d = 0; d < domain; ++d) {
    total *= static_cast<std::size_t>(k);
    if (total > 2'000'000) {
      throw SimError("full function family too large; use kCovering");
    }
  }
  std::vector<std::vector<int>> maps;
  maps.reserve(total);
  std::vector<int> f(static_cast<std::size_t>(domain), 0);
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t rest = code;
    for (int d = 0; d < domain; ++d) {
      f[static_cast<std::size_t>(d)] = static_cast<int>(rest % k);
      rest /= static_cast<std::size_t>(k);
    }
    maps.push_back(f);
  }
  return maps;
}

/// One onto-map per k-subset R of {0..2k−2}: the members of R map, in
/// increasing order, to 0..k−1; everything else maps to 0.
std::vector<std::vector<int>> covering_family(int k) {
  const int domain = 2 * k - 1;
  std::vector<std::vector<int>> maps;
  std::vector<int> subset(static_cast<std::size_t>(k));
  // Enumerate k-combinations of {0..domain-1} in lexicographic order.
  for (int i = 0; i < k; ++i) {
    subset[static_cast<std::size_t>(i)] = i;
  }
  for (;;) {
    std::vector<int> f(static_cast<std::size_t>(domain), 0);
    for (int r = 0; r < k; ++r) {
      f[static_cast<std::size_t>(subset[static_cast<std::size_t>(r)])] = r;
    }
    maps.push_back(std::move(f));
    // Next combination.
    int i = k - 1;
    while (i >= 0 && subset[static_cast<std::size_t>(i)] == domain - k + i) {
      --i;
    }
    if (i < 0) {
      break;
    }
    ++subset[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      subset[static_cast<std::size_t>(j)] =
          subset[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
  return maps;
}

}  // namespace

std::vector<std::vector<int>> make_function_family(int k,
                                                   FunctionFamily kind) {
  if (k < 3) {
    throw SimError("function family defined for k >= 3");
  }
  return kind == FunctionFamily::kFull ? full_family(k) : covering_family(k);
}

AnonymousSetConsensus::AnonymousSetConsensus(int k, int slots,
                                             FunctionFamily family,
                                             bool relaxed)
    : k_(k), renaming_(slots), maps_(make_function_family(k, family)) {
  if (relaxed) {
    relaxed_objects_.reserve(maps_.size());
    for (std::size_t l = 0; l < maps_.size(); ++l) {
      relaxed_objects_.push_back(std::make_unique<RelaxedWrn>(k));
    }
  } else {
    plain_objects_.reserve(maps_.size());
    for (std::size_t l = 0; l < maps_.size(); ++l) {
      plain_objects_.push_back(std::make_unique<WrnObject>(k));
    }
  }
}

Value AnonymousSetConsensus::propose(Context& ctx, int slot, Value id,
                                     Value v) {
  const int j = renaming_.rename(ctx, slot, id);
  if (j < 0 || j > 2 * k_ - 2) {
    throw SpecViolation("renaming produced out-of-range name " +
                        std::to_string(j) + " (more than k participants?)");
  }
  for (std::size_t l = 0; l < maps_.size(); ++l) {
    const int i = maps_[l][static_cast<std::size_t>(j)];
    const Value t = relaxed_objects_.empty()
                        ? plain_objects_[l]->wrn(ctx, i, v)
                        : relaxed_objects_[l]->rlx_wrn(ctx, i, v);
    if (t != kBottom) {
      return t;
    }
  }
  return v;
}

}  // namespace subc
