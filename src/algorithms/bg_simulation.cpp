#include "subc/algorithms/bg_simulation.hpp"

#include <algorithm>

namespace subc {

BgSimulation::BgSimulation(int simulators, int n, int k)
    : m_(simulators), n_(n), k_(k), sim_memory_(std::max(n, 1), kBottom) {
  if (simulators < 1 || n < 1 || k < 1 || k > n) {
    throw SimError("BgSimulation requires simulators >= 1, 1 <= k <= n");
  }
  // Round bound: agreed views are monotone across rounds (each round's
  // winning scan happens after its proposer resolved the previous round),
  // so a simulated process needs at most ~n content-growing rounds plus
  // slack for rounds an adversary keeps content-stable by stalling other
  // simulators between their scan and propose steps. The generous bound
  // below has headroom for the adversarial schedules the tests drive; a
  // genuinely blocked simulation (too many crashes) is reported through
  // the iteration budget instead.
  max_rounds_ = 4 * (n + simulators) + 8;
  input_agreement_.reserve(static_cast<std::size_t>(n));
  view_agreement_.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    input_agreement_.emplace_back(simulators);
    std::vector<SafeAgreementOf<View>> rounds;
    rounds.reserve(static_cast<std::size_t>(max_rounds_));
    for (int r = 0; r < max_rounds_; ++r) {
      rounds.emplace_back(simulators);
    }
    view_agreement_.push_back(std::move(rounds));
  }
  locals_.resize(static_cast<std::size_t>(simulators));
}

const std::vector<BgSimulation::SimulatedProcess>& BgSimulation::observed(
    int s) const {
  if (s < 0 || s >= m_) {
    throw SimError("BgSimulation::observed: bad simulator index");
  }
  return locals_[static_cast<std::size_t>(s)].procs;
}

Value BgSimulation::advance(Context& ctx, int s, int j, Local& local) {
  SimulatedProcess& proc = local.procs[static_cast<std::size_t>(j)];
  const auto ju = static_cast<std::size_t>(j);

  // Step 0: agree on j's input, then perform j's round-0 write into the
  // (real, shared) simulated memory. Every simulator writes the same agreed
  // value, so the multi-writer updates are idempotent.
  if (!local.applied_input[ju]) {
    auto& agreement = input_agreement_[ju];
    if (!local.proposed_input[ju]) {
      local.proposed_input[ju] = true;
      // Any live simulator may sponsor any simulated process with its own
      // input — this is what makes a silent simulator block nobody.
      agreement.propose(ctx, s, local.input);
    }
    const auto agreed = agreement.resolve(ctx);
    if (!agreed.has_value()) {
      return kBottom;  // mid-window elsewhere: skip j for now (BG rule)
    }
    proc.input = *agreed;
    sim_memory_.update(ctx, j, *agreed);  // j's write, executed by s
    local.applied_input[ju] = true;
    return kBottom;  // made progress; snapshot next visit
  }

  // Quorum-min rounds: agree on the snapshot view j receives.
  const int r = static_cast<int>(proc.views.size());
  if (r >= max_rounds_) {
    throw SimError("BG simulation exceeded its round bound");
  }
  auto& agreement = view_agreement_[ju][static_cast<std::size_t>(r)];
  if (local.proposed_view_rounds[ju] <= r) {
    local.proposed_view_rounds[ju] = r + 1;
    // Propose a REAL atomic scan of the simulated memory: all proposals,
    // across all (j, r), are then totally ordered by containment.
    agreement.propose(ctx, s, sim_memory_.scan(ctx));
  }
  auto agreed = agreement.resolve(ctx);
  if (!agreed.has_value()) {
    return kBottom;  // blocked for now: skip j (BG rule)
  }
  proc.views.push_back(*agreed);
  // T3's decision rule: with a quorum visible, decide the minimum input.
  int visible = 0;
  Value minimum = kBottom;
  for (const Value v : *agreed) {
    if (v != kBottom) {
      ++visible;
      minimum = minimum == kBottom ? v : std::min(minimum, v);
    }
  }
  if (visible >= quorum()) {
    proc.decision = minimum;
    return minimum;
  }
  return kBottom;
}

Value BgSimulation::run_simulator(Context& ctx, int s, Value input,
                                  int max_iterations) {
  if (s < 0 || s >= m_) {
    throw SimError("BgSimulation: bad simulator index");
  }
  if (input == kBottom) {
    throw SimError("BgSimulation: input must not be ⊥");
  }
  Local& local = locals_[static_cast<std::size_t>(s)];
  if (local.initialized) {
    throw SimError("BgSimulation: run_simulator is one-shot per slot");
  }
  local.initialized = true;
  local.input = input;
  local.procs.resize(static_cast<std::size_t>(n_));
  local.proposed_input.assign(static_cast<std::size_t>(n_), false);
  local.applied_input.assign(static_cast<std::size_t>(n_), false);
  local.proposed_view_rounds.assign(static_cast<std::size_t>(n_), 0);

  // Round-robin over simulated processes, skipping the blocked ones; adopt
  // the first simulated decision.
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    const int j = iteration % n_;
    const SimulatedProcess& proc = local.procs[static_cast<std::size_t>(j)];
    if (proc.decision != kBottom) {
      return proc.decision;  // already simulated to completion
    }
    const Value decided = advance(ctx, s, j, local);
    if (decided != kBottom) {
      return decided;
    }
  }
  throw SimError("BG simulator exhausted its iteration budget "
                 "(too many simulators crashed mid-agreement?)");
}

}  // namespace subc
