#include "subc/algorithms/renaming.hpp"

#include <algorithm>

namespace subc {

SnapshotRenaming::SnapshotRenaming(int slots, bool use_register_snapshot) {
  if (slots <= 0) {
    throw SimError("SnapshotRenaming requires a positive slot count");
  }
  const Cell initial{};
  if (use_register_snapshot) {
    registers_ = std::make_unique<SnapshotFromRegisters<Cell>>(slots, initial);
  } else {
    atomic_ = std::make_unique<AtomicSnapshot<Cell>>(slots, initial);
  }
}

std::vector<SnapshotRenaming::Cell> SnapshotRenaming::scan(Context& ctx) {
  return atomic_ ? atomic_->scan(ctx) : registers_->scan(ctx);
}

void SnapshotRenaming::announce(Context& ctx, int slot, const Cell& cell) {
  if (atomic_) {
    atomic_->update(ctx, slot, cell);
  } else {
    registers_->update(ctx, slot, cell);
  }
}

int SnapshotRenaming::rename(Context& ctx, int slot, Value id) {
  if (id == kBottom) {
    throw SimError("rename requires a proper id");
  }
  int proposal = 0;
  for (;;) {
    announce(ctx, slot, Cell{id, proposal});
    const std::vector<Cell> view = scan(ctx);

    bool conflict = false;
    std::vector<int> taken;      // others' proposals
    std::vector<Value> ids;      // participating ids (including ours)
    for (std::size_t s = 0; s < view.size(); ++s) {
      const Cell& c = view[s];
      if (c.id == kBottom) {
        continue;
      }
      ids.push_back(c.id);
      if (static_cast<int>(s) != slot && c.proposal >= 0) {
        taken.push_back(c.proposal);
        if (c.proposal == proposal) {
          conflict = true;
        }
      }
    }
    if (!conflict) {
      return proposal;
    }
    // Rank of our id among participants (0-based).
    std::sort(ids.begin(), ids.end());
    const int rank = static_cast<int>(
        std::lower_bound(ids.begin(), ids.end(), id) - ids.begin());
    // Propose the (rank+1)-th smallest name not proposed by others.
    std::sort(taken.begin(), taken.end());
    int candidate = 0;
    int free_seen = 0;
    for (;; ++candidate) {
      if (!std::binary_search(taken.begin(), taken.end(), candidate)) {
        if (free_seen == rank) {
          break;
        }
        ++free_seen;
      }
    }
    proposal = candidate;
  }
}

}  // namespace subc
