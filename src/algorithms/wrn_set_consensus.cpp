#include "subc/algorithms/wrn_set_consensus.hpp"

#include <algorithm>

namespace subc {

WrnSetConsensus::WrnSetConsensus(int k, bool one_shot) : k_(k) {
  if (k < 3) {
    throw SimError("Algorithm 2 requires k >= 3 (WRN_2 is SWAP)");
  }
  if (one_shot) {
    one_shot_ = std::make_unique<OneShotWrnObject>(k);
  } else {
    multi_ = std::make_unique<WrnObject>(k);
  }
}

Value WrnSetConsensus::propose(Context& ctx, int id, Value v) {
  if (id < 0 || id >= k_) {
    throw SimError("Algorithm 2: id out of range");
  }
  const Value t = one_shot_ ? one_shot_->wrn(ctx, id, v)
                            : multi_->wrn(ctx, id, v);
  return t != kBottom ? t : v;
}

WrnRatioSetConsensus::WrnRatioSetConsensus(int n, int k) : n_(n), k_(k) {
  if (k < 3 || n < 1) {
    throw SimError("Algorithm 6 requires k >= 3 and n >= 1");
  }
  const int groups = (n + k - 1) / k;
  objects_.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    objects_.push_back(std::make_unique<OneShotWrnObject>(k));
  }
}

int WrnRatioSetConsensus::agreement() const noexcept {
  return (k_ - 1) * (n_ / k_) + std::min(k_ - 1, n_ % k_);
}

Value WrnRatioSetConsensus::propose(Context& ctx, int id, Value v) {
  if (id < 0 || id >= n_) {
    throw SimError("Algorithm 6: id out of range");
  }
  OneShotWrnObject& object = *objects_[static_cast<std::size_t>(id / k_)];
  const Value t = object.wrn(ctx, id % k_, v);
  return t != kBottom ? t : v;
}

}  // namespace subc
