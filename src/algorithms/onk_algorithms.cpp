#include "subc/algorithms/onk_algorithms.hpp"

namespace subc {

OnkSetConsensus::OnkSetConsensus(int n, int k, int procs)
    : n_(n), k_(k), procs_(procs),
      partition_(onk_best_partition(n, k, procs)) {
  assignment_.resize(static_cast<std::size_t>(procs));
  objects_.reserve(partition_.size());
  int pid = 0;
  for (std::size_t g = 0; g < partition_.size(); ++g) {
    const auto [component, size] = partition_[g];
    objects_.push_back(std::make_unique<OnkObject>(n, k));
    for (int s = 0; s < size; ++s) {
      assignment_[static_cast<std::size_t>(pid++)] = {static_cast<int>(g),
                                                      component};
    }
  }
  SUBC_ASSERT(pid == procs);
}

int OnkSetConsensus::agreement() const {
  return onk_best_agreement(n_, k_, procs_);
}

Value OnkSetConsensus::propose(Context& ctx, int id, Value v) {
  if (id < 0 || id >= procs_) {
    throw SimError("OnkSetConsensus: id out of range");
  }
  const auto [object_index, component] =
      assignment_[static_cast<std::size_t>(id)];
  return objects_[static_cast<std::size_t>(object_index)]->propose(
      ctx, component, v);
}

}  // namespace subc
