#include "subc/runtime/scheduler.hpp"

#include <algorithm>
#include <sstream>

namespace subc {
namespace {

/// Bitmask of the enabled pids, or 0 when any pid falls outside the 64-bit
/// mask (reduction degrades to "off" at such decision points — sound, just
/// unreduced).
std::uint64_t enabled_mask(std::span<const int> enabled) {
  std::uint64_t mask = 0;
  for (const int pid : enabled) {
    if (pid < 0 || pid >= 64) {
      return 0;
    }
    mask |= std::uint64_t{1} << pid;
  }
  return mask;
}

}  // namespace

std::size_t RoundRobinDriver::pick(std::span<const int> enabled,
                                   std::span<const Access> /*footprints*/) {
  SUBC_ASSERT(!enabled.empty());
  // First enabled pid strictly greater than the last scheduled one,
  // wrapping around.
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    if (enabled[i] > last_pid_) {
      last_pid_ = enabled[i];
      return i;
    }
  }
  last_pid_ = enabled[0];
  return 0;
}

std::uint32_t RoundRobinDriver::choose(std::uint32_t arity) {
  SUBC_ASSERT(arity >= 1);
  return 0;
}

std::size_t RandomDriver::pick(std::span<const int> enabled,
                               std::span<const Access> /*footprints*/) {
  SUBC_ASSERT(!enabled.empty());
  return std::uniform_int_distribution<std::size_t>(0, enabled.size() - 1)(
      rng_);
}

std::uint32_t RandomDriver::choose(std::uint32_t arity) {
  SUBC_ASSERT(arity >= 1);
  return std::uniform_int_distribution<std::uint32_t>(0, arity - 1)(rng_);
}

std::size_t ScriptedDriver::pick(std::span<const int> enabled,
                                 std::span<const Access> /*footprints*/) {
  SUBC_ASSERT(!enabled.empty());
  if (pos_ < pids_.size()) {
    const int wanted = pids_[pos_++];
    const auto it = std::find(enabled.begin(), enabled.end(), wanted);
    if (it != enabled.end()) {
      return static_cast<std::size_t>(it - enabled.begin());
    }
  }
  return 0;
}

std::uint32_t ScriptedDriver::choose(std::uint32_t arity) {
  SUBC_ASSERT(arity >= 1);
  return 0;
}

std::size_t ReplayDriver::pick(std::span<const int> enabled,
                               std::span<const Access> footprints) {
  if (enabled.empty()) {
    throw SimError("ReplayDriver::pick: empty enabled set");
  }
  // Watchdog: a terminating world consumes a bounded number of scheduling
  // decisions; a livelocked one does not. The quota converts the latter
  // into a StuckCut the explorer reports as a StuckExecution diagnostic.
  if (step_quota_ > 0 && ++steps_ > step_quota_) {
    throw StuckCut{};
  }
  // A granted step ends the current crash/recovery decision point: the next
  // crash_requests / recovery_requests may target any pid again.
  crash_floor_ = 0;
  recovery_floor_ = 0;
  const auto arity = static_cast<std::uint32_t>(enabled.size());

  // Reduction is active at this decision point only when footprints are
  // supplied and every pid fits the sleep bitmask.
  const std::uint64_t mask =
      (reduce_ && footprints.size() == enabled.size()) ? enabled_mask(enabled)
                                                       : 0;
  // Sleeping processes must still be enabled (crash() can retire one).
  sleep_ &= mask;

  std::uint32_t chosen = 0;
  if (arity == 1) {
    // Forced decision: exactly one option, elided from the trace (it can
    // never be backtracked). The sleep set still evolves across it — and a
    // forced step by a sleeping process means every continuation was
    // already covered by the sibling branch that put it to sleep.
    if (mask != 0 && (sleep_ >> enabled[0] & 1) != 0) {
      ++reduced_;
      throw SleepCut{};
    }
  } else if (pos_ < trace_.size()) {
    const Decision& d = trace_[pos_++];
    // The world must be deterministic given the decision string: arity,
    // enabled set and inherited sleep set must match the recording.
    SUBC_ASSERT(!d.crash && !d.recover);
    SUBC_ASSERT(d.arity == arity);
    SUBC_ASSERT(d.chosen < arity);
    SUBC_ASSERT(mask == 0 || d.enabled == 0 || d.enabled == mask);
    SUBC_ASSERT(mask == 0 || d.enabled == 0 || d.sleep == sleep_);
    chosen = d.chosen;
  } else {
    if (trace_.size() >= limit_) {
      throw FrontierCut{};
    }
    if (mask != 0) {
      // Sleep-set skip: the least option whose process is awake. Each
      // skipped option is a subtree an earlier sibling branch already
      // covers; with every process asleep the whole node is redundant.
      while (chosen < arity && (sleep_ >> enabled[chosen] & 1) != 0) {
        ++reduced_;
        ++chosen;
      }
      if (chosen == arity) {
        throw SleepCut{};
      }
    }
    trace_.push_back(Decision{chosen, arity, mask, sleep_});
    ++pos_;
    if (prune_ != nullptr && *prune_ && (*prune_)(trace_)) {
      throw PruneCut{};
    }
  }

  if (mask != 0) {
    // Classic sleep-set propagation past the granted step: earlier sibling
    // options join the sleep set (their subtrees are explored first in DFS
    // order), then every sleeper whose pending step *depends* on the
    // granted step wakes up.
    std::uint64_t eff = sleep_;
    for (std::uint32_t c = 0; c < chosen; ++c) {
      eff |= std::uint64_t{1} << enabled[c];
    }
    const Access granted = footprints[chosen];
    std::uint64_t next = 0;
    for (std::size_t j = 0; j < enabled.size(); ++j) {
      if (j == chosen) {
        continue;
      }
      const std::uint64_t bit = std::uint64_t{1} << enabled[j];
      if ((eff & bit) != 0 && independent(footprints[j], granted)) {
        next |= bit;
      }
    }
    sleep_ = next;
  } else {
    sleep_ = 0;
  }
  return chosen;
}

std::uint64_t ReplayDriver::crash_requests(std::span<const int> enabled) {
  // Crash branching: when the per-run crash budget is not exhausted, every
  // kernel scheduling point forks on "no crash" (option 0) vs "crash the
  // i-th candidate victim" (option i >= 1). The kernel re-consults this hook
  // after each granted crash, so multi-crash sets build up one decision at a
  // time; `crash_floor_` canonicalizes that chain to increasing pid order
  // (crashes at the same point commute, so other orders are duplicates).
  const bool replaying = pos_ < trace_.size();
  if (replaying && !trace_[pos_].crash) {
    // The recorded execution made no crash decision here (e.g. its budget
    // was already spent, or the trace predates crash branching).
    return 0;
  }
  if (!replaying && (max_crashes_ <= 0 || crashes_run_ >= max_crashes_)) {
    return 0;
  }

  int victims[64];
  std::uint32_t candidates = 0;
  for (const int pid : enabled) {
    if (pid >= crash_floor_ && pid < 64) {
      victims[candidates++] = pid;
    }
  }
  if (candidates == 0) {
    // Forced "no crash": arity-1 decisions are elided, as in pick().
    return 0;
  }
  const auto arity = candidates + 1;

  std::uint32_t chosen = 0;
  if (replaying) {
    const Decision& d = trace_[pos_++];
    SUBC_ASSERT(d.crash);
    SUBC_ASSERT(d.arity == arity);
    SUBC_ASSERT(d.chosen < arity);
    chosen = d.chosen;
  } else {
    if (trace_.size() >= limit_) {
      throw FrontierCut{};
    }
    // Fresh branch starts at "no crash"; advance() later bumps through the
    // victims. Enabled/sleep masks stay 0: sleep-set reduction never skips a
    // crash option (a sleeping process can still be crashed — its crash is
    // dependent with its own pending step, which put it to sleep).
    trace_.push_back(Decision{chosen, arity, 0, 0, /*crash=*/true});
    ++pos_;
    if (prune_ != nullptr && *prune_ && (*prune_)(trace_)) {
      throw PruneCut{};
    }
  }
  if (chosen == 0) {
    return 0;
  }
  const int victim = victims[chosen - 1];
  ++crashes_run_;
  ++crashes_total_;
  crash_floor_ = victim + 1;
  // The sleep set is deliberately left untouched: a crash behaves as a write
  // on the victim alone, independent of every *other* process's pending
  // step, so sleepers stay asleep across it; the victim itself leaves the
  // enabled set and is masked out of the sleep set at the next pick().
  return std::uint64_t{1} << victim;
}

std::uint64_t ReplayDriver::recovery_requests(std::span<const int> crashed) {
  // Recovery branching mirrors crash branching: when the per-run recovery
  // budget is not exhausted and at least one process is crashed, the kernel
  // decision point forks on "no restart" (option 0) vs "restart the i-th
  // candidate" (option i >= 1). The kernel re-consults this hook after each
  // granted restart, so multi-restart sets build up one decision at a time;
  // `recovery_floor_` canonicalizes the chain to increasing pid order
  // (restarts at the same point commute).
  const bool replaying = pos_ < trace_.size();
  if (replaying && !trace_[pos_].recover) {
    return 0;
  }
  if (!replaying &&
      (max_recoveries_ <= 0 || recoveries_run_ >= max_recoveries_)) {
    return 0;
  }

  int victims[64];
  std::uint32_t candidates = 0;
  for (const int pid : crashed) {
    if (pid >= recovery_floor_ && pid < 64) {
      victims[candidates++] = pid;
    }
  }
  if (candidates == 0) {
    // Forced "no restart": arity-1 decisions are elided, as in pick().
    return 0;
  }
  const auto arity = candidates + 1;

  std::uint32_t chosen = 0;
  if (replaying) {
    const Decision& d = trace_[pos_++];
    SUBC_ASSERT(d.recover);
    SUBC_ASSERT(d.arity == arity);
    SUBC_ASSERT(d.chosen < arity);
    chosen = d.chosen;
  } else {
    if (trace_.size() >= limit_) {
      throw FrontierCut{};
    }
    // Fresh branch starts at "no restart"; advance() later bumps through
    // the candidates. Enabled/sleep masks stay 0: a recovery is a write on
    // the restarted process (its whole volatile state is reborn), dependent
    // with everything it will do — sleep-set reduction never skips one.
    trace_.push_back(
        Decision{chosen, arity, 0, 0, /*crash=*/false, /*recover=*/true});
    ++pos_;
    if (prune_ != nullptr && *prune_ && (*prune_)(trace_)) {
      throw PruneCut{};
    }
  }
  if (chosen == 0) {
    return 0;
  }
  const int victim = victims[chosen - 1];
  ++recoveries_run_;
  ++recoveries_total_;
  recovery_floor_ = victim + 1;
  // Wake the restarted pid: its rebirth is a write footprint on itself, so
  // any sleep bit it held (from its *previous* incarnation's pending step)
  // no longer proves its new steps redundant.
  sleep_ &= ~(std::uint64_t{1} << victim);
  return std::uint64_t{1} << victim;
}

void ReplayDriver::on_state_fp(std::uint64_t fp, bool valid) {
  // Probe only in fresh territory: while the replayed prefix is being
  // consumed the execution walks states an earlier sibling already inserted
  // on its way down, and cutting there would cut the restart-DFS's own
  // backbone. (`pos_` does not advance across forced decisions, so forced
  // points inside the prefix correctly count as replayed.)
  if (visited_ == nullptr || pos_ < trace_.size()) {
    return;
  }
  if (!valid || !base_fp_valid_) {
    return;  // an unported object stepped somewhere: no cuts this execution
  }
  // Key on the (state, sleep-set) pair: a state revisited with a *different*
  // sleep set constrains its continuations differently, so only the exact
  // pair proves the subtree redundant (Godefroid's composition rule).
  const std::uint64_t key = detail::mix64(
      (base_fp_ ^ fp) ^ detail::mix64(sleep_ ^ detail::kFpSleepSalt));
  if (visited_->check_and_insert(key)) {
    throw StatefulCut{};
  }
}

void ReplayDriver::on_run_fp(std::uint64_t fp, bool valid) {
  if (visited_ == nullptr) {
    return;
  }
  base_fp_ = detail::mix64(base_fp_ ^ detail::mix64(fp ^ detail::kFpRunSalt));
  base_fp_valid_ = base_fp_valid_ && valid;
}

std::uint32_t ReplayDriver::choose(std::uint32_t arity) {
  if (arity == 0) {
    throw SimError("ReplayDriver::choose: arity must be >= 1");
  }
  return next_choice(arity);
}

std::uint32_t ReplayDriver::next_choice(std::uint32_t arity) {
  if (arity == 1) {
    // Forced decision: elided, as in pick().
    return 0;
  }
  if (pos_ < trace_.size()) {
    const Decision& d = trace_[pos_++];
    SUBC_ASSERT(!d.crash && !d.recover);
    SUBC_ASSERT(d.arity == arity);
    SUBC_ASSERT(d.chosen < arity);
    return d.chosen;
  }
  if (trace_.size() >= limit_) {
    throw FrontierCut{};
  }
  trace_.push_back(Decision{0, arity, 0, 0});
  ++pos_;
  if (prune_ != nullptr && *prune_ && (*prune_)(trace_)) {
    throw PruneCut{};
  }
  return 0;
}

std::string format_trace(std::span<const ReplayDriver::Decision> trace) {
  std::ostringstream os;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) {
      os << ' ';
    }
    if (trace[i].crash) {
      os << 'x';
    }
    if (trace[i].recover) {
      os << 'r';
    }
    os << trace[i].chosen << '/' << trace[i].arity;
  }
  return os.str();
}

}  // namespace subc
