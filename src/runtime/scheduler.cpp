#include "subc/runtime/scheduler.hpp"

#include <algorithm>
#include <sstream>

namespace subc {

std::size_t RoundRobinDriver::pick(std::span<const int> enabled) {
  SUBC_ASSERT(!enabled.empty());
  // First enabled pid strictly greater than the last scheduled one,
  // wrapping around.
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    if (enabled[i] > last_pid_) {
      last_pid_ = enabled[i];
      return i;
    }
  }
  last_pid_ = enabled[0];
  return 0;
}

std::uint32_t RoundRobinDriver::choose(std::uint32_t arity) {
  SUBC_ASSERT(arity >= 1);
  return 0;
}

std::size_t RandomDriver::pick(std::span<const int> enabled) {
  SUBC_ASSERT(!enabled.empty());
  return std::uniform_int_distribution<std::size_t>(0, enabled.size() - 1)(
      rng_);
}

std::uint32_t RandomDriver::choose(std::uint32_t arity) {
  SUBC_ASSERT(arity >= 1);
  return std::uniform_int_distribution<std::uint32_t>(0, arity - 1)(rng_);
}

std::size_t ScriptedDriver::pick(std::span<const int> enabled) {
  SUBC_ASSERT(!enabled.empty());
  if (pos_ < pids_.size()) {
    const int wanted = pids_[pos_++];
    const auto it = std::find(enabled.begin(), enabled.end(), wanted);
    if (it != enabled.end()) {
      return static_cast<std::size_t>(it - enabled.begin());
    }
  }
  return 0;
}

std::uint32_t ScriptedDriver::choose(std::uint32_t arity) {
  SUBC_ASSERT(arity >= 1);
  return 0;
}

std::uint32_t ReplayDriver::next(std::uint32_t arity) {
  SUBC_ASSERT(arity >= 1);
  if (arity == 1) {
    // Forced decision: exactly one option, so it can never be backtracked.
    // Eliding it keeps traces short and backtracking cheap (a sole enabled
    // process stepping repeatedly would otherwise fill the trace).
    return 0;
  }
  if (pos_ < trace_.size()) {
    Decision& d = trace_[pos_++];
    // The world must be deterministic given the decision string: the arity
    // at each decision point has to match the recorded one.
    SUBC_ASSERT(d.arity == arity);
    SUBC_ASSERT(d.chosen < arity);
    return d.chosen;
  }
  if (trace_.size() >= limit_) {
    throw FrontierCut{};
  }
  trace_.push_back(Decision{0, arity});
  ++pos_;
  if (prune_ != nullptr && *prune_ && (*prune_)(trace_)) {
    throw PruneCut{};
  }
  return 0;
}

std::size_t ReplayDriver::pick(std::span<const int> enabled) {
  return next(static_cast<std::uint32_t>(enabled.size()));
}

std::uint32_t ReplayDriver::choose(std::uint32_t arity) { return next(arity); }

std::string format_trace(std::span<const ReplayDriver::Decision> trace) {
  std::ostringstream os;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) {
      os << ' ';
    }
    os << trace[i].chosen << '/' << trace[i].arity;
  }
  return os.str();
}

}  // namespace subc
