#include "subc/runtime/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "subc/runtime/fiber.hpp"
#include "subc/runtime/observer.hpp"

namespace subc {

std::string to_string(ProcState s) {
  switch (s) {
    case ProcState::kRunning:
      return "running";
    case ProcState::kDone:
      return "done";
    case ProcState::kHung:
      return "hung";
    case ProcState::kCrashed:
      return "crashed";
  }
  return "?";
}

// Procs live in the runtime's leased arena (placement-new in
// add_process/add_stepped, explicit destruction in ~Runtime), so world
// construction is a couple of pointer bumps rather than one heap round-trip
// per process. The record carries both engines' fields; only fiber procs
// additionally carve a Fiber (and its pooled stack) from the arena, so a
// stepped proc's whole footprint is this small block plus its state block.
struct Runtime::Proc {
  Context ctx;
  ProcState state = ProcState::kRunning;
  Engine engine;
  std::int64_t steps = 0;
  /// Crash-recovery: how many times this process has restarted. 0 for the
  /// original incarnation; bumped by Runtime::recover.
  std::uint32_t incarnation = 0;
  /// Stateful exploration: this process's running observation-chain hash
  /// (one term of the world fingerprint). 0 until run() seeds it.
  std::uint64_t fp_chain = 0;
  /// Footprint of the pending step, announced at the sched_point /
  /// SUBC_STEP_POINT that suspended the process. Default (unknown) until
  /// the first announcement and after any footprint-less one.
  Access next_access;

  // Stepped engine (Engine::kStepped): the explicit state machine.
  SteppedFn step_fn = nullptr;
  void* step_state = nullptr;
  void (*step_dtor)(void*) = nullptr;
  std::uint32_t step_resume = 0;
  /// Set by StepContext::suspend/finish during a `step` call; a stepped
  /// body returning with this false (and the process still running) forgot
  /// its SUBC_STEP_POINT/END and is diagnosed instead of spinning.
  bool step_advanced = false;
  /// Restartability (crash-recovery): clone snapshots the pristine state
  /// block, restore copy-assigns it back on recovery. Null for state blocks
  /// registered without copy support (recover() then diagnoses). The
  /// pristine snapshot is carved lazily at run() start, and only when the
  /// driver wants recovery — crash-stop runs never pay for it.
  void* (*step_clone)(const void*, Runtime&) = nullptr;
  void (*step_restore)(void*, const void*) = nullptr;
  void* step_pristine = nullptr;

  // Fiber engine (Engine::kFiber): body function + arena-carved fiber.
  ProcessFn fn;
  Fiber* fiber = nullptr;

  static void entry(void* raw) {
    Proc* p = static_cast<Proc*>(raw);
    p->fn(p->ctx);
  }

  Proc(Runtime* rt, int pid, ProcessFn f)
      : ctx(rt, pid), engine(Engine::kFiber), fn(std::move(f)) {
    fiber = rt->arena_->create<Fiber>(&Proc::entry, this);
  }

  Proc(Runtime* rt, int pid, SteppedFn f, void* state, void (*dtor)(void*))
      : ctx(rt, pid),
        engine(Engine::kStepped),
        step_fn(f),
        step_state(state),
        step_dtor(dtor) {}

  ~Proc() {
    // Kill-unwind the fiber (if any) while `fn` is still alive, then tear
    // down the stepped state block the runtime adopted.
    if (fiber != nullptr) {
      fiber->~Fiber();
      fiber = nullptr;
    }
    if (step_dtor != nullptr) {
      step_dtor(step_state);
      if (step_pristine != nullptr) {
        step_dtor(step_pristine);
      }
      step_dtor = nullptr;
    }
    step_pristine = nullptr;
  }
};

Runtime::Runtime() : observer_(thread_default_observer()) {}

Runtime::~Runtime() {
  // Reverse construction order; the arena reclaims the storage when the
  // lease member is released.
  for (std::size_t i = num_procs_; i > 0; --i) {
    procs_[i - 1]->~Proc();
  }
}

int Runtime::attach_proc(Proc* proc) {
  if (num_procs_ == procs_cap_) {
    const std::size_t cap = procs_cap_ == 0 ? 8 : procs_cap_ * 2;
    Proc** grown = arena_->allocate_array<Proc*>(cap);
    std::copy(procs_, procs_ + num_procs_, grown);
    procs_ = grown;
    procs_cap_ = cap;
  }
  procs_[num_procs_] = proc;
  ++num_procs_;
  if (decisions_.size() == decisions_.capacity()) {
    decisions_.reserve(std::max<std::size_t>(8, decisions_.capacity() * 2));
  }
  decisions_.push_back(kBottom);
  return static_cast<int>(num_procs_) - 1;
}

int Runtime::add_process(ProcessFn fn) {
  if (started_) {
    throw SimError("add_process after run() started");
  }
  if (!fn) {
    throw SimError("add_process requires a non-empty function");
  }
  const int pid = num_processes();
  return attach_proc(arena_->create<Proc>(this, pid, std::move(fn)));
}

int Runtime::add_stepped_raw(SteppedFn fn, void* state,
                             void (*destroy)(void*)) {
  if (started_) {
    throw SimError("add_stepped after run() started");
  }
  if (fn == nullptr) {
    throw SimError("add_stepped requires a non-null step function");
  }
  const int pid = num_processes();
  return attach_proc(arena_->create<Proc>(this, pid, fn, state, destroy));
}

void Runtime::set_stepped_recovery(int pid,
                                   void* (*clone)(const void*, Runtime&),
                                   void (*restore)(void*, const void*)) {
  check_pid(pid);
  Proc& proc = *procs_[static_cast<std::size_t>(pid)];
  SUBC_ASSERT(proc.engine == Engine::kStepped);
  proc.step_clone = clone;
  proc.step_restore = restore;
}

void* Runtime::carve_stepped_block(std::size_t bytes, std::size_t align) {
  auto& cells = detail::alloc_counter_cells();
  const std::uint64_t chunks_before =
      cells.arena_chunks.load(std::memory_order_relaxed);
  void* block = arena_->allocate(bytes, align);
  cells.stepped_blocks_carved.fetch_add(1, std::memory_order_relaxed);
  cells.stepped_block_bytes.fetch_add(bytes, std::memory_order_relaxed);
  if (cells.arena_chunks.load(std::memory_order_relaxed) == chunks_before) {
    // Carved from already-warm arena storage: the steady state the
    // allocation-free hot path is designed for.
    cells.stepped_block_reuses.fetch_add(1, std::memory_order_relaxed);
  }
  return block;
}

void Runtime::check_pid(int pid) const {
  if (pid < 0 || pid >= num_processes()) {
    throw SimError("pid out of range: " + std::to_string(pid));
  }
}

std::size_t Runtime::collect_enabled(int* enabled, Access* footprints) const {
  std::size_t n = 0;
  for (int pid = 0; pid < num_processes(); ++pid) {
    if (procs_[pid]->state == ProcState::kRunning) {
      enabled[n] = pid;
      footprints[n] = procs_[pid]->next_access;
      ++n;
    }
  }
  return n;
}

// --- World-state fingerprint folds (stateful exploration) ----------------
// All three are only ever called with `fp_on_` true; the callers guard, so
// the non-stateful hot path pays one predictable branch per event.

void Runtime::fp_fold(int pid, std::uint64_t v) {
  Proc& p = *procs_[static_cast<std::size_t>(pid)];
  fp_world_ ^= p.fp_chain;
  p.fp_chain = detail::mix64(p.fp_chain ^ v);
  fp_world_ ^= p.fp_chain;
}

void Runtime::fp_observe(int pid, std::uint64_t v) {
  fp_fold(pid, detail::mix64(detail::kFpObserveSalt ^ v));
  fp_step_reported_ = true;
}

void Runtime::fp_commit(std::uint32_t object_id, std::uint64_t state_hash) {
  // The object announced a footprint before this step, so its id is set.
  SUBC_ASSERT(object_id != 0);
  const std::size_t id = object_id;
  if (fp_objects_.size() <= id) {
    fp_objects_.resize(id + 1, 0);
  }
  fp_world_ ^= fp_objects_[id];
  fp_objects_[id] =
      detail::mix64(state_hash ^ detail::mix64(detail::kFpObjectSalt ^ id));
  fp_world_ ^= fp_objects_[id];
  fp_step_reported_ = true;
}

void Runtime::advance(Proc& proc) {
  if (proc.engine == Engine::kFiber) {
    proc.fiber->resume();
    if (proc.fiber->finished() && proc.state == ProcState::kRunning) {
      proc.state = ProcState::kDone;
      if (fp_on_) {
        fp_fold(proc.ctx.pid(), detail::kFpDoneSalt);
      }
    }
    return;
  }
  proc.step_advanced = false;
  StepContext ctx(this, proc.ctx.pid());
  proc.step_fn(proc.step_state, ctx);
  if (proc.state == ProcState::kRunning && !proc.step_advanced) {
    throw SimError("stepped body returned without SUBC_STEP_POINT/END "
                   "(pid " +
                   std::to_string(proc.ctx.pid()) + ")");
  }
}

Runtime::RunResult Runtime::run(ScheduleDriver& driver,
                                std::int64_t max_steps) {
  if (started_) {
    throw SimError("Runtime::run is single-use");
  }
  started_ = true;
  driver_ = &driver;
  driver.begin_run();
  // Stateful exploration: seed every process's observation chain before any
  // code (including priming prologues) can fold into it. The chain seeds
  // encode the pid, so the world fingerprint distinguishes "who did what"
  // without any further per-fold pid mixing.
  fp_on_ = driver.wants_state_fp();
  if (fp_on_) {
    fp_world_ = 0;
    fp_valid_ = true;
    for (std::size_t i = 0; i < num_procs_; ++i) {
      Proc* proc = procs_[i];
      proc->fp_chain = detail::mix64(detail::kFpProcSalt ^ i);
      fp_world_ ^= proc->fp_chain;
    }
  }
  // Crash-recovery: cache the capability once per run (crash-stop drivers
  // pay one virtual call), and snapshot pristine copies of the copyable
  // stepped state blocks *before* priming mutates them — recover() restores
  // from these so a restarted stepped body re-enters from the top.
  const bool recovery_on = driver.wants_recovery();
  if (recovery_on) {
    for (std::size_t i = 0; i < num_procs_; ++i) {
      Proc* proc = procs_[i];
      if (proc->engine == Engine::kStepped && proc->step_clone != nullptr &&
          proc->step_pristine == nullptr) {
        proc->step_pristine = proc->step_clone(proc->step_state, *this);
      }
    }
  }
  if (observer_ != nullptr) {
    observer_->on_run_begin(num_processes());
  }

  // Prime every process: run its process-local prologue up to the first
  // shared-memory operation (the first sched_point / SUBC_STEP_POINT).
  // Priming executes no shared step, so it is not a scheduling decision —
  // but it does announce each process's first footprint, so every pick
  // below sees a complete footprint vector.
  for (std::size_t i = 0; i < num_procs_; ++i) {
    Proc* proc = procs_[i];
    if (proc->state == ProcState::kRunning) {
      advance(*proc);
    }
  }

  RunResult result;
  int* enabled_buf = arena_->allocate_array<int>(num_procs_);
  Access* footprints_buf = arena_->allocate_array<Access>(num_procs_);
  int* crashed_buf =
      recovery_on ? arena_->allocate_array<int>(num_procs_) : nullptr;
  while (true) {
    const std::size_t num_enabled =
        collect_enabled(enabled_buf, footprints_buf);
    const std::span<const int> enabled(enabled_buf, num_enabled);
    const std::span<const Access> footprints(footprints_buf, num_enabled);
    // Under recovery an empty enabled set is not yet the end of the run:
    // a crashed process may still restart below. Only the combination
    // "nobody runnable and nobody recoverable" terminates.
    const bool recovery_live = recovery_on && num_crashed_ > 0;
    if (enabled.empty() && !recovery_live) {
      break;
    }
    if (total_steps_ >= max_steps) {
      driver_ = nullptr;
      throw SimError("step bound exceeded with processes still runnable (" +
                     std::to_string(max_steps) + " steps)");
    }
    // Stateful exploration: report the world fingerprint at every decision
    // point, *before* the crash branch point — a visited-set cut then skips
    // the whole crash branching below this state too, which is sound
    // because equal fingerprints imply equal crash folds and hence equal
    // remaining crash budget. A StatefulCut thrown here unwinds the run.
    if (fp_on_) {
      driver.on_state_fp(fp_world_, fp_valid_);
    }
    // Crash-recovery: consult the policy with the crashed pids before fault
    // injection and the pick. Recovered pids rejoin the enabled set, so
    // restart the decision point (the policy is re-consulted — multi-restart
    // sets build up one decision at a time, like multi-crash sets).
    if (recovery_live) {
      std::size_t num_crashed = 0;
      for (int pid = 0; pid < num_processes(); ++pid) {
        if (procs_[pid]->state == ProcState::kCrashed) {
          crashed_buf[num_crashed++] = pid;
        }
      }
      if (const std::uint64_t revived = driver.recovery_requests(
              std::span<const int>(crashed_buf, num_crashed));
          revived != 0) {
        bool any = false;
        for (std::size_t i = 0; i < num_crashed; ++i) {
          const int pid = crashed_buf[i];
          if (pid < 64 && ((revived >> pid) & 1) != 0) {
            recover(pid);
            any = true;
          }
        }
        if (any) {
          continue;  // recompute the enabled set with the fresh incarnations
        }
      }
    }
    if (enabled.empty()) {
      break;  // recovery declined with nobody runnable: the run ends
    }
    // Fault injection: consult the policy before the pick. Crashed pids are
    // retired here, so the pick below only ever sees survivors. Bits for
    // pids that are not enabled are ignored (guards against a policy that
    // re-requests an already-crashed pid forever).
    if (const std::uint64_t doomed = driver.crash_requests(enabled);
        doomed != 0) {
      bool any = false;
      for (const int pid : enabled) {
        if (pid < 64 && ((doomed >> pid) & 1) != 0) {
          crash(pid);
          any = true;
        }
      }
      if (any) {
        continue;  // recompute the enabled set (it may now be empty)
      }
    }
    const std::size_t idx = driver.pick(enabled, footprints);
    SUBC_ASSERT(idx < enabled.size());
    const int pid = enabled[idx];
    Proc& proc = *procs_[pid];
    if (proc.state != ProcState::kRunning) {
      // The driver crashed processes during pick(); its answer may be
      // stale. Recompute the enabled set and ask again.
      continue;
    }
    if (observer_ != nullptr) {
      observer_->on_step(StepEvent{pid, total_steps_, footprints[idx]});
    }
    ++total_steps_;
    ++proc.steps;
    if (fp_on_) {
      // Fold the grant itself (per-proc step counts are the monotone spine
      // of the fingerprint: no state can repeat within one execution), then
      // demand that the step reports something — a granted step that folds
      // nothing ran an unported operation, and its effects are invisible to
      // the fingerprint, so the whole execution's fingerprints are poisoned.
      fp_step_reported_ = false;
      fp_fold(pid, detail::kFpStepSalt);
      advance(proc);
      if (!fp_step_reported_) {
        fp_valid_ = false;
      }
    } else {
      advance(proc);
    }
  }
  if (fp_on_) {
    driver.on_run_fp(fp_world_, fp_valid_);
  }
  driver_ = nullptr;

  result.decisions = decisions_;
  result.states.reserve(num_procs_);
  result.quiescent = true;
  for (std::size_t i = 0; i < num_procs_; ++i) {
    result.states.push_back(procs_[i]->state);
    if (procs_[i]->state == ProcState::kHung) {
      result.quiescent = false;
    }
  }
  result.total_steps = total_steps_;
  if (observer_ != nullptr) {
    observer_->on_run_end(result.total_steps, result.quiescent);
  }
  return result;
}

void Runtime::crash(int pid) {
  check_pid(pid);
  Proc& proc = *procs_[pid];
  if (proc.state == ProcState::kRunning) {
    proc.state = ProcState::kCrashed;
    ++num_crashed_;
    // The crash write-footprints the victim in the fingerprint: worlds that
    // differ only in who has crashed must not alias (the crashed set also
    // determines how much of the crash budget remains).
    if (fp_on_ && started_) {
      fp_fold(pid, detail::kFpCrashSalt);
    }
    // The crash event wipes volatile object state (Durability::kVolatile):
    // each hook reverts one object to its initial value and re-publishes
    // its state hash. Idempotent, so multi-crash chains at one decision
    // point are safe. Empty in every crash-stop world.
    for (const auto& reset : volatile_resets_) {
      reset(*this);
    }
    if (observer_ != nullptr) {
      observer_->on_crash(pid, total_steps_);
    }
  }
}

void Runtime::recover(int pid) {
  check_pid(pid);
  Proc& proc = *procs_[pid];
  if (proc.state != ProcState::kCrashed) {
    throw SimError("recover(" + std::to_string(pid) + "): process is " +
                   to_string(proc.state) + ", not crashed");
  }
  if (started_) {
    // Rebirth of the volatile process state: a fresh fiber stack, or the
    // pristine pre-run copy of the stepped state block. Shared objects are
    // untouched here — durable state persists by doing nothing, volatile
    // state was already wiped by the crash event itself.
    if (proc.engine == Engine::kFiber) {
      Fiber* old = proc.fiber;
      proc.fiber = nullptr;
      if (old != nullptr) {
        old->~Fiber();  // kill-unwinds the crashed incarnation's stack
      }
      proc.fiber = arena_->create<Fiber>(&Proc::entry, &proc);
    } else {
      if (proc.step_restore == nullptr || proc.step_pristine == nullptr) {
        throw SimError("recover(" + std::to_string(pid) +
                       "): stepped state block is not copyable, no pristine "
                       "snapshot to restart from");
      }
      proc.step_restore(proc.step_state, proc.step_pristine);
      proc.step_resume = 0;
    }
    proc.next_access = Access{};
  }
  proc.state = ProcState::kRunning;
  ++proc.incarnation;
  --num_crashed_;
  // Salt the fingerprint per incarnation: "p restarted once" and "p
  // restarted twice" are different worlds (different remaining recovery
  // budget, different re-execution prefixes) and must never alias.
  if (fp_on_ && started_) {
    fp_fold(pid, detail::mix64(detail::kFpRecoverSalt ^ proc.incarnation));
  }
  if (observer_ != nullptr) {
    observer_->on_recover(pid, total_steps_);
  }
  if (started_) {
    // Re-prime the fresh incarnation: run its prologue up to its first
    // sched_point so the next pick sees its footprint, exactly like the
    // initial priming pass.
    advance(proc);
  }
}

std::uint32_t Runtime::incarnation_of(int pid) const {
  check_pid(pid);
  return procs_[pid]->incarnation;
}

void Runtime::add_volatile_reset(std::function<void(Runtime&)> hook) {
  if (!hook) {
    throw SimError("add_volatile_reset requires a non-empty hook");
  }
  volatile_resets_.push_back(std::move(hook));
}

void Runtime::refresh_commit_fp(const ObjectId& obj,
                                std::uint64_t state_hash) {
  // Outside-step republish (volatile resets): unlike fp_commit this never
  // counts as a step report, and an object that has not announced yet
  // (id 0) has no term to refresh.
  if (!fp_on_ || obj.id_ == 0) {
    return;
  }
  const std::size_t id = obj.id_;
  if (fp_objects_.size() <= id) {
    fp_objects_.resize(id + 1, 0);
  }
  fp_world_ ^= fp_objects_[id];
  fp_objects_[id] =
      detail::mix64(state_hash ^ detail::mix64(detail::kFpObjectSalt ^ id));
  fp_world_ ^= fp_objects_[id];
}

std::int64_t Runtime::steps_of(int pid) const {
  check_pid(pid);
  return procs_[pid]->steps;
}

ProcState Runtime::state_of(int pid) const {
  check_pid(pid);
  return procs_[pid]->state;
}

void Context::sched_point() {
  runtime_->procs_[static_cast<std::size_t>(pid_)]->next_access = Access{};
  Fiber::yield();
}

void Context::sched_point(const ObjectId& obj, AccessKind kind) {
  if (obj.id_ == 0) {
    obj.id_ = runtime_->next_object_id_++;
  }
  runtime_->procs_[static_cast<std::size_t>(pid_)]->next_access =
      Access{obj.id_, kind};
  Fiber::yield();
}

std::uint32_t Context::choose(std::uint32_t arity) {
  if (runtime_->driver_ == nullptr) {
    throw SimError("choose() outside run()");
  }
  const std::uint32_t c = runtime_->driver_->choose(arity);
  SUBC_ASSERT(c < arity);
  // The chosen value is process-visible nondeterminism: fold it so worlds
  // whose processes observed different choices cannot alias. A choose alone
  // does not count as a fingerprint report — the operation around it may
  // still mutate unported state.
  if (runtime_->fp_on_) {
    runtime_->fp_fold(pid_, detail::mix64(detail::kFpChooseSalt ^ c));
  }
  if (runtime_->observer_ != nullptr) {
    runtime_->observer_->on_choose(pid_, arity, c);
  }
  return c;
}

void Context::decide(Value v) {
  if (v == kBottom) {
    throw SimError("decide(⊥) is not a valid task output");
  }
  Value& slot = runtime_->decisions_[static_cast<std::size_t>(pid_)];
  if (slot != kBottom) {
    // A recovered incarnation legitimately re-runs its body and re-decides;
    // recoverable-task correctness demands it re-decide the *same* value
    // (idempotent, dropped) — a different one is a real disagreement bug.
    if (runtime_->procs_[static_cast<std::size_t>(pid_)]->incarnation > 0) {
      if (slot == v) {
        return;
      }
      throw SimError("process " + std::to_string(pid_) +
                     " re-decided differently after recovery: " +
                     std::to_string(slot) + " then " + std::to_string(v));
    }
    throw SimError("process " + std::to_string(pid_) + " decided twice");
  }
  slot = v;
  if (runtime_->fp_on_) {
    runtime_->fp_fold(pid_, detail::mix64(detail::kFpDecideSalt ^
                                          static_cast<std::uint64_t>(v)));
  }
}

void Context::hang() {
  // Hang is a report by convention: hangable operations in the object zoo
  // check-and-hang without mutating shared state, so the transition fold
  // captures the step completely.
  if (runtime_->fp_on_) {
    runtime_->fp_fold(pid_, detail::kFpHungSalt);
    runtime_->fp_step_reported_ = true;
  }
  runtime_->procs_[static_cast<std::size_t>(pid_)]->state = ProcState::kHung;
  for (;;) {
    Fiber::yield();  // Only a kill-unwind ever resumes us; yield() throws.
  }
}

void Context::observe_fp(std::uint64_t v) {
  if (runtime_->fp_on_) {
    runtime_->fp_observe(pid_, v);
  }
}

void Context::commit_fp(const ObjectId& obj, std::uint64_t state_hash) {
  if (runtime_->fp_on_) {
    runtime_->fp_commit(obj.id_, state_hash);
  }
}

std::uint32_t StepContext::resume_point() const noexcept {
  return runtime_->procs_[static_cast<std::size_t>(pid_)]->step_resume;
}

void StepContext::suspend(std::uint32_t point) {
  SUBC_ASSERT(point != 0);  // 0 is the initial-entry dispatch value
  Runtime::Proc& proc = *runtime_->procs_[static_cast<std::size_t>(pid_)];
  proc.next_access = Access{};
  proc.step_resume = point;
  proc.step_advanced = true;
}

void StepContext::suspend(std::uint32_t point, const ObjectId& obj,
                          AccessKind kind) {
  SUBC_ASSERT(point != 0);
  if (obj.id_ == 0) {
    obj.id_ = runtime_->next_object_id_++;
  }
  Runtime::Proc& proc = *runtime_->procs_[static_cast<std::size_t>(pid_)];
  proc.next_access = Access{obj.id_, kind};
  proc.step_resume = point;
  proc.step_advanced = true;
}

void StepContext::finish() {
  Runtime::Proc& proc = *runtime_->procs_[static_cast<std::size_t>(pid_)];
  if (proc.state == ProcState::kRunning) {
    proc.state = ProcState::kDone;
    if (runtime_->fp_on_) {
      runtime_->fp_fold(pid_, detail::kFpDoneSalt);
    }
  }
  proc.step_advanced = true;
}

void StepContext::hang() {
  // Mirrors Context::hang: the transition fold is the step's report.
  if (runtime_->fp_on_) {
    runtime_->fp_fold(pid_, detail::kFpHungSalt);
    runtime_->fp_step_reported_ = true;
  }
  runtime_->procs_[static_cast<std::size_t>(pid_)]->state = ProcState::kHung;
}

bool StepContext::hung() const noexcept {
  return runtime_->procs_[static_cast<std::size_t>(pid_)]->state ==
         ProcState::kHung;
}

std::uint32_t StepContext::choose(std::uint32_t arity) {
  if (runtime_->driver_ == nullptr) {
    throw SimError("choose() outside run()");
  }
  const std::uint32_t c = runtime_->driver_->choose(arity);
  SUBC_ASSERT(c < arity);
  if (runtime_->fp_on_) {
    runtime_->fp_fold(pid_, detail::mix64(detail::kFpChooseSalt ^ c));
  }
  if (runtime_->observer_ != nullptr) {
    runtime_->observer_->on_choose(pid_, arity, c);
  }
  return c;
}

void StepContext::decide(Value v) {
  if (v == kBottom) {
    throw SimError("decide(⊥) is not a valid task output");
  }
  Value& slot = runtime_->decisions_[static_cast<std::size_t>(pid_)];
  if (slot != kBottom) {
    // Mirrors Context::decide: recovered incarnations re-decide
    // idempotently; disagreement with the pre-crash decision is a bug.
    if (runtime_->procs_[static_cast<std::size_t>(pid_)]->incarnation > 0) {
      if (slot == v) {
        return;
      }
      throw SimError("process " + std::to_string(pid_) +
                     " re-decided differently after recovery: " +
                     std::to_string(slot) + " then " + std::to_string(v));
    }
    throw SimError("process " + std::to_string(pid_) + " decided twice");
  }
  slot = v;
  if (runtime_->fp_on_) {
    runtime_->fp_fold(pid_, detail::mix64(detail::kFpDecideSalt ^
                                          static_cast<std::uint64_t>(v)));
  }
}

void StepContext::observe_fp(std::uint64_t v) {
  if (runtime_->fp_on_) {
    runtime_->fp_observe(pid_, v);
  }
}

void StepContext::commit_fp(const ObjectId& obj, std::uint64_t state_hash) {
  if (runtime_->fp_on_) {
    runtime_->fp_commit(obj.id_, state_hash);
  }
}

}  // namespace subc
