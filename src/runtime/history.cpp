#include "subc/runtime/history.hpp"

#include <algorithm>
#include <sstream>

#include "subc/runtime/observer.hpp"

namespace subc {

namespace {
// Thread-local recycling pool for entry op/response buffers. Bounded so a
// one-off giant history cannot pin memory; beyond the cap buffers just free.
constexpr std::size_t kMaxPooledValueBufs = 256;

struct ValueBufPool {
  std::vector<std::vector<Value>> free;
};
thread_local ValueBufPool tl_value_buf_pool;

std::vector<Value> acquire_buf(std::span<const Value> init) {
  std::vector<Value> buf;
  ValueBufPool& pool = tl_value_buf_pool;
  if (!pool.free.empty()) {
    buf = std::move(pool.free.back());
    pool.free.pop_back();
  }
  buf.assign(init.begin(), init.end());
  return buf;
}

void release_buf(std::vector<Value>&& buf) {
  if (buf.capacity() == 0) {
    return;
  }
  ValueBufPool& pool = tl_value_buf_pool;
  if (pool.free.size() < kMaxPooledValueBufs) {
    buf.clear();
    pool.free.push_back(std::move(buf));
  }
}
}  // namespace

History::~History() {
  for (HistoryEntry& e : entries_) {
    release_buf(std::move(e.op));
    release_buf(std::move(e.response));
  }
}

void History::clear() {
  for (HistoryEntry& e : entries_) {
    release_buf(std::move(e.op));
    release_buf(std::move(e.response));
  }
  entries_.clear();
  clock_ = 0;
}

std::size_t History::invoke(int pid, std::span<const Value> op) {
  HistoryEntry e;
  e.pid = pid;
  e.op = acquire_buf(op);
  e.invoked_at = clock_++;
  entries_.push_back(std::move(e));
  const std::size_t handle = entries_.size() - 1;
  if (sink_ != nullptr) {
    const HistoryEntry& recorded = entries_[handle];
    sink_->on_invoke(recorded.pid, handle, recorded.invoked_at, recorded.op);
  }
  return handle;
}

void History::respond(std::size_t handle, std::span<const Value> response) {
  if (handle >= entries_.size()) {
    throw SimError("respond: bad history handle");
  }
  HistoryEntry& e = entries_[handle];
  if (!e.pending()) {
    throw SimError("respond: operation already completed");
  }
  e.response = acquire_buf(response);
  e.responded_at = clock_++;
  if (sink_ != nullptr) {
    sink_->on_respond(e.pid, handle, e.responded_at, e.response);
  }
}

std::size_t History::restore(HistoryEntry entry) {
  clock_ = std::max({clock_, entry.invoked_at + 1, entry.responded_at + 1});
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

void History::amend(std::size_t handle, HistoryEntry entry) {
  if (handle >= entries_.size()) {
    throw SimError("amend: bad history handle");
  }
  clock_ = std::max({clock_, entry.invoked_at + 1, entry.responded_at + 1});
  entries_[handle] = std::move(entry);
}

std::size_t History::completed() const noexcept {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (!e.pending()) {
      ++n;
    }
  }
  return n;
}

std::string History::dump() const {
  std::ostringstream os;
  for (const auto& e : entries_) {
    os << "p" << e.pid << " op(";
    for (std::size_t i = 0; i < e.op.size(); ++i) {
      os << (i ? "," : "") << to_string(e.op[i]);
    }
    os << ") @" << e.invoked_at;
    if (e.pending()) {
      os << " -> pending";
    } else {
      os << " -> (";
      for (std::size_t i = 0; i < e.response.size(); ++i) {
        os << (i ? "," : "") << to_string(e.response[i]);
      }
      os << ") @" << e.responded_at;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace subc
