#include "subc/runtime/history.hpp"

#include <algorithm>
#include <sstream>

#include "subc/runtime/observer.hpp"

namespace subc {

std::size_t History::invoke(int pid, std::vector<Value> op) {
  HistoryEntry e;
  e.pid = pid;
  e.op = std::move(op);
  e.invoked_at = clock_++;
  entries_.push_back(std::move(e));
  const std::size_t handle = entries_.size() - 1;
  if (sink_ != nullptr) {
    const HistoryEntry& recorded = entries_[handle];
    sink_->on_invoke(recorded.pid, handle, recorded.invoked_at, recorded.op);
  }
  return handle;
}

void History::respond(std::size_t handle, std::vector<Value> response) {
  if (handle >= entries_.size()) {
    throw SimError("respond: bad history handle");
  }
  HistoryEntry& e = entries_[handle];
  if (!e.pending()) {
    throw SimError("respond: operation already completed");
  }
  e.response = std::move(response);
  e.responded_at = clock_++;
  if (sink_ != nullptr) {
    sink_->on_respond(e.pid, handle, e.responded_at, e.response);
  }
}

std::size_t History::restore(HistoryEntry entry) {
  clock_ = std::max({clock_, entry.invoked_at + 1, entry.responded_at + 1});
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

void History::amend(std::size_t handle, HistoryEntry entry) {
  if (handle >= entries_.size()) {
    throw SimError("amend: bad history handle");
  }
  clock_ = std::max({clock_, entry.invoked_at + 1, entry.responded_at + 1});
  entries_[handle] = std::move(entry);
}

std::size_t History::completed() const noexcept {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (!e.pending()) {
      ++n;
    }
  }
  return n;
}

std::string History::dump() const {
  std::ostringstream os;
  for (const auto& e : entries_) {
    os << "p" << e.pid << " op(";
    for (std::size_t i = 0; i < e.op.size(); ++i) {
      os << (i ? "," : "") << to_string(e.op[i]);
    }
    os << ") @" << e.invoked_at;
    if (e.pending()) {
      os << " -> pending";
    } else {
      os << " -> (";
      for (std::size_t i = 0; i < e.response.size(); ++i) {
        os << (i ? "," : "") << to_string(e.response[i]);
      }
      os << ") @" << e.responded_at;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace subc
