#include "subc/runtime/instance.hpp"

namespace subc {

const char* to_string(InstanceKind kind) noexcept {
  switch (kind) {
    case InstanceKind::kOneShotWrn:
      return "one_shot_wrn";
    case InstanceKind::kGac:
      return "gac";
    case InstanceKind::kSetConsensus:
      return "set_consensus";
  }
  return "unknown";
}

InstanceTable::~InstanceTable() {
  // Arena storage is released by the lease; the blocks' non-trivial members
  // (history, state vectors) must be destructed by hand.
  for (InstanceBlock* block : carved_) {
    block->~InstanceBlock();
  }
}

InstanceBlock* InstanceTable::acquire_block() {
  auto& cells = detail::alloc_counter_cells();
  if (!free_.empty()) {
    InstanceBlock* block = free_.back();
    free_.pop_back();
    ++stats_.block_reuses;
    cells.instance_block_reuses.fetch_add(1, std::memory_order_relaxed);
    return block;
  }
  auto* block = arena_->create<InstanceBlock>();
  carved_.push_back(block);
  ++stats_.blocks_carved;
  cells.instance_blocks_carved.fetch_add(1, std::memory_order_relaxed);
  cells.instance_block_bytes.fetch_add(sizeof(InstanceBlock),
                                       std::memory_order_relaxed);
  return block;
}

void InstanceTable::validate_open(InstanceKind kind, int a, int b) {
  switch (kind) {
    case InstanceKind::kOneShotWrn:
      if (a < 2) {
        throw SimError("instance 1sWRN_k requires k >= 2");
      }
      break;
    case InstanceKind::kGac:
      if (a < 1 || b < 0) {
        throw SimError("instance GAC(n, i) requires n >= 1, i >= 0");
      }
      break;
    case InstanceKind::kSetConsensus:
      if (b < 1 || b >= a) {
        throw SimError("instance (n, k)-set-consensus requires 1 <= k < n");
      }
      break;
  }
}

InstanceId InstanceTable::open(InstanceKind kind, int a, int b,
                               std::int64_t now) {
  return open_assigned(next_id_, kind, a, b, now);
}

InstanceId InstanceTable::open_assigned(InstanceId id, InstanceKind kind,
                                        int a, int b, std::int64_t now) {
  if (id == 0) {
    throw SimError("instance id 0 is reserved");
  }
  if (live_.find(id) != live_.end()) {
    throw SimError("instance id already live: " + std::to_string(id));
  }
  validate_open(kind, a, b);  // before acquiring: a bad shape leaks no block
  InstanceBlock* block = acquire_block();
  if (id >= next_id_) {
    next_id_ = id + 1;
  }
  block->id = id;
  block->kind = kind;
  block->phase = InstancePhase::kOpen;
  block->fp_domain = detail::fp_instance_domain(id);
  block->fp_local = 0;
  block->opened_at = now;
  block->decided_at = -1;
  switch (kind) {
    case InstanceKind::kOneShotWrn:
      block->wrn.reset(a);
      break;
    case InstanceKind::kGac:
      block->gac.reset(a, b);
      break;
    case InstanceKind::kSetConsensus:
      block->setc.reset(a, b);
      break;
  }
  live_.emplace(id, block);
  ++stats_.opened;
  stats_.live = static_cast<std::int64_t>(live_.size());
  if (stats_.live > stats_.peak_live) {
    stats_.peak_live = stats_.live;
  }
  return id;
}

InstanceBlock* InstanceTable::find(InstanceId id) noexcept {
  const auto it = live_.find(id);
  return it == live_.end() ? nullptr : it->second;
}

const InstanceBlock* InstanceTable::find(InstanceId id) const noexcept {
  const auto it = live_.find(id);
  return it == live_.end() ? nullptr : it->second;
}

InstanceBlock& InstanceTable::at(InstanceId id) {
  InstanceBlock* block = find(id);
  if (block == nullptr) {
    throw SimError("no such instance: " + std::to_string(id));
  }
  return *block;
}

Value InstanceTable::apply(InstanceId id, int pid, int slot, Value v,
                           std::uint64_t choice_seed, bool* hung) {
  InstanceBlock& block = at(id);
  InstanceOpContext ctx(&block, choice_seed, pid);
  std::size_t handle = 0;
  Value out = kBottom;
  switch (block.kind) {
    case InstanceKind::kOneShotWrn:
      handle = block.history.invoke(pid, {static_cast<Value>(slot), v});
      out = one_shot_wrn_commit(ctx, block.oid, &block.wrn, slot, v);
      break;
    case InstanceKind::kGac:
      handle = block.history.invoke(pid, {v});
      out = gac_propose(ctx, block.oid, &block.gac, v);
      break;
    case InstanceKind::kSetConsensus:
      handle = block.history.invoke(pid, {v});
      out = set_consensus_propose(ctx, &block.setc, v);
      // The set-consensus core makes no fingerprint reports (its worlds
      // stay unported for stateful exploration); fold the response here so
      // the instance's local fingerprint still covers every op.
      if (!ctx.hung()) {
        ctx.observe_fp(detail::fp_of(out));
      }
      break;
  }
  ++stats_.ops;
  if (ctx.hung()) {
    // A hung invocation never responds; leave the history entry pending.
    *hung = true;
    return kBottom;
  }
  *hung = false;
  block.history.respond(handle, {out});
  return out;
}

void InstanceTable::decide(InstanceId id, std::int64_t now) {
  InstanceBlock& block = at(id);
  if (block.phase == InstancePhase::kDecided) {
    return;
  }
  block.phase = InstancePhase::kDecided;
  block.decided_at = now;
  ++stats_.decided;
}

bool InstanceTable::gc(InstanceId id) {
  const auto it = live_.find(id);
  if (it == live_.end()) {
    return false;
  }
  InstanceBlock* block = it->second;
  live_.erase(it);
  block->history.clear();  // returns entry buffers to the pool
  free_.push_back(block);
  ++stats_.gcd;
  stats_.live = static_cast<std::int64_t>(live_.size());
  return true;
}

std::size_t InstanceTable::gc_decided(std::int64_t decided_before) {
  std::size_t reclaimed = 0;
  for (auto it = live_.begin(); it != live_.end();) {
    InstanceBlock* block = it->second;
    if (block->phase == InstancePhase::kDecided &&
        block->decided_at <= decided_before) {
      it = live_.erase(it);
      block->history.clear();
      free_.push_back(block);
      ++stats_.gcd;
      ++reclaimed;
    } else {
      ++it;
    }
  }
  stats_.live = static_cast<std::int64_t>(live_.size());
  return reclaimed;
}

std::uint64_t InstanceTable::local_fingerprint(InstanceId id) {
  return at(id).fp_local;
}

std::uint64_t InstanceTable::world_fingerprint(InstanceId id) {
  const InstanceBlock& block = at(id);
  return detail::mix64(block.fp_domain ^ block.fp_local);
}

}  // namespace subc
