#include "subc/runtime/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "subc/checking/checkpoint.hpp"
#include "subc/checking/violation_log.hpp"
#include "subc/runtime/bounded_queue.hpp"
#include "subc/runtime/hashing.hpp"
#include "subc/runtime/observer.hpp"
#include "subc/runtime/value.hpp"

namespace subc {
namespace {

using Decision = ReplayDriver::Decision;

// Executions claimed from the shared budget per batch. Participants grab a
// block, consume from it locally (no shared traffic per execution), and
// return what they did not use — the shared state is touched
// O(executions / kBudgetBatch) times instead of once per execution.
constexpr std::int64_t kBudgetBatch = 64;

// State shared by every participant of one exploration (the frontier
// enumerator and all subtree workers).
//
// Budget protocol (see BudgetScope): `granted` counts budget handed out in
// batches and not yet returned; completed executions consume from a
// participant's local batch, probes cut short (frontier cut, prune, sleep
// skip) consume nothing. A participant that is denied budget *parks* (waits
// on `cv`) instead of abandoning its subtree: as long as some other
// participant still holds an unconsumed grant, a refund may arrive and the
// parked work continues. Only when the pool is empty AND nobody holds a
// grant is the search finally exhausted (`exhausted_final`) — this is what
// makes a completed exploration report exactly `min(tree size,
// max_executions)` executions: no unit ever gives up while budget it could
// have used sits (or will be refunded) elsewhere.
struct SearchState {
  std::int64_t max_executions = 0;
  /// Stateful exploration's visited set (null unless `Options::stateful`),
  /// shared by every participant: a cut taken because *any* worker already
  /// explored the (state, sleep-set) pair is sound — by induction on total
  /// step count (each recorded decision strictly extends the per-process
  /// step spine, so state reachability is a DAG), the continuations below
  /// an equal pair are behaviour-identical.
  std::unique_ptr<detail::VisitedSet> visited;
  ViolationLog log;
  // Stuck-execution diagnostics, aggregated like violations (least canonical
  // index wins) but on a separate log: a stuck execution never cancels work
  // — the search continues past it.
  ViolationLog stuck_log;

  std::mutex mu;
  std::condition_variable cv;
  std::int64_t granted = 0;  // claimed minus refunded (never > max)
  int holders = 0;           // participants holding an unreturned grant
  bool exhausted_final = false;
};

// One participant's view of the shared budget: a locally held block of
// executions, claimed batch-wise and consumed without synchronization.
class BudgetScope {
 public:
  explicit BudgetScope(SearchState& s) : s_(s) {}
  ~BudgetScope() { release(); }

  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

  /// Ensures at least one execution's worth of budget is held, parking
  /// until budget is granted or the search is finally exhausted (returns
  /// false — the caller abandons with its unit marked unfinished).
  bool ensure() {
    if (held_ > 0) {
      return true;
    }
    std::unique_lock<std::mutex> lk(s_.mu);
    drop_locked();
    for (;;) {
      const std::int64_t avail = s_.max_executions - s_.granted;
      if (avail > 0) {
        held_ = std::min(kBudgetBatch, avail);
        s_.granted += held_;
        ++s_.holders;
        holder_ = true;
        return true;
      }
      if (s_.exhausted_final) {
        return false;
      }
      if (s_.holders == 0) {
        // Pool empty and nobody left to refund: the denier is also the
        // last drainer, so exhaustion is final. Wake every parked peer.
        s_.exhausted_final = true;
        s_.cv.notify_all();
        return false;
      }
      s_.cv.wait(lk);
    }
  }

  /// Consumes one held execution (call after each completed run).
  void consume() noexcept { --held_; }

  /// Returns the unconsumed remainder to the pool.
  void release() {
    if (!holder_) {
      return;
    }
    const std::lock_guard<std::mutex> lk(s_.mu);
    drop_locked();
  }

 private:
  // Refund `held_` and drop holder status; wake peers that can now claim,
  // or finalize exhaustion when this was the last holder of an empty pool.
  void drop_locked() {
    if (!holder_) {
      return;
    }
    s_.granted -= held_;
    held_ = 0;
    --s_.holders;
    holder_ = false;
    if (s_.granted < s_.max_executions) {
      s_.cv.notify_all();
    } else if (s_.holders == 0 && !s_.exhausted_final) {
      s_.exhausted_final = true;
      s_.cv.notify_all();
    }
  }

  SearchState& s_;
  std::int64_t held_ = 0;
  bool holder_ = false;
};

// Tallies of one subtree work unit, merged in canonical order afterwards.
struct SubtreeStats {
  std::int64_t executions = 0;
  std::int64_t pruned = 0;
  std::int64_t reduced = 0;
  std::int64_t crashed = 0;    ///< executions in which >= 1 crash landed
  std::int64_t recovered = 0;  ///< executions in which >= 1 recovery landed
  std::int64_t stuck = 0;      ///< executions cut by the step-quota watchdog
  std::int64_t stateful = 0;   ///< subtrees cut by stateful exploration
  std::optional<std::string> violation;
  std::vector<Decision> trace;
  /// First (in DFS order, i.e. canonically least within the unit) stuck
  /// execution; DFS order also means it precedes the unit's own violation,
  /// if any.
  std::optional<std::string> stuck_message;
  std::vector<Decision> stuck_trace;
  /// True when the subtree was fully explored or stopped at its own (first)
  /// violation — false only on cancellation or budget exhaustion.
  bool finished = false;
};

std::string stuck_message_for(std::int64_t quota) {
  return "stuck execution: step quota (" + std::to_string(quota) +
         ") exceeded";
}

// The snapshot every checkpoint of one search starts from: the option echo
// plus the watermark a resumed search inherited (zero tallies on a fresh
// explore). Periodic snapshots add the current progress on top.
ExplorerSnapshot snapshot_proto(const Explorer::Options& opts,
                                const ExplorerSnapshot* base) {
  ExplorerSnapshot s;
  s.max_executions = opts.max_executions;
  s.max_crashes = opts.max_crashes;
  s.max_recoveries = opts.max_recoveries;
  s.step_quota = opts.step_quota;
  s.reduction = opts.reduction == Reduction::kSleepSets;
  s.stateful = opts.stateful;
  if (base != nullptr) {
    s.executions = base->executions;
    s.pruned = base->pruned;
    s.reduced = base->reduced;
    s.crashed = base->crashed;
    s.recovered = base->recovered;
    s.stuck = base->stuck;
    s.stateful_cuts = base->stateful_cuts;
    s.stuck_message = base->stuck_message;
    s.stuck_trace = base->stuck_trace;
  }
  return s;
}

// Periodic-checkpoint plumbing for the serial search: the restart-DFS state
// is just (tallies, next prefix), so a snapshot is written straight from the
// loop in explore_subtree.
struct SerialCheckpoint {
  const std::string* path = nullptr;
  std::int64_t every = 0;
  const ExplorerSnapshot* proto = nullptr;
  std::int64_t last = 0;  ///< executions at the previous snapshot
};

// True when sleep-set metadata recorded at `d` says option `chosen` is
// redundant: its process was asleep when the decision point was first
// reached (`Decision::sleep` stores the inherited sleep set; earlier sibling
// options all have distinct pids, so membership there never changes the
// verdict). `d.enabled == 0` means no metadata — never skip. Crash decisions
// record no metadata (skipping a crash option would be unsound: the victim's
// crash is dependent with the victim's own pending step), so they are never
// skipped here.
bool option_asleep(const Decision& d, std::uint32_t chosen) {
  if (d.enabled == 0) {
    return false;
  }
  // Pid of the chosen option = position of its (chosen-th) set bit.
  std::uint64_t rest = d.enabled;
  for (std::uint32_t c = 0; c < chosen; ++c) {
    rest &= rest - 1;  // clear lowest set bit
  }
  const std::uint64_t bit = rest & ~(rest - 1);  // lowest remaining
  return (d.sleep & bit) != 0;
}

// Advances `trace` to the next DFS prefix inside the subtree whose first
// `floor` decisions are fixed: bump the deepest decision that still has
// unexplored options, dropping everything after it. Options asleep under
// the recorded reduction metadata are skipped (counted in `reduced`), and
// `prune` is consulted on every surviving candidate prefix (its subtree is
// skipped and counted when rejected). Returns false when the subtree is
// exhausted.
bool advance(std::vector<Decision>& trace, std::size_t floor,
             const Explorer::PruneFn& prune, std::int64_t& pruned,
             std::int64_t& reduced) {
  std::size_t i = trace.size();
  while (i > floor) {
    Decision& d = trace[i - 1];
    if (d.chosen + 1 < d.arity) {
      ++d.chosen;
      if (option_asleep(d, d.chosen)) {
        ++reduced;
        continue;  // same position, next option
      }
      if (prune && prune(std::span<const Decision>(trace.data(), i))) {
        ++pruned;
        continue;  // same position, next option
      }
      trace.resize(i);
      return true;
    }
    --i;
  }
  return false;
}

// Restart-DFS over the subtree rooted at `prefix` (decisions below `floor`
// are fixed). Stops at the subtree's first violation — the lexicographically
// least one, since DFS visits decision strings in lexicographic order — on
// budget exhaustion, or when a canonically earlier work unit has already
// reported a violation (nothing in this subtree can win then). When `cp` is
// non-null (serial top-level search only) the loop periodically snapshots
// (tallies, next prefix) to the checkpoint file.
SubtreeStats explore_subtree(const ExecutionBody& body,
                             std::vector<Decision> prefix, std::size_t floor,
                             const Explorer::Options& opts, SearchState& state,
                             std::uint64_t my_index,
                             SerialCheckpoint* cp = nullptr) {
  SubtreeStats stats;
  BudgetScope budget(state);
  const Explorer::PruneFn& prune = opts.prune;
  for (;;) {
    if (state.log.best_index() < my_index) {
      return stats;  // cancelled; these tallies will be discarded
    }
    if (!budget.ensure()) {
      return stats;  // budget finally exhausted (`finished` stays false)
    }
    const std::int64_t reduced_before = stats.reduced;
    ReplayDriver driver(std::move(prefix));
    driver.set_prune(prune ? &prune : nullptr);
    driver.set_reduction(opts.reduction == Reduction::kSleepSets);
    driver.set_max_crashes(opts.max_crashes);
    driver.set_max_recoveries(opts.max_recoveries);
    driver.set_step_quota(opts.step_quota);
    driver.set_stateful(state.visited.get());
    bool stuck_now = false;
    try {
      if (std::optional<std::string> violation =
              run_one(body, driver, opts.observer)) {
        ++stats.executions;
        budget.consume();
        if (driver.crashes() > 0) {
          ++stats.crashed;
        }
        if (driver.recoveries() > 0) {
          ++stats.recovered;
        }
        stats.violation = std::move(violation);
        stats.reduced += driver.reduced();
        stats.trace = driver.take_trace();
        stats.finished = true;
        return stats;
      }
      ++stats.executions;
      budget.consume();
      if (driver.crashes() > 0) {
        ++stats.crashed;
      }
      if (driver.recoveries() > 0) {
        ++stats.recovered;
      }
    } catch (const PruneCut&) {
      ++stats.pruned;  // cut probes consume no budget
    } catch (const SleepCut&) {
      // Redundant subtree, not an execution — consumes no budget.
    } catch (const StatefulCut&) {
      // The (state, sleep-set) pair at this decision point was already
      // explored: the subtree below is behaviour-identical to one already
      // searched. Like a reduction skip, consumes no budget.
      ++stats.stateful;
      if (opts.observer != nullptr) {
        opts.observer->on_stateful_cut(1);
      }
    } catch (const StuckCut&) {
      // Step quota tripped: the run did real work, so it counts as a
      // (stuck) execution and consumes budget; its unexplored continuations
      // are truncated — advance() below moves to the cut's siblings.
      ++stats.executions;
      budget.consume();
      ++stats.stuck;
      if (driver.crashes() > 0) {
        ++stats.crashed;
      }
      if (driver.recoveries() > 0) {
        ++stats.recovered;
      }
      stuck_now = true;
    }
    stats.reduced += driver.reduced();
    std::vector<Decision> trace = driver.take_trace();
    if (stuck_now) {
      if (opts.observer != nullptr) {
        opts.observer->on_stuck(stuck_message_for(opts.step_quota));
      }
      if (!stats.stuck_message) {
        stats.stuck_message = stuck_message_for(opts.step_quota);
        stats.stuck_trace = trace;  // copy: advance() mutates `trace` next
      }
    }
    const bool more =
        advance(trace, floor, prune, stats.pruned, stats.reduced);
    if (opts.observer != nullptr && stats.reduced > reduced_before) {
      opts.observer->on_reduced(stats.reduced - reduced_before);
    }
    if (!more) {
      stats.finished = true;
      return stats;
    }
    prefix = std::move(trace);
    if (cp != nullptr && stats.executions - cp->last >= cp->every) {
      cp->last = stats.executions;
      ExplorerSnapshot s = *cp->proto;
      s.executions += stats.executions;
      s.pruned += stats.pruned;
      s.reduced += stats.reduced;
      s.crashed += stats.crashed;
      s.recovered += stats.recovered;
      s.stuck += stats.stuck;
      s.stateful_cuts += stats.stateful;
      if (!s.stuck_message && stats.stuck_message) {
        s.stuck_message = stats.stuck_message;
        s.stuck_trace = stats.stuck_trace;
      }
      s.prefix = prefix;
      try {
        save_snapshot(*cp->path, s);
      } catch (const SimError&) {
        // A periodic snapshot that still fails after save_snapshot's own
        // retries must not kill the campaign: the search continues and the
        // next period (or the final snapshot) tries again. The previous
        // snapshot stays intact (atomic rename), so resume keeps working —
        // it just redoes more of the tree.
      }
    }
  }
}

// One entry of the canonical (serial-DFS-order) emission sequence produced
// by frontier enumeration: a completed shallow execution, a pruned or
// reduction-skipped subtree, or a frontier work unit (a depth-d prefix whose
// subtree a worker explores). Every event additionally carries the
// reduction skips that occurred at (and while advancing past) it, so that
// tallies truncated at a winning violation stay exact.
struct EventMeta {
  enum class Kind { kExecution, kPruned, kSkip, kStateful, kUnit };
  Kind kind = Kind::kExecution;
  std::int64_t reduced = 0;
  bool crashed = false;    ///< kExecution: >= 1 crash landed in the execution
  bool recovered = false;  ///< kExecution: >= 1 recovery landed
  bool stuck = false;      ///< kExecution: cut by the step-quota watchdog
};

// One frontier work unit: stats filled by whichever thread explores it, the
// prefix retained by the producer so checkpoints can name the watermark
// unit's restart point, and a done flag publishing the stats (store-release
// after the stats are written, load-acquire by the checkpoint scan).
struct UnitRecord {
  SubtreeStats stats;
  std::vector<Decision> prefix;
  std::atomic<bool> done{false};
};

// One frontier work unit streamed from the enumerator to a worker. The
// record is a stable pointer into the producer-owned deque; the event
// index orders the unit canonically for cancellation and aggregation.
struct WorkItem {
  std::uint64_t event_index = 0;
  UnitRecord* record = nullptr;
  std::vector<Decision> prefix;
};

// Picks a frontier depth giving roughly 16+ work items per worker (assuming
// the minimum branching factor of 2), so the pool load-balances even when
// subtree sizes are badly skewed.
std::size_t auto_frontier_depth(int threads) {
  std::size_t depth = 1;
  while ((std::size_t{1} << depth) < static_cast<std::size_t>(threads) * 16 &&
         depth < 10) {
    ++depth;
  }
  return depth;
}

Explorer::Result finish_serial(SubtreeStats stats) {
  Explorer::Result result;
  result.executions = stats.executions;
  result.pruned_subtrees = stats.pruned;
  result.reduced_subtrees = stats.reduced;
  result.crashed_executions = stats.crashed;
  result.recovered_executions = stats.recovered;
  result.stuck_executions = stats.stuck;
  result.stateful_cuts = stats.stateful;
  if (stats.stuck_message) {
    result.first_stuck = StuckExecution{std::move(*stats.stuck_message),
                                        std::move(stats.stuck_trace)};
  }
  if (stats.violation) {
    result.violation = std::move(stats.violation);
    result.violating_trace = std::move(stats.trace);
  } else {
    // Budget exhaustion leaves `finished` false, so no separate flag needed.
    result.complete = stats.finished;
  }
  return result;
}

// Streaming parallel exploration: the calling thread enumerates the decision
// tree down to the frontier depth in serial DFS order, pushing each work
// unit through a bounded ring to `threads - 1` workers as it is discovered
// (and draining units itself when the ring backs up, or after enumeration
// completes). Canonical aggregation afterwards walks the emission sequence
// in order, truncating at the winning violation, so every reported tally is
// bit-identical to the serial explorer's regardless of thread timing.
Explorer::Result explore_parallel(const ExecutionBody& body,
                                  const Explorer::Options& opts, int threads,
                                  std::vector<Decision> initial_prefix,
                                  const ExplorerSnapshot& proto,
                                  std::int64_t budget_total) {
  SearchState state;
  state.max_executions = budget_total;
  if (opts.stateful) {
    state.visited =
        std::make_unique<detail::VisitedSet>(
            static_cast<std::size_t>(opts.stateful_capacity));
  }
  const std::size_t depth = opts.frontier_depth > 0
                                ? static_cast<std::size_t>(opts.frontier_depth)
                                : auto_frontier_depth(threads);
  const bool checkpointing = !opts.checkpoint_path.empty();

  std::vector<EventMeta> events;        // producer-only until workers join
  std::deque<UnitRecord> unit_records;  // deque: grows with stable addresses
  BoundedQueue<WorkItem> queue(opts.frontier_queue_capacity);
  std::mutex qmu;
  std::condition_variable qcv;
  bool producer_done = false;  // guarded by qmu
  bool producer_finished_tree = false;

  const auto process_item = [&](WorkItem item) {
    UnitRecord& rec = *item.record;
    // Units arrive in canonical order; once a violation beats this unit it
    // beats every later one too, so skip without exploring (the zeroed
    // stats slot sits beyond the winner during aggregation anyway).
    if (state.log.best_index() >= item.event_index) {
      const std::size_t floor = item.prefix.size();
      rec.stats = explore_subtree(body, std::move(item.prefix), floor, opts,
                                  state, item.event_index);
      if (rec.stats.violation) {
        state.log.report(item.event_index, *rec.stats.violation,
                         rec.stats.trace);
      }
      if (rec.stats.stuck_message) {
        state.stuck_log.report(item.event_index, *rec.stats.stuck_message,
                               rec.stats.stuck_trace);
      }
    }
    rec.done.store(true, std::memory_order_release);
  };

  const auto worker_loop = [&]() {
    WorkItem item;
    for (;;) {
      if (!queue.try_pop(item)) {
        std::unique_lock<std::mutex> lk(qmu);
        // Re-check under the lock: a push that raced our failed pop is
        // visible here, and the producer notifies only after taking qmu,
        // so a wakeup between the re-check and wait() cannot be missed.
        if (queue.try_pop(item)) {
          lk.unlock();
        } else if (producer_done) {
          return;
        } else {
          qcv.wait(lk);
          continue;
        }
      }
      process_item(std::move(item));
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int w = 0; w < threads - 1; ++w) {
    pool.emplace_back(worker_loop);
  }

  // Periodic checkpoint: the watermark is the tally over the longest
  // contiguous prefix of canonical events whose work has completed (non-unit
  // events complete at production; a unit when its done flag is set), and
  // the restart prefix is the first incomplete unit's — or the producer's
  // next prefix when everything produced so far is done. Work completed
  // beyond the watermark is deliberately not saved: a resume redoes it, and
  // the canonical aggregation makes the redone tallies land on the same
  // final Result.
  const auto write_parallel_snapshot =
      [&](const std::vector<Decision>& producer_next) {
        ExplorerSnapshot s = proto;
        std::size_t u = 0;
        const std::vector<Decision>* next = nullptr;
        std::size_t watermark = events.size();
        for (std::size_t i = 0; i < events.size(); ++i) {
          const EventMeta& ev = events[i];
          if (ev.kind == EventMeta::Kind::kUnit) {
            UnitRecord& rec = unit_records[u];
            if (!rec.done.load(std::memory_order_acquire)) {
              next = &rec.prefix;
              watermark = i;
              break;
            }
            s.reduced += ev.reduced;  // shallow skips at the unit's probe
            s.executions += rec.stats.executions;
            s.pruned += rec.stats.pruned;
            s.reduced += rec.stats.reduced;
            s.crashed += rec.stats.crashed;
            s.recovered += rec.stats.recovered;
            s.stuck += rec.stats.stuck;
            s.stateful_cuts += rec.stats.stateful;
            ++u;
            continue;
          }
          s.reduced += ev.reduced;
          switch (ev.kind) {
            case EventMeta::Kind::kExecution:
              ++s.executions;
              if (ev.crashed) {
                ++s.crashed;
              }
              if (ev.recovered) {
                ++s.recovered;
              }
              if (ev.stuck) {
                ++s.stuck;
              }
              break;
            case EventMeta::Kind::kPruned:
              ++s.pruned;
              break;
            case EventMeta::Kind::kStateful:
              ++s.stateful_cuts;
              break;
            default:
              break;  // kSkip: carried entirely in `reduced`
          }
        }
        if (!s.stuck_message) {
          if (const std::optional<ViolationLog::Entry> sw =
                  state.stuck_log.winner();
              sw && sw->index < watermark) {
            s.stuck_message = sw->message;
            s.stuck_trace = sw->trace;
          }
        }
        s.prefix = next != nullptr ? *next : producer_next;
        try {
          save_snapshot(opts.checkpoint_path, s);
        } catch (const SimError&) {
          // Periodic snapshot still failing after save_snapshot's retries:
          // keep exploring (the previous snapshot is intact; the next
          // period or the final snapshot tries again).
        }
      };

  // Producer: serial-DFS frontier enumeration, streaming units out.
  {
    BudgetScope budget(state);
    const Explorer::PruneFn& prune = opts.prune;
    std::vector<Decision> prefix = std::move(initial_prefix);
    std::vector<WorkItem> spilled;  // overflow units, re-injected at the end
    std::ofstream spill_out;        // journal of spilled prefixes
    std::size_t last_snapshot_events = 0;
    for (;;) {
      if (state.log.best_index() < events.size()) {
        break;  // a reported violation canonically precedes the next event
      }
      if (!budget.ensure()) {
        break;  // budget finally exhausted mid-frontier
      }
      ReplayDriver driver(std::move(prefix));
      driver.set_decision_limit(depth);
      driver.set_prune(prune ? &prune : nullptr);
      driver.set_reduction(opts.reduction == Reduction::kSleepSets);
      driver.set_max_crashes(opts.max_crashes);
      driver.set_max_recoveries(opts.max_recoveries);
      driver.set_step_quota(opts.step_quota);
      driver.set_stateful(state.visited.get());
      EventMeta ev;
      bool is_unit = false;
      bool stuck_now = false;
      try {
        if (std::optional<std::string> violation =
                run_one(body, driver, opts.observer)) {
          // A violating shallow execution beats everything that would have
          // followed; report it and stop enumerating.
          budget.consume();
          ev.reduced = driver.reduced();
          ev.crashed = driver.crashes() > 0;
          ev.recovered = driver.recoveries() > 0;
          events.push_back(ev);
          state.log.report(events.size() - 1, *violation,
                           driver.take_trace());
          break;
        }
        budget.consume();
        ev.crashed = driver.crashes() > 0;
        ev.recovered = driver.recoveries() > 0;
      } catch (const FrontierCut&) {
        is_unit = true;  // the unit's worker re-runs this subtree and pays
        ev.kind = EventMeta::Kind::kUnit;
      } catch (const PruneCut&) {
        ev.kind = EventMeta::Kind::kPruned;
      } catch (const SleepCut&) {
        ev.kind = EventMeta::Kind::kSkip;
      } catch (const StatefulCut&) {
        // Already-visited (state, sleep-set) pair above the frontier: the
        // whole subtree (units included) is redundant. No budget consumed.
        ev.kind = EventMeta::Kind::kStateful;
        if (opts.observer != nullptr) {
          opts.observer->on_stateful_cut(1);
        }
      } catch (const StuckCut&) {
        // A shallow execution can trip the quota too (quota < frontier
        // depth's worth of picks); same accounting as in explore_subtree.
        budget.consume();
        ev.crashed = driver.crashes() > 0;
        ev.recovered = driver.recoveries() > 0;
        ev.stuck = true;
        stuck_now = true;
      }
      std::vector<Decision> trace = driver.take_trace();
      ev.reduced = driver.reduced();
      events.push_back(ev);
      if (stuck_now) {
        state.stuck_log.report(events.size() - 1,
                               stuck_message_for(opts.step_quota), trace);
        if (opts.observer != nullptr) {
          opts.observer->on_stuck(stuck_message_for(opts.step_quota));
        }
      }
      if (is_unit) {
        unit_records.emplace_back();
        UnitRecord& rec = unit_records.back();
        rec.prefix = trace;
        WorkItem item{events.size() - 1, &rec, trace};
        if (!queue.try_push(std::move(item))) {
          if (checkpointing) {
            // Graceful degradation under ring pressure: spill the *oldest*
            // queued prefix to `<checkpoint_path>.spill` (journaled, then
            // re-injected once enumeration finishes) so the newest unit
            // takes its slot and enumeration keeps streaming instead of
            // stalling behind a slow subtree.
            while (!queue.try_push(std::move(item))) {
              WorkItem oldest;
              if (queue.try_pop(oldest)) {
                if (!spill_out.is_open()) {
                  spill_out.open(opts.checkpoint_path + ".spill",
                                 std::ios::trunc);
                }
                spill_out << "{\"kind\":\"spill\",\"event\":"
                          << oldest.event_index << ",\"prefix\":\""
                          << encode_decisions(oldest.prefix) << "\"}\n";
                spill_out.flush();
                spilled.push_back(std::move(oldest));
              }
            }
          } else {
            // No spill target: drain one unit here (natural backpressure).
            // Drop our budget hold first — the drained subtree claims its
            // own, and a grant held across a blocking drain could starve
            // parked peers into deadlock.
            while (!queue.try_push(std::move(item))) {
              budget.release();
              WorkItem mine;
              if (queue.try_pop(mine)) {
                process_item(std::move(mine));
              }
            }
          }
        }
        {
          const std::lock_guard<std::mutex> lk(qmu);
        }
        qcv.notify_one();
      }
      std::int64_t advance_prunes = 0;
      std::int64_t advance_reduced = 0;
      const bool more =
          advance(trace, 0, prune, advance_prunes, advance_reduced);
      // Subtrees pruned or reduction-skipped while advancing sit between
      // this event and the next in canonical order (in particular *after* a
      // unit's whole subtree); record them separately so truncated tallies
      // stay exact.
      for (std::int64_t i = 0; i < advance_prunes; ++i) {
        events.push_back(EventMeta{EventMeta::Kind::kPruned, 0});
      }
      if (advance_reduced > 0) {
        events.push_back(
            EventMeta{EventMeta::Kind::kSkip, advance_reduced});
      }
      if (opts.observer != nullptr && ev.reduced + advance_reduced > 0) {
        opts.observer->on_reduced(ev.reduced + advance_reduced);
      }
      if (!more) {
        producer_finished_tree = true;
        break;
      }
      if (checkpointing &&
          events.size() - last_snapshot_events >=
              static_cast<std::size_t>(opts.checkpoint_every)) {
        last_snapshot_events = events.size();
        write_parallel_snapshot(trace);
      }
      prefix = std::move(trace);
    }

    // Re-inject spilled units, oldest first: the ring only drains from here
    // on, so this terminates; inline drains keep the producer useful while
    // it waits for slots.
    for (WorkItem& it : spilled) {
      while (!queue.try_push(std::move(it))) {
        budget.release();
        WorkItem mine;
        if (queue.try_pop(mine)) {
          process_item(std::move(mine));
        }
      }
      {
        const std::lock_guard<std::mutex> lk(qmu);
      }
      qcv.notify_one();
    }
  }  // producer's budget hold refunded here

  {
    const std::lock_guard<std::mutex> lk(qmu);
    producer_done = true;
  }
  qcv.notify_all();
  worker_loop();  // help drain whatever is still queued
  for (std::thread& t : pool) {
    t.join();
  }

  // Canonical aggregation: walk the emission sequence in order, stopping at
  // the winning violation. Units after the winner are excluded even if they
  // ran (the serial DFS would never have entered them), so `executions` and
  // `pruned_subtrees` are bit-identical to the serial explorer's regardless
  // of thread timing.
  Explorer::Result result;
  const std::optional<ViolationLog::Entry> win = state.log.winner();
  const std::uint64_t winner_index = win ? win->index : ViolationLog::kNone;
  bool all_finished = producer_finished_tree;
  std::size_t u = 0;
  for (std::size_t i = 0; i < events.size() && i <= winner_index; ++i) {
    result.reduced_subtrees += events[i].reduced;
    switch (events[i].kind) {
      case EventMeta::Kind::kExecution:
        ++result.executions;
        if (events[i].crashed) {
          ++result.crashed_executions;
        }
        if (events[i].recovered) {
          ++result.recovered_executions;
        }
        if (events[i].stuck) {
          ++result.stuck_executions;
        }
        break;
      case EventMeta::Kind::kPruned:
        ++result.pruned_subtrees;
        break;
      case EventMeta::Kind::kSkip:
        break;  // reduction skips carried in the `reduced` field above
      case EventMeta::Kind::kStateful:
        ++result.stateful_cuts;
        break;
      case EventMeta::Kind::kUnit:
        result.executions += unit_records[u].stats.executions;
        result.pruned_subtrees += unit_records[u].stats.pruned;
        result.reduced_subtrees += unit_records[u].stats.reduced;
        result.crashed_executions += unit_records[u].stats.crashed;
        result.recovered_executions += unit_records[u].stats.recovered;
        result.stuck_executions += unit_records[u].stats.stuck;
        result.stateful_cuts += unit_records[u].stats.stateful;
        all_finished = all_finished && unit_records[u].stats.finished;
        ++u;
        break;
    }
  }
  if (state.visited != nullptr) {
    result.stateful_states =
        static_cast<std::int64_t>(state.visited->size());
  }
  if (win) {
    result.violation = win->message;
    result.violating_trace = win->trace;
  } else {
    // Exhaustion manifests as an unfinished unit or an unfinished frontier,
    // so `complete` needs no separate exhaustion flag (and cannot be
    // spuriously false when the budget exactly equals the tree size).
    result.complete = all_finished;
  }
  // The canonically first stuck execution — reported only when the serial
  // DFS would have reached it before stopping (its index at or before the
  // winner's; within one unit, DFS order puts the unit's stuck before its
  // violation).
  if (const std::optional<ViolationLog::Entry> sw = state.stuck_log.winner();
      sw && sw->index <= winner_index) {
    result.first_stuck = StuckExecution{sw->message, sw->trace};
  }
  return result;
}

Explorer::Result result_from_snapshot(const ExplorerSnapshot& s) {
  Explorer::Result r;
  r.executions = s.executions;
  r.pruned_subtrees = s.pruned;
  r.reduced_subtrees = s.reduced;
  r.crashed_executions = s.crashed;
  r.recovered_executions = s.recovered;
  r.stuck_executions = s.stuck;
  r.stateful_cuts = s.stateful_cuts;
  r.complete = s.complete;
  if (s.violation) {
    r.violation = s.violation;
    r.violating_trace = s.violating_trace;
  }
  if (s.stuck_message) {
    r.first_stuck = StuckExecution{*s.stuck_message, s.stuck_trace};
  }
  return r;
}

ExplorerSnapshot snapshot_of_result(const Explorer::Options& opts,
                                    const Explorer::Result& r) {
  ExplorerSnapshot s = snapshot_proto(opts, nullptr);
  s.executions = r.executions;
  s.pruned = r.pruned_subtrees;
  s.reduced = r.reduced_subtrees;
  s.crashed = r.crashed_executions;
  s.recovered = r.recovered_executions;
  s.stuck = r.stuck_executions;
  s.stateful_cuts = r.stateful_cuts;
  s.done = true;
  s.complete = r.complete;
  if (r.violation) {
    s.violation = r.violation;
    s.violating_trace = r.violating_trace;
  }
  if (r.first_stuck) {
    s.stuck_message = r.first_stuck->message;
    s.stuck_trace = r.first_stuck->trace;
  }
  return s;
}

void validate_options(const Explorer::Options& opts) {
  if (opts.max_executions <= 0) {
    throw SimError("Explorer::Options::max_executions must be positive, got " +
                   std::to_string(opts.max_executions));
  }
  if (opts.frontier_depth < 0) {
    throw SimError(
        "Explorer::Options::frontier_depth must be non-negative, got " +
        std::to_string(opts.frontier_depth));
  }
  if (opts.max_crashes < 0) {
    throw SimError(
        "Explorer::Options::max_crashes must be non-negative, got " +
        std::to_string(opts.max_crashes));
  }
  if (opts.max_recoveries < 0) {
    throw SimError(
        "Explorer::Options::max_recoveries must be non-negative, got " +
        std::to_string(opts.max_recoveries));
  }
  if (opts.step_quota < 0) {
    throw SimError("Explorer::Options::step_quota must be non-negative, got " +
                   std::to_string(opts.step_quota));
  }
  if (opts.stateful_capacity <= 0) {
    throw SimError(
        "Explorer::Options::stateful_capacity must be positive, got " +
        std::to_string(opts.stateful_capacity));
  }
  if (opts.stateful && opts.prune) {
    // A pruned subtree is marked visited without having been explored, so a
    // later stateful cut on its fingerprint would skip unexplored behaviour.
    throw SimError(
        "Explorer::Options::stateful cannot be combined with a prune hook");
  }
  if (opts.checkpoint_every <= 0) {
    throw SimError("Explorer::Options::checkpoint_every must be positive, "
                   "got " +
                   std::to_string(opts.checkpoint_every));
  }
  if (opts.frontier_queue_capacity == 0) {
    throw SimError(
        "Explorer::Options::frontier_queue_capacity must be non-zero");
  }
}

// The shared implementation behind explore() and resume(): runs the search
// over the part of the tree at and after `initial_prefix`, with `base`
// carrying a resumed snapshot's watermark (tallies folded into the final
// Result, stuck winner taking canonical precedence).
Explorer::Result explore_impl(const ExecutionBody& body,
                              const Explorer::Options& opts,
                              std::vector<Decision> initial_prefix,
                              const ExplorerSnapshot* base) {
  const int threads = Explorer::resolve_threads(opts.threads);
  const ExplorerSnapshot proto = snapshot_proto(opts, base);
  const std::int64_t budget = opts.max_executions - proto.executions;
  Explorer::Result result;
  if (threads <= 1) {
    SearchState state;
    state.max_executions = budget;
    if (opts.stateful) {
      state.visited =
          std::make_unique<detail::VisitedSet>(
            static_cast<std::size_t>(opts.stateful_capacity));
    }
    SerialCheckpoint cp{&opts.checkpoint_path, opts.checkpoint_every, &proto,
                        0};
    SerialCheckpoint* sink = opts.checkpoint_path.empty() ? nullptr : &cp;
    SubtreeStats stats = explore_subtree(body, std::move(initial_prefix),
                                         /*floor=*/0, opts, state,
                                         /*my_index=*/0, sink);
    result = finish_serial(std::move(stats));
    if (state.visited != nullptr) {
      result.stateful_states =
          static_cast<std::int64_t>(state.visited->size());
    }
  } else {
    result = explore_parallel(body, opts, threads, std::move(initial_prefix),
                              proto, budget);
  }
  // Fold the resumed-from watermark back in. The base's stuck winner, when
  // present, canonically precedes anything found after the watermark.
  result.executions += proto.executions;
  result.pruned_subtrees += proto.pruned;
  result.reduced_subtrees += proto.reduced;
  result.crashed_executions += proto.crashed;
  result.recovered_executions += proto.recovered;
  result.stuck_executions += proto.stuck;
  result.stateful_cuts += proto.stateful_cuts;
  if (proto.stuck_message) {
    result.first_stuck =
        StuckExecution{*proto.stuck_message, proto.stuck_trace};
  }
  if (opts.shrink_violations && result.violation) {
    result.violating_trace =
        Explorer::shrink(body, std::move(result.violating_trace));
  }
  if (!opts.checkpoint_path.empty()) {
    save_snapshot(opts.checkpoint_path, snapshot_of_result(opts, result));
  }
  return result;
}

// Lexicographic order on decision strings (chosen values; a proper prefix
// precedes its extensions). The shrinker's notion of "smaller reproducer".
bool lex_less(const std::vector<Decision>& a, const std::vector<Decision>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].chosen != b[i].chosen) {
      return a[i].chosen < b[i].chosen;
    }
  }
  return a.size() < b.size();
}

// One shrink probe: replays `prefix` (reduction off, so recorded sleep-set
// metadata is ignored and every skip the original search made is re-opened)
// and lets the ReplayDriver zero-extend it to a complete execution. Returns
// the violation, if any, plus the canonical full decision string. Crash and
// recovery flags are preserved: recorded crash/recovery decisions replay
// their faults and restarts, and the zero-extension injects no fresh ones
// (a shrunk reproducer's fault pattern is exactly the prefix's).
struct ShrinkProbe {
  std::optional<std::string> violation;
  std::vector<Decision> trace;
};

ShrinkProbe probe(const ExecutionBody& body, std::vector<Decision> prefix) {
  for (Decision& d : prefix) {
    d.enabled = 0;  // stale reduction metadata from the recording search
    d.sleep = 0;
  }
  ReplayDriver driver(std::move(prefix));
  ShrinkProbe out;
  try {
    body(driver);
  } catch (const std::exception& e) {
    out.violation = e.what();
  }
  out.trace = driver.take_trace();
  return out;
}

}  // namespace

std::optional<std::string> run_one(const ExecutionBody& body,
                                   SchedulePolicy& policy,
                                   TraceObserver* observer) {
  // Thread-default installation is what lets the observer see runtimes the
  // body constructs internally; nullptr deliberately masks any outer scope
  // so unobserved searches stay unobserved.
  const ScopedObserver scope(observer);
  try {
    body(policy);
  } catch (const std::exception& e) {
    if (observer != nullptr) {
      observer->on_violation(e.what());
    }
    return std::string(e.what());
  }
  return std::nullopt;
}

std::vector<ReplayDriver::Decision> Explorer::shrink(
    const ExecutionBody& body, std::vector<ReplayDriver::Decision> trace) {
  ShrinkProbe current = probe(body, std::move(trace));
  if (!current.violation) {
    return current.trace;  // not a reproducer; hand back the canonical form
  }
  // Greedy descent: adopt any strictly lex-smaller failing candidate and
  // restart. Strictness is what terminates the loop — a truncation whose
  // zero-extension reproduces the identical string is not an improvement.
  // Termination: candidate strings for a fixed world have bounded length
  // (the run's decision count) and bounded values (arities), and every
  // adoption strictly decreases in a total order on that finite set.
  bool improved = true;
  while (improved) {
    improved = false;
    // Pass 1 — prefix truncations, shortest first: the biggest wins come
    // from chopping the whole tail.
    for (std::size_t len = 0; len < current.trace.size() && !improved;
         ++len) {
      ShrinkProbe cand = probe(
          body, std::vector<Decision>(current.trace.begin(),
                                      current.trace.begin() +
                                          static_cast<std::ptrdiff_t>(len)));
      if (cand.violation && lex_less(cand.trace, current.trace)) {
        current = std::move(cand);
        improved = true;
      }
    }
    if (improved) {
      continue;
    }
    // Pass 2 — lower one decision and drop the suffix. Lowering position p
    // keeps the prefix intact, so the candidate is lex-smaller by
    // construction whenever it still fails.
    for (std::size_t pos = 0; pos < current.trace.size() && !improved;
         ++pos) {
      for (std::uint32_t v = 0; v < current.trace[pos].chosen && !improved;
           ++v) {
        std::vector<Decision> prefix(
            current.trace.begin(),
            current.trace.begin() + static_cast<std::ptrdiff_t>(pos) + 1);
        prefix[pos].chosen = v;
        ShrinkProbe cand = probe(body, std::move(prefix));
        if (cand.violation && lex_less(cand.trace, current.trace)) {
          current = std::move(cand);
          improved = true;
        }
      }
    }
  }
  return current.trace;
}

int Explorer::resolve_threads(int threads) noexcept {
  if (threads > 0) {
    return threads;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Explorer::Result Explorer::explore(const ExecutionBody& body, Options opts) {
  validate_options(opts);
  return explore_impl(body, opts, {}, nullptr);
}

Explorer::Result Explorer::resume(const ExecutionBody& body,
                                  const std::string& snapshot_path,
                                  Options opts) {
  validate_options(opts);
  ExplorerSnapshot snap = load_snapshot(snapshot_path);
  if (snap.max_executions != opts.max_executions ||
      snap.max_crashes != opts.max_crashes ||
      snap.max_recoveries != opts.max_recoveries ||
      snap.step_quota != opts.step_quota ||
      snap.reduction != (opts.reduction == Reduction::kSleepSets) ||
      snap.stateful != opts.stateful) {
    throw SimError("Explorer::resume: snapshot " + snapshot_path +
                   " was taken under different options (max_executions, "
                   "max_crashes, max_recoveries, step_quota, reduction and "
                   "stateful must match)");
  }
  if (snap.done || opts.max_executions - snap.executions <= 0) {
    // Finished searches (and watermarks that already spent the whole
    // budget) resume to their saved Result without re-running anything.
    return result_from_snapshot(snap);
  }
  std::vector<Decision> prefix = snap.prefix;
  return explore_impl(body, opts, std::move(prefix), &snap);
}

void Explorer::replay(const ExecutionBody& body,
                      std::vector<ReplayDriver::Decision> trace) {
  ReplayDriver driver(std::move(trace));
  body(driver);
}

RandomSweep::Result RandomSweep::run(const ExecutionBody& body,
                                     std::int64_t runs,
                                     std::uint64_t first_seed, int threads,
                                     TraceObserver* observer) {
  Result result;
  if (runs <= 0) {
    return result;
  }
  const int workers = std::min<std::int64_t>(
      Explorer::resolve_threads(threads), runs);
  if (workers <= 1) {
    for (std::int64_t i = 0; i < runs; ++i) {
      const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);
      RandomDriver driver(seed);
      ++result.runs;
      if (std::optional<std::string> violation =
              run_one(body, driver, observer)) {
        result.failing_seed = seed;
        result.violation = std::move(violation);
        return result;
      }
    }
    return result;
  }

  // Parallel sweep: workers claim fixed-size blocks of the seed range in
  // ascending order; failures are aggregated by seed index, so the reported
  // failure is the least failing seed — exactly what the serial sweep
  // returns — and blocks past the current best are never started.
  constexpr std::int64_t kBlock = 64;
  ViolationLog log;
  std::atomic<std::int64_t> next_block{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&]() {
      for (;;) {
        const std::int64_t start =
            next_block.fetch_add(1, std::memory_order_relaxed) * kBlock;
        if (start >= runs ||
            log.best_index() < static_cast<std::uint64_t>(start)) {
          return;
        }
        const std::int64_t end = std::min(start + kBlock, runs);
        for (std::int64_t i = start; i < end; ++i) {
          if (log.best_index() < static_cast<std::uint64_t>(i)) {
            break;
          }
          RandomDriver driver(first_seed + static_cast<std::uint64_t>(i));
          if (std::optional<std::string> violation =
                  run_one(body, driver, observer)) {
            log.report(static_cast<std::uint64_t>(i), *violation, {});
            break;  // later seeds in this block cannot beat index i
          }
        }
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }

  if (const std::optional<ViolationLog::Entry> win = log.winner()) {
    result.runs = static_cast<std::int64_t>(win->index) + 1;
    result.failing_seed = first_seed + win->index;
    result.violation = win->message;
  } else {
    result.runs = runs;
  }
  return result;
}

}  // namespace subc
