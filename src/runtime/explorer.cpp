#include "subc/runtime/explorer.hpp"

#include <exception>
#include <utility>

#include "subc/runtime/value.hpp"

namespace subc {

Explorer::Result Explorer::explore(const ExecutionBody& body, Options opts) {
  Result result;
  std::vector<ReplayDriver::Decision> prefix;

  while (result.executions < opts.max_executions) {
    ReplayDriver driver(prefix);
    ++result.executions;
    try {
      body(driver);
    } catch (const std::exception& e) {
      result.violation = e.what();
      result.violating_trace = driver.trace();
      return result;
    }

    // Backtrack: bump the deepest decision that still has unexplored
    // options; drop everything after it.
    std::vector<ReplayDriver::Decision> trace = driver.trace();
    std::size_t i = trace.size();
    while (i > 0) {
      ReplayDriver::Decision& d = trace[i - 1];
      if (d.chosen + 1 < d.arity) {
        ++d.chosen;
        break;
      }
      --i;
    }
    if (i == 0) {
      result.complete = true;
      return result;
    }
    trace.resize(i);
    prefix = std::move(trace);
  }
  return result;  // budget exhausted, incomplete
}

void Explorer::replay(const ExecutionBody& body,
                      std::vector<ReplayDriver::Decision> trace) {
  ReplayDriver driver(std::move(trace));
  body(driver);
}

RandomSweep::Result RandomSweep::run(const ExecutionBody& body,
                                     std::int64_t runs,
                                     std::uint64_t first_seed) {
  Result result;
  for (std::int64_t i = 0; i < runs; ++i) {
    const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);
    RandomDriver driver(seed);
    ++result.runs;
    try {
      body(driver);
    } catch (const std::exception& e) {
      result.failing_seed = seed;
      result.violation = e.what();
      return result;
    }
  }
  return result;
}

}  // namespace subc
