#include "subc/runtime/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "subc/checking/violation_log.hpp"
#include "subc/runtime/observer.hpp"
#include "subc/runtime/value.hpp"

namespace subc {
namespace {

using Decision = ReplayDriver::Decision;

// State shared by every participant of one exploration (the frontier
// enumerator and all subtree workers). The budget is reserved *before* an
// execution runs and refunded when the attempt turns out not to be a real
// execution (frontier cut, pruned subtree), so a completed exploration
// reports exactly `min(tree size, max_executions)` executions.
struct SearchState {
  std::int64_t max_executions = 0;
  std::atomic<std::int64_t> budget_used{0};
  std::atomic<bool> exhausted{false};
  ViolationLog log;

  bool reserve() {
    if (budget_used.fetch_add(1, std::memory_order_relaxed) >=
        max_executions) {
      budget_used.fetch_sub(1, std::memory_order_relaxed);
      exhausted.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
  void refund() { budget_used.fetch_sub(1, std::memory_order_relaxed); }
};

// Tallies of one subtree work unit, merged in canonical order afterwards.
struct SubtreeStats {
  std::int64_t executions = 0;
  std::int64_t pruned = 0;
  std::int64_t reduced = 0;
  std::optional<std::string> violation;
  std::vector<Decision> trace;
  /// True when the subtree was fully explored or stopped at its own (first)
  /// violation — false only on cancellation or budget exhaustion.
  bool finished = false;
};

// True when sleep-set metadata recorded at `d` says option `chosen` is
// redundant: its process was asleep when the decision point was first
// reached (`Decision::sleep` stores the inherited sleep set; earlier sibling
// options all have distinct pids, so membership there never changes the
// verdict). `d.enabled == 0` means no metadata — never skip.
bool option_asleep(const Decision& d, std::uint32_t chosen) {
  if (d.enabled == 0) {
    return false;
  }
  // Pid of the chosen option = position of its (chosen-th) set bit.
  std::uint64_t rest = d.enabled;
  for (std::uint32_t c = 0; c < chosen; ++c) {
    rest &= rest - 1;  // clear lowest set bit
  }
  const std::uint64_t bit = rest & ~(rest - 1);  // lowest remaining
  return (d.sleep & bit) != 0;
}

// Advances `trace` to the next DFS prefix inside the subtree whose first
// `floor` decisions are fixed: bump the deepest decision that still has
// unexplored options, dropping everything after it. Options asleep under
// the recorded reduction metadata are skipped (counted in `reduced`), and
// `prune` is consulted on every surviving candidate prefix (its subtree is
// skipped and counted when rejected). Returns false when the subtree is
// exhausted.
bool advance(std::vector<Decision>& trace, std::size_t floor,
             const Explorer::PruneFn& prune, std::int64_t& pruned,
             std::int64_t& reduced) {
  std::size_t i = trace.size();
  while (i > floor) {
    Decision& d = trace[i - 1];
    if (d.chosen + 1 < d.arity) {
      ++d.chosen;
      if (option_asleep(d, d.chosen)) {
        ++reduced;
        continue;  // same position, next option
      }
      if (prune && prune(std::span<const Decision>(trace.data(), i))) {
        ++pruned;
        continue;  // same position, next option
      }
      trace.resize(i);
      return true;
    }
    --i;
  }
  return false;
}

// Restart-DFS over the subtree rooted at `prefix` (decisions below `floor`
// are fixed). Stops at the subtree's first violation — the lexicographically
// least one, since DFS visits decision strings in lexicographic order — on
// budget exhaustion, or when a canonically earlier work unit has already
// reported a violation (nothing in this subtree can win then).
SubtreeStats explore_subtree(const ExecutionBody& body,
                             std::vector<Decision> prefix, std::size_t floor,
                             const Explorer::Options& opts, SearchState& state,
                             std::uint64_t my_index) {
  SubtreeStats stats;
  const Explorer::PruneFn& prune = opts.prune;
  for (;;) {
    if (state.log.best_index() < my_index) {
      return stats;  // cancelled; these tallies will be discarded
    }
    if (!state.reserve()) {
      return stats;  // budget exhausted
    }
    ReplayDriver driver(std::move(prefix));
    driver.set_prune(prune ? &prune : nullptr);
    driver.set_reduction(opts.reduction == Reduction::kSleepSets);
    try {
      if (std::optional<std::string> violation =
              run_one(body, driver, opts.observer)) {
        ++stats.executions;
        stats.violation = std::move(violation);
        stats.reduced += driver.reduced();
        stats.trace = driver.take_trace();
        stats.finished = true;
        return stats;
      }
      ++stats.executions;
    } catch (const PruneCut&) {
      ++stats.pruned;
      state.refund();
    } catch (const SleepCut&) {
      state.refund();  // redundant subtree, not an execution
    }
    stats.reduced += driver.reduced();
    std::vector<Decision> trace = driver.take_trace();
    if (!advance(trace, floor, prune, stats.pruned, stats.reduced)) {
      stats.finished = true;
      return stats;
    }
    prefix = std::move(trace);
  }
}

// One entry of the canonical (serial-DFS-order) emission sequence produced
// by frontier enumeration: a completed shallow execution, a pruned or
// reduction-skipped subtree, or a frontier work unit (a depth-d prefix whose
// subtree a worker explores). Every event additionally carries the
// reduction skips that occurred at (and while advancing past) it, so that
// tallies truncated at a winning violation stay exact.
struct Event {
  enum class Kind { kExecution, kPruned, kSkip, kUnit };
  Kind kind;
  std::vector<Decision> payload;  // kUnit: the prefix; violating kExecution:
                                  // the trace
  std::optional<std::string> violation;
  std::int64_t reduced = 0;
};

// Enumerates the decision tree down to `depth` recorded decisions, in serial
// DFS order. Stops early at the first violating shallow execution (every
// later event is canonically greater, so it wins outright) or when the
// budget is exhausted.
std::vector<Event> enumerate_frontier(const ExecutionBody& body,
                                      std::size_t depth,
                                      const Explorer::Options& opts,
                                      SearchState& state) {
  const Explorer::PruneFn& prune = opts.prune;
  std::vector<Event> events;
  std::vector<Decision> prefix;
  for (;;) {
    if (!state.reserve()) {
      return events;
    }
    ReplayDriver driver(std::move(prefix));
    driver.set_decision_limit(depth);
    driver.set_prune(prune ? &prune : nullptr);
    driver.set_reduction(opts.reduction == Reduction::kSleepSets);
    bool cut = false;
    bool pruned_here = false;
    bool skipped_here = false;
    try {
      if (std::optional<std::string> violation =
              run_one(body, driver, opts.observer)) {
        Event ev{Event::Kind::kExecution, driver.take_trace(),
                 std::move(violation)};
        ev.reduced = driver.reduced();
        events.push_back(std::move(ev));
        return events;
      }
    } catch (const FrontierCut&) {
      cut = true;
      state.refund();  // the unit's worker re-runs this subtree from scratch
    } catch (const PruneCut&) {
      pruned_here = true;
      state.refund();
    } catch (const SleepCut&) {
      skipped_here = true;
      state.refund();
    }
    std::vector<Decision> trace = driver.take_trace();
    Event ev{Event::Kind::kExecution, {}, std::nullopt};
    if (cut) {
      ev.kind = Event::Kind::kUnit;
      ev.payload = trace;
    } else if (pruned_here) {
      ev.kind = Event::Kind::kPruned;
    } else if (skipped_here) {
      ev.kind = Event::Kind::kSkip;
    }
    ev.reduced = driver.reduced();
    events.push_back(std::move(ev));
    std::int64_t advance_prunes = 0;
    std::int64_t advance_reduced = 0;
    const bool more = advance(trace, 0, prune, advance_prunes, advance_reduced);
    // Subtrees pruned or reduction-skipped while advancing sit between this
    // event and the next in canonical order (in particular *after* a unit's
    // whole subtree); record them separately so truncated tallies stay exact.
    for (std::int64_t i = 0; i < advance_prunes; ++i) {
      events.push_back(Event{Event::Kind::kPruned, {}, std::nullopt});
    }
    if (advance_reduced > 0) {
      Event skip{Event::Kind::kSkip, {}, std::nullopt};
      skip.reduced = advance_reduced;
      events.push_back(std::move(skip));
    }
    if (!more) {
      return events;
    }
    prefix = std::move(trace);
  }
}

// Picks a frontier depth giving roughly 16+ work items per worker (assuming
// the minimum branching factor of 2), so the pool load-balances even when
// subtree sizes are badly skewed.
std::size_t auto_frontier_depth(int threads) {
  std::size_t depth = 1;
  while ((std::size_t{1} << depth) < static_cast<std::size_t>(threads) * 16 &&
         depth < 10) {
    ++depth;
  }
  return depth;
}

Explorer::Result finish_serial(SubtreeStats stats, const SearchState& state) {
  Explorer::Result result;
  result.executions = stats.executions;
  result.pruned_subtrees = stats.pruned;
  result.reduced_subtrees = stats.reduced;
  if (stats.violation) {
    result.violation = std::move(stats.violation);
    result.violating_trace = std::move(stats.trace);
  } else {
    result.complete = stats.finished && !state.exhausted.load();
  }
  return result;
}

Explorer::Result explore_parallel(const ExecutionBody& body,
                                  const Explorer::Options& opts, int threads) {
  SearchState state;
  state.max_executions = opts.max_executions;
  const std::size_t depth = opts.frontier_depth > 0
                                ? static_cast<std::size_t>(opts.frontier_depth)
                                : auto_frontier_depth(threads);
  const std::vector<Event> events =
      enumerate_frontier(body, depth, opts, state);

  // A violating shallow execution terminates enumeration; it is the last
  // event and canonically beats everything that would have followed.
  if (!events.empty() && events.back().violation) {
    state.log.report(events.size() - 1, *events.back().violation,
                     events.back().payload);
  }

  std::vector<std::size_t> unit_events;  // event index per unit, ascending
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == Event::Kind::kUnit) {
      unit_events.push_back(i);
    }
  }
  std::vector<SubtreeStats> unit_stats(unit_events.size());

  if (!unit_events.empty() && !state.exhausted.load()) {
    const int workers = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(threads), unit_events.size()));
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&]() {
        for (;;) {
          const std::size_t u = next.fetch_add(1, std::memory_order_relaxed);
          if (u >= unit_events.size()) {
            return;
          }
          const std::uint64_t ev = unit_events[u];
          // Units are claimed in canonical order, so once a violation beats
          // this unit it beats every later one too: stop, don't skip.
          if (state.log.best_index() < ev ||
              state.exhausted.load(std::memory_order_relaxed)) {
            return;
          }
          unit_stats[u] = explore_subtree(body, events[ev].payload, depth,
                                          opts, state, ev);
          if (unit_stats[u].violation) {
            state.log.report(ev, *unit_stats[u].violation,
                             unit_stats[u].trace);
          }
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  // Canonical aggregation: walk the emission sequence in order, stopping at
  // the winning violation. Units after the winner are excluded even if they
  // ran (the serial DFS would never have entered them), so `executions` and
  // `pruned_subtrees` are bit-identical to the serial explorer's regardless
  // of thread timing.
  Explorer::Result result;
  const std::optional<ViolationLog::Entry> win = state.log.winner();
  const std::uint64_t winner_index = win ? win->index : ViolationLog::kNone;
  bool all_finished = true;
  std::size_t u = 0;
  for (std::size_t i = 0; i < events.size() && i <= winner_index; ++i) {
    result.reduced_subtrees += events[i].reduced;
    switch (events[i].kind) {
      case Event::Kind::kExecution:
        ++result.executions;
        break;
      case Event::Kind::kPruned:
        ++result.pruned_subtrees;
        break;
      case Event::Kind::kSkip:
        break;  // reduction skips carried in the `reduced` field above
      case Event::Kind::kUnit:
        result.executions += unit_stats[u].executions;
        result.pruned_subtrees += unit_stats[u].pruned;
        result.reduced_subtrees += unit_stats[u].reduced;
        all_finished = all_finished && unit_stats[u].finished;
        ++u;
        break;
    }
  }
  if (win) {
    result.violation = win->message;
    result.violating_trace = win->trace;
  } else {
    result.complete = all_finished && !state.exhausted.load();
  }
  return result;
}

// Lexicographic order on decision strings (chosen values; a proper prefix
// precedes its extensions). The shrinker's notion of "smaller reproducer".
bool lex_less(const std::vector<Decision>& a, const std::vector<Decision>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].chosen != b[i].chosen) {
      return a[i].chosen < b[i].chosen;
    }
  }
  return a.size() < b.size();
}

// One shrink probe: replays `prefix` (reduction off, so recorded sleep-set
// metadata is ignored and every skip the original search made is re-opened)
// and lets the ReplayDriver zero-extend it to a complete execution. Returns
// the violation, if any, plus the canonical full decision string.
struct ShrinkProbe {
  std::optional<std::string> violation;
  std::vector<Decision> trace;
};

ShrinkProbe probe(const ExecutionBody& body, std::vector<Decision> prefix) {
  for (Decision& d : prefix) {
    d.enabled = 0;  // stale reduction metadata from the recording search
    d.sleep = 0;
  }
  ReplayDriver driver(std::move(prefix));
  ShrinkProbe out;
  try {
    body(driver);
  } catch (const std::exception& e) {
    out.violation = e.what();
  }
  out.trace = driver.take_trace();
  return out;
}

}  // namespace

std::optional<std::string> run_one(const ExecutionBody& body,
                                   SchedulePolicy& policy,
                                   TraceObserver* observer) {
  // Thread-default installation is what lets the observer see runtimes the
  // body constructs internally; nullptr deliberately masks any outer scope
  // so unobserved searches stay unobserved.
  const ScopedObserver scope(observer);
  try {
    body(policy);
  } catch (const std::exception& e) {
    if (observer != nullptr) {
      observer->on_violation(e.what());
    }
    return std::string(e.what());
  }
  return std::nullopt;
}

std::vector<ReplayDriver::Decision> Explorer::shrink(
    const ExecutionBody& body, std::vector<ReplayDriver::Decision> trace) {
  ShrinkProbe current = probe(body, std::move(trace));
  if (!current.violation) {
    return current.trace;  // not a reproducer; hand back the canonical form
  }
  // Greedy descent: adopt any strictly lex-smaller failing candidate and
  // restart. Strictness is what terminates the loop — a truncation whose
  // zero-extension reproduces the identical string is not an improvement.
  // Termination: candidate strings for a fixed world have bounded length
  // (the run's decision count) and bounded values (arities), and every
  // adoption strictly decreases in a total order on that finite set.
  bool improved = true;
  while (improved) {
    improved = false;
    // Pass 1 — prefix truncations, shortest first: the biggest wins come
    // from chopping the whole tail.
    for (std::size_t len = 0; len < current.trace.size() && !improved;
         ++len) {
      ShrinkProbe cand = probe(
          body, std::vector<Decision>(current.trace.begin(),
                                      current.trace.begin() +
                                          static_cast<std::ptrdiff_t>(len)));
      if (cand.violation && lex_less(cand.trace, current.trace)) {
        current = std::move(cand);
        improved = true;
      }
    }
    if (improved) {
      continue;
    }
    // Pass 2 — lower one decision and drop the suffix. Lowering position p
    // keeps the prefix intact, so the candidate is lex-smaller by
    // construction whenever it still fails.
    for (std::size_t pos = 0; pos < current.trace.size() && !improved;
         ++pos) {
      for (std::uint32_t v = 0; v < current.trace[pos].chosen && !improved;
           ++v) {
        std::vector<Decision> prefix(
            current.trace.begin(),
            current.trace.begin() + static_cast<std::ptrdiff_t>(pos) + 1);
        prefix[pos].chosen = v;
        ShrinkProbe cand = probe(body, std::move(prefix));
        if (cand.violation && lex_less(cand.trace, current.trace)) {
          current = std::move(cand);
          improved = true;
        }
      }
    }
  }
  return current.trace;
}

int Explorer::resolve_threads(int threads) noexcept {
  if (threads > 0) {
    return threads;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Explorer::Result Explorer::explore(const ExecutionBody& body, Options opts) {
  if (opts.max_executions <= 0) {
    throw SimError("Explorer::Options::max_executions must be positive, got " +
                   std::to_string(opts.max_executions));
  }
  if (opts.frontier_depth < 0) {
    throw SimError(
        "Explorer::Options::frontier_depth must be non-negative, got " +
        std::to_string(opts.frontier_depth));
  }
  const int threads = resolve_threads(opts.threads);
  Result result;
  if (threads <= 1) {
    SearchState state;
    state.max_executions = opts.max_executions;
    SubtreeStats stats =
        explore_subtree(body, {}, 0, opts, state, /*my_index=*/0);
    result = finish_serial(std::move(stats), state);
  } else {
    result = explore_parallel(body, opts, threads);
  }
  if (opts.shrink_violations && result.violation) {
    result.violating_trace = shrink(body, std::move(result.violating_trace));
  }
  return result;
}

void Explorer::replay(const ExecutionBody& body,
                      std::vector<ReplayDriver::Decision> trace) {
  ReplayDriver driver(std::move(trace));
  body(driver);
}

RandomSweep::Result RandomSweep::run(const ExecutionBody& body,
                                     std::int64_t runs,
                                     std::uint64_t first_seed, int threads,
                                     TraceObserver* observer) {
  Result result;
  if (runs <= 0) {
    return result;
  }
  const int workers = std::min<std::int64_t>(
      Explorer::resolve_threads(threads), runs);
  if (workers <= 1) {
    for (std::int64_t i = 0; i < runs; ++i) {
      const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);
      RandomDriver driver(seed);
      ++result.runs;
      if (std::optional<std::string> violation =
              run_one(body, driver, observer)) {
        result.failing_seed = seed;
        result.violation = std::move(violation);
        return result;
      }
    }
    return result;
  }

  // Parallel sweep: workers claim fixed-size blocks of the seed range in
  // ascending order; failures are aggregated by seed index, so the reported
  // failure is the least failing seed — exactly what the serial sweep
  // returns — and blocks past the current best are never started.
  constexpr std::int64_t kBlock = 64;
  ViolationLog log;
  std::atomic<std::int64_t> next_block{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&]() {
      for (;;) {
        const std::int64_t start =
            next_block.fetch_add(1, std::memory_order_relaxed) * kBlock;
        if (start >= runs ||
            log.best_index() < static_cast<std::uint64_t>(start)) {
          return;
        }
        const std::int64_t end = std::min(start + kBlock, runs);
        for (std::int64_t i = start; i < end; ++i) {
          if (log.best_index() < static_cast<std::uint64_t>(i)) {
            break;
          }
          RandomDriver driver(first_seed + static_cast<std::uint64_t>(i));
          if (std::optional<std::string> violation =
                  run_one(body, driver, observer)) {
            log.report(static_cast<std::uint64_t>(i), *violation, {});
            break;  // later seeds in this block cannot beat index i
          }
        }
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }

  if (const std::optional<ViolationLog::Entry> win = log.winner()) {
    result.runs = static_cast<std::int64_t>(win->index) + 1;
    result.failing_seed = first_seed + win->index;
    result.violation = win->message;
  } else {
    result.runs = runs;
  }
  return result;
}

}  // namespace subc
