#include "subc/runtime/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "subc/checking/violation_log.hpp"
#include "subc/runtime/bounded_queue.hpp"
#include "subc/runtime/observer.hpp"
#include "subc/runtime/value.hpp"

namespace subc {
namespace {

using Decision = ReplayDriver::Decision;

// Executions claimed from the shared budget per batch. Participants grab a
// block, consume from it locally (no shared traffic per execution), and
// return what they did not use — the shared state is touched
// O(executions / kBudgetBatch) times instead of once per execution.
constexpr std::int64_t kBudgetBatch = 64;

// Ring capacity of the frontier work-unit queue (prefixes in flight).
constexpr std::size_t kQueueCapacity = 256;

// State shared by every participant of one exploration (the frontier
// enumerator and all subtree workers).
//
// Budget protocol (see BudgetScope): `granted` counts budget handed out in
// batches and not yet returned; completed executions consume from a
// participant's local batch, probes cut short (frontier cut, prune, sleep
// skip) consume nothing. A participant that is denied budget *parks* (waits
// on `cv`) instead of abandoning its subtree: as long as some other
// participant still holds an unconsumed grant, a refund may arrive and the
// parked work continues. Only when the pool is empty AND nobody holds a
// grant is the search finally exhausted (`exhausted_final`) — this is what
// makes a completed exploration report exactly `min(tree size,
// max_executions)` executions: no unit ever gives up while budget it could
// have used sits (or will be refunded) elsewhere.
struct SearchState {
  std::int64_t max_executions = 0;
  ViolationLog log;

  std::mutex mu;
  std::condition_variable cv;
  std::int64_t granted = 0;  // claimed minus refunded (never > max)
  int holders = 0;           // participants holding an unreturned grant
  bool exhausted_final = false;
};

// One participant's view of the shared budget: a locally held block of
// executions, claimed batch-wise and consumed without synchronization.
class BudgetScope {
 public:
  explicit BudgetScope(SearchState& s) : s_(s) {}
  ~BudgetScope() { release(); }

  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

  /// Ensures at least one execution's worth of budget is held, parking
  /// until budget is granted or the search is finally exhausted (returns
  /// false — the caller abandons with its unit marked unfinished).
  bool ensure() {
    if (held_ > 0) {
      return true;
    }
    std::unique_lock<std::mutex> lk(s_.mu);
    drop_locked();
    for (;;) {
      const std::int64_t avail = s_.max_executions - s_.granted;
      if (avail > 0) {
        held_ = std::min(kBudgetBatch, avail);
        s_.granted += held_;
        ++s_.holders;
        holder_ = true;
        return true;
      }
      if (s_.exhausted_final) {
        return false;
      }
      if (s_.holders == 0) {
        // Pool empty and nobody left to refund: the denier is also the
        // last drainer, so exhaustion is final. Wake every parked peer.
        s_.exhausted_final = true;
        s_.cv.notify_all();
        return false;
      }
      s_.cv.wait(lk);
    }
  }

  /// Consumes one held execution (call after each completed run).
  void consume() noexcept { --held_; }

  /// Returns the unconsumed remainder to the pool.
  void release() {
    if (!holder_) {
      return;
    }
    const std::lock_guard<std::mutex> lk(s_.mu);
    drop_locked();
  }

 private:
  // Refund `held_` and drop holder status; wake peers that can now claim,
  // or finalize exhaustion when this was the last holder of an empty pool.
  void drop_locked() {
    if (!holder_) {
      return;
    }
    s_.granted -= held_;
    held_ = 0;
    --s_.holders;
    holder_ = false;
    if (s_.granted < s_.max_executions) {
      s_.cv.notify_all();
    } else if (s_.holders == 0 && !s_.exhausted_final) {
      s_.exhausted_final = true;
      s_.cv.notify_all();
    }
  }

  SearchState& s_;
  std::int64_t held_ = 0;
  bool holder_ = false;
};

// Tallies of one subtree work unit, merged in canonical order afterwards.
struct SubtreeStats {
  std::int64_t executions = 0;
  std::int64_t pruned = 0;
  std::int64_t reduced = 0;
  std::optional<std::string> violation;
  std::vector<Decision> trace;
  /// True when the subtree was fully explored or stopped at its own (first)
  /// violation — false only on cancellation or budget exhaustion.
  bool finished = false;
};

// True when sleep-set metadata recorded at `d` says option `chosen` is
// redundant: its process was asleep when the decision point was first
// reached (`Decision::sleep` stores the inherited sleep set; earlier sibling
// options all have distinct pids, so membership there never changes the
// verdict). `d.enabled == 0` means no metadata — never skip.
bool option_asleep(const Decision& d, std::uint32_t chosen) {
  if (d.enabled == 0) {
    return false;
  }
  // Pid of the chosen option = position of its (chosen-th) set bit.
  std::uint64_t rest = d.enabled;
  for (std::uint32_t c = 0; c < chosen; ++c) {
    rest &= rest - 1;  // clear lowest set bit
  }
  const std::uint64_t bit = rest & ~(rest - 1);  // lowest remaining
  return (d.sleep & bit) != 0;
}

// Advances `trace` to the next DFS prefix inside the subtree whose first
// `floor` decisions are fixed: bump the deepest decision that still has
// unexplored options, dropping everything after it. Options asleep under
// the recorded reduction metadata are skipped (counted in `reduced`), and
// `prune` is consulted on every surviving candidate prefix (its subtree is
// skipped and counted when rejected). Returns false when the subtree is
// exhausted.
bool advance(std::vector<Decision>& trace, std::size_t floor,
             const Explorer::PruneFn& prune, std::int64_t& pruned,
             std::int64_t& reduced) {
  std::size_t i = trace.size();
  while (i > floor) {
    Decision& d = trace[i - 1];
    if (d.chosen + 1 < d.arity) {
      ++d.chosen;
      if (option_asleep(d, d.chosen)) {
        ++reduced;
        continue;  // same position, next option
      }
      if (prune && prune(std::span<const Decision>(trace.data(), i))) {
        ++pruned;
        continue;  // same position, next option
      }
      trace.resize(i);
      return true;
    }
    --i;
  }
  return false;
}

// Restart-DFS over the subtree rooted at `prefix` (decisions below `floor`
// are fixed). Stops at the subtree's first violation — the lexicographically
// least one, since DFS visits decision strings in lexicographic order — on
// budget exhaustion, or when a canonically earlier work unit has already
// reported a violation (nothing in this subtree can win then).
SubtreeStats explore_subtree(const ExecutionBody& body,
                             std::vector<Decision> prefix, std::size_t floor,
                             const Explorer::Options& opts, SearchState& state,
                             std::uint64_t my_index) {
  SubtreeStats stats;
  BudgetScope budget(state);
  const Explorer::PruneFn& prune = opts.prune;
  for (;;) {
    if (state.log.best_index() < my_index) {
      return stats;  // cancelled; these tallies will be discarded
    }
    if (!budget.ensure()) {
      return stats;  // budget finally exhausted (`finished` stays false)
    }
    const std::int64_t reduced_before = stats.reduced;
    ReplayDriver driver(std::move(prefix));
    driver.set_prune(prune ? &prune : nullptr);
    driver.set_reduction(opts.reduction == Reduction::kSleepSets);
    try {
      if (std::optional<std::string> violation =
              run_one(body, driver, opts.observer)) {
        ++stats.executions;
        budget.consume();
        stats.violation = std::move(violation);
        stats.reduced += driver.reduced();
        stats.trace = driver.take_trace();
        stats.finished = true;
        return stats;
      }
      ++stats.executions;
      budget.consume();
    } catch (const PruneCut&) {
      ++stats.pruned;  // cut probes consume no budget
    } catch (const SleepCut&) {
      // Redundant subtree, not an execution — consumes no budget.
    }
    stats.reduced += driver.reduced();
    std::vector<Decision> trace = driver.take_trace();
    const bool more =
        advance(trace, floor, prune, stats.pruned, stats.reduced);
    if (opts.observer != nullptr && stats.reduced > reduced_before) {
      opts.observer->on_reduced(stats.reduced - reduced_before);
    }
    if (!more) {
      stats.finished = true;
      return stats;
    }
    prefix = std::move(trace);
  }
}

// One entry of the canonical (serial-DFS-order) emission sequence produced
// by frontier enumeration: a completed shallow execution, a pruned or
// reduction-skipped subtree, or a frontier work unit (a depth-d prefix whose
// subtree a worker explores). Every event additionally carries the
// reduction skips that occurred at (and while advancing past) it, so that
// tallies truncated at a winning violation stay exact. Payload-free: unit
// prefixes travel in WorkItems and are freed as soon as the unit completes,
// so frontier memory is O(events) small entries + O(queue) prefixes rather
// than O(subtrees × depth).
struct EventMeta {
  enum class Kind { kExecution, kPruned, kSkip, kUnit };
  Kind kind = Kind::kExecution;
  std::int64_t reduced = 0;
};

// One frontier work unit streamed from the enumerator to a worker. The
// stats slot is a stable pointer into the producer-owned deque; the event
// index orders the unit canonically for cancellation and aggregation.
struct WorkItem {
  std::uint64_t event_index = 0;
  SubtreeStats* stats = nullptr;
  std::vector<Decision> prefix;
};

// Picks a frontier depth giving roughly 16+ work items per worker (assuming
// the minimum branching factor of 2), so the pool load-balances even when
// subtree sizes are badly skewed.
std::size_t auto_frontier_depth(int threads) {
  std::size_t depth = 1;
  while ((std::size_t{1} << depth) < static_cast<std::size_t>(threads) * 16 &&
         depth < 10) {
    ++depth;
  }
  return depth;
}

Explorer::Result finish_serial(SubtreeStats stats) {
  Explorer::Result result;
  result.executions = stats.executions;
  result.pruned_subtrees = stats.pruned;
  result.reduced_subtrees = stats.reduced;
  if (stats.violation) {
    result.violation = std::move(stats.violation);
    result.violating_trace = std::move(stats.trace);
  } else {
    // Budget exhaustion leaves `finished` false, so no separate flag needed.
    result.complete = stats.finished;
  }
  return result;
}

// Streaming parallel exploration: the calling thread enumerates the decision
// tree down to the frontier depth in serial DFS order, pushing each work
// unit through a bounded ring to `threads - 1` workers as it is discovered
// (and draining units itself when the ring backs up, or after enumeration
// completes). Canonical aggregation afterwards walks the emission sequence
// in order, truncating at the winning violation, so every reported tally is
// bit-identical to the serial explorer's regardless of thread timing.
Explorer::Result explore_parallel(const ExecutionBody& body,
                                  const Explorer::Options& opts, int threads) {
  SearchState state;
  state.max_executions = opts.max_executions;
  const std::size_t depth = opts.frontier_depth > 0
                                ? static_cast<std::size_t>(opts.frontier_depth)
                                : auto_frontier_depth(threads);

  std::vector<EventMeta> events;        // producer-only until workers join
  std::deque<SubtreeStats> unit_stats;  // deque: grows with stable addresses
  BoundedQueue<WorkItem> queue(kQueueCapacity);
  std::mutex qmu;
  std::condition_variable qcv;
  bool producer_done = false;        // guarded by qmu
  bool producer_finished_tree = false;

  const auto process_item = [&](WorkItem item) {
    // Units arrive in canonical order; once a violation beats this unit it
    // beats every later one too, so skip without exploring (the zeroed
    // stats slot sits beyond the winner during aggregation anyway).
    if (state.log.best_index() >= item.event_index) {
      *item.stats = explore_subtree(body, std::move(item.prefix), depth, opts,
                                    state, item.event_index);
      if (item.stats->violation) {
        state.log.report(item.event_index, *item.stats->violation,
                         item.stats->trace);
      }
    }
  };

  const auto worker_loop = [&]() {
    WorkItem item;
    for (;;) {
      if (!queue.try_pop(item)) {
        std::unique_lock<std::mutex> lk(qmu);
        // Re-check under the lock: a push that raced our failed pop is
        // visible here, and the producer notifies only after taking qmu,
        // so a wakeup between the re-check and wait() cannot be missed.
        if (queue.try_pop(item)) {
          lk.unlock();
        } else if (producer_done) {
          return;
        } else {
          qcv.wait(lk);
          continue;
        }
      }
      process_item(std::move(item));
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int w = 0; w < threads - 1; ++w) {
    pool.emplace_back(worker_loop);
  }

  // Producer: serial-DFS frontier enumeration, streaming units out.
  {
    BudgetScope budget(state);
    const Explorer::PruneFn& prune = opts.prune;
    std::vector<Decision> prefix;
    for (;;) {
      if (state.log.best_index() < events.size()) {
        break;  // a reported violation canonically precedes the next event
      }
      if (!budget.ensure()) {
        break;  // budget finally exhausted mid-frontier
      }
      ReplayDriver driver(std::move(prefix));
      driver.set_decision_limit(depth);
      driver.set_prune(prune ? &prune : nullptr);
      driver.set_reduction(opts.reduction == Reduction::kSleepSets);
      EventMeta ev;
      bool is_unit = false;
      try {
        if (std::optional<std::string> violation =
                run_one(body, driver, opts.observer)) {
          // A violating shallow execution beats everything that would have
          // followed; report it and stop enumerating.
          budget.consume();
          ev.reduced = driver.reduced();
          events.push_back(ev);
          state.log.report(events.size() - 1, *violation,
                           driver.take_trace());
          break;
        }
        budget.consume();
      } catch (const FrontierCut&) {
        is_unit = true;  // the unit's worker re-runs this subtree and pays
        ev.kind = EventMeta::Kind::kUnit;
      } catch (const PruneCut&) {
        ev.kind = EventMeta::Kind::kPruned;
      } catch (const SleepCut&) {
        ev.kind = EventMeta::Kind::kSkip;
      }
      std::vector<Decision> trace = driver.take_trace();
      ev.reduced = driver.reduced();
      events.push_back(ev);
      if (is_unit) {
        unit_stats.emplace_back();
        WorkItem item{events.size() - 1, &unit_stats.back(), trace};
        while (!queue.try_push(std::move(item))) {
          // Ring full: drain one unit here (natural backpressure). Drop our
          // budget hold first — the drained subtree claims its own, and a
          // grant held across a blocking drain could starve parked peers
          // into deadlock.
          budget.release();
          WorkItem mine;
          if (queue.try_pop(mine)) {
            process_item(std::move(mine));
          }
        }
        {
          const std::lock_guard<std::mutex> lk(qmu);
        }
        qcv.notify_one();
      }
      std::int64_t advance_prunes = 0;
      std::int64_t advance_reduced = 0;
      const bool more =
          advance(trace, 0, prune, advance_prunes, advance_reduced);
      // Subtrees pruned or reduction-skipped while advancing sit between
      // this event and the next in canonical order (in particular *after* a
      // unit's whole subtree); record them separately so truncated tallies
      // stay exact.
      for (std::int64_t i = 0; i < advance_prunes; ++i) {
        events.push_back(EventMeta{EventMeta::Kind::kPruned, 0});
      }
      if (advance_reduced > 0) {
        events.push_back(EventMeta{EventMeta::Kind::kSkip, advance_reduced});
      }
      if (opts.observer != nullptr && ev.reduced + advance_reduced > 0) {
        opts.observer->on_reduced(ev.reduced + advance_reduced);
      }
      if (!more) {
        producer_finished_tree = true;
        break;
      }
      prefix = std::move(trace);
    }
  }  // producer's budget hold refunded here

  {
    const std::lock_guard<std::mutex> lk(qmu);
    producer_done = true;
  }
  qcv.notify_all();
  worker_loop();  // help drain whatever is still queued
  for (std::thread& t : pool) {
    t.join();
  }

  // Canonical aggregation: walk the emission sequence in order, stopping at
  // the winning violation. Units after the winner are excluded even if they
  // ran (the serial DFS would never have entered them), so `executions` and
  // `pruned_subtrees` are bit-identical to the serial explorer's regardless
  // of thread timing.
  Explorer::Result result;
  const std::optional<ViolationLog::Entry> win = state.log.winner();
  const std::uint64_t winner_index = win ? win->index : ViolationLog::kNone;
  bool all_finished = producer_finished_tree;
  std::size_t u = 0;
  for (std::size_t i = 0; i < events.size() && i <= winner_index; ++i) {
    result.reduced_subtrees += events[i].reduced;
    switch (events[i].kind) {
      case EventMeta::Kind::kExecution:
        ++result.executions;
        break;
      case EventMeta::Kind::kPruned:
        ++result.pruned_subtrees;
        break;
      case EventMeta::Kind::kSkip:
        break;  // reduction skips carried in the `reduced` field above
      case EventMeta::Kind::kUnit:
        result.executions += unit_stats[u].executions;
        result.pruned_subtrees += unit_stats[u].pruned;
        result.reduced_subtrees += unit_stats[u].reduced;
        all_finished = all_finished && unit_stats[u].finished;
        ++u;
        break;
    }
  }
  if (win) {
    result.violation = win->message;
    result.violating_trace = win->trace;
  } else {
    // Exhaustion manifests as an unfinished unit or an unfinished frontier,
    // so `complete` needs no separate exhaustion flag (and cannot be
    // spuriously false when the budget exactly equals the tree size).
    result.complete = all_finished;
  }
  return result;
}

// Lexicographic order on decision strings (chosen values; a proper prefix
// precedes its extensions). The shrinker's notion of "smaller reproducer".
bool lex_less(const std::vector<Decision>& a, const std::vector<Decision>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].chosen != b[i].chosen) {
      return a[i].chosen < b[i].chosen;
    }
  }
  return a.size() < b.size();
}

// One shrink probe: replays `prefix` (reduction off, so recorded sleep-set
// metadata is ignored and every skip the original search made is re-opened)
// and lets the ReplayDriver zero-extend it to a complete execution. Returns
// the violation, if any, plus the canonical full decision string.
struct ShrinkProbe {
  std::optional<std::string> violation;
  std::vector<Decision> trace;
};

ShrinkProbe probe(const ExecutionBody& body, std::vector<Decision> prefix) {
  for (Decision& d : prefix) {
    d.enabled = 0;  // stale reduction metadata from the recording search
    d.sleep = 0;
  }
  ReplayDriver driver(std::move(prefix));
  ShrinkProbe out;
  try {
    body(driver);
  } catch (const std::exception& e) {
    out.violation = e.what();
  }
  out.trace = driver.take_trace();
  return out;
}

}  // namespace

std::optional<std::string> run_one(const ExecutionBody& body,
                                   SchedulePolicy& policy,
                                   TraceObserver* observer) {
  // Thread-default installation is what lets the observer see runtimes the
  // body constructs internally; nullptr deliberately masks any outer scope
  // so unobserved searches stay unobserved.
  const ScopedObserver scope(observer);
  try {
    body(policy);
  } catch (const std::exception& e) {
    if (observer != nullptr) {
      observer->on_violation(e.what());
    }
    return std::string(e.what());
  }
  return std::nullopt;
}

std::vector<ReplayDriver::Decision> Explorer::shrink(
    const ExecutionBody& body, std::vector<ReplayDriver::Decision> trace) {
  ShrinkProbe current = probe(body, std::move(trace));
  if (!current.violation) {
    return current.trace;  // not a reproducer; hand back the canonical form
  }
  // Greedy descent: adopt any strictly lex-smaller failing candidate and
  // restart. Strictness is what terminates the loop — a truncation whose
  // zero-extension reproduces the identical string is not an improvement.
  // Termination: candidate strings for a fixed world have bounded length
  // (the run's decision count) and bounded values (arities), and every
  // adoption strictly decreases in a total order on that finite set.
  bool improved = true;
  while (improved) {
    improved = false;
    // Pass 1 — prefix truncations, shortest first: the biggest wins come
    // from chopping the whole tail.
    for (std::size_t len = 0; len < current.trace.size() && !improved;
         ++len) {
      ShrinkProbe cand = probe(
          body, std::vector<Decision>(current.trace.begin(),
                                      current.trace.begin() +
                                          static_cast<std::ptrdiff_t>(len)));
      if (cand.violation && lex_less(cand.trace, current.trace)) {
        current = std::move(cand);
        improved = true;
      }
    }
    if (improved) {
      continue;
    }
    // Pass 2 — lower one decision and drop the suffix. Lowering position p
    // keeps the prefix intact, so the candidate is lex-smaller by
    // construction whenever it still fails.
    for (std::size_t pos = 0; pos < current.trace.size() && !improved;
         ++pos) {
      for (std::uint32_t v = 0; v < current.trace[pos].chosen && !improved;
           ++v) {
        std::vector<Decision> prefix(
            current.trace.begin(),
            current.trace.begin() + static_cast<std::ptrdiff_t>(pos) + 1);
        prefix[pos].chosen = v;
        ShrinkProbe cand = probe(body, std::move(prefix));
        if (cand.violation && lex_less(cand.trace, current.trace)) {
          current = std::move(cand);
          improved = true;
        }
      }
    }
  }
  return current.trace;
}

int Explorer::resolve_threads(int threads) noexcept {
  if (threads > 0) {
    return threads;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Explorer::Result Explorer::explore(const ExecutionBody& body, Options opts) {
  if (opts.max_executions <= 0) {
    throw SimError("Explorer::Options::max_executions must be positive, got " +
                   std::to_string(opts.max_executions));
  }
  if (opts.frontier_depth < 0) {
    throw SimError(
        "Explorer::Options::frontier_depth must be non-negative, got " +
        std::to_string(opts.frontier_depth));
  }
  const int threads = resolve_threads(opts.threads);
  Result result;
  if (threads <= 1) {
    SearchState state;
    state.max_executions = opts.max_executions;
    SubtreeStats stats =
        explore_subtree(body, {}, 0, opts, state, /*my_index=*/0);
    result = finish_serial(std::move(stats));
  } else {
    result = explore_parallel(body, opts, threads);
  }
  if (opts.shrink_violations && result.violation) {
    result.violating_trace = shrink(body, std::move(result.violating_trace));
  }
  return result;
}

void Explorer::replay(const ExecutionBody& body,
                      std::vector<ReplayDriver::Decision> trace) {
  ReplayDriver driver(std::move(trace));
  body(driver);
}

RandomSweep::Result RandomSweep::run(const ExecutionBody& body,
                                     std::int64_t runs,
                                     std::uint64_t first_seed, int threads,
                                     TraceObserver* observer) {
  Result result;
  if (runs <= 0) {
    return result;
  }
  const int workers = std::min<std::int64_t>(
      Explorer::resolve_threads(threads), runs);
  if (workers <= 1) {
    for (std::int64_t i = 0; i < runs; ++i) {
      const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);
      RandomDriver driver(seed);
      ++result.runs;
      if (std::optional<std::string> violation =
              run_one(body, driver, observer)) {
        result.failing_seed = seed;
        result.violation = std::move(violation);
        return result;
      }
    }
    return result;
  }

  // Parallel sweep: workers claim fixed-size blocks of the seed range in
  // ascending order; failures are aggregated by seed index, so the reported
  // failure is the least failing seed — exactly what the serial sweep
  // returns — and blocks past the current best are never started.
  constexpr std::int64_t kBlock = 64;
  ViolationLog log;
  std::atomic<std::int64_t> next_block{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&]() {
      for (;;) {
        const std::int64_t start =
            next_block.fetch_add(1, std::memory_order_relaxed) * kBlock;
        if (start >= runs ||
            log.best_index() < static_cast<std::uint64_t>(start)) {
          return;
        }
        const std::int64_t end = std::min(start + kBlock, runs);
        for (std::int64_t i = start; i < end; ++i) {
          if (log.best_index() < static_cast<std::uint64_t>(i)) {
            break;
          }
          RandomDriver driver(first_seed + static_cast<std::uint64_t>(i));
          if (std::optional<std::string> violation =
                  run_one(body, driver, observer)) {
            log.report(static_cast<std::uint64_t>(i), *violation, {});
            break;  // later seeds in this block cannot beat index i
          }
        }
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }

  if (const std::optional<ViolationLog::Entry> win = log.winner()) {
    result.runs = static_cast<std::int64_t>(win->index) + 1;
    result.failing_seed = first_seed + win->index;
    result.violation = win->message;
  } else {
    result.runs = runs;
  }
  return result;
}

}  // namespace subc
