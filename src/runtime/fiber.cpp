#include "subc/runtime/fiber.hpp"

#include <ucontext.h>

#include <cstdint>
#include <exception>
#include <utility>
#include <vector>

#include "subc/runtime/value.hpp"

// ThreadSanitizer cannot follow swapcontext stack switches on its own: it
// would keep attributing execution to the old stack, producing false races
// (and shadow-stack corruption) as soon as several simulator threads run
// fibers — exactly what the parallel explorer does. The fiber API below
// tells TSan about every switch.
#if defined(__SANITIZE_THREAD__)
#define SUBC_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SUBC_TSAN_FIBERS 1
#endif
#endif

#ifdef SUBC_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

// AddressSanitizer has the analogous problem: its fake-stack bookkeeping is
// tied to the stack the thread entered on, so an unannounced swapcontext
// leaves ASan poisoning and unpoisoning the wrong region — spurious
// stack-buffer-overflow / stack-use-after-return reports the moment a fiber
// runs. The __sanitizer_{start,finish}_switch_fiber pair brackets every
// switch below (mirroring the TSan calls).
#if defined(__SANITIZE_ADDRESS__)
#define SUBC_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SUBC_ASAN_FIBERS 1
#endif
#endif

#ifdef SUBC_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace subc {

namespace {
// The fiber currently executing on this thread (nullptr when the kernel —
// i.e. the main context — is running). The simulation is single-threaded,
// but thread_local keeps the library safe to use from several independent
// simulator threads (e.g. parallel test shards).
thread_local Fiber* tl_current = nullptr;

// Stacks are allocated and freed once per simulated process per execution —
// millions of times in an exploration. Going straight to malloc for them is
// pathological: the default stack size sits exactly at glibc's dynamic mmap
// threshold, so every allocation degenerates into an mmap/munmap pair plus
// first-touch page faults, costing ~10x the simulated execution itself. A
// small per-thread pool of default-sized stacks removes the churn
// (custom-sized stacks stay on the regular allocator).
constexpr std::size_t kMaxPooledStacks = 16;
thread_local std::vector<std::unique_ptr<char[]>> tl_stack_pool;

std::unique_ptr<char[]> acquire_stack(std::size_t stack_bytes) {
  if (stack_bytes == Fiber::kDefaultStackBytes && !tl_stack_pool.empty()) {
    std::unique_ptr<char[]> stack = std::move(tl_stack_pool.back());
    tl_stack_pool.pop_back();
    return stack;
  }
  return std::make_unique<char[]>(stack_bytes);
}

void release_stack(std::unique_ptr<char[]> stack, std::size_t stack_bytes) {
  if (stack_bytes == Fiber::kDefaultStackBytes &&
      tl_stack_pool.size() < kMaxPooledStacks) {
    tl_stack_pool.push_back(std::move(stack));
  }
}
}  // namespace

struct Fiber::Impl {
  ucontext_t ctx{};
  ucontext_t caller{};
  std::unique_ptr<char[]> stack;
  std::size_t stack_bytes = 0;
  std::function<void()> entry;
  std::exception_ptr error;
  bool started = false;
  bool finished = false;
  bool killing = false;
#ifdef SUBC_TSAN_FIBERS
  void* tsan_fiber = nullptr;   // this fiber's TSan context
  void* tsan_caller = nullptr;  // where to switch back to on yield/finish
#endif
#ifdef SUBC_ASAN_FIBERS
  void* asan_caller_fake = nullptr;  // caller's fake stack, saved in resume()
  void* asan_fiber_fake = nullptr;   // fiber's fake stack, saved in yield()
  const void* asan_caller_bottom = nullptr;  // caller stack, learned on entry
  std::size_t asan_caller_size = 0;
#endif
};

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : impl_(std::make_unique<Impl>()) {
  if (!entry) {
    throw SimError("Fiber requires a non-empty entry function");
  }
  impl_->entry = std::move(entry);
  impl_->stack = acquire_stack(stack_bytes);
  impl_->stack_bytes = stack_bytes;
  if (getcontext(&impl_->ctx) != 0) {
    throw SimError("getcontext failed");
  }
  impl_->ctx.uc_stack.ss_sp = impl_->stack.get();
  impl_->ctx.uc_stack.ss_size = stack_bytes;
  // Safety net only: the trampoline parks in an explicit swapcontext loop
  // when the entry finishes (see trampoline()), so uc_link is never taken.
  impl_->ctx.uc_link = &impl_->caller;
  // makecontext only passes ints portably; split the pointer into two words.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&impl_->ctx, reinterpret_cast<void (*)()>(&Fiber::trampoline),
              2, static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
#ifdef SUBC_TSAN_FIBERS
  impl_->tsan_fiber = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
  kill();
#ifdef SUBC_TSAN_FIBERS
  __tsan_destroy_fiber(impl_->tsan_fiber);
#endif
  release_stack(std::move(impl_->stack), impl_->stack_bytes);
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  auto* self = reinterpret_cast<Fiber*>(bits);
#ifdef SUBC_ASAN_FIBERS
  // First entry onto this stack: no fake stack to restore yet; record the
  // caller's stack bounds for the switch back.
  __sanitizer_finish_switch_fiber(nullptr, &self->impl_->asan_caller_bottom,
                                  &self->impl_->asan_caller_size);
#endif
  try {
    self->impl_->entry();
  } catch (const FiberKilled&) {
    // Expected during kill-unwinding: nothing to record.
  } catch (...) {
    self->impl_->error = std::current_exception();
  }
  self->impl_->finished = true;
  // Hand control back with an explicit swapcontext rather than falling off
  // the trampoline onto uc_link: the fall-off path runs the kernel-side
  // context teardown with an unbalanced sanitizer shadow stack, which under
  // ThreadSanitizer leaks one caller-side shadow frame per finished fiber
  // until the shadow stack overflows (observed as libtsan SEGVs after a few
  // tens of thousands of fibers). A finished fiber is never resumed
  // (resume() throws), so the park loop below is effectively unreachable
  // after the first switch.
  for (;;) {
#ifdef SUBC_TSAN_FIBERS
    __tsan_switch_to_fiber(self->impl_->tsan_caller, 0);
#endif
#ifdef SUBC_ASAN_FIBERS
    // nullptr fake-stack save: the fiber is done for good, so ASan may
    // release its fake frames instead of keeping them restorable.
    __sanitizer_start_switch_fiber(nullptr, self->impl_->asan_caller_bottom,
                                   self->impl_->asan_caller_size);
#endif
    swapcontext(&self->impl_->ctx, &self->impl_->caller);
  }
}

void Fiber::resume() {
  if (impl_->finished) {
    throw SimError("resume() on a finished fiber");
  }
  Fiber* const prev = tl_current;
  tl_current = this;
  impl_->started = true;
#ifdef SUBC_TSAN_FIBERS
  impl_->tsan_caller = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(impl_->tsan_fiber, 0);
#endif
#ifdef SUBC_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&impl_->asan_caller_fake, impl_->stack.get(),
                                 impl_->stack_bytes);
#endif
  swapcontext(&impl_->caller, &impl_->ctx);
#ifdef SUBC_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(impl_->asan_caller_fake, nullptr, nullptr);
#endif
  tl_current = prev;
  if (impl_->error) {
    std::exception_ptr error = std::exchange(impl_->error, nullptr);
    std::rethrow_exception(error);
  }
}

bool Fiber::finished() const noexcept { return impl_->finished; }

void Fiber::kill() noexcept {
  if (impl_->finished) {
    return;
  }
  if (!impl_->started) {
    // Never ran: there is no stack state to unwind.
    impl_->finished = true;
    return;
  }
  impl_->killing = true;
  try {
    resume();
  } catch (...) {
    // Destructors must not throw (Core Guidelines C.36); if one does while
    // unwinding an abandoned fiber, dropping it here is the least bad option.
  }
}

void Fiber::yield() {
  Fiber* const self = tl_current;
  if (self == nullptr) {
    throw SimError("Fiber::yield() called outside any fiber");
  }
#ifdef SUBC_TSAN_FIBERS
  __tsan_switch_to_fiber(self->impl_->tsan_caller, 0);
#endif
#ifdef SUBC_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&self->impl_->asan_fiber_fake,
                                 self->impl_->asan_caller_bottom,
                                 self->impl_->asan_caller_size);
#endif
  swapcontext(&self->impl_->ctx, &self->impl_->caller);
#ifdef SUBC_ASAN_FIBERS
  // Re-learn the caller's bounds: the next resume() may come from another
  // kernel stack (the parallel explorer moves work between threads).
  __sanitizer_finish_switch_fiber(self->impl_->asan_fiber_fake,
                                  &self->impl_->asan_caller_bottom,
                                  &self->impl_->asan_caller_size);
#endif
  if (self->impl_->killing) {
    throw FiberKilled{};
  }
}

}  // namespace subc
