#include "subc/runtime/fiber.hpp"

#include <ucontext.h>

#include <cstdint>
#include <exception>
#include <utility>

#include "subc/runtime/value.hpp"

namespace subc {

namespace {
// The fiber currently executing on this thread (nullptr when the kernel —
// i.e. the main context — is running). The simulation is single-threaded,
// but thread_local keeps the library safe to use from several independent
// simulator threads (e.g. parallel test shards).
thread_local Fiber* tl_current = nullptr;
}  // namespace

struct Fiber::Impl {
  ucontext_t ctx{};
  ucontext_t caller{};
  std::unique_ptr<char[]> stack;
  std::function<void()> entry;
  std::exception_ptr error;
  bool started = false;
  bool finished = false;
  bool killing = false;
};

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : impl_(std::make_unique<Impl>()) {
  if (!entry) {
    throw SimError("Fiber requires a non-empty entry function");
  }
  impl_->entry = std::move(entry);
  impl_->stack = std::make_unique<char[]>(stack_bytes);
  if (getcontext(&impl_->ctx) != 0) {
    throw SimError("getcontext failed");
  }
  impl_->ctx.uc_stack.ss_sp = impl_->stack.get();
  impl_->ctx.uc_stack.ss_size = stack_bytes;
  // When the trampoline returns, control goes back to the most recent
  // resumer (impl_->caller is refreshed by every swapcontext in resume()).
  impl_->ctx.uc_link = &impl_->caller;
  // makecontext only passes ints portably; split the pointer into two words.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&impl_->ctx, reinterpret_cast<void (*)()>(&Fiber::trampoline),
              2, static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber() { kill(); }

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  auto* self = reinterpret_cast<Fiber*>(bits);
  try {
    self->impl_->entry();
  } catch (const FiberKilled&) {
    // Expected during kill-unwinding: nothing to record.
  } catch (...) {
    self->impl_->error = std::current_exception();
  }
  self->impl_->finished = true;
  // Falling off the trampoline switches to uc_link == impl_->caller.
}

void Fiber::resume() {
  if (impl_->finished) {
    throw SimError("resume() on a finished fiber");
  }
  Fiber* const prev = tl_current;
  tl_current = this;
  impl_->started = true;
  swapcontext(&impl_->caller, &impl_->ctx);
  tl_current = prev;
  if (impl_->error) {
    std::exception_ptr error = std::exchange(impl_->error, nullptr);
    std::rethrow_exception(error);
  }
}

bool Fiber::finished() const noexcept { return impl_->finished; }

void Fiber::kill() noexcept {
  if (impl_->finished) {
    return;
  }
  if (!impl_->started) {
    // Never ran: there is no stack state to unwind.
    impl_->finished = true;
    return;
  }
  impl_->killing = true;
  try {
    resume();
  } catch (...) {
    // Destructors must not throw (Core Guidelines C.36); if one does while
    // unwinding an abandoned fiber, dropping it here is the least bad option.
  }
}

void Fiber::yield() {
  Fiber* const self = tl_current;
  if (self == nullptr) {
    throw SimError("Fiber::yield() called outside any fiber");
  }
  swapcontext(&self->impl_->ctx, &self->impl_->caller);
  if (self->impl_->killing) {
    throw FiberKilled{};
  }
}

}  // namespace subc
