#include "subc/runtime/fiber.hpp"

#include <cstdint>
#include <exception>
#include <utility>
#include <vector>

#include "subc/runtime/arena.hpp"
#include "subc/runtime/value.hpp"

// On x86-64 Linux fibers switch stacks with a ~20-instruction userspace
// context switch (see the asm below); everywhere else they fall back to
// ucontext. swapcontext is semantically perfect but POSIX requires it to
// save and restore the signal mask, which costs an rt_sigprocmask syscall
// per switch — measured at ~70% of total explorer CPU on the exhaustive
// benchmarks. The simulator never touches signal masks from simulated code,
// so the fast path saves only the SysV callee-saved registers and the FP
// control words, exactly like boost.context's fcontext.
#if defined(__x86_64__) && defined(__linux__) && !defined(SUBC_FIBER_UCONTEXT)
#define SUBC_FIBER_FAST 1
#else
#include <ucontext.h>
#endif

// ThreadSanitizer cannot follow stack switches on its own: it would keep
// attributing execution to the old stack, producing false races (and
// shadow-stack corruption) as soon as several simulator threads run
// fibers — exactly what the parallel explorer does. The fiber API below
// tells TSan about every switch.
#if defined(__SANITIZE_THREAD__)
#define SUBC_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SUBC_TSAN_FIBERS 1
#endif
#endif

#ifdef SUBC_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

// AddressSanitizer has the analogous problem: its fake-stack bookkeeping is
// tied to the stack the thread entered on, so an unannounced stack switch
// leaves ASan poisoning and unpoisoning the wrong region — spurious
// stack-buffer-overflow / stack-use-after-return reports the moment a fiber
// runs. The __sanitizer_{start,finish}_switch_fiber pair brackets every
// switch below (mirroring the TSan calls).
#if defined(__SANITIZE_ADDRESS__)
#define SUBC_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SUBC_ASAN_FIBERS 1
#endif
#endif

#ifdef SUBC_ASAN_FIBERS
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

#ifdef SUBC_FIBER_FAST
// subc_ctx_switch(save_sp, target_sp): push the SysV callee-saved registers
// and FP control words onto the current stack, store the resulting stack
// pointer through save_sp, then adopt target_sp and pop the same layout.
// Returning "ret"s to whatever address the target frame carries: either the
// point that previously called subc_ctx_switch on that stack, or — for a
// freshly built bootstrap frame — subc_ctx_entry_thunk, which forwards the
// Fiber* planted in r12 to subc_fiber_asm_entry.
//
// The frame layout (top of stack downward) is:
//   [return address][rbp][rbx][r12][r13][r14][r15][fcw:32|mxcsr:32]
// and must match make_bootstrap_frame() below.
asm(R"(
.text
.globl subc_ctx_switch
.hidden subc_ctx_switch
.type subc_ctx_switch,@function
.align 16
subc_ctx_switch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  subq $8, %rsp
  stmxcsr (%rsp)
  fnstcw 4(%rsp)
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  ldmxcsr (%rsp)
  fldcw 4(%rsp)
  addq $8, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
.size subc_ctx_switch,.-subc_ctx_switch

.globl subc_ctx_entry_thunk
.hidden subc_ctx_entry_thunk
.type subc_ctx_entry_thunk,@function
.align 16
subc_ctx_entry_thunk:
  movq %r12, %rdi
  call subc_fiber_asm_entry
  ud2
.size subc_ctx_entry_thunk,.-subc_ctx_entry_thunk
)");

extern "C" {
void subc_ctx_switch(void** save_sp, void* target_sp) noexcept;
void subc_ctx_entry_thunk() noexcept;
}
#endif  // SUBC_FIBER_FAST

namespace subc {

namespace {
// The fiber currently executing on this thread (nullptr when the kernel —
// i.e. the main context — is running). The simulation is single-threaded,
// but thread_local keeps the library safe to use from several independent
// simulator threads (e.g. parallel test shards).
thread_local Fiber* tl_current = nullptr;

// Stacks are allocated and freed once per simulated process per execution —
// millions of times in an exploration. Going straight to malloc for them is
// pathological: the default stack size sits exactly at glibc's dynamic mmap
// threshold, so every allocation degenerates into an mmap/munmap pair plus
// first-touch page faults, costing ~10x the simulated execution itself. A
// small per-thread pool of default-sized stacks removes the churn
// (custom-sized stacks stay on the regular allocator).
constexpr std::size_t kMaxPooledStacks = 16;
thread_local std::vector<std::unique_ptr<char[]>> tl_stack_pool;

std::unique_ptr<char[]> acquire_stack(std::size_t stack_bytes) {
  if (stack_bytes == Fiber::kDefaultStackBytes && !tl_stack_pool.empty()) {
    std::unique_ptr<char[]> stack = std::move(tl_stack_pool.back());
    tl_stack_pool.pop_back();
    detail::alloc_counter_cells().fiber_stack_reuses.fetch_add(
        1, std::memory_order_relaxed);
    return stack;
  }
  detail::alloc_counter_cells().fiber_stack_allocs.fetch_add(
      1, std::memory_order_relaxed);
  return std::make_unique<char[]>(stack_bytes);
}

void release_stack(std::unique_ptr<char[]> stack, std::size_t stack_bytes) {
  if (stack_bytes == Fiber::kDefaultStackBytes &&
      tl_stack_pool.size() < kMaxPooledStacks) {
    tl_stack_pool.push_back(std::move(stack));
  }
}

// Fixed-size freelist for Fiber::Impl blocks: one Impl is allocated per
// simulated process per execution, so this is a per-world-construction
// malloc/free pair the explorer pays millions of times. All blocks have the
// same size (one type), so reuse is a plain pop.
struct ImplBlockPool {
  std::vector<void*> free;
  ~ImplBlockPool() {
    for (void* p : free) {
      ::operator delete(p);
    }
  }
};
thread_local ImplBlockPool tl_impl_pool;
constexpr std::size_t kMaxPooledImpls = 64;

#ifdef SUBC_FIBER_FAST
// Builds the initial frame subc_ctx_switch pops on the first resume. The
// first switch onto the stack "returns" into subc_ctx_entry_thunk with the
// Fiber* in r12 and rsp 16-aligned, which is exactly the SysV alignment a
// call instruction would have produced at the thunk's call site.
void* make_bootstrap_frame(char* stack_base, std::size_t stack_bytes,
                           void* fiber) {
  const auto top =
      reinterpret_cast<std::uintptr_t>(stack_base + stack_bytes) &
      ~std::uintptr_t{15};
  auto* frame = reinterpret_cast<std::uint64_t*>(top);
  *--frame = reinterpret_cast<std::uint64_t>(&subc_ctx_entry_thunk);
  *--frame = 0;                                        // rbp
  *--frame = 0;                                        // rbx
  *--frame = reinterpret_cast<std::uint64_t>(fiber);   // r12 -> Fiber*
  *--frame = 0;                                        // r13
  *--frame = 0;                                        // r14
  *--frame = 0;                                        // r15
  *--frame = (std::uint64_t{0x037f} << 32) | 0x1f80;   // x87 cw | mxcsr
  return frame;
}
#endif
}  // namespace

struct Fiber::Impl {
  static void* operator new(std::size_t size) {
    if (!tl_impl_pool.free.empty()) {
      void* p = tl_impl_pool.free.back();
      tl_impl_pool.free.pop_back();
      return p;
    }
    return ::operator new(size);
  }
  static void operator delete(void* p) {
    if (tl_impl_pool.free.size() < kMaxPooledImpls) {
      tl_impl_pool.free.push_back(p);
    } else {
      ::operator delete(p);
    }
  }

#ifdef SUBC_FIBER_FAST
  void* fiber_sp = nullptr;   // fiber-side suspended stack pointer
  void* caller_sp = nullptr;  // kernel-side stack pointer during a resume
#else
  ucontext_t ctx{};
  ucontext_t caller{};
#endif
  std::unique_ptr<char[]> stack;
  std::size_t stack_bytes = 0;
  /// Entry, in one of two forms: a raw function pointer + argument (hot
  /// path, no allocation) or a std::function (general path).
  void (*entry_fn)(void*) = nullptr;
  void* entry_arg = nullptr;
  std::function<void()> entry;
  std::exception_ptr error;
  bool started = false;
  bool finished = false;
  bool killing = false;
#ifdef SUBC_TSAN_FIBERS
  void* tsan_fiber = nullptr;   // this fiber's TSan context
  void* tsan_caller = nullptr;  // where to switch back to on yield/finish
#endif
#ifdef SUBC_ASAN_FIBERS
  void* asan_caller_fake = nullptr;  // caller's fake stack, saved in resume()
  void* asan_fiber_fake = nullptr;   // fiber's fake stack, saved in yield()
  const void* asan_caller_bottom = nullptr;  // caller stack, learned on entry
  std::size_t asan_caller_size = 0;
#endif

  static void init_context(Fiber* self, std::size_t stack_bytes);
};

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : impl_(std::make_unique<Impl>()) {
  if (!entry) {
    throw SimError("Fiber requires a non-empty entry function");
  }
  impl_->entry = std::move(entry);
  Impl::init_context(this, stack_bytes);
}

Fiber::Fiber(void (*entry)(void*), void* arg, std::size_t stack_bytes)
    : impl_(std::make_unique<Impl>()) {
  if (entry == nullptr) {
    throw SimError("Fiber requires a non-empty entry function");
  }
  impl_->entry_fn = entry;
  impl_->entry_arg = arg;
  Impl::init_context(this, stack_bytes);
}

// Shared tail of both constructors: stack acquisition and the initial
// switch frame / ucontext setup.
void Fiber::Impl::init_context(Fiber* self, std::size_t stack_bytes) {
  Impl* const impl = self->impl_.get();
  impl->stack = acquire_stack(stack_bytes);
  impl->stack_bytes = stack_bytes;
#ifdef SUBC_ASAN_FIBERS
  // A pooled stack still carries the shadow poison of the frames its
  // previous fiber never unwound (the last function switches away instead
  // of returning, so its redzones are never cleared). Wipe it before
  // building a fresh frame there.
  __asan_unpoison_memory_region(impl->stack.get(), stack_bytes);
#endif
#ifdef SUBC_FIBER_FAST
  impl->fiber_sp =
      make_bootstrap_frame(impl->stack.get(), stack_bytes, self);
#else
  if (getcontext(&impl->ctx) != 0) {
    throw SimError("getcontext failed");
  }
  impl->ctx.uc_stack.ss_sp = impl->stack.get();
  impl->ctx.uc_stack.ss_size = stack_bytes;
  // Safety net only: the trampoline parks in an explicit switch loop when
  // the entry finishes (see trampoline()), so uc_link is never taken.
  impl->ctx.uc_link = &impl->caller;
  // makecontext only passes ints portably; split the pointer into two words.
  const auto bits = reinterpret_cast<std::uintptr_t>(self);
  makecontext(&impl->ctx, reinterpret_cast<void (*)()>(&Fiber::trampoline),
              2, static_cast<unsigned>(bits >> 32),
              static_cast<unsigned>(bits & 0xffffffffu));
#endif
#ifdef SUBC_TSAN_FIBERS
  impl->tsan_fiber = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
  kill();
#ifdef SUBC_TSAN_FIBERS
  __tsan_destroy_fiber(impl_->tsan_fiber);
#endif
  release_stack(std::move(impl_->stack), impl_->stack_bytes);
}

#ifndef SUBC_FIBER_FAST
void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  subc_fiber_asm_entry(reinterpret_cast<Fiber*>(bits));
}
#endif

void Fiber::resume() {
  if (impl_->finished) {
    throw SimError("resume() on a finished fiber");
  }
  Fiber* const prev = tl_current;
  tl_current = this;
  impl_->started = true;
#ifdef SUBC_TSAN_FIBERS
  impl_->tsan_caller = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(impl_->tsan_fiber, 0);
#endif
#ifdef SUBC_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&impl_->asan_caller_fake, impl_->stack.get(),
                                 impl_->stack_bytes);
#endif
#ifdef SUBC_FIBER_FAST
  subc_ctx_switch(&impl_->caller_sp, impl_->fiber_sp);
#else
  swapcontext(&impl_->caller, &impl_->ctx);
#endif
#ifdef SUBC_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(impl_->asan_caller_fake, nullptr, nullptr);
#endif
  tl_current = prev;
  if (impl_->error) {
    std::exception_ptr error = std::exchange(impl_->error, nullptr);
    std::rethrow_exception(error);
  }
}

bool Fiber::finished() const noexcept { return impl_->finished; }

void Fiber::kill() noexcept {
  if (impl_->finished) {
    return;
  }
  if (!impl_->started) {
    // Never ran: there is no stack state to unwind.
    impl_->finished = true;
    return;
  }
  impl_->killing = true;
  try {
    resume();
  } catch (...) {
    // Destructors must not throw (Core Guidelines C.36); if one does while
    // unwinding an abandoned fiber, dropping it here is the least bad option.
  }
}

void Fiber::yield() {
  Fiber* const self = tl_current;
  if (self == nullptr) {
    throw SimError("Fiber::yield() called outside any fiber");
  }
#ifdef SUBC_TSAN_FIBERS
  __tsan_switch_to_fiber(self->impl_->tsan_caller, 0);
#endif
#ifdef SUBC_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&self->impl_->asan_fiber_fake,
                                 self->impl_->asan_caller_bottom,
                                 self->impl_->asan_caller_size);
#endif
#ifdef SUBC_FIBER_FAST
  subc_ctx_switch(&self->impl_->fiber_sp, self->impl_->caller_sp);
#else
  swapcontext(&self->impl_->ctx, &self->impl_->caller);
#endif
#ifdef SUBC_ASAN_FIBERS
  // Re-learn the caller's bounds: the next resume() may come from another
  // kernel stack (the parallel explorer moves work between threads).
  __sanitizer_finish_switch_fiber(self->impl_->asan_fiber_fake,
                                  &self->impl_->asan_caller_bottom,
                                  &self->impl_->asan_caller_size);
#endif
  if (self->impl_->killing) {
    throw FiberKilled{};
  }
}

}  // namespace subc

// The body of every fiber, on both switch mechanisms. Runs the entry on the
// fiber's own stack, records any escaped exception, then parks in an
// explicit switch loop. Falling off the trampoline instead (ucontext's
// uc_link, or simply returning from the asm thunk) would tear the context
// down with an unbalanced sanitizer shadow stack, which under TSan leaks one
// caller-side shadow frame per finished fiber until the shadow stack
// overflows (observed as libtsan SEGVs after a few tens of thousands of
// fibers). A finished fiber is never resumed (resume() throws), so the park
// loop is effectively unreachable after the first switch back.
extern "C" void subc_fiber_asm_entry(void* fiber) {
  auto* self = static_cast<subc::Fiber*>(fiber);
#ifdef SUBC_ASAN_FIBERS
  // First entry onto this stack: no fake stack to restore yet; record the
  // caller's stack bounds for the switch back.
  __sanitizer_finish_switch_fiber(nullptr, &self->impl_->asan_caller_bottom,
                                  &self->impl_->asan_caller_size);
#endif
  try {
    if (self->impl_->entry_fn != nullptr) {
      self->impl_->entry_fn(self->impl_->entry_arg);
    } else {
      self->impl_->entry();
    }
  } catch (const subc::FiberKilled&) {
    // Expected during kill-unwinding: nothing to record.
  } catch (...) {
    self->impl_->error = std::current_exception();
  }
  self->impl_->finished = true;
  for (;;) {
#ifdef SUBC_TSAN_FIBERS
    __tsan_switch_to_fiber(self->impl_->tsan_caller, 0);
#endif
#ifdef SUBC_ASAN_FIBERS
    // nullptr fake-stack save: the fiber is done for good, so ASan may
    // release its fake frames instead of keeping them restorable.
    __sanitizer_start_switch_fiber(nullptr, self->impl_->asan_caller_bottom,
                                   self->impl_->asan_caller_size);
#endif
#ifdef SUBC_FIBER_FAST
    subc_ctx_switch(&self->impl_->fiber_sp, self->impl_->caller_sp);
#else
    swapcontext(&self->impl_->ctx, &self->impl_->caller);
#endif
  }
}
