#include "subc/runtime/policy.hpp"

#include <algorithm>
#include <sstream>

namespace subc {

PctPolicy::PctPolicy(std::uint64_t seed, int depth, std::int64_t horizon)
    : seed_(seed), depth_(depth), horizon_(horizon), rng_(seed) {
  if (depth < 1) {
    throw SimError("PctPolicy: depth must be >= 1");
  }
  if (horizon < 1) {
    throw SimError("PctPolicy: horizon must be >= 1");
  }
  begin_run();
}

void PctPolicy::begin_run() {
  rng_.seed(seed_);
  priorities_.clear();
  step_ = 0;
  next_change_ = 0;
  change_points_.clear();
  std::uniform_int_distribution<std::int64_t> dist(0, horizon_ - 1);
  for (int i = 0; i < depth_ - 1; ++i) {
    change_points_.push_back(dist(rng_));
  }
  std::sort(change_points_.begin(), change_points_.end());
}

std::int64_t PctPolicy::priority_of(int pid) {
  const auto idx = static_cast<std::size_t>(pid);
  if (priorities_.size() <= idx) {
    priorities_.resize(idx + 1, -1);
  }
  if (priorities_[idx] < 0) {
    // Lazily drawn on first sight (the policy never learns the process
    // count up front). 62 random bits make collisions negligible; the
    // lowest-pid tiebreak in pick() keeps any collision deterministic.
    std::uniform_int_distribution<std::int64_t> dist(
        depth_, std::int64_t{1} << 62);
    priorities_[idx] = dist(rng_);
  }
  return priorities_[idx];
}

std::size_t PctPolicy::pick(std::span<const int> enabled,
                            std::span<const Access> /*footprints*/) {
  std::size_t best = 0;
  std::int64_t best_prio = -1;
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    const std::int64_t prio = priority_of(enabled[i]);
    if (prio > best_prio) {  // strict: ties resolve to the lowest pid
      best_prio = prio;
      best = i;
    }
  }
  // Priority change points: when the global step counter crosses one, the
  // process granted that step falls below every initial priority.
  while (next_change_ < static_cast<int>(change_points_.size()) &&
         change_points_[static_cast<std::size_t>(next_change_)] <= step_) {
    priorities_[static_cast<std::size_t>(enabled[best])] = next_change_;
    ++next_change_;
  }
  ++step_;
  return best;
}

std::uint32_t PctPolicy::choose(std::uint32_t arity) {
  std::uniform_int_distribution<std::uint32_t> dist(0, arity - 1);
  return dist(rng_);
}

DelayBoundedPolicy::DelayBoundedPolicy(std::uint64_t seed, int delays,
                                       std::int64_t horizon)
    : seed_(seed), delays_(delays), horizon_(horizon), rng_(seed) {
  if (delays < 0) {
    throw SimError("DelayBoundedPolicy: delays must be >= 0");
  }
  if (horizon < 1) {
    throw SimError("DelayBoundedPolicy: horizon must be >= 1");
  }
  begin_run();
}

void DelayBoundedPolicy::begin_run() {
  rng_.seed(seed_);
  delay_points_.clear();
  std::uniform_int_distribution<std::int64_t> dist(0, horizon_ - 1);
  for (int i = 0; i < delays_; ++i) {
    delay_points_.push_back(dist(rng_));
  }
  std::sort(delay_points_.begin(), delay_points_.end());
  next_delay_ = 0;
  step_ = 0;
  last_pid_ = -1;
  delays_used_ = 0;
}

std::size_t DelayBoundedPolicy::pick(std::span<const int> enabled,
                                     std::span<const Access> /*footprints*/) {
  // Round-robin base schedule: the first enabled pid cyclically after the
  // previously granted one (enabled pids arrive in ascending order).
  std::size_t cand = 0;
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    if (enabled[i] > last_pid_) {
      cand = i;
      break;
    }
  }
  // Spend every delay point the step counter has reached: each one skips
  // the current candidate — the adversary's one primitive in the
  // delay-bounded model.
  while (next_delay_ < delay_points_.size() &&
         delay_points_[next_delay_] <= step_) {
    cand = (cand + 1) % enabled.size();
    ++next_delay_;
    ++delays_used_;
  }
  ++step_;
  last_pid_ = enabled[cand];
  return cand;
}

std::uint32_t DelayBoundedPolicy::choose(std::uint32_t arity) {
  std::uniform_int_distribution<std::uint32_t> dist(0, arity - 1);
  return dist(rng_);
}

CrashAdversary::CrashAdversary(SchedulePolicy& inner,
                               std::vector<CrashPoint> plan)
    : inner_(&inner), plan_(std::move(plan)) {
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    const CrashPoint& cp = plan_[i];
    if (cp.victim < 0 || cp.victim >= 64) {
      throw SimError("CrashAdversary: plan entry " + std::to_string(i) +
                     " victim " + std::to_string(cp.victim) +
                     " out of [0, 64)");
    }
    if (cp.after_steps < 0) {
      throw SimError("CrashAdversary: plan entry " + std::to_string(i) +
                     " has negative after_steps " +
                     std::to_string(cp.after_steps));
    }
    const std::uint64_t bit = std::uint64_t{1} << cp.victim;
    if ((seen & bit) != 0) {
      // A process crashes at most once; a second entry for the same victim
      // could never fire and would silently misrepresent the fault model.
      throw SimError("CrashAdversary: duplicate victim " +
                     std::to_string(cp.victim) + " in plan entry " +
                     std::to_string(i));
    }
    seen |= bit;
  }
  fired_.assign(plan_.size(), false);
}

CrashAdversary::CrashAdversary(SchedulePolicy& inner,
                               std::vector<CrashPoint> plan, int f)
    : CrashAdversary(inner, std::move(plan)) {
  if (f < 0) {
    throw SimError("CrashAdversary: f must be >= 0");
  }
  if (plan_.size() > static_cast<std::size_t>(f)) {
    throw SimError("CrashAdversary: plan has " + std::to_string(plan_.size()) +
                   " entries, exceeding the crash bound f = " +
                   std::to_string(f));
  }
}

CrashAdversary::CrashAdversary(SchedulePolicy& inner, std::uint64_t seed,
                               int f, double crash_prob)
    : inner_(&inner),
      seed_(seed),
      rng_(seed),
      budget_(f),
      crash_prob_(crash_prob),
      random_mode_(true) {
  if (f < 0) {
    throw SimError("CrashAdversary: f must be >= 0");
  }
  if (crash_prob < 0.0 || crash_prob > 1.0) {
    throw SimError("CrashAdversary: crash_prob must be in [0, 1]");
  }
}

void CrashAdversary::set_recovery_plan(std::vector<RecoveryPoint> plan) {
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const RecoveryPoint& rp = plan[i];
    if (rp.victim < 0 || rp.victim >= 64) {
      throw SimError("CrashAdversary: recovery plan entry " +
                     std::to_string(i) + " victim " +
                     std::to_string(rp.victim) + " out of [0, 64)");
    }
    if (rp.after_steps < 0) {
      throw SimError("CrashAdversary: recovery plan entry " +
                     std::to_string(i) + " has negative after_steps " +
                     std::to_string(rp.after_steps));
    }
    const std::uint64_t bit = std::uint64_t{1} << rp.victim;
    if ((seen & bit) != 0) {
      // A process crashes at most once, so it restarts at most once; a
      // second entry for the same victim could never fire and would
      // silently misrepresent the restart model.
      throw SimError("CrashAdversary: duplicate victim " +
                     std::to_string(rp.victim) + " in recovery plan entry " +
                     std::to_string(i));
    }
    seen |= bit;
  }
  recovery_plan_ = std::move(plan);
  recovery_fired_.assign(recovery_plan_.size(), false);
}

void CrashAdversary::set_random_recovery(std::uint64_t seed,
                                         int max_recoveries,
                                         double recover_prob) {
  if (max_recoveries < 0) {
    throw SimError("CrashAdversary: max_recoveries must be >= 0");
  }
  if (recover_prob < 0.0 || recover_prob > 1.0) {
    throw SimError("CrashAdversary: recover_prob must be in [0, 1]");
  }
  recovery_seed_ = seed;
  recovery_budget_ = max_recoveries;
  recover_prob_ = recover_prob;
  random_recovery_ = true;
  recovery_rng_.seed(seed);
}

void CrashAdversary::begin_run() {
  inner_->begin_run();
  fired_.assign(plan_.size(), false);
  grants_.clear();
  total_grants_ = 0;
  injected_ = 0;
  if (random_mode_) {
    rng_.seed(seed_);
  }
  recovery_fired_.assign(recovery_plan_.size(), false);
  recoveries_injected_ = 0;
  if (random_recovery_) {
    recovery_rng_.seed(recovery_seed_);
  }
}

std::size_t CrashAdversary::pick(std::span<const int> enabled,
                                 std::span<const Access> footprints) {
  const std::size_t idx = inner_->pick(enabled, footprints);
  const auto pid = static_cast<std::size_t>(enabled[idx]);
  if (grants_.size() <= pid) {
    grants_.resize(pid + 1, 0);
  }
  ++grants_[pid];
  ++total_grants_;
  return idx;
}

std::uint32_t CrashAdversary::choose(std::uint32_t arity) {
  return inner_->choose(arity);
}

std::uint64_t CrashAdversary::crash_requests(std::span<const int> enabled) {
  // Compose with any fault model the inner policy carries.
  std::uint64_t mask = inner_->crash_requests(enabled);
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    if (fired_[i]) {
      continue;
    }
    const CrashPoint& cp = plan_[i];
    const auto victim = static_cast<std::size_t>(cp.victim);
    const std::int64_t taken = victim < grants_.size() ? grants_[victim] : 0;
    if (taken < cp.after_steps) {
      continue;
    }
    if (std::find(enabled.begin(), enabled.end(), cp.victim) ==
        enabled.end()) {
      continue;  // already done/hung/crashed; the plan entry stays armed
    }
    mask |= std::uint64_t{1} << victim;
    fired_[i] = true;
    ++injected_;
  }
  if (random_mode_) {
    for (const int pid : enabled) {
      if (pid >= 64 || injected_ >= budget_) {
        break;
      }
      const std::uint64_t bit = std::uint64_t{1} << pid;
      if ((mask & bit) != 0) {
        continue;
      }
      if (std::bernoulli_distribution(crash_prob_)(rng_)) {
        mask |= bit;
        ++injected_;
      }
    }
  }
  return mask;
}

bool CrashAdversary::wants_recovery() const {
  return !recovery_plan_.empty() || random_recovery_ ||
         inner_->wants_recovery();
}

std::uint64_t CrashAdversary::recovery_requests(std::span<const int> crashed) {
  // Compose with any restart model the inner policy carries.
  std::uint64_t mask = inner_->recovery_requests(crashed);
  for (std::size_t i = 0; i < recovery_plan_.size(); ++i) {
    if (recovery_fired_[i]) {
      continue;
    }
    const RecoveryPoint& rp = recovery_plan_[i];
    if (total_grants_ < rp.after_steps) {
      continue;
    }
    if (std::find(crashed.begin(), crashed.end(), rp.victim) ==
        crashed.end()) {
      continue;  // not crashed (yet); the plan entry stays armed
    }
    mask |= std::uint64_t{1} << static_cast<std::size_t>(rp.victim);
    recovery_fired_[i] = true;
    ++recoveries_injected_;
  }
  if (random_recovery_) {
    for (const int pid : crashed) {
      if (pid >= 64 || recoveries_injected_ >= recovery_budget_) {
        break;
      }
      const std::uint64_t bit = std::uint64_t{1} << pid;
      if ((mask & bit) != 0) {
        continue;
      }
      if (std::bernoulli_distribution(recover_prob_)(recovery_rng_)) {
        mask |= bit;
        ++recoveries_injected_;
      }
    }
  }
  return mask;
}

std::size_t RecordingPolicy::pick(std::span<const int> enabled,
                                  std::span<const Access> footprints) {
  const std::size_t idx = inner_->pick(enabled, footprints);
  journal_.push_back({Event::Kind::kGrant, enabled[idx],
                      static_cast<std::int64_t>(enabled.size())});
  return idx;
}

std::uint32_t RecordingPolicy::choose(std::uint32_t arity) {
  const std::uint32_t c = inner_->choose(arity);
  journal_.push_back({Event::Kind::kChoose, c, arity});
  return c;
}

std::uint64_t RecordingPolicy::crash_requests(std::span<const int> enabled) {
  const std::uint64_t mask = inner_->crash_requests(enabled);
  for (int pid = 0; pid < 64; ++pid) {
    if ((mask >> pid) & 1) {
      journal_.push_back({Event::Kind::kCrash, pid, 0});
    }
  }
  return mask;
}

std::uint64_t RecordingPolicy::recovery_requests(std::span<const int> crashed) {
  const std::uint64_t mask = inner_->recovery_requests(crashed);
  for (int pid = 0; pid < 64; ++pid) {
    if ((mask >> pid) & 1) {
      journal_.push_back({Event::Kind::kRecover, pid, 0});
    }
  }
  return mask;
}

void RecordingPolicy::begin_run() { inner_->begin_run(); }

std::string RecordingPolicy::format_journal() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < journal_.size(); ++i) {
    const Event& e = journal_[i];
    if (i) {
      os << ' ';
    }
    switch (e.kind) {
      case Event::Kind::kGrant:
        os << 'g' << e.a << '/' << e.b;
        break;
      case Event::Kind::kChoose:
        os << 'c' << e.a << '/' << e.b;
        break;
      case Event::Kind::kCrash:
        os << 'x' << e.a;
        break;
      case Event::Kind::kRecover:
        os << 'r' << e.a;
        break;
    }
  }
  return os.str();
}

}  // namespace subc
