#include "subc/runtime/observer.hpp"

#include <iostream>
#include <ostream>

#include "subc/runtime/history.hpp"

namespace subc {

void ObserverChain::on_run_begin(int num_processes) {
  for (TraceObserver* s : sinks_) {
    s->on_run_begin(num_processes);
  }
}

void ObserverChain::on_step(const StepEvent& event) {
  for (TraceObserver* s : sinks_) {
    s->on_step(event);
  }
}

void ObserverChain::on_choose(int pid, std::uint32_t arity,
                              std::uint32_t chosen) {
  for (TraceObserver* s : sinks_) {
    s->on_choose(pid, arity, chosen);
  }
}

void ObserverChain::on_crash(int pid, std::int64_t step) {
  for (TraceObserver* s : sinks_) {
    s->on_crash(pid, step);
  }
}

void ObserverChain::on_recover(int pid, std::int64_t step) {
  for (TraceObserver* s : sinks_) {
    s->on_recover(pid, step);
  }
}

void ObserverChain::on_invoke(int pid, std::size_t handle, std::int64_t time,
                              std::span<const Value> op) {
  for (TraceObserver* s : sinks_) {
    s->on_invoke(pid, handle, time, op);
  }
}

void ObserverChain::on_respond(int pid, std::size_t handle, std::int64_t time,
                               std::span<const Value> response) {
  for (TraceObserver* s : sinks_) {
    s->on_respond(pid, handle, time, response);
  }
}

void ObserverChain::on_reduced(std::int64_t subtrees) {
  for (TraceObserver* s : sinks_) {
    s->on_reduced(subtrees);
  }
}

void ObserverChain::on_stateful_cut(std::int64_t cuts) {
  for (TraceObserver* s : sinks_) {
    s->on_stateful_cut(cuts);
  }
}

void ObserverChain::on_violation(std::string_view message) {
  for (TraceObserver* s : sinks_) {
    s->on_violation(message);
  }
}

void ObserverChain::on_stuck(std::string_view message) {
  for (TraceObserver* s : sinks_) {
    s->on_stuck(message);
  }
}

void ObserverChain::on_run_end(std::int64_t total_steps, bool quiescent) {
  for (TraceObserver* s : sinks_) {
    s->on_run_end(total_steps, quiescent);
  }
}

void AccessCounters::on_run_begin(int /*num_processes*/) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++runs_;
}

void AccessCounters::on_step(const StepEvent& event) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++steps_;
  ++by_kind_[static_cast<std::size_t>(event.access.kind)];
  const std::uint32_t obj = event.access.object;
  if (obj != 0) {
    if (per_object_.size() <= obj) {
      per_object_.resize(obj + 1, 0);
    }
    ++per_object_[obj];
  }
}

void AccessCounters::on_choose(int /*pid*/, std::uint32_t /*arity*/,
                               std::uint32_t /*chosen*/) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++chooses_;
}

void AccessCounters::on_crash(int /*pid*/, std::int64_t /*step*/) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++crashes_;
}

void AccessCounters::on_recover(int /*pid*/, std::int64_t /*step*/) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++recoveries_;
}

void AccessCounters::on_invoke(int /*pid*/, std::size_t /*handle*/,
                               std::int64_t /*time*/,
                               std::span<const Value> /*op*/) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++invocations_;
}

void AccessCounters::on_respond(int /*pid*/, std::size_t /*handle*/,
                                std::int64_t /*time*/,
                                std::span<const Value> /*response*/) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++responses_;
}

void AccessCounters::on_violation(std::string_view /*message*/) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++violations_;
}

void AccessCounters::on_stuck(std::string_view /*message*/) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++stuck_;
}

std::int64_t AccessCounters::runs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return runs_;
}

std::int64_t AccessCounters::steps() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return steps_;
}

std::int64_t AccessCounters::steps_of_kind(AccessKind kind) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return by_kind_[static_cast<std::size_t>(kind)];
}

std::int64_t AccessCounters::chooses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return chooses_;
}

std::int64_t AccessCounters::crashes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return crashes_;
}

std::int64_t AccessCounters::recoveries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return recoveries_;
}

std::int64_t AccessCounters::invocations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return invocations_;
}

std::int64_t AccessCounters::responses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return responses_;
}

std::int64_t AccessCounters::violations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

std::int64_t AccessCounters::stuck() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stuck_;
}

std::int64_t AccessCounters::objects_touched() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::int64_t n = 0;
  for (const std::int64_t c : per_object_) {
    if (c > 0) {
      ++n;
    }
  }
  return n;
}

std::int64_t AccessCounters::steps_on_object(std::uint32_t object) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (object >= per_object_.size()) {
    return 0;
  }
  return per_object_[object];
}

HistoryRecorder::HistoryRecorder() : history_(std::make_unique<History>()) {}
HistoryRecorder::~HistoryRecorder() = default;

void HistoryRecorder::on_invoke(int pid, std::size_t handle,
                                std::int64_t /*time*/,
                                std::span<const Value> op) {
  const std::size_t mirror = history_->invoke(pid, op);
  if (handle_map_.size() <= handle) {
    handle_map_.resize(handle + 1, static_cast<std::size_t>(-1));
  }
  handle_map_[handle] = mirror;
}

void HistoryRecorder::on_respond(int /*pid*/, std::size_t handle,
                                 std::int64_t /*time*/,
                                 std::span<const Value> response) {
  if (handle >= handle_map_.size() ||
      handle_map_[handle] == static_cast<std::size_t>(-1)) {
    // Response for an operation invoked before this recorder attached;
    // nothing to mirror it onto.
    return;
  }
  history_->respond(handle_map_[handle], response);
}

void HistoryRecorder::reset() {
  // Reuse the same History (and its pooled buffers) instead of reallocating
  // one per run; handle_map_ keeps its capacity too.
  history_->clear();
  handle_map_.clear();
}

ProgressTicker::ProgressTicker(double period_seconds, std::ostream* out)
    : period_seconds_(period_seconds),
      out_(out != nullptr ? out : &std::cerr),
      start_(std::chrono::steady_clock::now()),
      last_tick_(start_) {}

void ProgressTicker::on_run_end(std::int64_t /*total_steps*/,
                                bool /*quiescent*/) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++executions_;
  maybe_tick_locked();
}

void ProgressTicker::on_violation(std::string_view /*message*/) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++violations_;
  // A violating run never reaches on_run_end (the body threw), but the
  // search counts it as a completed execution — the counterexample run.
  ++executions_;
  maybe_tick_locked();
}

void ProgressTicker::on_reduced(std::int64_t subtrees) {
  const std::lock_guard<std::mutex> lock(mu_);
  reduced_ += subtrees;
}

void ProgressTicker::on_stateful_cut(std::int64_t cuts) {
  const std::lock_guard<std::mutex> lock(mu_);
  stateful_cuts_ += cuts;
}

void ProgressTicker::maybe_tick_locked() {
  const auto now = std::chrono::steady_clock::now();
  const std::chrono::duration<double> since_tick = now - last_tick_;
  if (since_tick.count() < period_seconds_) {
    return;
  }
  last_tick_ = now;
  const std::chrono::duration<double> elapsed = now - start_;
  const double rate =
      elapsed.count() > 0.0 ? static_cast<double>(executions_) / elapsed.count()
                            : 0.0;
  const double factor =
      executions_ > 0 ? static_cast<double>(executions_ + reduced_) /
                            static_cast<double>(executions_)
                      : 1.0;
  *out_ << "[progress] execs=" << executions_ << " exec/s=" << rate
        << " reduced=" << reduced_ << " (x" << factor
        << ") stateful=" << stateful_cuts_ << " violations=" << violations_
        << '\n';
}

ProgressTicker::Snapshot ProgressTicker::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.executions = executions_;
  s.reduced = reduced_;
  s.violations = violations_;
  s.stateful_cuts = stateful_cuts_;
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start_;
  s.elapsed_seconds = elapsed.count();
  s.executions_per_sec =
      s.elapsed_seconds > 0.0
          ? static_cast<double>(s.executions) / s.elapsed_seconds
          : 0.0;
  s.reduction_factor =
      s.executions > 0 ? static_cast<double>(s.executions + s.reduced) /
                             static_cast<double>(s.executions)
                       : 1.0;
  return s;
}

void ViolationCollector::on_violation(std::string_view message) {
  const std::lock_guard<std::mutex> lock(mu_);
  messages_.emplace_back(message);
}

std::vector<std::string> ViolationCollector::messages() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return messages_;
}

std::int64_t ViolationCollector::count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(messages_.size());
}

namespace {
thread_local TraceObserver* g_thread_observer = nullptr;
}  // namespace

TraceObserver* thread_default_observer() noexcept { return g_thread_observer; }

ScopedObserver::ScopedObserver(TraceObserver* obs)
    : previous_(g_thread_observer) {
  g_thread_observer = obs;
}

ScopedObserver::~ScopedObserver() { g_thread_observer = previous_; }

}  // namespace subc
