#include "subc/runtime/service.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "subc/runtime/bounded_queue.hpp"

namespace subc {

std::vector<int> usable_cpus(bool* probe_ok) {
  if (probe_ok != nullptr) {
    *probe_ok = false;
  }
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  std::vector<int> out;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &set)) {
        out.push_back(cpu);
      }
    }
  }
  if (!out.empty()) {
    if (probe_ok != nullptr) {
      *probe_ok = true;
    }
    return out;
  }
  // The probe itself failed (or yielded an empty mask — equally unusable):
  // fall back to every hardware thread rather than disabling pinning. A
  // fallback core the process may not run on just makes that shard's
  // pthread_setaffinity_np fail, which already degrades to unpinned per
  // shard.
  const unsigned hw = std::thread::hardware_concurrency();
  for (unsigned cpu = 0; cpu < hw; ++cpu) {
    out.push_back(static_cast<int>(cpu));
  }
  return out;
#else
  return {};
#endif
}

// --- DecisionMemo ---------------------------------------------------------

DecisionMemo::DecisionMemo(std::size_t capacity) {
  std::size_t slots = 64;
  while (slots * 7 < capacity * 10) {
    slots *= 2;
  }
  slots_ = std::make_unique<Slot[]>(slots);
  num_slots_ = slots;
  max_size_ = slots * 7 / 10;
}

std::optional<Value> DecisionMemo::lookup(std::uint64_t key) const noexcept {
  key += (key == 0);
  const std::uint64_t mask = num_slots_ - 1;
  for (std::uint64_t i = key & mask;; i = (i + 1) & mask) {
    const std::uint64_t cur = slots_[i].key.load(std::memory_order_acquire);
    if (cur == 0) {
      return std::nullopt;  // absent
    }
    if (cur == key) {
      if (slots_[i].published.load(std::memory_order_acquire) == 0) {
        return std::nullopt;  // recording in flight: sound miss
      }
      return slots_[i].value.load(std::memory_order_relaxed);
    }
  }
}

bool DecisionMemo::record(std::uint64_t key, Value decided) noexcept {
  key += (key == 0);
  const std::uint64_t mask = num_slots_ - 1;
  for (std::uint64_t i = key & mask;; i = (i + 1) & mask) {
    std::uint64_t cur = slots_[i].key.load(std::memory_order_relaxed);
    if (cur == key) {
      return false;  // already claimed (published or in flight)
    }
    if (cur == 0) {
      if (size_.load(std::memory_order_relaxed) >= max_size_) {
        return false;  // saturated: sound, just no more dedup
      }
      if (slots_[i].key.compare_exchange_strong(cur, key,
                                                std::memory_order_acq_rel)) {
        slots_[i].value.store(decided, std::memory_order_relaxed);
        slots_[i].published.store(1, std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (cur == key) {  // lost the claim race to an identical key
        return false;
      }
      // Lost to a different key: keep probing from this slot.
    }
  }
}

std::int64_t DecisionMemo::size() const noexcept {
  return static_cast<std::int64_t>(size_.load(std::memory_order_relaxed));
}

bool DecisionMemo::saturated() const noexcept {
  return size_.load(std::memory_order_relaxed) >= max_size_;
}

// --- ShardedService -------------------------------------------------------

/// One inbox message: a flat union of the open and op shapes (one message
/// type keeps the ring homogeneous, like the explorer's WorkItem).
struct ShardedService::Msg {
  enum class Kind : std::uint8_t { kNone, kOpen, kOp };
  Kind kind = Kind::kNone;
  ServiceId id = 0;
  // kOpen
  InstanceKind ikind = InstanceKind::kOneShotWrn;
  int a = 0;
  int b = 0;
  std::uint64_t request_fp = 0;
  unsigned total_weight = 0;
  int spec_k = 0;
  // kOp
  int validator = 0;
  unsigned weight = 0;
  int slot = 0;
  Value value = kBottom;
  int delay = 1;
};

struct ShardedService::Shard {
  explicit Shard(std::size_t inbox_capacity) : inbox(inbox_capacity) {}

  BoundedQueue<Msg> inbox;
  std::mutex mutex;
  std::condition_variable cv;
  /// Worker is parked on `cv`; producers only take the lock to wake when
  /// this is set (the 200 µs wait backstop bounds any lost wakeup).
  std::atomic<bool> parked{false};
  std::thread worker;
};

ShardedService::ShardedService(const ServiceOptions& opts,
                               DecidedCallback on_decided)
    : opts_(opts),
      on_decided_(std::move(on_decided)),
      memo_(opts.dedup_capacity == 0 ? 1 : opts.dedup_capacity),
      cpus_(usable_cpus(&cpu_probe_ok_)) {
  if (opts_.shards < 1) {
    throw SimError("ServiceOptions::shards must be >= 1");
  }
  if (opts_.drain_batch < 1) {
    throw SimError("ServiceOptions::drain_batch must be >= 1");
  }
  if (opts_.horizon_ticks < 1 || opts_.timeout_ticks < 1 ||
      opts_.linger_ticks < 0) {
    throw SimError(
        "ServiceOptions ticks: horizon >= 1, timeout >= 1, linger >= 0");
  }
  if (opts_.quorum_num < 1 || opts_.quorum_den < 1) {
    throw SimError("ServiceOptions quorum must be a positive fraction");
  }
  if (opts_.dedup_capacity == 0) {
    throw SimError("ServiceOptions::dedup_capacity must be >= 1");
  }
  stats_.resize(static_cast<std::size_t>(opts_.shards));
  shards_.reserve(static_cast<std::size_t>(opts_.shards));
  for (int s = 0; s < opts_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(opts_.inbox_capacity));
  }
  for (int s = 0; s < opts_.shards; ++s) {
    shards_[static_cast<std::size_t>(s)]->worker =
        std::thread([this, s] { worker_main(s); });
  }
}

ShardedService::~ShardedService() { stop(); }

void ShardedService::enqueue(int shard, Msg&& msg) {
  if (stopping_.load(std::memory_order_acquire)) {
    throw SimError("sharded service: open/submit after stop()");
  }
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  // Producer backpressure, frontier-ring style: a full inbox makes the
  // producer absorb the pressure. Accepted messages are never dropped.
  while (!sh.inbox.try_push(std::move(msg))) {
    if (sh.parked.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lk(sh.mutex);
      sh.cv.notify_one();
    }
    std::this_thread::yield();
  }
  if (sh.parked.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(sh.mutex);
    sh.cv.notify_one();
  }
}

ServiceId ShardedService::open(const OpenSpec& spec) {
  InstanceTable::validate_open(spec.kind, spec.a, spec.b);
  if (spec.total_weight == 0) {
    throw SimError("OpenSpec::total_weight must be > 0");
  }
  const ServiceId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Msg msg;
  msg.kind = Msg::Kind::kOpen;
  msg.id = id;
  msg.ikind = spec.kind;
  msg.a = spec.a;
  msg.b = spec.b;
  msg.request_fp = spec.request_fp;
  msg.total_weight = spec.total_weight;
  msg.spec_k = spec.spec_k;
  enqueue(shard_of(id), std::move(msg));
  return id;
}

void ShardedService::submit(ServiceId id, const OpSpec& op) {
  Msg msg;
  msg.kind = Msg::Kind::kOp;
  msg.id = id;
  msg.validator = op.validator;
  msg.weight = op.weight;
  msg.slot = op.slot;
  msg.value = op.value;
  msg.delay = op.delay_ticks < 1 ? 1
              : op.delay_ticks > opts_.horizon_ticks ? opts_.horizon_ticks
                                                     : op.delay_ticks;
  enqueue(shard_of(id), std::move(msg));
}

void ShardedService::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    // Someone else is stopping / stopped; wait for the joins to finish.
    while (!stopped_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return;
  }
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mutex);
    sh->cv.notify_all();
  }
  for (auto& sh : shards_) {
    if (sh->worker.joinable()) {
      sh->worker.join();
    }
  }
  stopped_.store(true, std::memory_order_release);
}

const std::vector<ShardStats>& ShardedService::stats() const {
  if (!stopped()) {
    throw SimError("sharded service: stats() before stop()");
  }
  return stats_;
}

namespace {

/// Worker-local per-instance bookkeeping (the table holds object state and
/// history; the worker holds quorum progress and the audit material).
struct Meta {
  unsigned total_weight = 0;
  unsigned served_weight = 0;
  int spec_k = 0;
  bool decided = false;
  std::uint64_t request_fp = 0;
  std::int64_t opened_tick = 0;
  std::vector<Value> proposals;
  std::vector<Value> responses;
};

struct PendingOp {
  ServiceId id = 0;
  int validator = 0;
  unsigned weight = 0;
  int slot = 0;
  Value value = kBottom;
};

}  // namespace

void ShardedService::worker_main(int shard) {
  ShardStats st;
  st.shard = shard;
  st.affinity_probe_ok = cpu_probe_ok_;
#ifdef __linux__
  if (opts_.pin_workers && !cpus_.empty()) {
    const int cpu =
        cpus_[static_cast<std::size_t>(shard) % cpus_.size()];
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(cpu), &set);
    if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0) {
      st.pinned = true;
      st.cpu = cpu;
    }
  }
#endif

  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  InstanceTable table;
  std::unordered_map<ServiceId, Meta> metas;
  // Time-ordered lanes over the virtual clock, ring-indexed by tick — the
  // same shape as the pre-sharding soak harness. Every schedule offset
  // (op delay ≤ horizon, deadline = timeout, GC = linger) fits in R.
  const std::size_t ring =
      static_cast<std::size_t>(opts_.horizon_ticks + opts_.timeout_ticks +
                               opts_.linger_ticks + 2);
  std::vector<std::vector<PendingOp>> op_ring(ring);
  std::vector<std::vector<ServiceId>> gc_ring(ring);
  std::vector<std::vector<ServiceId>> deadline_ring(ring);
  st.latency_hist.assign(static_cast<std::size_t>(opts_.timeout_ticks) + 1,
                         0);

  std::int64_t tick = 0;
  const auto lane = [&](std::int64_t at) {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(at) % ring);
  };

  const auto handle = [&](const Msg& msg) {
    if (msg.kind == Msg::Kind::kOpen) {
      ++st.msgs_open;
      if (msg.request_fp != 0) {
        // Cross-shard dedup: a recorded decision for this logical request
        // short-circuits the whole instance.
        if (memo_.lookup(detail::fp_request_domain(msg.request_fp))
                .has_value()) {
          ++st.dedup_hits;
          return;
        }
      }
      table.open_assigned(msg.id, msg.ikind, msg.a, msg.b, tick);
      ++st.opened;
      Meta meta;
      meta.total_weight = msg.total_weight;
      meta.spec_k = msg.spec_k;
      meta.request_fp = msg.request_fp;
      meta.opened_tick = tick;
      metas.emplace(msg.id, std::move(meta));
      deadline_ring[lane(tick + opts_.timeout_ticks)].push_back(msg.id);
      return;
    }
    ++st.msgs_op;
    const auto it = metas.find(msg.id);
    if (it == metas.end()) {
      ++st.orphan_ops;  // dedup'd open, or instance already reclaimed
      return;
    }
    it->second.proposals.push_back(msg.value);
    op_ring[lane(tick + msg.delay)].push_back(
        PendingOp{msg.id, msg.validator, msg.weight, msg.slot, msg.value});
  };

  for (;;) {
    const std::size_t occupancy = sh.inbox.approx_size();
    if (occupancy > st.inbox_peak) {
      st.inbox_peak = occupancy;
    }
    int drained = 0;
    Msg msg;
    while (drained < opts_.drain_batch && sh.inbox.try_pop(msg)) {
      handle(msg);
      ++drained;
    }

    if (drained == 0) {
      if (stopping_.load(std::memory_order_acquire)) {
        // Drain-out mode: exit once the inbox is empty and every pending
        // instance has decided+lingered or timed out; tick freely until
        // then — virtual time needs no pacing once admission has stopped.
        if (metas.empty()) {
          if (!sh.inbox.try_pop(msg)) {
            break;
          }
          handle(msg);
        }
      } else {
        // Input-starved while live: park instead of spinning the virtual
        // clock ahead of the producers (on saturated hosts the producers
        // need this core — racing ticks here would time instances out
        // before their ops ever get pushed). A push notifies when parked;
        // the wait backstop bounds any lost wakeup AND paces the clock to
        // at most ~1 tick per 200 µs of silence, so deadlines still fire
        // for instances whose producers went quiet for good.
        {
          std::unique_lock<std::mutex> lk(sh.mutex);
          sh.parked.store(true, std::memory_order_release);
          sh.cv.wait_for(lk, std::chrono::microseconds(200));
          sh.parked.store(false, std::memory_order_release);
        }
        if (metas.empty()) {
          continue;  // nothing to tick until input arrives
        }
      }
    }

    // One virtual tick: apply this tick's ops, then the GC lane, then the
    // deadline lane — the pre-sharding soak order, per shard.
    ++tick;
    ++st.ticks;

    auto& ops = op_ring[lane(tick)];
    for (const PendingOp& op : ops) {
      const auto it = metas.find(op.id);
      if (it == metas.end()) {
        ++st.skipped_ops;  // reclaimed between scheduling and arrival
        continue;
      }
      Meta& meta = it->second;
      bool hung = false;
      const Value out = table.apply(
          op.id, op.validator, op.slot, op.value,
          detail::mix64(op.id ^ static_cast<std::uint64_t>(op.validator)),
          &hung);
      ++st.ops;
      if (hung) {
        ++st.hung_ops;
        continue;
      }
      meta.responses.push_back(out);
      meta.served_weight += op.weight;
      if (!meta.decided &&
          static_cast<std::uint64_t>(meta.served_weight) * opts_.quorum_den >=
              static_cast<std::uint64_t>(meta.total_weight) *
                  opts_.quorum_num) {
        meta.decided = true;
        table.decide(op.id, tick);
        ++st.decided;
        const std::int64_t latency = tick - meta.opened_tick;
        const auto bucket = static_cast<std::size_t>(
            latency < 0 ? 0
            : latency >= static_cast<std::int64_t>(st.latency_hist.size())
                ? st.latency_hist.size() - 1
                : static_cast<std::size_t>(latency));
        ++st.latency_hist[bucket];
        const Value decided_value = meta.responses.front();
        if (meta.request_fp != 0 &&
            memo_.record(detail::fp_request_domain(meta.request_fp),
                         decided_value)) {
          ++st.dedup_records;
        }
        if (on_decided_) {
          DecidedView view;
          view.shard = shard;
          view.id = op.id;
          view.block = &table.at(op.id);
          view.proposals = &meta.proposals;
          view.responses = &meta.responses;
          view.spec_k = meta.spec_k;
          view.decided = decided_value;
          view.latency_ticks = latency;
          view.world_fp = table.world_fingerprint(op.id);
          on_decided_(view);
        }
        gc_ring[lane(tick + opts_.linger_ticks)].push_back(op.id);
      }
    }
    ops.clear();

    auto& gcs = gc_ring[lane(tick)];
    for (const ServiceId id : gcs) {
      if (table.gc(id)) {
        ++st.gc_sweeps;
      }
      metas.erase(id);
    }
    gcs.clear();

    auto& deadlines = deadline_ring[lane(tick)];
    for (const ServiceId id : deadlines) {
      const auto it = metas.find(id);
      if (it == metas.end() || it->second.decided) {
        continue;  // already reclaimed, or decided and waiting out linger
      }
      table.gc(id);
      ++st.gc_sweeps;
      metas.erase(it);
      ++st.timed_out;
    }
    deadlines.clear();
  }

  st.peak_live = table.stats().peak_live;
  st.live_at_exit = table.stats().live;
  st.blocks_carved = table.stats().blocks_carved;
  st.block_reuses = table.stats().block_reuses;
  stats_[static_cast<std::size_t>(shard)] = std::move(st);
}

}  // namespace subc
