#include "subc/runtime/arena.hpp"

namespace subc {

namespace detail {
AllocCounterCells& alloc_counter_cells() noexcept {
  static AllocCounterCells cells;
  return cells;
}
}  // namespace detail

AllocCounters alloc_counters() noexcept {
  const detail::AllocCounterCells& c = detail::alloc_counter_cells();
  AllocCounters out;
  out.arena_chunks = c.arena_chunks.load(std::memory_order_relaxed);
  out.arena_bytes = c.arena_bytes.load(std::memory_order_relaxed);
  out.arena_reuses = c.arena_reuses.load(std::memory_order_relaxed);
  out.fiber_stack_reuses = c.fiber_stack_reuses.load(std::memory_order_relaxed);
  out.fiber_stack_allocs = c.fiber_stack_allocs.load(std::memory_order_relaxed);
  out.stepped_blocks_carved =
      c.stepped_blocks_carved.load(std::memory_order_relaxed);
  out.stepped_block_reuses =
      c.stepped_block_reuses.load(std::memory_order_relaxed);
  out.stepped_block_bytes =
      c.stepped_block_bytes.load(std::memory_order_relaxed);
  out.instance_blocks_carved =
      c.instance_blocks_carved.load(std::memory_order_relaxed);
  out.instance_block_reuses =
      c.instance_block_reuses.load(std::memory_order_relaxed);
  out.instance_block_bytes =
      c.instance_block_bytes.load(std::memory_order_relaxed);
  return out;
}

AllocCounters alloc_counters_delta(const AllocCounters& since) noexcept {
  const AllocCounters now = alloc_counters();
  AllocCounters out;
  out.arena_chunks = now.arena_chunks - since.arena_chunks;
  out.arena_bytes = now.arena_bytes - since.arena_bytes;
  out.arena_reuses = now.arena_reuses - since.arena_reuses;
  out.fiber_stack_reuses = now.fiber_stack_reuses - since.fiber_stack_reuses;
  out.fiber_stack_allocs = now.fiber_stack_allocs - since.fiber_stack_allocs;
  out.stepped_blocks_carved =
      now.stepped_blocks_carved - since.stepped_blocks_carved;
  out.stepped_block_reuses =
      now.stepped_block_reuses - since.stepped_block_reuses;
  out.stepped_block_bytes = now.stepped_block_bytes - since.stepped_block_bytes;
  out.instance_blocks_carved =
      now.instance_blocks_carved - since.instance_blocks_carved;
  out.instance_block_reuses =
      now.instance_block_reuses - since.instance_block_reuses;
  out.instance_block_bytes =
      now.instance_block_bytes - since.instance_block_bytes;
  return out;
}

namespace {
// Arenas retained per thread for reuse across worlds. Bounded so a burst of
// nested Runtimes cannot pin memory forever; excess arenas are simply freed.
constexpr std::size_t kMaxPooledArenas = 8;

struct ArenaPool {
  std::vector<std::unique_ptr<MonotonicArena>> free;
};
thread_local ArenaPool tl_arena_pool;
}  // namespace

ArenaLease::ArenaLease() {
  ArenaPool& pool = tl_arena_pool;
  if (!pool.free.empty()) {
    arena_ = pool.free.back().release();
    pool.free.pop_back();
    detail::alloc_counter_cells().arena_reuses.fetch_add(
        1, std::memory_order_relaxed);
  } else {
    arena_ = new MonotonicArena();
  }
}

ArenaLease::~ArenaLease() {
  arena_->reset();
  ArenaPool& pool = tl_arena_pool;
  if (pool.free.size() < kMaxPooledArenas) {
    pool.free.emplace_back(arena_);
  } else {
    delete arena_;
  }
}

}  // namespace subc
