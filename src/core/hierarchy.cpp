#include "subc/core/hierarchy.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <sstream>

#include "subc/runtime/value.hpp"

namespace subc {

namespace {
void check_sc_params(int m, int j) {
  if (j < 1 || m <= j) {
    throw SimError("set-consensus parameters require 1 <= j < m");
  }
}
}  // namespace

int sc_partition_agreement(int n, int m, int j) {
  check_sc_params(m, j);
  if (n < 1) {
    throw SimError("n must be positive");
  }
  return j * (n / m) + std::min(j, n % m);
}

int sc_partition_agreement_dp(int n, int m, int j) {
  check_sc_params(m, j);
  if (n < 1) {
    throw SimError("n must be positive");
  }
  // f[x] = minimal distinct outputs to cover x processes; a group of size
  // g <= m contributes min(j, g).
  constexpr int kInf = std::numeric_limits<int>::max() / 2;
  std::vector<int> f(static_cast<std::size_t>(n) + 1, kInf);
  f[0] = 0;
  for (int x = 1; x <= n; ++x) {
    for (int g = 1; g <= std::min(x, m); ++g) {
      f[static_cast<std::size_t>(x)] =
          std::min(f[static_cast<std::size_t>(x)],
                   std::min(j, g) + f[static_cast<std::size_t>(x - g)]);
    }
  }
  return f[static_cast<std::size_t>(n)];
}

bool sc_implementable(int n, int k, int m, int j) {
  if (k >= n) {
    return true;  // (n,k) with k >= n is trivial (everyone decides itself)
  }
  return k >= sc_partition_agreement(n, m, j);
}

int sc_consensus_number(int m, int j) {
  check_sc_params(m, j);
  return m / j;
}

bool wrn_implementable_from(int k_target, int k_source) {
  if (k_target < 3 || k_source < 3) {
    throw SimError("1sWRN_k hierarchy defined for k >= 3");
  }
  // Theorem 2: 1sWRN_k ≡ (k, k−1)-set consensus. Implementing 1sWRN_{k'}
  // means solving (k', k'−1)-set consensus for its k' users.
  return sc_implementable(k_target, k_target - 1, k_source, k_source - 1);
}

void check_wrn_hierarchy_pair(int k, int k_prime) {
  if (!(k < k_prime)) {
    throw SimError("check_wrn_hierarchy_pair requires k < k'");
  }
  if (!wrn_implementable_from(k_prime, k)) {
    throw SpecViolation("hierarchy broken: 1sWRN_" + std::to_string(k_prime) +
                        " should be implementable from 1sWRN_" +
                        std::to_string(k));
  }
  if (wrn_implementable_from(k, k_prime)) {
    throw SpecViolation("hierarchy broken: 1sWRN_" + std::to_string(k) +
                        " should NOT be implementable from 1sWRN_" +
                        std::to_string(k_prime));
  }
}

int onk_component_capacity(int n, int i) {
  if (n < 1 || i < 0) {
    throw SimError("GAC(n,i) requires n >= 1, i >= 0");
  }
  return n * (i + 1) + i;
}

int onk_component_agreement(int i) {
  if (i < 0) {
    throw SimError("GAC component index must be >= 0");
  }
  return i + 1;
}

int onk_best_agreement(int n, int k, int procs) {
  if (n < 1 || k < 1 || procs < 1) {
    throw SimError("onk_best_agreement requires positive n, k, procs");
  }
  constexpr int kInf = std::numeric_limits<int>::max() / 2;
  std::vector<int> f(static_cast<std::size_t>(procs) + 1, kInf);
  f[0] = 0;
  for (int x = 1; x <= procs; ++x) {
    for (int i = 0; i < k; ++i) {
      const int cover = std::min(x, onk_component_capacity(n, i));
      const int cost = onk_component_agreement(i);
      f[static_cast<std::size_t>(x)] =
          std::min(f[static_cast<std::size_t>(x)],
                   cost + f[static_cast<std::size_t>(x - cover)]);
    }
  }
  return f[static_cast<std::size_t>(procs)];
}

int onk_best_agreement_bruteforce(int n, int k, int procs) {
  // Enumerate group choices recursively: each step picks a component i and a
  // group size g in [1, m_i], covering g processes at cost min(j_i, g).
  constexpr int kInf = std::numeric_limits<int>::max() / 2;
  struct Rec {
    int n, k;
    int best = kInf;
    void go(int remaining, int cost) {
      if (cost >= best) {
        return;
      }
      if (remaining == 0) {
        best = cost;
        return;
      }
      for (int i = 0; i < k; ++i) {
        const int cap = onk_component_capacity(n, i);
        for (int g = 1; g <= std::min(remaining, cap); ++g) {
          go(remaining - g,
             cost + std::min(onk_component_agreement(i), g));
        }
      }
    }
  };
  Rec rec{n, k};
  rec.go(procs, 0);
  return rec.best;
}

std::vector<std::pair<int, int>> onk_best_partition(int n, int k, int procs) {
  // Re-run the DP keeping back-pointers.
  constexpr int kInf = std::numeric_limits<int>::max() / 2;
  std::vector<int> f(static_cast<std::size_t>(procs) + 1, kInf);
  std::vector<std::pair<int, int>> choice(static_cast<std::size_t>(procs) + 1,
                                          {-1, -1});
  f[0] = 0;
  for (int x = 1; x <= procs; ++x) {
    for (int i = 0; i < k; ++i) {
      const int cover = std::min(x, onk_component_capacity(n, i));
      const int cost = onk_component_agreement(i);
      const int total = cost + f[static_cast<std::size_t>(x - cover)];
      if (total < f[static_cast<std::size_t>(x)]) {
        f[static_cast<std::size_t>(x)] = total;
        choice[static_cast<std::size_t>(x)] = {i, cover};
      }
    }
  }
  std::vector<std::pair<int, int>> groups;
  for (int x = procs; x > 0;) {
    const auto [i, cover] = choice[static_cast<std::size_t>(x)];
    SUBC_ASSERT(i >= 0);
    groups.emplace_back(i, cover);
    x -= cover;
  }
  return groups;
}

OnkSeparation onk_separation(int n, int k) {
  if (n < 1 || k < 1) {
    throw SimError("onk_separation requires n >= 1, k >= 1");
  }
  OnkSeparation sep;
  sep.n = n;
  sep.k = k;
  sep.system_size = n * k + n + k;  // == onk_component_capacity(n, k)
  sep.agreement_with_k = onk_best_agreement(n, k, sep.system_size);
  sep.agreement_with_k1 = onk_best_agreement(n, k + 1, sep.system_size);
  return sep;
}

namespace {
ObjectClassProfile make_profile(std::string name, int max_procs,
                                const std::function<int(int)>& best) {
  ObjectClassProfile profile;
  profile.name = std::move(name);
  profile.best_agreement.reserve(static_cast<std::size_t>(max_procs));
  for (int procs = 1; procs <= max_procs; ++procs) {
    profile.best_agreement.push_back(best(procs));
  }
  return profile;
}
}  // namespace

ObjectClassProfile profile_registers(int max_procs) {
  return make_profile("registers", max_procs, [](int procs) { return procs; });
}

ObjectClassProfile profile_wrn(int k, int max_procs) {
  if (k < 3) {
    throw SimError("profile_wrn requires k >= 3");
  }
  return make_profile("1sWRN_" + std::to_string(k), max_procs,
                      [k](int procs) {
                        return std::min(procs,
                                        sc_partition_agreement(procs, k,
                                                               k - 1));
                      });
}

ObjectClassProfile profile_consensus(int n, int max_procs) {
  if (n < 1) {
    throw SimError("profile_consensus requires n >= 1");
  }
  return make_profile(std::to_string(n) + "-consensus", max_procs,
                      [n](int procs) { return (procs + n - 1) / n; });
}

ObjectClassProfile profile_onk(int n, int k, int max_procs) {
  return make_profile(
      "O_{" + std::to_string(n) + "," + std::to_string(k) + "}", max_procs,
      [n, k](int procs) {
        return std::min(procs, onk_best_agreement(n, k, procs));
      });
}

ObjectClassProfile profile_cas(int max_procs) {
  return make_profile("compare&swap", max_procs, [](int) { return 1; });
}

ObjectClassProfile profile_set_consensus(int m, int j, int max_procs) {
  check_sc_params(m, j);
  return make_profile(
      "(" + std::to_string(m) + "," + std::to_string(j) + ")-SC", max_procs,
      [m, j](int procs) {
        return std::min(procs, sc_partition_agreement(procs, m, j));
      });
}

std::string format_wrn_matrix(int k_min, int k_max) {
  std::ostringstream os;
  os << "1sWRN implementability: row = target, column = source\n      ";
  for (int src = k_min; src <= k_max; ++src) {
    os << "k=" << src << (src < 10 ? "  " : " ");
  }
  os << '\n';
  for (int tgt = k_min; tgt <= k_max; ++tgt) {
    os << "k=" << tgt << (tgt < 10 ? "   " : "  ");
    for (int src = k_min; src <= k_max; ++src) {
      os << (wrn_implementable_from(tgt, src) ? "  ✓  " : "  ·  ");
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace subc
