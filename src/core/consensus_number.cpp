#include "subc/core/consensus_number.hpp"

#include <sstream>

#include "subc/core/tasks.hpp"
#include "subc/objects/onk.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/wrn.hpp"

namespace subc {

// ---------------------------------------------------------------------------
// WrnModel
// ---------------------------------------------------------------------------

std::vector<WrnModel::State> WrnModel::states() const {
  // All assignments of {⊥} ∪ domain to the k slots. This superset of the
  // reachable states makes the coverage check conservative.
  std::vector<Value> alphabet;
  alphabet.push_back(kBottom);
  alphabet.insert(alphabet.end(), domain.begin(), domain.end());
  std::vector<State> out;
  State current(static_cast<std::size_t>(k), kBottom);
  const std::size_t base = alphabet.size();
  std::size_t total = 1;
  for (int s = 0; s < k; ++s) {
    total *= base;
  }
  out.reserve(total);
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t rest = code;
    for (int s = 0; s < k; ++s) {
      current[static_cast<std::size_t>(s)] = alphabet[rest % base];
      rest /= base;
    }
    out.push_back(current);
  }
  return out;
}

std::vector<WrnModel::Op> WrnModel::ops() const {
  std::vector<Op> out;
  for (int index = 0; index < k; ++index) {
    for (const Value v : domain) {
      out.push_back(Op{index, v});
    }
  }
  return out;
}

std::optional<Value> WrnModel::apply(State& s, const Op& op) const {
  s[static_cast<std::size_t>(op.index)] = op.v;
  return s[static_cast<std::size_t>((op.index + 1) % k)];
}

std::string WrnModel::key(const State& s) const {
  std::string out;
  for (const Value v : s) {
    out += to_string(v);
    out += '|';
  }
  return out;
}

std::string WrnModel::describe(const Op& op) {
  return "WRN(" + std::to_string(op.index) + "," + to_string(op.v) + ")";
}

// ---------------------------------------------------------------------------
// GacModel
// ---------------------------------------------------------------------------

std::vector<GacModel::State> GacModel::states() const {
  // Arrival prefixes of length 0..capacity. Only "readable" positions
  // (block firsts; position 0) influence any future response, so other
  // positions carry a fixed placeholder — this collapses the state space
  // without losing distinguishing power.
  const int capacity = n * (i + 1) + i;
  constexpr Value kPlaceholder = 77;  // never read back
  std::vector<State> out;
  for (int len = 0; len <= capacity; ++len) {
    // Readable positions within the prefix.
    std::vector<int> readable;
    for (int t = 1; t <= len; ++t) {
      const bool block_first = (t <= n * (i + 1)) && ((t - 1) % n == 0);
      if (block_first) {
        readable.push_back(t - 1);
      }
    }
    std::size_t combos = 1;
    for (std::size_t r = 0; r < readable.size(); ++r) {
      combos *= domain.size();
    }
    for (std::size_t code = 0; code < combos; ++code) {
      State s;
      s.arrivals.assign(static_cast<std::size_t>(len), kPlaceholder);
      std::size_t rest = code;
      for (const int pos : readable) {
        s.arrivals[static_cast<std::size_t>(pos)] =
            domain[rest % domain.size()];
        rest /= domain.size();
      }
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<GacModel::Op> GacModel::ops() const {
  std::vector<Op> out;
  out.reserve(domain.size());
  for (const Value v : domain) {
    out.push_back(Op{v});
  }
  return out;
}

std::optional<Value> GacModel::apply(State& s, const Op& op) const {
  const int capacity = n * (i + 1) + i;
  const int t = static_cast<int>(s.arrivals.size()) + 1;
  if (t > capacity) {
    return std::nullopt;  // hangs; no mutation
  }
  s.arrivals.push_back(op.v);
  if (t <= n * (i + 1)) {
    const int block = (t - 1) / n;
    return s.arrivals[static_cast<std::size_t>(block * n)];
  }
  return s.arrivals[0];
}

std::string GacModel::key(const State& s) const {
  // Canonical (bisimulation) key: two states with equal keys produce equal
  // responses for every future operation sequence. Future responses depend
  // only on the arrival count, on arrivals[0] (read by block-0 members and
  // by the wrap-around arrivals), and on the current block's first value
  // while that block is still incomplete. Dead positions (completed blocks
  // other than 0, non-first members) never influence anything again.
  const int len = static_cast<int>(s.arrivals.size());
  std::string out = std::to_string(len) + ":";
  if (len >= 1) {
    out += to_string(s.arrivals[0]);
  }
  out += '|';
  if (len < n * (i + 1) && len % n != 0) {
    out += to_string(s.arrivals[static_cast<std::size_t>((len / n) * n)]);
  }
  return out;
}

std::string GacModel::describe(const Op& op) {
  return "propose(" + to_string(op.v) + ")";
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

ValenceReport check_wrn_valence(int k) {
  if (k < 2) {
    throw SimError("check_wrn_valence requires k >= 2");
  }
  return check_valence_cases(WrnModel{k, {1, 2}});
}

ValenceReport check_gac_valence(int n, int i) {
  if (n < 1 || i < 0) {
    throw SimError("check_gac_valence requires n >= 1, i >= 0");
  }
  return check_valence_cases(GacModel{n, i, {1, 2}});
}

ConsensusCheck check_consensus_algorithm(
    const ConsensusWorldBody& body,
    const std::vector<std::vector<Value>>& input_vectors,
    std::int64_t max_executions_per_input, int threads) {
  ConsensusCheck check;
  check.exhaustive = true;
  for (const auto& inputs : input_vectors) {
    Explorer::Options opts;
    opts.max_executions = max_executions_per_input;
    opts.threads = threads;
    const Explorer::Result r = Explorer::explore(
        [&](ScheduleDriver& driver) { body(driver, inputs); }, opts);
    check.executions += r.executions;
    check.reduced_subtrees += r.reduced_subtrees;
    if (!r.complete) {
      check.exhaustive = false;
    }
    if (!r.ok()) {
      std::ostringstream os;
      os << "inputs=" << format_decisions(inputs) << ": " << *r.violation
         << " [trace " << format_trace(r.violating_trace) << "]";
      check.violation = os.str();
      return check;
    }
  }
  return check;
}

ProtocolSearchResult search_wrn_two_consensus_protocols(int k) {
  if (k < 2) {
    throw SimError("protocol search requires k >= 2");
  }
  ProtocolSearchResult result;
  const std::vector<std::vector<Value>> input_vectors{{0, 1}, {1, 0}, {4, 4}};
  WrnProtocol protocol;
  for (protocol.index[0] = 0; protocol.index[0] < k; ++protocol.index[0]) {
    for (protocol.index[1] = 0; protocol.index[1] < k; ++protocol.index[1]) {
      for (protocol.rule[0] = 0; protocol.rule[0] < 5; ++protocol.rule[0]) {
        for (protocol.rule[1] = 0; protocol.rule[1] < 5; ++protocol.rule[1]) {
          ++result.protocols_checked;
          const auto body = [k, protocol](ScheduleDriver& driver,
                                          const std::vector<Value>& inputs) {
            Runtime rt;
            WrnObject wrn(k);
            RegisterArray<Value> announce(2, kBottom);
            for (int b = 0; b < 2; ++b) {
              rt.add_process([&, b](Context& ctx) {
                const Value own = inputs[static_cast<std::size_t>(b)];
                announce[b].write(ctx, own);
                const Value t = wrn.wrn(ctx, protocol.index[b], own);
                const auto other = [&]() {
                  const Value o = announce[1 - b].read(ctx);
                  return o != kBottom ? o : own;
                };
                Value decision = own;
                switch (protocol.rule[b]) {
                  case 0:
                    decision = own;
                    break;
                  case 1:
                    decision = t != kBottom ? t : own;
                    break;
                  case 2:
                    decision = t != kBottom ? other() : own;
                    break;
                  case 3:
                    decision = t != kBottom ? own : other();
                    break;
                  case 4:
                    decision = t != kBottom ? t : other();
                    break;
                  default:
                    break;
                }
                ctx.decide(decision);
              });
            }
            const auto run = rt.run(driver);
            check_all_done_and_decided(run);
            check_validity(inputs, run.decisions);
            check_agreement(run.decisions);
          };
          const ConsensusCheck check =
              check_consensus_algorithm(body, input_vectors, 10'000);
          if (check.ok() && check.exhaustive) {
            ++result.correct;
            result.winners.push_back(protocol);
          }
        }
      }
    }
  }
  return result;
}

ProtocolSearchResult search_gac_consensus_protocols(int n, int i, int procs) {
  if (n < 1 || i < 0 || procs < 1 || procs > 8) {
    throw SimError("GAC protocol search requires n >= 1, i >= 0, procs <= 8");
  }
  ProtocolSearchResult result;
  constexpr int kRules = 4;
  long combos = 1;
  for (int p = 0; p < procs; ++p) {
    combos *= kRules;
  }
  // Distinct inputs; the value encodes the proposer (base + pid) so rule 3
  // can look up the announcement of the returned value's owner.
  constexpr Value kBase = 100;
  std::vector<Value> inputs;
  for (int p = 0; p < procs; ++p) {
    inputs.push_back(kBase + p);
  }
  for (long code = 0; code < combos; ++code) {
    ++result.protocols_checked;
    GacProtocol protocol;
    long rest = code;
    for (int p = 0; p < procs; ++p) {
      protocol.rule[p] = static_cast<int>(rest % kRules);
      rest /= kRules;
    }
    const auto body = [&, protocol](ScheduleDriver& driver,
                                    const std::vector<Value>& in) {
      Runtime rt;
      GacObject gac(n, i);
      RegisterArray<Value> announce(procs, kBottom);
      for (int p = 0; p < procs; ++p) {
        rt.add_process([&, p](Context& ctx) {
          const Value own = in[static_cast<std::size_t>(p)];
          announce[p].write(ctx, own);
          const Value t = gac.propose(ctx, own);
          Value decision = own;
          switch (protocol.rule[p]) {
            case 0:
              decision = own;
              break;
            case 1:
            case 2:
              decision = t;
              break;
            case 3:
              if (t == own) {
                decision = own;
              } else {
                const Value a =
                    announce[static_cast<int>(t - kBase)].read(ctx);
                decision = a != kBottom ? a : own;
              }
              break;
            default:
              break;
          }
          ctx.decide(decision);
        });
      }
      const auto run = rt.run(driver);
      check_all_done_and_decided(run);
      check_validity(in, run.decisions);
      check_agreement(run.decisions);
    };
    const ConsensusCheck check =
        check_consensus_algorithm(body, {inputs}, 200'000);
    if (check.ok() && check.exhaustive) {
      ++result.correct;
    }
  }
  return result;
}

std::optional<std::string> find_consensus_violation(
    const ConsensusWorldBody& body, const std::vector<Value>& inputs,
    std::int64_t max_executions, int threads) {
  Explorer::Options opts;
  opts.max_executions = max_executions;
  opts.threads = threads;
  const Explorer::Result r = Explorer::explore(
      [&](ScheduleDriver& driver) { body(driver, inputs); }, opts);
  if (!r.ok()) {
    return *r.violation + " [trace " + format_trace(r.violating_trace) + "]";
  }
  return std::nullopt;
}

}  // namespace subc
