#include "subc/core/tasks.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace subc {

std::string format_decisions(std::span<const Value> decisions) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    os << (i ? "," : "") << to_string(decisions[i]);
  }
  os << ']';
  return os.str();
}

int distinct_decisions(std::span<const Value> decisions) {
  std::set<Value> seen;
  for (const Value d : decisions) {
    if (d != kBottom) {
      seen.insert(d);
    }
  }
  return static_cast<int>(seen.size());
}

void check_validity(std::span<const Value> inputs,
                    std::span<const Value> decisions) {
  for (std::size_t pid = 0; pid < decisions.size(); ++pid) {
    const Value d = decisions[pid];
    if (d == kBottom) {
      continue;
    }
    if (std::find(inputs.begin(), inputs.end(), d) == inputs.end()) {
      throw SpecViolation("validity violated: process " + std::to_string(pid) +
                          " decided " + to_string(d) +
                          " which nobody proposed; decisions=" +
                          format_decisions(decisions));
    }
  }
}

void check_k_agreement(std::span<const Value> decisions, int k) {
  const int distinct = distinct_decisions(decisions);
  if (distinct > k) {
    throw SpecViolation("k-agreement violated: " + std::to_string(distinct) +
                        " distinct decisions, bound " + std::to_string(k) +
                        "; decisions=" + format_decisions(decisions));
  }
}

void check_agreement(std::span<const Value> decisions) {
  check_k_agreement(decisions, 1);
}

void check_decided_if_done(const Runtime::RunResult& result) {
  for (std::size_t pid = 0; pid < result.states.size(); ++pid) {
    if (result.states[pid] == ProcState::kDone &&
        result.decisions[pid] == kBottom) {
      throw SpecViolation("process " + std::to_string(pid) +
                          " finished without deciding");
    }
  }
}

void check_all_done_and_decided(const Runtime::RunResult& result) {
  for (std::size_t pid = 0; pid < result.states.size(); ++pid) {
    if (result.states[pid] != ProcState::kDone) {
      throw SpecViolation("process " + std::to_string(pid) +
                          " did not finish: state=" +
                          to_string(result.states[pid]));
    }
  }
  check_decided_if_done(result);
  for (std::size_t pid = 0; pid < result.decisions.size(); ++pid) {
    if (result.decisions[pid] == kBottom) {
      throw SpecViolation("process " + std::to_string(pid) + " never decided");
    }
  }
}

void check_election_validity(std::span<const Value> decisions,
                             std::span<const int> participants) {
  for (std::size_t pid = 0; pid < decisions.size(); ++pid) {
    const Value d = decisions[pid];
    if (d == kBottom) {
      continue;
    }
    const bool known = std::any_of(
        participants.begin(), participants.end(),
        [d](int p) { return static_cast<Value>(p) == d; });
    if (!known) {
      throw SpecViolation("election validity violated: process " +
                          std::to_string(pid) + " elected non-participant " +
                          to_string(d));
    }
  }
}

void check_self_election(std::span<const Value> decisions) {
  for (std::size_t pid = 0; pid < decisions.size(); ++pid) {
    const Value d = decisions[pid];
    if (d == kBottom) {
      continue;
    }
    if (d < 0 || static_cast<std::size_t>(d) >= decisions.size() ||
        decisions[static_cast<std::size_t>(d)] != d) {
      throw SpecViolation("self-election violated: process " +
                          std::to_string(pid) + " elected " + to_string(d) +
                          " but " + to_string(d) + " did not elect itself; " +
                          format_decisions(decisions));
    }
  }
}

void check_renaming(std::span<const Value> names, int limit) {
  std::set<Value> seen;
  for (std::size_t pid = 0; pid < names.size(); ++pid) {
    const Value name = names[pid];
    if (name == kBottom) {
      continue;
    }
    if (name < 0 || name >= limit) {
      throw SpecViolation("renaming: name " + to_string(name) +
                          " out of range [0," + std::to_string(limit) + ")");
    }
    if (!seen.insert(name).second) {
      throw SpecViolation("renaming: duplicate name " + to_string(name) +
                          "; names=" + format_decisions(names));
    }
  }
}

void check_set_consensus(const Runtime::RunResult& result,
                         std::span<const Value> inputs, int k) {
  check_decided_if_done(result);
  check_validity(inputs, result.decisions);
  check_k_agreement(result.decisions, k);
}

}  // namespace subc
