#include "subc/objects/onk.hpp"

namespace subc {

void GacState::reset(int n_arg, int i_arg) {
  n = n_arg;
  i = i_arg;
  arrivals.clear();
  arrivals.reserve(static_cast<std::size_t>(gac_capacity(n_arg, i_arg)));
}

void gac_check_proposal(Value v) {
  if (v == kBottom) {
    throw SimError("propose(⊥) is illegal");
  }
}

Value gac_serve(GacState* st, Value v) {
  const int t = static_cast<int>(st->arrivals.size()) + 1;  // 1-based arrival
  st->arrivals.push_back(v);
  if (t <= st->n * (st->i + 1)) {
    const int block = (t - 1) / st->n;
    return st->arrivals[static_cast<std::size_t>(block * st->n)];
  }
  return st->arrivals[0];  // wrap-around arrivals adopt block 0's value
}

GacObject::GacObject(int n, int i) {
  if (n < 1 || i < 0) {
    throw SimError("GAC(n, i) requires n >= 1, i >= 0");
  }
  state_.reset(n, i);
}

Value GacObject::propose(Context& ctx, Value v) {
  gac_check_proposal(v);
  ctx.sched_point(id_, AccessKind::kRmw);
  return step_propose(ctx, v);
}

OnkObject::OnkObject(int n, int k) : n_(n), k_(k) {
  if (n < 1 || k < 1) {
    throw SimError("O_{n,k} requires n >= 1, k >= 1");
  }
  components_.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    components_.emplace_back(n, i);
  }
}

Value OnkObject::propose(Context& ctx, int component, Value v) {
  return this->component(component).propose(ctx, v);
}

GacObject& OnkObject::component(int i) {
  if (i < 0 || i >= k_) {
    throw SimError("O_{n,k} component out of range");
  }
  return components_[static_cast<std::size_t>(i)];
}

}  // namespace subc
