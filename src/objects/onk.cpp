#include "subc/objects/onk.hpp"

namespace subc {

GacObject::GacObject(int n, int i) : n_(n), i_(i) {
  if (n < 1 || i < 0) {
    throw SimError("GAC(n, i) requires n >= 1, i >= 0");
  }
  arrivals_.reserve(static_cast<std::size_t>(capacity()));
}

Value GacObject::propose(Context& ctx, Value v) {
  check_proposal(v);
  ctx.sched_point(id_, AccessKind::kRmw);
  return step_propose(ctx, v);
}

void GacObject::check_proposal(Value v) {
  if (v == kBottom) {
    throw SimError("propose(⊥) is illegal");
  }
}

Value GacObject::serve(Value v) {
  const int t = static_cast<int>(arrivals_.size()) + 1;  // 1-based arrival
  arrivals_.push_back(v);
  if (t <= n_ * (i_ + 1)) {
    const int block = (t - 1) / n_;
    return arrivals_[static_cast<std::size_t>(block * n_)];
  }
  return arrivals_[0];  // wrap-around arrivals adopt block 0's value
}

OnkObject::OnkObject(int n, int k) : n_(n), k_(k) {
  if (n < 1 || k < 1) {
    throw SimError("O_{n,k} requires n >= 1, k >= 1");
  }
  components_.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    components_.emplace_back(n, i);
  }
}

Value OnkObject::propose(Context& ctx, int component, Value v) {
  return this->component(component).propose(ctx, v);
}

GacObject& OnkObject::component(int i) {
  if (i < 0 || i >= k_) {
    throw SimError("O_{n,k} component out of range");
  }
  return components_[static_cast<std::size_t>(i)];
}

}  // namespace subc
