#include "subc/objects/wrn.hpp"

namespace subc {

namespace {
void check_params(int k, int index, Value v) {
  if (index < 0 || index >= k) {
    throw SimError("WRN index out of range: " + std::to_string(index));
  }
  if (v == kBottom) {
    throw SimError("WRN(i, ⊥) is illegal");
  }
}
}  // namespace

WrnObject::WrnObject(int k)
    : k_(k), slots_(static_cast<std::size_t>(k), kBottom) {
  if (k < 2) {
    throw SimError("WRN_k requires k >= 2");
  }
}

Value WrnObject::wrn(Context& ctx, int index, Value v) {
  check_params(k_, index, v);
  ctx.sched_point(id_, AccessKind::kRmw);
  return step_wrn(ctx, index, v);
}

Value WrnObject::apply_wrn(int index, Value v) {
  check_params(k_, index, v);
  slots_[static_cast<std::size_t>(index)] = v;
  return slots_[static_cast<std::size_t>((index + 1) % k_)];
}

Value WrnObject::peek(int index) const {
  if (index < 0 || index >= k_) {
    throw SimError("WRN peek index out of range");
  }
  return slots_[static_cast<std::size_t>(index)];
}

OneShotWrnObject::OneShotWrnObject(int k)
    : k_(k),
      slots_(static_cast<std::size_t>(k), kBottom),
      used_(static_cast<std::size_t>(k), false) {
  if (k < 2) {
    throw SimError("1sWRN_k requires k >= 2");
  }
}

Value OneShotWrnObject::wrn(Context& ctx, int index, Value v) {
  check_params(k_, index, v);
  ctx.sched_point(id_, AccessKind::kRmw);
  return step_wrn(ctx, index, v);
}

void OneShotWrnObject::check_args(int index, Value v) const {
  check_params(k_, index, v);
}

Value OneShotWrnObject::commit(std::size_t i, Value v) {
  used_[i] = true;
  slots_[i] = v;
  return slots_[(i + 1) % static_cast<std::size_t>(k_)];
}

std::uint64_t OneShotWrnObject::state_hash() const {
  std::uint64_t h = 0x6a09e667f3bcc909ULL;
  for (int i = 0; i < k_; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const auto v = static_cast<std::uint64_t>(slots_[idx]);
    h = detail::mix64(h ^ v ^ (used_[idx] ? 0x8000000000000000ULL : 0));
  }
  return h;
}

}  // namespace subc
