#include "subc/objects/wrn.hpp"

namespace subc {

namespace {
void check_params(int k, int index, Value v) {
  if (index < 0 || index >= k) {
    throw SimError("WRN index out of range: " + std::to_string(index));
  }
  if (v == kBottom) {
    throw SimError("WRN(i, ⊥) is illegal");
  }
}
}  // namespace

WrnObject::WrnObject(int k)
    : k_(k), slots_(static_cast<std::size_t>(k), kBottom) {
  if (k < 2) {
    throw SimError("WRN_k requires k >= 2");
  }
}

Value WrnObject::wrn(Context& ctx, int index, Value v) {
  check_params(k_, index, v);
  ctx.sched_point(id_, AccessKind::kRmw);
  return step_wrn(index, v);
}

Value WrnObject::step_wrn(int index, Value v) {
  check_params(k_, index, v);
  slots_[static_cast<std::size_t>(index)] = v;
  return slots_[static_cast<std::size_t>((index + 1) % k_)];
}

Value WrnObject::peek(int index) const {
  if (index < 0 || index >= k_) {
    throw SimError("WRN peek index out of range");
  }
  return slots_[static_cast<std::size_t>(index)];
}

OneShotWrnObject::OneShotWrnObject(int k)
    : k_(k),
      slots_(static_cast<std::size_t>(k), kBottom),
      used_(static_cast<std::size_t>(k), false) {
  if (k < 2) {
    throw SimError("1sWRN_k requires k >= 2");
  }
}

Value OneShotWrnObject::wrn(Context& ctx, int index, Value v) {
  check_params(k_, index, v);
  ctx.sched_point(id_, AccessKind::kRmw);
  const auto i = static_cast<std::size_t>(index);
  if (used_[i]) {
    // "Any attempt to invoke 1sWRN with the same index twice is illegal,
    // and hangs the system in a manner that cannot be detected."
    ctx.hang();
  }
  return commit(i, v);
}

Value OneShotWrnObject::step_wrn(StepContext& ctx, int index, Value v) {
  check_params(k_, index, v);
  const auto i = static_cast<std::size_t>(index);
  if (used_[i]) {
    ctx.hang();  // caller must return from step() immediately
    return kBottom;
  }
  return commit(i, v);
}

Value OneShotWrnObject::commit(std::size_t i, Value v) {
  used_[i] = true;
  slots_[i] = v;
  return slots_[(i + 1) % static_cast<std::size_t>(k_)];
}

}  // namespace subc
