#include "subc/objects/wrn.hpp"

namespace subc {

void wrn_check_params(int k, int index, Value v) {
  if (index < 0 || index >= k) {
    throw SimError("WRN index out of range: " + std::to_string(index));
  }
  if (v == kBottom) {
    throw SimError("WRN(i, ⊥) is illegal");
  }
}

Value wrn_apply(WrnState* st, int index, Value v) {
  wrn_check_params(st->k, index, v);
  st->slots[static_cast<std::size_t>(index)] = v;
  return st->slots[static_cast<std::size_t>((index + 1) % st->k)];
}

std::uint64_t one_shot_wrn_state_hash(const OneShotWrnState& st) {
  std::uint64_t h = 0x6a09e667f3bcc909ULL;
  for (int i = 0; i < st.k; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const auto v = static_cast<std::uint64_t>(st.slots[idx]);
    h = detail::mix64(h ^ v ^ (st.used[idx] ? 0x8000000000000000ULL : 0));
  }
  return h;
}

WrnObject::WrnObject(int k, Durability durability) : durability_(durability) {
  if (k < 2) {
    throw SimError("WRN_k requires k >= 2");
  }
  state_.reset(k);
}

Value WrnObject::wrn(Context& ctx, int index, Value v) {
  wrn_check_params(state_.k, index, v);
  ctx.sched_point(id_, AccessKind::kRmw);
  return step_wrn(ctx, index, v);
}

Value WrnObject::peek(int index) const {
  if (index < 0 || index >= state_.k) {
    throw SimError("WRN peek index out of range");
  }
  return state_.slots[static_cast<std::size_t>(index)];
}

OneShotWrnObject::OneShotWrnObject(int k, Durability durability)
    : durability_(durability) {
  if (k < 2) {
    throw SimError("1sWRN_k requires k >= 2");
  }
  state_.reset(k);
}

Value OneShotWrnObject::wrn(Context& ctx, int index, Value v) {
  wrn_check_params(state_.k, index, v);
  ctx.sched_point(id_, AccessKind::kRmw);
  return step_wrn(ctx, index, v);
}

}  // namespace subc
