#include "subc/checking/linearizability.hpp"

#include <sstream>

namespace subc {

std::string format_linearization(const History& history,
                                 const std::vector<std::size_t>& order) {
  std::ostringstream os;
  const auto& entries = history.entries();
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const HistoryEntry& e = entries.at(order[pos]);
    os << pos << ": p" << e.pid << " op(";
    for (std::size_t i = 0; i < e.op.size(); ++i) {
      os << (i ? "," : "") << to_string(e.op[i]);
    }
    os << ")";
    if (!e.pending()) {
      os << " -> (";
      for (std::size_t i = 0; i < e.response.size(); ++i) {
        os << (i ? "," : "") << to_string(e.response[i]);
      }
      os << ")";
    } else {
      os << " [linearized pending op]";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace subc
