#include "subc/checking/progress.hpp"

#include <sstream>

#include "subc/runtime/scheduler.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

std::string format_set(const std::vector<int>& pids) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < pids.size(); ++i) {
    os << (i ? "," : "") << pids[i];
  }
  os << '}';
  return os.str();
}

WaitFreedomReport check_wait_freedom(const WorldFactory& factory,
                                     int num_processes, int rounds,
                                     std::uint64_t seed,
                                     std::int64_t max_steps) {
  WaitFreedomReport report;
  if (num_processes <= 0 || num_processes > 20) {
    throw SimError("check_wait_freedom supports 1..20 processes");
  }
  const std::uint32_t subsets = 1u << num_processes;
  for (std::uint32_t mask = 1; mask < subsets; ++mask) {
    std::vector<int> participants;
    for (int pid = 0; pid < num_processes; ++pid) {
      if (mask & (1u << pid)) {
        participants.push_back(pid);
      }
    }
    ++report.participation_sets_checked;
    for (int round = 0; round < rounds; ++round) {
      auto rt = factory(participants);
      for (int pid = 0; pid < num_processes; ++pid) {
        if (!(mask & (1u << pid))) {
          rt->crash(pid);
        }
      }
      RandomDriver driver(seed + static_cast<std::uint64_t>(mask) * 1000003u +
                          static_cast<std::uint64_t>(round));
      Runtime::RunResult result;
      try {
        result = rt->run(driver, max_steps);
      } catch (const std::exception& e) {
        report.violation = "participants " + format_set(participants) +
                           ": run failed: " + e.what();
        return report;
      }
      for (const int pid : participants) {
        if (result.states[static_cast<std::size_t>(pid)] != ProcState::kDone) {
          report.violation =
              "participants " + format_set(participants) + ": process " +
              std::to_string(pid) + " did not finish (state=" +
              to_string(result.states[static_cast<std::size_t>(pid)]) + ")";
          return report;
        }
      }
    }
  }
  return report;
}

}  // namespace subc
