#include "subc/checking/violation_log.hpp"

#include <utility>

namespace subc {

bool ViolationLog::report(std::uint64_t index, std::string message,
                          std::vector<ReplayDriver::Decision> trace) {
  total_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mu_);
  if (index >= entry_.index) {
    return false;
  }
  entry_.index = index;
  entry_.message = std::move(message);
  entry_.trace = std::move(trace);
  best_.store(index, std::memory_order_relaxed);
  return true;
}

std::optional<ViolationLog::Entry> ViolationLog::winner() const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (entry_.index == kNone) {
    return std::nullopt;
  }
  return entry_;
}

}  // namespace subc
