// Umbrella header: the entire subconsensus library.
//
// Prefer the fine-grained headers in production code; this header exists
// for exploratory use (examples, quick experiments, REPL-style hacking).
//
// Layer map (bottom to top):
//   runtime/    — simulation kernel: fibers, scheduling, exploration
//   objects/    — atomic base objects, incl. the papers' WRN_k / 1sWRN_k
//                 and the reconstructed O_{n,k} components
//   algorithms/ — wait-free constructions over the base objects
//   core/       — task validators and the set-consensus calculus
//   checking/   — linearizability and progress checking
#pragma once

#include "subc/runtime/explorer.hpp"
#include "subc/runtime/fiber.hpp"
#include "subc/runtime/history.hpp"
#include "subc/runtime/instance.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/scheduler.hpp"
#include "subc/runtime/service.hpp"
#include "subc/runtime/value.hpp"

#include "subc/objects/compare_and_swap.hpp"
#include "subc/objects/sticky_register.hpp"
#include "subc/objects/consensus_object.hpp"
#include "subc/objects/counter.hpp"
#include "subc/objects/election_object.hpp"
#include "subc/objects/fetch_add.hpp"
#include "subc/objects/onk.hpp"
#include "subc/objects/queue.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/set_consensus_object.hpp"
#include "subc/objects/snapshot.hpp"
#include "subc/objects/swap.hpp"
#include "subc/objects/test_and_set.hpp"
#include "subc/objects/wrn.hpp"

#include "subc/algorithms/adopt_commit.hpp"
#include "subc/algorithms/bg_simulation.hpp"
#include "subc/algorithms/classic_consensus.hpp"
#include "subc/algorithms/immediate_snapshot.hpp"
#include "subc/algorithms/mwmr_register.hpp"
#include "subc/algorithms/onk_algorithms.hpp"
#include "subc/algorithms/partition_set_consensus.hpp"
#include "subc/algorithms/relaxed_wrn.hpp"
#include "subc/algorithms/renaming.hpp"
#include "subc/algorithms/safe_agreement.hpp"
#include "subc/algorithms/set_election.hpp"
#include "subc/algorithms/snapshot_impl.hpp"
#include "subc/algorithms/universal.hpp"
#include "subc/algorithms/wrn_anonymous.hpp"
#include "subc/algorithms/wrn_from_sse.hpp"
#include "subc/algorithms/wrn_set_consensus.hpp"

#include "subc/core/consensus_number.hpp"
#include "subc/core/hierarchy.hpp"
#include "subc/core/tasks.hpp"

#include "subc/checking/linearizability.hpp"
#include "subc/checking/progress.hpp"
