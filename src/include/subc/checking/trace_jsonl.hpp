// JSONL trace export / import.
//
// `JsonlTraceWriter` is a TraceObserver (runtime/observer.hpp) that streams
// every kernel and history event as one JSON object per line — a portable,
// grep-able record of a run that survives the process. `parse_trace_jsonl`
// reads the format back and reconstructs the operation history with its
// original timestamps, so an exported run replays straight into the
// space-time renderer:
//
//   std::ostringstream sink;
//   JsonlTraceWriter writer(sink);
//   run_one(body, policy, &writer);
//   const ParsedTrace t = parse_trace_jsonl(sink.str());
//   std::cout << render_history(t.history);
//
// Event lines (fields in fixed order, one event per line):
//   {"ev":"run_begin","procs":3}
//   {"ev":"step","pid":1,"step":4,"obj":2,"kind":"write"}
//   {"ev":"choose","pid":0,"arity":3,"chosen":1}
//   {"ev":"crash","pid":2,"step":7}
//   {"ev":"recover","pid":2,"step":11}
//   {"ev":"invoke","pid":0,"handle":0,"t":3,"op":[0,100]}
//   {"ev":"respond","pid":0,"handle":0,"t":9,"resp":[102]}
//   {"ev":"violation","msg":"..."}
//   {"ev":"stuck","msg":"..."}
//   {"ev":"run_end","steps":17,"quiescent":true}
// ⊥ values travel as the INT64_MIN integer. The parser is written for this
// writer's output: fields it does not know are ignored, malformed lines
// throw `SimError`.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <ostream>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "subc/runtime/history.hpp"
#include "subc/runtime/observer.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

namespace jsonl_detail {

inline void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

inline void append_values(std::string& out, std::span<const Value> vs) {
  out += '[';
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i) {
      out += ',';
    }
    out += std::to_string(vs[i]);
  }
  out += ']';
}

inline const char* kind_name(AccessKind kind) {
  switch (kind) {
    case AccessKind::kRead:
      return "read";
    case AccessKind::kWrite:
      return "write";
    case AccessKind::kRmw:
      return "rmw";
    case AccessKind::kChoose:
      return "choose";
    case AccessKind::kUnknown:
      break;
  }
  return "unknown";
}

}  // namespace jsonl_detail

/// Streams every observed event to `out` as JSON lines. Thread-safe: lines
/// from concurrent workers interleave whole, never mid-line — which is also
/// why each event is rendered into one string before the single write.
class JsonlTraceWriter final : public TraceObserver {
 public:
  explicit JsonlTraceWriter(std::ostream& out) : out_(&out) {}

  void on_run_begin(int num_processes) override {
    write("{\"ev\":\"run_begin\",\"procs\":" + std::to_string(num_processes) +
          "}");
  }

  void on_step(const StepEvent& event) override {
    std::string line = "{\"ev\":\"step\",\"pid\":" + std::to_string(event.pid) +
                       ",\"step\":" + std::to_string(event.step) +
                       ",\"obj\":" + std::to_string(event.access.object) +
                       ",\"kind\":\"";
    line += jsonl_detail::kind_name(event.access.kind);
    line += "\"}";
    write(line);
  }

  void on_choose(int pid, std::uint32_t arity, std::uint32_t chosen) override {
    write("{\"ev\":\"choose\",\"pid\":" + std::to_string(pid) +
          ",\"arity\":" + std::to_string(arity) +
          ",\"chosen\":" + std::to_string(chosen) + "}");
  }

  void on_crash(int pid, std::int64_t step) override {
    write("{\"ev\":\"crash\",\"pid\":" + std::to_string(pid) +
          ",\"step\":" + std::to_string(step) + "}");
  }

  void on_recover(int pid, std::int64_t step) override {
    write("{\"ev\":\"recover\",\"pid\":" + std::to_string(pid) +
          ",\"step\":" + std::to_string(step) + "}");
  }

  void on_invoke(int pid, std::size_t handle, std::int64_t time,
                 std::span<const Value> op) override {
    std::string line = "{\"ev\":\"invoke\",\"pid\":" + std::to_string(pid) +
                       ",\"handle\":" + std::to_string(handle) +
                       ",\"t\":" + std::to_string(time) + ",\"op\":";
    jsonl_detail::append_values(line, op);
    line += '}';
    write(line);
  }

  void on_respond(int pid, std::size_t handle, std::int64_t time,
                  std::span<const Value> response) override {
    std::string line = "{\"ev\":\"respond\",\"pid\":" + std::to_string(pid) +
                       ",\"handle\":" + std::to_string(handle) +
                       ",\"t\":" + std::to_string(time) + ",\"resp\":";
    jsonl_detail::append_values(line, response);
    line += '}';
    write(line);
  }

  void on_violation(std::string_view message) override {
    std::string line = "{\"ev\":\"violation\",\"msg\":\"";
    jsonl_detail::append_escaped(line, message);
    line += "\"}";
    write(line);
  }

  void on_stuck(std::string_view message) override {
    std::string line = "{\"ev\":\"stuck\",\"msg\":\"";
    jsonl_detail::append_escaped(line, message);
    line += "\"}";
    write(line);
  }

  void on_run_end(std::int64_t total_steps, bool quiescent) override {
    write("{\"ev\":\"run_end\",\"steps\":" + std::to_string(total_steps) +
          ",\"quiescent\":" + (quiescent ? "true" : "false") + "}");
  }

 private:
  void write(const std::string& line) {
    const std::lock_guard<std::mutex> lock(mu_);
    *out_ << line << '\n';
  }

  std::mutex mu_;
  std::ostream* out_;
};

/// One crash event recovered from a trace: process `pid` crashed after
/// `step` scheduler grants had been issued in its run.
struct CrashEvent {
  int pid = -1;
  std::int64_t step = 0;
};

/// One recovery event recovered from a trace: crashed process `pid`
/// restarted after `step` scheduler grants had been issued in its run.
struct RecoverEvent {
  int pid = -1;
  std::int64_t step = 0;
};

/// Everything `parse_trace_jsonl` recovers from an exported trace.
struct ParsedTrace {
  /// The operation history, rebuilt with original pids, arguments,
  /// responses and timestamps — feed it to `render_history` (trace_viz.hpp)
  /// or re-check it for linearizability.
  History history;
  std::vector<std::string> violations;
  /// Crash events in emission order, with pid and step preserved — feed
  /// them to `render_history` via `TraceVizOptions::crashes` so crashed
  /// processes render instead of silently dropping out.
  std::vector<CrashEvent> crash_events;
  /// Recovery events in emission order, with pid and step preserved.
  std::vector<RecoverEvent> recover_events;
  /// Stuck-execution diagnostics (step-quota watchdog) in emission order.
  std::vector<std::string> stuck;
  std::int64_t runs = 0;         ///< run_begin events
  std::int64_t steps = 0;        ///< step events
  std::int64_t chooses = 0;      ///< choose events
  std::int64_t crashes = 0;      ///< crash events
  std::int64_t recoveries = 0;   ///< recover events
  std::int64_t total_steps = 0;  ///< from the last run_end
  bool quiescent = false;        ///< from the last run_end
};

namespace jsonl_detail {

/// Extracts the number following `"key":` in `line`; `found=false` (and 0)
/// when the key is absent.
inline std::int64_t int_field(std::string_view line, std::string_view key,
                              bool& found) {
  const std::string pat = "\"" + std::string(key) + "\":";
  const std::size_t at = line.find(pat);
  if (at == std::string_view::npos) {
    found = false;
    return 0;
  }
  found = true;
  return std::strtoll(line.data() + at + pat.size(), nullptr, 10);
}

inline std::int64_t int_field_or_throw(std::string_view line,
                                       std::string_view key) {
  bool found = false;
  const std::int64_t v = int_field(line, key, found);
  if (!found) {
    throw SimError("parse_trace_jsonl: missing field \"" + std::string(key) +
                   "\" in: " + std::string(line));
  }
  return v;
}

/// Extracts the string following `"key":"` up to the closing quote,
/// unescaping the writer's escapes.
inline std::string string_field(std::string_view line, std::string_view key) {
  const std::string pat = "\"" + std::string(key) + "\":\"";
  const std::size_t at = line.find(pat);
  if (at == std::string_view::npos) {
    throw SimError("parse_trace_jsonl: missing field \"" + std::string(key) +
                   "\" in: " + std::string(line));
  }
  std::string out;
  for (std::size_t i = at + pat.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') {
      return out;
    }
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= line.size()) {
      break;
    }
    switch (line[i]) {
      case 'n':
        out += '\n';
        break;
      case 't':
        out += '\t';
        break;
      case 'r':
        out += '\r';
        break;
      case 'u':
        if (i + 4 < line.size()) {
          out += static_cast<char>(
              std::strtol(std::string(line.substr(i + 1, 4)).c_str(), nullptr,
                          16));
          i += 4;
        }
        break;
      default:
        out += line[i];  // \" and \\ (and anything else, verbatim)
    }
  }
  throw SimError("parse_trace_jsonl: unterminated string in: " +
                 std::string(line));
}

/// Extracts the `[v1,v2,...]` array following `"key":`.
inline std::vector<Value> values_field(std::string_view line,
                                       std::string_view key) {
  const std::string pat = "\"" + std::string(key) + "\":[";
  const std::size_t at = line.find(pat);
  if (at == std::string_view::npos) {
    throw SimError("parse_trace_jsonl: missing field \"" + std::string(key) +
                   "\" in: " + std::string(line));
  }
  std::vector<Value> out;
  const char* p = line.data() + at + pat.size();
  const char* end = line.data() + line.size();
  while (p < end && *p != ']') {
    char* after = nullptr;
    out.push_back(std::strtoll(p, &after, 10));
    if (after == p) {
      throw SimError("parse_trace_jsonl: bad value array in: " +
                     std::string(line));
    }
    p = after;
    if (p < end && *p == ',') {
      ++p;
    }
  }
  return out;
}

}  // namespace jsonl_detail

/// Parses a JSONL trace produced by `JsonlTraceWriter`. History entries are
/// rebuilt by matching respond events to invoke events via their handles
/// (handles are per-source-History; traces interleaving several histories
/// merge into one, which is what the renderer wants anyway).
inline ParsedTrace parse_trace_jsonl(const std::string& text) {
  namespace jd = jsonl_detail;
  ParsedTrace out;
  // source handle -> index in out.history (parallel to HistoryRecorder).
  std::vector<std::size_t> handle_map;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const std::string ev = jd::string_field(line, "ev");
    if (ev == "run_begin") {
      ++out.runs;
    } else if (ev == "step") {
      ++out.steps;
    } else if (ev == "choose") {
      ++out.chooses;
    } else if (ev == "crash") {
      ++out.crashes;
      out.crash_events.push_back(
          CrashEvent{static_cast<int>(jd::int_field_or_throw(line, "pid")),
                     jd::int_field_or_throw(line, "step")});
    } else if (ev == "recover") {
      ++out.recoveries;
      out.recover_events.push_back(
          RecoverEvent{static_cast<int>(jd::int_field_or_throw(line, "pid")),
                       jd::int_field_or_throw(line, "step")});
    } else if (ev == "invoke") {
      HistoryEntry e;
      e.pid = static_cast<int>(jd::int_field_or_throw(line, "pid"));
      e.invoked_at = jd::int_field_or_throw(line, "t");
      e.op = jd::values_field(line, "op");
      const auto handle =
          static_cast<std::size_t>(jd::int_field_or_throw(line, "handle"));
      if (handle_map.size() <= handle) {
        handle_map.resize(handle + 1, static_cast<std::size_t>(-1));
      }
      handle_map[handle] = out.history.restore(std::move(e));
    } else if (ev == "respond") {
      const auto handle =
          static_cast<std::size_t>(jd::int_field_or_throw(line, "handle"));
      if (handle >= handle_map.size() ||
          handle_map[handle] == static_cast<std::size_t>(-1)) {
        throw SimError("parse_trace_jsonl: respond without invoke: " + line);
      }
      // Completing a restored entry: rebuild it in place with the recorded
      // response and timestamp.
      HistoryEntry e = out.history.entries()[handle_map[handle]];
      e.response = jd::values_field(line, "resp");
      e.responded_at = jd::int_field_or_throw(line, "t");
      out.history.amend(handle_map[handle], std::move(e));
    } else if (ev == "violation") {
      out.violations.push_back(jd::string_field(line, "msg"));
    } else if (ev == "stuck") {
      out.stuck.push_back(jd::string_field(line, "msg"));
    } else if (ev == "run_end") {
      out.total_steps = jd::int_field_or_throw(line, "steps");
      out.quiescent = line.find("\"quiescent\":true") != std::string::npos;
    } else {
      throw SimError("parse_trace_jsonl: unknown event \"" + ev +
                     "\" in: " + line);
    }
  }
  return out;
}

}  // namespace subc
