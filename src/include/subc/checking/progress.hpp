// Progress-property validators: wait-freedom and non-blocking behaviour.
//
// A task is solvable wait-free iff it is solvable non-blocking (§2 of the
// paper), so for task solutions we check wait-freedom directly: under every
// participation pattern, every scheduled process finishes. Starvation is
// modelled by crashing the complement of a participation set before the run.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "subc/runtime/runtime.hpp"

namespace subc {

/// Builds a fresh world for a progress check. Receives the participation
/// set (pids that will be scheduled); returns a configured runtime. The
/// callee must NOT crash anybody itself — the harness does.
using WorldFactory =
    std::function<std::unique_ptr<Runtime>(const std::vector<int>&)>;

struct WaitFreedomReport {
  std::int64_t participation_sets_checked = 0;
  std::optional<std::string> violation;

  [[nodiscard]] bool ok() const noexcept { return !violation.has_value(); }
};

/// Sweeps every non-empty participation subset of {0..num_processes-1}
/// (capped; use for small process counts). For each subset S: builds a
/// world, crashes the complement, runs `rounds` random schedules over S, and
/// requires that every process in S terminates (`done`, not hung/blocked).
WaitFreedomReport check_wait_freedom(const WorldFactory& factory,
                                     int num_processes, int rounds = 20,
                                     std::uint64_t seed = 1,
                                     std::int64_t max_steps = 1'000'000);

/// Formats a participation set for diagnostics, e.g. "{0,2,3}".
std::string format_set(const std::vector<int>& pids);

}  // namespace subc
