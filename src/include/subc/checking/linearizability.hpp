// Wing–Gong linearizability checking with memoization.
//
// Base objects in the simulator are atomic by construction; this checker
// validates *implemented* objects (notably the 1sWRN_k built by Algorithm 5)
// against a sequential specification. The history comes from
// subc/runtime/history.hpp; timestamps reflect real-time order.
//
// Spec concept (see OneShotWrnSpec for a model):
//   struct Spec {
//     struct State;                       // copyable
//     State initial() const;
//     bool apply(State&, const std::vector<Value>& op,
//                std::vector<Value>& response) const;  // false = illegal
//     std::string key(const State&) const;            // memoization key
//   };
//
// Semantics follow the papers' §2 definition of linearizability: a legal
// sequential ordering of all *completed* operations plus a (possibly empty)
// subset of the uncompleted ones, respecting real-time order, with every
// response consistent with the spec. Pending operations may be linearized
// (their effect visible, any legal response) or dropped.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "subc/runtime/history.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

struct LinearizationResult {
  bool linearizable = false;
  /// Indices into the history, in linearization order (completed ops plus
  /// any linearized pending ops). Valid when `linearizable`.
  std::vector<std::size_t> order;
  /// Diagnostic on failure.
  std::string message;
};

namespace detail {

/// Real-time precedence: a must linearize before b.
inline bool precedes(const HistoryEntry& a, const HistoryEntry& b) {
  return !a.pending() && a.responded_at < b.invoked_at;
}

}  // namespace detail

/// Checks `history` against `spec`. Exponential in the number of overlapping
/// operations; intended for the short histories the simulator produces
/// (tens of operations). The bitmask representation caps histories at 64
/// operations — longer ones throw `SimError` (a checker limitation, never a
/// verdict: silently misreporting "not linearizable" would corrupt ∀-run
/// claims built on top).
template <class Spec>
LinearizationResult check_linearizable(const Spec& spec,
                                       const std::vector<HistoryEntry>& h) {
  LinearizationResult result;
  const std::size_t n = h.size();
  if (n > 64) {
    throw SimError("check_linearizable: history has " + std::to_string(n) +
                   " operations; the bitmask checker supports at most 64");
  }
  const std::uint64_t all = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
  std::uint64_t completed_mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!h[i].pending()) {
      completed_mask |= (1ULL << i);
    }
  }
  // Real-time predecessor masks, computed once: bit j of pred[i] says h[j]
  // must linearize before h[i]. The DFS minimality test then collapses to a
  // single mask check instead of an O(n) scan per candidate.
  std::vector<std::uint64_t> pred(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && detail::precedes(h[j], h[i])) {
        pred[i] |= (1ULL << j);
      }
    }
  }

  // DFS over (linearized-set, spec state); memoize failed states.
  std::unordered_set<std::string> failed;
  std::vector<std::size_t> order;

  // Recursive lambda via explicit stack-free recursion.
  struct Frame {
    const Spec& spec;
    const std::vector<HistoryEntry>& h;
    std::uint64_t all;
    std::uint64_t completed_mask;
    const std::vector<std::uint64_t>& pred;
    std::unordered_set<std::string>& failed;
    std::vector<std::size_t>& order;

    bool dfs(std::uint64_t done, const typename Spec::State& state) {
      if ((done & completed_mask) == completed_mask) {
        return true;  // all completed ops linearized; rest may be dropped
      }
      const std::string memo_key =
          std::to_string(done) + "#" + spec.key(state);
      if (failed.contains(memo_key)) {
        return false;
      }
      for (std::size_t i = 0; i < h.size(); ++i) {
        const std::uint64_t bit = 1ULL << i;
        if (done & bit) {
          continue;
        }
        // i must not be preceded (in real time) by any not-yet-linearized
        // op: every real-time predecessor must already be in `done`.
        if ((pred[i] & ~done) != 0) {
          continue;
        }
        typename Spec::State next = state;
        std::vector<Value> response;
        if (!spec.apply(next, h[i].op, response)) {
          continue;  // op illegal here; try other linearization points
        }
        if (!h[i].pending() && response != h[i].response) {
          continue;  // completed op must return exactly what it returned
        }
        order.push_back(i);
        if (dfs(done | bit, next)) {
          return true;
        }
        order.pop_back();
      }
      failed.insert(memo_key);
      return false;
    }
  };

  Frame frame{spec, h, all, completed_mask, pred, failed, order};
  if (frame.dfs(0, spec.initial())) {
    result.linearizable = true;
    result.order = order;
  } else {
    result.message = "no legal linearization exists";
  }
  return result;
}

/// Convenience: checks and throws `SpecViolation` (with the history dump)
/// when not linearizable.
template <class Spec>
void require_linearizable(const Spec& spec, const History& history) {
  const LinearizationResult r = check_linearizable(spec, history.entries());
  if (!r.linearizable) {
    throw SpecViolation("history not linearizable: " + r.message + "\n" +
                        history.dump());
  }
}

}  // namespace subc
