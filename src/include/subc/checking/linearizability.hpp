// Wing–Gong linearizability checking with memoization.
//
// Base objects in the simulator are atomic by construction; this checker
// validates *implemented* objects (notably the 1sWRN_k built by Algorithm 5)
// against a sequential specification. The history comes from
// subc/runtime/history.hpp; timestamps reflect real-time order.
//
// Spec concept (see OneShotWrnSpec for a model):
//   struct Spec {
//     struct State;                       // copyable
//     State initial() const;
//     bool apply(State&, const std::vector<Value>& op,
//                std::vector<Value>& response) const;  // false = illegal
//     std::string key(const State&) const;            // memoization key
//     std::uint64_t hash(const State&) const;         // OPTIONAL (see below)
//   };
//
// Memoization: the DFS memoizes failed (linearized-set, spec-state) pairs.
// The default memo is an open-addressing set of 64-bit fingerprints
// (`MemoKind::kHashed`): the state is hashed via the spec's `hash(State)`
// hook when it has one, falling back to hashing the `key()` string, and
// mixed with the linearized-set bitmask. This avoids materializing a
// `std::string` per DFS node and the per-node unordered_set overhead that
// dominated checker time. Fingerprints are lossy in principle (a 64-bit
// collision could suppress exploration of a state that would have
// succeeded); at the checker's ≤64-op scale the collision probability is
// ~N²/2⁶⁵ and the string-keyed reference memo (`MemoKind::kStringReference`)
// is kept behind a flag purely so tests can differentially validate the
// hashed path (tests/linearizability_memo_test.cpp).
//
// Semantics follow the papers' §2 definition of linearizability: a legal
// sequential ordering of all *completed* operations plus a (possibly empty)
// subset of the uncompleted ones, respecting real-time order, with every
// response consistent with the spec. Pending operations may be linearized
// (their effect visible, any legal response) or dropped.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "subc/runtime/hashing.hpp"
#include "subc/runtime/history.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

struct LinearizationResult {
  bool linearizable = false;
  /// Indices into the history, in linearization order (completed ops plus
  /// any linearized pending ops). Valid when `linearizable`.
  std::vector<std::size_t> order;
  /// Diagnostic on failure.
  std::string message;
};

/// Which memo the checker's DFS uses for failed (done-set, state) pairs.
enum class MemoKind {
  /// Open-addressing uint64 fingerprint set (the default, and the fast
  /// path): hash(done, state) probed linearly in a power-of-two table.
  kHashed,
  /// Exact string-keyed memo (`to_string(done) + "#" + key(state)`); the
  /// pre-fingerprint implementation, kept only as a differential-testing
  /// reference. Test-only — not intended for production checking.
  kStringReference,
};

namespace detail {

/// Real-time precedence: a must linearize before b.
inline bool precedes(const HistoryEntry& a, const HistoryEntry& b) {
  return !a.pending() && a.responded_at < b.invoked_at;
}

/// State fingerprint: the spec's own `hash(State)` when it provides one,
/// otherwise FNV-1a of its `key()` string (correct for any spec, but pays
/// for the string materialization the hook exists to avoid).
template <class Spec>
std::uint64_t state_fingerprint(const Spec& spec,
                                const typename Spec::State& state) {
  if constexpr (requires {
                  {
                    spec.hash(state)
                  } -> std::convertible_to<std::uint64_t>;
                }) {
    return static_cast<std::uint64_t>(spec.hash(state));
  } else {
    return fnv1a64(spec.key(state));
  }
}

/// Open-addressing set of 64-bit fingerprints. Linear probing over a
/// power-of-two table; 0 is the empty-slot sentinel (fingerprint 0 is
/// remapped to 1 — the mixer makes that indistinguishable from any other
/// collision). Grows at ~70% load. Insert-only, which is all the memo needs.
class FingerprintSet {
 public:
  FingerprintSet() : slots_(kInitialSlots, 0) {}

  [[nodiscard]] bool contains(std::uint64_t fp) const noexcept {
    fp += (fp == 0);
    const std::uint64_t mask = slots_.size() - 1;
    for (std::uint64_t i = fp & mask;; i = (i + 1) & mask) {
      if (slots_[i] == fp) {
        return true;
      }
      if (slots_[i] == 0) {
        return false;
      }
    }
  }

  void insert(std::uint64_t fp) {
    fp += (fp == 0);
    if ((size_ + 1) * 10 >= slots_.size() * 7) {
      grow();
    }
    insert_raw(fp);
  }

 private:
  static constexpr std::size_t kInitialSlots = 1024;

  void insert_raw(std::uint64_t fp) {
    const std::uint64_t mask = slots_.size() - 1;
    for (std::uint64_t i = fp & mask;; i = (i + 1) & mask) {
      if (slots_[i] == fp) {
        return;
      }
      if (slots_[i] == 0) {
        slots_[i] = fp;
        ++size_;
        return;
      }
    }
  }

  void grow() {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, 0);
    size_ = 0;
    for (const std::uint64_t fp : old) {
      if (fp != 0) {
        insert_raw(fp);
      }
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
};

/// The DFS, templated on the memo so the hashed hot path compiles with no
/// string machinery in it. Both variants explore nodes in identical order —
/// the memo only ever suppresses *failed* subtrees — so verdict and
/// linearization order match between them (up to fingerprint collisions,
/// which the differential test hunts for).
template <class Spec, bool kHashedMemo>
struct LinearizeFrame {
  const Spec& spec;
  const std::vector<HistoryEntry>& h;
  std::uint64_t completed_mask;
  const std::vector<std::uint64_t>& pred;
  FingerprintSet& fp_failed;
  std::unordered_set<std::string>& str_failed;
  std::vector<std::size_t>& order;

  bool dfs(std::uint64_t done, const typename Spec::State& state) {
    if ((done & completed_mask) == completed_mask) {
      return true;  // all completed ops linearized; rest may be dropped
    }
    std::uint64_t fp = 0;
    std::string memo_key;
    if constexpr (kHashedMemo) {
      fp = mix64(state_fingerprint(spec, state) ^ mix64(done));
      if (fp_failed.contains(fp)) {
        return false;
      }
    } else {
      memo_key = std::to_string(done) + "#" + spec.key(state);
      if (str_failed.contains(memo_key)) {
        return false;
      }
    }
    for (std::size_t i = 0; i < h.size(); ++i) {
      const std::uint64_t bit = 1ULL << i;
      if (done & bit) {
        continue;
      }
      // i must not be preceded (in real time) by any not-yet-linearized
      // op: every real-time predecessor must already be in `done`.
      if ((pred[i] & ~done) != 0) {
        continue;
      }
      typename Spec::State next = state;
      std::vector<Value> response;
      if (!spec.apply(next, h[i].op, response)) {
        continue;  // op illegal here; try other linearization points
      }
      if (!h[i].pending() && response != h[i].response) {
        continue;  // completed op must return exactly what it returned
      }
      order.push_back(i);
      if (dfs(done | bit, next)) {
        return true;
      }
      order.pop_back();
    }
    if constexpr (kHashedMemo) {
      fp_failed.insert(fp);
    } else {
      str_failed.insert(memo_key);
    }
    return false;
  }
};

}  // namespace detail

/// Checks `history` against `spec`. Exponential in the number of overlapping
/// operations; intended for the short histories the simulator produces
/// (tens of operations). The bitmask representation caps histories at 64
/// operations — longer ones throw `SimError` (a checker limitation, never a
/// verdict: silently misreporting "not linearizable" would corrupt ∀-run
/// claims built on top).
template <class Spec>
LinearizationResult check_linearizable(const Spec& spec,
                                       const std::vector<HistoryEntry>& h,
                                       MemoKind memo = MemoKind::kHashed) {
  LinearizationResult result;
  const std::size_t n = h.size();
  if (n > 64) {
    throw SimError("check_linearizable: history has " + std::to_string(n) +
                   " operations; the bitmask checker supports at most 64");
  }
  std::uint64_t completed_mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!h[i].pending()) {
      completed_mask |= (1ULL << i);
    }
  }
  // Real-time predecessor masks, computed once: bit j of pred[i] says h[j]
  // must linearize before h[i]. The DFS minimality test then collapses to a
  // single mask check instead of an O(n) scan per candidate.
  std::vector<std::uint64_t> pred(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && detail::precedes(h[j], h[i])) {
        pred[i] |= (1ULL << j);
      }
    }
  }

  detail::FingerprintSet fp_failed;
  std::unordered_set<std::string> str_failed;
  std::vector<std::size_t> order;

  bool ok = false;
  if (memo == MemoKind::kHashed) {
    detail::LinearizeFrame<Spec, true> frame{
        spec, h, completed_mask, pred, fp_failed, str_failed, order};
    ok = frame.dfs(0, spec.initial());
  } else {
    detail::LinearizeFrame<Spec, false> frame{
        spec, h, completed_mask, pred, fp_failed, str_failed, order};
    ok = frame.dfs(0, spec.initial());
  }
  if (ok) {
    result.linearizable = true;
    result.order = order;
  } else {
    result.message = "no legal linearization exists";
  }
  return result;
}

/// Convenience: checks and throws `SpecViolation` (with the history dump)
/// when not linearizable.
template <class Spec>
void require_linearizable(const Spec& spec, const History& history) {
  const LinearizationResult r = check_linearizable(spec, history.entries());
  if (!r.linearizable) {
    throw SpecViolation("history not linearizable: " + r.message + "\n" +
                        history.dump());
  }
}

}  // namespace subc
