// Thread-safe violation aggregation for parallel checkers.
//
// Parallel exploration (explorer.hpp) partitions the decision tree into work
// units and assigns each unit the index it would occupy in the *serial* DFS
// emission order. Violations reported from concurrently running workers are
// aggregated here; the winner is the candidate with the least canonical
// index, i.e. exactly the violation the serial explorer would have reported
// first. That makes failure reports deterministic across runs, thread
// counts, and scheduling jitter.
//
// `best_index()` is a relaxed atomic read so workers can poll it on their
// hot path as a cooperative-cancellation signal without taking the lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "subc/runtime/scheduler.hpp"

namespace subc {

class ViolationLog {
 public:
  /// Sentinel: no violation reported yet.
  static constexpr std::uint64_t kNone = ~std::uint64_t{0};

  struct Entry {
    /// Canonical (serial DFS emission) index of the reporting work unit.
    std::uint64_t index = kNone;
    std::string message;
    std::vector<ReplayDriver::Decision> trace;
  };

  /// Records a candidate violation. Returns true iff it became the current
  /// best (least canonical index). Safe to call from any thread.
  bool report(std::uint64_t index, std::string message,
              std::vector<ReplayDriver::Decision> trace);

  /// Least canonical index reported so far (`kNone` when empty). Workers use
  /// this to cancel work units that can no longer win.
  [[nodiscard]] std::uint64_t best_index() const noexcept {
    return best_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool empty() const noexcept { return best_index() == kNone; }

  /// Total candidates reported (including losers).
  [[nodiscard]] std::int64_t total_reported() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  /// The winning (least-index) entry, or nullopt when nothing was reported.
  [[nodiscard]] std::optional<Entry> winner() const;

 private:
  mutable std::mutex mu_;
  std::atomic<std::uint64_t> best_{kNone};
  std::atomic<std::int64_t> total_{0};
  Entry entry_;
};

}  // namespace subc
