// ASCII space-time diagrams of operation histories.
//
// Renders a History as one lane per process on a logical-time axis
// (invocation/response timestamps), the standard picture used in the papers'
// linearizability discussions:
//
//   p0 |--1sWRN(0,100)->⊥--------|
//   p1      |--1sWRN(1,101)->102------------|
//   p2                   |--1sWRN(2,102)->100--|
//
// Used by examples/adversary_lab and handy when a linearizability test
// fails (pair with History::dump()).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "subc/runtime/history.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

struct TraceVizOptions {
  /// Label printed inside each operation box; defaults to "op(args)->resp".
  int columns_per_tick = 3;
  /// Operation name used in labels (e.g. "1sWRN").
  std::string op_name = "op";
  /// Crash marks as (pid, step) pairs — e.g. `ParsedTrace::crash_events`
  /// from trace_jsonl.hpp. Each crashed pid's lane is annotated with
  /// "X crashed@step", and a crashed process gets a lane even when it
  /// completed no operation, so crashes render instead of disappearing.
  std::vector<std::pair<int, std::int64_t>> crashes;
};

/// Renders `history` as an ASCII space-time diagram. The horizontal scale
/// adapts so every operation box fits its label (boxes stay proportional to
/// logical duration beyond that minimum).
inline std::string render_history(const History& history,
                                  TraceVizOptions options = {}) {
  const auto& entries = history.entries();
  if (entries.empty() && options.crashes.empty()) {
    return "(empty history)\n";
  }

  const auto label_of = [&options](const HistoryEntry& e) {
    std::string label = options.op_name + "(";
    for (std::size_t a = 0; a < e.op.size(); ++a) {
      label += (a ? "," : "") + to_string(e.op[a]);
    }
    label += ")->";
    if (e.pending()) {
      label += "?";
    } else if (e.response.empty()) {
      label += "()";
    } else {
      for (std::size_t a = 0; a < e.response.size(); ++a) {
        label += (a ? "," : "") + to_string(e.response[a]);
      }
    }
    return label;
  };

  std::int64_t horizon = 0;
  std::map<int, std::vector<std::size_t>> lanes;  // pid -> entry indices
  int cpt = options.columns_per_tick;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const HistoryEntry& e = entries[i];
    lanes[e.pid].push_back(i);
    const std::int64_t stop_tick =
        e.pending() ? e.invoked_at + 2 : e.responded_at;
    horizon = std::max(horizon, stop_tick);
    // Widen the scale until this op's label fits its box interior.
    const auto duration = std::max<std::int64_t>(1, stop_tick - e.invoked_at);
    const auto needed =
        (static_cast<std::int64_t>(label_of(e).size()) + 2 + duration - 1) /
        duration;
    cpt = std::max<int>(cpt, static_cast<int>(needed));
  }
  const int width = static_cast<int>(horizon + 1) * cpt + 4;

  // Crashed processes render even when they never completed an operation.
  for (const auto& mark : options.crashes) {
    lanes[mark.first];
  }

  std::ostringstream os;
  for (const auto& [pid, indices] : lanes) {
    std::string lane(static_cast<std::size_t>(width), ' ');
    for (const std::size_t i : indices) {
      const HistoryEntry& e = entries[i];
      const int start = static_cast<int>(e.invoked_at) * cpt;
      const int stop = e.pending()
                           ? width - 1
                           : static_cast<int>(e.responded_at) * cpt;
      const std::string label = label_of(e);
      lane[static_cast<std::size_t>(start)] = '|';
      for (int c = start + 1; c < stop; ++c) {
        lane[static_cast<std::size_t>(c)] = '-';
      }
      if (!e.pending()) {
        lane[static_cast<std::size_t>(stop)] = '|';
      }
      // Overlay the label, clipped to the box interior.
      const int room = std::max(0, stop - start - 1);
      const int len = std::min<int>(static_cast<int>(label.size()), room);
      for (int c = 0; c < len; ++c) {
        lane[static_cast<std::size_t>(start + 1 + c)] =
            label[static_cast<std::size_t>(c)];
      }
    }
    // Trim trailing spaces.
    const auto end = lane.find_last_not_of(' ');
    lane.resize(end == std::string::npos ? 0 : end + 1);
    for (const auto& [cpid, cstep] : options.crashes) {
      if (cpid == pid) {
        if (!lane.empty()) {
          lane += ' ';
        }
        lane += "X crashed@" + std::to_string(cstep);
      }
    }
    os << 'p' << pid << ' ' << lane << '\n';
  }
  return os.str();
}

}  // namespace subc
