// Explorer campaign snapshots: durable checkpoint/resume for long searches.
//
// A multi-hour exhaustive campaign that dies at 90% must be resumable. The
// explorer (runtime/explorer.hpp) periodically serializes its progress — the
// canonical-prefix watermark (tallies over every canonical event completed so
// far), the decision prefix the search continues from, and the first stuck
// diagnostic — into a two-line JSONL snapshot:
//
//   {"kind":"header","version":1,"max_executions":N,"max_crashes":F,
//    "step_quota":Q,"reduction":"sleep","stateful":false}
//   {"kind":"state","executions":N,"pruned":N,"reduced":N,"crashed":N,
//    "stuck":N,"stateful_cuts":N,"done":false,"complete":false,
//    "prefix":"0/3/7/0/0 x1/4/0/0/1"}
//
// `Explorer::resume(body, path, opts)` reloads a snapshot and continues the
// search from the watermark, producing the bit-identical final `Result` an
// uninterrupted run reports (see docs/explorer.md). Snapshots are written
// atomically (temp file + rename, with a bounded retry on transient
// filesystem failure), so a crash mid-write leaves the previous snapshot
// intact. Decision strings are encoded one token per decision,
// "chosen/arity/enabled/sleep/crashflag/recoverflag", preserving the
// reduction metadata and crash/recovery flags replay depends on — this is
// also the wire format the distributed-sharding roadmap item will ship work
// units in. Five-field tokens from pre-recovery snapshots read back with
// recoverflag = 0.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "subc/checking/trace_jsonl.hpp"
#include "subc/runtime/scheduler.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// A serializable picture of an exploration in flight (or finished). The
/// option echo pins the search parameters: resuming under different options
/// would silently change what "the rest of the tree" means, so
/// `Explorer::resume` rejects mismatches.
struct ExplorerSnapshot {
  // --- option echo ---
  std::int64_t max_executions = 0;
  int max_crashes = 0;
  /// Recovery branching bound (Explorer::Options::max_recoveries). Absent
  /// in pre-recovery snapshots, which read back as 0.
  int max_recoveries = 0;
  std::int64_t step_quota = 0;
  bool reduction = false;  ///< sleep-set reduction on?
  /// Stateful exploration on? Echoed (and matched on resume) because the
  /// visited set itself is *not* serialized: a resumed stateful search
  /// restarts with a cold set (the documented cold-restart rule, see
  /// docs/explorer.md) — still sound and verdict-identical, but its
  /// execution tallies may exceed the uninterrupted run's. Snapshots from
  /// before this field read back as false.
  bool stateful = false;

  // --- tallies over the completed canonical prefix of the search ---
  std::int64_t executions = 0;
  std::int64_t pruned = 0;
  std::int64_t reduced = 0;
  std::int64_t crashed = 0;
  /// Executions with >= 1 recovery over the completed prefix (0 for
  /// pre-recovery snapshots, which omit the field).
  std::int64_t recovered = 0;
  std::int64_t stuck = 0;
  /// Stateful cuts over the completed prefix (0 for pre-stateful
  /// snapshots, which omit the field).
  std::int64_t stateful_cuts = 0;

  /// True when the search finished (tree exhausted, budget spent, or a
  /// violation found); `prefix` is empty and meaningless then.
  bool done = false;
  bool complete = false;
  std::optional<std::string> violation;
  std::vector<ReplayDriver::Decision> violating_trace;
  std::optional<std::string> stuck_message;
  std::vector<ReplayDriver::Decision> stuck_trace;
  /// The decision prefix the search continues from (the next prefix the
  /// serial restart-DFS would run). Empty when `done`.
  std::vector<ReplayDriver::Decision> prefix;
};

/// Renders a decision string as snapshot tokens
/// ("chosen/arity/enabled/sleep/crashflag/recoverflag", space-separated).
inline std::string encode_decisions(
    std::span<const ReplayDriver::Decision> trace) {
  std::string out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) {
      out += ' ';
    }
    out += std::to_string(trace[i].chosen);
    out += '/';
    out += std::to_string(trace[i].arity);
    out += '/';
    out += std::to_string(trace[i].enabled);
    out += '/';
    out += std::to_string(trace[i].sleep);
    out += '/';
    out += trace[i].crash ? '1' : '0';
    out += '/';
    out += trace[i].recover ? '1' : '0';
  }
  return out;
}

/// Parses `encode_decisions` output. Throws `SimError` on malformed tokens.
inline std::vector<ReplayDriver::Decision> decode_decisions(
    const std::string& text) {
  std::vector<ReplayDriver::Decision> out;
  const char* p = text.c_str();
  const auto expect_slash = [&text](const char* at) {
    if (*at != '/') {
      throw SimError("decode_decisions: malformed decision token in: " + text);
    }
  };
  while (*p != '\0') {
    while (*p == ' ') {
      ++p;
    }
    if (*p == '\0') {
      break;
    }
    ReplayDriver::Decision d;
    char* after = nullptr;
    d.chosen = static_cast<std::uint32_t>(std::strtoul(p, &after, 10));
    expect_slash(after);
    p = after + 1;
    d.arity = static_cast<std::uint32_t>(std::strtoul(p, &after, 10));
    expect_slash(after);
    p = after + 1;
    d.enabled = std::strtoull(p, &after, 10);
    expect_slash(after);
    p = after + 1;
    d.sleep = std::strtoull(p, &after, 10);
    expect_slash(after);
    p = after + 1;
    if (*p != '0' && *p != '1') {
      throw SimError("decode_decisions: bad crash flag in: " + text);
    }
    d.crash = *p == '1';
    ++p;
    // Recovery flag: optional sixth field, absent in five-field tokens
    // from pre-recovery snapshots (which read back as recover = false).
    if (*p == '/') {
      ++p;
      if (*p != '0' && *p != '1') {
        throw SimError("decode_decisions: bad recover flag in: " + text);
      }
      d.recover = *p == '1';
      ++p;
    }
    if (d.arity < 1 || d.chosen >= d.arity) {
      throw SimError("decode_decisions: inconsistent decision in: " + text);
    }
    out.push_back(d);
  }
  return out;
}

namespace checkpoint_detail {

inline bool bool_field(std::string_view line, std::string_view key) {
  const std::string pat = "\"" + std::string(key) + "\":true";
  return line.find(pat) != std::string_view::npos;
}

inline bool has_field(std::string_view line, std::string_view key) {
  const std::string pat = "\"" + std::string(key) + "\":";
  return line.find(pat) != std::string_view::npos;
}

}  // namespace checkpoint_detail

/// Serializes `snap` to `path` atomically: the snapshot is staged as
/// `<path>.tmp` and renamed over `path`, so readers (and a resume after a
/// crash mid-write) always see a complete snapshot. Transient filesystem
/// failures (open, write, or rename) are retried with bounded backoff —
/// three attempts, sleeping 1/4/16 ms between them — before a `SimError`
/// carrying a structured diagnostic (attempts made, failing stage, errno)
/// is thrown. The explorer catches failures of *periodic* snapshots so an
/// exploration campaign survives a briefly unwritable checkpoint directory;
/// the final snapshot's failure still propagates.
inline void save_snapshot(const std::string& path,
                          const ExplorerSnapshot& snap) {
  namespace jd = jsonl_detail;
  std::string text = "{\"kind\":\"header\",\"version\":1,\"max_executions\":" +
                     std::to_string(snap.max_executions) +
                     ",\"max_crashes\":" + std::to_string(snap.max_crashes) +
                     ",\"max_recoveries\":" +
                     std::to_string(snap.max_recoveries) +
                     ",\"step_quota\":" + std::to_string(snap.step_quota) +
                     ",\"reduction\":\"";
  text += snap.reduction ? "sleep" : "none";
  text += "\",\"stateful\":";
  text += snap.stateful ? "true" : "false";
  text += "}\n";
  text += "{\"kind\":\"state\",\"executions\":" +
          std::to_string(snap.executions) +
          ",\"pruned\":" + std::to_string(snap.pruned) +
          ",\"reduced\":" + std::to_string(snap.reduced) +
          ",\"crashed\":" + std::to_string(snap.crashed) +
          ",\"recovered\":" + std::to_string(snap.recovered) +
          ",\"stuck\":" + std::to_string(snap.stuck) +
          ",\"stateful_cuts\":" + std::to_string(snap.stateful_cuts) +
          ",\"done\":";
  text += snap.done ? "true" : "false";
  text += ",\"complete\":";
  text += snap.complete ? "true" : "false";
  if (snap.violation) {
    text += ",\"violation\":\"";
    jd::append_escaped(text, *snap.violation);
    text += "\",\"violating_trace\":\"";
    text += encode_decisions(snap.violating_trace);
    text += '"';
  }
  if (snap.stuck_message) {
    text += ",\"stuck_message\":\"";
    jd::append_escaped(text, *snap.stuck_message);
    text += "\",\"stuck_trace\":\"";
    text += encode_decisions(snap.stuck_trace);
    text += '"';
  }
  text += ",\"prefix\":\"";
  text += encode_decisions(snap.prefix);
  text += "\"}\n";

  const std::string tmp = path + ".tmp";
  constexpr int kAttempts = 3;
  constexpr int kBackoffMs[kAttempts] = {1, 4, 16};
  const char* stage = "open";
  int saved_errno = 0;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    errno = 0;
    stage = "open";
    bool ok = false;
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (out) {
        stage = "write";
        out << text;
        out.flush();
        ok = static_cast<bool>(out);
      }
      saved_errno = errno;
    }
    if (ok) {
      stage = "rename";
      errno = 0;
      if (std::rename(tmp.c_str(), path.c_str()) == 0) {
        return;
      }
      saved_errno = errno;
    }
    if (attempt < kAttempts) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(kBackoffMs[attempt - 1]));
    }
  }
  throw SimError("save_snapshot: " + path + " failed after " +
                 std::to_string(kAttempts) + " attempts (stage: " + stage +
                 ", errno: " + std::to_string(saved_errno) + " — " +
                 std::strerror(saved_errno) + ")");
}

/// Loads a snapshot written by `save_snapshot`. Throws `SimError` when the
/// file is missing or malformed.
inline ExplorerSnapshot load_snapshot(const std::string& path) {
  namespace jd = jsonl_detail;
  namespace cd = checkpoint_detail;
  std::ifstream in(path);
  if (!in) {
    throw SimError("load_snapshot: cannot open " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  ExplorerSnapshot snap;
  bool saw_header = false;
  bool saw_state = false;
  std::string line;
  while (std::getline(buffer, line)) {
    if (line.empty()) {
      continue;
    }
    const std::string kind = jd::string_field(line, "kind");
    if (kind == "header") {
      const std::int64_t version = jd::int_field_or_throw(line, "version");
      if (version != 1) {
        throw SimError("load_snapshot: unsupported snapshot version " +
                       std::to_string(version));
      }
      snap.max_executions = jd::int_field_or_throw(line, "max_executions");
      snap.max_crashes =
          static_cast<int>(jd::int_field_or_throw(line, "max_crashes"));
      // Absent in pre-recovery snapshots: reads back as 0.
      if (cd::has_field(line, "max_recoveries")) {
        snap.max_recoveries =
            static_cast<int>(jd::int_field_or_throw(line, "max_recoveries"));
      }
      snap.step_quota = jd::int_field_or_throw(line, "step_quota");
      snap.reduction = jd::string_field(line, "reduction") == "sleep";
      // Absent in pre-stateful snapshots: reads back as false.
      snap.stateful = cd::bool_field(line, "stateful");
      saw_header = true;
    } else if (kind == "state") {
      snap.executions = jd::int_field_or_throw(line, "executions");
      snap.pruned = jd::int_field_or_throw(line, "pruned");
      snap.reduced = jd::int_field_or_throw(line, "reduced");
      snap.crashed = jd::int_field_or_throw(line, "crashed");
      if (cd::has_field(line, "recovered")) {
        snap.recovered = jd::int_field_or_throw(line, "recovered");
      }
      snap.stuck = jd::int_field_or_throw(line, "stuck");
      if (cd::has_field(line, "stateful_cuts")) {
        snap.stateful_cuts = jd::int_field_or_throw(line, "stateful_cuts");
      }
      snap.done = cd::bool_field(line, "done");
      snap.complete = cd::bool_field(line, "complete");
      if (cd::has_field(line, "violation")) {
        snap.violation = jd::string_field(line, "violation");
        snap.violating_trace =
            decode_decisions(jd::string_field(line, "violating_trace"));
      }
      if (cd::has_field(line, "stuck_message")) {
        snap.stuck_message = jd::string_field(line, "stuck_message");
        snap.stuck_trace =
            decode_decisions(jd::string_field(line, "stuck_trace"));
      }
      snap.prefix = decode_decisions(jd::string_field(line, "prefix"));
      saw_state = true;
    } else {
      throw SimError("load_snapshot: unknown line kind \"" + kind +
                     "\" in " + path);
    }
  }
  if (!saw_header || !saw_state) {
    throw SimError("load_snapshot: truncated snapshot in " + path);
  }
  return snap;
}

}  // namespace subc
