// Task specifications and output validators (§2 of the paper).
//
// A task constrains the combinations of outputs processes may produce given
// their inputs and the participating set. After a simulated run, validators
// check the recorded decisions and throw `SpecViolation` (carrying enough
// context to replay) on any breach. They are the assertion vocabulary used
// by tests, the exhaustive explorer and the benches.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Number of distinct non-⊥ decisions.
int distinct_decisions(std::span<const Value> decisions);

/// Validity: every non-⊥ decision equals some process's input.
void check_validity(std::span<const Value> inputs,
                    std::span<const Value> decisions);

/// k-agreement: at most k distinct non-⊥ decisions.
void check_k_agreement(std::span<const Value> decisions, int k);

/// Agreement: all non-⊥ decisions equal (1-agreement).
void check_agreement(std::span<const Value> decisions);

/// Every process that finished (`done`) must have decided.
void check_decided_if_done(const Runtime::RunResult& result);

/// Every process is done and decided — the wait-free happy path where all
/// participate.
void check_all_done_and_decided(const Runtime::RunResult& result);

/// Election validity: every decision is the id (pid) of a process that
/// participated, i.e. appears among `participants`.
void check_election_validity(std::span<const Value> decisions,
                             std::span<const int> participants);

/// Self-election (strong set election): if any process decides id j, then
/// process j decided j. Decisions are ids == pids.
void check_self_election(std::span<const Value> decisions);

/// Renaming: names are pairwise distinct and lie in [0, limit).
void check_renaming(std::span<const Value> names, int limit);

/// Full (n,k)-set-consensus post-run check: done⇒decided, validity and
/// k-agreement in one call.
void check_set_consensus(const Runtime::RunResult& result,
                         std::span<const Value> inputs, int k);

/// Renders the decision vector for diagnostics.
std::string format_decisions(std::span<const Value> decisions);

}  // namespace subc
