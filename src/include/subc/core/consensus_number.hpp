// Machine-checked critical-state (valence) analysis and consensus harnesses.
//
// Negative side (Lemma 38 and the 2016 consensus-number bounds): Herlihy's
// critical-state argument shows an object cannot solve 2-process consensus
// when, at every critical configuration with pending steps s_P and s_Q on
// the same object, one of the following indistinguishability cases holds
// (each contradicts the opposite valences of C·s_P and C·s_Q):
//
//   (a) overwrite-P : state(C·s_Q·s_P) == state(C·s_P) and P's response
//                     equal — Q's step is invisible to a solo run of P;
//   (b) overwrite-Q : symmetric;
//   (c) commute-P   : state(C·s_P·s_Q) == state(C·s_Q·s_P) and P's response
//                     equal in both orders — solo-P cannot tell the orders
//                     apart;
//   (d) commute-Q   : symmetric.
//
// `check_valence_cases` enumerates (state, s_P, s_Q) triples of a small
// object model and reports every uncovered pair. For WRN_k with k ≥ 3 all
// pairs are covered (this is exactly the paper's Lemma 38 case analysis,
// mechanized); for k = 2 (SWAP) the adjacent-index pairs are uncovered —
// the escape hatch through which SWAP attains consensus number 2. For
// GAC(n,i) pairs are covered relative to (n+1)-process consensus.
//
// A step that hangs its process is indistinguishability-for-that-process by
// itself: a hung process never decides, so it cannot decide differently
// (and our objects hang without mutating state).
//
// Positive side: `check_consensus_algorithm` exhaustively (or randomly)
// validates a consensus algorithm for n processes, and
// `find_consensus_violation` searches for a schedule breaking an alleged
// algorithm — used to demonstrate that natural (n+1)-consensus attempts on
// these objects fail.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "subc/runtime/explorer.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Report of the valence case analysis.
struct ValenceReport {
  long states_checked = 0;
  long pairs_checked = 0;
  /// Human-readable descriptions of uncovered (state, s_P, s_Q) triples.
  std::vector<std::string> uncovered;

  [[nodiscard]] bool all_covered() const noexcept { return uncovered.empty(); }
};

/// Object model for the case analysis:
///   State   — copyable object state
///   Op      — an operation with arguments
///   states()— representative states (include at least all states reachable
///             with the ops under consideration)
///   ops()   — the operation alphabet
///   apply(State&, Op) -> std::optional<Value>  (nullopt = the op hangs; a
///             hanging op must not mutate the state)
///   key(State) -> std::string, describe(Op) -> std::string
template <class Model>
ValenceReport check_valence_cases(const Model& model) {
  ValenceReport report;
  const auto states = model.states();
  const auto ops = model.ops();
  for (const auto& s0 : states) {
    ++report.states_checked;
    for (const auto& op_p : ops) {
      for (const auto& op_q : ops) {
        ++report.pairs_checked;

        auto s_p = s0;  // C·s_P
        const auto rp = model.apply(s_p, op_p);
        auto s_q = s0;  // C·s_Q
        const auto rq = model.apply(s_q, op_q);

        auto s_pq = s_p;  // C·s_P·s_Q
        const auto rq_after_p = model.apply(s_pq, op_q);
        auto s_qp = s_q;  // C·s_Q·s_P
        const auto rp_after_q = model.apply(s_qp, op_p);

        const auto same = [&model](const auto& a, const auto& b) {
          return model.key(a) == model.key(b);
        };
        // A process hung by its step can never decide, so it cannot witness
        // a difference; equal responses likewise hide the other's step.
        const auto hidden = [](const std::optional<Value>& a,
                               const std::optional<Value>& b) {
          return !a.has_value() || !b.has_value() || *a == *b;
        };

        const bool overwrite_p = same(s_qp, s_p) && hidden(rp, rp_after_q);
        const bool overwrite_q = same(s_pq, s_q) && hidden(rq, rq_after_p);
        const bool commute_p = same(s_pq, s_qp) && hidden(rp, rp_after_q);
        const bool commute_q = same(s_pq, s_qp) && hidden(rq, rq_after_p);

        if (!(overwrite_p || overwrite_q || commute_p || commute_q)) {
          report.uncovered.push_back("state{" + model.key(s0) + "} s_P=" +
                                     model.describe(op_p) + " s_Q=" +
                                     model.describe(op_q));
        }
      }
    }
  }
  return report;
}

/// Model of WRN_k over a small value domain: states are all slot
/// assignments, ops are all (index, value) writes.
struct WrnModel {
  int k;
  std::vector<Value> domain;

  struct Op {
    int index;
    Value v;
  };
  using State = std::vector<Value>;

  [[nodiscard]] std::vector<State> states() const;
  [[nodiscard]] std::vector<Op> ops() const;
  std::optional<Value> apply(State& s, const Op& op) const;
  [[nodiscard]] std::string key(const State& s) const;
  [[nodiscard]] static std::string describe(const Op& op);
};

/// Model of the cyclic-group-arrival component GAC(n, i): states are arrival
/// prefixes (values drawn from the domain at readable positions), ops are
/// proposals of domain values.
struct GacModel {
  int n;
  int i;
  std::vector<Value> domain;

  struct Op {
    Value v;
  };
  struct State {
    std::vector<Value> arrivals;
  };

  [[nodiscard]] std::vector<State> states() const;
  [[nodiscard]] std::vector<Op> ops() const;
  std::optional<Value> apply(State& s, const Op& op) const;
  [[nodiscard]] std::string key(const State& s) const;
  [[nodiscard]] static std::string describe(const Op& op);
};

/// Runs the case analysis for WRN_k (k >= 2) over domain {1, 2}.
ValenceReport check_wrn_valence(int k);

/// Runs the case analysis for GAC(n, i) over domain {1, 2}.
ValenceReport check_gac_valence(int n, int i);

/// A consensus algorithm under test: builds a fresh world whose processes
/// propose `inputs[pid]` and decide. The harness validates agreement +
/// validity + termination over every (or `rounds` random) executions.
using ConsensusWorldBody =
    std::function<void(ScheduleDriver&, const std::vector<Value>&)>;

struct ConsensusCheck {
  std::int64_t executions = 0;
  /// Scheduling options the partial-order reduction skipped, summed over
  /// all input vectors (0 under `Reduction::kNone`).
  std::int64_t reduced_subtrees = 0;
  bool exhaustive = false;
  std::optional<std::string> violation;

  [[nodiscard]] bool ok() const noexcept { return !violation.has_value(); }
};

/// Validates `body` as consensus for the given input vectors, exhaustively
/// when feasible. Each input vector spawns one exploration. With
/// `threads > 1` each exploration runs on the parallel explorer (the body
/// must then be safe to run from several threads at once; bodies that build
/// their whole world inside the call, as all in-tree ones do, qualify).
ConsensusCheck check_consensus_algorithm(
    const ConsensusWorldBody& body,
    const std::vector<std::vector<Value>>& input_vectors,
    std::int64_t max_executions_per_input = 500'000, int threads = 1);

/// Searches for a violating schedule of an alleged consensus algorithm.
/// Returns the violation message (expected for impossible tasks), or
/// nullopt if none was found within the budget. `threads` as above; the
/// reported schedule is the canonically least one at any thread count.
std::optional<std::string> find_consensus_violation(
    const ConsensusWorldBody& body, const std::vector<Value>& inputs,
    std::int64_t max_executions = 500'000, int threads = 1);

// ---------------------------------------------------------------------------
// Bounded protocol synthesis (the strong form of the T5 boundary)
// ---------------------------------------------------------------------------

/// A 2-process protocol template over one WRN_k object and announcement
/// registers: role b announces its value, performs t = WRN(index[b], v_b)
/// and decides per rule[b]:
///   0: always its own value
///   1: t if t ≠ ⊥, else own
///   2: the other's announcement if t ≠ ⊥ (own if that is still ⊥), else own
///   3: own if t ≠ ⊥, else the other's announcement (own if ⊥)
///   4: t if t ≠ ⊥, else the other's announcement (own if ⊥)
struct WrnProtocol {
  int index[2] = {0, 0};
  int rule[2] = {0, 0};
};

/// Result of exhaustively model-checking every WrnProtocol instance.
struct ProtocolSearchResult {
  long protocols_checked = 0;
  long correct = 0;
  /// The correct protocols found (empty for k >= 3 — Theorem 1's boundary).
  std::vector<WrnProtocol> winners;
};

/// Enumerates all k² × 25 protocols of the family above and exhaustively
/// model-checks each as a 2-process consensus algorithm on WRN_k. For
/// k = 2 several protocols succeed (SWAP's consensus number 2); for k ≥ 3
/// none do — an automated, family-wide strengthening of the single
/// counterexample protocol.
ProtocolSearchResult search_wrn_two_consensus_protocols(int k);

/// The O_{n,k}-side analogue: a `procs`-process protocol template over one
/// GAC(n, i) component and announcement registers. Each process proposes
/// once and decides per rule:
///   0: always own;  1: the returned value;
///   2: returned if it differs from own, else own (equivalent to 1 here,
///      kept for family symmetry);  3: own if returned == own, else the
///      announcement of the returned value's proposer (own while unwritten).
struct GacProtocol {
  int rule[8] = {0};  ///< per process (procs <= 8)
};

/// Exhaustively model-checks every rule assignment for `procs` processes on
/// GAC(n, i). For procs <= n every assignment with all-"returned" rules
/// succeeds (block 0 gives consensus); for procs = n+1 none does —
/// synthesizing the consensus-number-n boundary of the 2016 components.
ProtocolSearchResult search_gac_consensus_protocols(int n, int i, int procs);

}  // namespace subc
