// The set-consensus implementability calculus.
//
// Theorem 41 (quoted in the sequel from Borowsky/Chaudhuri–Reiners and
// completed by the PODC 2016 paper): wait-free implementability of
// (n,k)-set consensus from (m,j)-set-consensus objects and registers is
// characterized by the *partition bound*
//
//     k  ≥  j·⌊n/m⌋ + min(j, n mod m)
//
// — partition the n processes into ⌊n/m⌋ groups of m plus a remainder; each
// group runs its own object and contributes at most j (or group size)
// distinct outputs; the papers' lower bound says no algorithm beats the best
// partition. This module provides the predicate, the optimal-partition
// dynamic program that *constructively* matches it (cross-checked in tests
// by brute force), the resulting hierarchy facts (Corollary 42 for
// 1sWRN_k ≡ (k,k−1)-set consensus), and the power calculus of the
// reconstructed O_{n,k} conjunction objects (DESIGN.md §4).
#pragma once

#include <string>
#include <vector>

namespace subc {

// ---------------------------------------------------------------------------
// (m,j)-set-consensus calculus (Theorem 41)
// ---------------------------------------------------------------------------

/// Minimal agreement k achievable for n processes by optimally partitioning
/// them over (m,j)-set-consensus objects: j·⌊n/m⌋ + min(j, n mod m).
int sc_partition_agreement(int n, int m, int j);

/// Same quantity computed by dynamic programming over *all* partitions
/// (any mix of group sizes) — used to verify the closed form.
int sc_partition_agreement_dp(int n, int m, int j);

/// Theorem 41 predicate: (n,k)-set consensus is wait-free implementable from
/// (m,j)-set-consensus objects and registers in a system of n processes.
bool sc_implementable(int n, int k, int m, int j);

/// Consensus number of the (m,j)-set-consensus object: ⌊m/j⌋.
int sc_consensus_number(int m, int j);

// ---------------------------------------------------------------------------
// 1sWRN hierarchy (Theorem 2 + Corollary 42)
// ---------------------------------------------------------------------------

/// Can 1sWRN_{k_target} be implemented from 1sWRN_{k_source} objects and
/// registers (in a system of k_target processes)? Uses the paper's
/// equivalence 1sWRN_k ≡ (k, k−1)-set consensus (Theorem 2).
bool wrn_implementable_from(int k_target, int k_source);

/// Corollary 42 in one call: for k < k', 1sWRN_{k'} is implementable from
/// 1sWRN_k but not vice versa. Throws SpecViolation if the calculus
/// disagrees (it never should).
void check_wrn_hierarchy_pair(int k, int k_prime);

// ---------------------------------------------------------------------------
// O_{n,k} conjunction calculus (PODC 2016 reconstruction, DESIGN.md §4)
// ---------------------------------------------------------------------------

/// Capacity m_i = n(i+1)+i of component GAC(n,i).
int onk_component_capacity(int n, int i);

/// Agreement j_i = i+1 of component GAC(n,i).
int onk_component_agreement(int i);

/// Minimal number of distinct outputs achievable for `procs` processes using
/// the components of O_{n,k} (GAC(n,0) .. GAC(n,k−1)), by the optimal
/// partition (dynamic program).
int onk_best_agreement(int n, int k, int procs);

/// Brute-force cross-check of onk_best_agreement via explicit enumeration of
/// multisets of groups (exponential; small instances only).
int onk_best_agreement_bruteforce(int n, int k, int procs);

/// The partition of `procs` processes achieving onk_best_agreement:
/// a list of (component index, group size) assignments covering all procs.
std::vector<std::pair<int, int>> onk_best_partition(int n, int k, int procs);

/// The 2016 separation at N_k = nk+n+k processes: O_{n,k+1} achieves
/// agreement k+1 there, O_{n,k} only k+2.
struct OnkSeparation {
  int n = 0;
  int k = 0;
  int system_size = 0;       ///< N_k = nk + n + k
  int agreement_with_k = 0;  ///< best agreement of O_{n,k} at N_k
  int agreement_with_k1 = 0; ///< best agreement of O_{n,k+1} at N_k

  [[nodiscard]] bool separated() const noexcept {
    return agreement_with_k1 < agreement_with_k;
  }
};

/// Computes the separation data for (n, k).
OnkSeparation onk_separation(int n, int k);

/// Formats an implementability matrix row-wise for the benches:
/// entry [a][b] is whether 1sWRN_{k_min+a} implements 1sWRN_{k_min+b}.
std::string format_wrn_matrix(int k_min, int k_max);

// ---------------------------------------------------------------------------
// The unified power profile (experiment F7)
// ---------------------------------------------------------------------------

/// An object class whose synchronization power the calculus can evaluate:
/// for each system size N, the best agreement x such that the class solves
/// (N, x)-set consensus wait-free (with registers). Lower is stronger;
/// x = N means "no better than registers", x = 1 means consensus for all N.
struct ObjectClassProfile {
  std::string name;
  /// best_agreement[N-1] for N = 1..size.
  std::vector<int> best_agreement;
};

/// Registers only: x = N (decide your own value; nothing better).
ObjectClassProfile profile_registers(int max_procs);

/// 1sWRN_k ≡ (k, k−1)-set consensus (Theorem 2): the partition calculus.
ObjectClassProfile profile_wrn(int k, int max_procs);

/// n-consensus objects: x = ⌈N/n⌉.
ObjectClassProfile profile_consensus(int n, int max_procs);

/// O_{n,k} (the 2016 conjunction object): the component DP.
ObjectClassProfile profile_onk(int n, int k, int max_procs);

/// Compare-and-swap (consensus number ∞): x = 1 everywhere.
ObjectClassProfile profile_cas(int max_procs);

/// A generic (m, j)-set-consensus object class.
ObjectClassProfile profile_set_consensus(int m, int j, int max_procs);

}  // namespace subc
