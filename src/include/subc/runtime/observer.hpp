// Trace observers: the recording side of the runtime stack.
//
// A `SchedulePolicy` (scheduler.hpp, policy.hpp) decides what a run does;
// a `TraceObserver` records what happened. The kernel streams an event for
// every scheduler grant, object choice, crash and run boundary; histories
// (history.hpp) stream invocation/response events for the high-level
// operations they record; and `run_one` (explorer.hpp) reports violations.
// Observers never influence execution — attaching or removing one cannot
// change a verdict, an execution count, or a decision trace.
//
// Observers compose: `ObserverChain` fans every event out to a list of
// sinks, so a single run can simultaneously feed the access counters, a
// history mirror and the JSONL trace exporter (checking/trace_jsonl.hpp).
//
// Wiring: worlds built by an `ExecutionBody` construct their own `Runtime`
// inside the body, so observers reach them through a thread-local default —
// `run_one` installs its observer with `ScopedObserver`, and every Runtime
// constructed on that thread while it is alive picks the observer up. A
// Runtime built outside `run_one` can be wired explicitly with
// `set_observer`.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "subc/runtime/scheduler.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// One scheduler grant: process `pid` executed the atomic step it announced
/// with footprint `access` (unknown when the step declared none), as grant
/// number `step` (0-based) of its run.
struct StepEvent {
  int pid = -1;
  std::int64_t step = 0;
  Access access;
};

/// Event sink for one or more simulated runs. Every hook has an empty
/// default so observers override only what they record. Observers attached
/// to parallel searches (Explorer::Options::observer) receive events from
/// several worker threads concurrently and must synchronize internally.
class TraceObserver {
 public:
  virtual ~TraceObserver() = default;

  /// A world starts running (`Runtime::run`) with `num_processes` processes.
  virtual void on_run_begin(int /*num_processes*/) {}

  /// One atomic step was granted (emitted just before the step executes).
  virtual void on_step(const StepEvent& /*event*/) {}

  /// Process `pid` resolved object nondeterminism: `chosen` out of `arity`.
  virtual void on_choose(int /*pid*/, std::uint32_t /*arity*/,
                         std::uint32_t /*chosen*/) {}

  /// Process `pid` crashed after `step` scheduler grants had been issued.
  virtual void on_crash(int /*pid*/, std::int64_t /*step*/) {}

  /// Process `pid` restarted (crash-recovery) after `step` scheduler grants
  /// had been issued: a fresh incarnation re-enters the body from the top.
  virtual void on_recover(int /*pid*/, std::int64_t /*step*/) {}

  /// A high-level operation opened in a History wired to this observer.
  /// `handle` is the History handle; `time` its logical invocation time.
  virtual void on_invoke(int /*pid*/, std::size_t /*handle*/,
                         std::int64_t /*time*/,
                         std::span<const Value> /*op*/) {}

  /// A high-level operation completed. `time` is its logical response time.
  virtual void on_respond(int /*pid*/, std::size_t /*handle*/,
                          std::int64_t /*time*/,
                          std::span<const Value> /*response*/) {}

  /// An execution body threw (`run_one` reports the message here before
  /// returning it).
  virtual void on_violation(std::string_view /*message*/) {}

  /// An execution tripped the explorer's step-quota watchdog and was
  /// recorded as stuck (livelocked/runaway schedule; see
  /// `Explorer::Options::step_quota`). Diagnostic only — a stuck execution
  /// is not a violation and does not stop the search.
  virtual void on_stuck(std::string_view /*message*/) {}

  /// The world reached quiescence (or its step bound) and `Runtime::run`
  /// is about to return.
  virtual void on_run_end(std::int64_t /*total_steps*/, bool /*quiescent*/) {}

  /// The search skipped `subtrees` redundant subtrees since the previous
  /// event (partial-order reduction / pruning metadata; emitted by the
  /// explorer, not by individual runs). Telemetry only.
  virtual void on_reduced(std::int64_t /*subtrees*/) {}

  /// Stateful exploration (Explorer::Options::stateful) cut `cuts` subtrees
  /// whose (world-state, sleep-set) fingerprint had already been visited.
  /// Emitted by the explorer; telemetry only.
  virtual void on_stateful_cut(std::int64_t /*cuts*/) {}
};

/// Fans every event out to a list of observers, in registration order. The
/// chain does not own its sinks; they must outlive it.
class ObserverChain final : public TraceObserver {
 public:
  ObserverChain() = default;
  explicit ObserverChain(std::vector<TraceObserver*> sinks)
      : sinks_(std::move(sinks)) {}

  void add(TraceObserver& sink) { sinks_.push_back(&sink); }

  void on_run_begin(int num_processes) override;
  void on_step(const StepEvent& event) override;
  void on_choose(int pid, std::uint32_t arity, std::uint32_t chosen) override;
  void on_crash(int pid, std::int64_t step) override;
  void on_recover(int pid, std::int64_t step) override;
  void on_invoke(int pid, std::size_t handle, std::int64_t time,
                 std::span<const Value> op) override;
  void on_respond(int pid, std::size_t handle, std::int64_t time,
                  std::span<const Value> response) override;
  void on_violation(std::string_view message) override;
  void on_stuck(std::string_view message) override;
  void on_run_end(std::int64_t total_steps, bool quiescent) override;
  void on_reduced(std::int64_t subtrees) override;
  void on_stateful_cut(std::int64_t cuts) override;

 private:
  std::vector<TraceObserver*> sinks_;
};

/// Per-object / per-kind access telemetry: how many steps each shared
/// object absorbed and how (read/write/rmw/choose), plus run, choose, crash
/// and violation tallies. Thread-safe — one counter instance can observe a
/// whole parallel exploration and benches export its totals into
/// BENCH_<ID>.json.
class AccessCounters final : public TraceObserver {
 public:
  void on_run_begin(int num_processes) override;
  void on_step(const StepEvent& event) override;
  void on_choose(int pid, std::uint32_t arity, std::uint32_t chosen) override;
  void on_crash(int pid, std::int64_t step) override;
  void on_recover(int pid, std::int64_t step) override;
  void on_invoke(int pid, std::size_t handle, std::int64_t time,
                 std::span<const Value> op) override;
  void on_respond(int pid, std::size_t handle, std::int64_t time,
                  std::span<const Value> response) override;
  void on_violation(std::string_view message) override;
  void on_stuck(std::string_view message) override;

  [[nodiscard]] std::int64_t runs() const;
  [[nodiscard]] std::int64_t steps() const;
  /// Steps whose footprint had the given kind (kUnknown for footprint-less).
  [[nodiscard]] std::int64_t steps_of_kind(AccessKind kind) const;
  [[nodiscard]] std::int64_t chooses() const;
  [[nodiscard]] std::int64_t crashes() const;
  [[nodiscard]] std::int64_t recoveries() const;
  [[nodiscard]] std::int64_t invocations() const;
  [[nodiscard]] std::int64_t responses() const;
  [[nodiscard]] std::int64_t violations() const;
  /// Executions reported stuck by the step-quota watchdog (on_stuck events).
  [[nodiscard]] std::int64_t stuck() const;
  /// Distinct object ids seen in footprints (object 0 = unknown excluded).
  [[nodiscard]] std::int64_t objects_touched() const;
  /// Steps charged to object id `object` across all observed runs.
  [[nodiscard]] std::int64_t steps_on_object(std::uint32_t object) const;

 private:
  mutable std::mutex mu_;
  std::int64_t runs_ = 0;
  std::int64_t steps_ = 0;
  std::int64_t by_kind_[5] = {0, 0, 0, 0, 0};
  std::int64_t chooses_ = 0;
  std::int64_t crashes_ = 0;
  std::int64_t recoveries_ = 0;
  std::int64_t invocations_ = 0;
  std::int64_t responses_ = 0;
  std::int64_t violations_ = 0;
  std::int64_t stuck_ = 0;
  std::vector<std::int64_t> per_object_;  // index = object id
};

class History;

/// Mirrors invoke/respond events into an owned History — the observer-side
/// history recorder. A source History wired to it (History::set_sink)
/// produces a mirror whose dump() is identical to the source's, so checkers
/// can consume recorded operations without touching the world's own
/// plumbing. Not thread-safe; use one recorder per worker.
class HistoryRecorder final : public TraceObserver {
 public:
  HistoryRecorder();
  ~HistoryRecorder() override;

  void on_invoke(int pid, std::size_t handle, std::int64_t time,
                 std::span<const Value> op) override;
  void on_respond(int pid, std::size_t handle, std::int64_t time,
                  std::span<const Value> response) override;

  [[nodiscard]] const History& history() const noexcept { return *history_; }
  /// Clears the mirror (e.g. between runs of a sweep).
  void reset();

 private:
  std::unique_ptr<History> history_;
  /// Source handle -> mirror handle (sources interleave handles freely).
  std::vector<std::size_t> handle_map_;
};

/// Periodic progress telemetry for long-running searches: counts completed
/// executions (runs reaching on_run_end plus violating runs, which throw
/// before run end but still count as executions), reduction skips and
/// violations, and once `period_seconds` of
/// wall clock have passed since the previous line prints one
/// `[progress] execs=... exec/s=... reduced=... stateful=... violations=...`
/// line to `out` (stderr by default). Verdict-neutral by construction — a pure
/// sink, never consulted by the search — and off by default: nothing
/// attaches one unless a bench or caller wires it in explicitly
/// (Explorer::Options::observer or an ObserverChain). Thread-safe; benches
/// stamp `snapshot()` into BENCH_<ID>.json.
class ProgressTicker final : public TraceObserver {
 public:
  struct Snapshot {
    std::int64_t executions = 0;
    std::int64_t reduced = 0;
    std::int64_t violations = 0;
    /// Subtrees skipped by stateful exploration (on_stateful_cut events).
    std::int64_t stateful_cuts = 0;
    double elapsed_seconds = 0.0;
    double executions_per_sec = 0.0;
    /// (executions + reduced skips) / executions; 1.0 when nothing was
    /// skipped (or nothing ran). A coarse "how much tree did the reduction
    /// save" figure.
    double reduction_factor = 1.0;
  };

  explicit ProgressTicker(double period_seconds = 2.0,
                          std::ostream* out = nullptr);

  void on_run_end(std::int64_t total_steps, bool quiescent) override;
  void on_violation(std::string_view message) override;
  void on_reduced(std::int64_t subtrees) override;
  void on_stateful_cut(std::int64_t cuts) override;

  [[nodiscard]] Snapshot snapshot() const;

 private:
  /// Emits a progress line when the period has elapsed. Caller holds mu_.
  void maybe_tick_locked();

  mutable std::mutex mu_;
  double period_seconds_;
  std::ostream* out_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_tick_;
  std::int64_t executions_ = 0;
  std::int64_t reduced_ = 0;
  std::int64_t violations_ = 0;
  std::int64_t stateful_cuts_ = 0;
};

/// Collects violation messages (on_violation events) in arrival order.
/// Thread-safe.
class ViolationCollector final : public TraceObserver {
 public:
  void on_violation(std::string_view message) override;

  [[nodiscard]] std::vector<std::string> messages() const;
  [[nodiscard]] std::int64_t count() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::string> messages_;
};

/// The observer newly constructed Runtimes (and anything else consulting
/// this default) pick up on the current thread; nullptr when none is
/// installed. `run_one` installs its observer through `ScopedObserver`.
[[nodiscard]] TraceObserver* thread_default_observer() noexcept;

/// RAII installer for the thread-default observer: pushes `obs` (may be
/// nullptr to mask an outer scope) on construction, restores the previous
/// default on destruction. Scopes nest.
class ScopedObserver {
 public:
  explicit ScopedObserver(TraceObserver* obs);
  ~ScopedObserver();

  ScopedObserver(const ScopedObserver&) = delete;
  ScopedObserver& operator=(const ScopedObserver&) = delete;

 private:
  TraceObserver* previous_;
};

}  // namespace subc
