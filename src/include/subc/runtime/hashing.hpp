// Small non-cryptographic hashing primitives shared by the checker's
// fingerprint memo and by spec `hash(State)` hooks (objects layer). Kept in
// the runtime layer so both may include them without a layering inversion.
#pragma once

#include <cstdint>
#include <string_view>

namespace subc::detail {

/// splitmix64 finalizer: a cheap, well-distributed 64→64 mixer.
inline constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over bytes, for hashing string memo keys.
inline constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace subc::detail
