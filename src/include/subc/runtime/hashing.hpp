// Small non-cryptographic hashing primitives shared by the checker's
// fingerprint memo, spec `hash(State)` hooks (objects layer), and the
// explorer's stateful-search visited set. Kept in the runtime layer so all
// three may include them without a layering inversion.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace subc::detail {

/// splitmix64 finalizer: a cheap, well-distributed 64→64 mixer.
inline constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over bytes, for hashing string memo keys.
inline constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// --- World-state fingerprinting (stateful exploration) --------------------
//
// Domain-separation salts for the kernel's incremental world fingerprint.
// Each fold event mixes one of these so that, e.g., "proc 2 took a step"
// and "proc 2 observed value 1" cannot alias. Arbitrary odd constants;
// pinned by hashing_test so they cannot drift silently (a drift would
// invalidate nothing semantically but would un-pin serial cut counts).
inline constexpr std::uint64_t kFpProcSalt = 0x1b873593a4093822ULL;
inline constexpr std::uint64_t kFpStepSalt = 0x7feb352d8a91b1d3ULL;
inline constexpr std::uint64_t kFpObserveSalt = 0x85ebca6bc2b2ae35ULL;
inline constexpr std::uint64_t kFpObjectSalt = 0x27d4eb2f165667c5ULL;
inline constexpr std::uint64_t kFpChooseSalt = 0x165667b19e3779f9ULL;
inline constexpr std::uint64_t kFpDecideSalt = 0x9e3779b185ebca87ULL;
inline constexpr std::uint64_t kFpDoneSalt = 0xc2b2ae3d27d4eb4fULL;
inline constexpr std::uint64_t kFpHungSalt = 0xd6e8feb86659fd93ULL;
inline constexpr std::uint64_t kFpCrashSalt = 0xa0761d6478bd642fULL;
/// Recovery fold (crash-and-restart exploration): a recovered process folds
/// `mix64(kFpRecoverSalt ^ incarnation)` so that worlds differing only in
/// how many times a process has restarted can never alias — each restart is
/// a distinct term, keeping stateful cuts sound across the recovery axis.
inline constexpr std::uint64_t kFpRecoverSalt = 0x2545f4914f6cdd1dULL;
inline constexpr std::uint64_t kFpSleepSalt = 0xe7037ed1a0b428dbULL;
inline constexpr std::uint64_t kFpRunSalt = 0x589965cc75374cc3ULL;
/// Instance-domain salt (multi-instance runtime, runtime/instance.hpp):
/// every logical instance folds `mix64(instance_id ^ kFpInstanceSalt)` into
/// its fingerprints, so two instances with identical local histories can
/// never alias in a shared memo or visited set.
inline constexpr std::uint64_t kFpInstanceSalt = 0x8ebc6af09c88c6e3ULL;
/// Request-domain salt (sharded agreement service, runtime/service.hpp):
/// a client-supplied logical-request fingerprint folds through this salt to
/// form its key in the cross-shard decided-request dedup memo, so request
/// keys live in their own domain and can never alias instance domains.
inline constexpr std::uint64_t kFpRequestSalt = 0x4cf5ad432745937fULL;

/// The fingerprint domain of instance `id`: the per-instance term every
/// instance-level fingerprint folds (see InstanceTable::world_fingerprint).
inline constexpr std::uint64_t fp_instance_domain(std::uint64_t id) noexcept {
  return mix64(id ^ kFpInstanceSalt);
}

/// The dedup-memo key of logical request `request_fp` (sharded service):
/// the domain-folded form every shard probes and records, mirroring
/// `fp_instance_domain` for instances.
inline constexpr std::uint64_t fp_request_domain(
    std::uint64_t request_fp) noexcept {
  return mix64(request_fp ^ kFpRequestSalt);
}

/// Value folds for object state hashes. `fp_of` is overloaded per state
/// shape; objects whose state has no overload simply do not report a
/// commit, which poisons the fingerprint for that execution (sound — the
/// explorer then takes no stateful cuts on it).
inline constexpr std::uint64_t fp_of(std::int64_t v) noexcept {
  return mix64(static_cast<std::uint64_t>(v));
}

inline std::uint64_t fp_of(const std::vector<std::int64_t>& vs) noexcept {
  std::uint64_t h = 0x6a09e667f3bcc909ULL;
  for (const std::int64_t v : vs) {
    h = mix64(h ^ static_cast<std::uint64_t>(v));
  }
  return h;
}

/// Fixed-capacity concurrent open-addressing set of 64-bit fingerprints —
/// the explorer's visited-(state, sleep-set) cache. The single-threaded
/// `FingerprintSet` in checking/linearizability.hpp is the shape model
/// (0-sentinel empty slots, 0 remapped to 1, linear probing); this variant
/// trades growth for lock-freedom: slots are plain atomics, insertion is a
/// CAS race whose loser re-reads the slot, and when the table reaches its
/// load limit further probes report "not seen" without inserting. That
/// saturation rule is sound — the explorer just stops taking cuts — and
/// keeps the memory bound the `stateful_capacity` knob promises.
class VisitedSet {
 public:
  /// `capacity` = maximum number of distinct keys the set will hold.
  /// Slots are sized to the next power of two at most ~70% loaded.
  explicit VisitedSet(std::size_t capacity) {
    std::size_t slots = 64;
    while (slots * 7 < capacity * 10) {
      slots *= 2;
    }
    slots_ = std::make_unique<std::atomic<std::uint64_t>[]>(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      slots_[i].store(0, std::memory_order_relaxed);
    }
    num_slots_ = slots;
    max_size_ = slots * 7 / 10;
  }

  /// Returns true iff `key` was already present ("seen — cut here").
  /// Otherwise tries to insert it and returns false; when the table is
  /// saturated the key is dropped (still returns false: never seen).
  /// Exactly one caller wins a concurrent insert race for the same key,
  /// so two executions probing the same state cannot both cut on it.
  bool check_and_insert(std::uint64_t key) noexcept {
    key += (key == 0);
    const std::uint64_t mask = num_slots_ - 1;
    for (std::uint64_t i = key & mask;; i = (i + 1) & mask) {
      std::uint64_t cur = slots_[i].load(std::memory_order_relaxed);
      if (cur == key) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (cur == 0) {
        if (size_.load(std::memory_order_relaxed) >= max_size_) {
          return false;  // saturated: sound, just no more cuts
        }
        if (slots_[i].compare_exchange_strong(cur, key,
                                              std::memory_order_relaxed)) {
          size_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        if (cur == key) {  // lost the race to an identical probe
          hits_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        // Lost to a different key: keep probing from the next slot.
      }
    }
  }

  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(size_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] std::int64_t hits() const noexcept {
    return static_cast<std::int64_t>(hits_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] std::size_t slot_count() const noexcept { return num_slots_; }
  [[nodiscard]] bool saturated() const noexcept {
    return size_.load(std::memory_order_relaxed) >= max_size_;
  }

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
  std::size_t num_slots_ = 0;
  std::size_t max_size_ = 0;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> hits_{0};
};

}  // namespace subc::detail
