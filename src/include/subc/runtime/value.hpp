// Core value and error types shared across the subconsensus library.
//
// The simulated shared-memory model (DESIGN.md §3) moves small scalar values
// between processes and objects. We fix `Value` to a signed 64-bit integer
// with a reserved bottom element; algorithms that need composite payloads
// (e.g. the snapshot arrays announced in Algorithm 5) use templated registers
// instead of widening `Value`.
#pragma once

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace subc {

/// The value type carried by simulated shared objects and task decisions.
using Value = std::int64_t;

/// The distinguished "no value" element (the papers' ⊥).
inline constexpr Value kBottom = std::numeric_limits<std::int64_t>::min();

/// Returns a printable form of `v` ("⊥" for bottom).
inline std::string to_string(Value v) {
  return v == kBottom ? std::string("⊥") : std::to_string(v);
}

/// Error thrown when library API preconditions are violated by the caller
/// (bad parameters, driving a finished runtime, and so on).
class SimError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Error thrown when a simulated execution violates a sequential
/// specification or a task property. Carries the offending context so tests
/// can surface the violating schedule.
class SpecViolation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::ostringstream os;
  os << "internal invariant failed: " << expr << " at " << file << ":" << line;
  throw SimError(os.str());
}
}  // namespace detail

/// Internal invariant check. Throws `SimError` (never aborts) so that the
/// exhaustive explorer can attribute a failure to the schedule that caused
/// it.
#define SUBC_ASSERT(expr)                                        \
  do {                                                           \
    if (!(expr)) {                                               \
      ::subc::detail::assert_fail(#expr, __FILE__, __LINE__);    \
    }                                                            \
  } while (false)

}  // namespace subc
