// Stateless exhaustive exploration of schedules and object nondeterminism.
//
// The papers' claims are ∀-statements over executions. For small instances
// we check them on *every* execution: the explorer re-runs a user-supplied
// world factory under a `ReplayDriver`, depth-first enumerating the full
// tree of adversary decisions (scheduling ⊎ object nondeterminism). A
// violation (any exception escaping the body) stops the search and is
// reported together with the decision string that produced it, so failures
// replay deterministically.
//
// With `Options::threads > 1` the search runs in parallel: the tree is first
// enumerated down to a frontier depth `d`, producing disjoint subtree
// prefixes in serial-DFS order; a pool of workers then claims subtrees in
// that order and runs the same restart-DFS inside each. Results are
// aggregated canonically — the reported violation is the one the *serial*
// DFS would have found first, and `executions` matches the serial count
// bit-for-bit (see docs/explorer.md) — so results are independent of thread
// timing and core count. Execution bodies must be thread-safe under
// parallel exploration: each invocation builds its own world, and any state
// shared across invocations must be synchronized.
//
// For larger instances `RandomSweep` runs many seeded-random executions —
// the standard randomized analogue — with the same seed-range partitioning
// and deterministic least-seed failure reporting when parallelized.
//
// Every search — exhaustive, random, and the consensus-check helpers built
// on them — executes individual runs through `run_one(body, policy,
// observer)`: one place where a world, a schedule policy (scheduler.hpp,
// policy.hpp) and an event sink (observer.hpp) meet. Found violations can
// be delta-debugged to a locally-minimal decision string with
// `Explorer::shrink` (or automatically via `Options::shrink_violations`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "subc/runtime/scheduler.hpp"

namespace subc {

class TraceObserver;

/// Runs one complete execution of a freshly built world under `driver`.
/// Build everything inside (runtime, objects, processes), run it, then
/// validate — throw `SpecViolation` (or any exception) to flag a violation.
using ExecutionBody = std::function<void(ScheduleDriver& driver)>;

/// The one entry point every search funnels through: runs a single complete
/// execution of `body` under `policy`, with `observer` installed as the
/// thread-default for the duration (so every Runtime the body constructs
/// reports its events there; nullptr = unobserved). Returns the violation
/// message when the body threw, nullopt on a clean execution. `observer`
/// also receives the violation as an `on_violation` event. The explorer's
/// control-flow cuts (`FrontierCut`/`PruneCut`/`SleepCut`) are not
/// violations and propagate to the caller.
std::optional<std::string> run_one(const ExecutionBody& body,
                                   SchedulePolicy& policy,
                                   TraceObserver* observer = nullptr);

/// Diagnostic for an execution cut short by the step-quota watchdog
/// (`Explorer::Options::step_quota`): the schedule consumed more decisions
/// than any terminating run of the world should need — livelock or runaway.
/// The attached trace replays the partial execution up to the cut. Not a
/// violation: the search continues past it (siblings of the cut decision
/// are still explored), it is counted in `Result::stuck_executions`, and the
/// canonically first one is reported in `Result::first_stuck`.
struct StuckExecution {
  std::string message;
  std::vector<ReplayDriver::Decision> trace;
};

/// Partial-order reduction strategy for the exhaustive search.
enum class Reduction : std::uint8_t {
  /// Raw enumeration of every decision string.
  kNone,
  /// Sleep sets over the per-step access footprints (scheduler.hpp): after
  /// the subtree where process p steps at a decision point is explored, p
  /// sleeps at the later siblings and stays asleep below them until some
  /// step *dependent* on p's pending step runs. Sound: a violation is found
  /// iff the unreduced search finds one (docs/explorer.md).
  kSleepSets,
};

class Explorer {
 public:
  /// See ReplayDriver::PruneFn: return true to skip the subtree below the
  /// given partial decision string. Must be thread-safe when threads > 1.
  using PruneFn = ReplayDriver::PruneFn;

  struct Options {
    /// Stop (incomplete) after this many executions. Must be positive
    /// (validated by `explore`, which throws `SimError` otherwise).
    std::int64_t max_executions = 2'000'000;

    /// Partial-order reduction. The default prunes redundant interleavings
    /// of provably commuting steps; use `kNone` when the raw interleaving
    /// count itself is the quantity under test.
    Reduction reduction = Reduction::kSleepSets;

    /// Worker threads for the search. 1 = serial in the calling thread
    /// (the default); 0 = one worker per hardware thread; n > 1 = exactly n
    /// workers. Results are identical at every setting.
    int threads = 1;

    /// Depth (in recorded, i.e. arity>=2, decisions) of the partition
    /// frontier used to generate parallel work items. 0 = auto-tune from
    /// the thread count; negative values are rejected with `SimError`.
    /// Ignored when running serially.
    int frontier_depth = 0;

    /// Optional symmetry/pruning hook, consulted once for every partial
    /// decision string the first time the search reaches it; returning true
    /// skips the whole subtree below it. Pruned subtrees are counted in
    /// `Result::pruned_subtrees` and do not consume `max_executions` budget.
    PruneFn prune;

    /// Optional event sink (observer.hpp) receiving every execution's
    /// kernel events; `run_one` installs it per execution. Observers are
    /// pure sinks — verdicts, counts, and traces are identical with or
    /// without one — and must be thread-safe when threads != 1.
    TraceObserver* observer = nullptr;

    /// When true, a found violation's decision string is delta-debugged to
    /// a locally-minimal reproducer (see `Explorer::shrink`) before being
    /// returned in `Result::violating_trace`. Off by default: shrinking
    /// re-runs the body many times, which matters for expensive worlds.
    bool shrink_violations = false;

    /// Exhaustive crash branching: at every kernel decision point of an
    /// execution in which fewer than `max_crashes` crashes have landed, the
    /// tree additionally forks on "crash enabled process p" for every
    /// candidate victim (in increasing pid order per decision point; see
    /// docs/adversaries.md). Crash decisions are recorded in the replay
    /// prefix, compose with sleep-set reduction (a crash behaves as a write
    /// on the victim alone) and with the parallel frontier machinery.
    /// 0 (the default) disables crash branching; negative values are
    /// rejected with `SimError`.
    int max_crashes = 0;

    /// Exhaustive crash-*recovery* branching: at every kernel decision
    /// point of an execution in which at least one process is crashed and
    /// fewer than `max_recoveries` recoveries have landed, the tree
    /// additionally forks on "restart crashed process p" for every crashed
    /// candidate (in increasing pid order per decision point, mirroring the
    /// crash canonicalization). A recovered process re-enters its body from
    /// the top with fresh volatile state; durable object state persists
    /// (see `Durability`, docs/adversaries.md). Recovery decisions are
    /// recorded in the replay prefix (marker `r`), compose with sleep-set
    /// reduction (a recovery behaves as a write on the reborn process
    /// alone) and with the parallel frontier machinery. 0 (the default)
    /// disables recovery branching; negative values are rejected with
    /// `SimError`. Requires `max_crashes > 0` (or a body that injects
    /// crashes itself) to ever fire.
    int max_recoveries = 0;

    /// Stateful exploration: the kernel maintains an incremental world-state
    /// fingerprint (per-object post-commit state hashes plus per-process
    /// control positions; runtime/hashing.hpp) and the search skips any
    /// subtree whose (fingerprint, sleep-set) pair it has already explored,
    /// counted in `Result::stateful_cuts`. Sound on worlds whose objects
    /// report fingerprints (the built-in zoo does); a step through an
    /// unported object poisons the fingerprint and the execution's remaining
    /// decision points take no cuts (degrades to the plain search, never to
    /// a wrong verdict). Verdicts are identical to the unreduced search —
    /// the canonical violation may differ, but it replays and shrinks.
    /// Incompatible with `prune` (rejected with `SimError`): a pruned
    /// subtree makes "already explored" a lie. See docs/explorer.md.
    bool stateful = false;

    /// Capacity of the stateful visited set (entries; the backing table is
    /// sized for ~70% peak load). When full, further states are explored
    /// without cutting — still sound, just fewer cuts. Must be positive.
    std::int64_t stateful_capacity = std::int64_t{1} << 20;

    /// Per-execution step-quota watchdog: an execution consuming more than
    /// this many scheduling decisions is cut and recorded as a
    /// `StuckExecution` diagnostic (consuming one unit of
    /// `max_executions` budget) instead of hanging the search; its
    /// unexplored continuations are truncated, siblings still run. 0 (the
    /// default) disables the watchdog; negative values are rejected with
    /// `SimError`.
    std::int64_t step_quota = 0;

    /// Campaign checkpointing: when non-empty, the search periodically
    /// serializes its progress watermark to this path (atomic temp+rename;
    /// format in checking/checkpoint.hpp) and writes a final snapshot on
    /// completion. `Explorer::resume(body, path, opts)` continues an
    /// interrupted campaign to the bit-identical final `Result`. The path
    /// also enables frontier spilling: when the parallel work-unit ring
    /// fills, the oldest queued prefixes are spilled to `<path>.spill` and
    /// re-injected after enumeration instead of stalling the producer.
    /// Empty (the default) disables both.
    std::string checkpoint_path;

    /// Roughly how many completed executions (serial) or canonical events
    /// (parallel) between periodic snapshots. Must be positive.
    std::int64_t checkpoint_every = 4096;

    /// Capacity of the parallel frontier work-unit ring (rounded up to a
    /// power of two, minimum 2). Smaller rings bound in-flight prefixes;
    /// see `checkpoint_path` for the spill behaviour under pressure. Must
    /// be non-zero. Ignored when running serially.
    std::size_t frontier_queue_capacity = 256;
  };

  struct Result {
    std::int64_t executions = 0;
    /// Subtrees skipped by `Options::prune` (0 when no hook installed).
    std::int64_t pruned_subtrees = 0;
    /// Scheduling options the partial-order reduction proved redundant and
    /// skipped (0 under `Reduction::kNone`). Like `pruned_subtrees`, these
    /// consume no `max_executions` budget and are bit-identical at every
    /// thread count.
    std::int64_t reduced_subtrees = 0;
    /// Subtrees skipped by stateful exploration (`Options::stateful`): the
    /// (world-state, sleep-set) pair at the decision point had already been
    /// visited. Like reduction skips these consume no budget. Deterministic
    /// on serial searches; on parallel ones the *verdict* is still
    /// thread-count-independent but the cut/execution split may vary with
    /// timing (docs/explorer.md).
    std::int64_t stateful_cuts = 0;
    /// Distinct (state, sleep-set) fingerprints recorded in the visited set
    /// (0 unless `Options::stateful`).
    std::int64_t stateful_states = 0;
    /// True when the decision tree was exhausted within the budget.
    bool complete = false;
    /// Set when an execution failed; `trace` replays it.
    std::optional<std::string> violation;
    std::vector<ReplayDriver::Decision> violating_trace;
    /// Executions in which at least one crash landed (0 unless
    /// `Options::max_crashes` > 0 or the body injects crashes itself).
    std::int64_t crashed_executions = 0;
    /// Executions in which at least one recovery landed (0 unless
    /// `Options::max_recoveries` > 0 or the body injects recoveries
    /// itself).
    std::int64_t recovered_executions = 0;
    /// Executions cut by the step-quota watchdog (each also counted in
    /// `executions`). Like every other tally, bit-identical across thread
    /// counts.
    std::int64_t stuck_executions = 0;
    /// The canonically first stuck execution, when any occurred before the
    /// search ended (diagnostic — does not affect `ok()`).
    std::optional<StuckExecution> first_stuck;

    /// Convenience: true iff no violation was found.
    [[nodiscard]] bool ok() const noexcept { return !violation.has_value(); }
  };

  /// Exhaustively enumerates adversary decision strings (DFS), in parallel
  /// when `opts.threads != 1`.
  static Result explore(const ExecutionBody& body, Options opts);
  static Result explore(const ExecutionBody& body) {
    return explore(body, Options{});
  }

  /// Continues an interrupted campaign from a snapshot previously written
  /// under `opts.checkpoint_path` (checking/checkpoint.hpp). The snapshot's
  /// option echo must match `opts` (`max_executions`, `max_crashes`,
  /// `max_recoveries`, `step_quota`, `reduction`, `stateful` — thread count
  /// and frontier depth may differ, results are independent of both);
  /// mismatches throw `SimError`. The final `Result` is bit-identical to the uninterrupted
  /// run's: the saved watermark tallies are merged with a fresh search over
  /// the remaining subtrees. Exception: under `Options::stateful` the
  /// visited set is not serialized, so a resumed search restarts it cold —
  /// same verdict, but `executions`/`stateful_cuts` may differ from the
  /// uninterrupted run's (docs/explorer.md). A snapshot of a finished
  /// search returns its saved `Result` without re-running anything.
  static Result resume(const ExecutionBody& body,
                       const std::string& snapshot_path, Options opts);

  /// Re-runs a single execution following `trace` (from a prior violation).
  /// Traces from serial and parallel runs replay identically.
  static void replay(const ExecutionBody& body,
                     std::vector<ReplayDriver::Decision> trace);

  /// Delta-debugs a violating decision string to a *locally-minimal*
  /// reproducer: no single prefix truncation and no single lowering of one
  /// decision (with the suffix dropped) yields a lexicographically smaller
  /// decision string that still violates. Candidates are replayed without
  /// reduction and zero-extended canonically by the ReplayDriver, so the
  /// returned trace replays deterministically (`replay` throws on it). If
  /// `trace` does not reproduce a violation it is returned unchanged.
  static std::vector<ReplayDriver::Decision> shrink(
      const ExecutionBody& body, std::vector<ReplayDriver::Decision> trace);

  /// Resolves an `Options::threads` value: 0 becomes the hardware thread
  /// count, everything else is returned as-is (minimum 1).
  static int resolve_threads(int threads) noexcept;
};

/// Randomized sweep: `runs` executions with seeds `first_seed .. first_seed
/// + runs - 1`. Returns the first failing seed, or nullopt when all passed.
/// With `threads != 1` the seed range is partitioned across workers; the
/// reported failure is always the *least* failing seed index that the serial
/// sweep would have hit first, and `Result::runs` matches the serial count.
struct RandomSweep {
  struct Result {
    std::int64_t runs = 0;
    std::optional<std::uint64_t> failing_seed;
    std::optional<std::string> violation;

    [[nodiscard]] bool ok() const noexcept { return !failing_seed.has_value(); }
  };

  /// `observer`, when given, sees every execution's events (`run_one`
  /// semantics); it must be thread-safe when threads != 1.
  static Result run(const ExecutionBody& body, std::int64_t runs,
                    std::uint64_t first_seed = 1, int threads = 1,
                    TraceObserver* observer = nullptr);
};

}  // namespace subc
