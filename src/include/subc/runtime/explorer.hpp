// Stateless exhaustive exploration of schedules and object nondeterminism.
//
// The papers' claims are ∀-statements over executions. For small instances
// we check them on *every* execution: the explorer re-runs a user-supplied
// world factory under a `ReplayDriver`, depth-first enumerating the full
// tree of adversary decisions (scheduling ⊎ object nondeterminism). A
// violation (any exception escaping the body) stops the search and is
// reported together with the decision string that produced it, so failures
// replay deterministically.
//
// For larger instances `RandomSweep` runs many seeded-random executions —
// the standard randomized analogue.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "subc/runtime/scheduler.hpp"

namespace subc {

/// Runs one complete execution of a freshly built world under `driver`.
/// Build everything inside (runtime, objects, processes), run it, then
/// validate — throw `SpecViolation` (or any exception) to flag a violation.
using ExecutionBody = std::function<void(ScheduleDriver& driver)>;

class Explorer {
 public:
  struct Options {
    /// Stop (incomplete) after this many executions.
    std::int64_t max_executions = 2'000'000;
  };

  struct Result {
    std::int64_t executions = 0;
    /// True when the decision tree was exhausted within the budget.
    bool complete = false;
    /// Set when an execution failed; `trace` replays it.
    std::optional<std::string> violation;
    std::vector<ReplayDriver::Decision> violating_trace;

    /// Convenience: true iff no violation was found.
    [[nodiscard]] bool ok() const noexcept { return !violation.has_value(); }
  };

  /// Exhaustively enumerates adversary decision strings (DFS).
  static Result explore(const ExecutionBody& body, Options opts);
  static Result explore(const ExecutionBody& body) {
    return explore(body, Options{});
  }

  /// Re-runs a single execution following `trace` (from a prior violation).
  static void replay(const ExecutionBody& body,
                     std::vector<ReplayDriver::Decision> trace);
};

/// Randomized sweep: `runs` executions with seeds `first_seed .. first_seed
/// + runs - 1`. Returns the first failing seed, or nullopt when all passed.
struct RandomSweep {
  struct Result {
    std::int64_t runs = 0;
    std::optional<std::uint64_t> failing_seed;
    std::optional<std::string> violation;

    [[nodiscard]] bool ok() const noexcept { return !failing_seed.has_value(); }
  };

  static Result run(const ExecutionBody& body, std::int64_t runs,
                    std::uint64_t first_seed = 1);
};

}  // namespace subc
