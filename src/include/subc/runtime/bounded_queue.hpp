// Bounded multi-producer/multi-consumer ring buffer (Vyukov's algorithm).
//
// Used by the parallel explorer to stream frontier work units from the
// enumerating thread to subtree workers instead of materializing the whole
// frontier up front: memory stays O(queue capacity × prefix depth) rather
// than O(subtrees × depth), and workers start exploring while enumeration is
// still running.
//
// Each cell carries a sequence number that encodes both its occupancy and
// the "lap" of the ring it belongs to, so push and pop are single-CAS
// operations with no shared locks. Operations never block: `try_push`
// returns false on a full ring (the explorer's producer then drains a unit
// itself — natural backpressure), `try_pop` returns false on an empty one
// (workers then park on a condition variable owned by the caller).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace subc {

template <class T>
class BoundedQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit BoundedQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues by move; false when the ring is full.
  bool try_push(T&& v) {
    Cell* cell = nullptr;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full: the cell still holds an unpopped lap
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(v);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Dequeues into `out`; false when the ring is empty.
  bool try_pop(T& out) {
    Cell* cell = nullptr;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // empty: the cell is still waiting for this lap's push
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->value = T{};  // drop payload promptly (prefixes can be large)
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy: racy by nature (producers and consumers move
  /// the cursors concurrently), exact once traffic quiesces. The sharded
  /// service samples this for inbox-occupancy telemetry; never use it to
  /// decide emptiness — that is what try_pop's return value is for.
  [[nodiscard]] std::size_t approx_size() const noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    return head >= tail ? head - tail : 0;
  }

  /// The rounded-up power-of-two capacity.
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace subc
