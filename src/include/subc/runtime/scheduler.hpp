// Schedule policies: the adversary.
//
// A `SchedulePolicy` makes three kinds of adversarial decisions during a
// simulated execution:
//  * scheduling — which enabled process takes the next atomic step,
//  * object nondeterminism — the choice a nondeterministic base object makes
//    inside a step (e.g. which element of its value set an (n,k)-set-
//    consensus object returns), and
//  * fault injection — which processes crash, and when (`crash_requests`;
//    most policies have no fault model and inherit the no-crash default —
//    the crash-adversary decorator in policy.hpp composes one over any
//    policy).
// All three are adversarial in the papers' model, so one policy object
// supplies them all. The exhaustive explorer (explorer.hpp) enumerates every
// decision string; this header provides the round-robin, seeded-random,
// scripted and replay policies, and policy.hpp adds the PCT randomized-
// priority and crash adversaries. Policies are pure deciders: what gets
// *recorded* about a run is the separate TraceObserver layer (observer.hpp),
// and `run_one` (explorer.hpp) is the entry point that wires a world, a
// policy and an observer chain together.
//
// Scheduling decisions carry *access footprints*: alongside the enabled pid
// list, the runtime passes the footprint of each enabled process's pending
// step ({object, kind}, announced at its `sched_point`). Footprints are pure
// metadata — they never change what a step does, only let the explorer's
// partial-order reduction recognise commuting steps (docs/explorer.md).
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <span>
#include <vector>

#include "subc/runtime/hashing.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// How a pending atomic step accesses its shared object. `kChoose` marks
/// steps that additionally resolve object nondeterminism via
/// `Context::choose` (set-consensus propose, set-election invoke); for
/// independence they behave like `kRmw`.
enum class AccessKind : std::uint8_t { kUnknown = 0, kRead, kWrite, kRmw, kChoose };

/// The access footprint of one pending atomic step: which shared object it
/// touches and how. `object == 0` means "unknown" — a step with no declared
/// footprint, conservatively treated as dependent with everything.
struct Access {
  std::uint32_t object = 0;
  AccessKind kind = AccessKind::kUnknown;
};

/// Mazurkiewicz independence of two steps, judged by footprint: steps on
/// distinct objects commute, and two reads of the same object commute.
/// Unknown footprints are dependent with everything (sound default).
[[nodiscard]] constexpr bool independent(Access a, Access b) noexcept {
  if (a.object == 0 || b.object == 0) {
    return false;
  }
  if (a.object != b.object) {
    return true;
  }
  return a.kind == AccessKind::kRead && b.kind == AccessKind::kRead;
}

/// Supplies adversarial decisions. `pick` selects an index into the enabled
/// set (never empty); `choose` resolves object nondeterminism with an
/// arbitrary arity; `crash_requests` injects failures.
class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;

  /// Returns an index into `enabled` (the pids currently able to step, in
  /// increasing pid order). `footprints`, when non-empty, is index-aligned
  /// with `enabled` and holds each pending step's access footprint; policies
  /// that do not inspect footprints simply ignore it.
  virtual std::size_t pick(std::span<const int> enabled,
                           std::span<const Access> footprints = {}) = 0;

  /// Returns a value in [0, arity). `arity >= 1`.
  virtual std::uint32_t choose(std::uint32_t arity) = 0;

  /// Fault injection: consulted by the kernel once per decision point,
  /// before `pick`, with the currently enabled pids. Returns a bitmask of
  /// pids to crash at this point (bit p = pid p; pids >= 64 cannot be
  /// targeted through this hook). Crashed pids are retired before the pick;
  /// crashing every enabled process simply ends the run. The default
  /// injects nothing — `CrashAdversary` (policy.hpp) composes a fault model
  /// over any policy.
  [[nodiscard]] virtual std::uint64_t crash_requests(
      std::span<const int> /*enabled*/) {
    return 0;
  }

  /// Crash-recovery: consulted by the kernel once per decision point,
  /// before `crash_requests`, with the currently *crashed* pids (increasing
  /// pid order) — but only when the policy declared the capability via
  /// `wants_recovery()` and at least one process is crashed. Returns a
  /// bitmask of pids to restart at this point (bit p = pid p; pids >= 64
  /// cannot be targeted). A restarted process re-enters its body from the
  /// top with fresh volatile state; durable object state persists
  /// (runtime.hpp `Durability`). The default injects nothing.
  [[nodiscard]] virtual std::uint64_t recovery_requests(
      std::span<const int> /*crashed*/) {
    return 0;
  }

  /// Recovery capability: when false (the default) the kernel never tracks
  /// crashed-pid sets or consults `recovery_requests`, so crash-stop worlds
  /// pay nothing and explore bit-identically to the pre-recovery kernel.
  [[nodiscard]] virtual bool wants_recovery() const { return false; }

  /// Called by `Runtime::run` before the first step of a world. Policies
  /// that keep per-world state (e.g. the replay policy's sleep sets) reset
  /// it here so one policy can soundly span several runtimes in one
  /// execution.
  virtual void begin_run() {}

  /// Stateful exploration capability: when true, the kernel accumulates an
  /// incremental world-state fingerprint and reports it through
  /// `on_state_fp` / `on_run_fp`. Off by default so non-stateful runs pay
  /// only one branch per kernel event for the whole machinery.
  [[nodiscard]] virtual bool wants_state_fp() const { return false; }

  /// Reported by the kernel at every scheduling decision point (before the
  /// crash branch point, so a cut covers the crash branching too), with the
  /// current world fingerprint. `valid` is false once any granted step made
  /// no fingerprint report (an unported object stepped): the execution's
  /// fingerprints are then meaningless and must drive no cuts.
  virtual void on_state_fp(std::uint64_t /*fp*/, bool /*valid*/) {}

  /// Reported by the kernel when a `Runtime::run` finishes, with the final
  /// world fingerprint. Lets a policy spanning several runtimes in one
  /// execution chain completed-runtime state into later probes.
  virtual void on_run_fp(std::uint64_t /*fp*/, bool /*valid*/) {}
};

/// Historical name for `SchedulePolicy`, kept so existing worlds and tests
/// read naturally; the two are the same type.
using ScheduleDriver = SchedulePolicy;

/// Cycles through processes in pid order; object choices always take
/// option 0. Deterministic; useful for smoke tests and benchmarks.
class RoundRobinDriver final : public SchedulePolicy {
 public:
  std::size_t pick(std::span<const int> enabled,
                   std::span<const Access> footprints = {}) override;
  std::uint32_t choose(std::uint32_t arity) override;

 private:
  int last_pid_ = -1;
};

/// Uniformly random scheduling and object choices from a seeded PRNG.
/// Identical seeds replay identical executions (given a deterministic
/// world), so failures are reproducible from the seed alone.
class RandomDriver final : public SchedulePolicy {
 public:
  explicit RandomDriver(std::uint64_t seed) : rng_(seed) {}

  std::size_t pick(std::span<const int> enabled,
                   std::span<const Access> footprints = {}) override;
  std::uint32_t choose(std::uint32_t arity) override;

 private:
  std::mt19937_64 rng_;
};

/// Follows a scripted pid sequence; when the scripted pid is not enabled (or
/// the script is exhausted) falls back to the lowest enabled pid. Object
/// choices take option 0. Used to drive the hand-constructed executions in
/// the papers' proofs (e.g. the w1/w2/w3 scenario before Algorithm 5).
class ScriptedDriver final : public SchedulePolicy {
 public:
  explicit ScriptedDriver(std::vector<int> pids) : pids_(std::move(pids)) {}

  std::size_t pick(std::span<const int> enabled,
                   std::span<const Access> footprints = {}) override;
  std::uint32_t choose(std::uint32_t arity) override;

 private:
  std::vector<int> pids_;
  std::size_t pos_ = 0;
};

/// Thrown by `ReplayDriver` when a fresh decision would exceed the
/// configured decision limit (`set_decision_limit`). Used by the parallel
/// explorer's frontier enumeration to cut executions at the partition depth.
/// Deliberately not derived from `std::exception` (like `FiberKilled`) so
/// that execution bodies catching `std::exception` cannot swallow it.
struct FrontierCut {};

/// Thrown by `ReplayDriver` when the prune hook rejects a freshly recorded
/// decision: the whole subtree below the current partial decision string is
/// abandoned. Not derived from `std::exception` for the same reason as
/// `FrontierCut`.
struct PruneCut {};

/// Thrown by `ReplayDriver` when sleep-set partial-order reduction proves
/// every continuation of the current partial execution equivalent to an
/// already-explored one (every enabled process is asleep): the subtree is
/// abandoned as redundant. Not derived from `std::exception` for the same
/// reason as `FrontierCut`.
struct SleepCut {};

/// Thrown by `ReplayDriver` when the per-execution step-quota watchdog
/// (`set_step_quota`) trips: the execution has consumed more scheduling
/// decisions than any terminating schedule of the world should need, i.e.
/// it is livelocked or runaway. The explorer converts it into a structured
/// `StuckExecution` diagnostic instead of hanging. Not derived from
/// `std::exception` for the same reason as `FrontierCut`.
struct StuckCut {};

/// Thrown by `ReplayDriver` in stateful mode when the kernel reports a
/// world fingerprint whose (state, sleep-set) pair is already in the
/// visited set: the subtree below the current partial execution reconverges
/// with an already-explored one and is abandoned. Like `SleepCut` it proves
/// redundancy rather than ending an execution, so the explorer counts it in
/// `Result::stateful_cuts` and charges no execution budget. Not derived
/// from `std::exception` for the same reason as `FrontierCut`.
struct StatefulCut {};

/// Replays a recorded decision prefix and extends it with first options;
/// records the arity of every decision point. This is the explorer's
/// workhorse (stateless model checking): see explorer.hpp.
///
/// Forced (arity-1) decisions are elided: they have exactly one outcome, so
/// recording them would only lengthen traces and slow backtracking. Traces
/// therefore contain only decisions with `arity >= 2`, and prefixes passed in
/// must use the same convention (any trace recorded by a ReplayDriver does).
///
/// With `set_reduction(true)` the driver additionally runs sleep-set
/// partial-order reduction over the access footprints the runtime supplies
/// to `pick`: scheduling options whose process is asleep (its pending step
/// provably commutes with an already-explored sibling branch) are skipped,
/// and partial executions with every enabled process asleep throw `SleepCut`.
/// The skip metadata (`Decision::enabled`, `Decision::sleep`) is recorded in
/// the trace so the explorer's backtracking applies identical skips.
class ReplayDriver final : public SchedulePolicy {
 public:
  struct Decision {
    std::uint32_t chosen = 0;
    std::uint32_t arity = 1;
    /// Scheduling decisions under reduction: bitmask of the enabled pids
    /// (option i = i-th set bit) and the sleep set inherited from the path
    /// above. Both 0 for object choices, for scheduling decisions recorded
    /// without reduction, and for any pid >= 64 (reduction disabled there).
    std::uint64_t enabled = 0;
    std::uint64_t sleep = 0;
    /// True for crash decisions (`crash_requests` branch points): option 0
    /// is "no crash", option i >= 1 crashes the i-th candidate victim. The
    /// flag travels with the trace so replay re-derives the fault without
    /// knowing the recording run's crash budget.
    bool crash = false;
    /// True for recovery decisions (`recovery_requests` branch points):
    /// option 0 is "no restart", option i >= 1 restarts the i-th candidate
    /// (crashed pids in increasing order). Travels with the trace exactly
    /// like `crash`, so replay re-derives the restart without knowing the
    /// recording run's recovery budget.
    bool recover = false;
  };

  /// Prune hook: given the partial decision string ending at a candidate
  /// decision, return true to skip the entire subtree below it. Must be
  /// thread-safe: the parallel explorer invokes it concurrently from worker
  /// threads.
  using PruneFn = std::function<bool(std::span<const Decision>)>;

  ReplayDriver() = default;
  explicit ReplayDriver(std::vector<Decision> prefix)
      : trace_(std::move(prefix)) {}

  std::size_t pick(std::span<const int> enabled,
                   std::span<const Access> footprints = {}) override;
  std::uint32_t choose(std::uint32_t arity) override;
  std::uint64_t crash_requests(std::span<const int> enabled) override;
  std::uint64_t recovery_requests(std::span<const int> crashed) override;
  void begin_run() override {
    sleep_ = 0;
    crashes_run_ = 0;
    crash_floor_ = 0;
    recoveries_run_ = 0;
    recovery_floor_ = 0;
  }
  [[nodiscard]] bool wants_state_fp() const override {
    return visited_ != nullptr;
  }
  /// Recovery is live when fresh restarts may be injected (budget set) *or*
  /// the replayed prefix contains a recorded restart — a trace with
  /// recoveries must replay bit-identically even under a zero budget (the
  /// shrinker's probes rely on this).
  [[nodiscard]] bool wants_recovery() const override {
    if (max_recoveries_ > 0) {
      return true;
    }
    for (const Decision& d : trace_) {
      if (d.recover) {
        return true;
      }
    }
    return false;
  }
  void on_state_fp(std::uint64_t fp, bool valid) override;
  void on_run_fp(std::uint64_t fp, bool valid) override;

  /// Full decision string of the execution driven so far.
  [[nodiscard]] const std::vector<Decision>& trace() const noexcept {
    return trace_;
  }

  /// Moves the recorded decision string out; the driver is spent afterwards.
  /// Lets the explorer recycle the trace as the next iteration's prefix
  /// without copying (millions of executions, one vector).
  [[nodiscard]] std::vector<Decision> take_trace() noexcept {
    return std::move(trace_);
  }

  /// Fresh decisions that would grow the trace beyond `limit` entries throw
  /// `FrontierCut` instead of being recorded (replayed prefix entries are
  /// unaffected). Default: no limit.
  void set_decision_limit(std::size_t limit) noexcept { limit_ = limit; }

  /// Consults `prune` on every freshly recorded decision; a true return
  /// throws `PruneCut`. The pointee must outlive the driver. Pass nullptr
  /// (the default) to disable.
  void set_prune(const PruneFn* prune) noexcept { prune_ = prune; }

  /// Enables sleep-set partial-order reduction for fresh scheduling
  /// decisions. Off by default (raw enumeration).
  void set_reduction(bool on) noexcept { reduce_ = on; }

  /// Makes crash failures a branch point: at every kernel decision point
  /// where fewer than `f` crashes have landed in the current run, the tree
  /// forks on "no crash" versus "crash candidate pid p" for every enabled
  /// pid < 64. 0 (the default) disables fresh crash decisions; recorded
  /// crash decisions in a replayed prefix are honored either way.
  void set_max_crashes(int f) noexcept { max_crashes_ = f; }

  /// Makes crash-recovery a branch point: at every kernel decision point
  /// where at least one process is crashed and fewer than `r` restarts have
  /// landed in the current run, the tree forks on "no restart" versus
  /// "restart crashed pid p" for every crashed pid < 64. 0 (the default)
  /// disables fresh recovery decisions; recorded recovery decisions in a
  /// replayed prefix are honored either way.
  void set_max_recoveries(int r) noexcept { max_recoveries_ = r; }

  /// Per-execution watchdog: after `quota` scheduling decisions (`pick`
  /// calls, replayed prefix included) the driver throws `StuckCut` — a
  /// livelocked or runaway schedule becomes a bounded, diagnosable event
  /// instead of a hang. 0 (the default) disables the quota.
  void set_step_quota(std::int64_t quota) noexcept { step_quota_ = quota; }

  /// Enables stateful exploration: at every *fresh* decision point (the
  /// replayed prefix never probes — restart-DFS revisits its own prefix
  /// states once per sibling, and cutting those would cut the search's own
  /// backbone) the kernel-reported world fingerprint is keyed with the
  /// current sleep set and checked against `set`; a hit throws
  /// `StatefulCut`. The pointee must outlive the driver and may be shared
  /// across threads. Pass nullptr (the default) to disable.
  void set_stateful(detail::VisitedSet* set) noexcept { visited_ = set; }

  /// Scheduling options skipped by the reduction so far (each is a subtree
  /// the search proved redundant and never entered).
  [[nodiscard]] std::int64_t reduced() const noexcept { return reduced_; }

  /// Crashes landed over the driver's lifetime (all runs of the execution).
  [[nodiscard]] std::int64_t crashes() const noexcept { return crashes_total_; }

  /// Restarts landed over the driver's lifetime (all runs of the execution).
  [[nodiscard]] std::int64_t recoveries() const noexcept {
    return recoveries_total_;
  }

 private:
  std::uint32_t next_choice(std::uint32_t arity);

  std::vector<Decision> trace_;
  std::size_t pos_ = 0;
  std::size_t limit_ = static_cast<std::size_t>(-1);
  const PruneFn* prune_ = nullptr;
  bool reduce_ = false;
  std::uint64_t sleep_ = 0;
  std::int64_t reduced_ = 0;
  int max_crashes_ = 0;
  int crashes_run_ = 0;         ///< crashes landed in the current run
  std::int64_t crashes_total_ = 0;
  /// Successive crash decisions at one kernel decision point enumerate
  /// victims in increasing pid order (crashes at the same point commute, so
  /// unordered subsets would be explored twice). The floor is the pid after
  /// the last victim; any granted step resets it.
  int crash_floor_ = 0;
  int max_recoveries_ = 0;
  int recoveries_run_ = 0;  ///< restarts landed in the current run
  std::int64_t recoveries_total_ = 0;
  /// As crash_floor_, for recovery decisions: restarts at one decision
  /// point enumerate candidates in increasing pid order.
  int recovery_floor_ = 0;
  std::int64_t step_quota_ = 0;
  std::int64_t steps_ = 0;
  detail::VisitedSet* visited_ = nullptr;
  /// Chained final fingerprints of completed runtimes in this execution,
  /// so probes in a later runtime are keyed on the whole execution's state.
  std::uint64_t base_fp_ = 0;
  bool base_fp_valid_ = true;
};

/// Renders a decision string for diagnostics ("2/3 0/2 1/4 ...").
std::string format_trace(std::span<const ReplayDriver::Decision> trace);

}  // namespace subc
