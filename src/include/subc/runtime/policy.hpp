// Adversarial schedule policies beyond the basics in scheduler.hpp.
//
//  * `PctPolicy` — the randomized-priority scheduler of Burckhardt et al.
//    ("A Randomized Scheduler with Probabilistic Guarantees of Finding
//    Bugs", ASPLOS 2010). For a run of length at most k with at most n
//    processes and a bug of depth d, one seeded run finds the bug with
//    probability >= 1/(n * k^(d-1)) — far better than uniform random
//    scheduling at flushing rare interleavings, which needs the adversary
//    to win a coin flip at *every* step rather than at d-1 of them.
//  * `DelayBoundedPolicy` — the delay-bounded scheduler of Emmi, Qadeer
//    and Rakamarić ("Delay-Bounded Scheduling", POPL 2011): a deterministic
//    round-robin base schedule perturbed by at most d adversarial delays,
//    each of which skips the process the base schedule would have run.
//    The schedule space grows polynomially in d, so small delay budgets
//    cover "almost-deterministic" bug patterns cheaply.
//  * `CrashAdversary` — a decorator composing a crash-failure model over
//    any policy: up to f processes die at adversary-chosen points, either
//    from an explicit plan ("kill pid 2 after its 5th step") or at seeded-
//    random decision points. Replaces the one-off crash harness that tests
//    previously hand-rolled against the kernel.
//  * `RecordingPolicy` — a transparent decorator journaling every decision
//    (grants, object choices, crashes) so two runs can be compared for
//    bit-identical behaviour; this is how the seed-determinism tests pin
//    RandomDriver and PctPolicy.
//
// docs/adversaries.md catalogues every policy with its guarantees.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "subc/runtime/scheduler.hpp"

namespace subc {

/// PCT: each process gets a random distinct priority; the highest-priority
/// enabled process always runs. At `depth - 1` step indices drawn uniformly
/// from [0, horizon), the currently running process's priority drops below
/// every initial priority — those are the "priority change points" that give
/// the depth-d probabilistic guarantee. Object choices are uniform from the
/// same seeded PRNG. Fully deterministic given (seed, depth, horizon);
/// `begin_run` re-derives everything from the seed, so one policy object
/// replays the identical schedule across consecutive runs.
class PctPolicy final : public SchedulePolicy {
 public:
  /// `depth >= 1` (d=1 is pure priority scheduling, no change points);
  /// `horizon` is the assumed maximum run length k used to place change
  /// points — runs longer than `horizon` see no further changes.
  PctPolicy(std::uint64_t seed, int depth, std::int64_t horizon);

  std::size_t pick(std::span<const int> enabled,
                   std::span<const Access> footprints = {}) override;
  std::uint32_t choose(std::uint32_t arity) override;
  void begin_run() override;

 private:
  [[nodiscard]] std::int64_t priority_of(int pid);

  std::uint64_t seed_;
  int depth_;
  std::int64_t horizon_;
  std::mt19937_64 rng_;
  /// pid -> priority; higher runs first. Initial priorities are drawn
  /// lazily (the policy does not know the process count up front) from
  /// [depth, 2^62); change point i lowers the running process to i.
  std::vector<std::int64_t> priorities_;
  std::vector<std::int64_t> change_points_;  ///< sorted step indices
  std::int64_t step_ = 0;
  int next_change_ = 0;
};

/// Delay-bounded scheduling (Emmi et al., POPL 2011): the base schedule is
/// round-robin over pids (the enabled process cyclically after the last
/// granted one), and the adversary holds a budget of `delays` delay
/// operations. Each delay fires at a seeded-random global step index in
/// [0, horizon) and skips the process the base schedule was about to grant,
/// advancing to the next enabled one in cyclic order (several delays can
/// land on the same step, skipping several processes). With `delays == 0`
/// this is exactly round-robin; every extra unit of budget multiplies the
/// schedule space by O(horizon), so coverage grows polynomially rather than
/// exponentially — the sweet spot between `RoundRobinDriver` determinism and
/// PCT. Object choices are uniform from the same seeded PRNG. Fully
/// deterministic given (seed, delays, horizon); `begin_run` re-derives
/// everything from the seed, so one policy object replays the identical
/// schedule across consecutive runs.
class DelayBoundedPolicy final : public SchedulePolicy {
 public:
  /// `delays >= 0`; `horizon >= 1` is the assumed maximum run length used
  /// to place delay points — runs longer than `horizon` see no further
  /// delays.
  DelayBoundedPolicy(std::uint64_t seed, int delays, std::int64_t horizon);

  std::size_t pick(std::span<const int> enabled,
                   std::span<const Access> footprints = {}) override;
  std::uint32_t choose(std::uint32_t arity) override;
  void begin_run() override;

  /// Delays spent in the current (or last) run; <= the `delays` budget.
  [[nodiscard]] int delays_used() const noexcept { return delays_used_; }

 private:
  std::uint64_t seed_;
  int delays_;
  std::int64_t horizon_;
  std::mt19937_64 rng_;
  std::vector<std::int64_t> delay_points_;  ///< sorted step indices
  std::size_t next_delay_ = 0;
  std::int64_t step_ = 0;
  int last_pid_ = -1;  ///< pid granted the previous step (round-robin state)
  int delays_used_ = 0;
};

/// Crash-failure adversary over an arbitrary inner policy. Scheduling and
/// object choices are delegated; the decorator only answers
/// `crash_requests` (injecting at most `f` crashes per run) and, when a
/// restart model is attached, `recovery_requests` (restarting crashed
/// processes at adversary-chosen later points).
///
/// Two fault models:
///  * a targeted plan — `CrashPoint{victim, after_steps}` kills `victim`
///    once it has been granted `after_steps` steps (the decorator counts
///    grants itself by watching which pid its forwarded `pick` selects);
///  * seeded random — at every decision point each enabled process is
///    killed with probability `crash_prob`, until `f` crashes have landed.
/// The two compose: plan entries fire first, random crashes use whatever
/// budget remains.
///
/// The restart model mirrors the crash model:
///  * a targeted restart plan — `RecoveryPoint{victim, after_steps}`
///    restarts `victim` once the *global* grant count has reached
///    `after_steps` (the victim itself takes no steps while crashed, so the
///    trigger counts everybody's grants) and the victim is actually
///    crashed;
///  * seeded random — each crashed process restarts with probability
///    `recover_prob` at each decision point, until `max_recoveries` have
///    landed (set via `set_random_recovery`).
class CrashAdversary final : public SchedulePolicy {
 public:
  struct CrashPoint {
    int victim = -1;
    std::int64_t after_steps = 0;  ///< crash once victim has taken this many
  };

  /// A planned restart: once the global grant count reaches `after_steps`
  /// and `victim` is crashed, request its recovery. An entry whose victim
  /// never crashes simply stays armed and never fires.
  struct RecoveryPoint {
    int victim = -1;
    std::int64_t after_steps = 0;  ///< fire once this many total grants
  };

  /// Plan-only adversary: crashes exactly the planned points (bounded by f =
  /// plan size). The plan is validated up front — a victim outside [0, 64),
  /// a negative `after_steps`, or a duplicate victim raises `SimError`
  /// naming the offending entry.
  CrashAdversary(SchedulePolicy& inner, std::vector<CrashPoint> plan);

  /// Plan-only adversary with an explicit resilience bound: as above, and
  /// additionally rejects plans with more than `f` entries (a t-resilient
  /// claim is only exercised faithfully when the adversary stays within the
  /// model's crash budget).
  CrashAdversary(SchedulePolicy& inner, std::vector<CrashPoint> plan, int f);

  /// Random adversary: up to `f` crashes, each enabled process dying with
  /// probability `crash_prob` at each decision point.
  CrashAdversary(SchedulePolicy& inner, std::uint64_t seed, int f,
                 double crash_prob);

  std::size_t pick(std::span<const int> enabled,
                   std::span<const Access> footprints = {}) override;
  std::uint32_t choose(std::uint32_t arity) override;
  std::uint64_t crash_requests(std::span<const int> enabled) override;
  std::uint64_t recovery_requests(std::span<const int> crashed) override;
  [[nodiscard]] bool wants_recovery() const override;
  void begin_run() override;

  /// Attaches a targeted restart plan. Validated with the same rigor as the
  /// crash plan: a victim outside [0, 64), a negative `after_steps`, or a
  /// duplicate victim raises `SimError` naming the offending entry.
  void set_recovery_plan(std::vector<RecoveryPoint> plan);

  /// Attaches the seeded-random restart model: each crashed process
  /// restarts with probability `recover_prob` at each decision point, until
  /// `max_recoveries` restarts have landed. `max_recoveries >= 0`;
  /// `recover_prob` in [0, 1]. Draws from the adversary's own PRNG stream
  /// (seeded by `seed`), independent of the crash stream.
  void set_random_recovery(std::uint64_t seed, int max_recoveries,
                           double recover_prob);

  /// Crashes injected in the current (or last) run.
  [[nodiscard]] int crashes_injected() const noexcept { return injected_; }

  /// Recoveries injected in the current (or last) run.
  [[nodiscard]] int recoveries_injected() const noexcept {
    return recoveries_injected_;
  }

 private:
  SchedulePolicy* inner_;
  std::vector<CrashPoint> plan_;
  std::vector<bool> fired_;      ///< per plan entry
  std::vector<std::int64_t> grants_;  ///< pid -> steps granted so far
  std::int64_t total_grants_ = 0;     ///< all grants (recovery plan clock)
  std::uint64_t seed_ = 0;
  std::mt19937_64 rng_;
  int budget_ = 0;  ///< f
  double crash_prob_ = 0.0;
  bool random_mode_ = false;
  int injected_ = 0;
  std::vector<RecoveryPoint> recovery_plan_;
  std::vector<bool> recovery_fired_;  ///< per recovery plan entry
  std::uint64_t recovery_seed_ = 0;
  std::mt19937_64 recovery_rng_;
  int recovery_budget_ = 0;  ///< max restarts per run (random mode)
  double recover_prob_ = 0.0;
  bool random_recovery_ = false;
  int recoveries_injected_ = 0;
};

/// Transparent decorator journaling every decision the inner policy makes.
/// Attaching it never changes behaviour; `journal()` is the evidence. Used
/// by the seed-determinism tests ("same seed => bit-identical decisions").
class RecordingPolicy final : public SchedulePolicy {
 public:
  struct Event {
    enum class Kind : std::uint8_t { kGrant, kChoose, kCrash, kRecover };
    Kind kind = Kind::kGrant;
    /// kGrant: the granted pid. kChoose: the chosen option. kCrash: the
    /// crashed pid. kRecover: the recovered pid.
    std::int64_t a = 0;
    /// kGrant: number of enabled pids. kChoose: the arity. kCrash/kRecover:
    /// 0.
    std::int64_t b = 0;

    friend bool operator==(const Event&, const Event&) = default;
  };

  explicit RecordingPolicy(SchedulePolicy& inner) : inner_(&inner) {}

  std::size_t pick(std::span<const int> enabled,
                   std::span<const Access> footprints = {}) override;
  std::uint32_t choose(std::uint32_t arity) override;
  std::uint64_t crash_requests(std::span<const int> enabled) override;
  std::uint64_t recovery_requests(std::span<const int> crashed) override;
  [[nodiscard]] bool wants_recovery() const override {
    return inner_->wants_recovery();
  }
  void begin_run() override;

  [[nodiscard]] const std::vector<Event>& journal() const noexcept {
    return journal_;
  }
  /// Clears the journal (e.g. between the two runs of a determinism test).
  /// Deliberately not done by `begin_run`: one execution body may drive
  /// several consecutive runtimes, and the journal must span them all.
  void reset() { journal_.clear(); }
  /// Renders the journal as one line ("g0/3 c1/2 x2 r2 ...") for
  /// diagnostics and golden comparisons.
  [[nodiscard]] std::string format_journal() const;

 private:
  SchedulePolicy* inner_;
  std::vector<Event> journal_;
};

}  // namespace subc
