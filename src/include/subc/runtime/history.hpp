// Operation histories of *implemented* (derived) objects.
//
// Base objects are atomic by construction, so only implemented objects (e.g.
// the 1sWRN_k built by Algorithm 5 from strong set election, registers and
// snapshots) need linearizability checking. Algorithm wrappers record each
// high-level operation's invocation and response here; the checker
// (subc/checking/linearizability.hpp) then searches for a legal sequential
// ordering. Timestamps come from the recording order, which equals real-time
// order because the simulation is single-threaded.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "subc/runtime/value.hpp"

namespace subc {

class TraceObserver;

/// One completed (or pending) high-level operation. `op` and `response` are
/// small value tuples; their meaning is fixed by the sequential spec the
/// history is checked against.
struct HistoryEntry {
  int pid = -1;
  std::vector<Value> op;        ///< operation name/arguments, spec-defined
  std::vector<Value> response;  ///< empty while pending
  std::int64_t invoked_at = -1;
  std::int64_t responded_at = -1;  ///< -1 while pending

  [[nodiscard]] bool pending() const noexcept { return responded_at < 0; }
};

/// Append-only record of high-level operations.
///
/// Entry op/response buffers are recycled through a thread-local pool (the
/// destructor and `clear()` return them), so a history that is filled and
/// torn down once per execution stops allocating in steady state.
class History {
 public:
  History() = default;
  ~History();

  History(const History&) = default;
  History& operator=(const History&) = default;
  History(History&&) = default;
  History& operator=(History&&) = default;

  /// Opens an operation; returns its handle. The values are copied.
  std::size_t invoke(int pid, std::span<const Value> op);
  std::size_t invoke(int pid, std::initializer_list<Value> op) {
    return invoke(pid, std::span<const Value>(op.begin(), op.size()));
  }

  /// Closes operation `handle` with its response. The values are copied.
  void respond(std::size_t handle, std::span<const Value> response);
  void respond(std::size_t handle, std::initializer_list<Value> response) {
    respond(handle, std::span<const Value>(response.begin(), response.size()));
  }

  /// Forgets all entries (returning their buffers to the pool) and rewinds
  /// the clock — the recycling alternative to destroying the History.
  void clear();

  [[nodiscard]] const std::vector<HistoryEntry>& entries() const noexcept {
    return entries_;
  }

  /// Number of completed operations.
  [[nodiscard]] std::size_t completed() const noexcept;

  /// Human-readable dump (one line per entry) for failure diagnostics.
  [[nodiscard]] std::string dump() const;

  /// Streams every subsequent invoke/respond to `sink` (observer.hpp) as
  /// on_invoke/on_respond events; nullptr disconnects. Wiring is explicit —
  /// a History never adopts the thread-default observer, so observer-owned
  /// mirrors (HistoryRecorder) cannot feed back into themselves.
  void set_sink(TraceObserver* sink) noexcept { sink_ = sink; }

  /// Appends a fully-formed entry with its original timestamps, advancing
  /// the clock past them. For reconstructing a history from an exported
  /// trace (checking/trace_jsonl.hpp); not forwarded to the sink. Returns
  /// the entry's handle.
  std::size_t restore(HistoryEntry entry);

  /// Replaces the entry at `handle` (same trace-reconstruction use as
  /// `restore`, for completing a previously restored pending entry). Also
  /// advances the clock past the entry's timestamps; not forwarded to the
  /// sink.
  void amend(std::size_t handle, HistoryEntry entry);

 private:
  std::vector<HistoryEntry> entries_;
  std::int64_t clock_ = 0;
  TraceObserver* sink_ = nullptr;
};

}  // namespace subc
