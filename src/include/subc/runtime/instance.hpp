// The instance layer: many logical agreement instances over one arena.
//
// A `Runtime` is one simulated world — one process set, one schedule, one
// history. Production traffic has the opposite shape: one process serving
// thousands of concurrent *logical instances* (a consensus round, a 1sWRN
// round, a set-consensus decision), each with its own tiny object state,
// its own operation history, and its own lifecycle (open → decided → GC).
// The `InstanceTable` provides that layer. It sits *beside* the Runtime,
// not inside it: both consume the same object cores (`one_shot_wrn_commit`,
// `gac_propose`, `set_consensus_propose` — objects/), which take an
// explicit state-block pointer and a context template parameter, so the
// exact same commit body runs
//   * inside a simulated world (Context / StepContext, exploration), and
//   * against an InstanceTable block (InstanceOpContext, service traffic).
//
// Memory: instance state blocks are carved from the table's `ArenaLease`
// (runtime/arena.hpp) and recycled through a free list on GC — a
// long-running service churning millions of instances reuses a bounded set
// of blocks instead of growing the arena monotonically. Telemetry lands in
// `alloc_counters()` (`instance_blocks_carved` / `instance_block_reuses`).
//
// Fingerprint domains: every instance owns the domain term
// `fp_instance_domain(id) = mix64(id ^ kFpInstanceSalt)` (hashing.hpp).
// Operation effects fold into a per-instance *local* fingerprint (identical
// local histories ⇒ identical local fingerprints — that is what audits
// compare); `world_fingerprint` additionally folds the domain term, so two
// instances with identical local histories can never alias in a shared
// memo or visited set. docs/explorer.md "Multi-instance runtime".
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "subc/objects/onk.hpp"
#include "subc/objects/set_consensus_object.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/arena.hpp"
#include "subc/runtime/hashing.hpp"
#include "subc/runtime/history.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Identity of one logical instance: 64-bit, dense, assigned by the table
/// in open order, never reused (so a stale id reliably misses).
using InstanceId = std::uint64_t;

/// Which object core an instance runs.
enum class InstanceKind : std::uint8_t { kOneShotWrn, kGac, kSetConsensus };

[[nodiscard]] const char* to_string(InstanceKind kind) noexcept;

/// Lifecycle phase. GC removes the block entirely, so there is no third
/// phase — a reclaimed id is simply absent from the table.
enum class InstancePhase : std::uint8_t { kOpen, kDecided };

/// One logical instance: object state for every kind (exactly one is live,
/// per `kind` — one block shape keeps the free list homogeneous), a
/// per-instance history segment, and the fingerprint accumulators.
struct InstanceBlock {
  InstanceId id = 0;
  InstanceKind kind = InstanceKind::kOneShotWrn;
  InstancePhase phase = InstancePhase::kOpen;

  /// Domain term: fp_instance_domain(id).
  std::uint64_t fp_domain = 0;
  /// Running fold of operation effects (observe/commit reports), domain-free.
  std::uint64_t fp_local = 0;

  /// Per-instance history segment: ops recorded exactly as the matching
  /// sequential spec encodes them (1sWRN: op = {index, value}, response =
  /// {returned}), so a decided instance's segment feeds straight into the
  /// linearizability checker.
  History history;

  /// Object identity for `commit_fp` reports made through this block.
  ObjectId oid;

  OneShotWrnState wrn;
  GacState gac;
  SetConsensusState setc;

  std::int64_t opened_at = 0;
  std::int64_t decided_at = -1;
};

/// Minimal context for driving the object cores against an InstanceBlock
/// outside any simulated world. Exposes the same surface the cores consume
/// from `Context`/`StepContext` (fingerprinting / observe_fp / commit_fp /
/// choose / hang / decide / pid), with service semantics:
///  * fingerprint reports fold into the block's local fingerprint,
///  * `choose` resolves nondeterminism from a splitmix64 stream seeded per
///    operation (deterministic given the seed),
///  * `hang` records the flag and returns — the service turns an illegal
///    invocation into a structured per-op outcome instead of a stuck fiber.
class InstanceOpContext {
 public:
  InstanceOpContext(InstanceBlock* block, std::uint64_t choice_seed,
                    int pid) noexcept
      : block_(block), rng_(choice_seed), pid_(pid) {}

  [[nodiscard]] int pid() const noexcept { return pid_; }
  [[nodiscard]] bool fingerprinting() const noexcept { return true; }

  void observe_fp(std::uint64_t v) noexcept {
    block_->fp_local =
        detail::mix64(block_->fp_local ^ detail::kFpObserveSalt ^ v);
  }
  void commit_fp(const ObjectId& /*obj*/, std::uint64_t state_hash) noexcept {
    block_->fp_local =
        detail::mix64(block_->fp_local ^ detail::kFpObjectSalt ^ state_hash);
  }

  std::uint32_t choose(std::uint32_t arity) {
    if (arity == 0) {
      throw SimError("choose(0) has no options");
    }
    rng_ = detail::mix64(rng_);
    return static_cast<std::uint32_t>(rng_ % arity);
  }

  void hang() noexcept { hung_ = true; }
  [[nodiscard]] bool hung() const noexcept { return hung_; }

  void decide(Value v) noexcept { decided_ = v; }
  [[nodiscard]] Value decided() const noexcept { return decided_; }

 private:
  InstanceBlock* block_;
  std::uint64_t rng_;
  int pid_;
  bool hung_ = false;
  Value decided_ = kBottom;
};

/// The table of live instances: open/apply/decide/GC lifecycle over
/// arena-carved, free-list-recycled blocks. Not thread-safe — one table per
/// service shard (the sharding story runs one table per worker, exactly
/// like one Runtime per explorer worker today).
class InstanceTable {
 public:
  struct Stats {
    std::int64_t opened = 0;    ///< instances ever opened
    std::int64_t decided = 0;   ///< instances marked decided
    std::int64_t gcd = 0;       ///< instances reclaimed
    std::int64_t live = 0;      ///< currently in the table (open or decided)
    std::int64_t peak_live = 0;
    std::int64_t blocks_carved = 0;  ///< fresh arena carves
    std::int64_t block_reuses = 0;   ///< opens served from the free list
    std::int64_t ops = 0;            ///< core applications through `apply`
  };

  InstanceTable() = default;
  ~InstanceTable();

  InstanceTable(const InstanceTable&) = delete;
  InstanceTable& operator=(const InstanceTable&) = delete;

  /// Throws SimError when (kind, a, b) is not a valid instance shape. The
  /// sharded service calls this client-side so a malformed open request
  /// fails at the submitting thread, never inside a shard worker.
  static void validate_open(InstanceKind kind, int a, int b);

  /// Opens a fresh instance of `kind` at virtual time `now`.
  /// Parameter meaning per kind:
  ///   kOneShotWrn:   a = k (slot count), b ignored
  ///   kGac:          a = n, b = i (level)
  ///   kSetConsensus: a = n, b = k
  InstanceId open(InstanceKind kind, int a, int b = 0, std::int64_t now = 0);

  /// As `open`, but under a caller-assigned id. The sharded service assigns
  /// ids from one process-wide counter so `mix64(id)` routing is stable and
  /// fingerprint domains never alias across shard tables; each table then
  /// hosts a sparse slice of the id space. Throws when `id` is 0 or already
  /// live in this table. Mixing with auto-id `open` stays safe: the
  /// auto-assign cursor is bumped past every assigned id.
  InstanceId open_assigned(InstanceId id, InstanceKind kind, int a, int b = 0,
                           std::int64_t now = 0);

  /// Looks an instance up; nullptr when absent (never opened, or GC'd).
  [[nodiscard]] InstanceBlock* find(InstanceId id) noexcept;
  [[nodiscard]] const InstanceBlock* find(InstanceId id) const noexcept;

  /// As `find`, but throws SimError naming the id when absent.
  InstanceBlock& at(InstanceId id);

  /// Applies one operation through the instance's object core, recording it
  /// in the per-instance history segment and folding its effects into the
  /// local fingerprint. `slot` is the 1sWRN index (ignored by the other
  /// kinds); `choice_seed` feeds the core's `choose` stream. Returns the
  /// operation's response, or ⊥ with `*hung = true` when the core hung
  /// (capacity exceeded / index reuse) — the history records no response
  /// for a hung op, mirroring a forever-pending invocation.
  Value apply(InstanceId id, int pid, int slot, Value v,
              std::uint64_t choice_seed, bool* hung);

  /// Marks an instance decided at virtual time `now` (idempotent; throws on
  /// an absent id). The block stays in the table — auditable — until GC.
  void decide(InstanceId id, std::int64_t now);

  /// Reclaims one instance: clears its history, returns the block to the
  /// free list. Decided or not — a service also GCs timed-out instances
  /// that never reached quorum. Returns false when the id is absent.
  bool gc(InstanceId id);

  /// Reclaims every decided instance with decided_at <= `decided_before`;
  /// returns how many were reclaimed.
  std::size_t gc_decided(std::int64_t decided_before);

  /// Local fingerprint: the fold of the instance's operation effects.
  /// Identical op sequences ⇒ identical local fingerprints.
  [[nodiscard]] std::uint64_t local_fingerprint(InstanceId id);

  /// World fingerprint: the local fingerprint folded with the instance's
  /// domain term. Never aliases across instances, even for identical local
  /// histories (tests/instance_table_test.cpp pins this).
  [[nodiscard]] std::uint64_t world_fingerprint(InstanceId id);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  InstanceBlock* acquire_block();

  ArenaLease arena_;
  std::unordered_map<InstanceId, InstanceBlock*> live_;
  std::vector<InstanceBlock*> free_;
  /// Every block ever carved (for destructor runs at teardown — the arena
  /// does not destruct what it hands out).
  std::vector<InstanceBlock*> carved_;
  InstanceId next_id_ = 1;
  Stats stats_;
};

}  // namespace subc
