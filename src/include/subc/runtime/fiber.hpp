// Cooperative fibers: the execution vehicle for simulated processes.
//
// Each simulated process runs on its own fiber (a private stack switched to
// in userspace). Exactly one fiber runs at a time; the simulation kernel resumes a
// fiber to let it take one atomic step and the fiber yields back before its
// next shared-memory operation (DESIGN.md §3). Abandoned fibers (crashed or
// hung processes, or explorer backtracking) are kill-unwound so that RAII
// state on their stacks is reclaimed.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

// Internal: first-entry point for the userspace context switch on x86-64
// (defined in fiber.cpp; never called directly).
extern "C" void subc_fiber_asm_entry(void* fiber);

namespace subc {

/// Thrown through a suspended fiber's stack by `Fiber::kill()` to unwind it.
/// Deliberately not derived from `std::exception`: process code that catches
/// `std::exception` (or anything else by type) will not swallow it, and the
/// fiber trampoline catches it explicitly.
struct FiberKilled {};

/// A one-shot cooperative fiber.
///
/// Lifecycle: construct with an entry function; `resume()` runs the fiber
/// until it calls `Fiber::yield()` or its entry returns; `finished()` reports
/// completion. Destroying (or `kill()`ing) a suspended fiber resumes it one
/// last time with a pending `FiberKilled`, unwinding its stack.
class Fiber {
 public:
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  explicit Fiber(std::function<void()> entry,
                 std::size_t stack_bytes = kDefaultStackBytes);

  /// Allocation-free entry variant for hot callers (the kernel constructs
  /// one fiber per simulated process per execution): a plain function
  /// pointer plus context, no `std::function` wrapper to heap-allocate.
  Fiber(void (*entry)(void*), void* arg,
        std::size_t stack_bytes = kDefaultStackBytes);

  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  Fiber(Fiber&&) = delete;
  Fiber& operator=(Fiber&&) = delete;

  /// Runs the fiber until its next yield or until it finishes. Must be
  /// called from outside the fiber. Rethrows any exception that escaped the
  /// fiber's entry function.
  void resume();

  /// True once the entry function has returned (or the fiber was unwound).
  [[nodiscard]] bool finished() const noexcept;

  /// Unwinds a suspended fiber by resuming it with a pending `FiberKilled`.
  /// No-op on a finished or never-started fiber. Exceptions thrown by
  /// destructors during unwinding are dropped (kill is a last resort).
  void kill() noexcept;

  /// Suspends the currently running fiber, returning control to its resumer.
  /// Must be called from inside a fiber. Throws `FiberKilled` when the fiber
  /// is being unwound.
  static void yield();

 private:
  struct Impl;
  static void trampoline(unsigned hi, unsigned lo);
  friend void ::subc_fiber_asm_entry(void* fiber);

  std::unique_ptr<Impl> impl_;
};

}  // namespace subc
