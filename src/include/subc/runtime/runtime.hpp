// The asynchronous shared-memory simulation kernel.
//
// A `Runtime` owns a set of simulated processes and drives them one atomic
// step at a time under the control of a `SchedulePolicy`. Shared objects
// (src/objects/) mark the boundary of each atomic operation by calling
// `Context::sched_point()` immediately before the operation body; since
// exactly one process runs at a time, the body executes atomically and the
// interleaving granularity is exactly one shared-memory step, as in the
// papers' model (DESIGN.md §3).
//
// Two execution engines host processes, freely mixed within one world
// (docs/explorer.md "Execution engines"):
//  * fibers (Engine::kFiber, the general form) — the body is an ordinary
//    function running on a private stack; `sched_point` suspends it with a
//    userspace context switch;
//  * stepped (Engine::kStepped) — the body is an explicit resumable state
//    machine (runtime/stepper.hpp) whose suspension points return control to
//    the kernel by plain function return, paying no stack switch and no
//    fiber-stack allocation. State blocks are tiny and arena-carved.
// Both engines announce footprints, honor crash/hang semantics, and drive
// the schedule policy identically, so a world produces bit-identical traces
// and explorer verdicts whichever engine hosts its processes
// (tests/equivalence_pin_test.cpp).
//
// The kernel sits between two orthogonal layers: the policy (scheduler.hpp,
// policy.hpp) *decides* — which process steps, what nondeterministic objects
// return, who crashes — and the observer (observer.hpp) *records* — one
// event per grant, choice, crash and run boundary. Neither layer can see or
// influence the other except through the kernel.
//
// Progress/termination semantics:
//  * `done`    — the process function returned.
//  * `crashed` — the adversary stopped scheduling the process (models a
//                non-participating or failed process).
//  * `hung`    — the process invoked an operation that "hangs the system in
//                a manner that cannot be detected" (set-consensus objects
//                past their n-th propose, illegal 1sWRN reuse).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "subc/runtime/arena.hpp"
#include "subc/runtime/scheduler.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

class Runtime;
class Fiber;
class StepContext;
class TraceObserver;

/// Kernel-assigned identity of one shared object, used only for access
/// footprints (scheduler.hpp). Ids are assigned lazily — per runtime, in
/// first-`sched_point` order — so they are deterministic given the decision
/// prefix and recorded traces replay with identical footprints.
///
/// Copying an object creates a *distinct* object (the copy starts with no
/// id; e.g. RegisterArray stamps elements from a prototype register), while
/// moving preserves identity (containers may relocate an object mid-run).
/// Id collisions across runtimes sharing one driver only ever merge two
/// objects' footprints, i.e. add dependence — sound for the reduction.
class ObjectId {
 public:
  ObjectId() = default;
  ObjectId(const ObjectId& /*other*/) noexcept {}
  ObjectId& operator=(const ObjectId& /*other*/) noexcept { return *this; }
  ObjectId(ObjectId&& other) noexcept : id_(other.id_) { other.id_ = 0; }
  ObjectId& operator=(ObjectId&& other) noexcept {
    id_ = other.id_;
    other.id_ = 0;
    return *this;
  }

 private:
  friend class Context;
  friend class StepContext;
  friend class Runtime;
  mutable std::uint32_t id_ = 0;  // 0 = not yet assigned
};

/// Whether a shared object's state survives a crash event (crash-recovery
/// exploration, docs/adversaries.md). `kDurable` (the default everywhere)
/// models persistent memory: state is untouched by crashes, which is also
/// exactly the crash-*stop* behavior every pre-recovery world had.
/// `kVolatile` models state lost in the crash: the object registers a reset
/// hook with the runtime on first use, and every crash event reverts it to
/// its initial value (re-publishing the reset state hash into the world
/// fingerprint so stateful cuts stay sound). A volatile object must not be
/// relocated after its first operation — the hook captures its address.
enum class Durability : std::uint8_t { kDurable, kVolatile };

/// Per-process handle passed to process functions; the only way process code
/// interacts with the kernel.
class Context {
 public:
  /// This process's identifier (0-based, dense).
  [[nodiscard]] int pid() const noexcept { return pid_; }

  /// Marks the boundary of the next atomic operation: suspends the process
  /// until the scheduler grants it a step. Called by shared objects, not by
  /// algorithm code. This overload declares no footprint — the pending step
  /// is treated as dependent with everything (always sound).
  void sched_point();

  /// As above, additionally declaring the pending step's access footprint:
  /// it touches `obj` (assigning its id on first use) as a `kind` access.
  /// Footprints are pure metadata consumed by the explorer's partial-order
  /// reduction; they never alter execution semantics (docs/MODEL.md).
  void sched_point(const ObjectId& obj, AccessKind kind);

  /// Resolves object nondeterminism adversarially: returns a driver-chosen
  /// value in [0, arity). Must be called inside an atomic step.
  std::uint32_t choose(std::uint32_t arity);

  /// Records this process's task output. At most one decision per process.
  void decide(Value v);

  /// Hangs the process undetectably: it takes no further steps and is not
  /// reported as done. Never returns (unwinds when the world is torn down).
  [[noreturn]] void hang();

  /// True when the driver asked for world-state fingerprints (stateful
  /// exploration). Objects use it to skip state-hash computation — and the
  /// report calls below — on the non-stateful hot path.
  [[nodiscard]] bool fingerprinting() const noexcept;

  /// Fingerprint reports, called by ported objects inside the granted step
  /// (no-ops unless `fingerprinting()`). `observe_fp` folds a value this
  /// process observed (a read result, an rmw return) into its running
  /// hash; `commit_fp` publishes `obj`'s post-commit state hash into the
  /// world fingerprint. A granted step that makes *neither* report poisons
  /// the fingerprint for the rest of the execution — the explorer then
  /// takes no stateful cuts on it (sound degradation for unported objects).
  void observe_fp(std::uint64_t v);
  void commit_fp(const ObjectId& obj, std::uint64_t state_hash);

  /// The owning runtime (for algorithm helpers that need global info).
  [[nodiscard]] Runtime& runtime() const noexcept { return *runtime_; }

 private:
  friend class Runtime;
  Context(Runtime* rt, int pid) : runtime_(rt), pid_(pid) {}

  Runtime* runtime_;
  int pid_;
};

/// Lifecycle state of a simulated process.
enum class ProcState : std::uint8_t { kRunning, kDone, kHung, kCrashed };

/// Returns a short name ("running", "done", ...).
std::string to_string(ProcState s);

/// A process body. Runs on its own fiber; communicates only through shared
/// objects constructed against the same runtime.
using ProcessFn = std::function<void(Context&)>;

/// Execution engine hosting a simulated process (see the header comment).
enum class Engine : std::uint8_t { kFiber, kStepped };

/// Per-process handle passed to stepped process bodies: the stepped-engine
/// counterpart of `Context`. The `SUBC_STEP_*` macro layer
/// (runtime/stepper.hpp) calls `resume_point`/`suspend`/`finish`; body code
/// between step points uses `pid`/`choose`/`decide` exactly like fiber code
/// uses `Context`. `hang`/`hung` implement the undetectable-hang convention
/// without fibers: a hangable stepped operation marks the process hung and
/// its caller must return from `step` immediately (`SUBC_STEP_CALL`).
class StepContext {
 public:
  /// This process's identifier (0-based, dense).
  [[nodiscard]] int pid() const noexcept { return pid_; }

  /// The resume point recorded by the last `suspend` (0 before the first:
  /// `SUBC_STEP_BEGIN` dispatches on it).
  [[nodiscard]] std::uint32_t resume_point() const noexcept;

  /// Suspends the process until its next grant, recording where to resume
  /// (`point` != 0; the macro layer passes `__LINE__`). This overload
  /// declares no footprint for the pending step (dependent with
  /// everything); the second announces `{obj, kind}`, assigning the
  /// object's id on first use exactly like `Context::sched_point`.
  void suspend(std::uint32_t point);
  void suspend(std::uint32_t point, const ObjectId& obj, AccessKind kind);

  /// Marks the body complete (the stepped analogue of the process function
  /// returning). The process takes no further steps.
  void finish();

  /// Hangs the process undetectably (stepped analogue of `Context::hang`).
  /// Unlike the fiber form this *returns*; the caller must immediately
  /// return from `step` without touching shared state (`SUBC_STEP_CALL`).
  void hang();

  /// True once this process is hung; lets `SUBC_STEP_CALL` cut the body
  /// short after a hangable operation.
  [[nodiscard]] bool hung() const noexcept;

  /// Resolves object nondeterminism adversarially, as `Context::choose`.
  std::uint32_t choose(std::uint32_t arity);

  /// Records this process's task output, as `Context::decide`.
  void decide(Value v);

  /// Fingerprint capability + reports, exactly as on `Context` — the two
  /// context types expose identical signatures so object cores templated on
  /// the context fold identical fingerprint sequences on both engines.
  [[nodiscard]] bool fingerprinting() const noexcept;
  void observe_fp(std::uint64_t v);
  void commit_fp(const ObjectId& obj, std::uint64_t state_hash);

  /// The owning runtime.
  [[nodiscard]] Runtime& runtime() const noexcept { return *runtime_; }

 private:
  friend class Runtime;
  StepContext(Runtime* rt, int pid) : runtime_(rt), pid_(pid) {}

  Runtime* runtime_;
  int pid_;
};

/// A stepped process body: invoked once per kernel grant with its state
/// block; must advance the machine by exactly one announced step and return
/// (runtime/stepper.hpp). Plain function pointer — state lives in `state`.
using SteppedFn = void (*)(void* state, StepContext& ctx);

/// One simulated world: processes plus the schedule that drives them.
/// Single-use — construct, add processes, `run` once.
class Runtime {
 public:
  Runtime();
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Registers a fiber-engine process; returns its pid. Must precede `run`.
  int add_process(ProcessFn fn);

  /// Registers a stepped-engine process; returns a reference to its state
  /// block, copied into the world's arena (so the block dies with the world
  /// and steady-state construction is allocation-free). `T` must provide
  /// `void step(StepContext&)` written against the `SUBC_STEP_*` macro
  /// layer (runtime/stepper.hpp). Pids are assigned in registration order
  /// regardless of engine; stepped and fiber processes mix freely.
  template <class T>
  T& add_stepped(T state) {
    T* block = static_cast<T*>(carve_stepped_block(sizeof(T), alignof(T)));
    ::new (block) T(std::move(state));
    const int pid =
        add_stepped_raw(&step_invoke<T>, block,
                        std::is_trivially_destructible_v<T> ? nullptr
                                                            : &step_destroy<T>);
    // Restartability (crash-recovery exploration): a copyable state block
    // can be snapshotted pristine at run() start and copy-restored on
    // recovery, so stepped bodies re-enter from the top like a fresh fiber.
    // Non-copyable blocks simply cannot be recovered (recover() diagnoses).
    if constexpr (std::is_copy_constructible_v<T> &&
                  std::is_copy_assignable_v<T>) {
      set_stepped_recovery(pid, &step_clone<T>, &step_restore<T>);
    }
    return *block;
  }

  /// Low-level stepped registration for callers that manage their own state
  /// block (it must outlive the runtime unless `destroy` is given, in which
  /// case the runtime invokes it at teardown). Returns the pid.
  int add_stepped_raw(SteppedFn fn, void* state,
                      void (*destroy)(void*) = nullptr);

  [[nodiscard]] int num_processes() const noexcept {
    return static_cast<int>(num_procs_);
  }

  /// Result of driving a world to quiescence.
  struct RunResult {
    /// Per-process decision (kBottom where the process decided nothing).
    std::vector<Value> decisions;
    /// Per-process final state.
    std::vector<ProcState> states;
    /// Total scheduler grants issued.
    std::int64_t total_steps = 0;
    /// True when every non-crashed process finished (none hung, none still
    /// runnable at the step bound).
    bool quiescent = false;
  };

  /// Drives the world until no process is runnable or `max_steps` grants
  /// have been issued. Throws `SimError` if the step bound is exceeded with
  /// processes still runnable — for wait-free algorithms that indicates a
  /// bug (or a genuinely blocking construction).
  RunResult run(ScheduleDriver& driver, std::int64_t max_steps = 1'000'000);

  /// Crashes a process: it is never scheduled again (unless recovered). May
  /// be called before or during `run` (e.g. from a validator probing fault
  /// tolerance). Every crash event additionally reverts volatile objects
  /// (`Durability::kVolatile`) to their initial state.
  void crash(int pid);

  /// Restarts a crashed process: it re-enters its body from the top as a
  /// fresh incarnation with fresh volatile process state (new fiber stack /
  /// pristine stepped state block), while shared-object state persists per
  /// its durability. Throws `SimError` unless `pid` is crashed, or when a
  /// stepped process's state block is not copyable (no pristine snapshot
  /// exists to restore). Driven by the scheduler's `recovery_requests`
  /// branch point during `run`; callable directly outside it too.
  void recover(int pid);

  /// Crashed (and not yet recovered) processes right now.
  [[nodiscard]] int num_crashed() const noexcept { return num_crashed_; }

  /// Incarnation of `pid`: 0 until its first recovery, then the number of
  /// restarts it has undergone.
  [[nodiscard]] std::uint32_t incarnation_of(int pid) const;

  /// Registers a crash-event hook (volatile objects, `Durability`): every
  /// `crash()` invokes all hooks after retiring the victim, so volatile
  /// state reverts to initial values. Objects register lazily on first use.
  void add_volatile_reset(std::function<void(Runtime&)> hook);

  /// Re-publishes `obj`'s state hash into the world fingerprint outside a
  /// granted step (no-op unless fingerprinting, or before the object's
  /// first footprint announcement). Volatile-reset hooks call this so the
  /// wiped state is what stateful cuts key on.
  void refresh_commit_fp(const ObjectId& obj, std::uint64_t state_hash);

  /// Steps taken so far by `pid` (scheduler grants).
  [[nodiscard]] std::int64_t steps_of(int pid) const;

  /// Monotone per-run logical clock: total scheduler grants so far.
  [[nodiscard]] std::int64_t now() const noexcept { return total_steps_; }

  /// Decisions recorded so far (kBottom = none).
  [[nodiscard]] const std::vector<Value>& decisions() const noexcept {
    return decisions_;
  }

  /// Final state of `pid` (valid during and after `run`).
  [[nodiscard]] ProcState state_of(int pid) const;

  /// Wires an event sink for this world's run (observer.hpp); nullptr
  /// disconnects. The constructor already adopts the thread-default
  /// observer installed by `run_one`/`ScopedObserver`, so explicit wiring
  /// is only needed for runtimes driven outside that funnel. Observers are
  /// pure sinks — attaching one never changes execution.
  void set_observer(TraceObserver* obs) noexcept { observer_ = obs; }
  [[nodiscard]] TraceObserver* observer() const noexcept { return observer_; }

 private:
  friend class Context;
  friend class StepContext;

  struct Proc;

  template <class T>
  static void step_invoke(void* state, StepContext& ctx) {
    static_cast<T*>(state)->step(ctx);
  }
  template <class T>
  static void step_destroy(void* state) {
    static_cast<T*>(state)->~T();
  }
  template <class T>
  static void* step_clone(const void* src, Runtime& rt) {
    void* block = rt.carve_stepped_block(sizeof(T), alignof(T));
    ::new (block) T(*static_cast<const T*>(src));
    return block;
  }
  template <class T>
  static void step_restore(void* dst, const void* src) {
    *static_cast<T*>(dst) = *static_cast<const T*>(src);
  }

  /// Arms restartability for stepped pid (see add_stepped).
  void set_stepped_recovery(int pid, void* (*clone)(const void*, Runtime&),
                            void (*restore)(void*, const void*));

  /// Arena storage for a stepped state block, with the carve counted in the
  /// process-wide stepped-block telemetry (arena.hpp).
  void* carve_stepped_block(std::size_t bytes, std::size_t align);

  /// Runs `proc` until its next suspension point: resumes the fiber, or
  /// invokes the stepped body once (engine dispatch for priming + grants).
  void advance(Proc& proc);

  void check_pid(int pid) const;
  std::size_t collect_enabled(int* enabled, Access* footprints) const;
  int attach_proc(Proc* proc);

  // --- World-state fingerprinting (stateful exploration) ------------------
  // Maintained incrementally only when the driver wants it (`fp_on_`):
  // `fp_world_` is the XOR of every process's running observation-chain
  // hash and every reported object's post-commit state hash. Each fold
  // XORs the old term out, mixes, and XORs the new term in — O(1) per
  // event. docs/explorer.md "Stateful exploration" gives the soundness
  // argument for what is (and isn't) folded.
  void fp_fold(int pid, std::uint64_t v);
  void fp_observe(int pid, std::uint64_t v);
  void fp_commit(std::uint32_t object_id, std::uint64_t state_hash);

  ScheduleDriver* driver_ = nullptr;
  TraceObserver* observer_ = nullptr;

  /// World construction is arena-backed: every Proc (and the proc table
  /// itself) lives in a leased monotonic arena that is reset and recycled
  /// when the world dies, so building the next execution's world reuses the
  /// same memory instead of round-tripping the global allocator.
  ArenaLease arena_;
  Proc** procs_ = nullptr;
  std::size_t num_procs_ = 0;
  std::size_t procs_cap_ = 0;
  std::vector<Value> decisions_;
  std::int64_t total_steps_ = 0;
  std::uint32_t next_object_id_ = 1;
  bool started_ = false;
  int num_crashed_ = 0;
  /// Crash-event hooks (volatile objects). Empty in every crash-stop world,
  /// so pre-recovery crashes pay one empty-vector check.
  std::vector<std::function<void(Runtime&)>> volatile_resets_;

  bool fp_on_ = false;          ///< driver wants fingerprints (set in run())
  bool fp_valid_ = true;        ///< poisoned by a silent granted step
  bool fp_step_reported_ = false;  ///< did the current grant report?
  std::uint64_t fp_world_ = 0;
  /// Per-object post-commit state-hash terms, indexed by object id. Only
  /// ever touched in stateful runs, so the allocation stays off the
  /// non-stateful hot path.
  std::vector<std::uint64_t> fp_objects_;
};

// Inline so the objects' per-step capability guard compiles to one load and
// branch on the non-stateful hot path (no out-of-line call).
inline bool Context::fingerprinting() const noexcept {
  return runtime_->fp_on_;
}
inline bool StepContext::fingerprinting() const noexcept {
  return runtime_->fp_on_;
}

}  // namespace subc
