// The sharded agreement service: one InstanceTable per worker thread.
//
// The instance layer (runtime/instance.hpp) serves thousands of concurrent
// agreement instances from ONE thread — the table is single-threaded by
// design, exactly like one Runtime per explorer worker. `ShardedService`
// scales that out without ever sharing a table: N worker threads, each
// owning one `InstanceTable` over its own `ArenaLease`, fed through
// per-shard MPSC inboxes built on the Vyukov `bounded_queue.hpp` ring. A
// client op routes to shard `mix64(instance_id) % shards`; ids are assigned
// from one process-wide counter at submit time, so routing is a pure
// function of the id and the shard's worker is the only thread that ever
// touches its table, its metas, or its arena.
//
// Backpressure mirrors the explorer's frontier ring: `try_push` failing on
// a full inbox makes the *producer* absorb the pressure (spin-yield until a
// slot frees) — an op, once accepted by `open`/`submit`, is never dropped.
//
// Cross-shard dedup: every open may carry a client-supplied logical-request
// fingerprint (`request_fp` — e.g. a hash of the request's origin and
// sequence number). When an instance decides, its shard records
// (fp_request_domain(request_fp) → decided value) in a shared lock-free
// `DecisionMemo` (the explorer `VisitedSet`'s CAS-claim shape, extended
// with a published value per key). A replayed request — routed to ANY
// shard, since a replay gets a fresh id — probes the memo first and
// short-circuits to the recorded decision instead of re-running agreement.
// Soundness: the memo is an at-most-once *record* of a decision, never a
// requirement — a lookup miss (absent, still publishing, or saturated)
// just runs agreement again, and the key CAS guarantees exactly one
// recording wins, so every replay that hits observes the same decision.
//
// Placement: workers are pinned to distinct usable cores
// (`pthread_setaffinity_np`, topology probed from the process affinity
// mask at startup; `ServiceOptions::pin_workers = false` opts out; non-
// Linux builds degrade to unpinned). docs/explorer.md "Sharded agreement
// service".
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "subc/runtime/hashing.hpp"
#include "subc/runtime/instance.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Service-level instance identity: globally unique across all shards
/// (one process-wide counter), assigned at submit time so the client knows
/// the route before the worker sees the message. Never 0, never reused.
using ServiceId = InstanceId;

/// CPUs this process may run on (the sched_getaffinity mask, in index
/// order). Shard worker i pins to `usable_cpus()[i % size]`. Degrades
/// gracefully: when `sched_getaffinity` itself fails (or yields an empty
/// mask), falls back to all hardware threads `0..N-1` instead of disabling
/// pinning outright, and reports the degradation through `probe_ok` (set
/// false; true on a clean probe). Empty result only on non-Linux builds
/// (where `probe_ok` is also false — there is no probe).
[[nodiscard]] std::vector<int> usable_cpus(bool* probe_ok = nullptr);

/// Fixed-capacity lock-free memo of decided requests: 64-bit request-domain
/// key → recorded decision. Modeled on the explorer's `VisitedSet` (CAS-
/// claimed open addressing, 0-sentinel empty keys, saturation = stop
/// recording), extended with a value published per key: `record` claims the
/// key slot by CAS — exactly one concurrent recorder wins — then publishes
/// the value with a release store; `lookup` only reports keys whose value
/// is fully published, so a reader can never observe a half-recorded
/// decision. All outcomes of a miss are sound: the caller just runs
/// agreement itself.
class DecisionMemo {
 public:
  /// `capacity` = maximum number of recorded decisions; slots are sized to
  /// the next power of two at most ~70% loaded.
  explicit DecisionMemo(std::size_t capacity);

  DecisionMemo(const DecisionMemo&) = delete;
  DecisionMemo& operator=(const DecisionMemo&) = delete;

  /// The recorded decision for `key`, or nullopt when unknown (never
  /// recorded, recording still in flight, or dropped at saturation).
  [[nodiscard]] std::optional<Value> lookup(std::uint64_t key) const noexcept;

  /// Records `decided` for `key`. Returns true iff this call won the
  /// recording race; false when the key is already claimed (by any caller,
  /// published or not) or the memo is saturated.
  bool record(std::uint64_t key, Value decided) noexcept;

  /// Recorded (claimed) keys.
  [[nodiscard]] std::int64_t size() const noexcept;
  [[nodiscard]] std::size_t slot_count() const noexcept { return num_slots_; }
  [[nodiscard]] bool saturated() const noexcept;

 private:
  struct Slot {
    std::atomic<std::uint64_t> key{0};
    /// 0 = unpublished, 1 = value readable (release/acquire pairing).
    std::atomic<std::uint64_t> published{0};
    std::atomic<Value> value{kBottom};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t num_slots_ = 0;
  std::size_t max_size_ = 0;
  std::atomic<std::size_t> size_{0};
};

struct ServiceOptions {
  /// Worker threads — one InstanceTable each.
  int shards = 1;
  /// Per-shard inbox ring capacity (rounded up to a power of two).
  std::size_t inbox_capacity = 8192;
  /// Max inbox messages a worker absorbs per virtual tick. This is the
  /// admission throttle: it bounds how many instances can go live per tick,
  /// which bounds each shard's live set regardless of producer speed.
  int drain_batch = 512;
  /// Pin shard workers to distinct usable cores (opt-out flag). Pin
  /// failures degrade to unpinned, recorded per shard in `ShardStats`.
  bool pin_workers = true;
  /// Quorum rule: an instance decides once the served participant weight
  /// reaches `total_weight * quorum_num / quorum_den`.
  unsigned quorum_num = 2;
  unsigned quorum_den = 3;
  /// Max op arrival delay in virtual ticks (the jitter window).
  int horizon_ticks = 25;
  /// Undecided past this many ticks after open → timed out, reclaimed.
  int timeout_ticks = 40;
  /// Decided instances stay in the table (auditable) this many ticks.
  int linger_ticks = 5;
  /// Capacity of the shared cross-shard `DecisionMemo`.
  std::size_t dedup_capacity = std::size_t{1} << 20;
};

/// What a shard worker hands the decide callback — pointers are worker-
/// owned and valid only for the duration of the callback.
struct DecidedView {
  int shard = 0;
  ServiceId id = 0;
  /// The decided instance: kind, object state, per-instance history segment
  /// (feeds the linearizability checker directly).
  const InstanceBlock* block = nullptr;
  /// Every value submitted for this instance / every response served.
  const std::vector<Value>* proposals = nullptr;
  const std::vector<Value>* responses = nullptr;
  /// The agreement bound the opener declared (audit: ≤ spec_k distinct).
  int spec_k = 0;
  /// The recorded decision (first response served).
  Value decided = kBottom;
  std::int64_t latency_ticks = 0;
  /// The instance's world fingerprint at decision (domain-folded — never
  /// aliases across instances or shards).
  std::uint64_t world_fp = 0;
};

/// Per-shard telemetry, snapshotted by the worker as it exits; read via
/// `stats()` after `stop()`.
struct ShardStats {
  int shard = 0;
  bool pinned = false;
  int cpu = -1;  ///< core the worker pinned to (-1 when unpinned)
  /// False when the startup topology probe (`usable_cpus`) degraded to the
  /// all-cpus fallback — pinning then targets cores the process may not be
  /// allowed on (failures still degrade per shard via `pinned`).
  bool affinity_probe_ok = false;
  std::int64_t ticks = 0;
  std::int64_t msgs_open = 0;  ///< open messages drained
  std::int64_t msgs_op = 0;    ///< op messages drained
  std::int64_t opened = 0;     ///< instances opened (msgs_open − dedup hits)
  std::int64_t ops = 0;        ///< operations applied through the table
  /// Ops whose instance this shard never opened (dedup'd open) or had
  /// already reclaimed when the op message arrived.
  std::int64_t orphan_ops = 0;
  /// Scheduled ops whose instance was reclaimed before their arrival tick.
  std::int64_t skipped_ops = 0;
  std::int64_t hung_ops = 0;  ///< ops the object core refused (illegal)
  std::int64_t decided = 0;
  std::int64_t timed_out = 0;
  std::int64_t dedup_hits = 0;     ///< opens short-circuited by the memo
  std::int64_t dedup_records = 0;  ///< decisions this shard recorded
  std::int64_t gc_sweeps = 0;      ///< instances reclaimed (either lane)
  std::int64_t peak_live = 0;
  std::int64_t live_at_exit = 0;
  std::int64_t blocks_carved = 0;
  std::int64_t block_reuses = 0;
  std::size_t inbox_peak = 0;  ///< max sampled inbox occupancy
  /// Decision-latency histogram: index = latency in ticks (clamped to the
  /// timeout), value = decisions. Percentiles merge across shards exactly.
  std::vector<std::int64_t> latency_hist;
};

/// What an open request declares about its instance.
struct OpenSpec {
  InstanceKind kind = InstanceKind::kOneShotWrn;
  int a = 0;  ///< per-kind meaning, see InstanceTable::open
  int b = 0;
  /// Logical-request fingerprint for cross-shard dedup; 0 = no dedup.
  std::uint64_t request_fp = 0;
  /// Full participant weight quorum is judged against (> 0).
  unsigned total_weight = 0;
  /// Agreement bound for audits (k for 1sWRN/set-consensus, i+1 for GAC).
  int spec_k = 0;
};

/// One client operation against an open instance.
struct OpSpec {
  int validator = 0;    ///< submitting participant (history pid)
  unsigned weight = 0;  ///< its quorum weight
  int slot = 0;         ///< 1sWRN index; ignored by the other kinds
  Value value = kBottom;
  /// Virtual-tick arrival delay, clamped to [1, horizon_ticks].
  int delay_ticks = 1;
};

class ShardedService {
 public:
  /// Called by the deciding shard's worker thread, instance still live.
  using DecidedCallback = std::function<void(const DecidedView&)>;

  explicit ShardedService(const ServiceOptions& opts,
                          DecidedCallback on_decided = {});
  ~ShardedService();  // stops (drains and joins) if still running

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// The routing rule: `mix64(id) % shards`, a pure function of the id.
  [[nodiscard]] static int shard_of(ServiceId id, int shards) noexcept {
    return static_cast<int>(detail::mix64(id) %
                            static_cast<std::uint64_t>(shards));
  }
  [[nodiscard]] int shard_of(ServiceId id) const noexcept {
    return shard_of(id, opts_.shards);
  }

  /// Admits a new instance: assigns its globally-unique id, validates the
  /// shape client-side, and enqueues the open on its shard. Thread-safe.
  /// Throws SimError on a bad shape, zero total_weight, or after stop().
  ServiceId open(const OpenSpec& spec);

  /// Enqueues one operation on `id`'s shard. Thread-safe. Throws after
  /// stop(). Ops for ids the shard does not know (dedup'd or already
  /// reclaimed) are counted as orphans and dropped by the worker.
  void submit(ServiceId id, const OpSpec& op);

  /// Stops admission, lets every worker drain its inbox and tick its table
  /// to quiescence (all instances decided+lingered or timed out, hence
  /// GC'd), then joins. Callers must stop producing first: open/submit
  /// concurrent with stop() throw. Idempotent.
  void stop();
  [[nodiscard]] bool stopped() const noexcept {
    return stopped_.load(std::memory_order_acquire);
  }

  /// Per-shard telemetry; valid after stop() (throws before).
  [[nodiscard]] const std::vector<ShardStats>& stats() const;

  [[nodiscard]] const DecisionMemo& memo() const noexcept { return memo_; }
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return opts_;
  }

 private:
  struct Shard;
  struct Msg;

  void enqueue(int shard, Msg&& msg);
  void worker_main(int shard);

  ServiceOptions opts_;
  DecidedCallback on_decided_;
  DecisionMemo memo_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<int> cpus_;     ///< topology probe result at startup
  bool cpu_probe_ok_ = false;  ///< sched_getaffinity probe outcome
  std::atomic<ServiceId> next_id_{1};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::vector<ShardStats> stats_;
};

}  // namespace subc
