// Monotonic arena allocation for the execution core.
//
// The exhaustive explorer builds and tears down a complete world (Runtime,
// processes, fibers) per execution — millions of times per search. Going to
// the global allocator for every Proc and every bookkeeping array is the
// dominant cost once context switches are cheap. A `MonotonicArena` is a
// chunked bump allocator: allocation is a pointer increment, `reset()`
// rewinds without releasing memory, and a thread-local pool (`ArenaLease`)
// recycles arenas across executions so steady-state world construction does
// not touch malloc at all.
//
// Objects placed in an arena are NOT destructed by it — the owner runs any
// non-trivial destructors before reset()/release (Runtime does this for its
// Procs).
//
// `alloc_counters()` exposes process-wide allocation telemetry (arena
// chunk growth, arena leases, fiber-stack pool traffic) that benches stamp
// into BENCH_<ID>.json, making hot-path allocation regressions visible
// across PRs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace subc {

/// Process-wide allocation telemetry (relaxed counters; exact totals only
/// once concurrent work has quiesced, which is when benches read them).
struct AllocCounters {
  /// Arena chunks obtained from the global allocator (capacity growth).
  std::uint64_t arena_chunks = 0;
  /// Bytes handed out by arenas (requested, not padded).
  std::uint64_t arena_bytes = 0;
  /// Arena leases served from the thread-local pool (reuse hits).
  std::uint64_t arena_reuses = 0;
  /// Fiber stacks served from the thread-local stack pool (reuse hits).
  std::uint64_t fiber_stack_reuses = 0;
  /// Fiber stacks that had to be allocated fresh.
  std::uint64_t fiber_stack_allocs = 0;
  /// Stepped-engine state blocks carved from world arenas (runtime.hpp
  /// `add_stepped`).
  std::uint64_t stepped_blocks_carved = 0;
  /// Carves served from already-warm arena storage (no chunk growth) —
  /// the allocation-free steady state.
  std::uint64_t stepped_block_reuses = 0;
  /// Bytes of stepped state carved (requested, not padded).
  std::uint64_t stepped_block_bytes = 0;
  /// Instance state blocks carved fresh from an InstanceTable's arena
  /// (runtime/instance.hpp).
  std::uint64_t instance_blocks_carved = 0;
  /// Instance opens served from the table's GC free list (block recycled,
  /// no carve) — the steady state of a long-running instance churn.
  std::uint64_t instance_block_reuses = 0;
  /// Bytes of instance state carved (requested, not padded).
  std::uint64_t instance_block_bytes = 0;
};

namespace detail {
struct AllocCounterCells {
  std::atomic<std::uint64_t> arena_chunks{0};
  std::atomic<std::uint64_t> arena_bytes{0};
  std::atomic<std::uint64_t> arena_reuses{0};
  std::atomic<std::uint64_t> fiber_stack_reuses{0};
  std::atomic<std::uint64_t> fiber_stack_allocs{0};
  std::atomic<std::uint64_t> stepped_blocks_carved{0};
  std::atomic<std::uint64_t> stepped_block_reuses{0};
  std::atomic<std::uint64_t> stepped_block_bytes{0};
  std::atomic<std::uint64_t> instance_blocks_carved{0};
  std::atomic<std::uint64_t> instance_block_reuses{0};
  std::atomic<std::uint64_t> instance_block_bytes{0};
};
AllocCounterCells& alloc_counter_cells() noexcept;
}  // namespace detail

/// Snapshot of the process-wide allocation counters.
[[nodiscard]] AllocCounters alloc_counters() noexcept;

/// The counters accumulated since `since` (field-wise difference against the
/// current snapshot). Multi-stage benches snapshot before each stage and
/// stamp per-stage deltas instead of cumulative process-wide totals, so each
/// stage's allocation behavior is attributable on its own.
[[nodiscard]] AllocCounters alloc_counters_delta(
    const AllocCounters& since) noexcept;

/// Chunked bump allocator. Not thread-safe; lease one per worker.
class MonotonicArena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  MonotonicArena() = default;
  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;
  MonotonicArena(MonotonicArena&&) = default;
  MonotonicArena& operator=(MonotonicArena&&) = default;

  /// Returns `bytes` bytes aligned to `align` (a power of two). Storage is
  /// valid until `reset()`.
  void* allocate(std::size_t bytes, std::size_t align) {
    std::size_t offset = (offset_ + align - 1) & ~(align - 1);
    if (chunk_ >= chunks_.size() || offset + bytes > chunks_[chunk_].size) {
      next_chunk(bytes + align);
      offset = (offset_ + align - 1) & ~(align - 1);
    }
    void* p = chunks_[chunk_].data.get() + offset;
    offset_ = offset + bytes;
    detail::alloc_counter_cells().arena_bytes.fetch_add(
        bytes, std::memory_order_relaxed);
    return p;
  }

  /// Placement-constructs a `T`. The caller owns the destructor call.
  template <class T, class... Args>
  T* create(Args&&... args) {
    return ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Uninitialized storage for `n` objects of `T` (trivial types, or caller
  /// placement-constructs).
  template <class T>
  T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(sizeof(T) * n, alignof(T)));
  }

  /// Rewinds to empty, keeping every chunk for reuse.
  void reset() noexcept {
    chunk_ = 0;
    offset_ = 0;
  }

  /// Total capacity currently held (bytes across all chunks).
  [[nodiscard]] std::size_t capacity() const noexcept {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) {
      total += c.size;
    }
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void next_chunk(std::size_t min_bytes) {
    if (chunk_ < chunks_.size()) {
      ++chunk_;
    }
    // Reuse a retained chunk when it fits; otherwise insert a fresh one
    // (doubling, so pathological worlds settle into O(log) chunk count).
    if (chunk_ >= chunks_.size() || chunks_[chunk_].size < min_bytes) {
      std::size_t size = chunks_.empty() ? kDefaultChunkBytes
                                         : chunks_.back().size * 2;
      while (size < min_bytes) {
        size *= 2;
      }
      Chunk fresh{std::make_unique<std::byte[]>(size), size};
      detail::alloc_counter_cells().arena_chunks.fetch_add(
          1, std::memory_order_relaxed);
      chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(chunk_),
                     std::move(fresh));
    }
    offset_ = 0;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   // index of the chunk being bumped
  std::size_t offset_ = 0;  // bump position within chunks_[chunk_]
};

/// RAII lease of a thread-pooled arena: acquires a recycled arena (or makes
/// one), returns it reset to the pool on destruction. `Runtime` holds one per
/// world, so world construction reuses the same memory execution after
/// execution.
class ArenaLease {
 public:
  ArenaLease();
  ~ArenaLease();

  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;

  [[nodiscard]] MonotonicArena& operator*() const noexcept { return *arena_; }
  [[nodiscard]] MonotonicArena* operator->() const noexcept { return arena_; }

 private:
  MonotonicArena* arena_;
};

}  // namespace subc
