// The stepped execution engine's macro layer (Engine::kStepped).
//
// A stepped process body is an explicit resumable state machine: a struct
// holding everything that must survive a suspension, plus a
// `void step(StepContext&)` method the kernel calls once per grant. Inside
// `step`, the macros below compile the body into a switch-resume machine
// (the classic protothreads / Duff's-device form): `SUBC_STEP_POINT`
// announces the next atomic operation's footprint and returns control to
// the kernel by *plain function return* — no stack to allocate, no context
// switch to pay — and the next grant's `step` call jumps straight back to
// the point after the announcement, where the atomic operation body runs.
//
// Rules (docs/explorer.md "Execution engines"):
//  * at most one `SUBC_STEP_POINT`/`_POINT_ANY` per source line (resume
//    points are keyed on `__LINE__`);
//  * everything live across a step point must be a member of the state
//    struct — locals reset on every `step` call, and loop headers whose
//    induction variable is a member (`for (s_ = 0; ...)`) resume correctly;
//  * no declarations with initializers between `SUBC_STEP_BEGIN` and a
//    later step point (the resume jump may not cross an initialization) —
//    declare scratch before `SUBC_STEP_BEGIN` or keep it in the state;
//  * shared-object accesses go through the objects' `step_*` cores, which
//    execute the announced atomic body without re-announcing; hangable
//    cores (GAC propose past capacity, 1sWRN index reuse, SSE past n) are
//    wrapped in `SUBC_STEP_CALL` so a hang cuts the body short;
//  * bodies that do not flatten — recursion, helper-call structure, loops
//    whose shared-op sequence depends on unbounded intermediate state (BG
//    simulation, the universal construction, register-built snapshots) —
//    stay on the fiber engine. The two engines mix freely in one world.
//
// The atomicity granularity is unchanged: a step point is the *same*
// interleaving boundary as `Context::sched_point`, and the kernel drives
// both engines through one decision loop, so worlds produce bit-identical
// traces and explorer verdicts whichever engine hosts each process.
#pragma once

#include "subc/runtime/runtime.hpp"

/// Opens the resume switch. `step` falls through to the code after the
/// macro on first entry and jumps to the last announced point on re-entry.
#define SUBC_STEP_BEGIN(ctx) \
  switch ((ctx).resume_point()) { \
    case 0:

/// Announces the next atomic step's footprint ({obj, kind}, an `ObjectId`
/// from the object's `oid()` accessor) and suspends. The statement after
/// the macro executes inside the granted step — it IS the atomic body.
#define SUBC_STEP_POINT(ctx, obj, kind)       \
  do {                                        \
    (ctx).suspend(__LINE__, (obj), (kind));   \
    return;                                   \
    case __LINE__:;                           \
  } while (0)

/// As `SUBC_STEP_POINT` with no declared footprint (the pending step is
/// treated as dependent with everything — always sound).
#define SUBC_STEP_POINT_ANY(ctx) \
  do {                           \
    (ctx).suspend(__LINE__);     \
    return;                      \
    case __LINE__:;              \
  } while (0)

/// Invokes a hangable stepped operation inside a granted step: assigns the
/// result to `lhs`, then returns from `step` if the operation hung the
/// process (mirroring the fiber engine, where `Context::hang` never
/// returns into the body).
#define SUBC_STEP_CALL(ctx, lhs, expr) \
  do {                                 \
    lhs = (expr);                      \
    if ((ctx).hung()) {                \
      return;                          \
    }                                  \
  } while (0)

/// Finishes the body early from inside the switch (the stepped analogue of
/// `return` in a fiber body).
#define SUBC_STEP_RETURN(ctx) \
  do {                        \
    (ctx).finish();           \
    return;                   \
  } while (0)

/// Closes the resume switch and marks the body complete when control falls
/// off its end.
#define SUBC_STEP_END(ctx) \
  }                        \
  (ctx).finish();          \
  return
