// The reconstructed O_{n,k} family from the PODC 2016 paper
// ("Deterministic Objects: Life Beyond Consensus") — see DESIGN.md §4.
//
// Building block: the deterministic cyclic-group-arrival object GAC(n, i),
// a de-randomized (m_i, j_i)-set-consensus solver with
//     m_i = n·(i+1) + i = (n+1)(i+1) − 1,     j_i = i + 1.
// Proposals are served strictly in arrival order:
//   * arrival t ≤ n(i+1): belongs to block ⌊(t−1)/n⌋ and returns the
//     proposal of the first arrival of its block (so any n processes sharing
//     a fresh object occupy block 0 and reach consensus);
//   * arrival t in (n(i+1), m_i]: wraps around and returns the proposal of
//     arrival 1 (the same device as WRN's cyclic "read next" — it shaves the
//     last distinct value so that ⌊m_i/j_i⌋ = n, keeping consensus number n);
//   * arrival t > m_i hangs undetectably (the oblivious-model convention).
// Among the first m_i arrivals at most j_i distinct values are returned:
// one per block 0..i, nothing new from the wrap-around.
//
// GAC(n, 0) degenerates to the deterministic n-consensus object; GAC(1, i)
// is the one-shot-WRN analogue at consensus level 1.
//
// O_{n,k} is the deterministic object offering components GAC(n, 0) (plain
// n-consensus) through GAC(n, k−1): `propose(ctx, component, v)`. O_{n,k+1}
// trivially implements O_{n,k} (component subset); the converse fails at
// N_k = nk + n + k processes — the arithmetic of the 2016 statement
// (machine-checked in core/hierarchy and bench_t4_onk_separation).
#pragma once

#include <vector>

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Deterministic cyclic-group-arrival object GAC(n, i).
class GacObject {
 public:
  GacObject(int n, int i);

  /// Proposes `v`; returns the arrival-order-determined winner proposal.
  Value propose(Context& ctx, Value v);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int level() const noexcept { return i_; }

  /// m_i: invocation capacity before the object hangs.
  [[nodiscard]] int capacity() const noexcept { return capacity_static(n_, i_); }
  /// j_i: maximum number of distinct outputs.
  [[nodiscard]] int agreement() const noexcept { return i_ + 1; }

  static int capacity_static(int n, int i) noexcept {
    return n * (i + 1) + i;
  }

  /// Stepped-engine form: announce `{oid(), kRmw}`, run inside the grant.
  /// Past-capacity arrivals hang the process (`StepContext::hang`) and
  /// return ⊥ — call through `SUBC_STEP_CALL` (runtime/stepper.hpp). The
  /// core is templated on the context so both engines share it, including
  /// the fingerprint reports for stateful exploration (observe the winner,
  /// commit the arrival list; the hang path reports via the transition
  /// fold).
  [[nodiscard]] const ObjectId& oid() const noexcept { return id_; }

  template <class Ctx>
  Value step_propose(Ctx& ctx, Value v) {
    check_proposal(v);
    if (static_cast<int>(arrivals_.size()) >= capacity()) {
      ctx.hang();      // never returns on the fiber engine
      return kBottom;  // stepped caller must cut short (SUBC_STEP_CALL)
    }
    const Value out = serve(v);
    if (ctx.fingerprinting()) {
      ctx.observe_fp(detail::fp_of(out));
      ctx.commit_fp(id_, detail::fp_of(arrivals_));
    }
    return out;
  }

 private:
  static void check_proposal(Value v);
  Value serve(Value v);

  ObjectId id_;
  int n_;
  int i_;
  std::vector<Value> arrivals_;
};

/// The conjunction object O_{n,k}: components GAC(n, 0) .. GAC(n, k−1).
/// Fresh component state per object instance; algorithms use as many
/// O_{n,k} instances as they need (oblivious model).
class OnkObject {
 public:
  OnkObject(int n, int k);

  /// Proposes `v` on component `component` ∈ [0, k).
  Value propose(Context& ctx, int component, Value v);

  /// Access to a component for direct use.
  GacObject& component(int i);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int k() const noexcept { return k_; }

 private:
  int n_;
  int k_;
  std::vector<GacObject> components_;
};

}  // namespace subc
