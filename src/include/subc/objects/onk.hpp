// The reconstructed O_{n,k} family from the PODC 2016 paper
// ("Deterministic Objects: Life Beyond Consensus") — see DESIGN.md §4.
//
// Building block: the deterministic cyclic-group-arrival object GAC(n, i),
// a de-randomized (m_i, j_i)-set-consensus solver with
//     m_i = n·(i+1) + i = (n+1)(i+1) − 1,     j_i = i + 1.
// Proposals are served strictly in arrival order:
//   * arrival t ≤ n(i+1): belongs to block ⌊(t−1)/n⌋ and returns the
//     proposal of the first arrival of its block (so any n processes sharing
//     a fresh object occupy block 0 and reach consensus);
//   * arrival t in (n(i+1), m_i]: wraps around and returns the proposal of
//     arrival 1 (the same device as WRN's cyclic "read next" — it shaves the
//     last distinct value so that ⌊m_i/j_i⌋ = n, keeping consensus number n);
//   * arrival t > m_i hangs undetectably (the oblivious-model convention).
// Among the first m_i arrivals at most j_i distinct values are returned:
// one per block 0..i, nothing new from the wrap-around.
//
// GAC(n, 0) degenerates to the deterministic n-consensus object; GAC(1, i)
// is the one-shot-WRN analogue at consensus level 1.
//
// O_{n,k} is the deterministic object offering components GAC(n, 0) (plain
// n-consensus) through GAC(n, k−1): `propose(ctx, component, v)`. O_{n,k+1}
// trivially implements O_{n,k} (component subset); the converse fails at
// N_k = nk + n + k processes — the arithmetic of the 2016 statement
// (machine-checked in core/hierarchy and bench_t4_onk_separation).
#pragma once

#include <vector>

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Detached state of a GAC(n, i) object: pure data, no world binding
/// (multi-instance runtime, runtime/instance.hpp).
struct GacState {
  int n = 0;
  int i = 0;
  std::vector<Value> arrivals;

  /// (Re)initialises for a fresh GAC(n, i); keeps the arrival buffer's
  /// capacity so recycled instance blocks stop allocating in steady state.
  void reset(int n_arg, int i_arg);
};

/// m_i: invocation capacity before GAC(n, i) hangs.
[[nodiscard]] constexpr int gac_capacity(int n, int i) noexcept {
  return n * (i + 1) + i;
}

/// Argument validation shared by every GAC entry point (throws SimError).
void gac_check_proposal(Value v);

/// The sequential GAC arrival body, engine- and fingerprint-free.
Value gac_serve(GacState* st, Value v);

/// The atomic GAC propose core: runs inside a granted step (or a service
/// context) against the explicit state block. Past-capacity arrivals hang
/// the process (`ctx.hang()`) and return ⊥ — stepped/service callers must
/// cut short (the fiber `Context::hang` never returns). Fingerprint
/// reports: observe the winner, commit the arrival list.
template <class Ctx>
Value gac_propose(Ctx& ctx, const ObjectId& id, GacState* st, Value v) {
  gac_check_proposal(v);
  if (static_cast<int>(st->arrivals.size()) >= gac_capacity(st->n, st->i)) {
    ctx.hang();      // never returns on the fiber engine
    return kBottom;  // stepped/service caller must cut short
  }
  const Value out = gac_serve(st, v);
  if (ctx.fingerprinting()) {
    ctx.observe_fp(detail::fp_of(out));
    ctx.commit_fp(id, detail::fp_of(st->arrivals));
  }
  return out;
}

/// Deterministic cyclic-group-arrival object GAC(n, i), bound to one world.
class GacObject {
 public:
  GacObject(int n, int i);

  /// Proposes `v`; returns the arrival-order-determined winner proposal.
  Value propose(Context& ctx, Value v);

  [[nodiscard]] int n() const noexcept { return state_.n; }
  [[nodiscard]] int level() const noexcept { return state_.i; }

  /// m_i: invocation capacity before the object hangs.
  [[nodiscard]] int capacity() const noexcept {
    return capacity_static(state_.n, state_.i);
  }
  /// j_i: maximum number of distinct outputs.
  [[nodiscard]] int agreement() const noexcept { return state_.i + 1; }

  static int capacity_static(int n, int i) noexcept {
    return gac_capacity(n, i);
  }

  /// Stepped-engine form: announce `{oid(), kRmw}`, run inside the grant.
  /// Past-capacity arrivals hang the process (`StepContext::hang`) and
  /// return ⊥ — call through `SUBC_STEP_CALL` (runtime/stepper.hpp). Routes
  /// through the same `gac_propose` core as the fiber form and the instance
  /// layer, fingerprint reports included.
  [[nodiscard]] const ObjectId& oid() const noexcept { return id_; }

  template <class Ctx>
  Value step_propose(Ctx& ctx, Value v) {
    return gac_propose(ctx, id_, &state_, v);
  }

 private:
  ObjectId id_;
  GacState state_;
};

/// The conjunction object O_{n,k}: components GAC(n, 0) .. GAC(n, k−1).
/// Fresh component state per object instance; algorithms use as many
/// O_{n,k} instances as they need (oblivious model).
class OnkObject {
 public:
  OnkObject(int n, int k);

  /// Proposes `v` on component `component` ∈ [0, k).
  Value propose(Context& ctx, int component, Value v);

  /// Access to a component for direct use.
  GacObject& component(int i);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int k() const noexcept { return k_; }

 private:
  int n_;
  int k_;
  std::vector<GacObject> components_;
};

}  // namespace subc
