// Sticky register (write-once register): the first write sticks, later
// writes are ignored; reads return the stuck value or ⊥. Like compare&swap
// it has infinite consensus number (Plotkin's sticky bit generalized) —
// another top-of-hierarchy control class for the power map.
//
// The sticky register is also the canonical *durable* object of the
// crash-recovery model (docs/adversaries.md): constructed with
// `Durability::kDurable` (the default) its stuck value survives crash
// events, and one durable sticky register solves recoverable consensus for
// any n — a recovered incarnation re-sticks its proposal and is handed the
// original winner. The `Durability::kVolatile` variant loses the stuck
// value at every crash event, which the recoverable-consensus machine-check
// (tests/recovery_exploration_test.cpp, bench_t9) convicts with a concrete
// disagreement trace.
#pragma once

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Detached state of a sticky register: pure data, no world binding.
struct StickyState {
  Value value = kBottom;
};

/// The stick core: first-wins rmw. Observes the stuck value (the caller's
/// return) and commits the post-state, so fiber and stepped forms fold
/// identical fingerprint sequences.
template <class Ctx>
[[nodiscard]] Value sticky_stick(Ctx& ctx, const ObjectId& id, StickyState* st,
                                 Value v) {
  if (v == kBottom) {
    throw SimError("stick(⊥) is illegal");
  }
  if (st->value == kBottom) {
    st->value = v;
  }
  if (ctx.fingerprinting()) {
    ctx.observe_fp(detail::fp_of(st->value));
    ctx.commit_fp(id, detail::fp_of(st->value));
  }
  return st->value;
}

/// The read core: observe the stuck value (⊥ while nothing stuck).
template <class Ctx>
[[nodiscard]] Value sticky_read(Ctx& ctx, const StickyState* st) {
  if (ctx.fingerprinting()) {
    ctx.observe_fp(detail::fp_of(st->value));
  }
  return st->value;
}

/// Write-once register: `stick` returns the value that stuck.
class StickyRegister {
 public:
  explicit StickyRegister(Durability durability = Durability::kDurable)
      : durability_(durability) {}

  /// Atomically writes `v` if nothing stuck yet; returns the stuck value.
  Value stick(Context& ctx, Value v) {
    if (v == kBottom) {
      throw SimError("stick(⊥) is illegal");
    }
    arm_volatile(ctx);
    ctx.sched_point(id_, AccessKind::kRmw);
    return sticky_stick(ctx, id_, &state_, v);
  }

  /// Atomic read (⊥ while nothing stuck).
  Value read(Context& ctx) {
    ctx.sched_point(id_, AccessKind::kRead);
    return sticky_read(ctx, &state_);
  }

  /// Non-step peek for validators/test assertions *after* a run.
  [[nodiscard]] Value peek() const noexcept { return state_.value; }

  /// Stepped-engine access (runtime/stepper.hpp): announce the footprint
  /// with `SUBC_STEP_POINT(ctx, sticky.oid(), kRmw)`, then run the
  /// operation body via `step_*` inside the granted step.
  [[nodiscard]] const ObjectId& oid() const noexcept { return id_; }

  template <class Ctx>
  [[nodiscard]] Value step_stick(Ctx& ctx, Value v) {
    arm_volatile(ctx);
    return sticky_stick(ctx, id_, &state_, v);
  }

  template <class Ctx>
  [[nodiscard]] Value step_read(Ctx& ctx) const {
    return sticky_read(ctx, &state_);
  }

 private:
  /// Volatile variant: register the crash-event reset hook on first
  /// mutation (the object has no runtime before then). The hook captures
  /// `this`, so a volatile sticky register must not relocate afterwards.
  template <class Ctx>
  void arm_volatile(Ctx& ctx) {
    if (durability_ == Durability::kDurable || armed_) {
      return;
    }
    armed_ = true;
    ctx.runtime().add_volatile_reset([this](Runtime& rt) {
      state_ = StickyState{};
      rt.refresh_commit_fp(id_, detail::fp_of(state_.value));
    });
  }

  ObjectId id_;
  StickyState state_;
  Durability durability_ = Durability::kDurable;
  bool armed_ = false;
};

/// n-consensus from one sticky register, for any n. With a durable sticky
/// register this is also a recoverable-consensus protocol: a recovered
/// incarnation re-sticks and re-decides the same stuck value.
inline Value consensus_from_sticky(Context& ctx, StickyRegister& sticky,
                                   Value v) {
  return sticky.stick(ctx, v);
}

}  // namespace subc
