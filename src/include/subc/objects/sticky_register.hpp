// Sticky register (write-once register): the first write sticks, later
// writes are ignored; reads return the stuck value or ⊥. Like compare&swap
// it has infinite consensus number (Plotkin's sticky bit generalized) —
// another top-of-hierarchy control class for the power map.
#pragma once

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Write-once register: `stick` returns the value that stuck.
class StickyRegister {
 public:
  StickyRegister() = default;

  /// Atomically writes `v` if nothing stuck yet; returns the stuck value.
  Value stick(Context& ctx, Value v) {
    if (v == kBottom) {
      throw SimError("stick(⊥) is illegal");
    }
    ctx.sched_point(id_, AccessKind::kRmw);
    if (value_ == kBottom) {
      value_ = v;
    }
    return value_;
  }

  /// Atomic read (⊥ while nothing stuck).
  Value read(Context& ctx) {
    ctx.sched_point(id_, AccessKind::kRead);
    return value_;
  }

 private:
  ObjectId id_;
  Value value_ = kBottom;
};

/// n-consensus from one sticky register, for any n.
inline Value consensus_from_sticky(Context& ctx, StickyRegister& sticky,
                                   Value v) {
  return sticky.stick(ctx, v);
}

}  // namespace subc
