// The soft-wired reading of 1sWRN_k (§3's remark).
//
// The paper notes that the one-use-per-index requirement "is reminiscent of
// the soft-wired model, in which there cannot be concurrency on a port",
// and that 1sWRN_k could have been specified there instead of adding ad-hoc
// usage assumptions to the oblivious object. This wrapper realizes that
// reading: each index is a *port* bound to at most one process; binding is
// explicit (`bind`), rebinding or using an unbound/foreign port is an API
// error (a thrown SimError — a *detectable* misuse, unlike the oblivious
// object's undetectable hang). Tests check the two objects agree on all
// legal usage and differ exactly in how misuse manifests.
#pragma once

#include <vector>

#include "subc/objects/wrn.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Soft-wired 1sWRN_k: ports must be bound before use; one port per
/// process, one invocation per port.
class PortedWrn {
 public:
  explicit PortedWrn(int k)
      : inner_(k), owner_(static_cast<std::size_t>(k), kUnbound) {}

  /// Binds `port` to the calling process. Process-local bookkeeping plus
  /// one shared step (the binding registry write).
  void bind(Context& ctx, int port) {
    check_port(port);
    ctx.sched_point(registry_id_, AccessKind::kRmw);
    auto& owner = owner_[static_cast<std::size_t>(port)];
    if (owner != kUnbound) {
      throw SimError("port " + std::to_string(port) + " already bound");
    }
    owner = ctx.pid();
  }

  /// The WRN operation through a bound port.
  Value wrn(Context& ctx, int port, Value v) {
    check_port(port);
    // Ownership check is process-local (the binding was established
    // happens-before by this process or the misuse is an API error anyway).
    const int owner = owner_[static_cast<std::size_t>(port)];
    if (owner == kUnbound) {
      throw SimError("port " + std::to_string(port) + " not bound");
    }
    if (owner != ctx.pid()) {
      throw SimError("port " + std::to_string(port) +
                     " bound to another process");
    }
    return inner_.wrn(ctx, port, v);  // inner enforces one-shot semantics
  }

  [[nodiscard]] int k() const noexcept { return inner_.k(); }

 private:
  static constexpr int kUnbound = -1;

  void check_port(int port) const {
    if (port < 0 || port >= inner_.k()) {
      throw SimError("port out of range");
    }
  }

  ObjectId registry_id_;  // footprint of the binding registry (bind steps)
  OneShotWrnObject inner_;
  std::vector<int> owner_;
};

}  // namespace subc
