// Atomic swap register. The paper notes (§3) that WRN_2 *is* a SWAP object,
// whose consensus number is 2 [Herlihy]; we provide the classic object both
// for that boundary test and for general substrate completeness.
#pragma once

#include <utility>

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Register with an atomic swap (write-and-return-previous) operation.
class SwapRegister {
 public:
  explicit SwapRegister(Value initial = kBottom) : value_(initial) {}

  /// Atomically writes `v` and returns the previous value.
  Value swap(Context& ctx, Value v) {
    ctx.sched_point(id_, AccessKind::kRmw);
    return std::exchange(value_, v);
  }

  /// Atomic read.
  Value read(Context& ctx) {
    ctx.sched_point(id_, AccessKind::kRead);
    return value_;
  }

  /// Stepped-engine access (runtime/stepper.hpp): announce with `oid()` at
  /// the step point, run the atomic body via `step_*` inside the grant.
  [[nodiscard]] const ObjectId& oid() const noexcept { return id_; }
  Value step_swap(Value v) noexcept { return std::exchange(value_, v); }
  [[nodiscard]] Value step_read() const noexcept { return value_; }

 private:
  ObjectId id_;
  Value value_;
};

}  // namespace subc
