// Atomic swap register. The paper notes (§3) that WRN_2 *is* a SWAP object,
// whose consensus number is 2 [Herlihy]; we provide the classic object both
// for that boundary test and for general substrate completeness.
//
// State/core split (multi-instance runtime, runtime/instance.hpp): the
// state is a plain `SwapState` block and the atomic bodies are free cores
// taking an explicit state pointer, shared by the fiber form, the stepped
// form and the instance layer.
#pragma once

#include <utility>

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Detached state of a swap register.
struct SwapState {
  Value value = kBottom;
};

/// The atomic swap commit core: write `v`, return the previous value.
/// Fingerprint reports: observe the previous value, commit the new state.
template <class Ctx>
Value swap_commit(Ctx& ctx, const ObjectId& id, SwapState* st,
                  Value v) noexcept {
  const Value prev = std::exchange(st->value, v);
  if (ctx.fingerprinting()) {
    ctx.observe_fp(detail::fp_of(prev));
    ctx.commit_fp(id, detail::fp_of(st->value));
  }
  return prev;
}

/// The atomic read core: observe the current value.
template <class Ctx>
[[nodiscard]] Value swap_read(Ctx& ctx, const SwapState* st) noexcept {
  if (ctx.fingerprinting()) {
    ctx.observe_fp(detail::fp_of(st->value));
  }
  return st->value;
}

/// Register with an atomic swap (write-and-return-previous) operation.
class SwapRegister {
 public:
  explicit SwapRegister(Value initial = kBottom,
                        Durability durability = Durability::kDurable)
      : state_{initial}, initial_(initial), durability_(durability) {}

  /// Atomically writes `v` and returns the previous value.
  Value swap(Context& ctx, Value v) {
    arm_volatile(ctx);
    ctx.sched_point(id_, AccessKind::kRmw);
    return step_swap(ctx, v);
  }

  /// Atomic read.
  Value read(Context& ctx) {
    ctx.sched_point(id_, AccessKind::kRead);
    return step_read(ctx);
  }

  /// Stepped-engine access (runtime/stepper.hpp): announce with `oid()` at
  /// the step point, run the atomic body via `step_*` inside the grant.
  /// Both forms route through the `swap_commit`/`swap_read` cores above.
  [[nodiscard]] const ObjectId& oid() const noexcept { return id_; }

  template <class Ctx>
  Value step_swap(Ctx& ctx, Value v) {
    arm_volatile(ctx);
    return swap_commit(ctx, id_, &state_, v);
  }

  template <class Ctx>
  [[nodiscard]] Value step_read(Ctx& ctx) const noexcept {
    return swap_read(ctx, &state_);
  }

 private:
  /// Volatile variant (crash-recovery, `Durability`): arm the crash-event
  /// reset hook on first mutation. Captures `this` — a volatile swap
  /// register must not relocate after its first swap.
  template <class Ctx>
  void arm_volatile(Ctx& ctx) {
    if (durability_ == Durability::kDurable || armed_) {
      return;
    }
    armed_ = true;
    ctx.runtime().add_volatile_reset([this](Runtime& rt) {
      state_ = SwapState{initial_};
      rt.refresh_commit_fp(id_, detail::fp_of(state_.value));
    });
  }

  ObjectId id_;
  SwapState state_;
  Value initial_ = kBottom;
  Durability durability_ = Durability::kDurable;
  bool armed_ = false;
};

}  // namespace subc
