// Atomic swap register. The paper notes (§3) that WRN_2 *is* a SWAP object,
// whose consensus number is 2 [Herlihy]; we provide the classic object both
// for that boundary test and for general substrate completeness.
#pragma once

#include <utility>

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Register with an atomic swap (write-and-return-previous) operation.
class SwapRegister {
 public:
  explicit SwapRegister(Value initial = kBottom) : value_(initial) {}

  /// Atomically writes `v` and returns the previous value.
  Value swap(Context& ctx, Value v) {
    ctx.sched_point(id_, AccessKind::kRmw);
    return step_swap(ctx, v);
  }

  /// Atomic read.
  Value read(Context& ctx) {
    ctx.sched_point(id_, AccessKind::kRead);
    return step_read(ctx);
  }

  /// Stepped-engine access (runtime/stepper.hpp): announce with `oid()` at
  /// the step point, run the atomic body via `step_*` inside the grant.
  /// The cores are shared with the fiber forms and report fingerprints for
  /// stateful exploration: swap observes the previous value and commits the
  /// new state, read observes the value.
  [[nodiscard]] const ObjectId& oid() const noexcept { return id_; }

  template <class Ctx>
  Value step_swap(Ctx& ctx, Value v) noexcept {
    const Value prev = std::exchange(value_, v);
    if (ctx.fingerprinting()) {
      ctx.observe_fp(detail::fp_of(prev));
      ctx.commit_fp(id_, detail::fp_of(value_));
    }
    return prev;
  }

  template <class Ctx>
  [[nodiscard]] Value step_read(Ctx& ctx) const noexcept {
    if (ctx.fingerprinting()) {
      ctx.observe_fp(detail::fp_of(value_));
    }
    return value_;
  }

 private:
  ObjectId id_;
  Value value_;
};

}  // namespace subc
