// The nondeterministic (n,k)-set-consensus object, exactly as defined in the
// papers' model section: its value is a set of at most k proposals plus a
// propose count (to a maximum of n). The first propose adds its input to the
// set; any later propose may nondeterministically add its input while the
// set is smaller than k; each of the first n proposes nondeterministically
// returns an element of the set; all subsequent proposes hang the system
// undetectably. Nondeterminism is resolved adversarially through
// `Context::choose`, so the exhaustive explorer enumerates every behaviour.
#pragma once

#include <vector>

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Nondeterministic (n,k)-set-consensus object.
class SetConsensusObject {
 public:
  SetConsensusObject(int n, int k) : n_(n), k_(k) {
    if (k < 1 || n <= k) {
      throw SimError("SetConsensusObject requires 1 <= k < n");
    }
  }

  /// Proposes `v`; returns an adversarially chosen element of the value set.
  Value propose(Context& ctx, Value v) {
    if (v == kBottom) {
      throw SimError("propose(⊥) is illegal");
    }
    ctx.sched_point(id_, AccessKind::kChoose);
    if (proposals_ == n_) {
      ctx.hang();
    }
    ++proposals_;
    if (set_.empty()) {
      set_.push_back(v);
    } else if (static_cast<int>(set_.size()) < k_ && !contains(v)) {
      // Adversary decides whether this proposal joins the value set.
      if (ctx.choose(2) == 1) {
        set_.push_back(v);
      }
    }
    // Adversary picks which element of the set this propose returns.
    const auto idx = ctx.choose(static_cast<std::uint32_t>(set_.size()));
    return set_[idx];
  }

  [[nodiscard]] int capacity() const noexcept { return n_; }
  [[nodiscard]] int agreement() const noexcept { return k_; }

 private:
  [[nodiscard]] bool contains(Value v) const {
    for (const Value x : set_) {
      if (x == v) {
        return true;
      }
    }
    return false;
  }

  ObjectId id_;
  int n_;
  int k_;
  int proposals_ = 0;
  std::vector<Value> set_;
};

}  // namespace subc
