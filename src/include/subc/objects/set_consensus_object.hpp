// The nondeterministic (n,k)-set-consensus object, exactly as defined in the
// papers' model section: its value is a set of at most k proposals plus a
// propose count (to a maximum of n). The first propose adds its input to the
// set; any later propose may nondeterministically add its input while the
// set is smaller than k; each of the first n proposes nondeterministically
// returns an element of the set; all subsequent proposes hang the system
// undetectably. Nondeterminism is resolved adversarially through
// `Context::choose`, so the exhaustive explorer enumerates every behaviour.
//
// State/core split (multi-instance runtime, runtime/instance.hpp): the
// object state is a plain `SetConsensusState` block and the propose body is
// the free `set_consensus_propose` core taking an explicit state pointer,
// so one arena can serve thousands of concurrent set-consensus instances
// outside any simulated world. The core makes no fingerprint reports —
// set-consensus worlds stay unported for stateful exploration, which
// soundly poisons their fingerprints (docs/explorer.md).
#pragma once

#include <vector>

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Detached state of an (n,k)-set-consensus object.
struct SetConsensusState {
  int n = 0;
  int k = 0;
  int proposals = 0;
  std::vector<Value> set;

  void reset(int n_arg, int k_arg) {
    if (k_arg < 1 || n_arg <= k_arg) {
      throw SimError("SetConsensusObject requires 1 <= k < n");
    }
    n = n_arg;
    k = k_arg;
    proposals = 0;
    set.clear();
  }

  [[nodiscard]] bool contains(Value v) const {
    for (const Value x : set) {
      if (x == v) {
        return true;
      }
    }
    return false;
  }
};

/// The atomic set-consensus propose core: runs inside a granted step (or a
/// service context) against the explicit state block. The (n+1)-th propose
/// hangs the process (`ctx.hang()`) and returns ⊥ — stepped/service callers
/// must cut short (the fiber `Context::hang` never returns). Nondeterminism
/// is resolved through `ctx.choose`, so the adversary shape is identical on
/// every path.
template <class Ctx>
Value set_consensus_propose(Ctx& ctx, SetConsensusState* st, Value v) {
  if (v == kBottom) {
    throw SimError("propose(⊥) is illegal");
  }
  if (st->proposals == st->n) {
    ctx.hang();      // never returns on the fiber engine
    return kBottom;  // stepped/service caller must cut short
  }
  ++st->proposals;
  if (st->set.empty()) {
    st->set.push_back(v);
  } else if (static_cast<int>(st->set.size()) < st->k && !st->contains(v)) {
    // Adversary decides whether this proposal joins the value set.
    if (ctx.choose(2) == 1) {
      st->set.push_back(v);
    }
  }
  // Adversary picks which element of the set this propose returns.
  const auto idx = ctx.choose(static_cast<std::uint32_t>(st->set.size()));
  return st->set[idx];
}

/// Nondeterministic (n,k)-set-consensus object, bound to one world.
class SetConsensusObject {
 public:
  SetConsensusObject(int n, int k) { state_.reset(n, k); }

  /// Proposes `v`; returns an adversarially chosen element of the value set.
  Value propose(Context& ctx, Value v) {
    if (v == kBottom) {
      throw SimError("propose(⊥) is illegal");
    }
    ctx.sched_point(id_, AccessKind::kChoose);
    return step_propose(ctx, v);
  }

  /// Stepped-engine form: announce `{oid(), kChoose}`, run inside the
  /// grant through `SUBC_STEP_CALL` so the hang path cuts the body short.
  /// Routes through the same `set_consensus_propose` core as the fiber form
  /// and the instance layer.
  [[nodiscard]] const ObjectId& oid() const noexcept { return id_; }

  template <class Ctx>
  Value step_propose(Ctx& ctx, Value v) {
    return set_consensus_propose(ctx, &state_, v);
  }

  [[nodiscard]] int capacity() const noexcept { return state_.n; }
  [[nodiscard]] int agreement() const noexcept { return state_.k; }

 private:
  ObjectId id_;
  SetConsensusState state_;
};

}  // namespace subc
