// Atomic read/write registers (multi-writer multi-reader) and register
// arrays. The weakest objects in the hierarchy — consensus number 1 — and
// the base currency of every construction in the papers.
#pragma once

#include <vector>

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Detached state of an atomic register (multi-instance runtime,
/// runtime/instance.hpp): pure data, no world binding.
template <class T = Value>
struct RegisterState {
  T value{};
};

/// The atomic read core: observe the value (when `T` fingerprints).
template <class Ctx, class T>
[[nodiscard]] const T& register_read(Ctx& ctx, const RegisterState<T>* st) {
  if constexpr (requires { detail::fp_of(st->value); }) {
    if (ctx.fingerprinting()) {
      ctx.observe_fp(detail::fp_of(st->value));
    }
  }
  return st->value;
}

/// The atomic write core: commit the post-state (when `T` fingerprints).
template <class Ctx, class T>
void register_write(Ctx& ctx, const ObjectId& id, RegisterState<T>* st, T v) {
  st->value = std::move(v);
  if constexpr (requires { detail::fp_of(st->value); }) {
    if (ctx.fingerprinting()) {
      ctx.commit_fp(id, detail::fp_of(st->value));
    }
  }
}

/// A multi-writer multi-reader atomic register holding a `T`.
/// `T` defaults to `Value`; composite payloads (e.g. the snapshot arrays
/// Algorithm 5 announces in its `O[]` array) instantiate other `T`s.
template <class T = Value>
class Register {
 public:
  explicit Register(T initial = T{},
                    Durability durability = Durability::kDurable)
      : state_{initial},
        initial_(std::move(initial)),
        durability_(durability) {}

  /// Atomic read.
  T read(Context& ctx) {
    ctx.sched_point(id_, AccessKind::kRead);
    return step_read(ctx);
  }

  /// Atomic write.
  void write(Context& ctx, T v) {
    arm_volatile(ctx);
    ctx.sched_point(id_, AccessKind::kWrite);
    step_write(ctx, std::move(v));
  }

  /// Non-step peek for validators/test assertions *after* a run. Never call
  /// from process code: it would bypass the step model.
  [[nodiscard]] const T& peek() const noexcept { return state_.value; }

  /// Stepped-engine access (runtime/stepper.hpp): the body announces the
  /// footprint itself — `SUBC_STEP_POINT(ctx, reg.oid(), kind)` — then runs
  /// the atomic operation body via `step_*` inside the granted step. Both
  /// forms route through the `register_read`/`register_write` cores above,
  /// so every path makes identical fingerprint reports (stateful
  /// exploration, docs/explorer.md): a read *observes* the value, a write
  /// *commits* the post-state. Registers holding a `T` without a
  /// `detail::fp_of` overload report nothing, which soundly poisons the
  /// fingerprint for executions that step them.
  [[nodiscard]] const ObjectId& oid() const noexcept { return id_; }

  template <class Ctx>
  [[nodiscard]] const T& step_read(Ctx& ctx) const {
    return register_read(ctx, &state_);
  }

  template <class Ctx>
  void step_write(Ctx& ctx, T v) {
    arm_volatile(ctx);
    register_write(ctx, id_, &state_, std::move(v));
  }

 private:
  /// Volatile variant (crash-recovery exploration, `Durability`): register
  /// the crash-event reset hook on the first mutation — the object meets
  /// its runtime no earlier. The hook captures `this`, so a volatile
  /// register must not relocate after its first write.
  template <class Ctx>
  void arm_volatile(Ctx& ctx) {
    if (durability_ == Durability::kDurable || armed_) {
      return;
    }
    armed_ = true;
    ctx.runtime().add_volatile_reset([this](Runtime& rt) {
      state_ = RegisterState<T>{initial_};
      if constexpr (requires { detail::fp_of(state_.value); }) {
        rt.refresh_commit_fp(id_, detail::fp_of(state_.value));
      }
    });
  }

  ObjectId id_;
  RegisterState<T> state_;
  T initial_{};
  Durability durability_ = Durability::kDurable;
  bool armed_ = false;
};

/// A fixed-size array of independent atomic registers.
template <class T = Value>
class RegisterArray {
 public:
  RegisterArray(int size, T initial,
                Durability durability = Durability::kDurable)
      : regs_(static_cast<std::size_t>(size),
              Register<T>(initial, durability)) {
    if (size <= 0) {
      throw SimError("RegisterArray size must be positive");
    }
  }

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(regs_.size());
  }

  Register<T>& operator[](int i) {
    if (i < 0 || i >= size()) {
      throw SimError("RegisterArray index out of range");
    }
    return regs_[static_cast<std::size_t>(i)];
  }

 private:
  std::vector<Register<T>> regs_;
};

}  // namespace subc
