// Atomic read/write registers (multi-writer multi-reader) and register
// arrays. The weakest objects in the hierarchy — consensus number 1 — and
// the base currency of every construction in the papers.
#pragma once

#include <vector>

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// A multi-writer multi-reader atomic register holding a `T`.
/// `T` defaults to `Value`; composite payloads (e.g. the snapshot arrays
/// Algorithm 5 announces in its `O[]` array) instantiate other `T`s.
template <class T = Value>
class Register {
 public:
  explicit Register(T initial = T{}) : value_(std::move(initial)) {}

  /// Atomic read.
  T read(Context& ctx) {
    ctx.sched_point(id_, AccessKind::kRead);
    return step_read(ctx);
  }

  /// Atomic write.
  void write(Context& ctx, T v) {
    ctx.sched_point(id_, AccessKind::kWrite);
    step_write(ctx, std::move(v));
  }

  /// Non-step peek for validators/test assertions *after* a run. Never call
  /// from process code: it would bypass the step model.
  [[nodiscard]] const T& peek() const noexcept { return value_; }

  /// Stepped-engine access (runtime/stepper.hpp): the body announces the
  /// footprint itself — `SUBC_STEP_POINT(ctx, reg.oid(), kind)` — then runs
  /// the atomic operation body via `step_*` inside the granted step. The
  /// cores are templated on the context type and shared with the fiber
  /// forms above, so both engines make identical fingerprint reports
  /// (stateful exploration, docs/explorer.md): a read *observes* the value,
  /// a write *commits* the post-state. Registers holding a `T` without a
  /// `detail::fp_of` overload report nothing, which soundly poisons the
  /// fingerprint for executions that step them.
  [[nodiscard]] const ObjectId& oid() const noexcept { return id_; }

  template <class Ctx>
  [[nodiscard]] const T& step_read(Ctx& ctx) const {
    if constexpr (requires { detail::fp_of(value_); }) {
      if (ctx.fingerprinting()) {
        ctx.observe_fp(detail::fp_of(value_));
      }
    }
    return value_;
  }

  template <class Ctx>
  void step_write(Ctx& ctx, T v) {
    value_ = std::move(v);
    if constexpr (requires { detail::fp_of(value_); }) {
      if (ctx.fingerprinting()) {
        ctx.commit_fp(id_, detail::fp_of(value_));
      }
    }
  }

 private:
  ObjectId id_;
  T value_;
};

/// A fixed-size array of independent atomic registers.
template <class T = Value>
class RegisterArray {
 public:
  RegisterArray(int size, T initial)
      : regs_(static_cast<std::size_t>(size), Register<T>(initial)) {
    if (size <= 0) {
      throw SimError("RegisterArray size must be positive");
    }
  }

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(regs_.size());
  }

  Register<T>& operator[](int i) {
    if (i < 0 || i >= size()) {
      throw SimError("RegisterArray index out of range");
    }
    return regs_[static_cast<std::size_t>(i)];
  }

 private:
  std::vector<Register<T>> regs_;
};

}  // namespace subc
