// Strong set election as an atomic object.
//
// Algorithm 5 assumes a "(k, k-1)-strong set election implementation SSE",
// which the paper obtains from (k, k-1)-set consensus via Borowsky–Gafni
// [9]. Per the substitution table in DESIGN.md we provide the same
// *interface* as an atomic object: a (n, k)-strong set election object
// guarantees
//   * validity     — every output is the id of some invoker,
//   * k-agreement  — at most k distinct outputs,
//   * self-election — if some invocation with id i returns j, then the
//                     invocation with id j returned j.
// The object is adversarially nondeterministic: an invocation may self-elect
// while fewer than k ids have self-elected, or adopt any already
// self-elected id; the adversary picks via Context::choose, so exhaustive
// exploration covers every legal election outcome.
#pragma once

#include <vector>

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Nondeterministic (n,k)-strong-set-election object. Ids are arbitrary
/// values; each distinct id should invoke at most once (Algorithm 5
/// guarantees this via its doorway). Invocations beyond the n-th hang.
class StrongSetElectionObject {
 public:
  StrongSetElectionObject(int n, int k) : n_(n), k_(k) {
    if (k < 1 || n < k) {
      throw SimError("StrongSetElectionObject requires 1 <= k <= n");
    }
  }

  /// Invokes the election with this process's `id`; returns the elected id.
  Value invoke(Context& ctx, Value id) {
    if (id == kBottom) {
      throw SimError("invoke(⊥) is illegal");
    }
    ctx.sched_point(id_, AccessKind::kChoose);
    if (invocations_ == n_) {
      ctx.hang();
    }
    ++invocations_;
    // Options: adopt any current winner; additionally self-elect while the
    // winner budget (k) is not exhausted.
    const bool may_self = static_cast<int>(winners_.size()) < k_;
    const std::uint32_t arity =
        static_cast<std::uint32_t>(winners_.size()) + (may_self ? 1u : 0u);
    SUBC_ASSERT(arity >= 1);  // first invocation can always self-elect
    const std::uint32_t pick = ctx.choose(arity);
    if (may_self && pick == winners_.size()) {
      winners_.push_back(id);
      return id;
    }
    return winners_[pick];
  }

  /// Stepped-engine form: announce `{oid(), kChoose}`, run inside the
  /// grant. Past-capacity invocations hang (`StepContext::hang`) and return
  /// ⊥ — call through `SUBC_STEP_CALL` (runtime/stepper.hpp).
  [[nodiscard]] const ObjectId& oid() const noexcept { return id_; }
  Value step_invoke(StepContext& ctx, Value id) {
    if (id == kBottom) {
      throw SimError("invoke(⊥) is illegal");
    }
    if (invocations_ == n_) {
      ctx.hang();  // caller must return from step() immediately
      return kBottom;
    }
    ++invocations_;
    const bool may_self = static_cast<int>(winners_.size()) < k_;
    const std::uint32_t arity =
        static_cast<std::uint32_t>(winners_.size()) + (may_self ? 1u : 0u);
    SUBC_ASSERT(arity >= 1);
    const std::uint32_t pick = ctx.choose(arity);
    if (may_self && pick == winners_.size()) {
      winners_.push_back(id);
      return id;
    }
    return winners_[pick];
  }

  [[nodiscard]] int capacity() const noexcept { return n_; }
  [[nodiscard]] int agreement() const noexcept { return k_; }

 private:
  ObjectId id_;
  int n_;
  int k_;
  int invocations_ = 0;
  std::vector<Value> winners_;
};

}  // namespace subc
