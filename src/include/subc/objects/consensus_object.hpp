// The n-consensus base object: deterministic, first proposal wins, and —
// following the oblivious-model convention the papers use for set-consensus
// objects — any propose beyond the n-th hangs the system undetectably.
#pragma once

#include <vector>

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Deterministic n-consensus object. The first `propose` fixes the decision;
/// the first n proposes return it; later proposes hang.
class ConsensusObject {
 public:
  explicit ConsensusObject(int n) : n_(n) {
    if (n <= 0) {
      throw SimError("ConsensusObject requires n >= 1");
    }
  }

  /// Proposes `v`; returns the object's decision (the first proposal).
  Value propose(Context& ctx, Value v) {
    if (v == kBottom) {
      throw SimError("propose(⊥) is illegal");
    }
    ctx.sched_point(id_, AccessKind::kRmw);
    if (proposals_ == n_) {
      ctx.hang();
    }
    ++proposals_;
    if (decision_ == kBottom) {
      decision_ = v;
    }
    return decision_;
  }

  [[nodiscard]] int capacity() const noexcept { return n_; }

 private:
  ObjectId id_;
  int n_;
  int proposals_ = 0;
  Value decision_ = kBottom;
};

}  // namespace subc
