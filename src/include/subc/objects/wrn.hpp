// Write-and-Read-Next objects — the paper's central contribution (§3).
//
// WRN_k has a single operation WRN(i, v), i ∈ {0..k-1}, v ≠ ⊥: atomically
// write v into slot i and return the current content of slot (i+1) mod k
// (⊥ if never written). Algorithm 1 of the paper is its sequential spec.
//
// 1sWRN_k (OneShotWrn) is identical except every index may be used at most
// once; a second invocation with the same index hangs the system
// undetectably.
//
// For k = 2, WRN_2 is a SWAP object (consensus number 2). For k ≥ 3 the
// paper proves consensus number 1 but strictly more power than registers —
// the witness objects for the sub-consensus hierarchy.
//
// State/core split (multi-instance runtime, docs/explorer.md): the object
// state lives in a plain struct (`WrnState`, `OneShotWrnState`) and the
// atomic commit body is a free function core taking an explicit state-block
// pointer (`wrn_commit`, `one_shot_wrn_commit`). The member classes below
// bind one state block to one world; the `InstanceTable`
// (runtime/instance.hpp) carves thousands of such blocks from one arena and
// drives the same cores outside any simulated world. Both execution engines
// and the service path therefore share one commit body per object.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "subc/runtime/hashing.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Detached state of a WRN_k object: pure data, no world binding.
struct WrnState {
  int k = 0;
  std::vector<Value> slots;

  /// (Re)initialises for a fresh WRN_k; reuses the slot buffer's capacity,
  /// so recycled instance blocks stop allocating in steady state.
  void reset(int k_arg) {
    k = k_arg;
    slots.assign(static_cast<std::size_t>(k_arg), kBottom);
  }
};

/// Argument validation shared by every WRN entry point (throws SimError).
void wrn_check_params(int k, int index, Value v);

/// The sequential WRN body (Algorithm 1), engine- and fingerprint-free:
/// slot[i] = v; return slot[(i+1) mod k].
Value wrn_apply(WrnState* st, int index, Value v);

/// The atomic WRN commit core: runs inside a granted step (or a service
/// context), applies Algorithm 1 to the explicit state block, and makes the
/// fingerprint reports (observe the returned neighbour slot, commit the
/// post-write slot vector) both engines and the instance layer share.
template <class Ctx>
Value wrn_commit(Ctx& ctx, const ObjectId& id, WrnState* st, int index,
                 Value v) {
  const Value out = wrn_apply(st, index, v);
  if (ctx.fingerprinting()) {
    ctx.observe_fp(detail::fp_of(out));
    ctx.commit_fp(id, detail::fp_of(st->slots));
  }
  return out;
}

/// The deterministic WRN_k object (Algorithm 1), bound to one world.
class WrnObject {
 public:
  explicit WrnObject(int k, Durability durability = Durability::kDurable);

  /// Atomically: slot[i] = v; return slot[(i+1) mod k].
  Value wrn(Context& ctx, int index, Value v);

  [[nodiscard]] int k() const noexcept { return state_.k; }

  /// Post-run peek at a slot (never call from process code).
  [[nodiscard]] Value peek(int index) const;

  /// Stepped-engine access (runtime/stepper.hpp): announce
  /// `{oid(), kRmw}` at the step point, run the atomic body via `step_wrn`
  /// inside the granted step. Routes through the same `wrn_commit` core as
  /// the fiber form and the instance layer.
  [[nodiscard]] const ObjectId& oid() const noexcept { return id_; }

  template <class Ctx>
  Value step_wrn(Ctx& ctx, int index, Value v) {
    arm_volatile(ctx);
    return wrn_commit(ctx, id_, &state_, index, v);
  }

 private:
  /// Volatile variant (crash-recovery, `Durability`): arm the crash-event
  /// reset hook on first mutation; `WrnState::reset` is the natural wipe.
  /// Captures `this` — a volatile WRN must not relocate after first use.
  template <class Ctx>
  void arm_volatile(Ctx& ctx) {
    if (durability_ == Durability::kDurable || armed_) {
      return;
    }
    armed_ = true;
    ctx.runtime().add_volatile_reset([this](Runtime& rt) {
      state_.reset(state_.k);
      rt.refresh_commit_fp(id_, detail::fp_of(state_.slots));
    });
  }

  ObjectId id_;
  WrnState state_;
  Durability durability_ = Durability::kDurable;
  bool armed_ = false;
};

/// Detached state of a 1sWRN_k object.
struct OneShotWrnState {
  int k = 0;
  std::vector<Value> slots;
  std::vector<bool> used;

  void reset(int k_arg) {
    k = k_arg;
    slots.assign(static_cast<std::size_t>(k_arg), kBottom);
    used.assign(static_cast<std::size_t>(k_arg), false);
  }
};

/// Slots + used bits, mixed exactly like OneShotWrnSpec::hash — the
/// per-object commit term of the world fingerprint.
[[nodiscard]] std::uint64_t one_shot_wrn_state_hash(const OneShotWrnState& st);

/// The atomic 1sWRN commit core. On index reuse it hangs the process
/// (`ctx.hang()`) and returns ⊥ — stepped/service callers must cut short
/// (the fiber `Context::hang` never returns). Fingerprint reports: observe
/// the returned slot, commit slots + used bits.
template <class Ctx>
Value one_shot_wrn_commit(Ctx& ctx, const ObjectId& id, OneShotWrnState* st,
                          int index, Value v) {
  wrn_check_params(st->k, index, v);
  const auto i = static_cast<std::size_t>(index);
  if (st->used[i]) {
    // "Any attempt to invoke 1sWRN with the same index twice is illegal,
    // and hangs the system in a manner that cannot be detected."
    ctx.hang();      // never returns on the fiber engine
    return kBottom;  // stepped/service caller must cut short
  }
  st->used[i] = true;
  st->slots[i] = v;
  const Value out = st->slots[(i + 1) % static_cast<std::size_t>(st->k)];
  if (ctx.fingerprinting()) {
    ctx.observe_fp(detail::fp_of(out));
    ctx.commit_fp(id, one_shot_wrn_state_hash(*st));
  }
  return out;
}

/// The one-shot variant 1sWRN_k: reusing an index hangs undetectably.
class OneShotWrnObject {
 public:
  explicit OneShotWrnObject(int k,
                            Durability durability = Durability::kDurable);

  /// As WrnObject::wrn, but each index is usable at most once.
  Value wrn(Context& ctx, int index, Value v);

  [[nodiscard]] int k() const noexcept { return state_.k; }

  /// Stepped-engine form: announce `{oid(), kRmw}`, run inside the grant.
  /// On index reuse it hangs the process (`StepContext::hang`) and returns
  /// ⊥ — call through `SUBC_STEP_CALL` so the body cuts short, mirroring
  /// the fiber form where `Context::hang` never returns. Routes through the
  /// same `one_shot_wrn_commit` core as the fiber form and the instance
  /// layer.
  [[nodiscard]] const ObjectId& oid() const noexcept { return id_; }

  template <class Ctx>
  Value step_wrn(Ctx& ctx, int index, Value v) {
    arm_volatile(ctx);
    return one_shot_wrn_commit(ctx, id_, &state_, index, v);
  }

 private:
  /// As WrnObject::arm_volatile: crash events wipe slots *and* used bits
  /// (`OneShotWrnState::reset`) for the volatile variant — a recovered
  /// incarnation may legally reuse its index against a wiped object.
  template <class Ctx>
  void arm_volatile(Ctx& ctx) {
    if (durability_ == Durability::kDurable || armed_) {
      return;
    }
    armed_ = true;
    ctx.runtime().add_volatile_reset([this](Runtime& rt) {
      state_.reset(state_.k);
      rt.refresh_commit_fp(id_, one_shot_wrn_state_hash(state_));
    });
  }

  ObjectId id_;
  OneShotWrnState state_;
  Durability durability_ = Durability::kDurable;
  bool armed_ = false;
};

/// Sequential specification of 1sWRN_k for the linearizability checker
/// (subc/checking/linearizability.hpp). Operations are encoded as
/// {index, value}; responses as {returned value}. Applying a repeated index
/// is illegal (the checker treats it as "this linearization is impossible").
struct OneShotWrnSpec {
  int k;

  struct State {
    std::vector<Value> slots;
    std::vector<bool> used;
  };

  [[nodiscard]] State initial() const {
    return State{std::vector<Value>(static_cast<std::size_t>(k), kBottom),
                 std::vector<bool>(static_cast<std::size_t>(k), false)};
  }

  /// Applies op = {index, v}. Returns false when the op is illegal in this
  /// state; otherwise fills `response` and mutates `state`.
  bool apply(State& state, const std::vector<Value>& op,
             std::vector<Value>& response) const {
    SUBC_ASSERT(op.size() == 2);
    const auto i = static_cast<std::size_t>(op[0]);
    SUBC_ASSERT(op[0] >= 0 && op[0] < k);
    if (state.used[i]) {
      return false;
    }
    state.used[i] = true;
    state.slots[i] = op[1];
    response = {state.slots[(i + 1) % static_cast<std::size_t>(k)]};
    return true;
  }

  /// Memoization key for the checker.
  [[nodiscard]] std::string key(const State& state) const {
    std::string s;
    for (int i = 0; i < k; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      s += state.used[idx] ? 'U' : '.';
      s += to_string(state.slots[idx]);
      s += '|';
    }
    return s;
  }

  /// Memoization fingerprint for the checker's hashed memo: mixes each slot
  /// (value + used bit) without building the `key()` string.
  [[nodiscard]] std::uint64_t hash(const State& state) const {
    std::uint64_t h = 0x6a09e667f3bcc909ULL;
    for (int i = 0; i < k; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const auto v = static_cast<std::uint64_t>(state.slots[idx]);
      h = detail::mix64(h ^ v ^ (state.used[idx] ? 0x8000000000000000ULL : 0));
    }
    return h;
  }
};

}  // namespace subc
