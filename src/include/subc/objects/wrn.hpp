// Write-and-Read-Next objects — the paper's central contribution (§3).
//
// WRN_k has a single operation WRN(i, v), i ∈ {0..k-1}, v ≠ ⊥: atomically
// write v into slot i and return the current content of slot (i+1) mod k
// (⊥ if never written). Algorithm 1 of the paper is its sequential spec.
//
// 1sWRN_k (OneShotWrn) is identical except every index may be used at most
// once; a second invocation with the same index hangs the system
// undetectably.
//
// For k = 2, WRN_2 is a SWAP object (consensus number 2). For k ≥ 3 the
// paper proves consensus number 1 but strictly more power than registers —
// the witness objects for the sub-consensus hierarchy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "subc/runtime/hashing.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// The deterministic WRN_k object (Algorithm 1).
class WrnObject {
 public:
  explicit WrnObject(int k);

  /// Atomically: slot[i] = v; return slot[(i+1) mod k].
  Value wrn(Context& ctx, int index, Value v);

  [[nodiscard]] int k() const noexcept { return k_; }

  /// Post-run peek at a slot (never call from process code).
  [[nodiscard]] Value peek(int index) const;

  /// Stepped-engine access (runtime/stepper.hpp): announce
  /// `{oid(), kRmw}` at the step point, run the atomic body via `step_wrn`
  /// inside the granted step. The core is shared with the fiber form and
  /// reports fingerprints for stateful exploration: it observes the
  /// returned neighbour slot and commits the post-write slot vector.
  [[nodiscard]] const ObjectId& oid() const noexcept { return id_; }

  template <class Ctx>
  Value step_wrn(Ctx& ctx, int index, Value v) {
    const Value out = apply_wrn(index, v);
    if (ctx.fingerprinting()) {
      ctx.observe_fp(detail::fp_of(out));
      ctx.commit_fp(id_, detail::fp_of(slots_));
    }
    return out;
  }

 private:
  /// The sequential WRN body (Algorithm 1), engine- and fingerprint-free.
  Value apply_wrn(int index, Value v);

  ObjectId id_;
  int k_;
  std::vector<Value> slots_;
};

/// The one-shot variant 1sWRN_k: reusing an index hangs undetectably.
class OneShotWrnObject {
 public:
  explicit OneShotWrnObject(int k);

  /// As WrnObject::wrn, but each index is usable at most once.
  Value wrn(Context& ctx, int index, Value v);

  [[nodiscard]] int k() const noexcept { return k_; }

  /// Stepped-engine form: announce `{oid(), kRmw}`, run inside the grant.
  /// On index reuse it hangs the process (`StepContext::hang`) and returns
  /// ⊥ — call through `SUBC_STEP_CALL` so the body cuts short, mirroring
  /// the fiber form where `Context::hang` never returns (the core is
  /// templated on the context so both engines share it, fingerprint
  /// reports included: observe the returned slot, commit slots + used
  /// bits; the hang path reports via the hang transition fold itself).
  [[nodiscard]] const ObjectId& oid() const noexcept { return id_; }

  template <class Ctx>
  Value step_wrn(Ctx& ctx, int index, Value v) {
    check_args(index, v);
    const auto i = static_cast<std::size_t>(index);
    if (used_[i]) {
      // "Any attempt to invoke 1sWRN with the same index twice is illegal,
      // and hangs the system in a manner that cannot be detected."
      ctx.hang();      // never returns on the fiber engine
      return kBottom;  // stepped caller must cut short (SUBC_STEP_CALL)
    }
    const Value out = commit(i, v);
    if (ctx.fingerprinting()) {
      ctx.observe_fp(detail::fp_of(out));
      ctx.commit_fp(id_, state_hash());
    }
    return out;
  }

 private:
  void check_args(int index, Value v) const;
  Value commit(std::size_t i, Value v);
  /// Slots + used bits, mixed like OneShotWrnSpec::hash.
  [[nodiscard]] std::uint64_t state_hash() const;

  ObjectId id_;
  int k_;
  std::vector<Value> slots_;
  std::vector<bool> used_;
};

/// Sequential specification of 1sWRN_k for the linearizability checker
/// (subc/checking/linearizability.hpp). Operations are encoded as
/// {index, value}; responses as {returned value}. Applying a repeated index
/// is illegal (the checker treats it as "this linearization is impossible").
struct OneShotWrnSpec {
  int k;

  struct State {
    std::vector<Value> slots;
    std::vector<bool> used;
  };

  [[nodiscard]] State initial() const {
    return State{std::vector<Value>(static_cast<std::size_t>(k), kBottom),
                 std::vector<bool>(static_cast<std::size_t>(k), false)};
  }

  /// Applies op = {index, v}. Returns false when the op is illegal in this
  /// state; otherwise fills `response` and mutates `state`.
  bool apply(State& state, const std::vector<Value>& op,
             std::vector<Value>& response) const {
    SUBC_ASSERT(op.size() == 2);
    const auto i = static_cast<std::size_t>(op[0]);
    SUBC_ASSERT(op[0] >= 0 && op[0] < k);
    if (state.used[i]) {
      return false;
    }
    state.used[i] = true;
    state.slots[i] = op[1];
    response = {state.slots[(i + 1) % static_cast<std::size_t>(k)]};
    return true;
  }

  /// Memoization key for the checker.
  [[nodiscard]] std::string key(const State& state) const {
    std::string s;
    for (int i = 0; i < k; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      s += state.used[idx] ? 'U' : '.';
      s += to_string(state.slots[idx]);
      s += '|';
    }
    return s;
  }

  /// Memoization fingerprint for the checker's hashed memo: mixes each slot
  /// (value + used bit) without building the `key()` string.
  [[nodiscard]] std::uint64_t hash(const State& state) const {
    std::uint64_t h = 0x6a09e667f3bcc909ULL;
    for (int i = 0; i < k; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const auto v = static_cast<std::uint64_t>(state.slots[idx]);
      h = detail::mix64(h ^ v ^ (state.used[idx] ? 0x8000000000000000ULL : 0));
    }
    return h;
  }
};

}  // namespace subc
