// Fetch-and-add register (consensus number 2).
#pragma once

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Register with an atomic fetch-and-add operation.
class FetchAdd {
 public:
  explicit FetchAdd(Value initial = 0) : value_(initial) {}

  /// Atomically adds `delta` and returns the previous value.
  Value fetch_add(Context& ctx, Value delta) {
    ctx.sched_point(id_, AccessKind::kRmw);
    const Value previous = value_;
    value_ += delta;
    return previous;
  }

  /// Atomic read.
  Value read(Context& ctx) {
    ctx.sched_point(id_, AccessKind::kRead);
    return value_;
  }

 private:
  ObjectId id_;
  Value value_;
};

}  // namespace subc
