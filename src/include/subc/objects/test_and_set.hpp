// Test-and-set: the canonical consensus-number-2 object.
#pragma once

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// One-shot test-and-set bit. `test_and_set` returns the previous value
/// (false exactly once, for the winner).
class TestAndSet {
 public:
  /// Atomically sets the bit and returns its previous value.
  bool test_and_set(Context& ctx) {
    ctx.sched_point(id_, AccessKind::kRmw);
    const bool previous = set_;
    set_ = true;
    return previous;
  }

  /// Atomic read without setting.
  bool read(Context& ctx) {
    ctx.sched_point(id_, AccessKind::kRead);
    return set_;
  }

 private:
  ObjectId id_;
  bool set_ = false;
};

}  // namespace subc
