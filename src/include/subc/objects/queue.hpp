// FIFO queue object (consensus number 2). Supports pre-loaded initial
// contents for the classic 2-process consensus construction (the queue is
// initialized with a single "winner" token).
#pragma once

#include <deque>
#include <initializer_list>

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Linearizable FIFO queue; `dequeue` on empty returns ⊥.
class FifoQueue {
 public:
  FifoQueue() = default;
  FifoQueue(std::initializer_list<Value> initial) : items_(initial) {}

  /// Atomically appends `v`.
  void enqueue(Context& ctx, Value v) {
    ctx.sched_point(id_, AccessKind::kWrite);
    items_.push_back(v);
  }

  /// Atomically removes and returns the head, or ⊥ when empty.
  Value dequeue(Context& ctx) {
    ctx.sched_point(id_, AccessKind::kRmw);
    if (items_.empty()) {
      return kBottom;
    }
    const Value head = items_.front();
    items_.pop_front();
    return head;
  }

 private:
  ObjectId id_;
  std::deque<Value> items_;
};

}  // namespace subc
