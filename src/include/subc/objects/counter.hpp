// An increment/read counter register, as used by Algorithm 4 (relaxed WRN):
// "a simple atomic register that can be incremented and read (each operation
// is a single step)".
#pragma once

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Counter with two atomic operations: `increment` (add one, no return) and
/// `read`.
class Counter {
 public:
  explicit Counter(Value initial = 0) : value_(initial) {}

  /// Atomically adds one.
  void increment(Context& ctx) {
    ctx.sched_point(id_, AccessKind::kWrite);
    ++value_;
  }

  /// Atomic read.
  Value read(Context& ctx) {
    ctx.sched_point(id_, AccessKind::kRead);
    return value_;
  }

  /// Post-run peek (never call from process code).
  [[nodiscard]] Value peek() const noexcept { return value_; }

 private:
  ObjectId id_;
  Value value_;
};

}  // namespace subc
