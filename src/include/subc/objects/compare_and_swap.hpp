// Compare-and-swap: the canonical object of infinite consensus number — the
// top of Herlihy's hierarchy, included as the contrast class against the
// sub-consensus objects this library is about.
#pragma once

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Register with an atomic compare-and-swap.
class CompareAndSwap {
 public:
  explicit CompareAndSwap(Value initial = kBottom) : value_(initial) {}

  /// Atomically: if value == expected, set to desired; returns the value
  /// observed (== expected exactly when the swap took effect).
  Value compare_and_swap(Context& ctx, Value expected, Value desired) {
    ctx.sched_point(id_, AccessKind::kRmw);
    const Value observed = value_;
    if (observed == expected) {
      value_ = desired;
    }
    return observed;
  }

  /// Atomic read.
  Value read(Context& ctx) {
    ctx.sched_point(id_, AccessKind::kRead);
    return value_;
  }

 private:
  ObjectId id_;
  Value value_;
};

/// n-process consensus from a single CAS for any n (consensus number ∞):
/// everyone CASes its value over ⊥; the observed value decides.
inline Value consensus_from_cas(Context& ctx, CompareAndSwap& cas, Value v) {
  const Value observed = cas.compare_and_swap(ctx, kBottom, v);
  return observed == kBottom ? v : observed;
}

}  // namespace subc
