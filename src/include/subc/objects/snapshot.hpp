// Atomic snapshot object: an array of single-writer cells with an atomic
// scan of all of them. Snapshot is implementable wait-free from registers
// (Afek–Attiya–Dolev–Gafni–Merritt–Shavit) and therefore adds no
// synchronization power; Algorithm 5 uses it as a primitive. We provide it
// both as an atomic base object (this header) and as a genuine wait-free
// register implementation (subc/algorithms/snapshot_impl.hpp), and test that
// the two are interchangeable.
#pragma once

#include <vector>

#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Atomic single-writer snapshot: `update(i, v)` writes cell i (by
/// convention only process/port i writes cell i), `scan()` atomically reads
/// every cell.
template <class T = Value>
class AtomicSnapshot {
 public:
  AtomicSnapshot(int size, T initial)
      : cells_(static_cast<std::size_t>(size), initial) {
    if (size <= 0) {
      throw SimError("AtomicSnapshot size must be positive");
    }
  }

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(cells_.size());
  }

  /// Atomically writes cell `i`. Footprints are whole-object (an update
  /// conflicts with every scan, and update∥update commutes only per cell —
  /// we conservatively treat the snapshot as one object).
  void update(Context& ctx, int i, T v) {
    check_index(i);
    ctx.sched_point(id_, AccessKind::kWrite);
    cells_[static_cast<std::size_t>(i)] = std::move(v);
  }

  /// Atomically reads all cells.
  std::vector<T> scan(Context& ctx) {
    ctx.sched_point(id_, AccessKind::kRead);
    return cells_;
  }

  /// Stepped-engine access (runtime/stepper.hpp): announce with `oid()` at
  /// the step point (`kWrite` for update, `kRead` for scan), run the atomic
  /// body via `step_*` inside the grant.
  [[nodiscard]] const ObjectId& oid() const noexcept { return id_; }
  void step_update(int i, T v) {
    check_index(i);
    cells_[static_cast<std::size_t>(i)] = std::move(v);
  }
  [[nodiscard]] std::vector<T> step_scan() const { return cells_; }

 private:
  void check_index(int i) const {
    if (i < 0 || i >= size()) {
      throw SimError("AtomicSnapshot index out of range");
    }
  }

  ObjectId id_;
  std::vector<T> cells_;
};

}  // namespace subc
