// The constructive direction of Theorem 41: (n, k)-set consensus from
// (m, j)-set-consensus objects by optimal partitioning.
//
// Processes {0..n−1} are split into ⌈n/m⌉ groups of at most m; each group
// shares one (m,j) object and every member decides what its propose
// returns. The groups contribute at most j·⌊n/m⌋ + min(j, n mod m) distinct
// decisions — exactly `sc_partition_agreement(n, m, j)`, which the papers'
// lower bound shows optimal. Tests drive this construction in the simulator
// (with the nondeterministic object under adversarial choice) and confirm
// the bound is met and is tight (some executions realize it).
#pragma once

#include <memory>
#include <vector>

#include "subc/core/hierarchy.hpp"
#include "subc/objects/set_consensus_object.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// One instance serves one run of (n, k)-set consensus for processes
/// {0..n−1} from (m, j)-set-consensus objects.
class PartitionSetConsensus {
 public:
  PartitionSetConsensus(int n, int m, int j);

  /// Process `id` proposes `v`; returns its decision.
  Value propose(Context& ctx, int id, Value v);

  /// The agreement this construction guarantees (Theorem 41's bound).
  [[nodiscard]] int agreement() const;

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int m() const noexcept { return m_; }
  [[nodiscard]] int j() const noexcept { return j_; }

 private:
  int n_;
  int m_;
  int j_;
  std::vector<std::unique_ptr<SetConsensusObject>> groups_;
};

}  // namespace subc
