// Multi-writer multi-reader register from single-writer registers — the
// classic timestamp construction (Vitányi–Awerbuch lineage), rounding out
// the register substrate: everything above can be grounded in SWMR cells.
//
//   write(v): collect all cells; pick ts = max+1, tie-break by writer id;
//             write (ts, id, v) to own cell.
//   read():   collect; return the value with the lexicographically largest
//             (ts, id).
//
// This yields a linearizable MWMR register when collects are atomic
// snapshots; we use the snapshot object (itself register-implementable,
// snapshot_impl.hpp) so the construction is honest. Tests drive it through
// the Wing–Gong checker against the register spec.
#pragma once

#include "subc/objects/snapshot.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// MWMR register for up to `writers` distinct writer slots.
class MwmrFromSwmr {
 public:
  explicit MwmrFromSwmr(int writers, Value initial = kBottom)
      : initial_(initial), cells_(writers, Cell{}) {}

  /// Linearizable write from `slot` (each process writes via its own slot).
  void write(Context& ctx, int slot, Value v) {
    const auto view = cells_.scan(ctx);
    std::int64_t ts = 0;
    for (const Cell& c : view) {
      ts = std::max(ts, c.ts);
    }
    cells_.update(ctx, slot, Cell{ts + 1, slot, v});
  }

  /// Linearizable read.
  Value read(Context& ctx) {
    const auto view = cells_.scan(ctx);
    Value result = initial_;
    std::int64_t best_ts = 0;
    int best_id = -1;
    for (const Cell& c : view) {
      if (c.ts > best_ts || (c.ts == best_ts && c.id > best_id)) {
        if (c.ts > 0) {
          best_ts = c.ts;
          best_id = c.id;
          result = c.value;
        }
      }
    }
    return result;
  }

 private:
  struct Cell {
    std::int64_t ts = 0;  ///< 0 = never written
    int id = -1;
    Value value = kBottom;
  };

  Value initial_;
  AtomicSnapshot<Cell> cells_;
};

}  // namespace subc
