// Algorithm 4: a relaxed WRN_k from one 1sWRN_k object and counters.
//
// The one-shot object is protected by a counter per index (the "flag
// principle"): a caller increments its index's counter, reads it back, and
// invokes the inner 1sWRN only when it read exactly 1 — otherwise it cannot
// rule out a concurrent user of the same index and conservatively returns ⊥.
// Claims 19–21: the inner object is always used legally, and when exactly k
// processes arrive with k distinct indices every one of them reaches the
// inner 1sWRN (so a round with an onto index assignment behaves like a real
// WRN_k — the property Algorithm 3 needs).
#pragma once

#include <vector>

#include "subc/objects/counter.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Algorithm 4's RlxWRN object.
class RelaxedWrn {
 public:
  explicit RelaxedWrn(int k);

  /// RlxWRN(i, v): returns the inner 1sWRN's answer when provably sole user
  /// of index `i`, and ⊥ otherwise.
  Value rlx_wrn(Context& ctx, int index, Value v);

  [[nodiscard]] int k() const noexcept { return inner_.k(); }

 private:
  OneShotWrnObject inner_;
  std::vector<Counter> counters_;
};

}  // namespace subc
