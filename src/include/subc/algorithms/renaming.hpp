// Wait-free (2k−1)-renaming from registers (snapshot-based).
//
// Algorithm 3 assumes "wait-free algorithms ... that use registers only to
// rename k processes from {0..M−1} to k unique names in the range
// {0..2k−2}" (Afek–Merritt / Attiya et al.). We implement the classic
// snapshot-based renaming: each process repeatedly announces (id, proposed
// name); on a proposal collision it re-proposes the r-th smallest free name,
// where r is the rank of its id among the announced ids. With at most k
// participants every process terminates with a unique name in {0..2k−2}.
#pragma once

#include <memory>
#include <vector>

#include "subc/algorithms/snapshot_impl.hpp"
#include "subc/objects/snapshot.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Shared state for one renaming instance. `slots` is the number of
/// single-writer announcement cells (one per potential participant — pids in
/// the simulated world); at most `k` of them may actually participate for
/// the {0..2k−2} range guarantee.
class SnapshotRenaming {
 public:
  /// `use_register_snapshot` selects the register-built snapshot (true, the
  /// from-scratch substrate) or the atomic base object (false, faster).
  SnapshotRenaming(int slots, bool use_register_snapshot = false);

  /// Acquires a name. `slot` is this process's announcement cell (its pid);
  /// `id` its (arbitrary, distinct) original name. Returns a name >= 0;
  /// with at most k participants the name is < 2k−1.
  int rename(Context& ctx, int slot, Value id);

 private:
  struct Cell {
    Value id = kBottom;
    int proposal = -1;  ///< -1 = none
  };

  std::vector<Cell> scan(Context& ctx);
  void announce(Context& ctx, int slot, const Cell& cell);

  // Exactly one of the two backings is used, chosen at construction.
  std::unique_ptr<AtomicSnapshot<Cell>> atomic_;
  std::unique_ptr<SnapshotFromRegisters<Cell>> registers_;
};

}  // namespace subc
