// Algorithms 2 and 6: set consensus from WRN_k / 1sWRN_k objects.
//
// Algorithm 2 — (k−1)-set consensus for k processes with ids {0..k−1} from a
// single WRN_k object: process P_i performs t = WRN(i, v_i) and decides t if
// t ≠ ⊥, its own v_i otherwise. (Claims 3–9: wait-free, validity,
// (k−1)-agreement.) Since each index is used once, the one-shot object
// suffices — and Corollary 10 follows: WRN_k is strictly stronger than
// registers.
//
// Algorithm 6 — m-set consensus for n processes with ids {0..n−1} from
// ⌈n/k⌉ WRN_k objects: process i invokes object ⌊i/k⌋ with index i mod k.
// Lemma 39 / Corollary 40: the construction achieves the set-consensus
// ratio (k−1)/k ≤ m/n.
#pragma once

#include <memory>
#include <vector>

#include "subc/objects/wrn.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Algorithm 2. One instance serves one run of the task for k processes.
class WrnSetConsensus {
 public:
  /// `one_shot` selects the 1sWRN_k backing (default, as the paper notes is
  /// sufficient) or the full WRN_k object.
  explicit WrnSetConsensus(int k, bool one_shot = true);

  /// Process `id` ∈ {0..k−1} proposes `v`; returns its decision.
  Value propose(Context& ctx, int id, Value v);

  [[nodiscard]] int k() const noexcept { return k_; }
  /// Agreement bound: k−1 when all k participate with distinct proposals.
  [[nodiscard]] int agreement() const noexcept { return k_ - 1; }

 private:
  int k_;
  std::unique_ptr<OneShotWrnObject> one_shot_;
  std::unique_ptr<WrnObject> multi_;
};

/// Algorithm 6. One instance serves n processes.
class WrnRatioSetConsensus {
 public:
  WrnRatioSetConsensus(int n, int k);

  /// Process `id` ∈ {0..n−1} proposes `v`; returns its decision.
  Value propose(Context& ctx, int id, Value v);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int k() const noexcept { return k_; }

  /// The agreement m this construction guarantees:
  /// (k−1)·⌊n/k⌋ + min(k−1, n mod k).
  [[nodiscard]] int agreement() const noexcept;

 private:
  int n_;
  int k_;
  std::vector<std::unique_ptr<OneShotWrnObject>> objects_;
};

}  // namespace subc
