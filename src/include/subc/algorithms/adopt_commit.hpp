// Adopt-commit from registers — the classic graded-agreement building block
// (Gafni 1998): a wait-free object weaker than consensus yet strong enough
// to make repeated agreement attempts safe. Included as substrate because
// it is the standard companion of safe agreement in BG-style constructions
// and rounds out the sub-consensus toolbox this library catalogues.
//
// propose(v) returns (grade, value) with:
//   * validity     — value was proposed;
//   * coherence    — if any process returns (commit, v), every return is
//                    (adopt, v) or (commit, v);
//   * convergence  — if all proposals equal v, every return is (commit, v).
//
// Protocol (two-phase with an atomic snapshot per phase): announce in phase
// A; scan; if all announced values agree, announce that value in phase B
// with a "clean" flag, else with a conflict flag; scan phase B; commit iff
// every phase-B entry is clean with the same value.
#pragma once

#include <vector>

#include "subc/objects/snapshot.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Result grade of an adopt-commit round.
enum class Grade : std::uint8_t { kAdopt, kCommit };

/// One-shot adopt-commit object for up to `slots` proposers.
class AdoptCommit {
 public:
  explicit AdoptCommit(int slots)
      : phase_a_(slots, kBottom), phase_b_(slots, BEntry{}) {
    if (slots < 1) {
      throw SimError("AdoptCommit requires at least one slot");
    }
  }

  struct Outcome {
    Grade grade = Grade::kAdopt;
    Value value = kBottom;

    friend bool operator==(const Outcome&, const Outcome&) = default;
  };

  /// Proposes `v` from `slot`; wait-free (two updates + two scans).
  Outcome propose(Context& ctx, int slot, Value v) {
    if (v == kBottom) {
      throw SimError("AdoptCommit: propose(⊥) is illegal");
    }
    phase_a_.update(ctx, slot, v);
    const auto seen_a = phase_a_.scan(ctx);
    bool unanimous = true;
    for (const Value u : seen_a) {
      unanimous = unanimous && (u == kBottom || u == v);
    }
    phase_b_.update(ctx, slot, BEntry{v, unanimous});
    const auto seen_b = phase_b_.scan(ctx);

    // Two clean entries can never carry different values: if P wrote clean
    // w1 and Q clean w2 ≠ w1, whichever scanned phase A second saw both
    // values and could not have been unanimous. So: adopt the (unique)
    // clean value if any exists — coherence hinges on this — else keep our
    // own; commit exactly when phase B is all-clean.
    Value clean_value = kBottom;
    bool any_dirty = false;
    for (const BEntry& e : seen_b) {
      if (e.value == kBottom) {
        continue;
      }
      if (e.clean) {
        clean_value = e.value;
      } else {
        any_dirty = true;
      }
    }
    if (clean_value != kBottom && !any_dirty) {
      return Outcome{Grade::kCommit, clean_value};
    }
    return Outcome{Grade::kAdopt,
                   clean_value != kBottom ? clean_value : v};
  }

 private:
  struct BEntry {
    Value value = kBottom;
    bool clean = false;
  };

  AtomicSnapshot<Value> phase_a_;
  AtomicSnapshot<BEntry> phase_b_;
};

}  // namespace subc
