// Algorithm 3: (k−1)-set consensus for k participants drawn from a large
// name space, using WRN_k objects.
//
// The construction: (1) rename the ≤ k participants into {0..2k−2} using
// registers only (subc/algorithms/renaming.hpp); (2) sweep a fixed sequence
// of WRN_k instances W[ℓ], one per member f_ℓ of a function family
// F ⊆ {0..2k−2} → {0..k−1}, invoking W[ℓ].WRN(f_ℓ(j), v); decide the first
// non-⊥ answer, or the own proposal after a full sweep of ⊥'s.
//
// Correctness (Claims 11–18) only requires that for every possible set R of
// k renamed names F contains a map sending R onto {0..k−1} (the ℓ* of
// Claim 16). The paper uses the family of all maps; we default to a
// *covering family* with exactly one onto-map per k-subset of {0..2k−2}
// (C(2k−1, k) members — 10 for k=3 instead of 243), and offer the full
// family for small k. Both satisfy Claim 16's premise; DESIGN.md records
// the substitution.
//
// Because two renamed participants may collide under f_ℓ, the object at
// round ℓ is Algorithm 4's RlxWRN (the paper's final form). A non-relaxed
// variant backed by full WRN_k objects is available for comparison.
#pragma once

#include <memory>
#include <vector>

#include "subc/algorithms/relaxed_wrn.hpp"
#include "subc/algorithms/renaming.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Which function family F backs the sweep.
enum class FunctionFamily {
  kCovering,  ///< one onto-map per k-subset of {0..2k−2}; C(2k−1,k) rounds
  kFull,      ///< all maps {0..2k−2} → {0..k−1}; k^(2k−1) rounds (tiny k!)
};

/// Builds the chosen family for parameter k: maps_[ℓ][j] = f_ℓ(j).
std::vector<std::vector<int>> make_function_family(int k, FunctionFamily kind);

/// Algorithm 3. One instance serves one run with at most k participants out
/// of `slots` potential processes (slots = world size; the slot doubles as
/// the renaming announcement cell).
class AnonymousSetConsensus {
 public:
  AnonymousSetConsensus(int k, int slots,
                        FunctionFamily family = FunctionFamily::kCovering,
                        bool relaxed = true);

  /// Participant at `slot` with original name `id` proposes `v`.
  Value propose(Context& ctx, int slot, Value id, Value v);

  [[nodiscard]] int k() const noexcept { return k_; }
  /// Number of sweep rounds |F|.
  [[nodiscard]] int rounds() const noexcept {
    return static_cast<int>(maps_.size());
  }
  [[nodiscard]] const std::vector<std::vector<int>>& family() const noexcept {
    return maps_;
  }

 private:
  int k_;
  SnapshotRenaming renaming_;
  std::vector<std::vector<int>> maps_;
  std::vector<std::unique_ptr<RelaxedWrn>> relaxed_objects_;
  std::vector<std::unique_ptr<WrnObject>> plain_objects_;
};

}  // namespace subc
