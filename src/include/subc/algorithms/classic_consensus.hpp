// Classic consensus constructions — the positive side of consensus-number
// facts used throughout the papers:
//   * 2-process consensus from swap / test&set / fetch&add / queue
//     (Herlihy's constructions; these objects sit at level 2);
//   * n-process consensus from an n-consensus object (trivial, level n);
//   * n-process consensus from O_{n,k}'s component 0 (GAC(n,0));
//   * the "write mine, read next" algorithm on WRN_k: it solves 2-process
//     consensus for k = 2 (WRN_2 = SWAP) and *fails* for k ≥ 3 — the
//     executable boundary of Theorem 1 / Lemma 38.
//
// Each helper is a per-process routine over shared objects owned by the
// caller; announcement registers carry the proposals.
#pragma once

#include "subc/objects/consensus_object.hpp"
#include "subc/objects/fetch_add.hpp"
#include "subc/objects/onk.hpp"
#include "subc/objects/queue.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/swap.hpp"
#include "subc/objects/test_and_set.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Shared state for one 2-process consensus instance (announcement cells
/// indexed by the 2-process role id 0/1).
struct TwoConsensusShared {
  RegisterArray<Value> announce{2, kBottom};
};

/// 2-consensus from swap: announce, swap own role id into the register;
/// whoever finds ⊥ wins.
Value consensus2_from_swap(Context& ctx, TwoConsensusShared& shared,
                           SwapRegister& swap, int role, Value v);

/// 2-consensus from test&set: announce, then T&S; the winner decides its
/// own value.
Value consensus2_from_tas(Context& ctx, TwoConsensusShared& shared,
                          TestAndSet& tas, int role, Value v);

/// 2-consensus from fetch&add: announce, then fetch_add(1); 0 wins.
Value consensus2_from_fetch_add(Context& ctx, TwoConsensusShared& shared,
                                FetchAdd& fa, int role, Value v);

/// 2-consensus from a queue pre-loaded with a single winner token
/// (construct the queue as FifoQueue{0}).
Value consensus2_from_queue(Context& ctx, TwoConsensusShared& shared,
                            FifoQueue& queue, int role, Value v);

/// n-consensus from the n-consensus base object.
Value consensus_from_object(Context& ctx, ConsensusObject& object, Value v);

/// n-consensus from O_{n,k}: propose on component 0 (= GAC(n,0)).
Value consensus_from_onk(Context& ctx, OnkObject& object, Value v);

/// The "write mine, read next" 2-process protocol on WRN_k: role b invokes
/// WRN(b, v) and decides the returned value (its own when ⊥). Solves
/// consensus iff k = 2; for k ≥ 3 the explorer exhibits disagreement
/// (tests/consensus_number_test.cpp, bench_t5).
Value consensus2_attempt_from_wrn(Context& ctx, WrnObject& wrn, int role,
                                  Value v);

/// The analogous (n+1)-process attempt on GAC(n, i): everyone proposes and
/// decides the returned value. Solves consensus for ≤ n processes; fails
/// for n+1.
Value consensus_attempt_from_gac(Context& ctx, GacObject& gac, Value v);

}  // namespace subc
