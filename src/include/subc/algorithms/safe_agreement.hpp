// Safe agreement from registers — the engine of the Borowsky–Gafni
// simulation, which underlies both the strong-set-election construction the
// papers cite ([9]) and the Theorem 41 lower bound machinery.
//
// Safe agreement is consensus weakened just enough to be wait-free
// implementable from registers:
//   * propose(v) always terminates (two snapshot-object steps);
//   * resolve() either returns the agreed value or "not yet safe";
//   * agreement & validity always hold among resolved values;
//   * once every propose that entered the *unsafe window* (between its two
//     steps) has left it, resolve() is guaranteed to succeed — so only a
//     crash inside the window can block resolution forever.
//
// Protocol (Attiya–Welch, ch. 5 / Borowsky–Gafni 1993): proposer writes
// (v, level 1), snapshots; if someone is at level 2 it retreats to level 0,
// else advances to level 2. A resolver snapshots; if nobody is at level 1
// (no one mid-window) and someone is at level 2, it returns the level-2
// value with the smallest cell index — deterministic, so all resolvers
// agree. Once a resolve has succeeded the level-2 set is frozen: any later
// proposer's scan sees a level-2 entry and retreats.
//
// `SafeAgreementOf<T>` carries arbitrary payloads (the BG simulation agrees
// on snapshot *views*); `SafeAgreement` is the Value-typed face with the
// papers' ⊥ convention.
#pragma once

#include <optional>
#include <vector>

#include "subc/objects/snapshot.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Safe agreement over payload type `T` for up to `slots` proposers (one
/// propose per slot).
template <class T>
class SafeAgreementOf {
 public:
  explicit SafeAgreementOf(int slots) : cells_(slots, Cell{}) {
    if (slots < 1) {
      throw SimError("SafeAgreement requires at least one slot");
    }
  }

  /// Proposes `v` from `slot`. Always terminates (wait-free).
  void propose(Context& ctx, int slot, T v) {
    cells_.update(ctx, slot, Cell{v, 1});  // enter the unsafe window
    const auto view = cells_.scan(ctx);
    bool someone_safe = false;
    for (const Cell& c : view) {
      someone_safe = someone_safe || c.level == 2;
    }
    // Retreat if agreement already locked, else lock our own value.
    cells_.update(ctx, slot, Cell{std::move(v), someone_safe ? 0 : 2});
  }

  /// Attempts to resolve; nullopt means "not safe yet, retry later".
  std::optional<T> resolve(Context& ctx) {
    const auto view = cells_.scan(ctx);
    std::optional<T> winner;
    for (const Cell& c : view) {
      if (c.level == 1) {
        return std::nullopt;  // someone is mid-window
      }
      if (c.level == 2 && !winner.has_value()) {
        winner = c.value;  // smallest index at level 2
      }
    }
    return winner;
  }

  /// Spins on resolve() until it succeeds. Terminates provided no proposer
  /// crashed inside its unsafe window (the BG simulation's blocking
  /// condition). `max_attempts` guards tests against genuine blocks.
  T await(Context& ctx, int max_attempts = 1'000'000) {
    for (int i = 0; i < max_attempts; ++i) {
      auto v = resolve(ctx);
      if (v.has_value()) {
        return *std::move(v);
      }
    }
    throw SimError("SafeAgreement::await exceeded its attempt budget "
                   "(a proposer crashed in its unsafe window?)");
  }

 private:
  struct Cell {
    T value{};
    int level = 0;  // 0 = out, 1 = unsafe window, 2 = locked
  };

  AtomicSnapshot<Cell> cells_;
};

/// Value-typed safe agreement with the papers' ⊥ convention: resolve()
/// returns ⊥ while unsafe; propose(⊥) is illegal.
class SafeAgreement {
 public:
  explicit SafeAgreement(int slots) : inner_(slots) {}

  void propose(Context& ctx, int slot, Value v) {
    if (v == kBottom) {
      throw SimError("SafeAgreement: propose(⊥) is illegal");
    }
    inner_.propose(ctx, slot, v);
  }

  Value resolve(Context& ctx) {
    return inner_.resolve(ctx).value_or(kBottom);
  }

  Value await(Context& ctx, int max_attempts = 1'000'000) {
    return inner_.await(ctx, max_attempts);
  }

 private:
  SafeAgreementOf<Value> inner_;
};

}  // namespace subc
