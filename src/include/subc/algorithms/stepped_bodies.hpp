// Stepped-engine (runtime/stepper.hpp) forms of the hot algorithm bodies:
// the bench-grid worlds (bench_f4/bench_f5), the equivalence-pin worlds
// (tests/equivalence_pin_test.cpp) and the classic swap-consensus routine.
//
// Each struct is a resumable state machine registered with
// `Runtime::add_stepped`; everything that must survive a suspension is a
// member (trailing underscore = resumable scratch, not configuration). The
// bodies announce exactly the footprints their fiber twins announce, in the
// same order, so a world hosted on either engine explores bit-identically.
#pragma once

#include "subc/algorithms/classic_consensus.hpp"
#include "subc/objects/onk.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/set_consensus_object.hpp"
#include "subc/objects/sticky_register.hpp"
#include "subc/objects/swap.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/stepper.hpp"

namespace subc {

/// `steps` atomic reads of one shared register — the bench-grid "reads"
/// world (bench_f4 micro cells, bench_f5 headline).
struct SteppedRegisterReader {
  Register<>* reg;
  int steps;

  int s_ = 0;

  void step(StepContext& ctx) {
    SUBC_STEP_BEGIN(ctx);
    for (s_ = 0; s_ < steps; ++s_) {
      SUBC_STEP_POINT(ctx, reg->oid(), AccessKind::kRead);
      static_cast<void>(reg->step_read(ctx));
    }
    SUBC_STEP_END(ctx);
  }
};

/// Alternates a write to this process's own register with a write to one
/// shared register — the bench-grid "mixed" (partial-conflict) world.
struct SteppedMixedWriter {
  Register<>* own;
  Register<>* shared;
  int pid;
  int steps;

  int s_ = 0;

  void step(StepContext& ctx) {
    SUBC_STEP_BEGIN(ctx);
    for (s_ = 0; s_ < steps; ++s_) {
      if (s_ % 2 == 0) {
        SUBC_STEP_POINT(ctx, own->oid(), AccessKind::kWrite);
        own->step_write(ctx, s_);
      } else {
        SUBC_STEP_POINT(ctx, shared->oid(), AccessKind::kWrite);
        shared->step_write(ctx, pid);
      }
    }
    SUBC_STEP_END(ctx);
  }
};

/// Writes `value` to `mine`, then reads `next` into `*seen` — the
/// equivalence-pin register world's per-process body.
struct SteppedWriteThenRead {
  Register<>* mine;
  Register<>* next;
  Value value;
  Value* seen;

  void step(StepContext& ctx) {
    SUBC_STEP_BEGIN(ctx);
    SUBC_STEP_POINT(ctx, mine->oid(), AccessKind::kWrite);
    mine->step_write(ctx, value);
    SUBC_STEP_POINT(ctx, next->oid(), AccessKind::kRead);
    *seen = next->step_read(ctx);
    SUBC_STEP_END(ctx);
  }
};

/// Proposes `value` on a GAC object and decides the result (hangs past
/// capacity, exactly like the fiber form).
struct SteppedGacProposer {
  GacObject* gac;
  Value value;

  Value got_ = kBottom;

  void step(StepContext& ctx) {
    SUBC_STEP_BEGIN(ctx);
    SUBC_STEP_POINT(ctx, gac->oid(), AccessKind::kRmw);
    SUBC_STEP_CALL(ctx, got_, gac->step_propose(ctx, value));
    ctx.decide(got_);
    SUBC_STEP_END(ctx);
  }
};

/// Proposes `value` on an (n,k)-set-consensus object and decides the result
/// (hangs past capacity, exactly like the fiber form). Routes through the
/// same `set_consensus_propose` core as the fiber form and the instance
/// layer (runtime/instance.hpp).
struct SteppedSetConsensusProposer {
  SetConsensusObject* object;
  Value value;

  Value got_ = kBottom;

  void step(StepContext& ctx) {
    SUBC_STEP_BEGIN(ctx);
    SUBC_STEP_POINT(ctx, object->oid(), AccessKind::kChoose);
    SUBC_STEP_CALL(ctx, got_, object->step_propose(ctx, value));
    ctx.decide(got_);
    SUBC_STEP_END(ctx);
  }
};

/// One 1sWRN(index, value) invocation, result stored into `*out` (left
/// untouched when the invocation hangs on index reuse).
struct SteppedOneShotWrn {
  OneShotWrnObject* wrn;
  int index;
  Value value;
  Value* out;

  Value got_ = kBottom;

  void step(StepContext& ctx) {
    SUBC_STEP_BEGIN(ctx);
    SUBC_STEP_POINT(ctx, wrn->oid(), AccessKind::kRmw);
    SUBC_STEP_CALL(ctx, got_, wrn->step_wrn(ctx, index, value));
    *out = got_;
    SUBC_STEP_END(ctx);
  }
};

/// `consensus_from_sticky` as a state machine: stick own value, decide what
/// stuck. The canonical recoverable-consensus proposer of the crash-
/// recovery model (docs/adversaries.md): a recovered incarnation re-enters
/// here from the top with `got_` reset by the engine's pristine-state
/// restore, re-sticks against the surviving (durable) register, and is
/// handed the original winner — which the decide-twice relaxation accepts
/// as an idempotent re-decision. Against a *volatile* sticky register the
/// wiped state lets a later incarnation stick a different value, which the
/// machine-check convicts.
struct SteppedStickyConsensus {
  StickyRegister* sticky;
  Value value;

  Value got_ = kBottom;

  void step(StepContext& ctx) {
    SUBC_STEP_BEGIN(ctx);
    SUBC_STEP_POINT(ctx, sticky->oid(), AccessKind::kRmw);
    got_ = sticky->step_stick(ctx, value);
    ctx.decide(got_);
    SUBC_STEP_END(ctx);
  }
};

/// `consensus2_from_swap` as a state machine: announce, swap own role in;
/// ⊥ back = won (decide own value), else decide the winner's announcement.
struct SteppedSwapConsensus {
  TwoConsensusShared* shared;
  SwapRegister* swap;
  int role;
  Value value;

  Value previous_ = kBottom;

  void step(StepContext& ctx) {
    SUBC_STEP_BEGIN(ctx);
    if (role != 0 && role != 1) {
      throw SimError("2-consensus role must be 0 or 1");
    }
    SUBC_STEP_POINT(ctx, shared->announce[role].oid(), AccessKind::kWrite);
    shared->announce[role].step_write(ctx, value);
    SUBC_STEP_POINT(ctx, swap->oid(), AccessKind::kRmw);
    previous_ = swap->step_swap(ctx, role);
    if (previous_ == kBottom) {
      ctx.decide(value);  // first to swap: winner
      SUBC_STEP_RETURN(ctx);
    }
    SUBC_STEP_POINT(ctx, shared->announce[static_cast<int>(previous_)].oid(),
                    AccessKind::kRead);
    ctx.decide(shared->announce[static_cast<int>(previous_)].step_read(ctx));
    SUBC_STEP_END(ctx);
  }
};

}  // namespace subc
