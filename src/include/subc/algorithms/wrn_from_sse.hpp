// Algorithm 5: a linearizable implementation of 1sWRN_k from (k,k−1)-strong
// set election, registers and snapshots — the Section 5 construction behind
// Theorem 2's "(k,k−1)-set consensus implements 1sWRN_k" direction.
//
// Structure (pseudocode lines in comments in the .cpp):
//   * announce the value in R[i];
//   * pass through a doorway register; entrants run the strong set election
//     and the winners (SSE.Invoke(i) = i) return ⊥ — this pins down a first
//     linearized operation;
//   * everyone else double-snapshots: SR = Snapshot(R) (the values seen),
//     publish SR in O[i], SO = Snapshot(O) (the views others saw). If some
//     view in SO contains our value but not our successor's, our operation
//     must linearize before the successor's write — return ⊥; otherwise
//     return SR[(i+1) mod k].
//
// Lemmas 22–37 prove linearizability; we machine-check it by recording every
// operation in a History and running the Wing–Gong checker against
// OneShotWrnSpec (tests/wrn_from_sse_test.cpp, bench_f2).
//
// The strong set election is provided by the atomic
// `StrongSetElectionObject` (see DESIGN.md's substitution table: the paper
// builds it from (k,k−1)-set consensus via [9]; Algorithm 5 relies only on
// its interface). Snapshots can be the atomic base object or the
// register-built implementation.
#pragma once

#include <memory>

#include "subc/algorithms/snapshot_impl.hpp"
#include "subc/objects/election_object.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/snapshot.hpp"
#include "subc/runtime/history.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Algorithm 5's derived 1sWRN_k object. Preconditions as for 1sWRN: each
/// index invoked at most once, values ≠ ⊥.
class WrnFromSse {
 public:
  /// Construction knobs. The two `use_*` ablations reproduce §5's
  /// counterexample discussion: disabling the doorway lets a later
  /// invocation win the election after its successor already finished
  /// (both return ⊥ — not linearizable); disabling the published-view check
  /// (lines 14–20) re-enables the w1/w2/w3 ordering hazard. Both broken
  /// variants are *demonstrated* non-linearizable by explorer-found
  /// histories in tests/wrn_from_sse_test.cpp and bench_f2.
  struct Options {
    bool use_doorway = true;        ///< lines 7–12 of Algorithm 5
    bool use_view_check = true;     ///< lines 14–20 of Algorithm 5
    bool use_register_snapshots = false;  ///< ground snapshots in registers
  };

  WrnFromSse(int k, Options options);

  /// `use_register_snapshots` backs Snapshot(R)/Snapshot(O) with the
  /// register-built wait-free snapshot instead of the atomic base object.
  explicit WrnFromSse(int k, bool use_register_snapshots = false)
      : WrnFromSse(k, Options{true, true, use_register_snapshots}) {}

  /// The implemented 1sWRN(i, v). When `history` is given, the operation's
  /// invocation/response are recorded for linearizability checking.
  Value one_shot_wrn(Context& ctx, int index, Value v,
                     History* history = nullptr);

  /// `one_shot_wrn` as a stepped-engine state machine (runtime/stepper.hpp):
  /// register one per invoking process via `Runtime::add_stepped`. The body
  /// announces the same footprints in the same order as the fiber form, so
  /// either engine explores the world bit-identically. Only the
  /// atomic-snapshot configuration flattens; the register-built-snapshot
  /// mode loops over per-cell register operations inside a helper call and
  /// stays on the fiber engine (the documented fallback rule) — registering
  /// a SteppedOp against it throws.
  struct SteppedOp {
    WrnFromSse* object;
    int index;
    Value value;
    History* history;
    /// Receives the operation result; untouched when the op hangs.
    Value* out;

    SteppedOp(WrnFromSse* object, int index, Value value,
              History* history = nullptr, Value* out = nullptr)
        : object(object), index(index), value(value), history(history),
          out(out) {}

    void step(StepContext& ctx);

   private:
    void complete(StepContext& ctx, Value result);

    // Resumable scratch (survives suspensions).
    std::size_t handle_ = 0;
    Value door_ = kBottom;
    Value elected_ = kBottom;
    std::vector<Value> sr_;
    std::vector<std::vector<Value>> so_;
  };

  [[nodiscard]] int k() const noexcept { return k_; }

 private:
  using View = std::vector<Value>;

  View snapshot_r(Context& ctx);
  void publish_view(Context& ctx, int index, View view);
  std::vector<View> snapshot_o(Context& ctx);

  Value run_operation(Context& ctx, int index, Value v);

  int k_;
  Options options_;
  StrongSetElectionObject sse_;
  Register<Value> doorway_;

  // Exactly one backing pair is active, chosen at construction.
  std::unique_ptr<AtomicSnapshot<Value>> r_atomic_;
  std::unique_ptr<AtomicSnapshot<View>> o_atomic_;
  std::unique_ptr<SnapshotFromRegisters<Value>> r_regs_;
  std::unique_ptr<SnapshotFromRegisters<View>> o_regs_;
};

}  // namespace subc
