// Algorithms over the reconstructed O_{n,k} objects (PODC 2016, DESIGN.md
// §4): the optimal-partition set-consensus construction whose agreement
// matches `onk_best_agreement`, realizing the positive side of the 2016
// hierarchy — O_{n,k+1} achieves agreement k+1 at N_k = nk+n+k processes
// (one fresh component GAC(n,k) instance) while O_{n,k}'s optimum is k+2.
#pragma once

#include <memory>
#include <vector>

#include "subc/core/hierarchy.hpp"
#include "subc/objects/onk.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// The positive half of the 2016 hierarchy statement, as an executable
/// adapter: O_{n,k} implemented from an O_{n,k'} instance for any k' ≥ k
/// (component subset — the stronger object trivially provides the weaker
/// interface). The negative half (k' < k fails at N_{k'} processes) is the
/// separation checked by bench_t4.
class OnkFromStronger {
 public:
  /// Wraps `stronger` (an O_{n,k'} with k' >= weaker_k) as an O_{n,weaker_k}.
  OnkFromStronger(OnkObject& stronger, int weaker_k)
      : stronger_(stronger), k_(weaker_k) {
    if (weaker_k < 1 || weaker_k > stronger.k()) {
      throw SimError("OnkFromStronger requires 1 <= weaker k <= stronger k");
    }
  }

  /// O_{n,weaker_k}'s propose: forwarded unchanged (components 0..k−1 of
  /// the stronger object are exactly the weaker object's components).
  Value propose(Context& ctx, int component, Value v) {
    if (component < 0 || component >= k_) {
      throw SimError("OnkFromStronger: component out of range");
    }
    return stronger_.propose(ctx, component, v);
  }

  [[nodiscard]] int n() const noexcept { return stronger_.n(); }
  [[nodiscard]] int k() const noexcept { return k_; }

 private:
  OnkObject& stronger_;
  int k_;
};

/// (procs, x)-set consensus for processes {0..procs−1} from O_{n,k}
/// instances, where x = onk_best_agreement(n, k, procs). Each group of the
/// DP-optimal partition gets a fresh O_{n,k} instance and proposes on the
/// group's component.
class OnkSetConsensus {
 public:
  OnkSetConsensus(int n, int k, int procs);

  /// Process `id` proposes `v`; returns its decision.
  Value propose(Context& ctx, int id, Value v);

  /// The agreement bound this construction guarantees.
  [[nodiscard]] int agreement() const;

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] int procs() const noexcept { return procs_; }

  /// The partition used: (component, group size) per group.
  [[nodiscard]] const std::vector<std::pair<int, int>>& partition()
      const noexcept {
    return partition_;
  }

 private:
  int n_;
  int k_;
  int procs_;
  std::vector<std::pair<int, int>> partition_;
  /// assignment_[pid] = {object index, component}.
  std::vector<std::pair<int, int>> assignment_;
  std::vector<std::unique_ptr<OnkObject>> objects_;
};

}  // namespace subc
