// Wait-free atomic snapshot from single-writer registers
// (Afek–Attiya–Dolev–Gafni–Merritt–Shavit, JACM 1993; unbounded-sequence-
// number variant).
//
// Snapshot adds no synchronization power over registers — which is why the
// papers freely use Snapshot(R) as a primitive (Algorithm 5). This
// implementation substantiates that: `SnapshotFromRegisters` is
// interchangeable with the atomic base object `AtomicSnapshot`
// (tests/snapshot_test.cpp checks both against the same validators).
//
// Protocol: each cell is a register holding (value, seq, embedded view).
//   scan: repeatedly double-collect; if two collects agree on all seqs the
//         second collect is an atomic view ("direct" scan). Otherwise any
//         writer seen moving twice has completed a full update() inside our
//         scan — its embedded view is a legal snapshot ("borrowed" scan).
//   update(i, v): view = scan(); write (v, seq+1, view) to cell i.
// Every scan terminates within n+1 double-collects (at most n writers can
// move once before one moves twice).
#pragma once

#include <vector>

#include "subc/objects/register.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// Wait-free linearizable snapshot built only from registers. Cell `i` must
/// be updated by a single process (single-writer), as in the model.
template <class T = Value>
class SnapshotFromRegisters {
 public:
  SnapshotFromRegisters(int size, T initial) : initial_(initial) {
    if (size <= 0) {
      throw SimError("SnapshotFromRegisters size must be positive");
    }
    cells_.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) {
      cells_.emplace_back(Cell{initial, 0, {}});
    }
  }

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(cells_.size());
  }

  /// Wait-free linearizable scan.
  std::vector<T> scan(Context& ctx) {
    std::vector<bool> moved(cells_.size(), false);
    std::vector<Cell> previous = collect(ctx);
    for (;;) {
      std::vector<Cell> current = collect(ctx);
      bool clean = true;
      for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (current[i].seq != previous[i].seq) {
          clean = false;
          if (moved[i]) {
            // Cell i's writer completed an entire update() during our scan;
            // its embedded view is a snapshot linearized inside our
            // interval.
            return current[i].view;
          }
          moved[i] = true;
        }
      }
      if (clean) {
        std::vector<T> values;
        values.reserve(cells_.size());
        for (const Cell& c : current) {
          values.push_back(c.value);
        }
        return values;
      }
      previous = std::move(current);
    }
  }

  /// Wait-free update of cell `i` (single writer per cell).
  void update(Context& ctx, int i, T v) {
    if (i < 0 || i >= size()) {
      throw SimError("SnapshotFromRegisters index out of range");
    }
    std::vector<T> view = scan(ctx);
    // Cell i is single-writer: its writer always knows its own sequence
    // number, so this peek models process-local memory, not a shared read.
    const std::int64_t seq =
        cells_[static_cast<std::size_t>(i)].peek().seq + 1;
    cells_[static_cast<std::size_t>(i)].write(
        ctx, Cell{std::move(v), seq, std::move(view)});
  }

 private:
  struct Cell {
    T value;
    std::int64_t seq = 0;
    std::vector<T> view;  ///< snapshot embedded by the writer
  };

  std::vector<Cell> collect(Context& ctx) {
    std::vector<Cell> out;
    out.reserve(cells_.size());
    for (auto& cell : cells_) {
      out.push_back(cell.read(ctx));
    }
    return out;
  }

  T initial_;
  std::vector<Register<Cell>> cells_;
};

}  // namespace subc
