// The one-shot immediate snapshot (participating set) algorithm of
// Borowsky–Gafni 1993 — the combinatorial backbone of the BG simulation and
// of the strong-set-election transformation the papers cite as [9].
//
// Each of n processes announces a value and receives a view S ⊆
// {announced pairs} with the three defining properties:
//   * self-inclusion : i ∈ S_i;
//   * containment    : for all i, j: S_i ⊆ S_j or S_j ⊆ S_i;
//   * immediacy      : j ∈ S_i  ⇒  S_j ⊆ S_i.
//
// Protocol (the classic level-descent): process i starts at level n+1 and
// repeatedly descends one level, writes its level and snapshots the level
// array; it returns the set S = {j : level_j ≤ level_i} as soon as
// |S| ≥ level_i. (The level store is an atomic snapshot — implementable
// from registers, see snapshot_impl.hpp.)
//
// Derived here as well: the *self-electing* election — decide
// min{ j : j ∈ S_i } — whose self-election property follows from immediacy
// (if i elects j, then S_j ⊆ S_i with j = min S_i and j ∈ S_j, so
// min S_j = j). This is the self-election mechanism inside [9]'s
// strong-set-election construction; the cardinality-bounding composition
// with set consensus is taken as the atomic StrongSetElectionObject per
// DESIGN.md's substitution table.
#pragma once

#include <vector>

#include "subc/objects/register.hpp"
#include "subc/objects/snapshot.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// One-shot immediate snapshot for `n` processes (one participate() call
/// per slot).
class ImmediateSnapshot {
 public:
  explicit ImmediateSnapshot(int n) : n_(n), levels_(n, n + 1) {
    if (n < 1) {
      throw SimError("ImmediateSnapshot requires n >= 1");
    }
    values_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      values_.emplace_back(kBottom);
    }
  }

  /// A view entry: the slot and the value it announced.
  struct Member {
    int slot = -1;
    Value value = kBottom;

    friend bool operator==(const Member&, const Member&) = default;
  };

  /// Announces `v` from `slot` and returns this process's immediate-
  /// snapshot view. Wait-free: at most n level descents.
  std::vector<Member> participate(Context& ctx, int slot, Value v) {
    if (slot < 0 || slot >= n_) {
      throw SimError("ImmediateSnapshot slot out of range");
    }
    if (v == kBottom) {
      throw SimError("ImmediateSnapshot: ⊥ cannot be announced");
    }
    values_[static_cast<std::size_t>(slot)].write(ctx, v);
    for (int level = n_; level >= 1; --level) {
      levels_.update(ctx, slot, level);
      const std::vector<int> snapshot = levels_.scan(ctx);
      std::vector<int> at_or_below;
      for (int j = 0; j < n_; ++j) {
        if (snapshot[static_cast<std::size_t>(j)] <= level) {
          at_or_below.push_back(j);
        }
      }
      if (static_cast<int>(at_or_below.size()) >= level) {
        std::vector<Member> view;
        view.reserve(at_or_below.size());
        for (const int j : at_or_below) {
          view.push_back(
              Member{j, values_[static_cast<std::size_t>(j)].read(ctx)});
        }
        return view;
      }
    }
    throw SimError("ImmediateSnapshot descent fell through (impossible)");
  }

  [[nodiscard]] int n() const noexcept { return n_; }

 private:
  int n_;
  AtomicSnapshot<int> levels_;
  std::vector<Register<Value>> values_;
};

/// The self-electing election derived from an immediate snapshot: every
/// participant elects the minimum slot in its view. Guarantees validity and
/// self-election (but no cardinality bound below n — that is what the set
/// consensus stage of [9] adds).
class SelfElectingElection {
 public:
  explicit SelfElectingElection(int n) : snapshot_(n) {}

  /// Returns the elected slot (a participant; self-election holds).
  int elect(Context& ctx, int slot) {
    const auto view = snapshot_.participate(ctx, slot,
                                            /*v=*/static_cast<Value>(slot));
    int min_slot = view.front().slot;
    for (const auto& member : view) {
      min_slot = std::min(min_slot, member.slot);
    }
    return min_slot;
  }

 private:
  ImmediateSnapshot snapshot_;
};

}  // namespace subc
