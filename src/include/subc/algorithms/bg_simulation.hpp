// The Borowsky–Gafni simulation (STOC '93) — the machinery behind the
// papers' reference [9] (strong set election from set election) and behind
// the Theorem 41 lower bound ([8, 10, 16]).
//
// m *simulators* jointly execute an n-process full-information protocol so
// that every simulator observes the SAME simulated execution. Every
// simulated nondeterministic step (the input a simulated process starts
// with; the snapshot view each of its rounds receives) is funneled through
// a safe-agreement object: any simulator may propose its local candidate,
// and the agreed outcome is adopted by everyone. Safe agreement is
// wait-free except when a proposer crashes inside its unsafe window — so a
// crashed simulator blocks at most ONE simulated process (the one whose
// agreement it was mid-proposing), which is the heart of BG: f crashed
// simulators stall at most f simulated processes.
//
// The simulated protocol here is the classic quorum-min set-consensus
// protocol T3, which solves (n, k)-set consensus (k−1)-resiliently:
//   write your input; repeatedly snapshot until ≥ n−k+1 inputs are
//   visible; decide the minimum input seen.
// (Agreement: snapshot views are totally ordered and of size ≥ n−k+1, so
// the decided minima take at most k distinct values.)
//
// The headline theorem, executable (tests/bg_simulation_test.cpp):
// m simulators with at most k−1 crash failures wait-free solve k-set
// consensus among themselves by simulating T3 — and the simulated
// executions observed by all simulators are identical.
#pragma once

#include <vector>

#include "subc/algorithms/safe_agreement.hpp"
#include "subc/objects/snapshot.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// One BG simulation instance: `simulators` processes jointly run the
/// n-process quorum-min protocol with quorum n−k+1.
class BgSimulation {
 public:
  /// `simulators` — number of simulating processes (slots);
  /// `n` — simulated processes; `k` — target set-consensus agreement.
  BgSimulation(int simulators, int n, int k);

  /// Runs simulator `s` (∈ [0, simulators)) with its private `input`;
  /// returns the adopted decision. Wait-free as long as at most k−1
  /// simulators crash mid-agreement; throws SimError when the iteration
  /// budget is exhausted (more crashes than the simulation tolerates).
  Value run_simulator(Context& ctx, int s, Value input,
                      int max_iterations = 100'000);

  [[nodiscard]] int simulators() const noexcept { return m_; }
  [[nodiscard]] int simulated_processes() const noexcept { return n_; }
  [[nodiscard]] int agreement() const noexcept { return k_; }
  [[nodiscard]] int quorum() const noexcept { return n_ - k_ + 1; }

  /// Post-run introspection (never call from process code): the agreed
  /// simulated execution as observed by simulator `s` — input and view
  /// history per simulated process. Used by tests to check that all
  /// simulators observed identical executions.
  struct SimulatedProcess {
    Value input = kBottom;               ///< agreed input (⊥ = never agreed)
    std::vector<std::vector<Value>> views;  ///< agreed snapshot per round
    Value decision = kBottom;            ///< ⊥ = never completed
  };
  [[nodiscard]] const std::vector<SimulatedProcess>& observed(int s) const;

 private:
  using View = std::vector<Value>;

  struct Local {
    Value input = kBottom;  ///< this simulator's own input
    /// Per simulated process: progress and proposals made.
    std::vector<SimulatedProcess> procs;
    std::vector<bool> proposed_input;
    std::vector<bool> applied_input;  ///< wrote agreed input to sim memory
    std::vector<int> proposed_view_rounds;  ///< rounds already proposed to
    bool initialized = false;
  };

  /// Tries to advance simulated process `j` by one agreement; returns the
  /// decision if `j` completed, ⊥ otherwise.
  Value advance(Context& ctx, int s, int j, Local& local);

  int m_;
  int n_;
  int k_;
  int max_rounds_;

  std::vector<SafeAgreementOf<Value>> input_agreement_;   // one per j
  std::vector<std::vector<SafeAgreementOf<View>>> view_agreement_;  // [j][r]
  /// The simulated shared memory: one cell per simulated process, holding
  /// its (agreed) input write. Real atomic scans of this array are what
  /// simulators propose as snapshot views — so all agreed views, across all
  /// simulated processes and rounds, are totally ordered by containment,
  /// which is exactly what T3's agreement argument needs.
  AtomicSnapshot<Value> sim_memory_;
  std::vector<Local> locals_;  // per-simulator private state
};

}  // namespace subc
