// Herlihy's universal construction: n-consensus objects are universal for
// n processes.
//
// The papers' framing rests on this fact ("Herlihy also showed that
// n-consensus objects are universal for n processes, meaning that, for n
// processes, any other object can be implemented wait-free using
// n-consensus objects"). This module makes it executable: a linearizable,
// wait-free implementation of ANY sequential object for n processes from
// n-consensus base objects and registers.
//
// Construction (log + round-robin helping):
//  * the implemented object is a log of operations; entry t is agreed
//    through the t-th n-consensus object (first proposal wins, each process
//    proposes each slot at most once — within the object's n-propose
//    budget);
//  * to apply an operation, a process announces it in its announcement
//    register, then walks the log: at slot t it proposes the announcement
//    of process (t mod n) if that one is valid and not yet logged
//    (round-robin helping — the wait-freedom device), else its own;
//  * every proposer of slot t has already decided slots 0..t−1, so its
//    "not yet logged" check is exact and the log never contains duplicates;
//  * responses come from replaying the decided prefix against the
//    sequential specification.
//
// Model hygiene: all cross-process information flows through the consensus
// slots and registers. Each process keeps only a private cache of the slots
// it has itself decided (learned through its own propose step).
//
// The sequential specification is the same Spec concept the linearizability
// checker uses (State / initial / apply / key), so one spec drives the
// implementation, the checker and the tests.
#pragma once

#include <vector>

#include "subc/objects/consensus_object.hpp"
#include "subc/objects/register.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// A universal object for `n` processes over sequential spec `Spec`.
/// `capacity` bounds the log length (the papers' bounded-use convention);
/// exceeding it throws SimError.
template <class Spec>
class UniversalObject {
 public:
  UniversalObject(Spec spec, int n, int capacity)
      : spec_(std::move(spec)), n_(n), capacity_(capacity) {
    if (n < 1 || capacity < 1) {
      throw SimError("UniversalObject requires n >= 1, capacity >= 1");
    }
    announce_.reserve(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      announce_.emplace_back(Announcement{});
    }
    slots_.reserve(static_cast<std::size_t>(capacity));
    publish_.reserve(static_cast<std::size_t>(capacity));
    for (int t = 0; t < capacity; ++t) {
      slots_.emplace_back(n);
      publish_.emplace_back(n, Entry{});
    }
    local_.resize(static_cast<std::size_t>(n));
  }

  /// Applies `op` for the calling process; returns the spec response.
  /// Wait-free: completes within O(n) slots after announcing.
  std::vector<Value> apply(Context& ctx, const std::vector<Value>& op) {
    const int me = ctx.pid();
    if (me < 0 || me >= n_) {
      throw SimError("UniversalObject: pid outside configured range");
    }
    Local& local = local_[static_cast<std::size_t>(me)];
    const Value seq = ++local.announce_seq;
    announce_[static_cast<std::size_t>(me)].write(
        ctx, Announcement{op, seq, true});

    for (int t = static_cast<int>(local.log.size()); t < capacity_; ++t) {
      const Entry decided = decide_slot(ctx, t, local);
      if (decided.pid == me && decided.seq == seq) {
        return replay_response(local, t);
      }
    }
    throw SimError("UniversalObject capacity exhausted");
  }

  /// Post-run inspection only (never call from process code): the decided
  /// log according to the process that advanced furthest.
  [[nodiscard]] std::vector<std::pair<int, std::vector<Value>>> log() const {
    const Local* best = nullptr;
    for (const Local& local : local_) {
      if (best == nullptr || local.log.size() > best->log.size()) {
        best = &local;
      }
    }
    std::vector<std::pair<int, std::vector<Value>>> out;
    if (best != nullptr) {
      for (const Entry& e : best->log) {
        out.emplace_back(e.pid, e.op);
      }
    }
    return out;
  }

 private:
  struct Announcement {
    std::vector<Value> op;
    Value seq = 0;
    bool valid = false;
  };

  struct Entry {
    int pid = -1;
    Value seq = 0;
    std::vector<Value> op;
  };

  struct Local {
    std::vector<Entry> log;  ///< slots this process has decided, in order
    Value announce_seq = 0;
  };

  bool in_log(const Local& local, int pid, Value seq) const {
    for (const Entry& e : local.log) {
      if (e.pid == pid && e.seq == seq) {
        return true;
      }
    }
    return false;
  }

  Entry decide_slot(Context& ctx, int t, Local& local) {
    const int me = ctx.pid();
    // Candidate selection: help the round-robin target first, then self.
    Entry candidate;
    bool have = false;
    for (const int pid : {t % n_, me}) {
      const Announcement a =
          announce_[static_cast<std::size_t>(pid)].read(ctx);
      if (a.valid && !in_log(local, pid, a.seq)) {
        candidate = Entry{pid, a.seq, a.op};
        have = true;
        break;
      }
    }
    if (!have) {
      // Both already logged (can happen only for the helped target — our
      // own op cannot be logged or we would have returned): re-propose our
      // own current announcement; it loses to the real winner or, if it
      // wins, replay's duplicate filter is the safety net.
      const Announcement mine =
          announce_[static_cast<std::size_t>(me)].read(ctx);
      candidate = Entry{me, mine.seq, mine.op};
    }
    // Publish the candidate in our slot-t cell (a write-once SWMR register),
    // then propose our pid as the token; the winner's cell is read back.
    publish_[static_cast<std::size_t>(t)][me].write(ctx, candidate);
    const Value winner_pid =
        slots_[static_cast<std::size_t>(t)].propose(ctx,
                                                    static_cast<Value>(me));
    const Entry winner =
        publish_[static_cast<std::size_t>(t)][static_cast<int>(winner_pid)]
            .read(ctx);
    local.log.push_back(winner);
    return winner;
  }

  std::vector<Value> replay_response(const Local& local, int upto) const {
    auto state = spec_.initial();
    std::vector<Value> response;
    std::vector<std::pair<int, Value>> seen;
    for (int t = 0; t <= upto; ++t) {
      const Entry& e = local.log[static_cast<std::size_t>(t)];
      const std::pair<int, Value> id{e.pid, e.seq};
      bool duplicate = false;
      for (const auto& s : seen) {
        duplicate = duplicate || s == id;
      }
      if (duplicate) {
        continue;
      }
      seen.push_back(id);
      std::vector<Value> r;
      if (!spec_.apply(state, e.op, r)) {
        throw SpecViolation("universal log contains an illegal operation");
      }
      if (t == upto) {
        response = r;
      }
    }
    return response;
  }

  Spec spec_;
  int n_;
  int capacity_;
  std::vector<Register<Announcement>> announce_;   // SWMR, one per process
  std::vector<ConsensusObject> slots_;             // one per log position
  std::vector<RegisterArray<Entry>> publish_;      // [slot][pid] write-once
  std::vector<Local> local_;                       // process-private state
};

}  // namespace subc
