// Set election constructions (§2: k-set consensus ≡ k-set election).
//
//  * `SetElectionFromSc` — k-set election from a (n,k)-set-consensus object:
//    every participant proposes its own pid.
//  * `ElectionFromWrn` — (k,k−1)-set election from 1sWRN_k: Algorithm 2 with
//    ids as proposals. Together with Algorithm 5 (which consumes strong set
//    election) this closes the equivalence loop of Theorem 2 inside the
//    simulator: 1sWRN_k → (k,k−1)-set election → [strong set election] →
//    1sWRN_k.
#pragma once

#include "subc/algorithms/wrn_set_consensus.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/set_consensus_object.hpp"
#include "subc/runtime/runtime.hpp"
#include "subc/runtime/value.hpp"

namespace subc {

/// k-set election for n processes from a nondeterministic (n,k)-set-
/// consensus object.
class SetElectionFromSc {
 public:
  SetElectionFromSc(int n, int k) : object_(n, k) {}

  /// Process `pid` runs the election; returns the elected pid.
  Value elect(Context& ctx) {
    return object_.propose(ctx, static_cast<Value>(ctx.pid()));
  }

 private:
  SetConsensusObject object_;
};

/// (k,k−1)-set election for k processes with ids {0..k−1} from 1sWRN_k
/// (Algorithm 2 electing ids).
class ElectionFromWrn {
 public:
  explicit ElectionFromWrn(int k) : inner_(k) {}

  /// Process with role `id` ∈ {0..k−1} elects; returns the elected id.
  Value elect(Context& ctx, int id) {
    return inner_.propose(ctx, id, static_cast<Value>(id));
  }

 private:
  WrnSetConsensus inner_;
};

/// The converse direction of the [3] equivalence: k-set *consensus* from a
/// k-set *election* primitive plus registers. Each process announces its
/// value under its pid, elects, and adopts the announced value of the
/// elected pid — which is guaranteed visible because election validity only
/// ever elects a process that invoked the election (after announcing).
///
/// `Election` is any callable Value(Context&, int pid) with k-set-election
/// semantics; the class is generic so the conversion composes with every
/// election in the library (the atomic object, ElectionFromWrn, ...).
template <class Election>
class SetConsensusFromElection {
 public:
  SetConsensusFromElection(int n, Election election)
      : announce_(n, kBottom), election_(std::move(election)) {}

  /// Process `pid` proposes `v`; returns a decision with the election's
  /// agreement bound and set-consensus validity.
  Value propose(Context& ctx, int pid, Value v) {
    announce_[pid].write(ctx, v);
    const Value leader = election_(ctx, pid);
    const Value decision = announce_[static_cast<int>(leader)].read(ctx);
    if (decision == kBottom) {
      throw SpecViolation(
          "election returned a pid that never announced — election validity "
          "broken");
    }
    return decision;
  }

 private:
  RegisterArray<Value> announce_;
  Election election_;
};

}  // namespace subc
