// Tests for the machine-checked critical-state (valence) case analysis:
// Lemma 38 for WRN_k (k ≥ 3 fully covered; k = 2 escapes through the
// adjacent-index pairs, which is exactly how SWAP reaches consensus number
// 2) and the analogous analysis for the O_{n,k} components GAC(n,i).
#include "subc/core/consensus_number.hpp"

#include <gtest/gtest.h>

namespace subc {
namespace {

class WrnValenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(WrnValenceSweep, Lemma38AllCasesCoveredForKAtLeast3) {
  const int k = GetParam();
  const ValenceReport report = check_wrn_valence(k);
  EXPECT_TRUE(report.all_covered())
      << report.uncovered.size() << " uncovered, first: "
      << report.uncovered.front();
  EXPECT_GT(report.states_checked, 0);
  EXPECT_GT(report.pairs_checked, 0);
}

INSTANTIATE_TEST_SUITE_P(AllK, WrnValenceSweep,
                         ::testing::Values(3, 4, 5, 6, 7));

TEST(WrnValence, K2HasUncoveredAdjacentPairs) {
  // The k = 2 escape hatch: for SWAP (= WRN_2) there are pending-step pairs
  // with no indistinguishability — the precondition of Herlihy's
  // 2-consensus algorithm from SWAP. Every uncovered pair must use
  // different indices (same-index pairs are always overwrite-covered).
  const ValenceReport report = check_wrn_valence(2);
  EXPECT_FALSE(report.all_covered());
  for (const std::string& pair : report.uncovered) {
    const bool p0q1 = pair.find("s_P=WRN(0") != std::string::npos &&
                      pair.find("s_Q=WRN(1") != std::string::npos;
    const bool p1q0 = pair.find("s_P=WRN(1") != std::string::npos &&
                      pair.find("s_Q=WRN(0") != std::string::npos;
    EXPECT_TRUE(p0q1 || p1q0) << pair;
  }
}

TEST(WrnValence, WiderValueDomainsStayFullyCovered) {
  // The {1,2} domain is not load-bearing: a 3-value domain (4^k states,
  // (3k)^2 pairs per state) is still fully covered for k >= 3, and still
  // leaves the adjacent-index escape at k = 2.
  const auto k3 = check_valence_cases(WrnModel{3, {1, 2, 3}});
  EXPECT_TRUE(k3.all_covered());
  EXPECT_EQ(k3.states_checked, 64);  // (3+1)^3
  const auto k4 = check_valence_cases(WrnModel{4, {1, 2, 3}});
  EXPECT_TRUE(k4.all_covered());
  const auto k2 = check_valence_cases(WrnModel{2, {1, 2, 3}});
  EXPECT_FALSE(k2.all_covered());
}

TEST(GacValence, WiderValueDomainKeepsTheRaceStructure) {
  const auto report = check_valence_cases(GacModel{2, 1, {1, 2, 3}});
  EXPECT_FALSE(report.uncovered.empty());
  bool initial_uncovered = false;
  for (const std::string& u : report.uncovered) {
    initial_uncovered = initial_uncovered ||
                        u.find("state{0:") != std::string::npos;
  }
  EXPECT_TRUE(initial_uncovered);
}

TEST(WrnValence, Lemma38Case1SameIndexIsOverwrite) {
  // Restricting the model to a single index: all pairs covered (Case 1 of
  // Lemma 38's proof) even for k = 2.
  struct SingleIndexWrn : WrnModel {
    [[nodiscard]] std::vector<Op> ops() const {
      std::vector<Op> out;
      for (const Value v : domain) {
        out.push_back(Op{0, v});
      }
      return out;
    }
  };
  SingleIndexWrn model;
  model.k = 2;
  model.domain = {1, 2};
  const auto report = check_valence_cases(model);
  EXPECT_TRUE(report.all_covered());
}

struct GacCase {
  int n;
  int i;
};

class GacValenceSweep : public ::testing::TestWithParam<GacCase> {};

TEST_P(GacValenceSweep, RaceStatesExistAndWrapRegionIsInert) {
  // GAC(n,i) deliberately contains order-distinguishing states — that is how
  // it solves n-process consensus (the block-0 race at the fresh object).
  // So, unlike WRN_k (k≥3), the valence analysis must report uncovered
  // pairs: the Herlihy argument does not go through, consistent with
  // consensus number ≥ 2 for n ≥ 2. (For n = 1 the uncovered states are
  // the block boundaries; turning them into 2-consensus would require a
  // third filler arrival or exceeding the object's capacity, which is the
  // fine print of the 2016 lower bound.)
  const auto [n, i] = GetParam();
  const ValenceReport report = check_gac_valence(n, i);
  EXPECT_FALSE(report.all_covered());

  // The wrap-around region is inert: once len ≥ n(i+1), every propose
  // returns arrivals[0] regardless of order — all pairs covered there.
  struct WrapRegionGac : GacModel {
    [[nodiscard]] std::vector<State> states() const {
      std::vector<State> out;
      for (const State& s : GacModel::states()) {
        if (static_cast<int>(s.arrivals.size()) >= n * (i + 1)) {
          out.push_back(s);
        }
      }
      return out;
    }
  };
  WrapRegionGac wrap;
  wrap.n = n;
  wrap.i = i;
  wrap.domain = {1, 2};
  const auto wrap_report = check_valence_cases(wrap);
  EXPECT_TRUE(wrap_report.all_covered())
      << (wrap_report.uncovered.empty() ? std::string()
                                        : wrap_report.uncovered.front());
}

INSTANTIATE_TEST_SUITE_P(Grid, GacValenceSweep,
                         ::testing::Values(GacCase{1, 1}, GacCase{1, 2},
                                           GacCase{2, 1}, GacCase{2, 2},
                                           GacCase{3, 1}));

TEST(GacValence, FreshObjectIsARaceForAllN) {
  // At the empty state two pending proposes race for arrivals[0]: uncovered
  // for every n (for n ≥ 2 the second proposer *reads* the winner — the
  // consensus mechanism; for n = 1 the winner is only revealed to later
  // wrap arrivals).
  for (const auto [n, i] : {std::pair{1, 1}, {2, 1}, {3, 2}}) {
    const ValenceReport report = check_gac_valence(n, i);
    bool initial_uncovered = false;
    for (const std::string& u : report.uncovered) {
      if (u.find("state{0:") != std::string::npos) {
        initial_uncovered = true;
      }
    }
    EXPECT_TRUE(initial_uncovered) << "n=" << n << " i=" << i;
  }
}

class ProtocolSynthesisSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolSynthesisSweep, NoProtocolInFamilySolvesConsensusForKAtLeast3) {
  // Family-wide impossibility: every announce/WRN/decide protocol over one
  // WRN_k object (k² index pairs × 25 rule pairs) is exhaustively
  // model-checked; none solves 2-process consensus when k ≥ 3.
  const int k = GetParam();
  const ProtocolSearchResult result = search_wrn_two_consensus_protocols(k);
  EXPECT_EQ(result.protocols_checked, static_cast<long>(k) * k * 25);
  EXPECT_EQ(result.correct, 0) << "a protocol slipped through at k=" << k;
}

INSTANTIATE_TEST_SUITE_P(AllK, ProtocolSynthesisSweep,
                         ::testing::Values(3, 4, 5));

TEST(ProtocolSynthesis, GacBoundaryNProcessesWinNPlus1Lose) {
  // The O_{n,k} component boundary, synthesized: on GAC(n,i), some
  // announce/propose/decide protocol solves consensus for n processes
  // (everyone adopting the returned value — the block-0 race), but no
  // protocol in the family solves it for n+1 processes.
  for (const auto [n, i] : {std::pair{2, 1}, {2, 2}, {3, 1}}) {
    const ProtocolSearchResult at_n = search_gac_consensus_protocols(n, i, n);
    EXPECT_GT(at_n.correct, 0) << "n=" << n << " i=" << i;
    const ProtocolSearchResult at_n1 =
        search_gac_consensus_protocols(n, i, n + 1);
    EXPECT_EQ(at_n1.correct, 0) << "n=" << n << " i=" << i;
  }
}

TEST(ProtocolSynthesis, K2AdmitsWinningProtocols) {
  // The boundary again, synthesized rather than hand-written: for WRN_2 the
  // search finds correct protocols, and every winner uses the two distinct
  // indices (write mine, read the other's slot).
  const ProtocolSearchResult result = search_wrn_two_consensus_protocols(2);
  EXPECT_GT(result.correct, 0);
  for (const WrnProtocol& protocol : result.winners) {
    EXPECT_NE(protocol.index[0], protocol.index[1]);
    // Trivial always-own rules can never win.
    EXPECT_NE(protocol.rule[0], 0);
    EXPECT_NE(protocol.rule[1], 0);
  }
}

TEST(ValenceChecker, ParameterValidation) {
  EXPECT_THROW(check_wrn_valence(1), SimError);
  EXPECT_THROW(check_gac_valence(0, 1), SimError);
  EXPECT_THROW(check_gac_valence(1, -1), SimError);
}

TEST(ValenceChecker, ReportsCountsForDocumentation) {
  const ValenceReport report = check_wrn_valence(3);
  // 3 slots over {⊥,1,2}: 27 states; ops: 3 indices × 2 values = 6;
  // pairs per state: 36.
  EXPECT_EQ(report.states_checked, 27);
  EXPECT_EQ(report.pairs_checked, 27 * 36);
}

}  // namespace
}  // namespace subc
