// Step-complexity contracts: the papers' constructions have crisp
// shared-memory step counts; these tests pin them as upper bounds so a
// regression that silently adds steps (or an accidental unbounded loop)
// fails loudly. Also: determinism contracts — identical seeds produce
// identical executions.
#include <gtest/gtest.h>

#include "subc/algorithms/relaxed_wrn.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/algorithms/wrn_from_sse.hpp"
#include "subc/algorithms/wrn_set_consensus.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

TEST(StepComplexity, Algorithm2IsOneStepPerProcess) {
  // Algorithm 2 is a single WRN invocation: exactly 1 step per process,
  // under every schedule.
  const int k = 4;
  const auto result = Explorer::explore([&](ScheduleDriver& driver) {
    Runtime rt;
    WrnSetConsensus algorithm(k);
    for (int p = 0; p < k; ++p) {
      rt.add_process(
          [&, p](Context& ctx) { ctx.decide(algorithm.propose(ctx, p, p)); });
    }
    rt.run(driver);
    for (int p = 0; p < k; ++p) {
      if (rt.steps_of(p) != 1) {
        throw SpecViolation("Algorithm 2 took more than one step");
      }
    }
  });
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(StepComplexity, RelaxedWrnIsAtMostThreeSteps) {
  // Algorithm 4: increment + read + (maybe) inner WRN = ≤ 3 steps.
  const auto result = Explorer::explore([](ScheduleDriver& driver) {
    Runtime rt;
    RelaxedWrn rlx(3);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) { rlx.rlx_wrn(ctx, p % 2, 10 + p); });
    }
    rt.run(driver);
    for (int p = 0; p < 3; ++p) {
      if (rt.steps_of(p) > 3) {
        throw SpecViolation("RlxWRN exceeded 3 steps");
      }
    }
  });
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(StepComplexity, Algorithm5IsAtMostSevenStepsWithAtomicSnapshots) {
  // Announce + doorway read + doorway write + election + Snapshot(R) +
  // publish O[i] + Snapshot(O) = ≤ 7 steps per operation.
  const int k = 4;
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        WrnFromSse object(k);
        for (int p = 0; p < k; ++p) {
          rt.add_process(
              [&, p](Context& ctx) { object.one_shot_wrn(ctx, p, 100 + p); });
        }
        rt.run(driver);
        for (int p = 0; p < k; ++p) {
          if (rt.steps_of(p) > 7) {
            throw SpecViolation("Algorithm 5 exceeded 7 steps: " +
                                std::to_string(rt.steps_of(p)));
          }
        }
      },
      2000);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Determinism, SameSeedSameDecisionsAcrossComplexWorlds) {
  const auto run_once = [](std::uint64_t seed) {
    Runtime rt;
    WrnFromSse object(4);
    std::vector<Value> outputs(4, kBottom);
    for (int p = 0; p < 4; ++p) {
      rt.add_process([&, p](Context& ctx) {
        outputs[static_cast<std::size_t>(p)] =
            object.one_shot_wrn(ctx, p, 100 + p);
      });
    }
    RandomDriver driver(seed);
    rt.run(driver);
    return outputs;
  };
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    EXPECT_EQ(run_once(seed), run_once(seed)) << "seed " << seed;
  }
}

TEST(Determinism, ExplorerReplayReproducesComplexViolations) {
  // Build a world that violates under some schedule (the view-check
  // ablation); the returned trace must deterministically reproduce it.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    WrnFromSse object(4, WrnFromSse::Options{.use_view_check = false});
    History history;
    rt.add_process([&](Context& ctx) {
      object.one_shot_wrn(ctx, 0, 100, &history);
      object.one_shot_wrn(ctx, 1, 101, &history);
      object.one_shot_wrn(ctx, 3, 103, &history);
    });
    rt.add_process([&](Context& ctx) {
      object.one_shot_wrn(ctx, 2, 102, &history);
    });
    rt.run(driver);
    require_linearizable(OneShotWrnSpec{4}, history);
  };
  const auto result =
      Explorer::explore(body, Explorer::Options{.max_executions = 400'000});
  ASSERT_FALSE(result.ok());
  for (int replay = 0; replay < 3; ++replay) {
    EXPECT_THROW(Explorer::replay(body, result.violating_trace),
                 SpecViolation);
  }
}

}  // namespace
}  // namespace subc
