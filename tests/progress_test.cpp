// Tests for the wait-freedom harness: participation-subset sweeps over the
// paper's algorithms (Claim 3 for Algorithm 2, and friends).
#include "subc/checking/progress.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "subc/algorithms/wrn_set_consensus.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/wrn.hpp"

namespace subc {
namespace {

TEST(WaitFreedom, Algorithm2IsWaitFreeUnderAllParticipationSets) {
  // Claim 3: every participating process finishes regardless of which other
  // processes take steps. Shared state must be *per world*, so the factory
  // owns it via shared_ptr captured in the process closures.
  const int k = 4;
  const auto report = check_wait_freedom(
      [k](const std::vector<int>&) {
        auto rt = std::make_unique<Runtime>();
        auto algorithm = std::make_shared<WrnSetConsensus>(k);
        for (int p = 0; p < k; ++p) {
          rt->add_process([algorithm, p](Context& ctx) {
            ctx.decide(algorithm->propose(ctx, p, 100 + p));
          });
        }
        return rt;
      },
      k);
  EXPECT_TRUE(report.ok()) << *report.violation;
  EXPECT_EQ(report.participation_sets_checked, (1 << k) - 1);
}

TEST(WaitFreedom, DetectsBlockingAlgorithm) {
  // A deliberately blocking "algorithm": spin until another process writes.
  // Wait-freedom must fail on the singleton participation sets.
  const auto report = check_wait_freedom(
      [](const std::vector<int>&) {
        auto rt = std::make_unique<Runtime>();
        auto flag = std::make_shared<Register<Value>>(kBottom);
        rt->add_process([flag](Context& ctx) {
          while (flag->read(ctx) == kBottom) {
          }
        });
        rt->add_process([flag](Context& ctx) { flag->write(ctx, 1); });
        return rt;
      },
      2, /*rounds=*/3, /*seed=*/1, /*max_steps=*/5'000);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violation->find("{0}"), std::string::npos);
}

TEST(WaitFreedom, DetectsHangingObjectUse) {
  // Two processes reusing a 1sWRN index: the reuser hangs; wait-freedom
  // fails for the both-participate set.
  const auto report = check_wait_freedom(
      [](const std::vector<int>&) {
        auto rt = std::make_unique<Runtime>();
        auto wrn = std::make_shared<OneShotWrnObject>(3);
        for (int p = 0; p < 2; ++p) {
          rt->add_process(
              [wrn](Context& ctx) { wrn->wrn(ctx, 0, 1); });
        }
        return rt;
      },
      2);
  ASSERT_FALSE(report.ok());
}

TEST(WaitFreedom, FormatSetRendersBraces) {
  EXPECT_EQ(format_set({0, 2, 3}), "{0,2,3}");
  EXPECT_EQ(format_set({}), "{}");
}

TEST(WaitFreedom, RejectsOversizedSweeps) {
  EXPECT_THROW(check_wait_freedom(
                   [](const std::vector<int>&) {
                     return std::make_unique<Runtime>();
                   },
                   25),
               SimError);
}

}  // namespace
}  // namespace subc
