// Differential tests for the checker's hashed fingerprint memo
// (MemoKind::kHashed) against the exact string-keyed reference memo
// (MemoKind::kStringReference). The two DFS variants explore in identical
// order and the memo only suppresses failed subtrees, so verdict AND
// linearization order must match on every history — including specs whose
// `key()` strings collide (where the hashed memo must not conflate the
// distinct underlying states it hashes via the spec's `hash` hook) and
// 64-op histories at the bitmask boundary.
#include "subc/checking/linearizability.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "subc/objects/wrn.hpp"
#include "subc/runtime/history.hpp"

namespace subc {
namespace {

/// Register spec (write {0,v} / read {1}) with a deliberately COLLIDING
/// memo key: every state maps to the same string. The memo may then merge
/// distinct states — that is sound for the reference memo only because it
/// also merges them (both variants over-memoize identically), and the test
/// checks the hashed memo tracks the reference bit for bit. Its `hash` hook
/// mirrors key() (constant), exercising the "spec-provided hash" branch.
struct CollidingKeySpec {
  struct State {
    Value value = kBottom;
  };
  [[nodiscard]] State initial() const { return {}; }
  bool apply(State& s, const std::vector<Value>& op,
             std::vector<Value>& response) const {
    if (op[0] == 0) {
      s.value = op[1];
      response = {};
    } else {
      response = {s.value};
    }
    return true;
  }
  [[nodiscard]] std::string key(const State& /*s*/) const { return "same"; }
  [[nodiscard]] std::uint64_t hash(const State& /*s*/) const {
    return detail::fnv1a64("same");
  }
};

/// The same register spec with an honest (injective) key and no hash hook,
/// exercising the fallback FNV-of-key() fingerprint path.
struct HonestKeySpec {
  struct State {
    Value value = kBottom;
  };
  [[nodiscard]] State initial() const { return {}; }
  bool apply(State& s, const std::vector<Value>& op,
             std::vector<Value>& response) const {
    if (op[0] == 0) {
      s.value = op[1];
      response = {};
    } else {
      response = {s.value};
    }
    return true;
  }
  [[nodiscard]] std::string key(const State& s) const {
    return to_string(s.value);
  }
};

template <class Spec>
void expect_memo_agreement(const Spec& spec, const History& h) {
  const auto hashed =
      check_linearizable(spec, h.entries(), MemoKind::kHashed);
  const auto reference =
      check_linearizable(spec, h.entries(), MemoKind::kStringReference);
  ASSERT_EQ(hashed.linearizable, reference.linearizable);
  EXPECT_EQ(hashed.order, reference.order);
}

TEST(LinearizabilityMemo, CollidingKeysAgreeOnLinearizableHistory) {
  History h;
  // Overlapping writes and reads with several legal orders.
  const auto w0 = h.invoke(0, {0, 5});
  const auto r0 = h.invoke(1, {1});
  h.respond(r0, {kBottom});
  h.respond(w0, {});
  const auto w1 = h.invoke(0, {0, 7});
  const auto r1 = h.invoke(1, {1});
  h.respond(w1, {});
  h.respond(r1, {7});
  expect_memo_agreement(CollidingKeySpec{}, h);

  const auto hashed = check_linearizable(CollidingKeySpec{}, h.entries());
  EXPECT_TRUE(hashed.linearizable);
}

TEST(LinearizabilityMemo, CollidingKeysAgreeOnNonLinearizableHistory) {
  History h;
  const auto w = h.invoke(0, {0, 5});
  h.respond(w, {});
  const auto r = h.invoke(1, {1});
  h.respond(r, {kBottom});  // stale read after completed write
  expect_memo_agreement(CollidingKeySpec{}, h);

  const auto hashed = check_linearizable(CollidingKeySpec{}, h.entries());
  EXPECT_FALSE(hashed.linearizable);
}

TEST(LinearizabilityMemo, SixtyFourOpBoundaryHistoryAgrees) {
  // Exactly 64 operations — the widest history the bitmask checker admits.
  // Alternating write/read pairs, all sequential, so the verdict is decided
  // deep in the DFS with the full mask in play.
  History h;
  for (Value i = 0; i < 32; ++i) {
    const auto w = h.invoke(0, {0, i});
    h.respond(w, {});
    const auto r = h.invoke(1, {1});
    h.respond(r, {i});
  }
  ASSERT_EQ(h.entries().size(), 64u);
  expect_memo_agreement(HonestKeySpec{}, h);
  expect_memo_agreement(CollidingKeySpec{}, h);

  const auto hashed = check_linearizable(HonestKeySpec{}, h.entries());
  EXPECT_TRUE(hashed.linearizable);
  EXPECT_EQ(hashed.order.size(), 64u);
}

TEST(LinearizabilityMemo, SixtyFourOpBoundaryRejectionAgrees) {
  History h;
  for (Value i = 0; i < 31; ++i) {
    const auto w = h.invoke(0, {0, i});
    h.respond(w, {});
    const auto r = h.invoke(1, {1});
    h.respond(r, {i});
  }
  // Final pair: a read that contradicts the completed write before it.
  const auto w = h.invoke(0, {0, 99});
  h.respond(w, {});
  const auto r = h.invoke(1, {1});
  h.respond(r, {kBottom});
  ASSERT_EQ(h.entries().size(), 64u);
  expect_memo_agreement(HonestKeySpec{}, h);

  EXPECT_FALSE(check_linearizable(HonestKeySpec{}, h.entries()).linearizable);
}

TEST(LinearizabilityMemo, WrnSpecUsesHashHookAndAgrees) {
  // OneShotWrnSpec provides a real hash(State); sweep overlapping one-shot
  // WRN histories (legal and illegal) through both memos.
  const OneShotWrnSpec spec{3};
  {
    History h;
    const auto a = h.invoke(0, {0, 10});
    const auto b = h.invoke(1, {1, 20});
    h.respond(b, {kBottom});  // slot 2 never written
    h.respond(a, {20});       // must linearize after b
    expect_memo_agreement(spec, h);
    EXPECT_TRUE(check_linearizable(spec, h.entries()).linearizable);
  }
  {
    History h;
    const auto a = h.invoke(0, {0, 10});
    h.respond(a, {kBottom});
    const auto b = h.invoke(1, {0, 20});  // index 0 reused: illegal
    h.respond(b, {kBottom});
    expect_memo_agreement(spec, h);
    EXPECT_FALSE(check_linearizable(spec, h.entries()).linearizable);
  }
}

TEST(LinearizabilityMemo, RandomizedOverlappingHistoriesAgree) {
  // Seeded sweep of random overlapping register histories, including
  // pending operations. Every history must produce identical verdict and
  // order under both memos — this is the collision hunt.
  std::mt19937 rng(20160725);  // PODC'16 vintage
  for (int trial = 0; trial < 200; ++trial) {
    History h;
    std::vector<std::size_t> open;
    Value last_written = kBottom;
    const int ops = 4 + static_cast<int>(rng() % 6);
    for (int i = 0; i < ops; ++i) {
      if (!open.empty() && rng() % 2 == 0) {
        const std::size_t pick = rng() % open.size();
        const std::size_t handle = open[pick];
        open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
        const auto& entry = h.entries()[handle];
        if (entry.op[0] == 0) {
          h.respond(handle, {});
          last_written = entry.op[1];
        } else {
          // Usually respond with something plausible, sometimes garbage so
          // non-linearizable verdicts are exercised too.
          const Value resp = (rng() % 4 == 0)
                                 ? static_cast<Value>(rng() % 3)
                                 : last_written;
          h.respond(handle, {resp});
        }
      } else {
        const int pid = static_cast<int>(rng() % 3);
        if (rng() % 2 == 0) {
          open.push_back(h.invoke(pid, {0, static_cast<Value>(rng() % 3)}));
        } else {
          open.push_back(h.invoke(pid, {1}));
        }
      }
    }
    expect_memo_agreement(HonestKeySpec{}, h);
    expect_memo_agreement(CollidingKeySpec{}, h);
  }
}

}  // namespace
}  // namespace subc
