// Unit tests for the instance layer (runtime/instance.hpp): lifecycle,
// arena-lease block recycling across GC churn, fingerprint-domain
// separation, and same-core agreement with the simulated object forms.
#include "subc/runtime/instance.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "subc/checking/linearizability.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/runtime.hpp"

namespace subc {
namespace {

Value apply_ok(InstanceTable& table, InstanceId id, int pid, int slot, Value v,
               std::uint64_t seed = 0) {
  bool hung = false;
  const Value out = table.apply(id, pid, slot, v, seed, &hung);
  EXPECT_FALSE(hung) << "instance " << id << " op unexpectedly hung";
  return out;
}

TEST(InstanceTable, OneShotWrnLifecycle) {
  InstanceTable table;
  const InstanceId id = table.open(InstanceKind::kOneShotWrn, /*k=*/3,
                                   /*b=*/0, /*now=*/7);
  ASSERT_NE(table.find(id), nullptr);
  EXPECT_EQ(table.at(id).phase, InstancePhase::kOpen);
  EXPECT_EQ(table.at(id).opened_at, 7);

  // Sequential 1sWRN semantics through the shared core: wrn(i, v) writes
  // slot i and reads slot i+1 mod k; a fresh next slot returns ⊥.
  EXPECT_EQ(apply_ok(table, id, 0, 0, 10), kBottom);
  EXPECT_EQ(apply_ok(table, id, 2, 2, 30), 10);
  EXPECT_EQ(apply_ok(table, id, 1, 1, 20), 30);

  // One-shot: slot reuse hangs — ⊥ back, history entry left pending.
  bool hung = false;
  EXPECT_EQ(table.apply(id, 0, 0, 99, 0, &hung), kBottom);
  EXPECT_TRUE(hung);
  EXPECT_TRUE(table.at(id).history.entries().back().pending());

  // The per-instance history segment feeds the linearizability checker.
  require_linearizable(OneShotWrnSpec{3}, table.at(id).history);

  table.decide(id, /*now=*/9);
  EXPECT_EQ(table.at(id).phase, InstancePhase::kDecided);
  EXPECT_EQ(table.at(id).decided_at, 9);
  table.decide(id, /*now=*/12);  // idempotent: first decision wins
  EXPECT_EQ(table.at(id).decided_at, 9);

  EXPECT_TRUE(table.gc(id));
  EXPECT_EQ(table.find(id), nullptr);
  EXPECT_THROW(table.at(id), SimError);
  EXPECT_FALSE(table.gc(id));

  EXPECT_EQ(table.stats().opened, 1);
  EXPECT_EQ(table.stats().decided, 1);
  EXPECT_EQ(table.stats().gcd, 1);
  EXPECT_EQ(table.stats().live, 0);
  EXPECT_EQ(table.stats().ops, 4);
}

TEST(InstanceTable, GacAndSetConsensusCoresServe) {
  InstanceTable table;
  // GAC(n=3, i=0) is consensus: everyone gets the first arrival.
  const InstanceId gac = table.open(InstanceKind::kGac, 3, 0);
  EXPECT_EQ(apply_ok(table, gac, 0, 0, 111), 111);
  EXPECT_EQ(apply_ok(table, gac, 1, 0, 222), 111);
  EXPECT_EQ(apply_ok(table, gac, 2, 0, 333), 111);

  // (n=4, k=2)-set-consensus: every response was proposed, ≤ 2 distinct.
  const InstanceId setc = table.open(InstanceKind::kSetConsensus, 4, 2);
  std::vector<Value> proposals{5, 6, 7};
  std::vector<Value> responses;
  for (int p = 0; p < 3; ++p) {
    responses.push_back(apply_ok(table, setc, p, 0,
                                 proposals[static_cast<std::size_t>(p)],
                                 /*seed=*/0x5e7c + static_cast<unsigned>(p)));
  }
  std::vector<Value> distinct;
  for (const Value r : responses) {
    EXPECT_NE(std::find(proposals.begin(), proposals.end(), r),
              proposals.end())
        << "response " << r << " was never proposed";
    if (std::find(distinct.begin(), distinct.end(), r) == distinct.end()) {
      distinct.push_back(r);
    }
  }
  EXPECT_LE(distinct.size(), 2u);

  EXPECT_EQ(table.stats().live, 2);
  EXPECT_EQ(table.stats().peak_live, 2);
}

TEST(InstanceTable, OpenValidatesParameters) {
  InstanceTable table;
  EXPECT_THROW(table.open(InstanceKind::kOneShotWrn, 1), SimError);
  EXPECT_THROW(table.open(InstanceKind::kGac, 0, 0), SimError);
  EXPECT_THROW(table.open(InstanceKind::kSetConsensus, 3, 0), SimError);
  EXPECT_THROW(table.open(InstanceKind::kSetConsensus, 3, 3), SimError);
  EXPECT_EQ(table.stats().live, 0);
}

TEST(InstanceTable, BlocksRecycleAcrossGcChurn) {
  InstanceTable table;
  // 10k open→serve→gc churns with ≤ 8 concurrently live: the free list must
  // bound carving at the high-water mark — block count must not grow with
  // churn count.
  std::vector<InstanceId> live;
  const auto kinds = {InstanceKind::kOneShotWrn, InstanceKind::kGac,
                      InstanceKind::kSetConsensus};
  int opened = 0;
  while (opened < 10'000) {
    for (const InstanceKind kind : kinds) {
      const InstanceId id = kind == InstanceKind::kOneShotWrn
                                ? table.open(kind, 4)
                                : table.open(kind, 4, 1);
      apply_ok(table, id, 0, 0, opened);
      live.push_back(id);
      ++opened;
    }
    if (live.size() >= 8) {
      for (const InstanceId id : live) {
        EXPECT_TRUE(table.gc(id));
      }
      live.clear();
    }
  }
  for (const InstanceId id : live) {
    table.gc(id);
  }
  EXPECT_EQ(table.stats().opened, opened);
  EXPECT_EQ(table.stats().gcd, opened);
  EXPECT_EQ(table.stats().live, 0);
  // Carving is bounded by the concurrency high-water mark (9 here: batches
  // of 3, GC at ≥ 8), never by the churn count.
  EXPECT_EQ(table.stats().blocks_carved, table.stats().peak_live);
  EXPECT_LE(table.stats().blocks_carved, 9);
  EXPECT_EQ(table.stats().block_reuses,
            table.stats().opened - table.stats().blocks_carved);
}

TEST(InstanceTable, GcDecidedSweepsByTimestamp) {
  InstanceTable table;
  const InstanceId a = table.open(InstanceKind::kOneShotWrn, 2, 0, /*now=*/1);
  const InstanceId b = table.open(InstanceKind::kOneShotWrn, 2, 0, /*now=*/1);
  const InstanceId c = table.open(InstanceKind::kOneShotWrn, 2, 0, /*now=*/1);
  table.decide(a, /*now=*/5);
  table.decide(b, /*now=*/9);
  // c stays open: the sweep must not touch undecided instances.
  EXPECT_EQ(table.gc_decided(/*decided_before=*/5), 1u);
  EXPECT_EQ(table.find(a), nullptr);
  ASSERT_NE(table.find(b), nullptr);
  ASSERT_NE(table.find(c), nullptr);
  EXPECT_EQ(table.gc_decided(/*decided_before=*/100), 1u);
  EXPECT_EQ(table.find(b), nullptr);
  ASSERT_NE(table.find(c), nullptr);
  EXPECT_EQ(table.stats().live, 1);
}

TEST(InstanceTable, FingerprintDomainsSeparateIdenticalHistories) {
  InstanceTable table;
  const InstanceId a = table.open(InstanceKind::kOneShotWrn, 3);
  const InstanceId b = table.open(InstanceKind::kOneShotWrn, 3);
  for (const InstanceId id : {a, b}) {
    apply_ok(table, id, 0, 0, 10);
    apply_ok(table, id, 1, 1, 20);
  }
  // Identical op sequences ⇒ identical local folds...
  EXPECT_NE(table.local_fingerprint(a), 0u);
  EXPECT_EQ(table.local_fingerprint(a), table.local_fingerprint(b));
  // ...but the per-instance domain term keeps world fingerprints apart, so
  // two instances can never alias in a shared memo or visited set.
  EXPECT_NE(table.world_fingerprint(a), table.world_fingerprint(b));
  EXPECT_NE(table.at(a).fp_domain, table.at(b).fp_domain);
  EXPECT_EQ(table.at(a).fp_domain, detail::fp_instance_domain(a));

  // A diverging op changes the local fold.
  apply_ok(table, b, 2, 2, 30);
  EXPECT_NE(table.local_fingerprint(a), table.local_fingerprint(b));
}

TEST(InstanceTable, RecycledBlockStartsFresh) {
  InstanceTable table;
  const InstanceId a = table.open(InstanceKind::kOneShotWrn, 3);
  apply_ok(table, a, 0, 0, 10);
  const std::uint64_t a_local = table.local_fingerprint(a);
  table.gc(a);

  // The recycled block must not leak state, history, or fingerprints.
  const InstanceId b = table.open(InstanceKind::kOneShotWrn, 3);
  EXPECT_NE(b, a);  // ids are never reused
  EXPECT_EQ(table.stats().block_reuses, 1);
  EXPECT_EQ(table.local_fingerprint(b), 0u);
  EXPECT_TRUE(table.at(b).history.entries().empty());
  EXPECT_EQ(apply_ok(table, b, 0, 0, 10), kBottom);  // slot 1 fresh again
  EXPECT_EQ(table.local_fingerprint(b), a_local)
      << "identical first op on a fresh instance must refold identically";
}

TEST(InstanceTable, InstanceCoreMatchesSimulatedObject) {
  // The same 1sWRN op sequence served (a) by the table and (b) by the
  // simulated object must return the same values — both route through
  // one_shot_wrn_commit.
  InstanceTable table;
  const InstanceId id = table.open(InstanceKind::kOneShotWrn, 4);
  std::vector<Value> service;
  for (int i = 0; i < 4; ++i) {
    service.push_back(apply_ok(table, id, i, i, 100 + i));
  }

  std::vector<Value> simulated;
  Runtime rt;
  OneShotWrnObject wrn(4);
  rt.add_process([&](Context& ctx) {
    for (int i = 0; i < 4; ++i) {
      simulated.push_back(wrn.wrn(ctx, i, 100 + i));
    }
  });
  RoundRobinDriver driver;
  rt.run(driver);
  EXPECT_EQ(service, simulated);
}

TEST(InstanceTable, OpenAssignedHostsSparseIdSlices) {
  // The sharded service assigns ids from a process-wide counter, so each
  // shard's table sees a sparse, non-contiguous slice of the id space.
  InstanceTable table;
  EXPECT_EQ(table.open_assigned(7, InstanceKind::kGac, 3, 0), 7u);
  EXPECT_EQ(table.open_assigned(3, InstanceKind::kGac, 3, 0), 3u);
  EXPECT_EQ(table.at(7).fp_domain, detail::fp_instance_domain(7));

  // id 0 is reserved; a live id cannot be reopened; validation still runs
  // before any block is acquired (a bad shape leaks nothing).
  EXPECT_THROW(table.open_assigned(0, InstanceKind::kGac, 3, 0), SimError);
  EXPECT_THROW(table.open_assigned(7, InstanceKind::kGac, 3, 0), SimError);
  const std::int64_t carved = table.stats().blocks_carved;
  EXPECT_THROW(table.open_assigned(9, InstanceKind::kOneShotWrn, 1, 0),
               SimError);
  EXPECT_EQ(table.stats().blocks_carved, carved);

  // Mixing with auto-id open stays safe: the cursor is bumped past every
  // assigned id, so auto ids never collide with assigned ones.
  const InstanceId next = table.open(InstanceKind::kGac, 3, 0);
  EXPECT_EQ(next, 8u);
  EXPECT_EQ(table.stats().live, 3);
}

TEST(InstanceTable, ToStringCoversKinds) {
  EXPECT_STREQ(to_string(InstanceKind::kOneShotWrn), "one_shot_wrn");
  EXPECT_STREQ(to_string(InstanceKind::kGac), "gac");
  EXPECT_STREQ(to_string(InstanceKind::kSetConsensus), "set_consensus");
}

}  // namespace
}  // namespace subc
