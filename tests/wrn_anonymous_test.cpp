// Tests for Algorithm 3 ((k−1)-set consensus for k participants out of a
// large name space) and the function family machinery: Claims 11–18.
#include "subc/algorithms/wrn_anonymous.hpp"

#include <gtest/gtest.h>

#include <set>

#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

TEST(FunctionFamily, CoveringFamilyHasBinomialSize) {
  // C(2k−1, k): 10 for k=3, 35 for k=4, 126 for k=5.
  EXPECT_EQ(make_function_family(3, FunctionFamily::kCovering).size(), 10u);
  EXPECT_EQ(make_function_family(4, FunctionFamily::kCovering).size(), 35u);
  EXPECT_EQ(make_function_family(5, FunctionFamily::kCovering).size(), 126u);
}

TEST(FunctionFamily, FullFamilyHasPowerSize) {
  // k^(2k−1): 243 for k=3.
  EXPECT_EQ(make_function_family(3, FunctionFamily::kFull).size(), 243u);
  EXPECT_THROW(make_function_family(6, FunctionFamily::kFull), SimError);
}

TEST(FunctionFamily, CoveringFamilyCoversEveryKSubset) {
  // The property Claim 16 needs: for every k-subset R of {0..2k−2} there is
  // an f_ℓ mapping R onto {0..k−1}.
  for (const int k : {3, 4, 5}) {
    const auto family = make_function_family(k, FunctionFamily::kCovering);
    const int domain = 2 * k - 1;
    std::vector<int> subset(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      subset[static_cast<std::size_t>(i)] = i;
    }
    for (;;) {
      bool covered = false;
      for (const auto& f : family) {
        std::set<int> image;
        for (const int r : subset) {
          image.insert(f[static_cast<std::size_t>(r)]);
        }
        if (static_cast<int>(image.size()) == k) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "k=" << k;
      int i = k - 1;
      while (i >= 0 &&
             subset[static_cast<std::size_t>(i)] == domain - k + i) {
        --i;
      }
      if (i < 0) {
        break;
      }
      ++subset[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k; ++j) {
        subset[static_cast<std::size_t>(j)] =
            subset[static_cast<std::size_t>(j - 1)] + 1;
      }
    }
  }
}

TEST(FunctionFamily, MapsLandInRange) {
  for (const auto kind : {FunctionFamily::kCovering, FunctionFamily::kFull}) {
    const int k = 3;
    for (const auto& f : make_function_family(k, kind)) {
      ASSERT_EQ(f.size(), static_cast<std::size_t>(2 * k - 1));
      for (const int y : f) {
        EXPECT_GE(y, 0);
        EXPECT_LT(y, k);
      }
    }
  }
}

// Algorithm 3 end-to-end: k participants with sparse original names solve
// (k−1)-set consensus. Random sweeps (the renaming + 10·WRN rounds make the
// schedule tree too deep for full exhaustion at useful sizes).
class Algorithm3Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Algorithm3Sweep, SolvesKMinus1SetConsensusForSparseNames) {
  const int k = GetParam();
  std::vector<Value> inputs;
  for (int i = 0; i < k; ++i) {
    inputs.push_back(1000 + 13 * i);
  }
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        AnonymousSetConsensus algorithm(k, /*slots=*/k);
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(algorithm.propose(ctx, /*slot=*/p,
                                         /*id=*/7000 + 31 * p,
                                         inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver, /*max_steps=*/5'000'000);
        check_all_done_and_decided(run);
        check_set_consensus(run, inputs, k - 1);
      },
      k <= 3 ? 400 : 120);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

INSTANTIATE_TEST_SUITE_P(AllK, Algorithm3Sweep, ::testing::Values(3, 4));

TEST(Algorithm3, ExhaustiveSmallInstance) {
  // k=3 with only 2 participants: exhaustively check validity, agreement
  // and termination (the sweep is shallow enough to bound).
  std::vector<Value> inputs{11, 22, 33};
  const auto result = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        AnonymousSetConsensus algorithm(3, /*slots=*/3);
        for (const int p : {0, 2}) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(algorithm.propose(ctx, p, 900 + p,
                                         inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver, 5'000'000);
        check_decided_if_done(run);
        check_validity(inputs, run.decisions);
        check_k_agreement(run.decisions, 2);
      },
      Explorer::Options{.max_executions = 30'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Algorithm3, NonRelaxedVariantAlsoWorks) {
  // Backed by full WRN_k objects instead of RlxWRN.
  const int k = 3;
  std::vector<Value> inputs{5, 6, 7};
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        AnonymousSetConsensus algorithm(k, k, FunctionFamily::kCovering,
                                        /*relaxed=*/false);
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(algorithm.propose(ctx, p, 100 + p,
                                         inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver, 5'000'000);
        check_all_done_and_decided(run);
        check_set_consensus(run, inputs, k - 1);
      },
      300);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Algorithm3, FullFamilyVariantWorks) {
  const int k = 3;
  std::vector<Value> inputs{5, 6, 7};
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        AnonymousSetConsensus algorithm(k, k, FunctionFamily::kFull);
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(algorithm.propose(ctx, p, 100 + p,
                                         inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver, 20'000'000);
        check_all_done_and_decided(run);
        check_set_consensus(run, inputs, k - 1);
      },
      60);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Algorithm3, SoloParticipantDecidesOwnValue) {
  Runtime rt;
  AnonymousSetConsensus algorithm(3, 3);
  Value decided = kBottom;
  rt.add_process([&](Context& ctx) {
    decided = algorithm.propose(ctx, 0, 42, 1234);
  });
  RoundRobinDriver driver;
  rt.run(driver, 5'000'000);
  EXPECT_EQ(decided, 1234);
}

}  // namespace
}  // namespace subc
