// The CrashAdversary policy decorator: planned and random crash injection
// composed over arbitrary inner policies, exercised against Algorithm 5's
// 1sWRN — which stays linearizable under f crashes, while a deliberately
// weakened variant is caught by the very same adversary.
#include <gtest/gtest.h>

#include "subc/algorithms/wrn_from_sse.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/policy.hpp"

namespace subc {
namespace {

TEST(CrashAdversary, PlanCrashesVictimAfterItsOwnSteps) {
  // The plan counts the *victim's* steps, not global ones: victim 1 must
  // die having taken exactly 2 steps no matter how the inner policy
  // interleaves.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    Runtime rt;
    RegisterArray<> regs(3, kBottom);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        for (int i = 0; i < 6; ++i) {
          regs[p].write(ctx, i);
        }
      });
    }
    RandomDriver inner(seed);
    CrashAdversary adversary(inner, {CrashAdversary::CrashPoint{1, 2}});
    const auto result = rt.run(adversary);
    EXPECT_EQ(result.states[1], ProcState::kCrashed) << "seed=" << seed;
    EXPECT_EQ(rt.steps_of(1), 2) << "seed=" << seed;
    EXPECT_EQ(adversary.crashes_injected(), 1);
    EXPECT_EQ(result.states[0], ProcState::kDone);
    EXPECT_EQ(result.states[2], ProcState::kDone);
  }
}

TEST(CrashAdversary, RandomModeRespectsTheBudget) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Runtime rt;
    RegisterArray<> regs(4, kBottom);
    for (int p = 0; p < 4; ++p) {
      rt.add_process([&, p](Context& ctx) {
        for (int i = 0; i < 5; ++i) {
          regs[p].write(ctx, i);
        }
      });
    }
    RandomDriver inner(seed);
    CrashAdversary adversary(inner, /*seed=*/seed * 31 + 7, /*f=*/2,
                             /*crash_prob=*/0.05);
    const auto result = rt.run(adversary);
    EXPECT_LE(adversary.crashes_injected(), 2) << "seed=" << seed;
    int crashed = 0;
    for (const ProcState s : result.states) {
      if (s == ProcState::kCrashed) {
        ++crashed;
      } else {
        EXPECT_EQ(s, ProcState::kDone);
      }
    }
    EXPECT_EQ(crashed, adversary.crashes_injected()) << "seed=" << seed;
  }
}

TEST(CrashAdversary, BeginRunResetsTheBudget) {
  // The same adversary object drives consecutive runs; each gets a fresh
  // crash budget (Runtime::run calls begin_run).
  RandomDriver inner(9);
  CrashAdversary adversary(inner, {CrashAdversary::CrashPoint{0, 1}});
  for (int round = 0; round < 3; ++round) {
    Runtime rt;
    RegisterArray<> regs(2, kBottom);
    for (int p = 0; p < 2; ++p) {
      rt.add_process([&, p](Context& ctx) {
        for (int i = 0; i < 3; ++i) {
          regs[p].write(ctx, i);
        }
      });
    }
    const auto result = rt.run(adversary);
    EXPECT_EQ(result.states[0], ProcState::kCrashed) << "round=" << round;
    EXPECT_EQ(adversary.crashes_injected(), 1) << "round=" << round;
  }
}

// ---------------------------------------------------------------------------
// Algorithm 5 under the crash adversary. The full construction stays
// linearizable whatever the adversary does (crashed operations are pending;
// the checker may linearize or drop them). The doorway-ablated variant is
// caught by the very same adversary/seed sweep: after w_{i+1} completes, a
// fresh w_i can still win the strong set election (two winners are legal)
// and return ⊥ where linearizability demands v_{i+1}.
// ---------------------------------------------------------------------------

/// The §5 doorway scenario plus a concurrent crash target: p0 runs w1 then
/// w0 back to back; p1 runs w2 concurrently and is killed mid-operation by
/// the adversary's plan.
ExecutionBody doorway_scenario(WrnFromSse::Options options, History* history) {
  return [options, history](ScheduleDriver& driver) {
    Runtime rt;
    WrnFromSse object(3, options);
    rt.add_process([&](Context& ctx) {
      object.one_shot_wrn(ctx, 1, 101, history);  // w_{i+1} first...
      object.one_shot_wrn(ctx, 0, 100, history);  // ...then w_i
    });
    rt.add_process([&](Context& ctx) {
      object.one_shot_wrn(ctx, 2, 102, history);
    });
    rt.run(driver);
  };
}

TEST(CrashAdversary, Algorithm5LinearizableUnderPlannedCrashes) {
  // Mirrors the coverage the old hand-rolled crash harness gave Algorithm 5,
  // now via the composable adversary: every (victim, crash point, seed)
  // cell leaves survivors done and the recorded history linearizable.
  const int k = 3;
  for (int victim = 0; victim < k; ++victim) {
    for (std::int64_t after = 1; after <= 5; ++after) {
      for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        Runtime rt;
        WrnFromSse object(k);
        History history;
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            object.one_shot_wrn(ctx, p, 100 + p, &history);
          });
        }
        RandomDriver inner(seed);
        CrashAdversary adversary(inner,
                                 {CrashAdversary::CrashPoint{victim, after}});
        const auto result = rt.run(adversary);
        for (int p = 0; p < k; ++p) {
          if (p != victim) {
            ASSERT_EQ(result.states[static_cast<std::size_t>(p)],
                      ProcState::kDone)
                << "survivor blocked: victim=" << victim << " after=" << after
                << " seed=" << seed;
          }
        }
        require_linearizable(OneShotWrnSpec{k}, history);
      }
    }
  }
}

TEST(CrashAdversary, Algorithm5LinearizableUnderRandomCrashes) {
  // Random fault model, f = 2 of 4: whatever subset the adversary kills,
  // survivors terminate and the history stays linearizable.
  const int k = 4;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Runtime rt;
    WrnFromSse object(k);
    History history;
    for (int p = 0; p < k; ++p) {
      rt.add_process([&, p](Context& ctx) {
        object.one_shot_wrn(ctx, p, 100 + p, &history);
      });
    }
    RandomDriver inner(seed);
    CrashAdversary adversary(inner, /*seed=*/seed * 101 + 13, /*f=*/2,
                             /*crash_prob=*/0.02);
    const auto result = rt.run(adversary);
    EXPECT_LE(adversary.crashes_injected(), 2);
    for (int p = 0; p < k; ++p) {
      if (result.states[static_cast<std::size_t>(p)] != ProcState::kCrashed) {
        ASSERT_EQ(result.states[static_cast<std::size_t>(p)], ProcState::kDone)
            << "survivor blocked: seed=" << seed;
      }
    }
    require_linearizable(OneShotWrnSpec{k}, history);
  }
}

TEST(CrashAdversary, WeakenedVariantCaughtFullAlgorithmSurvives) {
  // The capability half: the same adversary sweep distinguishes the real
  // Algorithm 5 from its doorway-ablated variant. With the doorway removed
  // the sequential w1-then-w0 pattern can yield two election winners — a
  // non-linearizable ⊥/⊥ outcome — even while p1's concurrent w2 is being
  // crashed mid-operation. The full algorithm shrugs off every cell.
  constexpr std::uint64_t kSeeds = 80;
  bool weakened_caught = false;
  for (std::uint64_t seed = 1; seed <= kSeeds && !weakened_caught; ++seed) {
    History history;
    RandomDriver inner(seed);
    CrashAdversary adversary(inner, {CrashAdversary::CrashPoint{1, 3}});
    doorway_scenario(WrnFromSse::Options{.use_doorway = false}, &history)(
        adversary);
    const auto verdict = check_linearizable(OneShotWrnSpec{3},
                                            history.entries());
    if (!verdict.linearizable) {
      weakened_caught = true;
    }
  }
  EXPECT_TRUE(weakened_caught)
      << "no seed in the sweep exposed the doorway ablation under crashes";

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    History history;
    RandomDriver inner(seed);
    CrashAdversary adversary(inner, {CrashAdversary::CrashPoint{1, 3}});
    doorway_scenario(WrnFromSse::Options{}, &history)(adversary);
    require_linearizable(OneShotWrnSpec{3}, history);
  }
}

TEST(CrashAdversary, ComposesOverPct) {
  // The decorator is policy-agnostic: PCT inside, crashes outside. The run
  // stays deterministic per seed, so assert two identical back-to-back runs.
  const auto run_once = [](std::uint64_t seed) {
    Runtime rt;
    RegisterArray<> regs(3, kBottom);
    History history;
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        const auto h = history.invoke(p, {p});
        regs[p].write(ctx, p);
        const Value seen = regs[(p + 1) % 3].read(ctx);
        history.respond(h, {seen});
      });
    }
    PctPolicy inner(seed, /*depth=*/2, /*horizon=*/32);
    CrashAdversary adversary(inner, {CrashAdversary::CrashPoint{2, 1}});
    rt.run(adversary);
    return history.dump();
  };
  for (const std::uint64_t seed : {4ULL, 17ULL}) {
    EXPECT_EQ(run_once(seed), run_once(seed)) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace subc
