// Stateful exploration (Explorer::Options::stateful): the kernel's
// incremental world-state fingerprint plus the visited-(state, sleep-set)
// cache. The load-bearing claims under test:
//   - on convergent worlds the search takes cuts and runs strictly fewer
//     executions, with the verdict and completeness of the plain search;
//   - violations are still found, and the reported trace replays and
//     shrinks (stateful never hides a bug — soundness);
//   - serial stateful searches are fully deterministic;
//   - parallel stateful searches reach the same verdict as serial ones;
//   - worlds stepping through objects that do not report fingerprints
//     degrade to zero cuts (the poison rule), never to a wrong verdict;
//   - the new knobs are validated, and checkpoints follow the documented
//     cold-restart rule (visited set not serialized; stateful echo matched
//     on resume).
#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <string>

#include "subc/checking/checkpoint.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/test_and_set.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/runtime.hpp"

namespace subc {
namespace {

// A convergent world: each process writes its own register, then the shared
// last-writer-wins register. Many interleavings collapse onto the same
// world state (the shared cell only remembers its last writer), so the
// visited set should cut hard.
ExecutionBody mixed_body(int procs) {
  return [procs](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> own(static_cast<std::size_t>(procs), kBottom);
    Register<> shared(kBottom);
    for (int p = 0; p < procs; ++p) {
      rt.add_process([&, p](Context& ctx) {
        own[p].write(ctx, p);
        shared.write(ctx, p);
        own[p].write(ctx, 100 + p);
      });
    }
    rt.run(driver);
  };
}

// The classic lost update on a ported register: schedules where the reads
// overlap lose an increment, and the body flags exactly those.
ExecutionBody lost_update_body() {
  return [](ScheduleDriver& driver) {
    Runtime rt;
    Register<> counter(0);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&](Context& ctx) {
        const Value seen = counter.read(ctx);
        counter.write(ctx, seen + 1);
      });
    }
    rt.run(driver);
    if (counter.peek() != 3) {
      throw SpecViolation("lost update: counter ended at " +
                          to_string(counter.peek()));
    }
  };
}

// TestAndSet never reports a fingerprint: every granted step through it is
// silent, which poisons the execution's fingerprint (hashing.hpp).
ExecutionBody unported_body() {
  return [](ScheduleDriver& driver) {
    Runtime rt;
    TestAndSet tas;
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&](Context& ctx) { (void)tas.test_and_set(ctx); });
    }
    rt.run(driver);
  };
}

Explorer::Result explore(const ExecutionBody& body, bool stateful,
                         Reduction reduction = Reduction::kSleepSets,
                         int threads = 1, int max_crashes = 0) {
  Explorer::Options opts;
  opts.stateful = stateful;
  opts.reduction = reduction;
  opts.threads = threads;
  opts.max_crashes = max_crashes;
  if (max_crashes > 0) {
    opts.step_quota = 100'000;
  }
  return Explorer::explore(body, opts);
}

TEST(StatefulExploration, ConvergentWorldCutsAndAgreesWithStateless) {
  const ExecutionBody body = mixed_body(3);
  for (const Reduction reduction :
       {Reduction::kNone, Reduction::kSleepSets}) {
    SCOPED_TRACE(reduction == Reduction::kNone ? "none" : "sleep");
    const auto plain = explore(body, /*stateful=*/false, reduction);
    const auto st = explore(body, /*stateful=*/true, reduction);
    EXPECT_TRUE(plain.ok());
    EXPECT_TRUE(st.ok());
    EXPECT_TRUE(plain.complete);
    EXPECT_TRUE(st.complete);
    EXPECT_GT(st.stateful_cuts, 0);
    EXPECT_GT(st.stateful_states, 0);
    EXPECT_LT(st.executions, plain.executions);
    EXPECT_EQ(plain.stateful_cuts, 0);
    EXPECT_EQ(plain.stateful_states, 0);
  }
}

TEST(StatefulExploration, SerialSearchIsDeterministic) {
  const ExecutionBody body = mixed_body(3);
  const auto a = explore(body, /*stateful=*/true);
  const auto b = explore(body, /*stateful=*/true);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.stateful_cuts, b.stateful_cuts);
  EXPECT_EQ(a.stateful_states, b.stateful_states);
  EXPECT_EQ(a.reduced_subtrees, b.reduced_subtrees);
  EXPECT_EQ(a.complete, b.complete);
}

TEST(StatefulExploration, ViolationIsFoundReplaysAndShrinks) {
  const ExecutionBody body = lost_update_body();
  const auto plain = explore(body, /*stateful=*/false);
  const auto st = explore(body, /*stateful=*/true);
  ASSERT_TRUE(plain.violation.has_value());
  ASSERT_TRUE(st.violation.has_value());
  // The canonical violation may differ from the plain search's, but it must
  // replay deterministically...
  EXPECT_THROW(Explorer::replay(body, st.violating_trace), SpecViolation);
  // ...and delta-debug to a reproducer that still replays.
  const auto shrunk = Explorer::shrink(body, st.violating_trace);
  EXPECT_LE(shrunk.size(), st.violating_trace.size());
  EXPECT_THROW(Explorer::replay(body, shrunk), SpecViolation);
}

TEST(StatefulExploration, ParallelVerdictMatchesSerial) {
  // Parallel stateful searches share one visited set, so the cut/execution
  // split is timing-dependent — but the verdict and completeness must match
  // the serial search at every thread count.
  for (const ExecutionBody& body : {mixed_body(3), lost_update_body()}) {
    const auto serial = explore(body, /*stateful=*/true);
    const auto par =
        explore(body, /*stateful=*/true, Reduction::kSleepSets, /*threads=*/4);
    EXPECT_EQ(par.ok(), serial.ok());
    EXPECT_EQ(par.complete, serial.complete);
    if (par.violation.has_value()) {
      EXPECT_THROW(Explorer::replay(body, par.violating_trace), SpecViolation);
    }
  }
}

TEST(StatefulExploration, CrashBranchingStillAgrees) {
  const ExecutionBody body = mixed_body(2);
  const auto plain =
      explore(body, /*stateful=*/false, Reduction::kSleepSets, 1,
              /*max_crashes=*/1);
  const auto st = explore(body, /*stateful=*/true, Reduction::kSleepSets, 1,
                          /*max_crashes=*/1);
  EXPECT_EQ(st.ok(), plain.ok());
  EXPECT_EQ(st.complete, plain.complete);
  EXPECT_GT(st.stateful_cuts, 0);
  EXPECT_LT(st.executions, plain.executions);
}

TEST(StatefulExploration, UnportedObjectDegradesToZeroCuts) {
  const ExecutionBody body = unported_body();
  const auto plain = explore(body, /*stateful=*/false);
  const auto st = explore(body, /*stateful=*/true);
  // The poison rule: silent steps invalidate the fingerprint, so no cuts are
  // taken and the search degrades to the plain one — same tallies, never a
  // wrong verdict.
  EXPECT_EQ(st.stateful_cuts, 0);
  EXPECT_EQ(st.executions, plain.executions);
  EXPECT_EQ(st.reduced_subtrees, plain.reduced_subtrees);
  EXPECT_EQ(st.ok(), plain.ok());
  EXPECT_EQ(st.complete, plain.complete);
}

TEST(StatefulExploration, TinyCapacityStaysSound) {
  // capacity=1 gives the minimum table; once it saturates the search keeps
  // exploring without cuts. Verdict and completeness must be unaffected.
  const ExecutionBody body = mixed_body(3);
  Explorer::Options opts;
  opts.stateful = true;
  opts.stateful_capacity = 1;
  const auto st = Explorer::explore(body, opts);
  const auto plain = explore(body, /*stateful=*/false);
  EXPECT_EQ(st.ok(), plain.ok());
  EXPECT_EQ(st.complete, plain.complete);
  EXPECT_LE(st.executions, plain.executions);
}

TEST(StatefulExploration, OptionsAreValidated) {
  const ExecutionBody body = mixed_body(2);
  for (const std::int64_t capacity : {std::int64_t{0}, std::int64_t{-5}}) {
    Explorer::Options opts;
    opts.stateful = true;
    opts.stateful_capacity = capacity;
    try {
      Explorer::explore(body, opts);
      FAIL() << "capacity " << capacity << " accepted";
    } catch (const SimError& e) {
      EXPECT_NE(std::string(e.what()).find("stateful_capacity"),
                std::string::npos)
          << e.what();
    }
  }
  {
    Explorer::Options opts;
    opts.stateful = true;
    opts.prune = [](std::span<const ReplayDriver::Decision>) { return false; };
    try {
      Explorer::explore(body, opts);
      FAIL() << "stateful+prune accepted";
    } catch (const SimError& e) {
      EXPECT_NE(std::string(e.what()).find("prune"), std::string::npos)
          << e.what();
    }
  }
}

TEST(StatefulExploration, CheckpointFollowsColdRestartRule) {
  const std::string path = "stateful_ckpt_test.snapshot";
  std::remove(path.c_str());
  const ExecutionBody body = mixed_body(3);

  Explorer::Options opts;
  opts.stateful = true;
  opts.checkpoint_path = path;
  const auto first = Explorer::explore(body, opts);
  EXPECT_TRUE(first.complete);

  // The snapshot must echo the stateful flag and carry the cut tally.
  const ExplorerSnapshot snap = load_snapshot(path);
  EXPECT_TRUE(snap.stateful);
  EXPECT_EQ(snap.stateful_cuts, first.stateful_cuts);

  // Resuming a finished stateful search returns the saved Result verbatim.
  const auto resumed = Explorer::resume(body, path, opts);
  EXPECT_EQ(resumed.executions, first.executions);
  EXPECT_EQ(resumed.stateful_cuts, first.stateful_cuts);
  EXPECT_EQ(resumed.complete, first.complete);

  // Resuming with the stateful flag flipped is an option-echo mismatch.
  Explorer::Options mismatched = opts;
  mismatched.stateful = false;
  EXPECT_THROW(Explorer::resume(body, path, mismatched), SimError);

  std::remove(path.c_str());
}

}  // namespace
}  // namespace subc
