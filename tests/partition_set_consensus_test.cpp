// Tests for the constructive direction of Theorem 41: (n,k)-set consensus
// from nondeterministic (m,j)-set-consensus objects by partitioning, driven
// adversarially in the simulator.
#include "subc/algorithms/partition_set_consensus.hpp"

#include <gtest/gtest.h>

#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

struct PCase {
  int n;
  int m;
  int j;
};

class PartitionSweep : public ::testing::TestWithParam<PCase> {};

TEST_P(PartitionSweep, MeetsTheorem41Bound) {
  const auto [n, m, j] = GetParam();
  std::vector<Value> inputs;
  for (int p = 0; p < n; ++p) {
    inputs.push_back(10 + p);
  }
  PartitionSetConsensus probe(n, m, j);
  const int k = probe.agreement();
  EXPECT_EQ(k, sc_partition_agreement(n, m, j));
  int max_distinct = 0;
  const ExecutionBody body = [&, n = n, m = m, j = j](ScheduleDriver& driver) {
    Runtime rt;
    PartitionSetConsensus algorithm(n, m, j);
    for (int p = 0; p < n; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(
            algorithm.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_set_consensus(run, inputs, k);
    max_distinct = std::max(max_distinct, distinct_decisions(run.decisions));
  };
  // Small instances exhaustively (including all adversary choices of the
  // nondeterministic objects); larger ones randomly.
  if (n <= 4) {
    const auto r =
        Explorer::explore(body, Explorer::Options{.max_executions = 400'000});
    EXPECT_TRUE(r.ok()) << *r.violation;
  } else {
    const auto r = RandomSweep::run(body, 800);
    EXPECT_TRUE(r.ok()) << *r.violation;
  }
  // Tightness: the adversary can realize the full bound.
  EXPECT_EQ(max_distinct, std::min(k, n));
}

INSTANTIATE_TEST_SUITE_P(Grid, PartitionSweep,
                         ::testing::Values(PCase{3, 3, 2}, PCase{4, 3, 2},
                                           PCase{6, 3, 2}, PCase{5, 5, 2},
                                           PCase{6, 4, 2}, PCase{7, 3, 2},
                                           PCase{4, 4, 3}, PCase{8, 4, 3}));

TEST(PartitionSetConsensus, SubsetParticipation) {
  // Only some processes participate: still valid, still within bound.
  const auto result = RandomSweep::run(
      [](ScheduleDriver& driver) {
        Runtime rt;
        PartitionSetConsensus algorithm(6, 3, 2);
        const std::vector<Value> inputs{10, 11, 12, 13, 14, 15};
        for (const int p : {0, 2, 5}) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(algorithm.propose(ctx, p,
                                         inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_decided_if_done(run);
        check_validity(inputs, run.decisions);
        check_k_agreement(run.decisions, algorithm.agreement());
      },
      500);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(PartitionSetConsensus, ParameterValidation) {
  EXPECT_THROW(PartitionSetConsensus(0, 3, 2), SimError);
  EXPECT_THROW(PartitionSetConsensus(3, 2, 2), SimError);
  PartitionSetConsensus algorithm(3, 3, 2);
  Runtime rt;
  rt.add_process([&](Context& ctx) {
    EXPECT_THROW(algorithm.propose(ctx, 3, 1), SimError);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

}  // namespace
}  // namespace subc
