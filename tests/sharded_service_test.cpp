// Unit tests for the sharded agreement service (runtime/service.hpp):
// routing determinism, shard isolation (no fingerprint aliasing across
// shard tables), the cross-shard decision memo's exactly-one-winner and
// saturation behavior, dedup short-circuiting of replayed requests,
// backpressured inboxes that never drop accepted ops, and drained tables
// at exit. Run under TSan by `scripts/check.sh --service-smoke`.
#include "subc/runtime/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "subc/runtime/hashing.hpp"

namespace subc {
namespace {

ServiceOptions fast_options(int shards) {
  ServiceOptions opts;
  opts.shards = shards;
  opts.pin_workers = false;  // unit tests should not fight the scheduler
  opts.horizon_ticks = 5;
  opts.timeout_ticks = 12;
  opts.linger_ticks = 2;
  return opts;
}

/// Opens a GAC(3, 0) (= consensus) instance and submits a deciding quorum.
ServiceId open_consensus(ShardedService& svc, Value v,
                         std::uint64_t request_fp = 0) {
  OpenSpec spec;
  spec.kind = InstanceKind::kGac;
  spec.a = 3;
  spec.b = 0;
  spec.request_fp = request_fp;
  spec.total_weight = 3;
  spec.spec_k = 1;
  const ServiceId id = svc.open(spec);
  for (int p = 0; p < 3; ++p) {
    svc.submit(id, OpSpec{/*validator=*/p, /*weight=*/1, /*slot=*/0,
                          /*value=*/v + p, /*delay_ticks=*/1 + p});
  }
  return id;
}

template <typename Pred>
bool wait_until(Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(ShardedService, RoutingIsAPureFunctionOfTheId) {
  for (ServiceId id = 1; id <= 1000; ++id) {
    // One shard: everything routes to it.
    EXPECT_EQ(ShardedService::shard_of(id, 1), 0);
    // The route is deterministic and in range for every shard count.
    for (int shards : {2, 4, 8}) {
      const int s = ShardedService::shard_of(id, shards);
      EXPECT_GE(s, 0);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, ShardedService::shard_of(id, shards));
    }
  }
  // mix64 spreads dense ids: every shard of 4 sees traffic from 1..1000.
  std::set<int> hit;
  for (ServiceId id = 1; id <= 1000; ++id) {
    hit.insert(ShardedService::shard_of(id, 4));
  }
  EXPECT_EQ(hit.size(), 4u);
}

TEST(ShardedService, DecidesAndReportsThroughTheCallback) {
  std::mutex mu;
  std::vector<DecidedView> views;  // pointers not retained past callback
  std::vector<std::size_t> proposal_counts;
  ShardedService svc(fast_options(2), [&](const DecidedView& view) {
    std::lock_guard<std::mutex> lk(mu);
    views.push_back(view);
    views.back().block = nullptr;  // worker-owned; drop before returning
    views.back().proposals = nullptr;
    views.back().responses = nullptr;
    proposal_counts.push_back(view.proposals->size());
    EXPECT_NE(view.block, nullptr);
    EXPECT_EQ(view.block->kind, InstanceKind::kGac);
  });
  const ServiceId id = open_consensus(svc, 100);
  ASSERT_TRUE(wait_until([&] {
    std::lock_guard<std::mutex> lk(mu);
    return !views.empty();
  }));
  svc.stop();

  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].id, id);
  EXPECT_EQ(views[0].shard, svc.shard_of(id));
  // GAC(3, 0) is consensus on the first arrival; delays order the arrivals.
  EXPECT_EQ(views[0].decided, 100);
  EXPECT_GE(views[0].latency_ticks, 1);
  EXPECT_EQ(proposal_counts[0], 3u);

  std::int64_t decided = 0;
  std::int64_t live = 0;
  for (const ShardStats& st : svc.stats()) {
    decided += st.decided;
    live += st.live_at_exit;
  }
  EXPECT_EQ(decided, 1);
  EXPECT_EQ(live, 0);
}

TEST(ShardedService, IdenticalHistoriesNeverAliasAcrossShards) {
  // Every instance runs the exact same op sequence — identical *local*
  // fingerprints by design — yet the world fingerprints reported at
  // decision must all differ: each id owns its own fp domain, and shard
  // tables host disjoint id slices.
  constexpr int kInstances = 200;
  std::mutex mu;
  std::vector<std::uint64_t> world_fps;
  ShardedService svc(fast_options(4), [&](const DecidedView& view) {
    std::lock_guard<std::mutex> lk(mu);
    world_fps.push_back(view.world_fp);
  });
  for (int i = 0; i < kInstances; ++i) {
    open_consensus(svc, /*v=*/500);  // same values for every instance
  }
  ASSERT_TRUE(wait_until([&] {
    std::lock_guard<std::mutex> lk(mu);
    return world_fps.size() == kInstances;
  }));
  svc.stop();

  const std::set<std::uint64_t> distinct(world_fps.begin(), world_fps.end());
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kInstances));
  // Traffic really did spread over multiple tables.
  int shards_used = 0;
  for (const ShardStats& st : svc.stats()) {
    shards_used += st.opened > 0 ? 1 : 0;
    EXPECT_EQ(st.live_at_exit, 0);
  }
  EXPECT_GT(shards_used, 1);
}

TEST(DecisionMemo, ExactlyOneRecorderWins) {
  DecisionMemo memo(1024);
  const std::uint64_t key = detail::fp_request_domain(0xfeedULL);
  constexpr int kThreads = 8;
  std::atomic<int> wins{0};
  std::atomic<Value> winner_value{kBottom};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (memo.record(key, /*decided=*/1000 + t)) {
        wins.fetch_add(1);
        winner_value.store(1000 + t);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(wins.load(), 1);
  const auto hit = memo.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, winner_value.load());
  EXPECT_EQ(memo.size(), 1);
  // Late recorders of the same key always lose.
  EXPECT_FALSE(memo.record(key, 42));
  EXPECT_EQ(*memo.lookup(key), winner_value.load());
}

TEST(DecisionMemo, SaturationIsASoundNoOp) {
  DecisionMemo memo(10);  // slots round up to 64, max load 44
  const std::size_t max_records = memo.slot_count() * 7 / 10;
  std::size_t recorded = 0;
  std::uint64_t key = 1;
  while (!memo.saturated()) {
    ASSERT_TRUE(memo.record(detail::mix64(key++), 7));
    ++recorded;
    ASSERT_LE(recorded, max_records);
  }
  EXPECT_EQ(recorded, max_records);
  // Saturated: further records are refused, lookups of them miss — the
  // caller just runs agreement itself, which is always sound.
  const std::uint64_t overflow = detail::mix64(key);
  EXPECT_FALSE(memo.record(overflow, 9));
  EXPECT_FALSE(memo.lookup(overflow).has_value());
  // Recorded keys still hit.
  EXPECT_EQ(*memo.lookup(detail::mix64(std::uint64_t{1})), 7);
}

TEST(ShardedService, ReplayedRequestsShortCircuitToTheRecordedDecision) {
  constexpr std::uint64_t kRequestFp = 0x5eedULL;
  constexpr int kReplays = 32;
  std::atomic<int> decided_count{0};
  std::atomic<Value> decided_value{kBottom};
  ShardedService svc(fast_options(4), [&](const DecidedView& view) {
    decided_value.store(view.decided);
    decided_count.fetch_add(1);
  });
  open_consensus(svc, /*v=*/777, kRequestFp);
  // Wait for the decision to be *recorded* before replaying, so every
  // replayed open is guaranteed a memo hit.
  ASSERT_TRUE(wait_until([&] { return decided_count.load() >= 1; }));
  for (int i = 0; i < kReplays; ++i) {
    // A replay gets a fresh id, hence (very likely) a different shard —
    // the memo hit is what makes dedup *cross-shard*.
    OpenSpec spec;
    spec.kind = InstanceKind::kGac;
    spec.a = 3;
    spec.b = 0;
    spec.request_fp = kRequestFp;
    spec.total_weight = 3;
    spec.spec_k = 1;
    svc.open(spec);
  }
  svc.stop();

  EXPECT_EQ(decided_count.load(), 1);
  EXPECT_EQ(decided_value.load(), 777);
  std::int64_t dedup_hits = 0;
  std::int64_t dedup_records = 0;
  std::int64_t opened = 0;
  for (const ShardStats& st : svc.stats()) {
    dedup_hits += st.dedup_hits;
    dedup_records += st.dedup_records;
    opened += st.opened;
  }
  EXPECT_EQ(dedup_hits, kReplays);
  EXPECT_EQ(dedup_records, 1);
  EXPECT_EQ(opened, 1);
  const auto hit = svc.memo().lookup(detail::fp_request_domain(kRequestFp));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 777);
}

TEST(ShardedService, TinyBackpressuredInboxNeverDropsOps) {
  // A 4-slot inbox against 4 producer threads: producers absorb the
  // pressure (spin on try_push) and every accepted message is eventually
  // drained — the accounting identities below only hold with zero drops.
  ServiceOptions opts = fast_options(2);
  opts.inbox_capacity = 4;
  opts.drain_batch = 8;
  ShardedService svc(opts);
  constexpr int kProducers = 4;
  constexpr int kOpensPerProducer = 250;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&svc, p] {
      for (int i = 0; i < kOpensPerProducer; ++i) {
        OpenSpec spec;
        spec.kind = InstanceKind::kGac;
        spec.a = 2;
        spec.b = 0;
        spec.total_weight = 2;
        spec.spec_k = 1;
        const ServiceId id = svc.open(spec);
        svc.submit(id, OpSpec{0, 1, 0, 10 * p + 1, 1 + (i % 5)});
        svc.submit(id, OpSpec{1, 1, 0, 10 * p + 2, 1 + ((i + 3) % 5)});
      }
    });
  }
  for (auto& th : producers) {
    th.join();
  }
  svc.stop();

  std::int64_t msgs_open = 0, msgs_op = 0, opened = 0, ops = 0;
  std::int64_t orphans = 0, skipped = 0, decided = 0, timed_out = 0;
  std::int64_t gc_sweeps = 0, live = 0;
  std::size_t inbox_peak = 0;
  for (const ShardStats& st : svc.stats()) {
    msgs_open += st.msgs_open;
    msgs_op += st.msgs_op;
    opened += st.opened;
    ops += st.ops;
    orphans += st.orphan_ops;
    skipped += st.skipped_ops;
    decided += st.decided;
    timed_out += st.timed_out;
    gc_sweeps += st.gc_sweeps;
    live += st.live_at_exit;
    if (st.inbox_peak > inbox_peak) {
      inbox_peak = st.inbox_peak;
    }
  }
  // Every message submitted was drained by exactly one worker.
  EXPECT_EQ(msgs_open, kProducers * kOpensPerProducer);
  EXPECT_EQ(msgs_op, kProducers * kOpensPerProducer * 2);
  // No request_fp → no dedup: every open became a live instance.
  EXPECT_EQ(opened, msgs_open);
  // Every op message was applied, orphaned, or skipped — never lost.
  EXPECT_EQ(ops + orphans + skipped, msgs_op);
  // Every instance resolves exactly one way: decided, or timed out when
  // the tiny inbox delayed its ops past the deadline on a loaded host.
  EXPECT_EQ(decided + timed_out, opened);
  EXPECT_GT(decided, 0);
  // Drained at exit: everything opened was reclaimed.
  EXPECT_EQ(gc_sweeps, opened);
  EXPECT_EQ(live, 0);
  // The tiny ring really did cap occupancy.
  EXPECT_LE(inbox_peak, 4u);
}

TEST(ShardedService, UnreachableQuorumTimesOutAndDrainsTheTables) {
  ServiceOptions opts = fast_options(2);
  constexpr int kInstances = 64;
  ShardedService svc(opts);
  for (int i = 0; i < kInstances; ++i) {
    OpenSpec spec;
    spec.kind = InstanceKind::kGac;
    spec.a = 3;
    spec.b = 0;
    spec.total_weight = 100;  // one weight-1 op can never reach 2/3 of 100
    spec.spec_k = 1;
    const ServiceId id = svc.open(spec);
    svc.submit(id, OpSpec{0, 1, 0, 5, 1});
  }
  svc.stop();

  std::int64_t timed_out = 0;
  for (const ShardStats& st : svc.stats()) {
    timed_out += st.timed_out;
    EXPECT_EQ(st.decided, 0);
    // stop() drains to quiescence: the undecided stragglers were reclaimed
    // by the deadline lane, not leaked.
    EXPECT_EQ(st.live_at_exit, 0);
    EXPECT_EQ(st.gc_sweeps, st.opened);
  }
  EXPECT_EQ(timed_out, kInstances);
}

TEST(ShardedService, ClientSideValidationAndStopSemantics) {
  ShardedService svc(fast_options(1));
  // Malformed shapes fail on the submitting thread, before any enqueue.
  OpenSpec bad;
  bad.kind = InstanceKind::kOneShotWrn;
  bad.a = 1;  // 1sWRN needs k >= 2
  bad.total_weight = 1;
  EXPECT_THROW(svc.open(bad), SimError);
  OpenSpec zero_weight;
  zero_weight.kind = InstanceKind::kGac;
  zero_weight.a = 3;
  zero_weight.total_weight = 0;
  EXPECT_THROW(svc.open(zero_weight), SimError);

  svc.stop();
  EXPECT_TRUE(svc.stopped());
  OpenSpec ok;
  ok.kind = InstanceKind::kGac;
  ok.a = 3;
  ok.total_weight = 3;
  EXPECT_THROW(svc.open(ok), SimError);
  EXPECT_THROW(svc.submit(1, OpSpec{0, 1, 0, 1, 1}), SimError);
  svc.stop();  // idempotent
}

TEST(ShardedService, BadOptionsAreRejected) {
  ServiceOptions opts;
  opts.shards = 0;
  EXPECT_THROW(ShardedService svc(opts), SimError);
  opts = ServiceOptions{};
  opts.drain_batch = 0;
  EXPECT_THROW(ShardedService svc(opts), SimError);
  opts = ServiceOptions{};
  opts.horizon_ticks = 0;
  EXPECT_THROW(ShardedService svc(opts), SimError);
  opts = ServiceOptions{};
  opts.dedup_capacity = 0;
  EXPECT_THROW(ShardedService svc(opts), SimError);
}

TEST(ShardedService, StatsBeforeStopThrows) {
  ShardedService svc(fast_options(1));
  EXPECT_THROW(static_cast<void>(svc.stats()), SimError);
  svc.stop();
  EXPECT_EQ(svc.stats().size(), 1u);
}

}  // namespace
}  // namespace subc
