// Tests for the register-built wait-free snapshot (AADGMS) and its
// interchangeability with the atomic base object.
#include "subc/algorithms/snapshot_impl.hpp"

#include <gtest/gtest.h>

#include "subc/objects/snapshot.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/runtime.hpp"

namespace subc {
namespace {

TEST(SnapshotFromRegisters, SequentialUpdateScan) {
  Runtime rt;
  SnapshotFromRegisters<> snap(3, kBottom);
  rt.add_process([&](Context& ctx) {
    snap.update(ctx, 0, 1);
    snap.update(ctx, 1, 2);
    const auto view = snap.scan(ctx);
    EXPECT_EQ(view, (std::vector<Value>{1, 2, kBottom}));
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

// Regularity: a scan returns, per cell, a value that was current at some
// point during the scan — under *every* schedule (exhaustive, 2 writers +
// 1 scanner). With monotonically increasing per-cell values this means the
// scanned value lies between the value at scan start and at scan end.
TEST(SnapshotFromRegisters, ScansAreCurrentUnderAllSchedules) {
  const auto result = Explorer::explore(
      [](ScheduleDriver& driver) {
        Runtime rt;
        SnapshotFromRegisters<> snap(2, 0);
        std::vector<Value> view;
        for (int w = 0; w < 2; ++w) {
          rt.add_process([&, w](Context& ctx) {
            snap.update(ctx, w, 1);
            snap.update(ctx, w, 2);
          });
        }
        rt.add_process([&](Context& ctx) { view = snap.scan(ctx); });
        rt.run(driver);
        for (const Value v : view) {
          if (v < 0 || v > 2) {
            throw SpecViolation("scan returned a value never written");
          }
        }
      },
      Explorer::Options{.max_executions = 60'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
}

// Atomicity (the distinguishing snapshot property): two writers each write
// their cell then scan; at least one must see the other's write. A mere
// regular collect could miss both ways; an atomic snapshot cannot.
TEST(SnapshotFromRegisters, NoMutualMissUnderAnySchedule) {
  const auto result = Explorer::explore(
      [](ScheduleDriver& driver) {
        Runtime rt;
        SnapshotFromRegisters<> snap(2, kBottom);
        std::vector<std::vector<Value>> views(2);
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) {
            snap.update(ctx, p, 1);
            views[static_cast<std::size_t>(p)] = snap.scan(ctx);
          });
        }
        rt.run(driver);
        const bool p0_sees_p1 = views[0][1] != kBottom;
        const bool p1_sees_p0 = views[1][0] != kBottom;
        if (!p0_sees_p1 && !p1_sees_p0) {
          throw SpecViolation("both scans missed the other's update");
        }
      },
      Explorer::Options{.max_executions = 200'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
}

// Scan-ordering atomicity: concurrent scans must be totally ordered — the
// views of two scans of monotone counters must be comparable (one
// pointwise-≤ the other). This fails for double-collect-free "collects" but
// must hold for linearizable snapshots.
TEST(SnapshotFromRegisters, ConcurrentScansAreComparable) {
  const auto result = Explorer::explore(
      [](ScheduleDriver& driver) {
        Runtime rt;
        SnapshotFromRegisters<> snap(2, 0);
        std::vector<std::vector<Value>> views(2);
        rt.add_process([&](Context& ctx) {
          snap.update(ctx, 0, 1);
          snap.update(ctx, 0, 2);
        });
        rt.add_process([&](Context& ctx) {
          snap.update(ctx, 1, 1);
        });
        for (int s = 0; s < 2; ++s) {
          rt.add_process([&, s](Context& ctx) {
            views[static_cast<std::size_t>(s)] = snap.scan(ctx);
          });
        }
        rt.run(driver);
        const auto leq = [](const std::vector<Value>& a,
                            const std::vector<Value>& b) {
          for (std::size_t i = 0; i < a.size(); ++i) {
            if (a[i] > b[i]) {
              return false;
            }
          }
          return true;
        };
        if (!leq(views[0], views[1]) && !leq(views[1], views[0])) {
          throw SpecViolation("concurrent scans incomparable");
        }
      },
      Explorer::Options{.max_executions = 120'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(SnapshotFromRegisters, WaitFreeUnderSingleWriterStarvation) {
  // The scanner terminates even while a writer keeps moving: the borrowed-
  // view path. Scripted schedule: scanner's collects repeatedly interrupted.
  Runtime rt;
  SnapshotFromRegisters<> snap(2, 0);
  std::vector<Value> view;
  rt.add_process([&](Context& ctx) {  // pid 0: busy writer
    for (int i = 1; i <= 6; ++i) {
      snap.update(ctx, 0, i);
    }
  });
  rt.add_process([&](Context& ctx) { view = snap.scan(ctx); });  // pid 1
  // Alternate single steps: writer, scanner, writer, scanner, ...
  std::vector<int> script;
  for (int i = 0; i < 200; ++i) {
    script.push_back(i % 2);
  }
  ScriptedDriver driver(script);
  const auto result = rt.run(driver);
  EXPECT_EQ(result.states[1], ProcState::kDone);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_GE(view[0], 0);
  EXPECT_LE(view[0], 6);
}

TEST(AtomicSnapshotAndRegisterSnapshotAgree, SameSequentialBehaviour) {
  Runtime rt;
  AtomicSnapshot<> atomic(3, kBottom);
  SnapshotFromRegisters<> built(3, kBottom);
  rt.add_process([&](Context& ctx) {
    atomic.update(ctx, 1, 7);
    built.update(ctx, 1, 7);
    EXPECT_EQ(atomic.scan(ctx), built.scan(ctx));
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

TEST(SnapshotFromRegisters, CompositePayloads) {
  Runtime rt;
  SnapshotFromRegisters<std::vector<Value>> snap(2, {});
  rt.add_process([&](Context& ctx) {
    snap.update(ctx, 0, {1, 2, 3});
    const auto view = snap.scan(ctx);
    EXPECT_EQ(view[0], (std::vector<Value>{1, 2, 3}));
    EXPECT_TRUE(view[1].empty());
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

}  // namespace
}  // namespace subc
