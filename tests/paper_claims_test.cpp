// Claim-by-claim machine checks: each numbered claim/lemma of the paper
// that talks about *executions* is asserted directly on simulated runs —
// timing relations on recorded histories, decision patterns under scripted
// schedules, and the §5 precedence graph G.
#include <gtest/gtest.h>

#include "subc/algorithms/wrn_anonymous.hpp"
#include "subc/algorithms/wrn_from_sse.hpp"
#include "subc/algorithms/wrn_set_consensus.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/core/tasks.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/history.hpp"

namespace subc {
namespace {

// --------------------------------------------------------------------------
// Algorithm 2 claims (Section 4.1)
// --------------------------------------------------------------------------

TEST(Claim7, ProcessDecidesOwnValueIfSuccessorHasNotInvoked) {
  // Claim 7: P_i decides its own proposal if P_{(i+1) mod k} has not
  // invoked WRN yet. Scripted: schedule P_2 to completion while P_0 (its
  // successor is P_3... pick i=1, successor 2): run P_1 before P_2 ever
  // steps.
  const int k = 4;
  Runtime rt;
  WrnSetConsensus algorithm(k);
  std::vector<Value> inputs{10, 20, 30, 40};
  for (int p = 0; p < k; ++p) {
    rt.add_process([&, p](Context& ctx) {
      ctx.decide(
          algorithm.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
    });
  }
  // P_1 first (successor P_2 silent), then the rest.
  ScriptedDriver driver({1, 0, 3, 2});
  const auto result = rt.run(driver);
  EXPECT_EQ(result.decisions[1], inputs[1]);  // Claim 7 for i = 1
  // Claim 5 for the last invoker (P_2): decides its successor P_3's value.
  EXPECT_EQ(result.decisions[2], inputs[3]);
}

TEST(Claims4And5, FirstDecidesOwnLastDecidesSuccessorEverySchedule) {
  // Claims 4 and 5, quantified over every schedule for k = 4.
  const int k = 4;
  const std::vector<Value> inputs{10, 20, 30, 40};
  const auto result = Explorer::explore([&](ScheduleDriver& driver) {
    Runtime rt;
    WrnSetConsensus algorithm(k);
    std::vector<int> order;
    for (int p = 0; p < k; ++p) {
      rt.add_process([&, p](Context& ctx) {
        const Value d =
            algorithm.propose(ctx, p, inputs[static_cast<std::size_t>(p)]);
        order.push_back(p);  // process-local code: records WRN order
        ctx.decide(d);
      });
    }
    const auto run = rt.run(driver);
    const int first = order.front();
    const int last = order.back();
    if (run.decisions[static_cast<std::size_t>(first)] !=
        inputs[static_cast<std::size_t>(first)]) {
      throw SpecViolation("Claim 4 violated");
    }
    if (run.decisions[static_cast<std::size_t>(last)] !=
        inputs[static_cast<std::size_t>((last + 1) % k)]) {
      throw SpecViolation("Claim 5 violated");
    }
  });
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

// --------------------------------------------------------------------------
// Algorithm 3 claims (Section 4.2)
// --------------------------------------------------------------------------

TEST(Claim16, SomeProcessAdoptsAnothersValueWhenAllKParticipate) {
  // Claim 16: with all k processes participating with distinct inputs,
  // some process decides the value of another — in every run.
  const int k = 3;
  const std::vector<Value> inputs{11, 22, 33};
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        AnonymousSetConsensus algorithm(k, k);
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(algorithm.propose(ctx, p, 800 + p,
                                         inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver, 10'000'000);
        bool someone_adopted = false;
        for (int p = 0; p < k; ++p) {
          if (run.decisions[static_cast<std::size_t>(p)] !=
              inputs[static_cast<std::size_t>(p)]) {
            someone_adopted = true;
          }
        }
        if (!someone_adopted) {
          throw SpecViolation("Claim 16 violated: everyone decided itself");
        }
      },
      400);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Corollary17, SomeProposalIsNeverDecided) {
  // (k−1)-agreement in its sharp form: some proposal is decided by nobody.
  const int k = 3;
  const std::vector<Value> inputs{11, 22, 33};
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        AnonymousSetConsensus algorithm(k, k);
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(algorithm.propose(ctx, p, 800 + p,
                                         inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver, 10'000'000);
        for (const Value candidate : inputs) {
          bool decided_by_someone = false;
          for (const Value d : run.decisions) {
            decided_by_someone = decided_by_someone || d == candidate;
          }
          if (!decided_by_someone) {
            return;  // found the undecided proposal
          }
        }
        throw SpecViolation("Corollary 17 violated: all proposals decided");
      },
      400);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

// --------------------------------------------------------------------------
// Section 5 lemmas on Algorithm 5 histories
// --------------------------------------------------------------------------

struct Alg5Run {
  History history;
  std::vector<Value> outputs;  // per index
};

Alg5Run run_alg5(ScheduleDriver& driver, int k) {
  Alg5Run out;
  out.outputs.assign(static_cast<std::size_t>(k), kBottom - 0);
  Runtime rt;
  WrnFromSse object(k);
  for (int p = 0; p < k; ++p) {
    rt.add_process([&, p, k](Context& ctx) {
      out.outputs[static_cast<std::size_t>(p)] =
          object.one_shot_wrn(ctx, p, 100 + p, &out.history);
    });
  }
  rt.run(driver);
  return out;
}

const HistoryEntry* entry_for_index(const Alg5Run& run, int index) {
  for (const auto& e : run.history.entries()) {
    if (e.op[0] == index) {
      return &e;
    }
  }
  return nullptr;
}

TEST(Lemmas25And26, TimingRelationsHoldOnEveryRecordedHistory) {
  // Lemma 25: w_i returns ⊥ ⇒ w_{(i+1) mod k} finishes after w_i starts.
  // Lemma 26: w_i returns v_{(i+1) mod k} ⇒ w_i finishes after
  //           w_{(i+1) mod k} starts.
  const int k = 3;
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        const Alg5Run run = run_alg5(driver, k);
        for (int i = 0; i < k; ++i) {
          const auto* wi = entry_for_index(run, i);
          const auto* wsucc = entry_for_index(run, (i + 1) % k);
          ASSERT_NE(wi, nullptr);
          ASSERT_NE(wsucc, nullptr);
          const Value output = run.outputs[static_cast<std::size_t>(i)];
          if (output == kBottom) {
            if (wsucc->responded_at < wi->invoked_at) {
              throw SpecViolation("Lemma 25 violated at i=" +
                                  std::to_string(i));
            }
          } else {
            if (wi->responded_at < wsucc->invoked_at) {
              throw SpecViolation("Lemma 26 violated at i=" +
                                  std::to_string(i));
            }
          }
        }
      },
      800);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Corollary28, PrecedenceGraphGIsAcyclic) {
  // G: edge w_i → w_{i+1} when w_i returned ⊥; edge w_{i+1} → w_i when w_i
  // returned v_{i+1}. Corollary 28: no directed cycles — equivalently for
  // this ring topology, not all edges point the same way around, i.e. at
  // least one ⊥ (Claim 23) AND at least one successor-adoption (Claim 24).
  const int k = 3;
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        const Alg5Run run = run_alg5(driver, k);
        int bottoms = 0;
        int adoptions = 0;
        for (int i = 0; i < k; ++i) {
          if (run.outputs[static_cast<std::size_t>(i)] == kBottom) {
            ++bottoms;
          } else {
            ++adoptions;
          }
        }
        if (bottoms == 0 || adoptions == 0) {
          throw SpecViolation("Corollary 28 violated: G has a length-k "
                              "cycle (" + std::to_string(bottoms) + " ⊥, " +
                              std::to_string(adoptions) + " adoptions)");
        }
      },
      800);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Corollary36, BottomReturnsExactlyMatchALinearLowerSet) {
  // Corollary 36: w_i returns ⊥ iff w_i ≼ w_{(i+1) mod k} in the
  // linearization — so walking the ring, the ⊥-returners are exactly the
  // operations that precede their successor. We verify the global
  // consequence: ordering operations by (any) legal linearization from the
  // checker, each w_i returns ⊥ iff it appears before w_{(i+1) mod k}.
  const int k = 3;
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        const Alg5Run run = run_alg5(driver, k);
        const auto lin =
            check_linearizable(OneShotWrnSpec{k}, run.history.entries());
        if (!lin.linearizable) {
          throw SpecViolation("history not linearizable");
        }
        // Position of each index in the linearization.
        std::vector<int> position(static_cast<std::size_t>(k), -1);
        for (std::size_t pos = 0; pos < lin.order.size(); ++pos) {
          const auto& e = run.history.entries()[lin.order[pos]];
          position[static_cast<std::size_t>(e.op[0])] =
              static_cast<int>(pos);
        }
        for (int i = 0; i < k; ++i) {
          const bool returned_bottom =
              run.outputs[static_cast<std::size_t>(i)] == kBottom;
          const bool before_successor =
              position[static_cast<std::size_t>(i)] <
              position[static_cast<std::size_t>((i + 1) % k)];
          if (returned_bottom != before_successor) {
            throw SpecViolation("Corollary 36 violated at i=" +
                                std::to_string(i));
          }
        }
      },
      800);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

}  // namespace
}  // namespace subc
