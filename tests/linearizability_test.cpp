// Tests for the Wing–Gong linearizability checker against the 1sWRN_k
// sequential spec and a simple register spec: accepted/rejected histories,
// pending-operation handling, real-time order.
#include "subc/checking/linearizability.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "subc/runtime/scheduler.hpp"
#include "subc/runtime/runtime.hpp"

#include "subc/objects/wrn.hpp"

namespace subc {
namespace {

/// A sequential MWMR register spec for checker tests.
/// op {0, v} = write v (response {}); op {1} = read (response {v}).
struct RegisterSpec {
  struct State {
    Value value = kBottom;
  };
  [[nodiscard]] State initial() const { return {}; }
  bool apply(State& s, const std::vector<Value>& op,
             std::vector<Value>& response) const {
    if (op[0] == 0) {
      s.value = op[1];
      response = {};
    } else {
      response = {s.value};
    }
    return true;
  }
  [[nodiscard]] std::string key(const State& s) const {
    return to_string(s.value);
  }
};

History make_history(
    const std::vector<std::tuple<int, std::vector<Value>, std::vector<Value>>>&
        sequential_ops) {
  History h;
  for (const auto& [pid, op, resp] : sequential_ops) {
    const auto handle = h.invoke(pid, op);
    h.respond(handle, resp);
  }
  return h;
}

TEST(Linearizability, AcceptsSequentialRegisterHistory) {
  const History h = make_history({
      {0, {0, 5}, {}},   // write 5
      {1, {1}, {5}},     // read 5
      {0, {0, 7}, {}},   // write 7
      {1, {1}, {7}},     // read 7
  });
  const auto r = check_linearizable(RegisterSpec{}, h.entries());
  EXPECT_TRUE(r.linearizable);
  EXPECT_EQ(r.order.size(), 4u);
}

TEST(Linearizability, RejectsStaleReadAfterWriteCompleted) {
  const History h = make_history({
      {0, {0, 5}, {}},  // write 5 completes
      {1, {1}, {kBottom}},  // then a read returns ⊥ — not linearizable
  });
  const auto r = check_linearizable(RegisterSpec{}, h.entries());
  EXPECT_FALSE(r.linearizable);
}

TEST(Linearizability, AcceptsOverlappingOpsInEitherOrder) {
  History h;
  const auto w = h.invoke(0, {0, 5});  // write 5 ...
  const auto rd = h.invoke(1, {1});    // ... read overlaps it
  h.respond(rd, {kBottom});            // read may linearize before the write
  h.respond(w, {});
  const auto r = check_linearizable(RegisterSpec{}, h.entries());
  EXPECT_TRUE(r.linearizable);
}

TEST(Linearizability, PendingOpsMayBeLinearizedOrDropped) {
  // A pending write whose value a completed read observed must be
  // linearized (its effect is visible).
  History h;
  h.invoke(0, {0, 9});  // write 9, never returns
  const auto rd = h.invoke(1, {1});
  h.respond(rd, {9});
  const auto r = check_linearizable(RegisterSpec{}, h.entries());
  EXPECT_TRUE(r.linearizable);
  EXPECT_EQ(r.order.size(), 2u);  // the pending write was linearized

  // A pending write whose value nobody observed may be dropped.
  History h2;
  h2.invoke(0, {0, 9});
  const auto rd2 = h2.invoke(1, {1});
  h2.respond(rd2, {kBottom});
  const auto r2 = check_linearizable(RegisterSpec{}, h2.entries());
  EXPECT_TRUE(r2.linearizable);
}

TEST(Linearizability, RespectsRealTimePrecedence) {
  // w(5) completes, then w(7) completes, then read returns 5: the reorder
  // needed is forbidden by real time.
  const History h = make_history({
      {0, {0, 5}, {}},
      {0, {0, 7}, {}},
      {1, {1}, {5}},
  });
  const auto r = check_linearizable(RegisterSpec{}, h.entries());
  EXPECT_FALSE(r.linearizable);
}

TEST(Linearizability, WrnSpecSequentialHistory) {
  const OneShotWrnSpec spec{3};
  const History h = make_history({
      {0, {0, 10}, {kBottom}},  // first op reads ⊥
      {2, {2, 30}, {10}},       // reads slot 0
      {1, {1, 20}, {30}},       // reads slot 2
  });
  const auto r = check_linearizable(spec, h.entries());
  EXPECT_TRUE(r.linearizable);
}

TEST(Linearizability, WrnSpecRejectsAllNonBottomCycle) {
  // The impossible execution Section 5 guards against: every invocation
  // returns its successor's value — no first linearized op exists.
  const OneShotWrnSpec spec{3};
  History h;
  std::vector<std::size_t> handles;
  for (int i = 0; i < 3; ++i) {
    handles.push_back(
        h.invoke(i, {static_cast<Value>(i), static_cast<Value>(100 + i)}));
  }
  for (int i = 0; i < 3; ++i) {
    h.respond(handles[static_cast<std::size_t>(i)],
              {static_cast<Value>(100 + ((i + 1) % 3))});
  }
  const auto r = check_linearizable(spec, h.entries());
  EXPECT_FALSE(r.linearizable);
}

TEST(Linearizability, WrnSpecRejectsIndexReuseAsCompletedOps) {
  const OneShotWrnSpec spec{3};
  const History h = make_history({
      {0, {0, 10}, {kBottom}},
      {1, {0, 11}, {kBottom}},  // same index used twice: no linearization
  });
  const auto r = check_linearizable(spec, h.entries());
  EXPECT_FALSE(r.linearizable);
}

TEST(Linearizability, SixtyFourOpsIsTheExactCapacityBoundary) {
  // 64 sequential writes+reads: exactly at the bitmask capacity, checked
  // normally (and linearizable — each read sees the preceding write).
  History h64;
  for (int i = 0; i < 32; ++i) {
    const auto w = h64.invoke(0, {0, i});
    h64.respond(w, {});
    const auto rd = h64.invoke(1, {1});
    h64.respond(rd, {i});
  }
  ASSERT_EQ(h64.entries().size(), 64u);
  const auto r64 = check_linearizable(RegisterSpec{}, h64.entries());
  EXPECT_TRUE(r64.linearizable);
  EXPECT_EQ(r64.order.size(), 64u);

  // 65 ops: beyond the representation, the checker must refuse loudly
  // (SimError) instead of returning a bogus "not linearizable" verdict that
  // would corrupt ∀-run claims built on top of it.
  History h65;
  for (int i = 0; i < 65; ++i) {
    const auto w = h65.invoke(0, {0, i});
    h65.respond(w, {});
  }
  EXPECT_THROW(check_linearizable(RegisterSpec{}, h65.entries()), SimError);
  EXPECT_THROW(require_linearizable(RegisterSpec{}, h65), SimError);
}

TEST(Linearizability, RequireHelperThrowsWithDump) {
  const History h = make_history({
      {0, {0, 5}, {}},
      {1, {1}, {kBottom}},
  });
  EXPECT_THROW(require_linearizable(RegisterSpec{}, h), SpecViolation);
}

// --------------------------------------------------------------------------
// The checker checked: brute-force cross-validation
// --------------------------------------------------------------------------

/// Reference implementation: try every permutation of all completed ops
/// (pending ops deliberately absent from the generated histories).
template <class Spec>
bool linearizable_bruteforce(const Spec& spec,
                             const std::vector<HistoryEntry>& h) {
  std::vector<std::size_t> order(h.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end());
  do {
    // Real-time order respected?
    bool ok = true;
    for (std::size_t a = 0; a < order.size() && ok; ++a) {
      for (std::size_t b = a + 1; b < order.size() && ok; ++b) {
        ok = !(h[order[b]].responded_at < h[order[a]].invoked_at);
      }
    }
    if (!ok) {
      continue;
    }
    auto state = spec.initial();
    std::vector<Value> response;
    for (const std::size_t i : order) {
      if (!spec.apply(state, h[i].op, response) ||
          response != h[i].response) {
        ok = false;
        break;
      }
    }
    if (ok) {
      return true;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return false;
}

TEST(Linearizability, CheckerAgreesWithBruteForceOnRandomHistories) {
  // Random complete 1sWRN histories — some generated from real runs (thus
  // linearizable), some corrupted (responses perturbed). Wing–Gong and the
  // permutation brute force must agree on every one.
  std::mt19937_64 rng(23);
  int linearizable_count = 0;
  int corrupted_rejections = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const int k = 3 + static_cast<int>(rng() % 2);
    // Produce a real concurrent run of the atomic object, recorded.
    Runtime rt;
    OneShotWrnObject object(k);
    History history;
    for (int p = 0; p < k; ++p) {
      rt.add_process([&, p](Context& ctx) {
        const auto handle = history.invoke(
            p, {static_cast<Value>(p), static_cast<Value>(100 + p)});
        const Value got = object.wrn(ctx, p, 100 + p);
        history.respond(handle, {got});
      });
    }
    RandomDriver driver(rng());
    rt.run(driver);

    std::vector<HistoryEntry> entries = history.entries();
    const bool corrupt = (rng() % 2) == 0;
    if (corrupt) {
      // Perturb one response to an arbitrary value.
      auto& victim = entries[rng() % entries.size()];
      victim.response = {static_cast<Value>(500 + rng() % 5)};
    }
    const OneShotWrnSpec spec{k};
    const bool fast = check_linearizable(spec, entries).linearizable;
    const bool slow = linearizable_bruteforce(spec, entries);
    ASSERT_EQ(fast, slow) << "trial " << trial << " corrupt=" << corrupt;
    linearizable_count += fast ? 1 : 0;
    corrupted_rejections += (corrupt && !fast) ? 1 : 0;
  }
  // Sanity: the sample exercised both outcomes.
  EXPECT_GT(linearizable_count, 0);
  EXPECT_GT(corrupted_rejections, 0);
}

TEST(History, DumpAndCompletedCount) {
  History h;
  const auto a = h.invoke(0, {0, 5});
  h.invoke(1, {1});
  h.respond(a, {});
  EXPECT_EQ(h.completed(), 1u);
  const std::string dump = h.dump();
  EXPECT_NE(dump.find("p0"), std::string::npos);
  EXPECT_NE(dump.find("pending"), std::string::npos);
  EXPECT_THROW(h.respond(a, {}), SimError);
  EXPECT_THROW(h.respond(99, {}), SimError);
}

}  // namespace
}  // namespace subc
