// Tests for the task validators (consensus, k-set consensus, election,
// renaming) — the assertion vocabulary of the whole suite, so its own
// correctness is checked carefully here.
#include "subc/core/tasks.hpp"

#include <gtest/gtest.h>

namespace subc {
namespace {

TEST(Tasks, DistinctDecisionsIgnoresBottom) {
  const std::vector<Value> decisions{1, 2, kBottom, 2, 1};
  EXPECT_EQ(distinct_decisions(decisions), 2);
  EXPECT_EQ(distinct_decisions(std::vector<Value>{}), 0);
  EXPECT_EQ(distinct_decisions(std::vector<Value>{kBottom}), 0);
}

TEST(Tasks, ValidityAcceptsProposedValues) {
  const std::vector<Value> inputs{10, 20, 30};
  EXPECT_NO_THROW(check_validity(inputs, std::vector<Value>{30, 10, kBottom}));
}

TEST(Tasks, ValidityRejectsInventedValue) {
  const std::vector<Value> inputs{10, 20};
  EXPECT_THROW(check_validity(inputs, std::vector<Value>{10, 99}),
               SpecViolation);
}

TEST(Tasks, KAgreementBoundary) {
  const std::vector<Value> decisions{1, 2, 3};
  EXPECT_NO_THROW(check_k_agreement(decisions, 3));
  EXPECT_THROW(check_k_agreement(decisions, 2), SpecViolation);
  EXPECT_NO_THROW(check_agreement(std::vector<Value>{5, 5, kBottom, 5}));
  EXPECT_THROW(check_agreement(std::vector<Value>{5, 6}), SpecViolation);
}

TEST(Tasks, ElectionValidity) {
  const std::vector<int> participants{0, 2};
  EXPECT_NO_THROW(
      check_election_validity(std::vector<Value>{2, kBottom, 0}, participants));
  EXPECT_THROW(
      check_election_validity(std::vector<Value>{1}, participants),
      SpecViolation);
}

TEST(Tasks, SelfElection) {
  // p0 elects p2, p2 elects itself: fine.
  EXPECT_NO_THROW(check_self_election(std::vector<Value>{2, 1, 2}));
  // p0 elects p1 but p1 elected p0: violation.
  EXPECT_THROW(check_self_election(std::vector<Value>{1, 0}), SpecViolation);
  // Electing an out-of-range id is a violation.
  EXPECT_THROW(check_self_election(std::vector<Value>{5}), SpecViolation);
}

TEST(Tasks, RenamingValidator) {
  EXPECT_NO_THROW(check_renaming(std::vector<Value>{0, 2, 1}, 5));
  EXPECT_THROW(check_renaming(std::vector<Value>{0, 0}, 5), SpecViolation);
  EXPECT_THROW(check_renaming(std::vector<Value>{5}, 5), SpecViolation);
  EXPECT_THROW(check_renaming(std::vector<Value>{-1}, 5), SpecViolation);
  EXPECT_NO_THROW(check_renaming(std::vector<Value>{kBottom, 1}, 5));
}

TEST(Tasks, FormatDecisionsShowsBottom) {
  const std::string s = format_decisions(std::vector<Value>{1, kBottom});
  EXPECT_NE(s.find("⊥"), std::string::npos);
  EXPECT_NE(s.find('1'), std::string::npos);
}

TEST(Tasks, RunResultValidators) {
  Runtime::RunResult result;
  result.states = {ProcState::kDone, ProcState::kCrashed};
  result.decisions = {4, kBottom};
  EXPECT_NO_THROW(check_decided_if_done(result));
  // All-done validator requires every process done and decided.
  EXPECT_THROW(check_all_done_and_decided(result), SpecViolation);

  result.states = {ProcState::kDone, ProcState::kDone};
  EXPECT_THROW(check_all_done_and_decided(result), SpecViolation);
  result.decisions = {4, 4};
  EXPECT_NO_THROW(check_all_done_and_decided(result));

  // Done without deciding is flagged.
  result.decisions = {4, kBottom};
  EXPECT_THROW(check_decided_if_done(result), SpecViolation);
}

TEST(Tasks, SetConsensusCompositeValidator) {
  Runtime::RunResult result;
  result.states = {ProcState::kDone, ProcState::kDone, ProcState::kDone};
  result.decisions = {10, 10, 20};
  const std::vector<Value> inputs{10, 20, 30};
  EXPECT_NO_THROW(check_set_consensus(result, inputs, 2));
  EXPECT_THROW(check_set_consensus(result, inputs, 1), SpecViolation);
  result.decisions = {10, 10, 99};
  EXPECT_THROW(check_set_consensus(result, inputs, 2), SpecViolation);
}

}  // namespace
}  // namespace subc
