// Tests for wait-free (2k−1)-renaming: distinct names within {0..2k−2} for
// at most k participants, under exhaustive (small) and random schedules,
// with both snapshot backings.
#include "subc/algorithms/renaming.hpp"

#include <gtest/gtest.h>

#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

struct Case {
  int participants;
  bool register_snapshot;
};

class RenamingSweep : public ::testing::TestWithParam<Case> {};

TEST_P(RenamingSweep, UniqueNamesInRange) {
  const auto [k, reg_snap] = GetParam();
  const bool exhaustive = (k <= 2 && !reg_snap) || (k == 3 && !reg_snap);
  const ExecutionBody body = [k, reg_snap =
                                     reg_snap](ScheduleDriver& driver) {
    Runtime rt;
    SnapshotRenaming renaming(k, reg_snap);
    std::vector<Value> names(static_cast<std::size_t>(k), kBottom);
    for (int p = 0; p < k; ++p) {
      rt.add_process([&, p](Context& ctx) {
        // Original ids deliberately from a sparse space.
        names[static_cast<std::size_t>(p)] = renaming.rename(
            ctx, p, /*id=*/1000 + 37 * p);
      });
    }
    const auto result = rt.run(driver);
    for (int p = 0; p < k; ++p) {
      if (result.states[static_cast<std::size_t>(p)] != ProcState::kDone) {
        throw SpecViolation("renaming did not terminate");
      }
    }
    check_renaming(names, 2 * k - 1);
  };
  if (exhaustive) {
    const auto result = Explorer::explore(
        body, Explorer::Options{.max_executions = 60'000});
    EXPECT_TRUE(result.ok()) << *result.violation;
  } else {
    const auto result = RandomSweep::run(body, 300);
    EXPECT_TRUE(result.ok()) << *result.violation;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RenamingSweep,
    ::testing::Values(Case{2, false}, Case{3, false}, Case{4, false},
                      Case{5, false}, Case{2, true}, Case{3, true},
                      Case{4, true}));

TEST(Renaming, SubsetParticipationStaysInSubsetRange) {
  // Only 2 of 5 potential processes participate: names must fit in
  // {0..2·2−2} = {0,1,2}.
  const auto result = RandomSweep::run(
      [](ScheduleDriver& driver) {
        Runtime rt;
        SnapshotRenaming renaming(5);
        std::vector<Value> names(2, kBottom);
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) {
            names[static_cast<std::size_t>(p)] =
                renaming.rename(ctx, /*slot=*/p + 2, /*id=*/500 - p);
          });
        }
        rt.run(driver);
        check_renaming(names, 3);
      },
      300);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Renaming, SoloProcessGetsNameZero) {
  Runtime rt;
  SnapshotRenaming renaming(4);
  Value name = kBottom;
  rt.add_process([&](Context& ctx) { name = renaming.rename(ctx, 0, 99); });
  RoundRobinDriver driver;
  rt.run(driver);
  EXPECT_EQ(name, 0);
}

TEST(Renaming, OrderAdaptiveRanksBreakTies) {
  // Sequential arrivals: later processes see earlier proposals and shift.
  Runtime rt;
  SnapshotRenaming renaming(3);
  std::vector<Value> names(3, kBottom);
  for (int p = 0; p < 3; ++p) {
    rt.add_process([&, p](Context& ctx) {
      names[static_cast<std::size_t>(p)] = renaming.rename(ctx, p, 10 + p);
    });
  }
  RoundRobinDriver driver;
  rt.run(driver);
  check_renaming(names, 5);
}

TEST(Renaming, RejectsBottomId) {
  Runtime rt;
  SnapshotRenaming renaming(2);
  rt.add_process([&](Context& ctx) {
    EXPECT_THROW(renaming.rename(ctx, 0, kBottom), SimError);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

}  // namespace
}  // namespace subc
