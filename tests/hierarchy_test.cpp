// Tests for the set-consensus implementability calculus: Theorem 41's
// partition bound (closed form vs dynamic program), consensus numbers,
// Corollary 42's 1sWRN hierarchy, and the O_{n,k} separation arithmetic of
// the 2016 paper.
#include "subc/core/hierarchy.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "subc/runtime/value.hpp"

namespace subc {
namespace {

TEST(Hierarchy, PartitionAgreementClosedFormMatchesDp) {
  for (int m = 2; m <= 12; ++m) {
    for (int j = 1; j < m; ++j) {
      for (int n = 1; n <= 30; ++n) {
        EXPECT_EQ(sc_partition_agreement(n, m, j),
                  sc_partition_agreement_dp(n, m, j))
            << "n=" << n << " m=" << m << " j=" << j;
      }
    }
  }
}

TEST(Hierarchy, PartitionAgreementKnownValues) {
  // n processes over (m,j) objects.
  EXPECT_EQ(sc_partition_agreement(3, 3, 2), 2);    // one object
  EXPECT_EQ(sc_partition_agreement(6, 3, 2), 4);    // two full groups
  EXPECT_EQ(sc_partition_agreement(7, 3, 2), 5);    // remainder of 1
  EXPECT_EQ(sc_partition_agreement(8, 3, 2), 6);    // remainder of 2
  EXPECT_EQ(sc_partition_agreement(2, 5, 2), 2);    // fewer procs than j
  EXPECT_EQ(sc_partition_agreement(5, 6, 3), 3);    // n < m
  // n-consensus objects: (n,1); k-set-consensus power for N procs is ⌈N/n⌉.
  EXPECT_EQ(sc_partition_agreement(7, 2, 1), 4);
  EXPECT_EQ(sc_partition_agreement(6, 2, 1), 3);
}

TEST(Hierarchy, ImplementableMatchesTheorem41Statement) {
  // (12, 8) from (3, 2): 8 >= 2*4 + 0 ✓ (the paper's Section 7 example).
  EXPECT_TRUE(sc_implementable(12, 8, 3, 2));
  // (12, 7) from (3, 2): 7 < 8 ✗.
  EXPECT_FALSE(sc_implementable(12, 7, 3, 2));
  // Trivial: k >= n always implementable.
  EXPECT_TRUE(sc_implementable(3, 3, 100, 99));
  // Consensus from weaker consensus: (3,1) from (2,1) needs 1 >= 1*1+1 ✗.
  EXPECT_FALSE(sc_implementable(3, 1, 2, 1));
  EXPECT_TRUE(sc_implementable(2, 1, 3, 1));
}

TEST(Hierarchy, ConsensusNumbers) {
  EXPECT_EQ(sc_consensus_number(3, 2), 1);   // (3,2)-SC: level 1
  EXPECT_EQ(sc_consensus_number(5, 2), 2);
  EXPECT_EQ(sc_consensus_number(2, 1), 2);   // 2-consensus
  EXPECT_EQ(sc_consensus_number(12, 4), 3);
  // The WRN_k equivalence class (k, k−1): always level 1 for k >= 2... and
  // ⌊k/(k−1)⌋ = 1 exactly when k >= 3; k=2 gives 2 (SWAP!).
  EXPECT_EQ(sc_consensus_number(2, 1), 2);
  for (int k = 3; k <= 10; ++k) {
    EXPECT_EQ(sc_consensus_number(k, k - 1), 1) << k;
  }
}

TEST(Hierarchy, Corollary42PairwiseStrictHierarchy) {
  for (int k = 3; k <= 10; ++k) {
    for (int k_prime = k + 1; k_prime <= 10; ++k_prime) {
      EXPECT_NO_THROW(check_wrn_hierarchy_pair(k, k_prime))
          << k << " vs " << k_prime;
      EXPECT_TRUE(wrn_implementable_from(k_prime, k));
      EXPECT_FALSE(wrn_implementable_from(k, k_prime));
    }
  }
}

TEST(Hierarchy, WrnSelfImplementable) {
  for (int k = 3; k <= 8; ++k) {
    EXPECT_TRUE(wrn_implementable_from(k, k));
  }
}

TEST(Hierarchy, MatrixFormatterShowsTriangle) {
  const std::string matrix = format_wrn_matrix(3, 6);
  EXPECT_NE(matrix.find("k=3"), std::string::npos);
  EXPECT_NE(matrix.find("✓"), std::string::npos);
  EXPECT_NE(matrix.find("·"), std::string::npos);
}

TEST(OnkCalculus, ComponentParametersMatchDesign) {
  // m_i = (n+1)(i+1) − 1, j_i = i+1; consensus number ⌊m_i/j_i⌋ = n.
  for (int n = 1; n <= 6; ++n) {
    for (int i = 0; i <= 6; ++i) {
      const int m = onk_component_capacity(n, i);
      const int j = onk_component_agreement(i);
      EXPECT_EQ(m, (n + 1) * (i + 1) - 1);
      EXPECT_EQ(j, i + 1);
      if (i >= 1) {
        EXPECT_EQ(sc_consensus_number(m, j), n) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(OnkCalculus, BestAgreementMatchesBruteForce) {
  for (int n = 1; n <= 3; ++n) {
    for (int k = 1; k <= 3; ++k) {
      for (int procs = 1; procs <= 14; ++procs) {
        EXPECT_EQ(onk_best_agreement(n, k, procs),
                  onk_best_agreement_bruteforce(n, k, procs))
            << "n=" << n << " k=" << k << " procs=" << procs;
      }
    }
  }
}

TEST(OnkCalculus, BestPartitionCoversAllProcessesAtOptimalCost) {
  for (int n = 2; n <= 4; ++n) {
    for (int k = 1; k <= 4; ++k) {
      for (int procs = 1; procs <= 25; procs += 3) {
        const auto groups = onk_best_partition(n, k, procs);
        int covered = 0;
        int cost = 0;
        for (const auto& [component, size] : groups) {
          ASSERT_GE(component, 0);
          ASSERT_LT(component, k);
          ASSERT_LE(size, onk_component_capacity(n, component));
          covered += size;
          cost += onk_component_agreement(component);
        }
        EXPECT_EQ(covered, procs);
        EXPECT_EQ(cost, onk_best_agreement(n, k, procs));
      }
    }
  }
}

TEST(OnkSeparationArithmetic, MatchesThe2016Statement) {
  // At N_k = nk+n+k: O_{n,k+1} achieves k+1, O_{n,k} only k+2 — for every
  // n ≥ 2, k ≥ 1 in a broad grid. This is the 2016 hierarchy's separation
  // at exactly the system size the paper states.
  for (int n = 2; n <= 8; ++n) {
    for (int k = 1; k <= 8; ++k) {
      const OnkSeparation sep = onk_separation(n, k);
      EXPECT_EQ(sep.system_size, n * k + n + k);
      EXPECT_EQ(sep.agreement_with_k1, k + 1) << "n=" << n << " k=" << k;
      EXPECT_EQ(sep.agreement_with_k, k + 2) << "n=" << n << " k=" << k;
      EXPECT_TRUE(sep.separated());
    }
  }
}

TEST(OnkSeparationArithmetic, MonotoneInK) {
  // O_{n,k'} dominates O_{n,k} for k' > k at every system size (component
  // superset): best agreement never worsens.
  for (int n = 2; n <= 4; ++n) {
    for (int procs = 1; procs <= 30; ++procs) {
      for (int k = 1; k <= 5; ++k) {
        EXPECT_LE(onk_best_agreement(n, k + 1, procs),
                  onk_best_agreement(n, k, procs));
      }
    }
  }
}

TEST(PowerProfiles, KnownValuesAndOrderings) {
  const int max_procs = 12;
  const auto regs = profile_registers(max_procs);
  const auto wrn3 = profile_wrn(3, max_procs);
  const auto cons2 = profile_consensus(2, max_procs);
  const auto onk22 = profile_onk(2, 2, max_procs);
  const auto cas = profile_cas(max_procs);

  for (int procs = 1; procs <= max_procs; ++procs) {
    const auto at = [procs](const ObjectClassProfile& profile) {
      return profile.best_agreement[static_cast<std::size_t>(procs - 1)];
    };
    // Registers: no agreement help.
    EXPECT_EQ(at(regs), procs);
    // 1sWRN_3 = (3,2)-SC partition bound.
    EXPECT_EQ(at(wrn3),
              std::min(procs, sc_partition_agreement(procs, 3, 2)));
    // Chain: registers ≽ 1sWRN_3 ≽ 2-consensus ≽ O_{2,2} ≽ CAS.
    EXPECT_GE(at(regs), at(wrn3));
    EXPECT_GE(at(wrn3), at(cons2));
    EXPECT_GE(at(cons2), at(onk22));
    EXPECT_GE(at(onk22), at(cas));
    EXPECT_EQ(at(cas), 1);
  }
  // Strictness witnesses: 1sWRN_3 helps at N=3 (2 < 3) but not at N=2;
  // 2-consensus helps at N=2; O_{2,2} beats 2-consensus at N=5 (=N_1):
  // ⌈5/2⌉ = 3 vs best 2 via the (5,2) component C_1.
  EXPECT_EQ(wrn3.best_agreement[2], 2);
  EXPECT_EQ(wrn3.best_agreement[1], 2);
  EXPECT_EQ(cons2.best_agreement[1], 1);
  EXPECT_EQ(cons2.best_agreement[4], 3);
  EXPECT_EQ(onk22.best_agreement[4], 2);
}

TEST(PowerProfiles, SetConsensusProfileMatchesCalculus) {
  const auto sc = profile_set_consensus(5, 2, 15);
  EXPECT_EQ(sc.name, "(5,2)-SC");
  for (int procs = 1; procs <= 15; ++procs) {
    EXPECT_EQ(sc.best_agreement[static_cast<std::size_t>(procs - 1)],
              std::min(procs, sc_partition_agreement(procs, 5, 2)));
  }
}

TEST(PowerProfiles, ParameterValidation) {
  EXPECT_THROW(profile_wrn(2, 5), SimError);
  EXPECT_THROW(profile_consensus(0, 5), SimError);
  EXPECT_THROW(profile_set_consensus(2, 2, 5), SimError);
}

TEST(Hierarchy, ParameterValidation) {
  EXPECT_THROW(sc_partition_agreement(0, 3, 2), SimError);
  EXPECT_THROW(sc_partition_agreement(3, 2, 2), SimError);
  EXPECT_THROW(sc_partition_agreement(3, 2, 0), SimError);
  EXPECT_THROW(wrn_implementable_from(2, 3), SimError);
  EXPECT_THROW(check_wrn_hierarchy_pair(4, 4), SimError);
  EXPECT_THROW(onk_best_agreement(0, 1, 1), SimError);
  EXPECT_THROW(onk_separation(2, 0), SimError);
}

}  // namespace
}  // namespace subc
