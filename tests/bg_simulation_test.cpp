// Tests for the Borowsky–Gafni simulation: consistent simulated executions
// across simulators, k-set-consensus transfer, crash resilience up to k−1
// failures, and the blocking behaviour beyond.
#include "subc/algorithms/bg_simulation.hpp"

#include <gtest/gtest.h>

#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

TEST(BgSimulation, SoloSimulatorCompletesAndDecidesOwnInput) {
  Runtime rt;
  BgSimulation bg(/*simulators=*/1, /*n=*/4, /*k=*/2);
  Value decision = kBottom;
  rt.add_process(
      [&](Context& ctx) { decision = bg.run_simulator(ctx, 0, 42); });
  RoundRobinDriver driver;
  rt.run(driver, 10'000'000);
  // The only simulator sponsors every simulated input with 42.
  EXPECT_EQ(decision, 42);
}

TEST(BgSimulation, TransfersKSetConsensusUnderRandomSchedules) {
  // m simulators, distinct inputs: outputs valid and ≤ k distinct.
  struct Case {
    int m;
    int n;
    int k;
  };
  for (const auto [m, n, k] :
       {Case{3, 5, 2}, Case{3, 6, 2}, Case{4, 6, 3}, Case{2, 4, 1}}) {
    std::vector<Value> inputs;
    for (int s = 0; s < m; ++s) {
      inputs.push_back(100 + 7 * s);
    }
    const auto result = RandomSweep::run(
        [&, m = m, n = n, k = k](ScheduleDriver& driver) {
          Runtime rt;
          BgSimulation bg(m, n, k);
          for (int s = 0; s < m; ++s) {
            rt.add_process([&, s](Context& ctx) {
              ctx.decide(bg.run_simulator(
                  ctx, s, inputs[static_cast<std::size_t>(s)]));
            });
          }
          const auto run = rt.run(driver, 10'000'000);
          check_all_done_and_decided(run);
          check_set_consensus(run, inputs, k);
        },
        300);
    EXPECT_TRUE(result.ok())
        << "m=" << m << " n=" << n << " k=" << k << ": " << *result.violation;
  }
}

TEST(BgSimulation, AllSimulatorsObserveTheSameExecution) {
  // The defining BG property: agreed inputs, agreed views (per round) and
  // decisions match across simulators wherever both observed them.
  const int m = 3;
  const int n = 5;
  const int k = 2;
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        BgSimulation bg(m, n, k);
        for (int s = 0; s < m; ++s) {
          rt.add_process([&, s](Context& ctx) {
            ctx.decide(bg.run_simulator(ctx, s, 10 + s));
          });
        }
        rt.run(driver, 10'000'000);
        for (int a = 0; a < m; ++a) {
          for (int b = a + 1; b < m; ++b) {
            const auto& pa = bg.observed(a);
            const auto& pb = bg.observed(b);
            for (int j = 0; j < n; ++j) {
              const auto& ja = pa[static_cast<std::size_t>(j)];
              const auto& jb = pb[static_cast<std::size_t>(j)];
              if (ja.input != kBottom && jb.input != kBottom &&
                  ja.input != jb.input) {
                throw SpecViolation("simulators disagree on an input");
              }
              const std::size_t rounds =
                  std::min(ja.views.size(), jb.views.size());
              for (std::size_t r = 0; r < rounds; ++r) {
                if (ja.views[r] != jb.views[r]) {
                  throw SpecViolation("simulators disagree on a view");
                }
              }
              if (ja.decision != kBottom && jb.decision != kBottom &&
                  ja.decision != jb.decision) {
                throw SpecViolation("simulators disagree on a decision");
              }
            }
          }
        }
      },
      300);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(BgSimulation, SimulatedViewsAreMonotoneAndContainQuorumAtDecision) {
  const auto result = RandomSweep::run(
      [](ScheduleDriver& driver) {
        Runtime rt;
        BgSimulation bg(3, 5, 2);
        for (int s = 0; s < 3; ++s) {
          rt.add_process([&, s](Context& ctx) {
            ctx.decide(bg.run_simulator(ctx, s, 10 + s));
          });
        }
        rt.run(driver, 10'000'000);
        for (int s = 0; s < 3; ++s) {
          for (const auto& proc : bg.observed(s)) {
            // Views grow monotonically (set containment on non-⊥ cells).
            for (std::size_t r = 1; r < proc.views.size(); ++r) {
              for (std::size_t c = 0; c < proc.views[r].size(); ++c) {
                if (proc.views[r - 1][c] != kBottom &&
                    proc.views[r][c] != proc.views[r - 1][c]) {
                  throw SpecViolation("simulated views not monotone");
                }
              }
            }
            if (proc.decision != kBottom) {
              const auto& last = proc.views.back();
              int visible = 0;
              Value min_seen = kBottom;
              for (const Value v : last) {
                if (v != kBottom) {
                  ++visible;
                  min_seen = min_seen == kBottom ? v : std::min(min_seen, v);
                }
              }
              if (visible < bg.quorum() || proc.decision != min_seen) {
                throw SpecViolation("decision does not match T3's rule");
              }
            }
          }
        }
      },
      300);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(BgSimulation, ToleratesUpToKMinus1CrashedSimulators) {
  // Crash f = k−1 simulators at arbitrary early points: survivors still
  // decide, outputs still valid and ≤ k distinct.
  const int m = 4;
  const int n = 6;
  const int k = 3;
  const std::vector<Value> inputs{10, 20, 30, 40};
  for (int victim1 = 0; victim1 < m; ++victim1) {
    for (int steps1 = 0; steps1 <= 4; steps1 += 2) {
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Runtime rt;
        BgSimulation bg(m, n, k);
        for (int s = 0; s < m; ++s) {
          rt.add_process([&, s](Context& ctx) {
            ctx.decide(bg.run_simulator(
                ctx, s, inputs[static_cast<std::size_t>(s)]));
          });
        }
        // Crash two victims (k−1 = 2): victim1 after steps1 own steps,
        // victim2 immediately.
        const int victim2 = (victim1 + 1) % m;
        struct Driver final : ScheduleDriver {
          Runtime* rt;
          RandomDriver inner;
          int victim1, steps1, victim2;
          bool crashed1 = false, crashed2 = false;
          Driver(Runtime* r, std::uint64_t seed, int v1, int s1, int v2)
              : rt(r), inner(seed), victim1(v1), steps1(s1), victim2(v2) {}
          std::size_t pick(std::span<const int> enabled,
                           std::span<const Access> /*footprints*/ = {})
              override {
            if (!crashed2) {
              rt->crash(victim2);
              crashed2 = true;
            }
            if (!crashed1 && rt->steps_of(victim1) >= steps1) {
              rt->crash(victim1);
              crashed1 = true;
            }
            std::vector<std::size_t> candidates;
            for (std::size_t i = 0; i < enabled.size(); ++i) {
              if (enabled[i] != victim1 && enabled[i] != victim2) {
                candidates.push_back(i);
              }
            }
            if (candidates.empty()) {
              return 0;  // kernel re-checks states and skips crashed picks
            }
            return candidates[inner.choose(
                static_cast<std::uint32_t>(candidates.size()))];
          }
          std::uint32_t choose(std::uint32_t arity) override {
            return inner.choose(arity);
          }
        };
        // NOTE: victim1 == victim2 cannot happen ((v+1) mod m != v for m>1).
        Driver driver(&rt, seed, victim1, steps1, victim2);
        const auto result = rt.run(driver, 10'000'000);
        check_decided_if_done(result);
        check_validity(inputs, result.decisions);
        check_k_agreement(result.decisions, k);
        for (int s = 0; s < m; ++s) {
          if (s != victim1 && s != victim2) {
            ASSERT_EQ(result.states[static_cast<std::size_t>(s)],
                      ProcState::kDone)
                << "survivor " << s << " stalled (victims " << victim1 << ","
                << victim2 << " seed " << seed << ")";
          }
        }
      }
    }
  }
}

TEST(BgSimulation, ParameterValidation) {
  EXPECT_THROW(BgSimulation(0, 3, 1), SimError);
  EXPECT_THROW(BgSimulation(2, 3, 0), SimError);
  EXPECT_THROW(BgSimulation(2, 3, 4), SimError);
  Runtime rt;
  BgSimulation bg(2, 3, 1);
  rt.add_process([&](Context& ctx) {
    EXPECT_THROW(bg.run_simulator(ctx, 5, 1), SimError);
    EXPECT_THROW(bg.run_simulator(ctx, 0, kBottom), SimError);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

}  // namespace
}  // namespace subc
