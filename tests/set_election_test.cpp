// Tests for the election constructions: k-set election from set-consensus
// objects, (k,k−1)-set election from 1sWRN_k (Algorithm 2 with ids), and
// the equivalence loop with Algorithm 5.
#include "subc/algorithms/set_election.hpp"

#include <gtest/gtest.h>

#include "subc/core/tasks.hpp"
#include "subc/objects/election_object.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

TEST(SetElectionFromSc, ElectsAtMostKParticipants) {
  const auto result = Explorer::explore(
      [](ScheduleDriver& driver) {
        Runtime rt;
        SetElectionFromSc election(3, 2);
        std::vector<int> participants{0, 1, 2};
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&](Context& ctx) { ctx.decide(election.elect(ctx)); });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_election_validity(run.decisions, participants);
        check_k_agreement(run.decisions, 2);
      },
      Explorer::Options{.max_executions = 400'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

class ElectionFromWrnSweep : public ::testing::TestWithParam<int> {};

TEST_P(ElectionFromWrnSweep, KMinus1SetElectionFromWrn) {
  // Theorem 2's forward direction in election form: 1sWRN_k solves
  // (k,k−1)-set election.
  const int k = GetParam();
  const ExecutionBody body = [k](ScheduleDriver& driver) {
    Runtime rt;
    ElectionFromWrn election(k);
    std::vector<int> participants;
    for (int p = 0; p < k; ++p) {
      participants.push_back(p);
      rt.add_process(
          [&, p](Context& ctx) { ctx.decide(election.elect(ctx, p)); });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_election_validity(run.decisions, participants);
    check_k_agreement(run.decisions, k - 1);
  };
  if (k <= 6) {
    const auto r = Explorer::explore(body);
    EXPECT_TRUE(r.ok()) << *r.violation;
    EXPECT_TRUE(r.complete);
  } else {
    const auto r = RandomSweep::run(body, 1500);
    EXPECT_TRUE(r.ok()) << *r.violation;
  }
}

INSTANTIATE_TEST_SUITE_P(AllK, ElectionFromWrnSweep,
                         ::testing::Values(3, 4, 5, 7));

TEST(ElectionFromWrn, NotNecessarilySelfElecting) {
  // Plain (k,k−1)-set election from WRN is *not* strong: some schedule
  // elects a pid that did not elect itself. (This is why Algorithm 5 needs
  // the strong variant — provided by StrongSetElectionObject.) We confirm
  // the weaker guarantee is genuinely weaker by finding such a schedule.
  bool found_non_self = false;
  const auto result = Explorer::explore([&](ScheduleDriver& driver) {
    Runtime rt;
    ElectionFromWrn election(3);
    for (int p = 0; p < 3; ++p) {
      rt.add_process(
          [&, p](Context& ctx) { ctx.decide(election.elect(ctx, p)); });
    }
    const auto run = rt.run(driver);
    try {
      check_self_election(run.decisions);
    } catch (const SpecViolation&) {
      found_non_self = true;
    }
  });
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(found_non_self);
}

TEST(EquivalenceLoop, SetConsensusFromElectionFromWrn) {
  // The [3] equivalence composed with Theorem 2: 1sWRN_k → (k,k−1)-set
  // election → (k,k−1)-set consensus. Exhaustive for k = 3.
  const int k = 3;
  const std::vector<Value> inputs{70, 80, 90};
  const auto result = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        ElectionFromWrn election(k);
        SetConsensusFromElection task(
            k, [&election](Context& ctx, int pid) {
              return election.elect(ctx, pid);
            });
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(
                task.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_set_consensus(run, inputs, k - 1);
      },
      Explorer::Options{.max_executions = 400'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(EquivalenceLoop, SetConsensusFromAtomicElectionObject) {
  // Same conversion over the nondeterministic strong-set-election object:
  // (n,k)-set consensus with all adversary behaviours enumerated.
  const std::vector<Value> inputs{5, 6, 7};
  const auto result = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        StrongSetElectionObject sse(3, 2);
        SetConsensusFromElection task(
            3, [&sse](Context& ctx, int pid) {
              return sse.invoke(ctx, static_cast<Value>(pid));
            });
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(
                task.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_set_consensus(run, inputs, 2);
      },
      Explorer::Options{.max_executions = 400'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(SetElectionFromSc, SoloElectorElectsItself) {
  Runtime rt;
  SetElectionFromSc election(3, 2);
  Value elected = kBottom;
  rt.add_process([&](Context& ctx) { elected = election.elect(ctx); });
  RoundRobinDriver driver;
  rt.run(driver);
  EXPECT_EQ(elected, 0);  // pid 0, first (and only) proposal wins
}

}  // namespace
}  // namespace subc
