// Tests for safe agreement (the BG-simulation engine): agreement, validity,
// wait-freedom of propose, the blocking condition, and exhaustive checks.
#include "subc/algorithms/safe_agreement.hpp"

#include <gtest/gtest.h>

#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

TEST(SafeAgreement, SoloProposerResolvesOwnValue) {
  Runtime rt;
  SafeAgreement sa(3);
  rt.add_process([&](Context& ctx) {
    sa.propose(ctx, 0, 42);
    EXPECT_EQ(sa.await(ctx), 42);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

TEST(SafeAgreement, AgreementAndValidityUnderAllSchedules) {
  // 3 proposers, each followed by a single resolve probe: every non-⊥
  // probe must return the same proposed value — exhaustively. (A spinning
  // await cannot be explored exhaustively: the DFS legitimately finds the
  // starvation schedule where the awaiter runs alone forever, which is
  // exactly safe agreement's blocking condition.)
  const auto result = Explorer::explore(
      [](ScheduleDriver& driver) {
        Runtime rt;
        SafeAgreement sa(3);
        std::vector<Value> resolved(3, kBottom);
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&, p](Context& ctx) {
            sa.propose(ctx, p, 10 + p);
            resolved[static_cast<std::size_t>(p)] = sa.resolve(ctx);
          });
        }
        rt.run(driver);
        Value agreed = kBottom;
        for (int p = 0; p < 3; ++p) {
          const Value v = resolved[static_cast<std::size_t>(p)];
          if (v == kBottom) {
            continue;
          }
          if (v < 10 || v > 12) {
            throw SpecViolation("resolved a never-proposed value");
          }
          if (agreed == kBottom) {
            agreed = v;
          } else if (v != agreed) {
            throw SpecViolation("safe agreement disagreement");
          }
        }
      },
      Explorer::Options{.max_executions = 500'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(SafeAgreement, AwaitTerminatesUnderRandomSchedules) {
  // With a fair-ish (random) adversary and no crashes, await terminates and
  // everyone agrees on a proposed value.
  const auto result = RandomSweep::run(
      [](ScheduleDriver& driver) {
        Runtime rt;
        SafeAgreement sa(3);
        std::vector<Value> resolved(3, kBottom);
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&, p](Context& ctx) {
            sa.propose(ctx, p, 10 + p);
            resolved[static_cast<std::size_t>(p)] = sa.await(ctx);
          });
        }
        rt.run(driver);
        for (int p = 0; p < 3; ++p) {
          const Value v = resolved[static_cast<std::size_t>(p)];
          if (v < 10 || v > 12 || v != resolved[0]) {
            throw SpecViolation("await agreement violated");
          }
        }
      },
      1000);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(SafeAgreement, ResolveIsBottomWhileProposerInWindow) {
  // Scripted: p0 enters the unsafe window (first update + scan done, final
  // update pending); p1's resolve must return ⊥.
  Runtime rt;
  SafeAgreement sa(2);
  std::vector<Value> observed;
  rt.add_process([&](Context& ctx) { sa.propose(ctx, 0, 7); });  // 3 steps
  rt.add_process([&](Context& ctx) {
    observed.push_back(sa.resolve(ctx));  // while p0 mid-window
    observed.push_back(sa.resolve(ctx));  // after p0 finished
  });
  // p0 takes 2 steps (enter window), p1 resolves, p0 finishes, p1 resolves.
  ScriptedDriver driver({0, 0, 1, 0, 1});
  rt.run(driver);
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], kBottom);
  EXPECT_EQ(observed[1], 7);
}

TEST(SafeAgreement, CrashInWindowBlocksResolution) {
  // The BG blocking condition: a proposer crashes between its two updates;
  // resolve stays ⊥ forever (await exhausts its budget).
  Runtime rt;
  SafeAgreement sa(2);
  rt.add_process([&](Context& ctx) {
    sa.propose(ctx, 0, 7);  // will be crashed mid-window by the schedule
  });
  bool await_failed = false;
  rt.add_process([&](Context& ctx) {
    sa.propose(ctx, 1, 8);
    try {
      sa.await(ctx, 50);
    } catch (const SimError&) {
      await_failed = true;
    }
  });
  // Let p0 take exactly 2 steps (write level 1 + scan), then crash it.
  class CrashDriver final : public ScheduleDriver {
   public:
    explicit CrashDriver(Runtime* rt) : rt_(rt) {}
    std::size_t pick(std::span<const int> enabled,
                     std::span<const Access> /*footprints*/ = {}) override {
      if (steps_for_p0_ < 2) {
        ++steps_for_p0_;
        return 0;  // p0 first twice (it is enabled first)
      }
      rt_->crash(0);
      // After crashing p0 the enabled list may shrink; pick p1.
      for (std::size_t i = 0; i < enabled.size(); ++i) {
        if (enabled[i] == 1) {
          return i;
        }
      }
      return 0;
    }
    std::uint32_t choose(std::uint32_t) override { return 0; }

   private:
    Runtime* rt_;
    int steps_for_p0_ = 0;
  };
  CrashDriver driver(&rt);
  rt.run(driver);
  EXPECT_TRUE(await_failed);
}

TEST(SafeAgreement, FrozenAfterFirstResolution) {
  // Once a resolve succeeded, later proposers retreat and the agreed value
  // never changes.
  Runtime rt;
  SafeAgreement sa(3);
  rt.add_process([&](Context& ctx) {
    sa.propose(ctx, 0, 100);
    EXPECT_EQ(sa.await(ctx), 100);
    // A late proposer arrives only after resolution: it must retreat.
    sa.propose(ctx, 1, 200);
    EXPECT_EQ(sa.await(ctx), 100);
    EXPECT_EQ(sa.resolve(ctx), 100);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

TEST(SafeAgreement, ConcurrentLateProposerCannotFlipAgreement) {
  // Exhaustive: p0 proposes and resolves once; p1 proposes concurrently or
  // later. Whatever both eventually resolve must match and be a proposal.
  const auto result = Explorer::explore(
      [](ScheduleDriver& driver) {
        Runtime rt;
        SafeAgreement sa(2);
        std::vector<Value> probes;
        rt.add_process([&](Context& ctx) {
          sa.propose(ctx, 0, 100);
          probes.push_back(sa.resolve(ctx));
          probes.push_back(sa.resolve(ctx));
        });
        rt.add_process([&](Context& ctx) {
          sa.propose(ctx, 1, 200);
          probes.push_back(sa.resolve(ctx));
        });
        rt.run(driver);
        Value agreed = kBottom;
        for (const Value v : probes) {
          if (v == kBottom) {
            continue;
          }
          if (v != 100 && v != 200) {
            throw SpecViolation("non-proposal resolved");
          }
          if (agreed == kBottom) {
            agreed = v;
          } else if (agreed != v) {
            throw SpecViolation("agreement flipped: " + to_string(agreed) +
                                " then " + to_string(v));
          }
        }
      },
      Explorer::Options{.max_executions = 300'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(SafeAgreement, ParameterValidation) {
  EXPECT_THROW(SafeAgreement(0), SimError);
  Runtime rt;
  SafeAgreement sa(2);
  rt.add_process([&](Context& ctx) {
    EXPECT_THROW(sa.propose(ctx, 0, kBottom), SimError);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

}  // namespace
}  // namespace subc
