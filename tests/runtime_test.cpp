// Unit tests for the simulation kernel: stepping, scheduling, decisions,
// crashes, hangs and the schedule drivers.
#include "subc/runtime/runtime.hpp"

#include <gtest/gtest.h>

#include "subc/objects/register.hpp"
#include "subc/runtime/scheduler.hpp"

namespace subc {
namespace {

TEST(Runtime, RunsSingleProcessToCompletion) {
  Runtime rt;
  Register<> reg(kBottom);
  rt.add_process([&](Context& ctx) {
    reg.write(ctx, 42);
    ctx.decide(reg.read(ctx));
  });
  RoundRobinDriver driver;
  const auto result = rt.run(driver);
  EXPECT_EQ(result.decisions, (std::vector<Value>{42}));
  EXPECT_EQ(result.states[0], ProcState::kDone);
  EXPECT_TRUE(result.quiescent);
  EXPECT_EQ(result.total_steps, 2);  // one write + one read
}

TEST(Runtime, EachGrantIsOneSharedStep) {
  // Local computation costs no steps; only register operations do.
  Runtime rt;
  Register<> reg(0);
  rt.add_process([&](Context& ctx) {
    long local = 0;
    for (int i = 0; i < 1000; ++i) {
      ++local;  // free local work
    }
    reg.write(ctx, local);
    reg.read(ctx);
  });
  RoundRobinDriver driver;
  const auto result = rt.run(driver);
  EXPECT_EQ(result.total_steps, 2);
}

TEST(Runtime, RoundRobinInterleavesWrites) {
  Runtime rt;
  Register<> reg(kBottom);
  std::vector<Value> observed;
  for (int p = 0; p < 3; ++p) {
    rt.add_process([&, p](Context& ctx) {
      reg.write(ctx, p);
      observed.push_back(reg.read(ctx));
    });
  }
  RoundRobinDriver driver;
  rt.run(driver);
  // Round robin: writes 0,1,2 then reads 2,2,2 (pid order each round).
  EXPECT_EQ(observed, (std::vector<Value>{2, 2, 2}));
}

TEST(Runtime, ScriptedDriverFollowsSchedule) {
  Runtime rt;
  Register<> reg(kBottom);
  std::vector<Value> reads(2, kBottom);
  for (int p = 0; p < 2; ++p) {
    rt.add_process([&, p](Context& ctx) {
      reg.write(ctx, p);
      reads[static_cast<std::size_t>(p)] = reg.read(ctx);
    });
  }
  // p1 does both its steps first, then p0.
  ScriptedDriver driver({1, 1, 0, 0});
  rt.run(driver);
  EXPECT_EQ(reads[1], 1);  // p1 read before p0 wrote
  EXPECT_EQ(reads[0], 0);  // p0 overwrote and read its own value
}

TEST(Runtime, CrashedProcessTakesNoSteps) {
  Runtime rt;
  Register<> reg(0);
  rt.add_process([&](Context& ctx) { reg.write(ctx, 1); });
  rt.add_process([&](Context& ctx) { reg.write(ctx, 2); });
  rt.crash(0);
  RoundRobinDriver driver;
  const auto result = rt.run(driver);
  EXPECT_EQ(result.states[0], ProcState::kCrashed);
  EXPECT_EQ(result.states[1], ProcState::kDone);
  EXPECT_EQ(reg.peek(), 2);
  EXPECT_EQ(rt.steps_of(0), 0);
}

TEST(Runtime, HangIsUndetectableButRecorded) {
  Runtime rt;
  rt.add_process([&](Context& ctx) { ctx.hang(); });
  rt.add_process([&](Context& ctx) { ctx.decide(7); });
  RoundRobinDriver driver;
  const auto result = rt.run(driver);
  EXPECT_EQ(result.states[0], ProcState::kHung);
  EXPECT_EQ(result.states[1], ProcState::kDone);
  EXPECT_FALSE(result.quiescent);
  EXPECT_EQ(result.decisions[1], 7);
}

TEST(Runtime, DecideTwiceThrows) {
  Runtime rt;
  Register<> reg(0);
  rt.add_process([&](Context& ctx) {
    reg.read(ctx);
    ctx.decide(1);
    ctx.decide(2);
  });
  RoundRobinDriver driver;
  EXPECT_THROW(rt.run(driver), SimError);
}

TEST(Runtime, DecideBottomThrows) {
  Runtime rt;
  Register<> reg(0);
  rt.add_process([&](Context& ctx) {
    reg.read(ctx);
    ctx.decide(kBottom);
  });
  RoundRobinDriver driver;
  EXPECT_THROW(rt.run(driver), SimError);
}

TEST(Runtime, StepBoundDetectsNonTermination) {
  Runtime rt;
  Register<> reg(0);
  rt.add_process([&](Context& ctx) {
    for (;;) {
      reg.read(ctx);  // spins forever
    }
  });
  RoundRobinDriver driver;
  EXPECT_THROW(rt.run(driver, /*max_steps=*/1000), SimError);
}

TEST(Runtime, RunIsSingleUse) {
  Runtime rt;
  rt.add_process([](Context&) {});
  RoundRobinDriver driver;
  rt.run(driver);
  EXPECT_THROW(rt.run(driver), SimError);
  EXPECT_THROW(rt.add_process([](Context&) {}), SimError);
}

TEST(Runtime, ProcessExceptionsPropagate) {
  Runtime rt;
  Register<> reg(0);
  rt.add_process([&](Context& ctx) {
    reg.read(ctx);
    throw SpecViolation("deliberate");
  });
  RoundRobinDriver driver;
  EXPECT_THROW(rt.run(driver), SpecViolation);
}

TEST(Runtime, RandomDriverIsReproducible) {
  const auto run_once = [](std::uint64_t seed) {
    Runtime rt;
    Register<> reg(kBottom);
    std::vector<Value> reads;
    for (int p = 0; p < 4; ++p) {
      rt.add_process([&, p](Context& ctx) {
        reg.write(ctx, p);
        reads.push_back(reg.read(ctx));
      });
    }
    RandomDriver driver(seed);
    rt.run(driver);
    return reads;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  // Different seeds eventually differ (not guaranteed per pair; check a few).
  bool any_different = false;
  const auto base = run_once(1);
  for (std::uint64_t seed = 2; seed < 20 && !any_different; ++seed) {
    any_different = (run_once(seed) != base);
  }
  EXPECT_TRUE(any_different);
}

TEST(Runtime, ChooseOutsideRunThrows) {
  Runtime rt;
  rt.add_process([](Context&) {});
  // choose() needs an active driver; call through a hand-built Context is
  // not possible from outside, so we check the in-run path instead: a
  // process using choose gets driver-supplied values.
  Runtime rt2;
  std::vector<std::uint32_t> picks;
  Register<> reg(0);
  rt2.add_process([&](Context& ctx) {
    reg.read(ctx);
    picks.push_back(ctx.choose(3));
    picks.push_back(ctx.choose(1));
  });
  RoundRobinDriver driver;  // always picks option 0
  rt2.run(driver);
  EXPECT_EQ(picks, (std::vector<std::uint32_t>{0, 0}));
}

TEST(Runtime, ManyProcessesAllFinish) {
  Runtime rt;
  Register<> reg(0);
  constexpr int kProcs = 32;
  for (int p = 0; p < kProcs; ++p) {
    rt.add_process([&](Context& ctx) {
      for (int i = 0; i < 10; ++i) {
        reg.write(ctx, reg.read(ctx) + 1);
      }
    });
  }
  RandomDriver driver(3);
  const auto result = rt.run(driver);
  for (int p = 0; p < kProcs; ++p) {
    EXPECT_EQ(result.states[static_cast<std::size_t>(p)], ProcState::kDone);
  }
  EXPECT_EQ(result.total_steps, kProcs * 20);
}

}  // namespace
}  // namespace subc
