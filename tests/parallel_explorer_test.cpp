// Tests for the parallel work-sharing explorer: serial/parallel equivalence
// of execution counts and violation reports at several thread counts and
// frontier depths, deterministic (canonically least) violation selection,
// cooperative cancellation, shared budgets, the prune hook, and the parallel
// random sweep. This binary is also the ThreadSanitizer target guarding the
// work-queue and cancellation paths (scripts/check.sh builds it with
// -fsanitize=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "subc/checking/violation_log.hpp"
#include "subc/objects/register.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/runtime.hpp"

namespace subc {
namespace {

// A thread-safe world: `procs` processes each doing `steps` register reads.
// Pure per-execution state, so it can run under any thread count.
ExecutionBody grid_world(int procs, int steps) {
  return [procs, steps](ScheduleDriver& driver) {
    Runtime rt;
    Register<> reg(0);
    for (int p = 0; p < procs; ++p) {
      rt.add_process([&](Context& ctx) {
        for (int s = 0; s < steps; ++s) {
          reg.read(ctx);
        }
      });
    }
    rt.run(driver);
  };
}

// A world with a spec violation buried deep in the tree: it fires only when
// every one of `procs` processes observes a fully written array, which
// requires a specific class of late schedules — the violating decision
// strings are far from the DFS root.
ExecutionBody deep_violation_world(int procs, int steps) {
  return [procs, steps](ScheduleDriver& driver) {
    Runtime rt;
    Register<> reg(kBottom);
    std::vector<int> saw_written(static_cast<std::size_t>(procs), 0);
    for (int p = 0; p < procs; ++p) {
      rt.add_process([&, p](Context& ctx) {
        for (int s = 0; s < steps; ++s) {
          if (reg.read(ctx) != kBottom) {
            saw_written[static_cast<std::size_t>(p)] = 1;
          }
          reg.write(ctx, p);
        }
      });
    }
    rt.run(driver);
    int total = 0;
    for (const int saw : saw_written) {
      total += saw;
    }
    if (total == procs) {
      throw SpecViolation("every process saw a written value");
    }
  };
}

// Count-asserting tests pin `reduction = kNone`: they check the raw
// enumeration and partition machinery on known interleaving counts. The
// sleep-set composition with threading is covered separately below and in
// reduction_test.cpp.
Explorer::Options unreduced() {
  Explorer::Options opts;
  opts.reduction = Reduction::kNone;
  return opts;
}

TEST(ParallelExplorer, MatchesSerialCountsAtEveryThreadCount) {
  const ExecutionBody body = grid_world(3, 3);
  const auto serial = Explorer::explore(body, unreduced());
  ASSERT_TRUE(serial.complete);
  ASSERT_EQ(serial.executions, 1680);  // 9!/(3!3!3!)
  for (const int threads : {2, 3, 4, 8}) {
    Explorer::Options opts = unreduced();
    opts.threads = threads;
    const auto parallel = Explorer::explore(body, opts);
    EXPECT_TRUE(parallel.complete) << "threads=" << threads;
    EXPECT_EQ(parallel.executions, serial.executions) << "threads=" << threads;
    EXPECT_TRUE(parallel.ok()) << "threads=" << threads;
  }
}

TEST(ParallelExplorer, MatchesSerialCountsAtEveryFrontierDepth) {
  const ExecutionBody body = grid_world(2, 4);
  const auto serial = Explorer::explore(body, unreduced());
  ASSERT_TRUE(serial.complete);
  ASSERT_EQ(serial.executions, 70);  // 8!/(4!4!)
  for (const int depth : {1, 2, 3, 5, 7, 20}) {
    Explorer::Options opts = unreduced();
    opts.threads = 4;
    opts.frontier_depth = depth;
    const auto parallel = Explorer::explore(body, opts);
    EXPECT_TRUE(parallel.complete) << "depth=" << depth;
    EXPECT_EQ(parallel.executions, serial.executions) << "depth=" << depth;
  }
}

TEST(ParallelExplorer, SleepSetCountsBitIdenticalAcrossThreadsAndDepths) {
  // A mixed read/write world with no violation: the reduced search must
  // report identical executions/reduced_subtrees/complete at every thread
  // count and frontier depth, and strictly fewer executions than raw
  // enumeration.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(3, kBottom);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        regs[p].write(ctx, p);
        regs[(p + 1) % 3].read(ctx);
        regs[p].write(ctx, p + 10);
      });
    }
    rt.run(driver);
  };
  const auto raw = Explorer::explore(body, unreduced());
  ASSERT_TRUE(raw.complete);
  const auto serial = Explorer::explore(body);
  ASSERT_TRUE(serial.complete);
  EXPECT_LT(serial.executions, raw.executions);
  EXPECT_GT(serial.reduced_subtrees, 0);
  for (const int threads : {2, 4, 8}) {
    for (const int depth : {0, 2, 5}) {
      Explorer::Options opts;
      opts.threads = threads;
      opts.frontier_depth = depth;
      const auto parallel = Explorer::explore(body, opts);
      EXPECT_TRUE(parallel.complete)
          << "threads=" << threads << " depth=" << depth;
      EXPECT_EQ(parallel.executions, serial.executions)
          << "threads=" << threads << " depth=" << depth;
      EXPECT_EQ(parallel.reduced_subtrees, serial.reduced_subtrees)
          << "threads=" << threads << " depth=" << depth;
    }
  }
}

TEST(ParallelExplorer, ObjectNondeterminismCountsMatchSerial) {
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    Register<> reg(0);
    for (int p = 0; p < 2; ++p) {
      rt.add_process([&](Context& ctx) {
        reg.read(ctx);
        ctx.choose(3);
        reg.read(ctx);
      });
    }
    rt.run(driver);
  };
  const auto serial = Explorer::explore(body);
  Explorer::Options opts;
  opts.threads = 4;
  const auto parallel = Explorer::explore(body, opts);
  ASSERT_TRUE(serial.complete);
  EXPECT_TRUE(parallel.complete);
  EXPECT_EQ(parallel.executions, serial.executions);
}

TEST(ParallelExplorer, ReportsCanonicallyLeastViolationAtAnyThreadCount) {
  const ExecutionBody body = deep_violation_world(3, 2);
  const auto serial = Explorer::explore(body);
  ASSERT_FALSE(serial.ok());
  for (const int threads : {2, 4, 8}) {
    for (const int depth : {0, 2, 4}) {
      Explorer::Options opts;
      opts.threads = threads;
      opts.frontier_depth = depth;
      const auto parallel = Explorer::explore(body, opts);
      ASSERT_FALSE(parallel.ok())
          << "threads=" << threads << " depth=" << depth;
      EXPECT_EQ(*parallel.violation, *serial.violation);
      // The canonically least trace is independent of thread timing, so
      // executions-before-violation is bit-identical to the serial count —
      // and so is the reduction-skip tally (this runs under the default
      // sleep-set reduction).
      EXPECT_EQ(parallel.executions, serial.executions)
          << "threads=" << threads << " depth=" << depth;
      EXPECT_EQ(parallel.reduced_subtrees, serial.reduced_subtrees)
          << "threads=" << threads << " depth=" << depth;
      EXPECT_EQ(format_trace(parallel.violating_trace),
                format_trace(serial.violating_trace))
          << "threads=" << threads << " depth=" << depth;
    }
  }
}

TEST(ParallelExplorer, ViolatingTraceFromParallelRunReplays) {
  const ExecutionBody body = deep_violation_world(3, 2);
  Explorer::Options opts;
  opts.threads = 4;
  const auto result = Explorer::explore(body, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_THROW(Explorer::replay(body, result.violating_trace), SpecViolation);
}

TEST(ParallelExplorer, SharedBudgetStopsAtExactlyMaxExecutions) {
  Explorer::Options opts = unreduced();
  opts.threads = 4;
  opts.max_executions = 100;
  const auto result = Explorer::explore(grid_world(4, 3), opts);
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.executions, 100);
}

TEST(ParallelExplorer, PruneHookSkipsSubtreesIdenticallyToSerial) {
  // Prune every subtree whose first recorded decision is the highest-index
  // option: a symmetry-style reduction a user might write.
  const Explorer::PruneFn prune =
      [](std::span<const ReplayDriver::Decision> prefix) {
        return prefix.size() == 1 &&
               prefix[0].chosen + 1 == prefix[0].arity;
      };
  Explorer::Options serial_opts;
  serial_opts.prune = prune;
  const auto serial = Explorer::explore(grid_world(3, 2), serial_opts);
  ASSERT_TRUE(serial.complete);
  EXPECT_GT(serial.pruned_subtrees, 0);
  // Unpruned total is 90; the pruned run must be strictly smaller.
  EXPECT_LT(serial.executions, 90);

  Explorer::Options par_opts = serial_opts;
  par_opts.threads = 4;
  const auto parallel = Explorer::explore(grid_world(3, 2), par_opts);
  EXPECT_TRUE(parallel.complete);
  EXPECT_EQ(parallel.executions, serial.executions);
  EXPECT_EQ(parallel.pruned_subtrees, serial.pruned_subtrees);
}

TEST(ParallelExplorer, OutcomeSetsMatchSerialWithSynchronizedBody) {
  // The parallel explorer visits exactly the executions the serial one does
  // (not just the same number): collect observable outcomes under a mutex
  // and compare the sets.
  const auto run = [](int threads) {
    std::mutex mu;
    std::set<std::vector<Value>> outcomes;
    Explorer::Options opts = unreduced();
    opts.threads = threads;
    const auto result = Explorer::explore(
        [&](ScheduleDriver& driver) {
          Runtime rt;
          Register<> reg(kBottom);
          std::vector<Value> reads(2, kBottom);
          for (int p = 0; p < 2; ++p) {
            rt.add_process([&, p](Context& ctx) {
              reads[static_cast<std::size_t>(p)] = reg.read(ctx);
              reg.write(ctx, p);
            });
          }
          rt.run(driver);
          const std::lock_guard<std::mutex> lock(mu);
          outcomes.insert(reads);
        },
        opts);
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.executions, 6);
    return outcomes;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ParallelRandomSweep, CleanSweepCountsAllRuns) {
  const auto result = RandomSweep::run(
      [](ScheduleDriver& driver) {
        Runtime rt;
        Register<> reg(0);
        rt.add_process([&](Context& ctx) { reg.write(ctx, 1); });
        rt.run(driver);
      },
      500, /*first_seed=*/1, /*threads=*/4);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.runs, 500);
}

TEST(ParallelRandomSweep, ReportsLeastFailingSeedLikeSerial) {
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    Register<> reg(kBottom);
    rt.add_process([&](Context& ctx) { reg.write(ctx, 1); });
    rt.add_process([&](Context& ctx) {
      if (reg.read(ctx) == kBottom) {
        throw SpecViolation("bad order");
      }
    });
    rt.run(driver);
  };
  const auto serial = RandomSweep::run(body, 400);
  ASSERT_FALSE(serial.ok());
  for (const int threads : {2, 4, 8}) {
    const auto parallel = RandomSweep::run(body, 400, 1, threads);
    ASSERT_FALSE(parallel.ok()) << "threads=" << threads;
    EXPECT_EQ(*parallel.failing_seed, *serial.failing_seed);
    EXPECT_EQ(parallel.runs, serial.runs);
    EXPECT_EQ(*parallel.violation, *serial.violation);
  }
}

TEST(ViolationLog, KeepsLeastIndexUnderConcurrentReports) {
  ViolationLog log;
  EXPECT_TRUE(log.empty());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log, t]() {
      for (std::uint64_t i = 0; i < 200; ++i) {
        log.report(static_cast<std::uint64_t>(t) + 4 * i,
                   "violation " + std::to_string(t), {});
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const auto win = log.winner();
  ASSERT_TRUE(win.has_value());
  EXPECT_EQ(win->index, 0u);
  EXPECT_EQ(win->message, "violation 0");
  EXPECT_EQ(log.best_index(), 0u);
  EXPECT_EQ(log.total_reported(), 800);
}

TEST(ParallelExplorer, ThreadsZeroUsesHardwareConcurrency) {
  Explorer::Options opts = unreduced();
  opts.threads = 0;
  const auto result = Explorer::explore(grid_world(2, 2), opts);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.executions, 6);
  EXPECT_GE(Explorer::resolve_threads(0), 1);
}

}  // namespace
}  // namespace subc
