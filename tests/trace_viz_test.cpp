// Tests for the ASCII space-time renderer.
#include "subc/checking/trace_viz.hpp"

#include <gtest/gtest.h>

namespace subc {
namespace {

TEST(TraceViz, EmptyHistory) {
  History h;
  EXPECT_EQ(render_history(h), "(empty history)\n");
}

TEST(TraceViz, RendersOneLanePerProcess) {
  History h;
  const auto a = h.invoke(0, {0, 100});
  const auto b = h.invoke(1, {1, 101});
  h.respond(a, {kBottom});
  h.respond(b, {100});
  const std::string out = render_history(h);
  EXPECT_NE(out.find("p0 "), std::string::npos);
  EXPECT_NE(out.find("p1 "), std::string::npos);
  // Two lines, both containing op boxes.
  EXPECT_NE(out.find('|'), std::string::npos);
  EXPECT_NE(out.find("op(0,100)"), std::string::npos);
}

TEST(TraceViz, PendingOpsRunToTheHorizon) {
  History h;
  h.invoke(0, {0, 1});  // never responds
  const auto b = h.invoke(1, {1, 2});
  h.respond(b, {7});
  const std::string out = render_history(h);
  EXPECT_NE(out.find("->?"), std::string::npos);  // pending marker
  EXPECT_NE(out.find("->7"), std::string::npos);
}

TEST(TraceViz, CustomOpName) {
  History h;
  const auto a = h.invoke(2, {1, 5});
  h.respond(a, {kBottom});
  TraceVizOptions options;
  options.op_name = "1sWRN";
  const std::string out = render_history(h, options);
  EXPECT_NE(out.find("1sWRN(1,5)"), std::string::npos);
  EXPECT_NE(out.find("p2 "), std::string::npos);
}

TEST(TraceViz, OverlapIsVisible) {
  // Sequential ops occupy disjoint column ranges; overlapping ops share
  // columns. We check the structural property: the second op's box starts
  // before the first one's end iff they overlap in logical time.
  History seq;
  auto a = seq.invoke(0, {0, 1});
  seq.respond(a, {kBottom});
  auto b = seq.invoke(1, {1, 2});
  seq.respond(b, {1});
  const std::string s = render_history(seq);

  History conc;
  auto c = conc.invoke(0, {0, 1});
  auto d = conc.invoke(1, {1, 2});
  conc.respond(c, {kBottom});
  conc.respond(d, {1});
  const std::string t = render_history(conc);

  // In the sequential render, p1's box starts after p0's closes; grab
  // column of p0's closing '|' and p1's opening '|'.
  const auto line_of = [](const std::string& out, const char* prefix) {
    const auto at = out.find(prefix);
    const auto end = out.find('\n', at);
    return out.substr(at, end - at);
  };
  const std::string s0 = line_of(s, "p0 ");
  const std::string s1 = line_of(s, "p1 ");
  EXPECT_LT(s0.find_last_of('|'), s1.find_first_of('|'));

  const std::string t0 = line_of(t, "p0 ");
  const std::string t1 = line_of(t, "p1 ");
  EXPECT_GT(t0.find_last_of('|'), t1.find_first_of('|'));
}

}  // namespace
}  // namespace subc
