// Unit tests for the cooperative fiber layer.
#include "subc/runtime/fiber.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "subc/runtime/value.hpp"

namespace subc {
namespace {

TEST(Fiber, RunsToCompletionWithoutYield) {
  int calls = 0;
  Fiber f([&] { ++calls; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(calls, 1);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> log;
  Fiber f([&] {
    log.push_back(1);
    Fiber::yield();
    log.push_back(2);
    Fiber::yield();
    log.push_back(3);
  });
  f.resume();
  EXPECT_EQ(log, (std::vector<int>{1}));
  f.resume();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, InterleavesTwoFibers) {
  std::vector<int> log;
  Fiber a([&] {
    log.push_back(1);
    Fiber::yield();
    log.push_back(3);
  });
  Fiber b([&] {
    log.push_back(2);
    Fiber::yield();
    log.push_back(4);
  });
  a.resume();
  b.resume();
  a.resume();
  b.resume();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_TRUE(a.finished());
  EXPECT_TRUE(b.finished());
}

TEST(Fiber, PropagatesExceptions) {
  Fiber f([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, ExceptionAfterYieldPropagatesOnSecondResume) {
  Fiber f([] {
    Fiber::yield();
    throw std::runtime_error("later");
  });
  EXPECT_NO_THROW(f.resume());
  EXPECT_THROW(f.resume(), std::runtime_error);
}

TEST(Fiber, KillUnwindsRaiiState) {
  // A destructor on the fiber stack must run when the fiber is killed.
  struct Sentinel {
    bool* flag;
    explicit Sentinel(bool* f) : flag(f) {}
    ~Sentinel() { *flag = true; }
  };
  bool destroyed = false;
  auto f = std::make_unique<Fiber>([&] {
    Sentinel s(&destroyed);
    Fiber::yield();
    Fiber::yield();  // never reached: killed while suspended
  });
  f->resume();
  EXPECT_FALSE(destroyed);
  f->kill();
  EXPECT_TRUE(destroyed);
  EXPECT_TRUE(f->finished());
}

TEST(Fiber, DestructorKillsSuspendedFiber) {
  bool destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  {
    Fiber f([&] {
      Sentinel s{&destroyed};
      Fiber::yield();
    });
    f.resume();
  }
  EXPECT_TRUE(destroyed);
}

TEST(Fiber, KillOnNeverStartedFiberIsSafe) {
  Fiber f([] { FAIL() << "must never run"; });
  f.kill();
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, ResumeAfterFinishThrows) {
  Fiber f([] {});
  f.resume();
  EXPECT_THROW(f.resume(), SimError);
}

TEST(Fiber, YieldOutsideFiberThrows) {
  EXPECT_THROW(Fiber::yield(), SimError);
}

TEST(Fiber, EmptyEntryRejected) {
  EXPECT_THROW(Fiber(std::function<void()>{}), SimError);
}

TEST(Fiber, ManyFibersManySwitches) {
  constexpr int kFibers = 50;
  constexpr int kRounds = 200;
  std::vector<std::unique_ptr<Fiber>> fibers;
  std::vector<int> counters(kFibers, 0);
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&counters, i] {
      for (int r = 0; r < kRounds; ++r) {
        ++counters[static_cast<std::size_t>(i)];
        Fiber::yield();
      }
    }));
  }
  for (int r = 0; r < kRounds + 1; ++r) {
    for (auto& f : fibers) {
      if (!f->finished()) {
        f->resume();
      }
    }
  }
  for (int i = 0; i < kFibers; ++i) {
    EXPECT_EQ(counters[static_cast<std::size_t>(i)], kRounds);
    EXPECT_TRUE(fibers[static_cast<std::size_t>(i)]->finished());
  }
}

}  // namespace
}  // namespace subc
