// Campaign hardening: checkpoint/resume of the exhaustive explorer
// (checking/checkpoint.hpp) and graceful degradation of the parallel
// frontier ring (spill-to-disk). The load-bearing claim: killing a campaign
// at an arbitrary periodic snapshot and resuming produces the bit-identical
// final Result an uninterrupted run reports, at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "subc/checking/checkpoint.hpp"
#include "subc/objects/register.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/observer.hpp"
#include "subc/runtime/runtime.hpp"

namespace subc {
namespace {

// Checkpoint files land in the test's working directory (the build tree).
std::string temp_path(const std::string& name) { return name; }

void remove_file(const std::string& path) { std::remove(path.c_str()); }

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// A clean world (no violation): 3 processes x 2 steps, 90 raw schedules.
ExecutionBody clean_body() {
  return [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(3, kBottom);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        regs[p].write(ctx, p);
        regs[(p + 1) % 3].read(ctx);
      });
    }
    rt.run(driver);
  };
}

// A seeded-violation world: the classic lost update. Each process reads the
// shared counter and writes back the value plus one; schedules where the
// reads overlap lose an increment, and the body flags exactly those.
ExecutionBody lost_update_body() {
  return [](ScheduleDriver& driver) {
    Runtime rt;
    Register<> counter(0);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&](Context& ctx) {
        const Value seen = counter.read(ctx);
        counter.write(ctx, seen + 1);
      });
    }
    rt.run(driver);
    if (counter.peek() != 3) {
      throw SpecViolation("lost update: counter ended at " +
                          to_string(counter.peek()));
    }
  };
}

void expect_same_result(const Explorer::Result& a, const Explorer::Result& b,
                        const std::string& what) {
  EXPECT_EQ(a.executions, b.executions) << what;
  EXPECT_EQ(a.pruned_subtrees, b.pruned_subtrees) << what;
  EXPECT_EQ(a.reduced_subtrees, b.reduced_subtrees) << what;
  EXPECT_EQ(a.crashed_executions, b.crashed_executions) << what;
  EXPECT_EQ(a.recovered_executions, b.recovered_executions) << what;
  EXPECT_EQ(a.stuck_executions, b.stuck_executions) << what;
  EXPECT_EQ(a.complete, b.complete) << what;
  EXPECT_EQ(a.violation, b.violation) << what;
  EXPECT_EQ(format_trace(a.violating_trace), format_trace(b.violating_trace))
      << what;
  EXPECT_EQ(a.first_stuck.has_value(), b.first_stuck.has_value()) << what;
  if (a.first_stuck && b.first_stuck) {
    EXPECT_EQ(a.first_stuck->message, b.first_stuck->message) << what;
    EXPECT_EQ(format_trace(a.first_stuck->trace),
              format_trace(b.first_stuck->trace))
        << what;
  }
}

/// Simulated kill: copies the checkpoint file aside when the campaign
/// reaches its `kill_at`-th execution. Whatever periodic snapshot is on disk
/// at that moment is exactly what a crashed process would leave behind.
class KillPoint final : public TraceObserver {
 public:
  KillPoint(std::string checkpoint, std::string keep, std::int64_t kill_at)
      : checkpoint_(std::move(checkpoint)),
        keep_(std::move(keep)),
        kill_at_(kill_at) {}

  void on_run_begin(int /*num_processes*/) override {
    if (runs_.fetch_add(1, std::memory_order_relaxed) + 1 == kill_at_ &&
        file_exists(checkpoint_)) {
      std::ofstream out(keep_, std::ios::trunc);
      out << read_file(checkpoint_);
    }
  }

 private:
  std::string checkpoint_;
  std::string keep_;
  std::int64_t kill_at_;
  std::atomic<std::int64_t> runs_{0};
};

void run_kill_and_resume(const ExecutionBody& body, Explorer::Options opts,
                         const std::string& tag) {
  Explorer::Options plain = opts;
  plain.checkpoint_path.clear();
  plain.observer = nullptr;
  const auto uninterrupted = Explorer::explore(body, plain);

  for (const std::int64_t kill_at : {3L, 11L, 29L}) {
    const std::string cp = temp_path("subc_ckpt_" + tag + ".jsonl");
    const std::string keep = temp_path("subc_ckpt_" + tag + "_keep.jsonl");
    remove_file(cp);
    remove_file(keep);

    Explorer::Options interrupted = opts;
    interrupted.checkpoint_path = cp;
    interrupted.checkpoint_every = 2;  // snapshot often enough to be killed
    KillPoint killer(cp, keep, kill_at);
    interrupted.observer = &killer;
    Explorer::explore(body, interrupted);

    // A snapshot may not have been written yet at very early kill points
    // (nothing on disk = the campaign restarts from scratch, trivially
    // identical); only resume when the kill actually captured one.
    if (!file_exists(keep)) {
      continue;
    }
    // "Crash": the captured mid-run snapshot becomes the file a restarted
    // campaign finds.
    {
      std::ofstream out(cp, std::ios::trunc);
      out << read_file(keep);
    }
    const ExplorerSnapshot snap = load_snapshot(cp);
    EXPECT_FALSE(snap.done) << tag << " kill_at=" << kill_at;

    Explorer::Options resumed_opts = opts;
    resumed_opts.checkpoint_path = cp;
    const auto resumed = Explorer::resume(body, cp, resumed_opts);
    expect_same_result(resumed, uninterrupted,
                       tag + " kill_at=" + std::to_string(kill_at));

    // The final snapshot the resumed campaign wrote marks the search done
    // and resumes to the same Result without re-running anything.
    const auto reloaded = Explorer::resume(body, cp, resumed_opts);
    expect_same_result(reloaded, uninterrupted, tag + " reloaded");

    remove_file(cp);
    remove_file(keep);
    remove_file(cp + ".spill");
  }
}

TEST(CheckpointResume, CleanWorldSerial) {
  Explorer::Options opts;
  run_kill_and_resume(clean_body(), opts, "clean_serial");
}

TEST(CheckpointResume, CleanWorldParallel) {
  Explorer::Options opts;
  opts.threads = 4;
  run_kill_and_resume(clean_body(), opts, "clean_par");
}

TEST(CheckpointResume, SeededViolationSerial) {
  Explorer::Options opts;
  opts.reduction = Reduction::kNone;  // keep the violating tree broad
  run_kill_and_resume(lost_update_body(), opts, "viol_serial");
}

TEST(CheckpointResume, SeededViolationParallel) {
  Explorer::Options opts;
  opts.reduction = Reduction::kNone;
  opts.threads = 4;
  run_kill_and_resume(lost_update_body(), opts, "viol_par");
}

TEST(CheckpointResume, CrashExplorationCampaignResumes) {
  // Checkpointing composes with crash branching: the snapshot prefix
  // round-trips crash decisions.
  Explorer::Options opts;
  opts.max_crashes = 1;
  run_kill_and_resume(clean_body(), opts, "crash_serial");
  opts.threads = 4;
  run_kill_and_resume(clean_body(), opts, "crash_par");
}

TEST(CheckpointResume, RecoveryExplorationCampaignResumes) {
  // ...and with crash-and-restart branching: the snapshot prefix
  // round-trips recovery decisions, and the resumed campaign reports the
  // uninterrupted recovered-executions tally.
  Explorer::Options opts;
  opts.max_crashes = 1;
  opts.max_recoveries = 1;
  run_kill_and_resume(clean_body(), opts, "recovery_serial");
  opts.threads = 4;
  run_kill_and_resume(clean_body(), opts, "recovery_par");
}

TEST(CheckpointResume, FinishedSnapshotResumesWithoutRerunning) {
  const std::string cp = temp_path("subc_ckpt_done.jsonl");
  remove_file(cp);
  Explorer::Options opts;
  opts.checkpoint_path = cp;
  std::atomic<std::int64_t> bodies{0};
  const ExecutionBody counted = [&bodies](ScheduleDriver& driver) {
    bodies.fetch_add(1, std::memory_order_relaxed);
    clean_body()(driver);
  };
  const auto first = Explorer::explore(counted, opts);
  EXPECT_TRUE(first.complete);
  const std::int64_t ran = bodies.load();
  EXPECT_GT(ran, 0);

  const auto again = Explorer::resume(counted, cp, opts);
  expect_same_result(again, first, "finished resume");
  EXPECT_EQ(bodies.load(), ran) << "resume of a finished snapshot re-ran";
  remove_file(cp);
}

TEST(CheckpointResume, ResumeRejectsOptionMismatch) {
  const std::string cp = temp_path("subc_ckpt_mismatch.jsonl");
  remove_file(cp);
  Explorer::Options opts;
  opts.checkpoint_path = cp;
  Explorer::explore(clean_body(), opts);

  Explorer::Options other = opts;
  other.max_crashes = 1;
  EXPECT_THROW(Explorer::resume(clean_body(), cp, other), SimError);
  other = opts;
  other.max_recoveries = 1;
  EXPECT_THROW(Explorer::resume(clean_body(), cp, other), SimError);
  other = opts;
  other.max_executions += 1;
  EXPECT_THROW(Explorer::resume(clean_body(), cp, other), SimError);
  other = opts;
  other.reduction = Reduction::kNone;
  EXPECT_THROW(Explorer::resume(clean_body(), cp, other), SimError);
  // Thread count is explicitly allowed to differ.
  other = opts;
  other.threads = 4;
  const auto r = Explorer::resume(clean_body(), cp, other);
  EXPECT_TRUE(r.complete);
  remove_file(cp);
}

TEST(CheckpointResume, DecisionStringsRoundTripIncludingCrashFlags) {
  std::vector<ReplayDriver::Decision> trace;
  trace.push_back(ReplayDriver::Decision{1, 3, 0b111, 0b010, false, false});
  trace.push_back(ReplayDriver::Decision{2, 4, 0, 0, true, false});
  trace.push_back(ReplayDriver::Decision{1, 3, 0b1, 0, false, true});
  trace.push_back(ReplayDriver::Decision{0, 2, 0b11, 0, false, false});
  const std::string encoded = encode_decisions(trace);
  const auto decoded = decode_decisions(encoded);
  ASSERT_EQ(decoded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(decoded[i].chosen, trace[i].chosen) << i;
    EXPECT_EQ(decoded[i].arity, trace[i].arity) << i;
    EXPECT_EQ(decoded[i].enabled, trace[i].enabled) << i;
    EXPECT_EQ(decoded[i].sleep, trace[i].sleep) << i;
    EXPECT_EQ(decoded[i].crash, trace[i].crash) << i;
    EXPECT_EQ(decoded[i].recover, trace[i].recover) << i;
  }
  EXPECT_THROW(decode_decisions("1/2/3"), SimError);
  EXPECT_THROW(decode_decisions("5/2/0/0/0"), SimError);    // chosen >= arity
  EXPECT_THROW(decode_decisions("0/2/0/0/7"), SimError);    // bad crash flag
  EXPECT_THROW(decode_decisions("0/2/0/0/0/7"), SimError);  // bad recover flag

  // Five-field tokens from pre-recovery snapshots read back with
  // recover = false, bit-exactly otherwise.
  const auto legacy = decode_decisions("1/3/7/2/1");
  ASSERT_EQ(legacy.size(), 1u);
  EXPECT_EQ(legacy[0].chosen, 1);
  EXPECT_EQ(legacy[0].arity, 3);
  EXPECT_TRUE(legacy[0].crash);
  EXPECT_FALSE(legacy[0].recover);
}

TEST(CheckpointResume, SnapshotFilesSurviveLoadSaveRoundTrip) {
  const std::string cp = temp_path("subc_ckpt_roundtrip.jsonl");
  ExplorerSnapshot snap;
  snap.max_executions = 1000;
  snap.max_crashes = 1;
  snap.max_recoveries = 1;
  snap.step_quota = 64;
  snap.reduction = true;
  snap.executions = 123;
  snap.pruned = 4;
  snap.reduced = 56;
  snap.crashed = 7;
  snap.recovered = 3;
  snap.stuck = 2;
  snap.stuck_message = "stuck execution: step quota (64) exceeded";
  snap.stuck_trace.push_back(ReplayDriver::Decision{1, 2, 0b11, 0, false});
  snap.prefix.push_back(ReplayDriver::Decision{0, 3, 0b111, 0b100, false});
  snap.prefix.push_back(ReplayDriver::Decision{1, 2, 0, 0, true});
  snap.prefix.push_back(ReplayDriver::Decision{1, 2, 0b1, 0, false, true});
  save_snapshot(cp, snap);
  const ExplorerSnapshot loaded = load_snapshot(cp);
  EXPECT_EQ(loaded.max_executions, snap.max_executions);
  EXPECT_EQ(loaded.max_crashes, snap.max_crashes);
  EXPECT_EQ(loaded.max_recoveries, snap.max_recoveries);
  EXPECT_EQ(loaded.step_quota, snap.step_quota);
  EXPECT_EQ(loaded.reduction, snap.reduction);
  EXPECT_EQ(loaded.executions, snap.executions);
  EXPECT_EQ(loaded.pruned, snap.pruned);
  EXPECT_EQ(loaded.reduced, snap.reduced);
  EXPECT_EQ(loaded.crashed, snap.crashed);
  EXPECT_EQ(loaded.recovered, snap.recovered);
  EXPECT_EQ(loaded.stuck, snap.stuck);
  EXPECT_FALSE(loaded.done);
  EXPECT_EQ(loaded.stuck_message, snap.stuck_message);
  EXPECT_EQ(encode_decisions(loaded.stuck_trace),
            encode_decisions(snap.stuck_trace));
  EXPECT_EQ(encode_decisions(loaded.prefix), encode_decisions(snap.prefix));
  remove_file(cp);
}

// ---------------------------------------------------------------------------
// Graceful degradation: a tiny frontier ring under a fast producer spills
// the oldest prefixes to `<checkpoint>.spill` instead of stalling, and the
// final Result is still bit-identical.
// ---------------------------------------------------------------------------

TEST(CheckpointResume, FrontierRingPressureSpillsAndStaysExact) {
  // The gate makes ring pressure deterministic instead of a race: in the
  // tight run, every completed execution spin-waits (AFTER its last
  // decision, so traces and results are unaffected) until the spill
  // journal exists. The lone worker therefore sits in its first subtree
  // while the producer streams the remaining depth-2 prefixes into a
  // 2-slot ring — the overflow, and hence the journal, is guaranteed, and
  // the producer's spill path never blocks, so neither side can deadlock.
  // Producer enumeration attempts are cut at the frontier before the body
  // finishes, so they never reach the gate.
  const auto gated_body = [](std::shared_ptr<std::atomic<bool>> spill_seen,
                             std::string spill_path) -> ExecutionBody {
    return [spill_seen = std::move(spill_seen),
            spill_path = std::move(spill_path)](ScheduleDriver& driver) {
      Runtime rt;
      RegisterArray<> regs(3, kBottom);
      for (int p = 0; p < 3; ++p) {
        rt.add_process([&, p](Context& ctx) {
          for (int i = 0; i < 3; ++i) {
            regs[p].write(ctx, i);
          }
        });
      }
      rt.run(driver);
      if (spill_path.empty() || spill_seen->load(std::memory_order_relaxed)) {
        return;
      }
      // Bounded wait (~30 s) so a spill regression fails the asserts below
      // instead of tripping the ctest timeout.
      for (int spin = 0; spin < 600'000; ++spin) {
        if (file_exists(spill_path)) {
          spill_seen->store(true, std::memory_order_relaxed);
          return;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    };
  };
  Explorer::Options reference;
  reference.reduction = Reduction::kNone;  // 9!/(3!3!3!) = 1680 executions
  const auto serial =
      Explorer::explore(gated_body(std::make_shared<std::atomic<bool>>(), ""),
                        reference);
  EXPECT_EQ(serial.executions, 1680);

  const std::string cp = temp_path("subc_ckpt_spill.jsonl");
  remove_file(cp);
  remove_file(cp + ".spill");
  Explorer::Options tight = reference;
  tight.threads = 2;          // one worker, kept busy by whole subtrees
  tight.frontier_depth = 2;   // 9 units of ~190 executions each
  tight.frontier_queue_capacity = 2;
  tight.checkpoint_path = cp;
  const auto spilled = Explorer::explore(
      gated_body(std::make_shared<std::atomic<bool>>(), cp + ".spill"), tight);
  expect_same_result(spilled, serial, "spill");
  EXPECT_TRUE(file_exists(cp + ".spill"));
  EXPECT_NE(read_file(cp + ".spill").find("\"kind\":\"spill\""),
            std::string::npos);
  remove_file(cp);
  remove_file(cp + ".spill");
}

}  // namespace
}  // namespace subc
