// Tests for Algorithm 4 (relaxed WRN from 1sWRN + counters): Claims 19–21.
#include "subc/algorithms/relaxed_wrn.hpp"

#include <gtest/gtest.h>

#include "subc/runtime/explorer.hpp"
#include "subc/runtime/runtime.hpp"

namespace subc {
namespace {

TEST(RelaxedWrn, SoleUserBehavesLikeWrn) {
  Runtime rt;
  RelaxedWrn rlx(3);
  rt.add_process([&](Context& ctx) {
    EXPECT_EQ(rlx.rlx_wrn(ctx, 0, 10), kBottom);
    EXPECT_EQ(rlx.rlx_wrn(ctx, 2, 30), 10);
    EXPECT_EQ(rlx.rlx_wrn(ctx, 1, 20), 30);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

TEST(RelaxedWrn, NeverHangsUnderIndexCollisions) {
  // Claim 19/20: the inner 1sWRN is used legally — so no process ever hangs,
  // even when several processes use the same index, under every schedule.
  const auto result = Explorer::explore([](ScheduleDriver& driver) {
    Runtime rt;
    RelaxedWrn rlx(3);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        rlx.rlx_wrn(ctx, /*index=*/0, /*v=*/100 + p);  // all collide
      });
    }
    const auto run = rt.run(driver);
    for (int p = 0; p < 3; ++p) {
      if (run.states[static_cast<std::size_t>(p)] != ProcState::kDone) {
        throw SpecViolation("RlxWRN hung under collision");
      }
    }
  });
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(RelaxedWrn, CollidingInvocationsMayAllGetBottom) {
  // With a collision, at most one process reaches the inner object; the
  // others get ⊥. Under every schedule, count inner successes.
  const auto result = Explorer::explore([](ScheduleDriver& driver) {
    Runtime rt;
    RelaxedWrn rlx(3);
    std::vector<Value> got(2, -1);
    for (int p = 0; p < 2; ++p) {
      rt.add_process([&, p](Context& ctx) {
        got[static_cast<std::size_t>(p)] = rlx.rlx_wrn(ctx, 0, 100 + p);
      });
    }
    rt.run(driver);
    // Both used index 0; at most one can have read counter==1, and the
    // first index-0 writer to the inner object always reads ⊥ from slot 1.
    for (const Value g : got) {
      if (g != kBottom) {
        throw SpecViolation("colliding RlxWRN returned a value");
      }
    }
  });
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(RelaxedWrn, DistinctIndicesAllReachInner) {
  // Claim 21: k processes with k distinct indices all invoke the inner
  // 1sWRN — so the outputs must equal those of a genuine WRN_k run: the
  // successor's value or ⊥, with at most k−1 of them ⊥... at least one
  // non-⊥ unless schedules allow; we check the WRN-shape of each output.
  const int k = 3;
  const auto result = Explorer::explore([&](ScheduleDriver& driver) {
    Runtime rt;
    RelaxedWrn rlx(k);
    std::vector<Value> got(static_cast<std::size_t>(k), -1);
    for (int p = 0; p < k; ++p) {
      rt.add_process([&, p](Context& ctx) {
        got[static_cast<std::size_t>(p)] = rlx.rlx_wrn(ctx, p, 100 + p);
      });
    }
    rt.run(driver);
    int bottoms = 0;
    for (int p = 0; p < k; ++p) {
      const Value g = got[static_cast<std::size_t>(p)];
      if (g == kBottom) {
        ++bottoms;
      } else if (g != 100 + ((p + 1) % k)) {
        throw SpecViolation("RlxWRN returned non-successor value");
      }
    }
    // The last process to reach the inner object must see its successor's
    // value, so not everything can be ⊥.
    if (bottoms == k) {
      throw SpecViolation("all distinct-index invocations returned ⊥");
    }
  });
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(RelaxedWrn, MixedCollisionAndDistinctIndices) {
  // Two processes collide on index 0, one uses index 2 (whose successor is
  // slot 0). Nothing hangs; outputs have WRN shape.
  const auto result = Explorer::explore([](ScheduleDriver& driver) {
    Runtime rt;
    RelaxedWrn rlx(3);
    std::vector<Value> got(3, -1);
    rt.add_process([&](Context& ctx) { got[0] = rlx.rlx_wrn(ctx, 0, 10); });
    rt.add_process([&](Context& ctx) { got[1] = rlx.rlx_wrn(ctx, 0, 11); });
    rt.add_process([&](Context& ctx) { got[2] = rlx.rlx_wrn(ctx, 2, 30); });
    const auto run = rt.run(driver);
    for (int p = 0; p < 3; ++p) {
      if (run.states[static_cast<std::size_t>(p)] != ProcState::kDone) {
        throw SpecViolation("hung");
      }
    }
    if (got[2] != kBottom && got[2] != 10 && got[2] != 11) {
      throw SpecViolation("index-2 output not a slot-0 value or ⊥");
    }
  });
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(RelaxedWrn, RejectsBadArguments) {
  EXPECT_THROW(RelaxedWrn(1), SimError);
  Runtime rt;
  RelaxedWrn rlx(3);
  rt.add_process([&](Context& ctx) {
    EXPECT_THROW(rlx.rlx_wrn(ctx, 3, 1), SimError);
    EXPECT_THROW(rlx.rlx_wrn(ctx, 0, kBottom), SimError);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

}  // namespace
}  // namespace subc
