// Failure-injection sweeps: crash processes at random points mid-algorithm
// and verify that (a) safety (validity / agreement / linearizability) still
// holds among survivors and (b) survivors terminate — the wait-freedom the
// papers' model demands. Crashes are injected through the CrashAdversary
// policy decorator (runtime/policy.hpp); the exhaustive variant folds the
// crash decision into the explored nondeterminism via `crash_requests`.
#include <gtest/gtest.h>

#include "subc/algorithms/partition_set_consensus.hpp"
#include "subc/algorithms/universal.hpp"
#include "subc/algorithms/wrn_from_sse.hpp"
#include "subc/algorithms/wrn_set_consensus.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/core/tasks.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/policy.hpp"

namespace subc {
namespace {

TEST(CrashInjection, Algorithm2SafetyAndProgressSurviveCrashes) {
  const int k = 4;
  std::vector<Value> inputs{10, 20, 30, 40};
  for (int victim = 0; victim < k; ++victim) {
    for (std::int64_t after = 0; after <= 1; ++after) {
      for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        Runtime rt;
        WrnSetConsensus algorithm(k);
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(algorithm.propose(
                ctx, p, inputs[static_cast<std::size_t>(p)]));
          });
        }
        RandomDriver inner(seed);
        CrashAdversary driver(inner,
                              {CrashAdversary::CrashPoint{victim, after}});
        const auto result = rt.run(driver);
        check_decided_if_done(result);
        check_validity(inputs, result.decisions);
        check_k_agreement(result.decisions, k - 1);
        for (int p = 0; p < k; ++p) {
          if (p != victim) {
            ASSERT_EQ(result.states[static_cast<std::size_t>(p)],
                      ProcState::kDone)
                << "survivor blocked: victim=" << victim << " seed=" << seed;
          }
        }
      }
    }
  }
}

TEST(CrashInjection, Algorithm5LinearizableDespiteCrashes) {
  // A crash inside Algorithm 5 leaves a pending operation; the history must
  // still be linearizable (pending ops may be linearized or dropped).
  const int k = 3;
  for (int victim = 0; victim < k; ++victim) {
    for (std::int64_t after = 1; after <= 5; ++after) {
      for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        Runtime rt;
        WrnFromSse object(k);
        History history;
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            object.one_shot_wrn(ctx, p, 100 + p, &history);
          });
        }
        RandomDriver inner(seed);
        CrashAdversary driver(inner,
                              {CrashAdversary::CrashPoint{victim, after}});
        const auto result = rt.run(driver);
        for (int p = 0; p < k; ++p) {
          if (p != victim) {
            ASSERT_EQ(result.states[static_cast<std::size_t>(p)],
                      ProcState::kDone);
          }
        }
        require_linearizable(OneShotWrnSpec{k}, history);
      }
    }
  }
}

TEST(CrashInjection, PartitionSetConsensusToleratesCrashes) {
  const int n = 6;
  std::vector<Value> inputs{1, 2, 3, 4, 5, 6};
  for (int victim = 0; victim < n; victim += 2) {
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
      Runtime rt;
      PartitionSetConsensus algorithm(n, 3, 2);
      for (int p = 0; p < n; ++p) {
        rt.add_process([&, p](Context& ctx) {
          ctx.decide(
              algorithm.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
        });
      }
      RandomDriver inner(seed);
      CrashAdversary driver(inner, {CrashAdversary::CrashPoint{victim, 0}});
      const auto result = rt.run(driver);
      check_decided_if_done(result);
      check_validity(inputs, result.decisions);
      check_k_agreement(result.decisions, algorithm.agreement());
      for (int p = 0; p < n; ++p) {
        if (p != victim) {
          ASSERT_EQ(result.states[static_cast<std::size_t>(p)],
                    ProcState::kDone);
        }
      }
    }
  }
}

TEST(CrashInjection, UniversalObjectSurvivorsStayLinearizable) {
  // Crash a process mid-operation in the universal construction: survivors
  // finish (the helping rule covers the victim's announced op) and the
  // recorded history stays linearizable.
  struct CounterSpec {
    struct State {
      Value total = 0;
    };
    [[nodiscard]] State initial() const { return {}; }
    bool apply(State& s, const std::vector<Value>& op,
               std::vector<Value>& response) const {
      response = {s.total};
      s.total += op[1];
      return true;
    }
    [[nodiscard]] std::string key(const State& s) const {
      return std::to_string(s.total);
    }
  };
  const int n = 3;
  for (int victim = 0; victim < n; ++victim) {
    for (std::int64_t after = 1; after <= 5; after += 2) {
      for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Runtime rt;
        UniversalObject<CounterSpec> counter(CounterSpec{}, n, 24);
        History history;
        for (int p = 0; p < n; ++p) {
          rt.add_process([&, p](Context& ctx) {
            const std::vector<Value> op{0, 10 + p};
            const auto h = history.invoke(p, op);
            const auto r = counter.apply(ctx, op);
            history.respond(h, r);
          });
        }
        RandomDriver inner(seed);
        CrashAdversary driver(inner,
                              {CrashAdversary::CrashPoint{victim, after}});
        const auto result = rt.run(driver);
        for (int p = 0; p < n; ++p) {
          if (p != victim) {
            ASSERT_EQ(result.states[static_cast<std::size_t>(p)],
                      ProcState::kDone);
          }
        }
        require_linearizable(CounterSpec{}, history);
      }
    }
  }
}

TEST(CrashInjection, ExhaustiveCrashPointsForAlgorithm2) {
  // Exhaustive over schedules *and* crash points: fold the crash decision
  // into the explored nondeterminism with a `crash_requests` override that
  // consults the explorer's own choose().
  const int k = 3;
  std::vector<Value> inputs{7, 8, 9};
  const auto result = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        WrnSetConsensus algorithm(k);
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(algorithm.propose(
                ctx, p, inputs[static_cast<std::size_t>(p)]));
          });
        }
        // Victim 0 crashes before taking its single step in half the
        // branches.
        struct Wrapper final : SchedulePolicy {
          SchedulePolicy* inner;
          bool decided_crash = false;
          std::uint64_t crash_requests(std::span<const int> enabled) override {
            if (!decided_crash) {
              decided_crash = true;
              if (inner->choose(2) == 1) {
                return 1ULL << 0;
              }
            }
            return inner->crash_requests(enabled);
          }
          std::size_t pick(std::span<const int> enabled,
                           std::span<const Access> footprints = {}) override {
            return inner->pick(enabled, footprints);
          }
          std::uint32_t choose(std::uint32_t arity) override {
            return inner->choose(arity);
          }
        };
        Wrapper wrapper;
        wrapper.inner = &driver;
        const auto run = rt.run(wrapper);
        check_decided_if_done(run);
        check_validity(inputs, run.decisions);
        check_k_agreement(run.decisions, k - 1);
      },
      Explorer::Options{.max_executions = 100'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

}  // namespace
}  // namespace subc
