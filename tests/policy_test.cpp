// Schedule-policy layer: PCT randomized priorities, seed determinism of the
// randomized policies, and the RecordingPolicy journal they are pinned with.
#include <gtest/gtest.h>

#include <array>
#include <thread>

#include "subc/objects/register.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/history.hpp"
#include "subc/runtime/policy.hpp"

namespace subc {
namespace {

// A small world with scheduling and object nondeterminism plus a recorded
// history, used to compare two runs of a policy end to end.
struct WorldRecord {
  std::string journal;
  std::string history_dump;
};

WorldRecord run_recorded(SchedulePolicy& policy) {
  RecordingPolicy recorder(policy);
  Runtime rt;
  RegisterArray<> regs(3, kBottom);
  History history;
  for (int p = 0; p < 3; ++p) {
    rt.add_process([&, p](Context& ctx) {
      const auto h = history.invoke(p, {p});
      regs[p].write(ctx, 10 + p);
      const Value seen = regs[(p + 1) % 3].read(ctx);
      const Value spice = ctx.choose(3);
      history.respond(h, {seen, spice});
    });
  }
  rt.run(recorder);
  return {recorder.format_journal(), history.dump()};
}

TEST(SeedDeterminism, RandomDriverSameSeedSameDecisionsAndHistory) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 12345ULL}) {
    RandomDriver a(seed);
    RandomDriver b(seed);
    const WorldRecord ra = run_recorded(a);
    const WorldRecord rb = run_recorded(b);
    EXPECT_EQ(ra.journal, rb.journal) << "seed=" << seed;
    EXPECT_EQ(ra.history_dump, rb.history_dump) << "seed=" << seed;
  }
}

TEST(SeedDeterminism, RandomDriverDifferentSeedsDiverge) {
  RandomDriver a(1);
  RandomDriver b(2);
  // Not a guarantee in general, but this world has 90 schedules — seeds 1
  // and 2 landing on the same one would itself be suspicious.
  EXPECT_NE(run_recorded(a).journal, run_recorded(b).journal);
}

TEST(SeedDeterminism, PctSameSeedSameDecisionsAndHistory) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 999ULL}) {
    PctPolicy a(seed, /*depth=*/3, /*horizon=*/64);
    PctPolicy b(seed, /*depth=*/3, /*horizon=*/64);
    const WorldRecord ra = run_recorded(a);
    const WorldRecord rb = run_recorded(b);
    EXPECT_EQ(ra.journal, rb.journal) << "seed=" << seed;
    EXPECT_EQ(ra.history_dump, rb.history_dump) << "seed=" << seed;
  }
}

TEST(SeedDeterminism, PctReplaysIdenticallyAcrossConsecutiveRuns) {
  // begin_run re-derives all PCT state from the seed, so one policy object
  // drives the same schedule again on its next run.
  PctPolicy policy(7, 2, 64);
  const WorldRecord first = run_recorded(policy);
  const WorldRecord second = run_recorded(policy);
  EXPECT_EQ(first.journal, second.journal);
  EXPECT_EQ(first.history_dump, second.history_dump);
}

TEST(SeedDeterminism, IdenticalAcrossThreadCounts) {
  // The decision trace depends only on the seed, never on which thread the
  // run happens on or how many run concurrently.
  const auto run_on_thread = [](std::uint64_t seed) {
    WorldRecord out;
    std::thread t([&]() {
      PctPolicy policy(seed, 3, 64);
      out = run_recorded(policy);
    });
    t.join();
    return out;
  };
  for (const std::uint64_t seed : {3ULL, 11ULL}) {
    PctPolicy here(seed, 3, 64);
    const WorldRecord main_thread = run_recorded(here);
    const WorldRecord worker_a = run_on_thread(seed);
    // Two runs racing on sibling threads still record identical journals.
    WorldRecord race_a;
    WorldRecord race_b;
    std::thread ta([&]() {
      PctPolicy policy(seed, 3, 64);
      race_a = run_recorded(policy);
    });
    std::thread tb([&]() {
      PctPolicy policy(seed, 3, 64);
      race_b = run_recorded(policy);
    });
    ta.join();
    tb.join();
    EXPECT_EQ(main_thread.journal, worker_a.journal) << "seed=" << seed;
    EXPECT_EQ(main_thread.journal, race_a.journal) << "seed=" << seed;
    EXPECT_EQ(main_thread.journal, race_b.journal) << "seed=" << seed;
    EXPECT_EQ(main_thread.history_dump, race_a.history_dump);
  }
}

TEST(PctPolicy, RejectsBadParameters) {
  EXPECT_THROW(PctPolicy(1, 0, 64), SimError);
  EXPECT_THROW(PctPolicy(1, 2, 0), SimError);
}

TEST(SeedDeterminism, DelayBoundedSameSeedSameDecisionsAndHistory) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 999ULL}) {
    DelayBoundedPolicy a(seed, /*delays=*/2, /*horizon=*/64);
    DelayBoundedPolicy b(seed, /*delays=*/2, /*horizon=*/64);
    const WorldRecord ra = run_recorded(a);
    const WorldRecord rb = run_recorded(b);
    EXPECT_EQ(ra.journal, rb.journal) << "seed=" << seed;
    EXPECT_EQ(ra.history_dump, rb.history_dump) << "seed=" << seed;
  }
}

TEST(SeedDeterminism, DelayBoundedReplaysIdenticallyAcrossConsecutiveRuns) {
  DelayBoundedPolicy policy(7, 2, 64);
  const WorldRecord first = run_recorded(policy);
  const WorldRecord second = run_recorded(policy);
  EXPECT_EQ(first.journal, second.journal);
  EXPECT_EQ(first.history_dump, second.history_dump);
}

TEST(DelayBoundedPolicy, RejectsBadParameters) {
  EXPECT_THROW(DelayBoundedPolicy(1, -1, 64), SimError);
  EXPECT_THROW(DelayBoundedPolicy(1, 2, 0), SimError);
}

// A choose-free world so delay-bounded journals compare against pure
// round-robin grant-for-grant (RoundRobinDriver's choose is always 0; the
// delay-bounded policy draws choices from its PRNG).
WorldRecord run_grants_only(SchedulePolicy& policy) {
  RecordingPolicy recorder(policy);
  Runtime rt;
  RegisterArray<> regs(3, kBottom);
  for (int p = 0; p < 3; ++p) {
    rt.add_process([&, p](Context& ctx) {
      for (int i = 0; i < 3; ++i) {
        regs[p].write(ctx, i);
      }
    });
  }
  rt.run(recorder);
  return {recorder.format_journal(), {}};
}

TEST(DelayBoundedPolicy, ZeroDelaysIsExactlyRoundRobin) {
  for (const std::uint64_t seed : {1ULL, 99ULL}) {
    DelayBoundedPolicy db(seed, /*delays=*/0, /*horizon=*/64);
    RoundRobinDriver rr;
    EXPECT_EQ(run_grants_only(db).journal, run_grants_only(rr).journal)
        << "seed=" << seed;
    EXPECT_EQ(db.delays_used(), 0);
  }
}

TEST(DelayBoundedPolicy, DelaysPerturbTheBaseSchedule) {
  RoundRobinDriver rr;
  const std::string base = run_grants_only(rr).journal;
  bool diverged = false;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    DelayBoundedPolicy db(seed, /*delays=*/3, /*horizon=*/16);
    const std::string j = run_grants_only(db).journal;
    EXPECT_LE(db.delays_used(), 3) << "seed=" << seed;
    if (j != base) {
      diverged = true;
    }
  }
  // A budget of 3 delays in a 9-step run perturbs round-robin for at least
  // one of eight seeds (in fact nearly all of them).
  EXPECT_TRUE(diverged);
}

TEST(DelayBoundedPolicy, DelayBudgetIsRespectedAndObservable) {
  // Every delay point lands in [0, horizon); with horizon 1 all of them
  // fire on the very first pick, so the budget is spent at once and the
  // rest of the run is pure round-robin from the delayed start.
  DelayBoundedPolicy db(3, /*delays=*/2, /*horizon=*/1);
  run_grants_only(db);
  EXPECT_EQ(db.delays_used(), 2);
}

TEST(PctPolicy, HighestPriorityProcessRunsSolo) {
  // With depth 1 there are no change points: whichever process draws the
  // top priority runs to completion before anyone else steps. The journal
  // must therefore grant one pid until it finishes.
  PctPolicy policy(5, 1, 64);
  RecordingPolicy recorder(policy);
  Runtime rt;
  RegisterArray<> regs(2, kBottom);
  for (int p = 0; p < 2; ++p) {
    rt.add_process([&, p](Context& ctx) {
      for (int i = 0; i < 4; ++i) {
        regs[p].write(ctx, i);
      }
    });
  }
  rt.run(recorder);
  int first_pid = -1;
  bool switched = false;
  int switches = 0;
  for (const auto& e : recorder.journal()) {
    if (e.kind != RecordingPolicy::Event::Kind::kGrant) {
      continue;
    }
    if (first_pid == -1) {
      first_pid = static_cast<int>(e.a);
    } else if (static_cast<int>(e.a) != first_pid && !switched) {
      switched = true;
    } else if (static_cast<int>(e.a) == first_pid && switched) {
      ++switches;  // returned to the first pid after leaving it: preemption
    }
  }
  EXPECT_EQ(switches, 0)
      << "depth-1 PCT preempted the top-priority process: "
      << recorder.format_journal();
}

// ---------------------------------------------------------------------------
// Capability: a depth-2 ordering bug that uniform random search essentially
// never hits, but PCT flushes with a handful of seeds.
//
// The world: p0 performs `kWork` writes and then sets a flag; p1 reads the
// flag once. The seeded "violation" fires only when p1 reads the flag
// *after* p0 completed everything — i.e. only when p0's entire 22-step run
// precedes p1's single step. A uniform random scheduler picks p0 at every
// of the first 22 binary decision points with probability 2^-22 ≈ 2e-7, so
// 10k seeds miss it (the test asserts they do). PCT gives p0 the top
// priority with probability 1/2 and then runs it solo — half of all seeds
// find the violation immediately.
// ---------------------------------------------------------------------------

constexpr int kWork = 21;

ExecutionBody rare_ordering_world() {
  return [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> cells(kWork, kBottom);
    Register<Value> flag(0);
    Value seen = -1;
    rt.add_process([&](Context& ctx) {
      for (int i = 0; i < kWork; ++i) {
        cells[i].write(ctx, i);
      }
      flag.write(ctx, 1);
    });
    rt.add_process([&](Context& ctx) { seen = flag.read(ctx); });
    rt.run(driver);
    if (seen == 1) {
      throw SpecViolation("p1 observed the flag after p0 finished everything");
    }
  };
}

TEST(PctCapability, TenThousandUniformRandomSchedulesMissTheBug) {
  const auto sweep = RandomSweep::run(rare_ordering_world(), 10'000,
                                      /*first_seed=*/1, /*threads=*/4);
  EXPECT_TRUE(sweep.ok()) << "uniform random unexpectedly found the bug at "
                             "seed "
                          << *sweep.failing_seed;
  EXPECT_EQ(sweep.runs, 10'000);
}

TEST(PctCapability, PctFindsTheBugWithinAFixedSeedSet) {
  // A small fixed set of seeds; at depth 1 each has probability 1/2. All
  // eight missing would be a 1-in-256 event — and the schedule is
  // deterministic per seed, so this test cannot flake.
  const ExecutionBody body = rare_ordering_world();
  bool found = false;
  std::uint64_t found_seed = 0;
  for (const std::uint64_t seed : {1, 2, 3, 4, 5, 6, 7, 8}) {
    PctPolicy policy(seed, /*depth=*/1, /*horizon=*/32);
    if (run_one(body, policy)) {
      found = true;
      found_seed = seed;
      break;
    }
  }
  EXPECT_TRUE(found) << "no PCT seed in the fixed set flushed the ordering "
                        "bug that uniform random misses";
  if (found) {
    // Reproducibility: the same seed finds it again.
    PctPolicy again(found_seed, 1, 32);
    EXPECT_TRUE(run_one(body, again).has_value());
  }
}

TEST(RecordingPolicy, JournalIsTransparent) {
  // Attaching the recorder must not change what the inner policy does.
  RandomDriver bare(99);
  const WorldRecord with_recorder = run_recorded(bare);

  // Re-run the same seed without the recorder and re-derive the grant
  // sequence from a second recording — identical journals mean the first
  // recorder did not perturb the inner policy's PRNG stream.
  RandomDriver fresh(99);
  const WorldRecord again = run_recorded(fresh);
  EXPECT_EQ(with_recorder.journal, again.journal);
  EXPECT_FALSE(with_recorder.journal.empty());
}

TEST(RecordingPolicy, ResetClearsTheJournal) {
  RoundRobinDriver rr;
  RecordingPolicy recorder(rr);
  Runtime rt;
  RegisterArray<> regs(2, kBottom);
  for (int p = 0; p < 2; ++p) {
    rt.add_process([&, p](Context& ctx) { regs[p].write(ctx, p); });
  }
  rt.run(recorder);
  EXPECT_FALSE(recorder.journal().empty());
  recorder.reset();
  EXPECT_TRUE(recorder.journal().empty());
}

}  // namespace
}  // namespace subc
