// Pins the exhaustive explorer's exact result grid on the reduction_test
// worlds (register, GAC, WRN, classic consensus): verdict, execution count
// and reduced_subtrees at fixed {reduction, threads}. The numbers were
// captured from the pre-policy-refactor explorer; any drift means the
// re-architecture changed exhaustive-search semantics, which it must not.
#include <gtest/gtest.h>

#include <array>

#include "subc/algorithms/classic_consensus.hpp"
#include "subc/core/tasks.hpp"
#include "subc/objects/onk.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/swap.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

struct Pin {
  const char* world;
  std::int64_t executions_none;
  std::int64_t executions_sleep;
  std::int64_t reduced_sleep;
};

ExecutionBody register_world() {
  return [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(3, kBottom);
    std::array<Value, 3> seen{kBottom, kBottom, kBottom};
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        regs[p].write(ctx, 10 + p);
        seen[static_cast<std::size_t>(p)] = regs[(p + 1) % 3].read(ctx);
      });
    }
    rt.run(driver);
    for (int p = 0; p < 3; ++p) {
      const Value v = seen[static_cast<std::size_t>(p)];
      if (v != kBottom && v != 10 + (p + 1) % 3) {
        throw SpecViolation("read a value nobody wrote to that cell");
      }
    }
  };
}

ExecutionBody gac_world() {
  static const std::vector<Value> inputs{200, 201, 202};
  return [](ScheduleDriver& driver) {
    Runtime rt;
    GacObject gac(1, 1);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(gac.propose(ctx, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_set_consensus(run, inputs, 2);
  };
}

ExecutionBody wrn_world() {
  return [](ScheduleDriver& driver) {
    Runtime rt;
    OneShotWrnObject wrn(3);
    std::array<Value, 3> got{kBottom, kBottom, kBottom};
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        got[static_cast<std::size_t>(p)] = wrn.wrn(ctx, p, 10 + p);
      });
    }
    rt.run(driver);
    for (const Value v : got) {
      if (v != kBottom && (v < 10 || v > 12)) {
        throw SpecViolation("1sWRN returned a never-written value");
      }
    }
  };
}

ExecutionBody consensus_world() {
  static const std::vector<Value> inputs{3, 9};
  return [](ScheduleDriver& driver) {
    Runtime rt;
    TwoConsensusShared shared;
    SwapRegister swap(kBottom);
    for (int p = 0; p < 2; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(consensus2_from_swap(
            ctx, shared, swap, p, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_validity(inputs, run.decisions);
    check_agreement(run.decisions);
  };
}

void expect_pinned(const ExecutionBody& body, const Pin& pin) {
  for (const int threads : {1, 4}) {
    Explorer::Options none;
    none.reduction = Reduction::kNone;
    none.threads = threads;
    const auto raw = Explorer::explore(body, none);
    EXPECT_TRUE(raw.ok()) << pin.world << ": " << *raw.violation;
    EXPECT_TRUE(raw.complete) << pin.world;
    EXPECT_EQ(raw.executions, pin.executions_none)
        << pin.world << " threads=" << threads;
    EXPECT_EQ(raw.reduced_subtrees, 0) << pin.world << " threads=" << threads;

    Explorer::Options sleep;
    sleep.reduction = Reduction::kSleepSets;
    sleep.threads = threads;
    const auto red = Explorer::explore(body, sleep);
    EXPECT_TRUE(red.ok()) << pin.world << ": " << *red.violation;
    EXPECT_TRUE(red.complete) << pin.world;
    EXPECT_EQ(red.executions, pin.executions_sleep)
        << pin.world << " threads=" << threads;
    EXPECT_EQ(red.reduced_subtrees, pin.reduced_sleep)
        << pin.world << " threads=" << threads;
  }
}

// Captured from the pre-refactor explorer (PR 2 head): the policy/observer
// re-architecture must not move any of these.
TEST(ExplorerEquivalencePin, RegisterWorld) {
  expect_pinned(register_world(), {"register", 90, 7, 28});
}

TEST(ExplorerEquivalencePin, GacWorld) {
  expect_pinned(gac_world(), {"gac", 6, 6, 0});
}

TEST(ExplorerEquivalencePin, WrnWorld) {
  expect_pinned(wrn_world(), {"wrn", 6, 6, 0});
}

TEST(ExplorerEquivalencePin, ClassicConsensusWorld) {
  expect_pinned(consensus_world(), {"consensus", 6, 2, 3});
}

}  // namespace
}  // namespace subc
