// Pins the exhaustive explorer's exact result grid on the reduction_test
// worlds (register, GAC, WRN, classic consensus): verdict, execution count
// and reduced_subtrees at fixed {engine, reduction, threads, max_crashes}.
// The crash-free numbers were captured from the pre-policy-refactor
// explorer; any drift means the re-architecture changed exhaustive-search
// semantics, which it must not.
//
// Every world exists in two forms — the fiber body and its stepped twin
// (subc/algorithms/stepped_bodies.hpp) — and both must hit the *same* pins:
// the two execution engines are required to produce bit-identical `Result`s
// (executions, reduced_subtrees, crash/stuck tallies, violations and their
// traces) across {kNone, kSleepSets} × threads {1, 4} × max_crashes {0, 1}.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>

#include "subc/algorithms/classic_consensus.hpp"
#include "subc/algorithms/stepped_bodies.hpp"
#include "subc/core/tasks.hpp"
#include "subc/objects/onk.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/swap.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

enum class Eng { kFiber, kStepped };

struct Pin {
  const char* world;
  std::int64_t executions_none;
  std::int64_t executions_sleep;
  std::int64_t reduced_sleep;
};

ExecutionBody register_world(Eng engine) {
  return [engine](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(3, kBottom);
    std::array<Value, 3> seen{kBottom, kBottom, kBottom};
    for (int p = 0; p < 3; ++p) {
      if (engine == Eng::kFiber) {
        rt.add_process([&, p](Context& ctx) {
          regs[p].write(ctx, 10 + p);
          seen[static_cast<std::size_t>(p)] = regs[(p + 1) % 3].read(ctx);
        });
      } else {
        rt.add_stepped(SteppedWriteThenRead{
            &regs[p], &regs[(p + 1) % 3], 10 + p,
            &seen[static_cast<std::size_t>(p)]});
      }
    }
    rt.run(driver);
    for (int p = 0; p < 3; ++p) {
      const Value v = seen[static_cast<std::size_t>(p)];
      if (v != kBottom && v != 10 + (p + 1) % 3) {
        throw SpecViolation("read a value nobody wrote to that cell");
      }
    }
  };
}

ExecutionBody gac_world(Eng engine) {
  static const std::vector<Value> inputs{200, 201, 202};
  return [engine](ScheduleDriver& driver) {
    Runtime rt;
    GacObject gac(1, 1);
    for (int p = 0; p < 3; ++p) {
      if (engine == Eng::kFiber) {
        rt.add_process([&, p](Context& ctx) {
          ctx.decide(gac.propose(ctx, inputs[static_cast<std::size_t>(p)]));
        });
      } else {
        rt.add_stepped(
            SteppedGacProposer{&gac, inputs[static_cast<std::size_t>(p)]});
      }
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_set_consensus(run, inputs, 2);
  };
}

ExecutionBody wrn_world(Eng engine) {
  return [engine](ScheduleDriver& driver) {
    Runtime rt;
    OneShotWrnObject wrn(3);
    std::array<Value, 3> got{kBottom, kBottom, kBottom};
    for (int p = 0; p < 3; ++p) {
      if (engine == Eng::kFiber) {
        rt.add_process([&, p](Context& ctx) {
          got[static_cast<std::size_t>(p)] = wrn.wrn(ctx, p, 10 + p);
        });
      } else {
        rt.add_stepped(SteppedOneShotWrn{
            &wrn, p, 10 + p, &got[static_cast<std::size_t>(p)]});
      }
    }
    rt.run(driver);
    for (const Value v : got) {
      if (v != kBottom && (v < 10 || v > 12)) {
        throw SpecViolation("1sWRN returned a never-written value");
      }
    }
  };
}

ExecutionBody consensus_world(Eng engine) {
  static const std::vector<Value> inputs{3, 9};
  return [engine](ScheduleDriver& driver) {
    Runtime rt;
    TwoConsensusShared shared;
    SwapRegister swap(kBottom);
    for (int p = 0; p < 2; ++p) {
      if (engine == Eng::kFiber) {
        rt.add_process([&, p](Context& ctx) {
          ctx.decide(consensus2_from_swap(
              ctx, shared, swap, p, inputs[static_cast<std::size_t>(p)]));
        });
      } else {
        rt.add_stepped(SteppedSwapConsensus{
            &shared, &swap, p, inputs[static_cast<std::size_t>(p)]});
      }
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_validity(inputs, run.decisions);
    check_agreement(run.decisions);
  };
}

const char* engine_name(Eng e) {
  return e == Eng::kFiber ? "fiber" : "stepped";
}

Explorer::Result explore(const ExecutionBody& body, Reduction reduction,
                         int threads, int max_crashes, bool stateful = false,
                         int max_recoveries = 0) {
  Explorer::Options opts;
  opts.reduction = reduction;
  opts.threads = threads;
  opts.max_crashes = max_crashes;
  opts.max_recoveries = max_recoveries;
  opts.stateful = stateful;
  if (max_crashes > 0) {
    opts.step_quota = 100'000;
  }
  return Explorer::explore(body, opts);
}

/// Every field of `Result` that characterizes the search must match between
/// the two runs — including any violation and its full decision string.
void expect_identical(const Explorer::Result& got,
                      const Explorer::Result& want) {
  EXPECT_EQ(got.executions, want.executions);
  EXPECT_EQ(got.reduced_subtrees, want.reduced_subtrees);
  EXPECT_EQ(got.crashed_executions, want.crashed_executions);
  EXPECT_EQ(got.recovered_executions, want.recovered_executions);
  EXPECT_EQ(got.stuck_executions, want.stuck_executions);
  EXPECT_EQ(got.complete, want.complete);
  EXPECT_EQ(got.violation.has_value(), want.violation.has_value());
  if (got.violation.has_value() && want.violation.has_value()) {
    EXPECT_EQ(*got.violation, *want.violation);
  }
  ASSERT_EQ(got.violating_trace.size(), want.violating_trace.size());
  for (std::size_t i = 0; i < got.violating_trace.size(); ++i) {
    const auto& g = got.violating_trace[i];
    const auto& w = want.violating_trace[i];
    EXPECT_EQ(g.chosen, w.chosen) << "decision " << i;
    EXPECT_EQ(g.arity, w.arity) << "decision " << i;
    EXPECT_EQ(g.crash, w.crash) << "decision " << i;
    EXPECT_EQ(g.recover, w.recover) << "decision " << i;
  }
}

void expect_pinned(const ExecutionBody& fiber_body,
                   const ExecutionBody& stepped_body, const Pin& pin) {
  // Crash-free grid: both engines must hit the historical pins exactly.
  for (const Eng engine : {Eng::kFiber, Eng::kStepped}) {
    const ExecutionBody& body =
        engine == Eng::kFiber ? fiber_body : stepped_body;
    for (const int threads : {1, 4}) {
      SCOPED_TRACE(std::string(pin.world) + " engine=" + engine_name(engine) +
                   " threads=" + std::to_string(threads));
      const auto raw = explore(body, Reduction::kNone, threads, 0);
      EXPECT_TRUE(raw.ok()) << *raw.violation;
      EXPECT_TRUE(raw.complete);
      EXPECT_EQ(raw.executions, pin.executions_none);
      EXPECT_EQ(raw.reduced_subtrees, 0);

      const auto red = explore(body, Reduction::kSleepSets, threads, 0);
      EXPECT_TRUE(red.ok()) << *red.violation;
      EXPECT_TRUE(red.complete);
      EXPECT_EQ(red.executions, pin.executions_sleep);
      EXPECT_EQ(red.reduced_subtrees, pin.reduced_sleep);
    }
  }

  // Crash axis (f = 1): no historical pins, so the serial fiber run is the
  // reference and every other {engine, threads} cell must match it
  // bit-for-bit — tallies, verdict, and (if a validator rejects crashed
  // worlds) the violation and its trace.
  for (const Reduction reduction : {Reduction::kNone, Reduction::kSleepSets}) {
    const auto reference = explore(fiber_body, reduction, 1, 1);
    for (const Eng engine : {Eng::kFiber, Eng::kStepped}) {
      const ExecutionBody& body =
          engine == Eng::kFiber ? fiber_body : stepped_body;
      for (const int threads : {1, 4}) {
        SCOPED_TRACE(std::string(pin.world) + " f=1 engine=" +
                     engine_name(engine) +
                     " threads=" + std::to_string(threads) + " reduction=" +
                     (reduction == Reduction::kNone ? "none" : "sleep"));
        expect_identical(explore(body, reduction, threads, 1), reference);
      }
    }
  }

  // Recovery axis (f = 1, r = 1): crashed processes may additionally
  // restart. Same discipline — serial fiber is the reference, every cell
  // matches bit-for-bit, and the restart branch must actually fire.
  for (const Reduction reduction : {Reduction::kNone, Reduction::kSleepSets}) {
    const auto reference = explore(fiber_body, reduction, 1, 1,
                                   /*stateful=*/false, /*max_recoveries=*/1);
    if (reference.ok()) {
      // Violating worlds may stop before any restart branch; clean worlds
      // must actually exercise one.
      EXPECT_GT(reference.recovered_executions, 0) << pin.world;
    }
    for (const Eng engine : {Eng::kFiber, Eng::kStepped}) {
      const ExecutionBody& body =
          engine == Eng::kFiber ? fiber_body : stepped_body;
      for (const int threads : {1, 4}) {
        SCOPED_TRACE(std::string(pin.world) + " f=1 r=1 engine=" +
                     engine_name(engine) +
                     " threads=" + std::to_string(threads) + " reduction=" +
                     (reduction == Reduction::kNone ? "none" : "sleep"));
        expect_identical(explore(body, reduction, threads, 1,
                                 /*stateful=*/false, /*max_recoveries=*/1),
                         reference);
      }
    }
  }
}

/// Stateful grid: the serial fiber run under `Options::stateful` is the
/// reference. The stepped twin must reproduce it bit-for-bit *including*
/// the stateful tallies (the two engines are required to fingerprint
/// identically); parallel cells must reach the same verdict and
/// completeness (the shared visited set makes the cut/execution split
/// timing-dependent, never the verdict); and the verdict must agree with
/// the unreduced search from `expect_pinned`. Any violation's trace must
/// replay.
void expect_stateful_equivalent(const ExecutionBody& fiber_body,
                                const ExecutionBody& stepped_body,
                                const char* world) {
  for (const int max_crashes : {0, 1}) {
    SCOPED_TRACE(std::string(world) +
                 " stateful f=" + std::to_string(max_crashes));
    const auto reference =
        explore(fiber_body, Reduction::kSleepSets, 1, max_crashes,
                /*stateful=*/true);
    const auto plain =
        explore(fiber_body, Reduction::kSleepSets, 1, max_crashes);
    EXPECT_EQ(reference.ok(), plain.ok());
    EXPECT_EQ(reference.complete, plain.complete);
    EXPECT_LE(reference.executions, plain.executions);

    const auto stepped = explore(stepped_body, Reduction::kSleepSets, 1,
                                 max_crashes, /*stateful=*/true);
    expect_identical(stepped, reference);
    EXPECT_EQ(stepped.stateful_cuts, reference.stateful_cuts);
    EXPECT_EQ(stepped.stateful_states, reference.stateful_states);

    for (const Eng engine : {Eng::kFiber, Eng::kStepped}) {
      const ExecutionBody& body =
          engine == Eng::kFiber ? fiber_body : stepped_body;
      SCOPED_TRACE(std::string("threads=4 engine=") + engine_name(engine));
      const auto par = explore(body, Reduction::kSleepSets, 4, max_crashes,
                               /*stateful=*/true);
      EXPECT_EQ(par.ok(), reference.ok());
      EXPECT_EQ(par.complete, reference.complete);
      if (par.violation.has_value()) {
        EXPECT_ANY_THROW(Explorer::replay(body, par.violating_trace));
      }
    }
  }
}

// Captured from the pre-refactor explorer (PR 2 head): the policy/observer
// re-architecture must not move any of these — and the stepped engine must
// reproduce them exactly.
TEST(ExplorerEquivalencePin, RegisterWorld) {
  expect_pinned(register_world(Eng::kFiber), register_world(Eng::kStepped),
                {"register", 90, 7, 28});
}

TEST(ExplorerEquivalencePin, GacWorld) {
  expect_pinned(gac_world(Eng::kFiber), gac_world(Eng::kStepped),
                {"gac", 6, 6, 0});
}

TEST(ExplorerEquivalencePin, WrnWorld) {
  expect_pinned(wrn_world(Eng::kFiber), wrn_world(Eng::kStepped),
                {"wrn", 6, 6, 0});
}

TEST(ExplorerEquivalencePin, ClassicConsensusWorld) {
  expect_pinned(consensus_world(Eng::kFiber), consensus_world(Eng::kStepped),
                {"consensus", 6, 2, 3});
}

TEST(ExplorerEquivalencePin, RegisterWorldStateful) {
  expect_stateful_equivalent(register_world(Eng::kFiber),
                             register_world(Eng::kStepped), "register");
}

TEST(ExplorerEquivalencePin, GacWorldStateful) {
  expect_stateful_equivalent(gac_world(Eng::kFiber), gac_world(Eng::kStepped),
                             "gac");
}

TEST(ExplorerEquivalencePin, WrnWorldStateful) {
  expect_stateful_equivalent(wrn_world(Eng::kFiber), wrn_world(Eng::kStepped),
                             "wrn");
}

TEST(ExplorerEquivalencePin, ClassicConsensusWorldStateful) {
  expect_stateful_equivalent(consensus_world(Eng::kFiber),
                             consensus_world(Eng::kStepped), "consensus");
}

}  // namespace
}  // namespace subc
