// Cross-module integration tests: the Theorem 2 equivalence loop executed
// end-to-end inside the simulator, algorithms stacked on derived (not
// atomic) substrates, and mixed-object worlds.
#include <gtest/gtest.h>

#include "subc/algorithms/wrn_anonymous.hpp"
#include "subc/algorithms/wrn_from_sse.hpp"
#include "subc/algorithms/wrn_set_consensus.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/core/hierarchy.hpp"
#include "subc/core/tasks.hpp"
#include "subc/objects/onk.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

// Theorem 2, both directions composed: the 1sWRN_k implemented by
// Algorithm 5 (from strong set election = (k,k−1)-set-consensus power) is
// plugged into Algorithm 2 to solve (k,k−1)-set consensus. The task
// properties and the linearizability of the inner object are both checked.
TEST(Integration, Theorem2LoopSetConsensusOnDerivedWrn) {
  for (const int k : {3, 4}) {
    std::vector<Value> inputs;
    for (int p = 0; p < k; ++p) {
      inputs.push_back(100 + p);
    }
    const auto result = RandomSweep::run(
        [&, k](ScheduleDriver& driver) {
          Runtime rt;
          WrnFromSse derived(k);  // Algorithm 5's implemented 1sWRN_k
          History history;
          for (int p = 0; p < k; ++p) {
            rt.add_process([&, p](Context& ctx) {
              // Algorithm 2 inlined over the derived object.
              const Value t = derived.one_shot_wrn(
                  ctx, p, inputs[static_cast<std::size_t>(p)], &history);
              ctx.decide(t != kBottom ? t
                                      : inputs[static_cast<std::size_t>(p)]);
            });
          }
          const auto run = rt.run(driver);
          check_all_done_and_decided(run);
          check_set_consensus(run, inputs, k - 1);
          require_linearizable(OneShotWrnSpec{k}, history);
        },
        400);
    EXPECT_TRUE(result.ok()) << "k=" << k << ": " << *result.violation;
  }
}

TEST(Integration, Theorem2LoopIsExhaustivelyCleanForK3Prefix) {
  std::vector<Value> inputs{100, 101, 102};
  const auto result = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        WrnFromSse derived(3);
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&, p](Context& ctx) {
            const Value t = derived.one_shot_wrn(
                ctx, p, inputs[static_cast<std::size_t>(p)]);
            ctx.decide(t != kBottom ? t
                                    : inputs[static_cast<std::size_t>(p)]);
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_set_consensus(run, inputs, 2);
      },
      Explorer::Options{.max_executions = 30'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
}

// Full register-grounded stack: Algorithm 3 where the renaming runs on the
// register-built snapshot (no atomic snapshot object anywhere below the
// 1sWRN objects).
TEST(Integration, Algorithm3OnRegisterBuiltSnapshots) {
  const int k = 3;
  std::vector<Value> inputs{11, 22, 33};
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        // SnapshotRenaming's register backing is selected inside
        // AnonymousSetConsensus via its own constructor; drive the variant
        // through a locally assembled pipeline instead.
        SnapshotRenaming renaming(k, /*use_register_snapshot=*/true);
        auto family = make_function_family(k, FunctionFamily::kCovering);
        std::vector<std::unique_ptr<RelaxedWrn>> rounds;
        for (std::size_t l = 0; l < family.size(); ++l) {
          rounds.push_back(std::make_unique<RelaxedWrn>(k));
        }
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            const int j = renaming.rename(ctx, p, 70 + p);
            for (std::size_t l = 0; l < family.size(); ++l) {
              const int index = family[l][static_cast<std::size_t>(j)];
              const Value t = rounds[l]->rlx_wrn(
                  ctx, index, inputs[static_cast<std::size_t>(p)]);
              if (t != kBottom) {
                ctx.decide(t);
                return;
              }
            }
            ctx.decide(inputs[static_cast<std::size_t>(p)]);
          });
        }
        const auto run = rt.run(driver, 10'000'000);
        check_all_done_and_decided(run);
        check_set_consensus(run, inputs, k - 1);
      },
      60);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

// A mixed world: one group of processes runs Algorithm 2 on WRN_4 while
// another runs 2-consensus on the O_{2,2} component 0 — object state stays
// isolated per object instance.
TEST(Integration, IndependentObjectsDoNotInterfere) {
  const auto result = RandomSweep::run(
      [](ScheduleDriver& driver) {
        Runtime rt;
        WrnSetConsensus wrn_task(4);
        OnkObject onk(2, 2);
        const std::vector<Value> wrn_inputs{1, 2, 3, 4};
        const std::vector<Value> onk_inputs{50, 60};
        std::vector<Value> onk_decisions(2, kBottom);
        for (int p = 0; p < 4; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(wrn_task.propose(
                ctx, p, wrn_inputs[static_cast<std::size_t>(p)]));
          });
        }
        for (int q = 0; q < 2; ++q) {
          rt.add_process([&, q](Context& ctx) {
            onk_decisions[static_cast<std::size_t>(q)] = onk.propose(
                ctx, 0, onk_inputs[static_cast<std::size_t>(q)]);
          });
        }
        const auto run = rt.run(driver);
        // WRN task: first 4 decisions satisfy (4,3)-set consensus.
        std::vector<Value> wrn_decisions(run.decisions.begin(),
                                         run.decisions.begin() + 4);
        check_validity(wrn_inputs, wrn_decisions);
        check_k_agreement(wrn_decisions, 3);
        // O_{2,2} consensus group agrees.
        check_validity(onk_inputs, onk_decisions);
        check_agreement(onk_decisions);
      },
      500);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

// The hierarchy calculus agrees with what the simulator realizes: for
// k < k', Algorithm 2 on 1sWRN_{k} used by k' processes (partitioned)
// achieves the agreement Theorem 41 predicts.
TEST(Integration, CalculusPredictsSimulatedPartitionAgreement) {
  const int k = 3;        // source objects: 1sWRN_3 ≡ (3,2)-SC
  const int k_prime = 5;  // target: 5 processes
  const int predicted = sc_partition_agreement(k_prime, k, k - 1);  // 2+2=4
  ASSERT_EQ(predicted, 4);
  std::vector<Value> inputs{10, 20, 30, 40, 50};
  int max_distinct = 0;
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        WrnSetConsensus group_a(k);
        WrnSetConsensus group_b(k);
        for (int p = 0; p < k_prime; ++p) {
          rt.add_process([&, p](Context& ctx) {
            WrnSetConsensus& group = p < k ? group_a : group_b;
            ctx.decide(group.propose(ctx, p % k,
                                     inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_set_consensus(run, inputs, predicted);
        max_distinct =
            std::max(max_distinct, distinct_decisions(run.decisions));
      },
      1500);
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_EQ(max_distinct, predicted);
}

}  // namespace
}  // namespace subc
