// Tests for Algorithm 2 ((k−1)-set consensus for k processes from WRN_k)
// and Algorithm 6 (m-set consensus for n processes) — Claims 3–9,
// Lemma 39 and Corollary 40, machine-checked.
#include "subc/algorithms/wrn_set_consensus.hpp"

#include <gtest/gtest.h>

#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

std::vector<Value> distinct_inputs(int n) {
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(100 + 7 * i);
  }
  return inputs;
}

// Exhaustive / randomized sweep over k: Algorithm 2 satisfies validity,
// (k−1)-agreement and wait-freedom (Claims 3, 6; Corollary 8, 9).
class Algorithm2Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Algorithm2Sweep, SolvesKMinus1SetConsensus) {
  const int k = GetParam();
  const std::vector<Value> inputs = distinct_inputs(k);
  const ExecutionBody body = [&](ScheduleDriver& driver) {
    Runtime rt;
    WrnSetConsensus algorithm(k);
    for (int p = 0; p < k; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(
            algorithm.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto result = rt.run(driver);
    check_all_done_and_decided(result);  // Claim 3: wait-free
    check_set_consensus(result, inputs, k - 1);
  };
  if (k <= 6) {
    const auto r = Explorer::explore(body);
    EXPECT_TRUE(r.ok()) << *r.violation;
    EXPECT_TRUE(r.complete);
  } else {
    const auto r = RandomSweep::run(body, 2000);
    EXPECT_TRUE(r.ok()) << *r.violation;
  }
}

INSTANTIATE_TEST_SUITE_P(AllK, Algorithm2Sweep,
                         ::testing::Values(3, 4, 5, 6, 7, 8));

TEST(Algorithm2, FirstProposerDecidesItsOwnValue) {
  // Claim 4, on every schedule: identify the first process to perform WRN
  // and check it decided its own proposal.
  const int k = 3;
  const auto result = Explorer::explore([&](ScheduleDriver& driver) {
    Runtime rt;
    WrnSetConsensus algorithm(k);
    std::vector<int> wrn_order;  // pids in WRN completion order
    const std::vector<Value> inputs = distinct_inputs(k);
    for (int p = 0; p < k; ++p) {
      rt.add_process([&, p](Context& ctx) {
        // propose() performs exactly one shared step (the WRN); record
        // completion order by observing it afterwards (still atomic wrt
        // other processes because recording is process-local code).
        const Value d =
            algorithm.propose(ctx, p, inputs[static_cast<std::size_t>(p)]);
        wrn_order.push_back(p);
        ctx.decide(d);
      });
    }
    const auto run = rt.run(driver);
    const int first = wrn_order.front();
    if (run.decisions[static_cast<std::size_t>(first)] !=
        inputs[static_cast<std::size_t>(first)]) {
      throw SpecViolation("first WRN invoker did not decide its own value");
    }
    // Claim 5: the last process decides the proposal of its successor.
    const int last = wrn_order.back();
    if (run.decisions[static_cast<std::size_t>(last)] !=
        inputs[static_cast<std::size_t>((last + 1) % k)]) {
      throw SpecViolation("last WRN invoker did not adopt its successor");
    }
  });
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(Algorithm2, DecisionIsOwnOrSuccessorProposal) {
  // Claim 6 refined: P_i decides v_i or v_{(i+1) mod k}.
  const int k = 4;
  const std::vector<Value> inputs = distinct_inputs(k);
  const auto result = Explorer::explore([&](ScheduleDriver& driver) {
    Runtime rt;
    WrnSetConsensus algorithm(k);
    for (int p = 0; p < k; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(
            algorithm.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto run = rt.run(driver);
    for (int p = 0; p < k; ++p) {
      const Value d = run.decisions[static_cast<std::size_t>(p)];
      if (d != inputs[static_cast<std::size_t>(p)] &&
          d != inputs[static_cast<std::size_t>((p + 1) % k)]) {
        throw SpecViolation("decision neither own nor successor proposal");
      }
    }
  });
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Algorithm2, KMinus1BoundIsTight) {
  // Some schedule realizes exactly k−1 distinct decisions.
  const int k = 4;
  const std::vector<Value> inputs = distinct_inputs(k);
  int max_distinct = 0;
  const auto result = Explorer::explore([&](ScheduleDriver& driver) {
    Runtime rt;
    WrnSetConsensus algorithm(k);
    for (int p = 0; p < k; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(
            algorithm.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto run = rt.run(driver);
    max_distinct = std::max(max_distinct, distinct_decisions(run.decisions));
  });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(max_distinct, k - 1);
}

TEST(Algorithm2, SubsetParticipationStillValid) {
  // Fewer than k participants: validity and (k−1)-agreement still hold
  // (trivially); every participant terminates.
  const int k = 5;
  const std::vector<Value> inputs = distinct_inputs(k);
  const auto result = Explorer::explore([&](ScheduleDriver& driver) {
    Runtime rt;
    WrnSetConsensus algorithm(k);
    const std::vector<int> participants{1, 3};
    for (const int p : participants) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(
            algorithm.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_validity(inputs, run.decisions);
  });
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Algorithm2, WorksWithFullWrnObjectToo) {
  const int k = 3;
  const std::vector<Value> inputs = distinct_inputs(k);
  const auto result = Explorer::explore([&](ScheduleDriver& driver) {
    Runtime rt;
    WrnSetConsensus algorithm(k, /*one_shot=*/false);
    for (int p = 0; p < k; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(
            algorithm.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_set_consensus(run, inputs, k - 1);
  });
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Algorithm2, RejectsBadParameters) {
  EXPECT_THROW(WrnSetConsensus(2), SimError);
  WrnSetConsensus algorithm(3);
  Runtime rt;
  rt.add_process([&](Context& ctx) {
    EXPECT_THROW(algorithm.propose(ctx, 3, 1), SimError);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

// Algorithm 6 sweep over (n, k): m-set consensus with
// m = (k−1)⌊n/k⌋ + min(k−1, n mod k) (Lemma 39 / Corollary 40).
struct RatioCase {
  int n;
  int k;
};

class Algorithm6Sweep : public ::testing::TestWithParam<RatioCase> {};

TEST_P(Algorithm6Sweep, SolvesMSetConsensus) {
  const auto [n, k] = GetParam();
  const std::vector<Value> inputs = distinct_inputs(n);
  WrnRatioSetConsensus probe(n, k);
  const int m = probe.agreement();
  // Paper's headline bound: (k−1)/k ≤ m/n always holds for our m.
  EXPECT_LE((k - 1) * n, k * m + k * (k - 1));
  const ExecutionBody body = [&, n = n, k = k](ScheduleDriver& driver) {
    Runtime rt;
    WrnRatioSetConsensus algorithm(n, k);
    for (int p = 0; p < n; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(
            algorithm.propose(ctx, p, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_set_consensus(run, inputs, m);
  };
  if (n <= 5) {
    const auto r = Explorer::explore(body);
    EXPECT_TRUE(r.ok()) << *r.violation;
  } else {
    const auto r = RandomSweep::run(body, 1000);
    EXPECT_TRUE(r.ok()) << *r.violation;
  }
}

INSTANTIATE_TEST_SUITE_P(Ratio, Algorithm6Sweep,
                         ::testing::Values(RatioCase{3, 3}, RatioCase{4, 3},
                                           RatioCase{5, 3}, RatioCase{6, 3},
                                           RatioCase{9, 3}, RatioCase{12, 3},
                                           RatioCase{8, 4}, RatioCase{10, 4},
                                           RatioCase{10, 5}, RatioCase{7, 4}));

TEST(Algorithm6, PaperExampleWrn3Gives12_8) {
  // "WRN_3 objects can be used for implementing (12, 8)-set consensus."
  WrnRatioSetConsensus algorithm(12, 3);
  EXPECT_EQ(algorithm.agreement(), 8);
}

TEST(Algorithm6, EachGroupAchievesLemma39Bound) {
  // Lemma 39: every aligned group of k processes decides at most k−1
  // distinct values among themselves.
  const int n = 6;
  const int k = 3;
  const std::vector<Value> inputs = distinct_inputs(n);
  const auto result = RandomSweep::run(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        WrnRatioSetConsensus algorithm(n, k);
        for (int p = 0; p < n; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(algorithm.propose(ctx, p,
                                         inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        for (int g = 0; g < n / k; ++g) {
          std::vector<Value> group(
              run.decisions.begin() + g * k,
              run.decisions.begin() + (g + 1) * k);
          check_k_agreement(group, k - 1);
        }
      },
      2000);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

}  // namespace
}  // namespace subc
