// TraceObserver layer: event streams from the kernel, observer composition,
// access counters, history mirroring, JSONL export/import, and the run_one
// funnel's thread-default installation.
#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "subc/checking/trace_jsonl.hpp"
#include "subc/checking/trace_viz.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/set_consensus_object.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/history.hpp"
#include "subc/runtime/observer.hpp"
#include "subc/runtime/policy.hpp"

namespace subc {
namespace {

// Collects raw events for structural assertions.
struct EventLog final : TraceObserver {
  std::vector<std::string> lines;

  void on_run_begin(int num_processes) override {
    lines.push_back("begin " + std::to_string(num_processes));
  }
  void on_step(const StepEvent& e) override {
    lines.push_back("step p" + std::to_string(e.pid) + " @" +
                    std::to_string(e.step));
  }
  void on_choose(int pid, std::uint32_t arity, std::uint32_t chosen) override {
    lines.push_back("choose p" + std::to_string(pid) + " " +
                    std::to_string(chosen) + "/" + std::to_string(arity));
  }
  void on_crash(int pid, std::int64_t step) override {
    lines.push_back("crash p" + std::to_string(pid) + " @" +
                    std::to_string(step));
  }
  void on_violation(std::string_view message) override {
    lines.push_back("violation " + std::string(message));
  }
  void on_run_end(std::int64_t total_steps, bool quiescent) override {
    lines.push_back("end " + std::to_string(total_steps) +
                    (quiescent ? " quiescent" : " stuck"));
  }
};

TEST(Observer, KernelEmitsBeginStepsEnd) {
  EventLog log;
  Runtime rt;
  rt.set_observer(&log);
  RegisterArray<> regs(2, kBottom);
  for (int p = 0; p < 2; ++p) {
    rt.add_process([&, p](Context& ctx) { regs[p].write(ctx, p); });
  }
  RoundRobinDriver rr;
  const auto result = rt.run(rr);
  ASSERT_FALSE(log.lines.empty());
  EXPECT_EQ(log.lines.front(), "begin 2");
  EXPECT_EQ(log.lines.back(),
            "end " + std::to_string(result.total_steps) + " quiescent");
  std::int64_t steps = 0;
  for (const auto& l : log.lines) {
    if (l.rfind("step ", 0) == 0) {
      ++steps;
    }
  }
  EXPECT_EQ(steps, result.total_steps);
}

TEST(Observer, ChooseAndCrashEventsArrive) {
  EventLog log;
  Runtime rt;
  rt.set_observer(&log);
  SetConsensusObject onk(3, 2);  // nondeterministic: propose() calls choose()
  rt.add_process([&](Context& ctx) { onk.propose(ctx, 5); });
  rt.add_process([&](Context& ctx) { onk.propose(ctx, 6); });
  RoundRobinDriver rr;
  rt.crash(1);  // before run: pid 1 never steps
  rt.run(rr);
  bool saw_choose = false;
  bool saw_crash = false;
  for (const auto& l : log.lines) {
    saw_choose = saw_choose || l.rfind("choose ", 0) == 0;
    saw_crash = saw_crash || l == "crash p1 @0";
  }
  EXPECT_TRUE(saw_choose);
  EXPECT_TRUE(saw_crash);
}

TEST(Observer, ChainFansOutInOrder) {
  EventLog a;
  EventLog b;
  ObserverChain chain;
  chain.add(a);
  chain.add(b);
  Runtime rt;
  rt.set_observer(&chain);
  RegisterArray<> regs(2, kBottom);
  for (int p = 0; p < 2; ++p) {
    rt.add_process([&, p](Context& ctx) { regs[p].write(ctx, p); });
  }
  RoundRobinDriver rr;
  rt.run(rr);
  EXPECT_EQ(a.lines, b.lines);
  EXPECT_FALSE(a.lines.empty());
}

TEST(Observer, AccessCountersTally) {
  AccessCounters counters;
  Runtime rt;
  rt.set_observer(&counters);
  RegisterArray<> regs(2, kBottom);
  std::array<Value, 2> seen{};
  for (int p = 0; p < 2; ++p) {
    rt.add_process([&, p](Context& ctx) {
      regs[p].write(ctx, 10 + p);
      seen[static_cast<std::size_t>(p)] = regs[(p + 1) % 2].read(ctx);
    });
  }
  RoundRobinDriver rr;
  const auto result = rt.run(rr);
  EXPECT_EQ(counters.runs(), 1);
  EXPECT_EQ(counters.steps(), result.total_steps);
  EXPECT_EQ(counters.steps_of_kind(AccessKind::kWrite), 2);
  EXPECT_EQ(counters.steps_of_kind(AccessKind::kRead), 2);
  EXPECT_EQ(counters.objects_touched(), 2);
  EXPECT_EQ(counters.steps_on_object(1) + counters.steps_on_object(2),
            counters.steps());
  EXPECT_EQ(counters.crashes(), 0);
  EXPECT_EQ(counters.violations(), 0);
}

TEST(Observer, HistorySinkStreamsAndRecorderMirrors) {
  HistoryRecorder recorder;
  History source;
  source.set_sink(&recorder);
  const auto h0 = source.invoke(0, {1, 100});
  const auto h1 = source.invoke(1, {2, 200});
  source.respond(h1, {7});
  source.respond(h0, {});
  EXPECT_EQ(recorder.history().dump(), source.dump());
  EXPECT_EQ(recorder.history().completed(), 2u);
  recorder.reset();
  EXPECT_TRUE(recorder.history().entries().empty());
}

TEST(Observer, RunOneInstallsThreadDefaultForBodyConstructedRuntimes) {
  // The body builds its own Runtime; the observer still sees its events
  // because run_one installs it as the thread default.
  AccessCounters counters;
  RoundRobinDriver rr;
  const auto violation = run_one(
      [](ScheduleDriver& driver) {
        Runtime rt;
        RegisterArray<> regs(2, kBottom);
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) { regs[p].write(ctx, p); });
        }
        rt.run(driver);
      },
      rr, &counters);
  EXPECT_FALSE(violation.has_value());
  EXPECT_EQ(counters.runs(), 1);
  EXPECT_GT(counters.steps(), 0);
}

TEST(Observer, RunOneReportsViolationsToObserverAndCaller) {
  ViolationCollector collector;
  RoundRobinDriver rr;
  const auto violation = run_one(
      [](ScheduleDriver&) { throw SpecViolation("seeded failure"); }, rr,
      &collector);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(*violation, "seeded failure");
  EXPECT_EQ(collector.count(), 1);
  EXPECT_EQ(collector.messages().front(), "seeded failure");
}

TEST(Observer, ScopedObserverNestsAndRestores) {
  EventLog outer;
  EventLog inner;
  EXPECT_EQ(thread_default_observer(), nullptr);
  {
    ScopedObserver a(&outer);
    EXPECT_EQ(thread_default_observer(), &outer);
    {
      ScopedObserver b(&inner);
      EXPECT_EQ(thread_default_observer(), &inner);
      ScopedObserver mask(nullptr);
      EXPECT_EQ(thread_default_observer(), nullptr);
    }
    EXPECT_EQ(thread_default_observer(), &outer);
  }
  EXPECT_EQ(thread_default_observer(), nullptr);
}

// The observer must be a pure sink: attaching one to an exhaustive search
// changes none of the result fields.
TEST(Observer, ExplorerResultsIdenticalWithAndWithoutObserver) {
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(3, kBottom);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) { regs[p].write(ctx, p); });
    }
    rt.run(driver);
  };
  for (const auto reduction : {Reduction::kNone, Reduction::kSleepSets}) {
    for (const int threads : {1, 4}) {
      Explorer::Options plain;
      plain.reduction = reduction;
      plain.threads = threads;
      const auto base = Explorer::explore(body, plain);

      AccessCounters counters;
      Explorer::Options observed = plain;
      observed.observer = &counters;
      const auto with = Explorer::explore(body, observed);

      EXPECT_EQ(base.executions, with.executions);
      EXPECT_EQ(base.reduced_subtrees, with.reduced_subtrees);
      EXPECT_EQ(base.complete, with.complete);
      EXPECT_EQ(base.ok(), with.ok());
      // Every completed execution begins a run; cut attempts (sleep-set
      // skips, frontier cuts) begin runs too, so >= in general and == only
      // for the serial unreduced search.
      EXPECT_GE(counters.runs(), with.executions);
      if (reduction == Reduction::kNone && threads == 1) {
        EXPECT_EQ(counters.runs(), with.executions);
      }
      EXPECT_EQ(counters.violations(), 0);
    }
  }
}

TEST(ProgressTicker, CountsExecutionsAndEmitsLines) {
  std::ostringstream sink;
  // Period 0: every completed run crosses the tick threshold.
  ProgressTicker ticker(/*period_seconds=*/0.0, &sink);
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(3, kBottom);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) { regs[p].write(ctx, p); });
    }
    rt.run(driver);
  };
  Explorer::Options opts;
  opts.reduction = Reduction::kNone;
  opts.observer = &ticker;
  const auto result = Explorer::explore(body, opts);
  ASSERT_TRUE(result.ok());

  const auto snap = ticker.snapshot();
  EXPECT_EQ(snap.executions, result.executions);
  EXPECT_EQ(snap.violations, 0);
  EXPECT_EQ(snap.reduced, 0);  // reduction disabled
  EXPECT_DOUBLE_EQ(snap.reduction_factor, 1.0);
  EXPECT_GT(snap.executions_per_sec, 0.0);

  // One line per completed execution at period 0, each carrying the tallies.
  const std::string out = sink.str();
  EXPECT_NE(out.find("[progress] execs="), std::string::npos);
  EXPECT_NE(out.find("violations=0"), std::string::npos);
}

TEST(ProgressTicker, TracksReductionSkips) {
  ProgressTicker ticker(/*period_seconds=*/1e9, nullptr);  // never prints
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(3, kBottom);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) { regs[p].write(ctx, p); });
    }
    rt.run(driver);
  };
  Explorer::Options opts;
  opts.reduction = Reduction::kSleepSets;
  opts.observer = &ticker;
  const auto result = Explorer::explore(body, opts);
  ASSERT_TRUE(result.ok());

  const auto snap = ticker.snapshot();
  EXPECT_EQ(snap.executions, result.executions);
  EXPECT_EQ(snap.reduced, result.reduced_subtrees);
  EXPECT_GT(snap.reduced, 0);
  EXPECT_GT(snap.reduction_factor, 1.0);
}

TEST(ProgressTicker, CountsViolationsAndStaysVerdictNeutral) {
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(2, kBottom);
    rt.add_process([&](Context& ctx) { regs[0].write(ctx, 1); });
    rt.add_process([&](Context& ctx) {
      if (regs[0].read(ctx) == Value(1)) {
        throw SpecViolation("saw the write");
      }
    });
    rt.run(driver);
  };
  for (const int threads : {1, 4}) {
    Explorer::Options plain;
    plain.threads = threads;
    const auto base = Explorer::explore(body, plain);

    ProgressTicker ticker(/*period_seconds=*/1e9, nullptr);
    Explorer::Options observed = plain;
    observed.observer = &ticker;
    const auto with = Explorer::explore(body, observed);

    // Verdict-neutral: attaching the ticker changes nothing.
    EXPECT_EQ(base.executions, with.executions);
    EXPECT_EQ(base.ok(), with.ok());
    EXPECT_EQ(base.violation.has_value(), with.violation.has_value());

    ASSERT_FALSE(with.ok());
    EXPECT_GE(ticker.snapshot().violations, 1);
    if (threads == 1) {
      EXPECT_EQ(ticker.snapshot().executions, with.executions);
    } else {
      // Parallel workers may complete runs past the canonical winner before
      // cancellation lands; the result truncates, the raw event stream
      // doesn't.
      EXPECT_GE(ticker.snapshot().executions, with.executions);
    }
  }
}

TEST(ProgressTicker, ParallelSearchAggregatesAcrossWorkers) {
  ProgressTicker ticker(/*period_seconds=*/1e9, nullptr);
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(4, kBottom);
    for (int p = 0; p < 4; ++p) {
      rt.add_process([&, p](Context& ctx) { regs[p].write(ctx, p); });
    }
    rt.run(driver);
  };
  Explorer::Options opts;
  opts.threads = 4;
  opts.reduction = Reduction::kSleepSets;
  opts.observer = &ticker;
  const auto result = Explorer::explore(body, opts);
  ASSERT_TRUE(result.ok());

  const auto snap = ticker.snapshot();
  EXPECT_EQ(snap.executions, result.executions);
  EXPECT_EQ(snap.reduced, result.reduced_subtrees);
}

TEST(Observer, RandomSweepFeedsObserver) {
  AccessCounters counters;
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(2, kBottom);
    for (int p = 0; p < 2; ++p) {
      rt.add_process([&, p](Context& ctx) { regs[p].write(ctx, p); });
    }
    rt.run(driver);
  };
  const auto sweep = RandomSweep::run(body, 25, 1, /*threads=*/1, &counters);
  EXPECT_TRUE(sweep.ok());
  EXPECT_EQ(counters.runs(), 25);
}

TEST(TraceJsonl, RoundTripsHistoryIntoTraceViz) {
  std::ostringstream sink;
  JsonlTraceWriter writer(sink);
  RoundRobinDriver rr;
  std::string original_dump;
  const auto violation = run_one(
      [&original_dump](ScheduleDriver& driver) {
        Runtime rt;
        RegisterArray<> regs(2, kBottom);
        History history;
        history.set_sink(thread_default_observer());
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) {
            const auto h = history.invoke(p, {p, 100 + p});
            regs[p].write(ctx, 100 + p);
            const Value seen = regs[(p + 1) % 2].read(ctx);
            history.respond(h, {seen});
          });
        }
        rt.run(driver);
        original_dump = history.dump();
      },
      rr, &writer);
  EXPECT_FALSE(violation.has_value());

  const ParsedTrace parsed = parse_trace_jsonl(sink.str());
  EXPECT_EQ(parsed.runs, 1);
  EXPECT_GT(parsed.steps, 0);
  EXPECT_EQ(parsed.total_steps, parsed.steps);
  EXPECT_TRUE(parsed.quiescent);
  EXPECT_TRUE(parsed.violations.empty());
  // The reconstructed history is entry-for-entry identical...
  EXPECT_EQ(parsed.history.dump(), original_dump);
  // ...and renders into the space-time diagram without further plumbing.
  const std::string diagram = render_history(parsed.history);
  EXPECT_NE(diagram.find("p0"), std::string::npos);
  EXPECT_NE(diagram.find("p1"), std::string::npos);
}

TEST(TraceJsonl, ViolationMessagesSurviveEscaping) {
  std::ostringstream sink;
  JsonlTraceWriter writer(sink);
  RoundRobinDriver rr;
  const std::string nasty = "line1\nline2\t\"quoted\" back\\slash";
  const auto violation = run_one(
      [&](ScheduleDriver&) { throw SpecViolation(nasty); }, rr, &writer);
  ASSERT_TRUE(violation.has_value());
  const ParsedTrace parsed = parse_trace_jsonl(sink.str());
  ASSERT_EQ(parsed.violations.size(), 1u);
  EXPECT_EQ(parsed.violations.front(), nasty);
}

TEST(TraceJsonl, BottomValuesRoundTrip) {
  std::ostringstream sink;
  JsonlTraceWriter writer(sink);
  History history;
  history.set_sink(&writer);
  const auto h = history.invoke(0, {0, 7});
  history.respond(h, {kBottom});
  const ParsedTrace parsed = parse_trace_jsonl(sink.str());
  ASSERT_EQ(parsed.history.entries().size(), 1u);
  EXPECT_EQ(parsed.history.entries()[0].response.front(), kBottom);
  EXPECT_EQ(parsed.history.dump(), history.dump());
}

TEST(TraceJsonl, ParserRejectsGarbage) {
  EXPECT_THROW(parse_trace_jsonl("{\"ev\":\"mystery\"}"), SimError);
  EXPECT_THROW(parse_trace_jsonl("{\"ev\":\"respond\",\"pid\":0,\"handle\":3,"
                                 "\"t\":1,\"resp\":[]}"),
               SimError);
}

}  // namespace
}  // namespace subc
