// Tests for the classic consensus constructions: the consensus-number
// positive facts (2-consensus from swap / T&S / fetch&add / queue;
// n-consensus from n-consensus objects and from O_{n,k}), plus the WRN
// boundary — the same protocol solves 2-consensus on WRN_2 and breaks on
// WRN_k, k ≥ 3.
#include "subc/algorithms/classic_consensus.hpp"

#include <gtest/gtest.h>

#include "subc/core/consensus_number.hpp"
#include "subc/objects/compare_and_swap.hpp"
#include "subc/objects/sticky_register.hpp"
#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

const std::vector<std::vector<Value>> kTwoProcInputs{
    {0, 1}, {1, 0}, {5, 5}, {3, 9}};

TEST(ClassicConsensus, TwoFromSwap) {
  const auto check = check_consensus_algorithm(
      [](ScheduleDriver& driver, const std::vector<Value>& inputs) {
        Runtime rt;
        TwoConsensusShared shared;
        SwapRegister swap(kBottom);
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(consensus2_from_swap(
                ctx, shared, swap, p, inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_validity(inputs, run.decisions);
        check_agreement(run.decisions);
      },
      kTwoProcInputs);
  EXPECT_TRUE(check.ok()) << *check.violation;
  EXPECT_TRUE(check.exhaustive);
}

TEST(ClassicConsensus, TwoFromTestAndSet) {
  const auto check = check_consensus_algorithm(
      [](ScheduleDriver& driver, const std::vector<Value>& inputs) {
        Runtime rt;
        TwoConsensusShared shared;
        TestAndSet tas;
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(consensus2_from_tas(
                ctx, shared, tas, p, inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_validity(inputs, run.decisions);
        check_agreement(run.decisions);
      },
      kTwoProcInputs);
  EXPECT_TRUE(check.ok()) << *check.violation;
}

TEST(ClassicConsensus, TwoFromFetchAdd) {
  const auto check = check_consensus_algorithm(
      [](ScheduleDriver& driver, const std::vector<Value>& inputs) {
        Runtime rt;
        TwoConsensusShared shared;
        FetchAdd fa(0);
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(consensus2_from_fetch_add(
                ctx, shared, fa, p, inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_validity(inputs, run.decisions);
        check_agreement(run.decisions);
      },
      kTwoProcInputs);
  EXPECT_TRUE(check.ok()) << *check.violation;
}

TEST(ClassicConsensus, TwoFromQueue) {
  const auto check = check_consensus_algorithm(
      [](ScheduleDriver& driver, const std::vector<Value>& inputs) {
        Runtime rt;
        TwoConsensusShared shared;
        FifoQueue queue{0};  // pre-loaded winner token
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(consensus2_from_queue(
                ctx, shared, queue, p, inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_validity(inputs, run.decisions);
        check_agreement(run.decisions);
      },
      kTwoProcInputs);
  EXPECT_TRUE(check.ok()) << *check.violation;
}

TEST(ClassicConsensus, SoloProcessDecidesOwnValue) {
  Runtime rt;
  TwoConsensusShared shared;
  SwapRegister swap(kBottom);
  Value decided = kBottom;
  rt.add_process([&](Context& ctx) {
    decided = consensus2_from_swap(ctx, shared, swap, 0, 7);
  });
  RoundRobinDriver driver;
  rt.run(driver);
  EXPECT_EQ(decided, 7);
}

class ConsensusObjectSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConsensusObjectSweep, NConsensusFromObject) {
  const int n = GetParam();
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(50 + i);
  }
  const auto check = check_consensus_algorithm(
      [n](ScheduleDriver& driver, const std::vector<Value>& in) {
        Runtime rt;
        ConsensusObject object(n);
        for (int p = 0; p < n; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(consensus_from_object(
                ctx, object, in[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_validity(in, run.decisions);
        check_agreement(run.decisions);
      },
      {inputs});
  EXPECT_TRUE(check.ok()) << *check.violation;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConsensusObjectSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

struct OnkCase {
  int n;
  int k;
};

class OnkConsensusSweep : public ::testing::TestWithParam<OnkCase> {};

TEST_P(OnkConsensusSweep, NConsensusFromOnk) {
  const auto [n, k] = GetParam();
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(60 + i);
  }
  const auto check = check_consensus_algorithm(
      [n = n, k = k](ScheduleDriver& driver, const std::vector<Value>& in) {
        Runtime rt;
        OnkObject object(n, k);
        for (int p = 0; p < n; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(consensus_from_onk(
                ctx, object, in[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_validity(in, run.decisions);
        check_agreement(run.decisions);
      },
      {inputs});
  EXPECT_TRUE(check.ok()) << *check.violation;
}

INSTANTIATE_TEST_SUITE_P(Sizes, OnkConsensusSweep,
                         ::testing::Values(OnkCase{2, 1}, OnkCase{2, 3},
                                           OnkCase{3, 2}, OnkCase{4, 2},
                                           OnkCase{5, 3}));

TEST(WrnBoundary, Wrn2SolvesTwoConsensus) {
  // WRN_2 is SWAP: the write-mine-read-next protocol is a correct
  // 2-consensus algorithm — exhaustively validated.
  const auto check = check_consensus_algorithm(
      [](ScheduleDriver& driver, const std::vector<Value>& inputs) {
        Runtime rt;
        WrnObject wrn(2);
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(consensus2_attempt_from_wrn(
                ctx, wrn, p, inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_validity(inputs, run.decisions);
        check_agreement(run.decisions);
      },
      kTwoProcInputs);
  EXPECT_TRUE(check.ok()) << *check.violation;
  EXPECT_TRUE(check.exhaustive);
}

class WrnAttemptFails : public ::testing::TestWithParam<int> {};

TEST_P(WrnAttemptFails, SameProtocolDisagreesOnWrnKForKAtLeast3) {
  // Theorem 1's executable face: the protocol that works on WRN_2 violates
  // agreement on WRN_k, k ≥ 3, and the explorer exhibits the schedule.
  const int k = GetParam();
  const auto violation = find_consensus_violation(
      [k](ScheduleDriver& driver, const std::vector<Value>& inputs) {
        Runtime rt;
        WrnObject wrn(k);
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(consensus2_attempt_from_wrn(
                ctx, wrn, p, inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_agreement(run.decisions);
      },
      {0, 1});
  ASSERT_TRUE(violation.has_value()) << "k=" << k;
  EXPECT_NE(violation->find("agreement"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllK, WrnAttemptFails, ::testing::Values(3, 4, 5, 8));

TEST(GacBoundary, GacSolvesNConsensusButNaiveNPlus1Fails) {
  // GAC(n,i) gives consensus to n processes (block 0)...
  for (const auto [n, i] : {std::pair{2, 1}, {2, 2}, {3, 1}}) {
    std::vector<Value> inputs;
    for (int p = 0; p < n; ++p) {
      inputs.push_back(10 + p);
    }
    const auto check = check_consensus_algorithm(
        [n = n, i = i](ScheduleDriver& driver, const std::vector<Value>& in) {
          Runtime rt;
          GacObject gac(n, i);
          for (int p = 0; p < n; ++p) {
            rt.add_process([&, p](Context& ctx) {
              ctx.decide(consensus_attempt_from_gac(
                  ctx, gac, in[static_cast<std::size_t>(p)]));
            });
          }
          const auto run = rt.run(driver);
          check_all_done_and_decided(run);
          check_validity(in, run.decisions);
          check_agreement(run.decisions);
        },
        {inputs});
    EXPECT_TRUE(check.ok()) << "n=" << n << " i=" << i << ": "
                            << *check.violation;
  }
  // ...but n+1 processes on the same object disagree under some schedule.
  const auto violation = find_consensus_violation(
      [](ScheduleDriver& driver, const std::vector<Value>& inputs) {
        Runtime rt;
        GacObject gac(2, 1);  // n = 2: block size 2
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(consensus_attempt_from_gac(
                ctx, gac, inputs[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_agreement(run.decisions);
      },
      {1, 2, 3});
  EXPECT_TRUE(violation.has_value());
}

class CasConsensusSweep : public ::testing::TestWithParam<int> {};

TEST_P(CasConsensusSweep, CasSolvesConsensusForAnyN) {
  // The contrast class at the top of the hierarchy: one CAS register gives
  // consensus for any number of processes (consensus number ∞).
  const int n = GetParam();
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(70 + i);
  }
  const auto check = check_consensus_algorithm(
      [n](ScheduleDriver& driver, const std::vector<Value>& in) {
        Runtime rt;
        CompareAndSwap cas;
        for (int p = 0; p < n; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(consensus_from_cas(
                ctx, cas, in[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_validity(in, run.decisions);
        check_agreement(run.decisions);
      },
      {inputs});
  EXPECT_TRUE(check.ok()) << *check.violation;
  EXPECT_TRUE(check.exhaustive);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CasConsensusSweep,
                         ::testing::Values(1, 2, 3, 4, 6));

class StickyConsensusSweep : public ::testing::TestWithParam<int> {};

TEST_P(StickyConsensusSweep, StickyRegisterSolvesConsensusForAnyN) {
  const int n = GetParam();
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(90 + i);
  }
  const auto check = check_consensus_algorithm(
      [n](ScheduleDriver& driver, const std::vector<Value>& in) {
        Runtime rt;
        StickyRegister sticky;
        for (int p = 0; p < n; ++p) {
          rt.add_process([&, p](Context& ctx) {
            ctx.decide(consensus_from_sticky(
                ctx, sticky, in[static_cast<std::size_t>(p)]));
          });
        }
        const auto run = rt.run(driver);
        check_all_done_and_decided(run);
        check_validity(in, run.decisions);
        check_agreement(run.decisions);
      },
      {inputs});
  EXPECT_TRUE(check.ok()) << *check.violation;
  EXPECT_TRUE(check.exhaustive);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StickyConsensusSweep,
                         ::testing::Values(1, 2, 4, 6));

TEST(StickyRegisterObject, FirstWriteWins) {
  Runtime rt;
  StickyRegister sticky;
  rt.add_process([&](Context& ctx) {
    EXPECT_EQ(sticky.read(ctx), kBottom);
    EXPECT_EQ(sticky.stick(ctx, 5), 5);
    EXPECT_EQ(sticky.stick(ctx, 9), 5);  // ignored
    EXPECT_EQ(sticky.read(ctx), 5);
    EXPECT_THROW(sticky.stick(ctx, kBottom), SimError);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

TEST(CompareAndSwapObject, Semantics) {
  Runtime rt;
  CompareAndSwap cas(5);
  rt.add_process([&](Context& ctx) {
    EXPECT_EQ(cas.compare_and_swap(ctx, 4, 9), 5);  // mismatch: no effect
    EXPECT_EQ(cas.read(ctx), 5);
    EXPECT_EQ(cas.compare_and_swap(ctx, 5, 9), 5);  // hit: swapped
    EXPECT_EQ(cas.read(ctx), 9);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

TEST(ClassicConsensus, RoleValidation) {
  Runtime rt;
  TwoConsensusShared shared;
  SwapRegister swap(kBottom);
  rt.add_process([&](Context& ctx) {
    EXPECT_THROW(consensus2_from_swap(ctx, shared, swap, 2, 1), SimError);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

}  // namespace
}  // namespace subc
