// Tests for the MWMR-from-SWMR register: linearizability against the
// register spec under exhaustive and random schedules, agreement with the
// native MWMR register sequentially.
#include "subc/algorithms/mwmr_register.hpp"

#include <gtest/gtest.h>

#include "subc/checking/linearizability.hpp"
#include "subc/objects/register.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

/// Sequential MWMR register spec: op {0, v} = write; op {1} = read.
struct RegisterSpec {
  struct State {
    Value value = kBottom;
  };
  [[nodiscard]] State initial() const { return {}; }
  bool apply(State& s, const std::vector<Value>& op,
             std::vector<Value>& response) const {
    if (op[0] == 0) {
      s.value = op[1];
      response = {};
    } else {
      response = {s.value};
    }
    return true;
  }
  [[nodiscard]] std::string key(const State& s) const {
    return to_string(s.value);
  }
};

TEST(MwmrFromSwmr, SequentialSemanticsMatchNativeRegister) {
  Runtime rt;
  MwmrFromSwmr built(3);
  Register<> native(kBottom);
  rt.add_process([&](Context& ctx) {
    EXPECT_EQ(built.read(ctx), native.read(ctx));
    for (const auto& [slot, v] :
         {std::pair{0, Value{5}}, {2, Value{7}}, {1, Value{9}},
          {0, Value{11}}}) {
      built.write(ctx, slot, v);
      native.write(ctx, v);
      EXPECT_EQ(built.read(ctx), native.read(ctx));
    }
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

TEST(MwmrFromSwmr, LinearizableUnderExhaustiveSchedules) {
  // 2 writers + 1 reader, every schedule, history checked against the spec.
  const auto result = Explorer::explore(
      [](ScheduleDriver& driver) {
        Runtime rt;
        MwmrFromSwmr reg(2);
        History history;
        for (int w = 0; w < 2; ++w) {
          rt.add_process([&, w](Context& ctx) {
            const auto h = history.invoke(w, {0, 10 + w});
            reg.write(ctx, w, 10 + w);
            history.respond(h, {});
          });
        }
        rt.add_process([&](Context& ctx) {
          const auto h = history.invoke(2, {1});
          const Value got = reg.read(ctx);
          history.respond(h, {got});
        });
        rt.run(driver);
        require_linearizable(RegisterSpec{}, history);
      },
      Explorer::Options{.max_executions = 300'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(MwmrFromSwmr, ConcurrentWritersConvergeUnderRandomSchedules) {
  const auto result = RandomSweep::run(
      [](ScheduleDriver& driver) {
        Runtime rt;
        MwmrFromSwmr reg(4);
        History history;
        for (int w = 0; w < 4; ++w) {
          rt.add_process([&, w](Context& ctx) {
            {
              const auto h = history.invoke(w, {0, 100 + w});
              reg.write(ctx, w, 100 + w);
              history.respond(h, {});
            }
            {
              const auto h = history.invoke(w, {1});
              history.respond(h, {reg.read(ctx)});
            }
          });
        }
        rt.run(driver);
        require_linearizable(RegisterSpec{}, history);
      },
      800);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(MwmrFromSwmr, InitialValueVisibleBeforeAnyWrite) {
  Runtime rt;
  MwmrFromSwmr reg(2, /*initial=*/42);
  rt.add_process([&](Context& ctx) { EXPECT_EQ(reg.read(ctx), 42); });
  RoundRobinDriver driver;
  rt.run(driver);
}

}  // namespace
}  // namespace subc
