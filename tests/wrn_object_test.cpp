// Unit tests for the WRN_k and 1sWRN_k objects (§3, Algorithm 1) and the
// OneShotWrnSpec sequential specification.
#include "subc/objects/wrn.hpp"

#include <gtest/gtest.h>

#include "subc/runtime/explorer.hpp"
#include "subc/runtime/runtime.hpp"

namespace subc {
namespace {

template <class Body>
Runtime::RunResult solo(Body body) {
  Runtime rt;
  rt.add_process([&](Context& ctx) { body(ctx); });
  RoundRobinDriver driver;
  return rt.run(driver);
}

TEST(WrnObject, SequentialSemanticsMatchAlgorithm1) {
  WrnObject wrn(3);
  solo([&](Context& ctx) {
    // Fresh object: every slot ⊥.
    EXPECT_EQ(wrn.wrn(ctx, 0, 10), kBottom);  // reads slot 1
    EXPECT_EQ(wrn.wrn(ctx, 2, 30), 10);       // reads slot 0
    EXPECT_EQ(wrn.wrn(ctx, 1, 20), 30);       // reads slot 2
    // Overwrites are visible: slot 0 rewritten, slot 2 reads it.
    EXPECT_EQ(wrn.wrn(ctx, 0, 11), 20);
    EXPECT_EQ(wrn.wrn(ctx, 2, 31), 11);
  });
}

TEST(WrnObject, WrapAroundIndexReadsSlotZero) {
  WrnObject wrn(4);
  solo([&](Context& ctx) {
    wrn.wrn(ctx, 0, 100);
    EXPECT_EQ(wrn.wrn(ctx, 3, 400), 100);  // (3+1) mod 4 = 0
  });
}

TEST(WrnObject, RejectsIllegalArguments) {
  EXPECT_THROW(WrnObject(1), SimError);
  WrnObject wrn(3);
  solo([&](Context& ctx) {
    EXPECT_THROW(wrn.wrn(ctx, -1, 1), SimError);
    EXPECT_THROW(wrn.wrn(ctx, 3, 1), SimError);
    EXPECT_THROW(wrn.wrn(ctx, 0, kBottom), SimError);
  });
}

TEST(WrnObject, Wrn2BehavesLikeWriteMineReadYours) {
  // WRN_2 is SWAP (§3): writing slot b and reading slot 1−b.
  WrnObject wrn(2);
  solo([&](Context& ctx) {
    EXPECT_EQ(wrn.wrn(ctx, 0, 5), kBottom);
    EXPECT_EQ(wrn.wrn(ctx, 1, 6), 5);
    EXPECT_EQ(wrn.wrn(ctx, 0, 7), 6);
  });
}

TEST(OneShotWrn, SingleUsePerIndexWorks) {
  OneShotWrnObject wrn(3);
  solo([&](Context& ctx) {
    EXPECT_EQ(wrn.wrn(ctx, 1, 21), kBottom);
    EXPECT_EQ(wrn.wrn(ctx, 0, 11), 21);
    EXPECT_EQ(wrn.wrn(ctx, 2, 31), 11);
  });
}

TEST(OneShotWrn, IndexReuseHangsUndetectably) {
  Runtime rt;
  OneShotWrnObject wrn(3);
  rt.add_process([&](Context& ctx) {
    wrn.wrn(ctx, 0, 1);
    wrn.wrn(ctx, 0, 2);  // illegal reuse: hangs here
    FAIL() << "must not be reached";
  });
  rt.add_process([&](Context& ctx) { wrn.wrn(ctx, 1, 3); });
  RoundRobinDriver driver;
  const auto result = rt.run(driver);
  EXPECT_EQ(result.states[0], ProcState::kHung);
  EXPECT_EQ(result.states[1], ProcState::kDone);
  EXPECT_FALSE(result.quiescent);
}

TEST(OneShotWrn, ReuseByDifferentProcessAlsoHangs) {
  Runtime rt;
  OneShotWrnObject wrn(3);
  rt.add_process([&](Context& ctx) { wrn.wrn(ctx, 0, 1); });
  rt.add_process([&](Context& ctx) { wrn.wrn(ctx, 0, 2); });
  ScriptedDriver driver({0, 1});
  const auto result = rt.run(driver);
  EXPECT_EQ(result.states[0], ProcState::kDone);
  EXPECT_EQ(result.states[1], ProcState::kHung);
}

TEST(OneShotWrnSpec, AppliesAlgorithm1Semantics) {
  const OneShotWrnSpec spec{3};
  auto state = spec.initial();
  std::vector<Value> response;
  ASSERT_TRUE(spec.apply(state, {0, 10}, response));
  EXPECT_EQ(response, (std::vector<Value>{kBottom}));
  ASSERT_TRUE(spec.apply(state, {2, 30}, response));
  EXPECT_EQ(response, (std::vector<Value>{10}));
  // Index reuse is illegal.
  EXPECT_FALSE(spec.apply(state, {0, 99}, response));
  ASSERT_TRUE(spec.apply(state, {1, 20}, response));
  EXPECT_EQ(response, (std::vector<Value>{30}));
}

TEST(OneShotWrnSpec, KeyDistinguishesStates) {
  const OneShotWrnSpec spec{3};
  auto a = spec.initial();
  auto b = spec.initial();
  std::vector<Value> response;
  spec.apply(a, {0, 1}, response);
  EXPECT_NE(spec.key(a), spec.key(b));
  spec.apply(b, {0, 1}, response);
  EXPECT_EQ(spec.key(a), spec.key(b));
}

// Property sweep: under every schedule, concurrent distinct-index 1sWRN
// invocations return either ⊥ or the value written at the successor index.
class OneShotWrnProperty : public ::testing::TestWithParam<int> {};

TEST_P(OneShotWrnProperty, ReturnsSuccessorValueOrBottom) {
  const int k = GetParam();
  const auto result = Explorer::explore(
      [k](ScheduleDriver& driver) {
        Runtime rt;
        OneShotWrnObject wrn(k);
        std::vector<Value> got(static_cast<std::size_t>(k), kBottom - 0);
        for (int p = 0; p < k; ++p) {
          rt.add_process([&, p](Context& ctx) {
            got[static_cast<std::size_t>(p)] = wrn.wrn(ctx, p, 100 + p);
          });
        }
        rt.run(driver);
        for (int p = 0; p < k; ++p) {
          const Value g = got[static_cast<std::size_t>(p)];
          const Value successor = 100 + ((p + 1) % k);
          if (g != kBottom && g != successor) {
            throw SpecViolation("WRN returned neither ⊥ nor successor");
          }
        }
      },
      Explorer::Options{.max_executions = 200'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
  if (k <= 4) {
    EXPECT_TRUE(result.complete);
  }
}

INSTANTIATE_TEST_SUITE_P(AllK, OneShotWrnProperty, ::testing::Values(3, 4, 5));

}  // namespace
}  // namespace subc
