// Tests for adopt-commit: validity, coherence and convergence checked
// exhaustively, plus the classic usage pattern (repeated rounds stay safe).
#include "subc/algorithms/adopt_commit.hpp"

#include <gtest/gtest.h>

#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

using Outcome = AdoptCommit::Outcome;

void check_adopt_commit_properties(const std::vector<Outcome>& outcomes,
                                   const std::vector<Value>& proposals) {
  // Validity + coherence.
  Value committed = kBottom;
  for (const Outcome& o : outcomes) {
    if (o.value == kBottom) {
      continue;  // did not run
    }
    bool proposed = false;
    for (const Value p : proposals) {
      proposed = proposed || p == o.value;
    }
    if (!proposed) {
      throw SpecViolation("adopt-commit returned a non-proposal");
    }
    if (o.grade == Grade::kCommit) {
      if (committed != kBottom && committed != o.value) {
        throw SpecViolation("two different values committed");
      }
      committed = o.value;
    }
  }
  if (committed != kBottom) {
    for (const Outcome& o : outcomes) {
      if (o.value != kBottom && o.value != committed) {
        throw SpecViolation("coherence violated: commit " +
                            to_string(committed) + " vs return " +
                            to_string(o.value));
      }
    }
  }
}

TEST(AdoptCommit, PropertiesHoldExhaustivelyWithMixedProposals) {
  const std::vector<Value> proposals{10, 20, 10};
  const auto result = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        AdoptCommit ac(3);
        std::vector<Outcome> outcomes(3);
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&, p](Context& ctx) {
            outcomes[static_cast<std::size_t>(p)] =
                ac.propose(ctx, p, proposals[static_cast<std::size_t>(p)]);
          });
        }
        rt.run(driver);
        check_adopt_commit_properties(outcomes, proposals);
      },
      Explorer::Options{.max_executions = 500'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(AdoptCommit, ConvergenceAllSameValueCommitsEverywhere) {
  const auto result = Explorer::explore(
      [](ScheduleDriver& driver) {
        Runtime rt;
        AdoptCommit ac(3);
        std::vector<Outcome> outcomes(3);
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&, p](Context& ctx) {
            outcomes[static_cast<std::size_t>(p)] = ac.propose(ctx, p, 7);
          });
        }
        rt.run(driver);
        for (const Outcome& o : outcomes) {
          if (o != (Outcome{Grade::kCommit, 7})) {
            throw SpecViolation("convergence violated");
          }
        }
      },
      Explorer::Options{.max_executions = 500'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

TEST(AdoptCommit, SoloProposerCommits) {
  Runtime rt;
  AdoptCommit ac(4);
  rt.add_process([&](Context& ctx) {
    const Outcome o = ac.propose(ctx, 1, 99);
    EXPECT_EQ(o, (Outcome{Grade::kCommit, 99}));
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

TEST(AdoptCommit, ConflictCanForceAdoptButNeverInventValues) {
  // With two conflicting proposals, some schedule yields adopt grades; no
  // schedule yields two different commits. Also record that conflicts do
  // occur (the adopt branch is exercised).
  bool saw_adopt = false;
  const auto result = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        AdoptCommit ac(2);
        std::vector<Outcome> outcomes(2);
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) {
            outcomes[static_cast<std::size_t>(p)] =
                ac.propose(ctx, p, 100 + p);
          });
        }
        rt.run(driver);
        check_adopt_commit_properties(outcomes, {100, 101});
        for (const Outcome& o : outcomes) {
          saw_adopt = saw_adopt || o.grade == Grade::kAdopt;
        }
      },
      Explorer::Options{.max_executions = 500'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(saw_adopt);
}

TEST(AdoptCommit, RepeatedRoundsConvergeOnceAligned) {
  // The canonical usage: carry the adopted value into the next round; once
  // a round sees aligned proposals, everyone commits.
  Runtime rt;
  AdoptCommit round1(2);
  AdoptCommit round2(2);
  std::vector<Outcome> final_outcomes(2);
  rt.add_process([&](Context& ctx) {
    const Outcome o1 = round1.propose(ctx, 0, 1);
    final_outcomes[0] = round2.propose(ctx, 0, o1.value);
  });
  rt.add_process([&](Context& ctx) {
    const Outcome o1 = round1.propose(ctx, 1, 2);
    final_outcomes[1] = round2.propose(ctx, 1, o1.value);
  });
  // Sequential schedule: round 1 resolves to the first value; round 2
  // commits it.
  std::vector<int> script;
  for (int i = 0; i < 10; ++i) {
    script.push_back(0);
  }
  for (int i = 0; i < 10; ++i) {
    script.push_back(1);
  }
  ScriptedDriver driver(script);
  rt.run(driver);
  EXPECT_EQ(final_outcomes[0].value, final_outcomes[1].value);
}

TEST(AdoptCommit, ParameterValidation) {
  EXPECT_THROW(AdoptCommit(0), SimError);
  Runtime rt;
  AdoptCommit ac(2);
  rt.add_process([&](Context& ctx) {
    EXPECT_THROW(ac.propose(ctx, 0, kBottom), SimError);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

}  // namespace
}  // namespace subc
