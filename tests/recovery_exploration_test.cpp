// Crash-recovery exploration (Explorer::Options::max_recoveries), the
// durability axis of the object zoo (Durability::kDurable/kVolatile), and
// the recoverable-consensus machine-check: one durable sticky register
// solves recoverable consensus at n = 2 on both engines, the volatile
// variant is convicted with a canonical, replayable counterexample
// (docs/adversaries.md "Crash-recovery exploration").
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "subc/algorithms/stepped_bodies.hpp"
#include "subc/checking/trace_jsonl.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/sticky_register.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/observer.hpp"
#include "subc/runtime/policy.hpp"
#include "subc/runtime/runtime.hpp"

namespace subc {
namespace {

// ---------------------------------------------------------------------------
// Recovery branching on a hand-countable world.
// ---------------------------------------------------------------------------

TEST(RecoveryExploration, RecoveryBranchingOnTinyWorldIsExhaustive) {
  // 2 processes x 1 write each, f = 1, r = 1. Crash-free schedules still
  // count 2; every other execution lands a crash, and a subset of those
  // additionally restarts the victim — who then finishes as a second
  // incarnation. The (states, incarnations) outcomes pin all three worlds:
  // untouched, crash-stop, and crash-and-restart.
  using Outcome = std::pair<std::vector<ProcState>, std::vector<std::uint32_t>>;
  std::set<Outcome> outcomes;
  Explorer::Options opts;
  opts.reduction = Reduction::kNone;
  opts.max_crashes = 1;
  opts.max_recoveries = 1;
  const auto result = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        RegisterArray<> regs(2, kBottom);
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) { regs[p].write(ctx, p); });
        }
        const auto run = rt.run(driver);
        outcomes.insert(
            {run.states, {rt.incarnation_of(0), rt.incarnation_of(1)}});
      },
      opts);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.complete);
  EXPECT_GT(result.crashed_executions, 0);
  EXPECT_GT(result.recovered_executions, 0);
  // A recovery presupposes a crash, so the recovered executions are a strict
  // subset of the crashed ones (the crash-stop continuations remain).
  EXPECT_LT(result.recovered_executions, result.crashed_executions);
  EXPECT_EQ(result.executions, 2 + result.crashed_executions);
  using PS = ProcState;
  // Crash-free, crash-stop, and crash-and-restart outcomes all reachable.
  EXPECT_TRUE(outcomes.contains({{PS::kDone, PS::kDone}, {0, 0}}));
  EXPECT_TRUE(outcomes.contains({{PS::kCrashed, PS::kDone}, {0, 0}}));
  EXPECT_TRUE(outcomes.contains({{PS::kDone, PS::kCrashed}, {0, 0}}));
  EXPECT_TRUE(outcomes.contains({{PS::kDone, PS::kDone}, {1, 0}}));
  EXPECT_TRUE(outcomes.contains({{PS::kDone, PS::kDone}, {0, 1}}));
}

TEST(RecoveryExploration, RecoveryBudgetZeroIsTheBaseline) {
  // max_recoveries = 0 (the default) keeps crash exploration exactly the
  // crash-stop search: no crashed execution restarts, and executions still
  // split into the crash-free base count plus the crashed ones.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(2, kBottom);
    for (int p = 0; p < 2; ++p) {
      rt.add_process([&, p](Context& ctx) {
        regs[p].write(ctx, p);
        regs[(p + 1) % 2].read(ctx);
      });
    }
    rt.run(driver);
  };
  Explorer::Options plain;
  plain.reduction = Reduction::kNone;
  Explorer::Options crash_only = plain;
  crash_only.max_crashes = 1;
  const auto base = Explorer::explore(body, plain);
  const auto a = Explorer::explore(body, crash_only);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(a.complete);
  EXPECT_GT(a.crashed_executions, 0);
  EXPECT_EQ(a.recovered_executions, 0);
  EXPECT_EQ(a.executions, base.executions + a.crashed_executions);
}

TEST(RecoveryExploration, RecoveriesNeverFireWithoutCrashes) {
  // A recovery budget without a crash budget has nothing to restart: the
  // search is the plain one, bit for bit.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(2, kBottom);
    for (int p = 0; p < 2; ++p) {
      rt.add_process([&, p](Context& ctx) { regs[p].write(ctx, p); });
    }
    rt.run(driver);
  };
  Explorer::Options plain;
  plain.reduction = Reduction::kNone;
  Explorer::Options idle = plain;
  idle.max_recoveries = 2;
  const auto a = Explorer::explore(body, plain);
  const auto b = Explorer::explore(body, idle);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(b.crashed_executions, 0);
  EXPECT_EQ(b.recovered_executions, 0);
}

TEST(RecoveryExploration, NegativeMaxRecoveriesRejected) {
  Explorer::Options opts;
  opts.max_recoveries = -1;
  try {
    Explorer::explore([](ScheduleDriver&) {}, opts);
    FAIL() << "negative max_recoveries was accepted";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("max_recoveries"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// The recoverable-consensus machine-check. One sticky register, two
// proposers, each deciding what stuck. Durable: solves recoverable
// consensus (every crash/restart placement agrees). Volatile: convicted —
// a crash wipes the stuck value, a recovered incarnation re-sticks into the
// wiped register and decides against a survivor's earlier decision.
// ---------------------------------------------------------------------------

void require_consensus(const Runtime::RunResult& run) {
  Value decided = kBottom;
  for (std::size_t p = 0; p < run.decisions.size(); ++p) {
    const Value d = run.decisions[p];
    if (d == kBottom) {
      continue;  // crashed-for-good proposers decide nothing
    }
    if (d != 100 && d != 101) {
      throw SpecViolation("validity: process " + std::to_string(p) +
                          " decided unproposed value " + to_string(d));
    }
    if (decided == kBottom) {
      decided = d;
    } else if (d != decided) {
      throw SpecViolation("agreement: decisions " + to_string(decided) +
                          " and " + to_string(d));
    }
  }
}

ExecutionBody sticky_consensus_body(Durability durability, Engine engine) {
  return [durability, engine](ScheduleDriver& driver) {
    Runtime rt;
    StickyRegister sticky(durability);
    if (engine == Engine::kFiber) {
      for (int p = 0; p < 2; ++p) {
        rt.add_process([&sticky, p](Context& ctx) {
          ctx.decide(consensus_from_sticky(ctx, sticky, 100 + p));
        });
      }
    } else {
      for (int p = 0; p < 2; ++p) {
        rt.add_stepped(SteppedStickyConsensus{&sticky, 100 + p});
      }
    }
    const auto run = rt.run(driver);
    require_consensus(run);
  };
}

TEST(RecoverableConsensus, DurableStickySolvesRecoverableConsensus) {
  // ∀ schedules x ≤1 crash x ≤1 restart: agreement + validity hold, on both
  // engines, with bit-identical tallies across engines and thread counts.
  Explorer::Result reference[2];  // per reduction
  bool have_reference[2] = {false, false};
  for (const Engine engine : {Engine::kFiber, Engine::kStepped}) {
    for (const Reduction reduction :
         {Reduction::kNone, Reduction::kSleepSets}) {
      for (const int threads : {1, 4}) {
        Explorer::Options opts;
        opts.reduction = reduction;
        opts.threads = threads;
        opts.max_crashes = 1;
        opts.max_recoveries = 1;
        const auto result =
            Explorer::explore(sticky_consensus_body(Durability::kDurable,
                                                    engine),
                              opts);
        const std::string tag =
            std::string(engine == Engine::kFiber ? "fiber" : "stepped") +
            " reduction=" + std::to_string(static_cast<int>(reduction)) +
            " threads=" + std::to_string(threads);
        EXPECT_TRUE(result.ok()) << tag << ": " << *result.violation;
        EXPECT_TRUE(result.complete) << tag;
        EXPECT_GT(result.crashed_executions, 0) << tag;
        EXPECT_GT(result.recovered_executions, 0) << tag;
        auto& ref = reference[static_cast<int>(reduction)];
        if (!have_reference[static_cast<int>(reduction)]) {
          ref = result;
          have_reference[static_cast<int>(reduction)] = true;
        } else {
          EXPECT_EQ(result.executions, ref.executions) << tag;
          EXPECT_EQ(result.crashed_executions, ref.crashed_executions) << tag;
          EXPECT_EQ(result.recovered_executions, ref.recovered_executions)
              << tag;
          EXPECT_EQ(result.reduced_subtrees, ref.reduced_subtrees) << tag;
        }
      }
    }
  }
}

TEST(RecoverableConsensus, VolatileStickyConvictedWithCanonicalTrace) {
  // The volatile variant loses the stuck value at the crash; some
  // crash/restart placement then makes two incarnations decide differently.
  // The conviction (message + witness trace + tallies) is bit-identical
  // across engines and thread counts per reduction, the witness contains a
  // recovery decision (marker `r`), and it replays deterministically.
  for (const Reduction reduction : {Reduction::kNone, Reduction::kSleepSets}) {
    std::optional<std::string> first_violation;
    std::string first_trace;
    std::int64_t first_executions = -1;
    for (const Engine engine : {Engine::kFiber, Engine::kStepped}) {
      for (const int threads : {1, 4}) {
        Explorer::Options opts;
        opts.reduction = reduction;
        opts.threads = threads;
        opts.max_crashes = 1;
        opts.max_recoveries = 1;
        opts.shrink_violations = true;
        const auto result = Explorer::explore(
            sticky_consensus_body(Durability::kVolatile, engine), opts);
        const std::string tag =
            std::string(engine == Engine::kFiber ? "fiber" : "stepped") +
            " reduction=" + std::to_string(static_cast<int>(reduction)) +
            " threads=" + std::to_string(threads);
        ASSERT_TRUE(result.violation.has_value()) << tag;
        const std::string rendered = format_trace(result.violating_trace);
        EXPECT_NE(rendered.find('r'), std::string::npos)
            << tag << ": conviction without a recovery decision: " << rendered;
        EXPECT_NE(rendered.find('x'), std::string::npos) << tag;
        if (!first_violation.has_value()) {
          first_violation = result.violation;
          first_trace = rendered;
          first_executions = result.executions;
        } else {
          EXPECT_EQ(result.violation, first_violation) << tag;
          EXPECT_EQ(rendered, first_trace) << tag;
          EXPECT_EQ(result.executions, first_executions) << tag;
        }
        // The shrunk witness replays on the matching engine's body.
        EXPECT_THROW(
            Explorer::replay(sticky_consensus_body(Durability::kVolatile,
                                                   engine),
                             result.violating_trace),
            std::exception)
            << tag;
      }
    }
  }
}

TEST(RecoverableConsensus, StatefulExplorationKeepsRecoveryVerdicts) {
  // Incarnation-salted fingerprints: "p crashed" and "p restarted once"
  // never alias, so stateful cuts stay sound across the recovery axis —
  // same verdicts as the plain search on both durability variants.
  for (const Durability durability :
       {Durability::kDurable, Durability::kVolatile}) {
    Explorer::Options opts;
    opts.max_crashes = 1;
    opts.max_recoveries = 1;
    opts.stateful = true;
    const auto result = Explorer::explore(
        sticky_consensus_body(durability, Engine::kFiber), opts);
    if (durability == Durability::kDurable) {
      EXPECT_TRUE(result.ok()) << *result.violation;
      EXPECT_TRUE(result.complete);
    } else {
      ASSERT_TRUE(result.violation.has_value());
      EXPECT_THROW(
          Explorer::replay(sticky_consensus_body(durability, Engine::kFiber),
                           result.violating_trace),
          std::exception);
    }
  }
}

// ---------------------------------------------------------------------------
// Durable vs volatile semantics under a deterministic crash/restart plan.
// ---------------------------------------------------------------------------

TEST(Durability, StickyValueSurvivesCrashAndRestartWhenDurable) {
  // p0 sticks 7 and is crashed right after; p1 sticks 9 against whatever
  // survived; p0 restarts and re-sticks. Durable: 7 sticks forever — both
  // decide 7. Volatile: the crash wipes the register, 9 sticks — both
  // decide 9. Either way the recovered incarnation re-decides idempotently.
  for (const Durability durability :
       {Durability::kDurable, Durability::kVolatile}) {
    RoundRobinDriver inner;
    CrashAdversary adversary(inner,
                             {CrashAdversary::CrashPoint{0, 1}});
    adversary.set_recovery_plan({CrashAdversary::RecoveryPoint{0, 2}});
    Runtime rt;
    StickyRegister sticky(durability);
    Register<> scratch(kBottom);
    rt.add_process([&](Context& ctx) {
      const Value got = sticky.stick(ctx, 7);
      scratch.write(ctx, got);  // window: crash lands between stick and here
      ctx.decide(got);
    });
    rt.add_process([&](Context& ctx) { ctx.decide(sticky.stick(ctx, 9)); });
    const auto run = rt.run(adversary);
    const Value expected = durability == Durability::kDurable ? 7 : 9;
    EXPECT_EQ(run.states[0], ProcState::kDone);
    EXPECT_EQ(run.states[1], ProcState::kDone);
    EXPECT_EQ(run.decisions[0], expected);
    EXPECT_EQ(run.decisions[1], expected);
    EXPECT_EQ(sticky.peek(), expected);
    EXPECT_EQ(rt.incarnation_of(0), 1u);
    EXPECT_EQ(rt.incarnation_of(1), 0u);
    EXPECT_EQ(adversary.crashes_injected(), 1);
    EXPECT_EQ(adversary.recoveries_injected(), 1);
  }
}

TEST(Durability, VolatileRegisterResetsToInitialOnAnyCrash) {
  // Any crash event fires the volatile-reset hooks — including a crash of a
  // process that never touched the register. The durable twin keeps 5.
  for (const Durability durability :
       {Durability::kDurable, Durability::kVolatile}) {
    RoundRobinDriver inner;
    CrashAdversary adversary(inner, {CrashAdversary::CrashPoint{1, 1}});
    Runtime rt;
    Register<> reg(kBottom, durability);
    Register<> other(kBottom);
    rt.add_process([&](Context& ctx) { reg.write(ctx, 5); });
    rt.add_process([&](Context& ctx) {
      other.write(ctx, 1);
      other.write(ctx, 2);  // second step: the crash window
    });
    const auto run = rt.run(adversary);
    EXPECT_EQ(run.states[1], ProcState::kCrashed);
    EXPECT_EQ(reg.peek(),
              durability == Durability::kDurable ? Value{5} : kBottom);
    EXPECT_EQ(other.peek(), 1);  // durable objects never reset
  }
}

TEST(Durability, VolatileOneShotWrnForgetsUsedIndexesAcrossRestart) {
  // A recovered incarnation re-invokes its 1sWRN index. Durable: the used
  // bit survives, the re-invocation is illegal and hangs the incarnation.
  // Volatile: the crash wiped slots and used bits, so the re-invocation is
  // legal and the process finishes.
  for (const Durability durability :
       {Durability::kDurable, Durability::kVolatile}) {
    RoundRobinDriver inner;
    CrashAdversary adversary(inner, {CrashAdversary::CrashPoint{0, 1}});
    adversary.set_recovery_plan({CrashAdversary::RecoveryPoint{0, 2}});
    Runtime rt;
    OneShotWrnObject wrn(3, durability);
    Register<> scratch(kBottom);
    rt.add_process([&](Context& ctx) {
      const Value got = wrn.wrn(ctx, 0, 5);
      scratch.write(ctx, got);  // window: crash lands here, before done
    });
    rt.add_process([&](Context& ctx) { scratch.write(ctx, 1); });
    const auto run = rt.run(adversary);
    EXPECT_EQ(rt.incarnation_of(0), 1u);
    EXPECT_EQ(run.states[0], durability == Durability::kDurable
                                 ? ProcState::kHung
                                 : ProcState::kDone);
  }
}

TEST(Durability, RecoveredIncarnationRedecidesIdempotently) {
  // Same value: dropped. Different value (volatile sticky wiped between the
  // incarnations): a real disagreement, diagnosed by the kernel.
  RoundRobinDriver inner;
  CrashAdversary adversary(inner, {CrashAdversary::CrashPoint{0, 1}});
  adversary.set_recovery_plan({CrashAdversary::RecoveryPoint{0, 2}});
  const auto violation = run_one(
      [](ScheduleDriver& driver) {
        Runtime rt;
        StickyRegister sticky(Durability::kVolatile);
        Register<> scratch(kBottom);
        rt.add_process([&](Context& ctx) {
          const Value got = sticky.stick(ctx, 100);
          ctx.decide(got);          // first incarnation decides 100...
          scratch.write(ctx, got);  // ...then crashes in this window
        });
        rt.add_process([&](Context& ctx) {
          ctx.decide(sticky.stick(ctx, 101));
        });
        rt.run(driver);
      },
      adversary);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("re-decided differently"), std::string::npos)
      << *violation;

  // The idempotent twin: a durable register hands the recovered incarnation
  // its original decision back — no violation.
  RoundRobinDriver inner2;
  CrashAdversary adversary2(inner2, {CrashAdversary::CrashPoint{0, 1}});
  adversary2.set_recovery_plan({CrashAdversary::RecoveryPoint{0, 2}});
  const auto clean = run_one(
      [](ScheduleDriver& driver) {
        Runtime rt;
        StickyRegister sticky(Durability::kDurable);
        Register<> scratch(kBottom);
        rt.add_process([&](Context& ctx) {
          const Value got = sticky.stick(ctx, 100);
          ctx.decide(got);
          scratch.write(ctx, got);
        });
        rt.add_process([&](Context& ctx) {
          ctx.decide(sticky.stick(ctx, 101));
        });
        const auto run = rt.run(driver);
        if (run.decisions[0] != 100 || run.decisions[1] != 100) {
          throw SpecViolation("durable sticky lost the first decision");
        }
      },
      adversary2);
  EXPECT_FALSE(clean.has_value()) << *clean;
}

// ---------------------------------------------------------------------------
// Recovery decisions replay, shrink, and round-trip through trace_jsonl.
// ---------------------------------------------------------------------------

TEST(RecoveryExploration, RecoveryDecisionsReplayAndShrink) {
  Explorer::Options opts;
  opts.reduction = Reduction::kNone;
  opts.max_crashes = 1;
  opts.max_recoveries = 1;
  const auto body = sticky_consensus_body(Durability::kVolatile,
                                          Engine::kFiber);
  const auto result = Explorer::explore(body, opts);
  ASSERT_TRUE(result.violation.has_value());
  // The raw witness replays...
  EXPECT_THROW(Explorer::replay(body, result.violating_trace), std::exception);
  // ...and shrinks to a locally-minimal trace that still carries the
  // recovery decision and still reproduces.
  const auto shrunk = Explorer::shrink(body, result.violating_trace);
  EXPECT_LE(shrunk.size(), result.violating_trace.size());
  const std::string rendered = format_trace(shrunk);
  EXPECT_NE(rendered.find('r'), std::string::npos) << rendered;
  EXPECT_THROW(Explorer::replay(body, shrunk), std::exception);
}

TEST(RecoveryExploration, RecoverEventsRoundTripThroughJsonl) {
  std::ostringstream sink;
  JsonlTraceWriter writer(sink);
  RoundRobinDriver inner;
  CrashAdversary adversary(inner, {CrashAdversary::CrashPoint{0, 1}});
  adversary.set_recovery_plan({CrashAdversary::RecoveryPoint{0, 2}});
  const auto violation = run_one(
      [](ScheduleDriver& driver) {
        Runtime rt;
        StickyRegister sticky;
        Register<> scratch(kBottom);
        rt.add_process([&](Context& ctx) {
          const Value got = sticky.stick(ctx, 7);
          scratch.write(ctx, got);
          ctx.decide(got);
        });
        rt.add_process([&](Context& ctx) { scratch.write(ctx, 1); });
        rt.run(driver);
      },
      adversary, &writer);
  EXPECT_FALSE(violation.has_value());

  const ParsedTrace parsed = parse_trace_jsonl(sink.str());
  EXPECT_EQ(parsed.crashes, 1);
  ASSERT_EQ(parsed.recover_events.size(), 1u);
  EXPECT_EQ(parsed.recoveries, 1);
  EXPECT_EQ(parsed.recover_events[0].pid, 0);
  // The restart fired at-or-after the crash's global step.
  ASSERT_EQ(parsed.crash_events.size(), 1u);
  EXPECT_GE(parsed.recover_events[0].step, parsed.crash_events[0].step);
}

TEST(RecoveryExploration, AccessCountersTallyRecoveries) {
  AccessCounters counters;
  RoundRobinDriver inner;
  CrashAdversary adversary(inner, {CrashAdversary::CrashPoint{0, 1}});
  adversary.set_recovery_plan({CrashAdversary::RecoveryPoint{0, 2}});
  const auto violation = run_one(
      [](ScheduleDriver& driver) {
        Runtime rt;
        StickyRegister sticky;
        Register<> scratch(kBottom);
        rt.add_process([&](Context& ctx) {
          const Value got = sticky.stick(ctx, 7);
          scratch.write(ctx, got);
          ctx.decide(got);
        });
        rt.add_process([&](Context& ctx) { scratch.write(ctx, 1); });
        rt.run(driver);
      },
      adversary, &counters);
  EXPECT_FALSE(violation.has_value());
  EXPECT_EQ(counters.crashes(), 1);
  EXPECT_EQ(counters.recoveries(), 1);
}

TEST(RecoveryExploration, RecordingPolicyJournalsRecoveries) {
  RoundRobinDriver inner;
  CrashAdversary adversary(inner, {CrashAdversary::CrashPoint{0, 1}});
  adversary.set_recovery_plan({CrashAdversary::RecoveryPoint{0, 2}});
  RecordingPolicy recorder(adversary);
  const auto violation = run_one(
      [](ScheduleDriver& driver) {
        Runtime rt;
        StickyRegister sticky;
        Register<> scratch(kBottom);
        rt.add_process([&](Context& ctx) {
          const Value got = sticky.stick(ctx, 7);
          scratch.write(ctx, got);
          ctx.decide(got);
        });
        rt.add_process([&](Context& ctx) { scratch.write(ctx, 1); });
        rt.run(driver);
      },
      recorder);
  EXPECT_FALSE(violation.has_value());
  const std::string journal = recorder.format_journal();
  EXPECT_NE(journal.find("x0"), std::string::npos) << journal;
  EXPECT_NE(journal.find("r0"), std::string::npos) << journal;
}

// ---------------------------------------------------------------------------
// CrashAdversary restart-model validation (policy.hpp satellite).
// ---------------------------------------------------------------------------

std::string recovery_plan_error(
    std::vector<CrashAdversary::RecoveryPoint> plan) {
  RoundRobinDriver inner;
  CrashAdversary adversary(inner, std::vector<CrashAdversary::CrashPoint>{});
  try {
    adversary.set_recovery_plan(std::move(plan));
  } catch (const SimError& e) {
    return e.what();
  }
  return {};
}

TEST(RecoveryPlanValidation, RejectsDuplicateVictimNamingTheEntry) {
  const std::string msg = recovery_plan_error({{0, 1}, {2, 1}, {0, 3}});
  EXPECT_NE(msg.find("duplicate victim 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("recovery plan entry 2"), std::string::npos) << msg;
}

TEST(RecoveryPlanValidation, RejectsNegativeAfterStepsNamingTheEntry) {
  const std::string msg = recovery_plan_error({{1, 2}, {3, -4}});
  EXPECT_NE(msg.find("recovery plan entry 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("negative after_steps -4"), std::string::npos) << msg;
}

TEST(RecoveryPlanValidation, RejectsOutOfRangeVictimNamingTheEntry) {
  const std::string msg = recovery_plan_error({{64, 1}});
  EXPECT_NE(msg.find("recovery plan entry 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("victim 64"), std::string::npos) << msg;
  EXPECT_FALSE(recovery_plan_error({{-1, 1}}).empty());
}

TEST(RecoveryPlanValidation, RandomRecoveryKnobsValidated) {
  RoundRobinDriver inner;
  CrashAdversary adversary(inner, /*seed=*/7, /*f=*/1, /*crash_prob=*/0.5);
  EXPECT_THROW(adversary.set_random_recovery(7, -1, 0.5), SimError);
  EXPECT_THROW(adversary.set_random_recovery(7, 1, -0.1), SimError);
  EXPECT_THROW(adversary.set_random_recovery(7, 1, 1.5), SimError);
  adversary.set_random_recovery(7, 1, 0.5);  // valid knobs accepted
  EXPECT_TRUE(adversary.wants_recovery());
}

TEST(RecoveryPlanValidation, SeededRandomRecoveryIsDeterministic) {
  // Same seed => bit-identical decision journal, recoveries included.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    StickyRegister sticky;
    Register<> scratch(kBottom);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        const Value got = sticky.stick(ctx, 100 + p);
        scratch.write(ctx, got);
        ctx.decide(got);
      });
    }
    rt.run(driver);
  };
  std::string journals[2];
  for (int round = 0; round < 2; ++round) {
    RandomDriver inner(11);
    CrashAdversary adversary(inner, /*seed=*/42, /*f=*/2, /*crash_prob=*/0.3);
    adversary.set_random_recovery(/*seed=*/43, /*max_recoveries=*/2,
                                  /*recover_prob=*/0.4);
    RecordingPolicy recorder(adversary);
    const auto violation = run_one(body, recorder);
    EXPECT_FALSE(violation.has_value());
    journals[round] = recorder.format_journal();
  }
  EXPECT_EQ(journals[0], journals[1]);
}

}  // namespace
}  // namespace subc
