// Tests for the soft-wired (ported) 1sWRN variant: agreement with the
// oblivious object on legal usage, detectable errors on port misuse, and
// Algorithm 2 running unchanged over ports.
#include "subc/objects/ported_wrn.hpp"

#include <gtest/gtest.h>

#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

TEST(PortedWrn, AgreesWithObliviousObjectOnLegalUse) {
  for (const int k : {3, 4, 5}) {
    std::vector<int> permutation;
    for (int i = 0; i < k; ++i) {
      permutation.push_back(i);
    }
    do {
      Runtime rt;
      PortedWrn ported(k);
      OneShotWrnObject oblivious(k);
      rt.add_process([&](Context& ctx) {
        for (const int port : permutation) {
          ported.bind(ctx, port);
        }
        for (const int port : permutation) {
          const Value v = 100 + port;
          ASSERT_EQ(ported.wrn(ctx, port, v), oblivious.wrn(ctx, port, v));
        }
      });
      RoundRobinDriver driver;
      rt.run(driver);
    } while (k == 3 &&
             std::next_permutation(permutation.begin(), permutation.end()));
  }
}

TEST(PortedWrn, MisuseIsDetectableUnlikeTheObliviousHang) {
  Runtime rt;
  PortedWrn ported(3);
  rt.add_process([&](Context& ctx) {
    EXPECT_THROW(ported.wrn(ctx, 0, 1), SimError);  // unbound
    ported.bind(ctx, 0);
    EXPECT_THROW(ported.bind(ctx, 0), SimError);  // rebind
    EXPECT_EQ(ported.wrn(ctx, 0, 5), kBottom);
  });
  rt.add_process([&](Context& ctx) {
    ctx.decide(1);  // force one shared-ish action for scheduling symmetry
    EXPECT_THROW(ported.wrn(ctx, 0, 9), SimError);  // foreign port
  });
  ScriptedDriver driver({0, 0, 0, 0, 1});
  EXPECT_NO_THROW(rt.run(driver));
}

TEST(PortedWrn, Algorithm2OverPortsSolvesSetConsensus) {
  const int k = 4;
  std::vector<Value> inputs{10, 20, 30, 40};
  const auto result = Explorer::explore([&](ScheduleDriver& driver) {
    Runtime rt;
    PortedWrn ported(k);
    for (int p = 0; p < k; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ported.bind(ctx, p);
        const Value t =
            ported.wrn(ctx, p, inputs[static_cast<std::size_t>(p)]);
        ctx.decide(t != kBottom ? t : inputs[static_cast<std::size_t>(p)]);
      });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_set_consensus(run, inputs, k - 1);
  });
  EXPECT_TRUE(result.ok()) << *result.violation;
  EXPECT_TRUE(result.complete);
}

}  // namespace
}  // namespace subc
