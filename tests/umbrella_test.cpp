// Compiles the umbrella header and exercises one object from each layer —
// guards against the umbrella drifting out of sync with the tree.
#include "subc/subc.hpp"

#include <gtest/gtest.h>

namespace subc {
namespace {

TEST(Umbrella, OneSymbolPerLayerLinks) {
  // runtime
  Runtime rt;
  // objects
  Register<> reg(kBottom);
  WrnObject wrn(3);
  OnkObject onk(2, 2);
  // algorithms
  WrnSetConsensus task(3);
  SafeAgreement sa(2);
  // core
  EXPECT_TRUE(sc_implementable(12, 8, 3, 2));
  EXPECT_EQ(onk_component_capacity(2, 1), 5);
  // checking
  History h;
  EXPECT_EQ(h.completed(), 0u);

  rt.add_process([&](Context& ctx) {
    reg.write(ctx, 1);
    wrn.wrn(ctx, 0, 5);
    onk.propose(ctx, 0, 7);
    sa.propose(ctx, 0, 9);
    ctx.decide(task.propose(ctx, 0, 11));
  });
  RoundRobinDriver driver;
  const auto result = rt.run(driver);
  EXPECT_EQ(result.states[0], ProcState::kDone);
  EXPECT_EQ(result.decisions[0], 11);
}

}  // namespace
}  // namespace subc
