// Tests for Algorithm 5: the linearizable 1sWRN_k from (k,k−1)-strong set
// election, registers and snapshots — Claims 22–24 and the linearizability
// theorem (Corollary 37), machine-checked via the Wing–Gong checker.
#include "subc/algorithms/wrn_from_sse.hpp"

#include <gtest/gtest.h>

#include "subc/checking/linearizability.hpp"
#include "subc/core/tasks.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

/// One full run: all k indices invoked concurrently, history recorded,
/// linearizability against OneShotWrnSpec enforced.
ExecutionBody full_run_body(int k, bool register_snapshots,
                            std::int64_t max_steps = 2'000'000) {
  return [k, register_snapshots, max_steps](ScheduleDriver& driver) {
    Runtime rt;
    WrnFromSse object(k, register_snapshots);
    History history;
    for (int p = 0; p < k; ++p) {
      rt.add_process([&, p](Context& ctx) {
        object.one_shot_wrn(ctx, p, 100 + p, &history);
      });
    }
    const auto run = rt.run(driver, max_steps);
    for (int p = 0; p < k; ++p) {
      if (run.states[static_cast<std::size_t>(p)] != ProcState::kDone) {
        throw SpecViolation("Algorithm 5 operation did not terminate");
      }
    }
    require_linearizable(OneShotWrnSpec{k}, history);
  };
}

TEST(Algorithm5, SequentialInvocationsMatchWrnSemantics) {
  Runtime rt;
  WrnFromSse object(3);
  History history;
  rt.add_process([&](Context& ctx) {
    // Sequential: results must equal the atomic 1sWRN's.
    EXPECT_EQ(object.one_shot_wrn(ctx, 0, 10, &history), kBottom);
    EXPECT_EQ(object.one_shot_wrn(ctx, 2, 30, &history), 10);
    EXPECT_EQ(object.one_shot_wrn(ctx, 1, 20, &history), 30);
  });
  RoundRobinDriver driver;
  rt.run(driver);
  require_linearizable(OneShotWrnSpec{3}, history);
}

TEST(Algorithm5, LinearizableUnderRandomSchedules) {
  for (const int k : {3, 4, 5}) {
    const auto result = RandomSweep::run(full_run_body(k, false), 800);
    EXPECT_TRUE(result.ok()) << "k=" << k << ": " << *result.violation;
  }
}

TEST(Algorithm5, LinearizableUnderBoundedExhaustiveExploration) {
  // Bounded-exhaustive: a large prefix of the schedule tree for k=3.
  const auto result = Explorer::explore(
      full_run_body(3, false), Explorer::Options{.max_executions = 40'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Algorithm5, LinearizableWithRegisterBuiltSnapshots) {
  const auto result = RandomSweep::run(full_run_body(3, true), 200);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Algorithm5, SomeInvocationReturnsBottom) {
  // Claim 23: in every full run, at least one invocation returns ⊥.
  const auto result = RandomSweep::run(
      [](ScheduleDriver& driver) {
        Runtime rt;
        WrnFromSse object(3);
        std::vector<Value> got(3, -1);
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&, p](Context& ctx) {
            got[static_cast<std::size_t>(p)] =
                object.one_shot_wrn(ctx, p, 100 + p);
          });
        }
        rt.run(driver);
        if (std::none_of(got.begin(), got.end(),
                         [](Value v) { return v == kBottom; })) {
          throw SpecViolation("no invocation returned ⊥ (Claim 23)");
        }
      },
      600);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Algorithm5, SomeInvocationReturnsItsSuccessor) {
  // Claim 24: in every full run, some invocation returns its successor's
  // value.
  const auto result = RandomSweep::run(
      [](ScheduleDriver& driver) {
        Runtime rt;
        WrnFromSse object(3);
        std::vector<Value> got(3, -1);
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&, p](Context& ctx) {
            got[static_cast<std::size_t>(p)] =
                object.one_shot_wrn(ctx, p, 100 + p);
          });
        }
        rt.run(driver);
        bool some_successor = false;
        for (int p = 0; p < 3; ++p) {
          if (got[static_cast<std::size_t>(p)] == 100 + ((p + 1) % 3)) {
            some_successor = true;
          }
        }
        if (!some_successor) {
          throw SpecViolation("no invocation adopted its successor (Claim 24)");
        }
      },
      600);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Algorithm5, OutputsHaveWrnShape) {
  // Claim 22: w_i returns v_{(i+1) mod k} or ⊥ — under every schedule in a
  // bounded-exhaustive prefix.
  const auto result = Explorer::explore(
      [](ScheduleDriver& driver) {
        Runtime rt;
        WrnFromSse object(3);
        std::vector<Value> got(3, -1);
        for (int p = 0; p < 3; ++p) {
          rt.add_process([&, p](Context& ctx) {
            got[static_cast<std::size_t>(p)] =
                object.one_shot_wrn(ctx, p, 100 + p);
          });
        }
        rt.run(driver);
        for (int p = 0; p < 3; ++p) {
          const Value g = got[static_cast<std::size_t>(p)];
          if (g != kBottom && g != 100 + ((p + 1) % 3)) {
            throw SpecViolation("output neither ⊥ nor successor (Claim 22)");
          }
        }
      },
      Explorer::Options{.max_executions = 40'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Algorithm5, SequentialThenConcurrentRemainder) {
  // The scenario motivating the double snapshot (the w1/w2/w3
  // counterexample in §5): early completed ops constrain later ones.
  // Scripted order: w1 announces; w2 runs fully; then w1 resumes; w3 runs.
  const auto result = RandomSweep::run(
      [](ScheduleDriver& driver) {
        Runtime rt;
        WrnFromSse object(3);
        History history;
        // Staggered invocations with different indices.
        rt.add_process([&](Context& ctx) {
          object.one_shot_wrn(ctx, 1, 101, &history);
        });
        rt.add_process([&](Context& ctx) {
          object.one_shot_wrn(ctx, 2, 102, &history);
          object.one_shot_wrn(ctx, 0, 100, &history);  // second op, later
        });
        const auto run = rt.run(driver);
        if (run.states[0] != ProcState::kDone ||
            run.states[1] != ProcState::kDone) {
          throw SpecViolation("non-termination");
        }
        require_linearizable(OneShotWrnSpec{3}, history);
      },
      600);
  EXPECT_TRUE(result.ok()) << *result.violation;
}

TEST(Algorithm5, PartialParticipationLinearizable) {
  // Only 2 of 3 indices ever invoked.
  const auto result = Explorer::explore(
      [](ScheduleDriver& driver) {
        Runtime rt;
        WrnFromSse object(3);
        History history;
        for (const int p : {0, 1}) {
          rt.add_process([&, p](Context& ctx) {
            object.one_shot_wrn(ctx, p, 100 + p, &history);
          });
        }
        rt.run(driver);
        require_linearizable(OneShotWrnSpec{3}, history);
      },
      Explorer::Options{.max_executions = 60'000});
  EXPECT_TRUE(result.ok()) << *result.violation;
}

// -----------------------------------------------------------------------
// §5's counterexample discussion, executed: each ingredient of Algorithm 5
// is necessary. Disable it and the explorer finds a non-linearizable
// history.
// -----------------------------------------------------------------------

TEST(Algorithm5Ablation, WithoutDoorwayNotLinearizable) {
  // "using the strong set election without the doorway might result in a
  // non-linearizable implementation": w_{i+1} completes (wins, ⊥); then
  // w_i starts and also wins (two winners are allowed in (k,k−1)-strong
  // set election) — it returns ⊥ where linearizability demands v_{i+1}.
  const auto result = Explorer::explore(
      [](ScheduleDriver& driver) {
        Runtime rt;
        WrnFromSse object(3, WrnFromSse::Options{.use_doorway = false});
        History history;
        // Sequential by construction: one process, successor index first.
        rt.add_process([&](Context& ctx) {
          object.one_shot_wrn(ctx, 1, 101, &history);  // w_{i+1}
          object.one_shot_wrn(ctx, 0, 100, &history);  // w_i afterwards
        });
        rt.run(driver);
        require_linearizable(OneShotWrnSpec{3}, history);
      },
      Explorer::Options{.max_executions = 50'000});
  ASSERT_FALSE(result.ok()) << "doorway ablation went undetected";
  EXPECT_NE(result.violation->find("not linearizable"), std::string::npos);
}

// The §5 w1/w2/w3 world: k = 4, an early winner w0 closes the doorway and
// returns ⊥; then w1 (index 1), w2 (index 2) and — only after w1
// completes — w3 (index 3) interleave. Without the published-view check,
// w1 can return v2 while w2 returns v3, creating the real-time/value-flow
// cycle w1 < w3 ≤ w2 ≤ w1 the paper describes.
ExecutionBody hazard_world(WrnFromSse::Options options) {
  return [options](ScheduleDriver& driver) {
    Runtime rt;
    WrnFromSse object(4, options);
    History history;
    rt.add_process([&](Context& ctx) {
      object.one_shot_wrn(ctx, 0, 100, &history);  // w0: wins, closes door
      object.one_shot_wrn(ctx, 1, 101, &history);  // w1
      object.one_shot_wrn(ctx, 3, 103, &history);  // w3: after w1 completes
    });
    rt.add_process([&](Context& ctx) {
      object.one_shot_wrn(ctx, 2, 102, &history);  // w2, concurrent
    });
    rt.run(driver);
    require_linearizable(OneShotWrnSpec{4}, history);
  };
}

TEST(Algorithm5Ablation, WithoutViewCheckNotLinearizable) {
  const auto result = Explorer::explore(
      hazard_world(WrnFromSse::Options{.use_view_check = false}),
      Explorer::Options{.max_executions = 400'000});
  ASSERT_FALSE(result.ok()) << "view-check ablation went undetected";
  EXPECT_NE(result.violation->find("not linearizable"), std::string::npos);
}

TEST(Algorithm5Ablation, FullAlgorithmSurvivesTheSameScenarios) {
  // Identical worlds, full algorithm: the explorer finds nothing.
  const auto hazard = Explorer::explore(
      hazard_world(WrnFromSse::Options{}),
      Explorer::Options{.max_executions = 400'000});
  EXPECT_TRUE(hazard.ok()) << *hazard.violation;

  const auto sequential = Explorer::explore(
      [](ScheduleDriver& driver) {
        Runtime rt;
        WrnFromSse object(3);
        History history;
        rt.add_process([&](Context& ctx) {
          object.one_shot_wrn(ctx, 1, 101, &history);
          object.one_shot_wrn(ctx, 0, 100, &history);
        });
        rt.run(driver);
        require_linearizable(OneShotWrnSpec{3}, history);
      },
      Explorer::Options{.max_executions = 200'000});
  EXPECT_TRUE(sequential.ok()) << *sequential.violation;
}

TEST(Algorithm5, RejectsBadParameters) {
  EXPECT_THROW(WrnFromSse(2), SimError);
  Runtime rt;
  WrnFromSse object(3);
  rt.add_process([&](Context& ctx) {
    EXPECT_THROW(object.one_shot_wrn(ctx, 3, 1), SimError);
    EXPECT_THROW(object.one_shot_wrn(ctx, 0, kBottom), SimError);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

}  // namespace
}  // namespace subc
