// Exhaustive crash-failure exploration (Explorer::Options::max_crashes), the
// step-quota watchdog, CrashAdversary plan validation, and the crash-event
// round trip through trace_jsonl into trace_viz.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <vector>

#include "subc/algorithms/wrn_from_sse.hpp"
#include "subc/checking/linearizability.hpp"
#include "subc/checking/trace_jsonl.hpp"
#include "subc/checking/trace_viz.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"
#include "subc/runtime/policy.hpp"
#include "subc/runtime/runtime.hpp"

namespace subc {
namespace {

// ---------------------------------------------------------------------------
// Crash branching on a hand-countable world.
// ---------------------------------------------------------------------------

TEST(CrashExploration, SingleCrashPlacementsOnTinyWorldAreExhaustive) {
  // 2 processes x 1 write each. The crash-free tree has exactly 2 schedules;
  // with max_crashes = 1 every execution either chooses "no crash"
  // everywhere (recovering those 2 schedules exactly) or lands one crash —
  // so executions split cleanly into the base count plus the crashed ones,
  // and every victim is actually exercised.
  std::set<std::vector<ProcState>> outcomes;
  Explorer::Options opts;
  opts.reduction = Reduction::kNone;
  opts.max_crashes = 1;
  const auto result = Explorer::explore(
      [&](ScheduleDriver& driver) {
        Runtime rt;
        RegisterArray<> regs(2, kBottom);
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) { regs[p].write(ctx, p); });
        }
        const auto run = rt.run(driver);
        outcomes.insert(run.states);
      },
      opts);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.complete);
  EXPECT_GT(result.crashed_executions, 0);
  EXPECT_EQ(result.executions, 2 + result.crashed_executions);
  // Every single-crash outcome is reachable: nobody dies, p0 dies, p1 dies,
  // and (since f = 1) never both.
  using PS = ProcState;
  EXPECT_TRUE(outcomes.contains({PS::kDone, PS::kDone}));
  EXPECT_TRUE(outcomes.contains({PS::kCrashed, PS::kDone}));
  EXPECT_TRUE(outcomes.contains({PS::kDone, PS::kCrashed}));
  EXPECT_FALSE(outcomes.contains({PS::kCrashed, PS::kCrashed}));
}

TEST(CrashExploration, CrashBudgetZeroIsTheBaseline) {
  // max_crashes = 0 (the default) must not perturb the search at all.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(3, kBottom);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        regs[p].write(ctx, p);
        regs[(p + 1) % 3].read(ctx);
      });
    }
    rt.run(driver);
  };
  Explorer::Options plain;
  plain.reduction = Reduction::kNone;
  Explorer::Options zero = plain;
  zero.max_crashes = 0;
  const auto a = Explorer::explore(body, plain);
  const auto b = Explorer::explore(body, zero);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(b.crashed_executions, 0);
  EXPECT_EQ(b.stuck_executions, 0);
}

// ---------------------------------------------------------------------------
// Algorithm 5 under exhaustive single-crash placement: the §5 doorway
// scenario (w1 then w0 on p0, concurrent w2 on p1). The full construction is
// linearizable over *all* crash placements; the doorway-ablated variant is
// convicted deterministically, with bit-identical results across reduction
// modes and thread counts.
// ---------------------------------------------------------------------------

ExecutionBody doorway_body(WrnFromSse::Options options) {
  return [options](ScheduleDriver& driver) {
    Runtime rt;
    WrnFromSse object(3, options);
    History history;
    rt.add_process([&](Context& ctx) {
      object.one_shot_wrn(ctx, 1, 101, &history);
      object.one_shot_wrn(ctx, 0, 100, &history);
    });
    rt.add_process(
        [&](Context& ctx) { object.one_shot_wrn(ctx, 2, 102, &history); });
    rt.run(driver);
    require_linearizable(OneShotWrnSpec{3}, history);
  };
}

TEST(CrashExploration, Algorithm5LinearizableOverAllSingleCrashPlacements) {
  Explorer::Result first;
  bool have_first = false;
  for (const Reduction reduction : {Reduction::kNone, Reduction::kSleepSets}) {
    for (const int threads : {1, 4}) {
      Explorer::Options opts;
      opts.reduction = reduction;
      opts.threads = threads;
      opts.max_crashes = 1;
      const auto result =
          Explorer::explore(doorway_body(WrnFromSse::Options{}), opts);
      EXPECT_TRUE(result.ok())
          << "reduction=" << static_cast<int>(reduction)
          << " threads=" << threads << ": " << *result.violation;
      EXPECT_TRUE(result.complete);
      EXPECT_GT(result.crashed_executions, 0);
      // Verdict and crash coverage are bit-identical at 1 and 4 threads for
      // a fixed reduction; across reductions only the verdict (and soundness
      // of the crashed count being > 0) is comparable.
      if (!have_first) {
        first = result;
        have_first = true;
      } else if (reduction == Reduction::kNone) {
        EXPECT_EQ(result.executions, first.executions);
        EXPECT_EQ(result.crashed_executions, first.crashed_executions);
      }
    }
  }
}

TEST(CrashExploration, DoorwayAblationConvictedDeterministically) {
  std::optional<std::string> first_violation;
  std::string first_trace;
  std::int64_t first_executions = -1;
  for (const Reduction reduction : {Reduction::kNone, Reduction::kSleepSets}) {
    for (const int threads : {1, 4}) {
      Explorer::Options opts;
      opts.reduction = reduction;
      opts.threads = threads;
      opts.max_crashes = 1;
      const auto result = Explorer::explore(
          doorway_body(WrnFromSse::Options{.use_doorway = false}), opts);
      ASSERT_TRUE(result.violation.has_value())
          << "reduction=" << static_cast<int>(reduction)
          << " threads=" << threads;
      // Thread count must not move the verdict, the witness, or the tallies.
      if (threads == 1) {
        first_violation = result.violation;
        first_trace = format_trace(result.violating_trace);
        first_executions = result.executions;
      } else {
        EXPECT_EQ(result.violation, first_violation);
        EXPECT_EQ(format_trace(result.violating_trace), first_trace);
        EXPECT_EQ(result.executions, first_executions);
      }
      // The witness replays: the recorded trace (crash decisions included)
      // deterministically reproduces the violation.
      EXPECT_THROW(
          Explorer::replay(
              doorway_body(WrnFromSse::Options{.use_doorway = false}),
              result.violating_trace),
          std::exception);
    }
  }
}

// ---------------------------------------------------------------------------
// Step-quota watchdog: livelocked schedules become StuckExecution
// diagnostics instead of hangs.
// ---------------------------------------------------------------------------

ExecutionBody livelock_body() {
  return [](ScheduleDriver& driver) {
    Runtime rt;
    Register<> flag(0);
    Register<> scratch(kBottom);
    rt.add_process([&](Context& ctx) { flag.write(ctx, 1); });
    // Two spinners on the same registers (so their laps stay dependent and
    // the reduction cannot collapse the tree): `flag` is re-read each lap,
    // but nothing ever writes the value that would let either loop exit —
    // every schedule of this world is non-terminating.
    for (int s = 0; s < 2; ++s) {
      rt.add_process([&](Context& ctx) {
        while (flag.read(ctx) != 2) {
          scratch.write(ctx, 0);
        }
      });
    }
    rt.run(driver);
  };
}

TEST(CrashExploration, WatchdogConvertsLivelockIntoStuckExecutions) {
  // The budget covers the whole quota-bounded reduced tree (4226
  // executions at quota 16), so the search is *complete* — which is what
  // licenses the cross-thread canonical-first-stuck comparison below (on a
  // budget-truncated run, serial and parallel legitimately sample
  // different subsets of the tree; see docs/explorer.md).
  Explorer::Options opts;
  opts.step_quota = 16;
  opts.max_executions = 5000;
  const auto serial = Explorer::explore(livelock_body(), opts);
  // No schedule terminates, so *every* execution is cut by the watchdog;
  // the search itself terminates (the quota bounds the tree depth) instead
  // of hanging.
  EXPECT_TRUE(serial.ok());
  EXPECT_TRUE(serial.complete);
  EXPECT_GT(serial.executions, 0);
  EXPECT_EQ(serial.stuck_executions, serial.executions);
  ASSERT_TRUE(serial.first_stuck.has_value());
  EXPECT_NE(serial.first_stuck->message.find("step quota"), std::string::npos);
  EXPECT_FALSE(serial.first_stuck->trace.empty());

  // The attached trace replays to the same cut under the same quota.
  ReplayDriver driver(serial.first_stuck->trace);
  driver.set_step_quota(opts.step_quota);
  EXPECT_THROW(livelock_body()(driver), StuckCut);

  // Bit-identical under parallel exploration, down to the canonically
  // least stuck execution's trace.
  opts.threads = 4;
  const auto parallel = Explorer::explore(livelock_body(), opts);
  EXPECT_EQ(parallel.executions, serial.executions);
  EXPECT_EQ(parallel.stuck_executions, serial.stuck_executions);
  EXPECT_EQ(parallel.complete, serial.complete);
  ASSERT_TRUE(parallel.first_stuck.has_value());
  EXPECT_EQ(parallel.first_stuck->message, serial.first_stuck->message);
  EXPECT_EQ(format_trace(parallel.first_stuck->trace),
            format_trace(serial.first_stuck->trace));

  // Without reduction the quota-depth tree dwarfs any budget, so the
  // search is budget-truncated at exactly max_executions — still no hang,
  // and every sampled execution is honestly reported stuck.
  Explorer::Options raw;
  raw.step_quota = 16;
  raw.max_executions = 40;
  raw.reduction = Reduction::kNone;
  const auto truncated = Explorer::explore(livelock_body(), raw);
  EXPECT_EQ(truncated.executions, 40);
  EXPECT_EQ(truncated.stuck_executions, 40);
  EXPECT_FALSE(truncated.complete);
}

TEST(CrashExploration, WatchdogLeavesTerminatingWorldsAlone) {
  // A generous quota must not change anything on a terminating world.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(2, kBottom);
    for (int p = 0; p < 2; ++p) {
      rt.add_process([&, p](Context& ctx) {
        regs[p].write(ctx, p);
        regs[(p + 1) % 2].read(ctx);
      });
    }
    rt.run(driver);
  };
  Explorer::Options plain;
  Explorer::Options guarded;
  guarded.step_quota = 10'000;
  const auto a = Explorer::explore(body, plain);
  const auto b = Explorer::explore(body, guarded);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(b.stuck_executions, 0);
  EXPECT_FALSE(b.first_stuck.has_value());
}

// ---------------------------------------------------------------------------
// CrashAdversary plan validation (policy.hpp satellite).
// ---------------------------------------------------------------------------

std::string ctor_error(std::vector<CrashAdversary::CrashPoint> plan) {
  RoundRobinDriver inner;
  try {
    const CrashAdversary adversary(inner, std::move(plan));
  } catch (const SimError& e) {
    return e.what();
  }
  return {};
}

TEST(CrashAdversaryValidation, RejectsDuplicateVictimNamingTheEntry) {
  const std::string msg = ctor_error({{0, 1}, {2, 1}, {0, 3}});
  EXPECT_NE(msg.find("duplicate victim 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("entry 2"), std::string::npos) << msg;
}

TEST(CrashAdversaryValidation, RejectsNegativeAfterStepsNamingTheEntry) {
  const std::string msg = ctor_error({{1, 2}, {3, -4}});
  EXPECT_NE(msg.find("entry 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("negative after_steps -4"), std::string::npos) << msg;
}

TEST(CrashAdversaryValidation, RejectsOutOfRangeVictimNamingTheEntry) {
  const std::string msg = ctor_error({{64, 1}});
  EXPECT_NE(msg.find("entry 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("victim 64"), std::string::npos) << msg;
  EXPECT_FALSE(ctor_error({{-1, 1}}).empty());
}

TEST(CrashAdversaryValidation, ResilienceBoundCapsThePlan) {
  RoundRobinDriver inner;
  // Within the bound: fine.
  const CrashAdversary ok(inner, {{0, 1}, {1, 1}}, /*f=*/2);
  // One entry over the bound: rejected with both numbers in the message.
  try {
    const CrashAdversary bad(inner, {{0, 1}, {1, 1}, {2, 1}}, /*f=*/2);
    FAIL() << "plan exceeding f was accepted";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("3 entries"), std::string::npos) << msg;
    EXPECT_NE(msg.find("f = 2"), std::string::npos) << msg;
  }
  EXPECT_THROW(CrashAdversary(inner, {}, /*f=*/-1), SimError);
}

// ---------------------------------------------------------------------------
// Crash events round-trip through trace_jsonl and render in trace_viz.
// ---------------------------------------------------------------------------

TEST(CrashExploration, CrashEventsRoundTripThroughJsonlIntoTraceViz) {
  std::ostringstream sink;
  JsonlTraceWriter writer(sink);
  RoundRobinDriver inner;
  CrashAdversary adversary(inner, {CrashAdversary::CrashPoint{1, 2}});
  const auto violation = run_one(
      [](ScheduleDriver& driver) {
        Runtime rt;
        RegisterArray<> regs(2, kBottom);
        History history;
        history.set_sink(thread_default_observer());
        for (int p = 0; p < 2; ++p) {
          rt.add_process([&, p](Context& ctx) {
            const auto h = history.invoke(p, {p});
            for (int i = 0; i < 4; ++i) {
              regs[p].write(ctx, i);
            }
            history.respond(h, {p});
          });
        }
        rt.run(driver);
      },
      adversary, &writer);
  EXPECT_FALSE(violation.has_value());

  const ParsedTrace parsed = parse_trace_jsonl(sink.str());
  ASSERT_EQ(parsed.crash_events.size(), 1u);
  EXPECT_EQ(parsed.crash_events[0].pid, 1);
  // The recorded step is the kernel's global counter at the crash; the
  // victim had taken 2 of the steps granted by then.
  EXPECT_GE(parsed.crash_events[0].step, 2);
  EXPECT_EQ(parsed.crashes, 1);

  // The recovered crash marks feed straight into the space-time diagram:
  // the crashed lane is annotated even though its operation never responded.
  TraceVizOptions viz;
  for (const CrashEvent& c : parsed.crash_events) {
    viz.crashes.emplace_back(c.pid, c.step);
  }
  const std::string diagram = render_history(parsed.history, viz);
  EXPECT_NE(diagram.find("X crashed@"), std::string::npos) << diagram;
}

TEST(CrashExploration, StuckEventsRoundTripThroughJsonl) {
  std::ostringstream sink;
  JsonlTraceWriter writer(sink);
  Explorer::Options opts;
  opts.step_quota = 12;
  opts.max_executions = 5;
  opts.observer = &writer;
  const auto result = Explorer::explore(livelock_body(), opts);
  EXPECT_EQ(result.stuck_executions, 5);
  const ParsedTrace parsed = parse_trace_jsonl(sink.str());
  ASSERT_EQ(parsed.stuck.size(), 5u);
  EXPECT_NE(parsed.stuck.front().find("step quota (12) exceeded"),
            std::string::npos);
}

}  // namespace
}  // namespace subc
