// Differential testing: every atomic object whose behaviour is also encoded
// as a sequential spec (or by a second implementation) is driven with the
// same operation sequences through both and must answer identically.
// Catches drift between the objects, the checker specs, and the derived
// implementations.
#include <gtest/gtest.h>

#include <random>

#include "subc/algorithms/snapshot_impl.hpp"
#include "subc/algorithms/wrn_from_sse.hpp"
#include "subc/objects/snapshot.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

TEST(Differential, OneShotWrnObjectMatchesItsSpecSequentially) {
  // Random legal one-shot sequences: atomic object vs spec replay.
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const int k = 3 + static_cast<int>(rng() % 4);
    std::vector<int> indices;
    for (int i = 0; i < k; ++i) {
      indices.push_back(i);
    }
    std::shuffle(indices.begin(), indices.end(), rng);
    const int ops = 1 + static_cast<int>(rng() % k);

    const OneShotWrnSpec spec{k};
    auto spec_state = spec.initial();

    Runtime rt;
    OneShotWrnObject object(k);
    rt.add_process([&](Context& ctx) {
      for (int o = 0; o < ops; ++o) {
        const int index = indices[static_cast<std::size_t>(o)];
        const Value v = 1000 + index;
        const Value got = object.wrn(ctx, index, v);
        std::vector<Value> expected;
        ASSERT_TRUE(spec.apply(spec_state, {index, v}, expected));
        ASSERT_EQ(got, expected[0]) << "k=" << k << " op " << o;
      }
    });
    RoundRobinDriver driver;
    rt.run(driver);
  }
}

TEST(Differential, WrnFromSseMatchesAtomicObjectSequentially) {
  // Sequential (solo) runs: Algorithm 5's derived object must return
  // byte-identical answers to the atomic 1sWRN for every one-shot
  // permutation of k = 3 and k = 4.
  for (const int k : {3, 4}) {
    std::vector<int> permutation;
    for (int i = 0; i < k; ++i) {
      permutation.push_back(i);
    }
    do {
      Runtime rt;
      OneShotWrnObject atomic(k);
      WrnFromSse derived(k);
      rt.add_process([&](Context& ctx) {
        for (const int index : permutation) {
          const Value v = 100 + index;
          ASSERT_EQ(derived.one_shot_wrn(ctx, index, v),
                    atomic.wrn(ctx, index, v))
              << "k=" << k << " at index " << index;
        }
      });
      RoundRobinDriver driver;
      rt.run(driver);
    } while (std::next_permutation(permutation.begin(), permutation.end()));
  }
}

TEST(Differential, RegisterSnapshotMatchesAtomicSnapshotSequentially) {
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const int size = 2 + static_cast<int>(rng() % 4);
    std::vector<std::pair<int, Value>> updates;
    const int ops = 1 + static_cast<int>(rng() % 8);
    for (int o = 0; o < ops; ++o) {
      updates.emplace_back(static_cast<int>(rng() % size),
                           static_cast<Value>(rng() % 50));
    }
    Runtime rt;
    AtomicSnapshot<> atomic(size, kBottom);
    SnapshotFromRegisters<> built(size, kBottom);
    rt.add_process([&](Context& ctx) {
      for (const auto& [cell, v] : updates) {
        atomic.update(ctx, cell, v);
        built.update(ctx, cell, v);
        ASSERT_EQ(atomic.scan(ctx), built.scan(ctx));
      }
    });
    RoundRobinDriver driver;
    rt.run(driver);
  }
}

TEST(Differential, MultiShotWrnAgainstDirectArraySimulation) {
  // WrnObject vs a direct reference evaluation of Algorithm 1 over random
  // multi-shot sequences.
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const int k = 2 + static_cast<int>(rng() % 6);
    Runtime rt;
    WrnObject object(k);
    std::vector<Value> reference(static_cast<std::size_t>(k), kBottom);
    const int ops = 1 + static_cast<int>(rng() % 20);
    std::vector<std::pair<int, Value>> sequence;
    for (int o = 0; o < ops; ++o) {
      sequence.emplace_back(static_cast<int>(rng() % k),
                            static_cast<Value>(1 + rng() % 9));
    }
    rt.add_process([&](Context& ctx) {
      for (const auto& [index, v] : sequence) {
        const Value got = object.wrn(ctx, index, v);
        reference[static_cast<std::size_t>(index)] = v;
        const Value expected =
            reference[static_cast<std::size_t>((index + 1) % k)];
        ASSERT_EQ(got, expected);
      }
    });
    RoundRobinDriver driver;
    rt.run(driver);
  }
}

}  // namespace
}  // namespace subc
