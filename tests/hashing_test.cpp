// Tests for runtime/hashing.hpp: pinned mix64 / fnv1a64 values (the salts
// and mixers feed the stateful explorer's visited set and the checker's
// hashed memo — a silent drift would un-pin serial cut counts across the
// repo), an avalanche smoke check, and the concurrent open-addressing
// VisitedSet, including a collision-forcing probe walk mirroring
// linearizability_memo_test's approach of attacking the memo where keys
// alias.
#include "subc/runtime/hashing.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

namespace subc {
namespace {

TEST(Hashing, Mix64PinnedValues) {
  // splitmix64 finalizer — reference values. These are load-bearing: every
  // recorded fingerprint (and thus every pinned stateful cut count) folds
  // through mix64.
  EXPECT_EQ(detail::mix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(detail::mix64(1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(detail::mix64(42), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(detail::mix64(~0ULL), 0xe4d971771b652c20ULL);
}

TEST(Hashing, Fnv1a64PinnedValues) {
  EXPECT_EQ(detail::fnv1a64(""), 0xcbf29ce484222325ULL);  // offset basis
  EXPECT_EQ(detail::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(detail::fnv1a64("wrn"), 0x5e6ddb194846bb26ULL);
}

TEST(Hashing, FpOfPinnedValues) {
  EXPECT_EQ(detail::fp_of(std::int64_t{7}), 0x63cbe1e459320dd7ULL);
  EXPECT_EQ(detail::fp_of(std::int64_t{-1}), 0xe4d971771b652c20ULL);
  EXPECT_EQ(detail::fp_of(std::vector<std::int64_t>{1, 2, 3}),
            0xac353cecc6b8f974ULL);
  // Empty vector folds nothing: the seed constant comes straight through.
  EXPECT_EQ(detail::fp_of(std::vector<std::int64_t>{}),
            0x6a09e667f3bcc909ULL);
}

TEST(Hashing, FpOfVectorIsOrderAndLengthSensitive) {
  using V = std::vector<std::int64_t>;
  EXPECT_NE(detail::fp_of(V{1, 2}), detail::fp_of(V{2, 1}));
  EXPECT_NE(detail::fp_of(V{1}), detail::fp_of(V{1, 0}));
}

TEST(Hashing, Mix64AvalancheSmoke) {
  // Flipping any single input bit should flip roughly half the output bits.
  // This is a smoke check, not a statistical test: require every single-bit
  // flip to change at least 16 and at most 48 of the 64 output bits across
  // a handful of base points.
  for (const std::uint64_t base :
       {0ULL, 1ULL, 0x123456789abcdef0ULL, ~0ULL}) {
    const std::uint64_t h0 = detail::mix64(base);
    for (int bit = 0; bit < 64; ++bit) {
      const std::uint64_t h1 = detail::mix64(base ^ (1ULL << bit));
      const int flipped = std::popcount(h0 ^ h1);
      EXPECT_GE(flipped, 16) << "base=" << base << " bit=" << bit;
      EXPECT_LE(flipped, 48) << "base=" << base << " bit=" << bit;
    }
  }
}

TEST(Hashing, SaltsAreDistinct) {
  const std::uint64_t salts[] = {
      detail::kFpProcSalt,   detail::kFpStepSalt,  detail::kFpObserveSalt,
      detail::kFpObjectSalt, detail::kFpChooseSalt, detail::kFpDecideSalt,
      detail::kFpDoneSalt,   detail::kFpHungSalt,  detail::kFpCrashSalt,
      detail::kFpSleepSalt,  detail::kFpRunSalt,   detail::kFpInstanceSalt,
      detail::kFpRequestSalt, detail::kFpRecoverSalt};
  for (std::size_t i = 0; i < std::size(salts); ++i) {
    for (std::size_t j = i + 1; j < std::size(salts); ++j) {
      EXPECT_NE(salts[i], salts[j]) << i << " vs " << j;
    }
  }
}

TEST(Hashing, RequestDomainMirrorsInstanceDomain) {
  // Same shape as fp_instance_domain, different salt: the dedup-memo keys
  // of the sharded service can never alias instance-domain terms.
  EXPECT_EQ(detail::fp_request_domain(7),
            detail::mix64(7ULL ^ detail::kFpRequestSalt));
  EXPECT_NE(detail::fp_request_domain(7), detail::fp_instance_domain(7));
  EXPECT_NE(detail::fp_request_domain(7), detail::fp_request_domain(8));
}

TEST(VisitedSet, InsertThenHit) {
  detail::VisitedSet set(1024);
  EXPECT_FALSE(set.check_and_insert(0xdeadbeefULL));
  EXPECT_TRUE(set.check_and_insert(0xdeadbeefULL));
  EXPECT_EQ(set.size(), 1);
  EXPECT_EQ(set.hits(), 1);
}

TEST(VisitedSet, ZeroKeyIsRemappedNotSentinel) {
  // Key 0 is the empty-slot sentinel internally; inserting it must still
  // work (remapped to 1) — and must collide with an explicit key 1, which
  // is the documented aliasing of the remap, not a bug.
  detail::VisitedSet set(64);
  EXPECT_FALSE(set.check_and_insert(0));
  EXPECT_TRUE(set.check_and_insert(0));
  EXPECT_TRUE(set.check_and_insert(1));  // aliases remapped 0
}

TEST(VisitedSet, CollisionChainProbesLinearly) {
  // Collision-forcing: keys congruent modulo the slot count all land on the
  // same home slot, so each insert walks the chain the previous ones built.
  // Every key must still be found afterwards (linear probing never loses an
  // inserted key), and distinct colliding keys must not alias each other.
  detail::VisitedSet set(64);
  const std::size_t stride = set.slot_count();
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 1; i <= 16; ++i) {
    keys.push_back(7 + i * stride);  // same home slot: 7
  }
  for (const std::uint64_t k : keys) {
    EXPECT_FALSE(set.check_and_insert(k)) << k;
  }
  EXPECT_EQ(set.size(), static_cast<std::int64_t>(keys.size()));
  for (const std::uint64_t k : keys) {
    EXPECT_TRUE(set.check_and_insert(k)) << k;
  }
  // A fresh key on the same chain is still "not seen".
  EXPECT_FALSE(set.check_and_insert(7 + 17 * stride));
}

TEST(VisitedSet, SaturationStopsInsertingButStaysSound) {
  // Tiny capacity: the load limit trips well before the slot array fills.
  // Saturated probes must report "not seen" (the explorer then takes no cut
  // — sound) and must not grow the set.
  detail::VisitedSet set(8);
  std::uint64_t key = 1;
  while (!set.saturated()) {
    set.check_and_insert(key++);
  }
  const std::int64_t size_at_saturation = set.size();
  for (std::uint64_t k = 1000; k < 1100; ++k) {
    EXPECT_FALSE(set.check_and_insert(k));
  }
  EXPECT_EQ(set.size(), size_at_saturation);
  // Keys inserted before saturation are still hits.
  EXPECT_TRUE(set.check_and_insert(1));
}

TEST(VisitedSet, ConcurrentInsertsOfSameKeyHaveExactlyOneWinner) {
  // The soundness-critical property for the parallel explorer: two
  // executions racing to record the same state must not BOTH see "already
  // visited" (both would cut and the state's subtree would never be
  // explored). Exactly one thread per key may lose (= get true) only if
  // another already won.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 512;
  detail::VisitedSet set(4096);
  std::vector<std::vector<bool>> seen(kThreads,
                                      std::vector<bool>(kKeys, false));
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        seen[static_cast<std::size_t>(t)][k] =
            set.check_and_insert(detail::mix64(k));
      }
    });
  }
  for (std::thread& th : pool) {
    th.join();
  }
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    int winners = 0;
    for (int t = 0; t < kThreads; ++t) {
      if (!seen[static_cast<std::size_t>(t)][k]) {
        ++winners;
      }
    }
    EXPECT_EQ(winners, 1) << "key " << k;
  }
  EXPECT_EQ(set.size(), static_cast<std::int64_t>(kKeys));
}

}  // namespace
}  // namespace subc
