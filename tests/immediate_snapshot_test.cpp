// Tests for the one-shot immediate snapshot (participating set): the three
// defining properties checked exhaustively for small n, plus the derived
// self-electing election.
#include "subc/algorithms/immediate_snapshot.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "subc/core/tasks.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

using Member = ImmediateSnapshot::Member;

std::vector<int> slots_of(const std::vector<Member>& view) {
  std::vector<int> slots;
  for (const Member& m : view) {
    slots.push_back(m.slot);
  }
  std::sort(slots.begin(), slots.end());
  return slots;
}

bool subset(const std::vector<int>& a, const std::vector<int>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

void check_is_properties(const std::vector<std::vector<Member>>& views) {
  const int n = static_cast<int>(views.size());
  std::vector<std::vector<int>> sets;
  for (const auto& view : views) {
    sets.push_back(slots_of(view));
  }
  for (int i = 0; i < n; ++i) {
    if (sets[static_cast<std::size_t>(i)].empty()) {
      continue;  // did not participate / still running
    }
    // Self-inclusion.
    if (!std::binary_search(sets[static_cast<std::size_t>(i)].begin(),
                            sets[static_cast<std::size_t>(i)].end(), i)) {
      throw SpecViolation("self-inclusion violated for " + std::to_string(i));
    }
    for (int j = 0; j < n; ++j) {
      if (i == j || sets[static_cast<std::size_t>(j)].empty()) {
        continue;
      }
      // Containment: comparable views.
      const auto& si = sets[static_cast<std::size_t>(i)];
      const auto& sj = sets[static_cast<std::size_t>(j)];
      if (!subset(si, sj) && !subset(sj, si)) {
        throw SpecViolation("containment violated between " +
                            std::to_string(i) + " and " + std::to_string(j));
      }
      // Immediacy: j ∈ S_i ⇒ S_j ⊆ S_i.
      if (std::binary_search(si.begin(), si.end(), j) && !subset(sj, si)) {
        throw SpecViolation("immediacy violated: " + std::to_string(j) +
                            " in view of " + std::to_string(i));
      }
    }
  }
}

class ImmediateSnapshotSweep : public ::testing::TestWithParam<int> {};

TEST_P(ImmediateSnapshotSweep, ThreePropertiesHoldOnEverySchedule) {
  const int n = GetParam();
  const ExecutionBody body = [n](ScheduleDriver& driver) {
    Runtime rt;
    ImmediateSnapshot is(n);
    std::vector<std::vector<Member>> views(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      rt.add_process([&, p](Context& ctx) {
        views[static_cast<std::size_t>(p)] =
            is.participate(ctx, p, 100 + p);
      });
    }
    rt.run(driver);
    check_is_properties(views);
    // Views carry the announced values.
    for (int p = 0; p < n; ++p) {
      for (const Member& m : views[static_cast<std::size_t>(p)]) {
        if (m.value != 100 + m.slot) {
          throw SpecViolation("view carries a wrong value");
        }
      }
    }
  };
  if (n <= 3) {
    const auto result =
        Explorer::explore(body, Explorer::Options{.max_executions = 400'000});
    EXPECT_TRUE(result.ok()) << *result.violation;
    if (n <= 2) {
      EXPECT_TRUE(result.complete);
    }
  } else {
    const auto result = RandomSweep::run(body, 2000);
    EXPECT_TRUE(result.ok()) << *result.violation;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ImmediateSnapshotSweep,
                         ::testing::Values(1, 2, 3, 4, 6));

TEST(ImmediateSnapshot, SoloParticipantSeesOnlyItself) {
  Runtime rt;
  ImmediateSnapshot is(4);
  std::vector<Member> view;
  rt.add_process([&](Context& ctx) { view = is.participate(ctx, 2, 7); });
  RoundRobinDriver driver;
  rt.run(driver);
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0], (Member{2, 7}));
}

TEST(ImmediateSnapshot, SequentialParticipantsSeeGrowingViews) {
  Runtime rt;
  ImmediateSnapshot is(3);
  std::vector<std::size_t> sizes;
  for (int p = 0; p < 3; ++p) {
    rt.add_process([&, p](Context& ctx) {
      sizes.push_back(is.participate(ctx, p, 10 + p).size());
    });
  }
  // Strictly sequential: each finishes before the next starts.
  std::vector<int> script;
  for (int p = 0; p < 3; ++p) {
    for (int s = 0; s < 40; ++s) {
      script.push_back(p);
    }
  }
  ScriptedDriver driver(script);
  rt.run(driver);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(ImmediateSnapshot, SimultaneousBlockSeesEverybody) {
  // Fully lock-step round-robin: all n descend together and land at level
  // n together — everyone's view is everybody.
  const int n = 3;
  Runtime rt;
  ImmediateSnapshot is(n);
  std::vector<std::vector<Member>> views(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    rt.add_process([&, p](Context& ctx) {
      views[static_cast<std::size_t>(p)] = is.participate(ctx, p, p + 1);
    });
  }
  RoundRobinDriver driver;
  rt.run(driver);
  for (int p = 0; p < n; ++p) {
    EXPECT_EQ(views[static_cast<std::size_t>(p)].size(),
              static_cast<std::size_t>(n));
  }
}

TEST(ImmediateSnapshot, ParameterValidation) {
  EXPECT_THROW(ImmediateSnapshot(0), SimError);
  Runtime rt;
  ImmediateSnapshot is(2);
  rt.add_process([&](Context& ctx) {
    EXPECT_THROW(is.participate(ctx, 2, 1), SimError);
    EXPECT_THROW(is.participate(ctx, 0, kBottom), SimError);
  });
  RoundRobinDriver driver;
  rt.run(driver);
}

class SelfElectionSweep : public ::testing::TestWithParam<int> {};

TEST_P(SelfElectionSweep, ElectionIsValidAndSelfElecting) {
  // The [9] mechanism: min-of-view election satisfies validity and
  // self-election on every schedule.
  const int n = GetParam();
  const ExecutionBody body = [n](ScheduleDriver& driver) {
    Runtime rt;
    SelfElectingElection election(n);
    std::vector<int> participants;
    for (int p = 0; p < n; ++p) {
      participants.push_back(p);
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(static_cast<Value>(election.elect(ctx, p)));
      });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_election_validity(run.decisions, participants);
    check_self_election(run.decisions);
  };
  if (n <= 3) {
    const auto result =
        Explorer::explore(body, Explorer::Options{.max_executions = 400'000});
    EXPECT_TRUE(result.ok()) << *result.violation;
  } else {
    const auto result = RandomSweep::run(body, 1500);
    EXPECT_TRUE(result.ok()) << *result.violation;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SelfElectionSweep,
                         ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace subc
