// Soundness fixture for the sleep-set partial-order reduction: on a zoo of
// small worlds (registers, GAC/O_{n,k} instances, WRN objects, classic
// consensus constructions) the reduced search must reach the same verdict as
// the raw enumeration, explore no more executions, and report bit-identical
// Result fields at every thread count for a fixed reduction setting.
// Seeded violations — reachable only through specific interleavings of
// dependent steps — must still be caught with reduction on.
#include <gtest/gtest.h>

#include <array>

#include "subc/algorithms/classic_consensus.hpp"
#include "subc/core/tasks.hpp"
#include "subc/objects/onk.hpp"
#include "subc/objects/register.hpp"
#include "subc/objects/swap.hpp"
#include "subc/objects/wrn.hpp"
#include "subc/runtime/explorer.hpp"

namespace subc {
namespace {

/// The four cells of the soundness matrix: {none, sleep_sets} × {1, 4}.
struct Matrix {
  Explorer::Result none_serial;
  Explorer::Result none_parallel;
  Explorer::Result sleep_serial;
  Explorer::Result sleep_parallel;
};

Matrix run_matrix(const ExecutionBody& body,
                  std::int64_t budget = 2'000'000) {
  const auto cell = [&](Reduction reduction, int threads) {
    Explorer::Options opts;
    opts.max_executions = budget;
    opts.reduction = reduction;
    opts.threads = threads;
    return Explorer::explore(body, opts);
  };
  Matrix m;
  m.none_serial = cell(Reduction::kNone, 1);
  m.none_parallel = cell(Reduction::kNone, 4);
  m.sleep_serial = cell(Reduction::kSleepSets, 1);
  m.sleep_parallel = cell(Reduction::kSleepSets, 4);
  return m;
}

/// Every Result field must match bit-for-bit (the cross-thread determinism
/// guarantee at a fixed reduction setting).
void expect_bit_identical(const Explorer::Result& a,
                          const Explorer::Result& b) {
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.pruned_subtrees, b.pruned_subtrees);
  EXPECT_EQ(a.reduced_subtrees, b.reduced_subtrees);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.violation, b.violation);
  ASSERT_EQ(a.violating_trace.size(), b.violating_trace.size());
  for (std::size_t i = 0; i < a.violating_trace.size(); ++i) {
    EXPECT_EQ(a.violating_trace[i].chosen, b.violating_trace[i].chosen);
    EXPECT_EQ(a.violating_trace[i].arity, b.violating_trace[i].arity);
    EXPECT_EQ(a.violating_trace[i].enabled, b.violating_trace[i].enabled);
    EXPECT_EQ(a.violating_trace[i].sleep, b.violating_trace[i].sleep);
  }
}

/// The core soundness contract: identical verdict across reduction settings,
/// reduction never explores more, both settings thread-count-deterministic.
void expect_sound(const Matrix& m) {
  expect_bit_identical(m.none_serial, m.none_parallel);
  expect_bit_identical(m.sleep_serial, m.sleep_parallel);
  EXPECT_EQ(m.none_serial.ok(), m.sleep_serial.ok());
  EXPECT_EQ(m.none_serial.complete, m.sleep_serial.complete);
  EXPECT_LE(m.sleep_serial.executions, m.none_serial.executions);
}

TEST(ReductionSoundness, RegisterWorldPassesAndShrinks) {
  // 3 processes over 3 registers: write own cell, read the next one. Reads
  // of distinct cells commute, so sleep sets must shrink the tree strictly
  // while the read-your-neighbor validity property keeps passing.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(3, kBottom);
    std::array<Value, 3> seen{kBottom, kBottom, kBottom};
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        regs[p].write(ctx, 10 + p);
        seen[static_cast<std::size_t>(p)] = regs[(p + 1) % 3].read(ctx);
      });
    }
    rt.run(driver);
    for (int p = 0; p < 3; ++p) {
      const Value v = seen[static_cast<std::size_t>(p)];
      if (v != kBottom && v != 10 + (p + 1) % 3) {
        throw SpecViolation("read a value nobody wrote to that cell");
      }
    }
  };
  const Matrix m = run_matrix(body);
  expect_sound(m);
  EXPECT_TRUE(m.none_serial.ok()) << *m.none_serial.violation;
  EXPECT_TRUE(m.none_serial.complete);
  EXPECT_LT(m.sleep_serial.executions, m.none_serial.executions);
  EXPECT_GT(m.sleep_serial.reduced_subtrees, 0);
  EXPECT_EQ(m.none_serial.reduced_subtrees, 0);
}

TEST(ReductionSoundness, GacWorldKeepsAgreementVerdict) {
  // An onk_test instance: GAC(1,1) at full occupancy (m = 3) must emit at
  // most 2 distinct outputs, all proposals — exhaustively, both reduced and
  // raw. The GAC propose is an RMW on one object, so every pair of proposes
  // conflicts and reduction comes only from the decide/bookkeeping steps.
  const std::vector<Value> inputs{200, 201, 202};
  const ExecutionBody body = [&](ScheduleDriver& driver) {
    Runtime rt;
    GacObject gac(1, 1);
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(gac.propose(ctx, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_set_consensus(run, inputs, 2);
  };
  const Matrix m = run_matrix(body);
  expect_sound(m);
  EXPECT_TRUE(m.none_serial.ok()) << *m.none_serial.violation;
  EXPECT_TRUE(m.none_serial.complete);
}

TEST(ReductionSoundness, WrnWorldKeepsValidityVerdict) {
  // A wrn_object_test instance: 3 processes use 1sWRN_3 once each with
  // distinct indices; every output is ⊥ or some proposed value.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    OneShotWrnObject wrn(3);
    std::array<Value, 3> got{kBottom, kBottom, kBottom};
    for (int p = 0; p < 3; ++p) {
      rt.add_process([&, p](Context& ctx) {
        got[static_cast<std::size_t>(p)] = wrn.wrn(ctx, p, 10 + p);
      });
    }
    rt.run(driver);
    for (const Value v : got) {
      if (v != kBottom && (v < 10 || v > 12)) {
        throw SpecViolation("1sWRN returned a never-written value");
      }
    }
  };
  const Matrix m = run_matrix(body);
  expect_sound(m);
  EXPECT_TRUE(m.none_serial.ok()) << *m.none_serial.violation;
  EXPECT_TRUE(m.none_serial.complete);
}

TEST(ReductionSoundness, ClassicConsensusWorldKeepsVerdict) {
  // A classic_consensus_test instance: 2-consensus from swap. Agreement and
  // validity hold on every schedule, reduced or not.
  const std::vector<Value> inputs{3, 9};
  const ExecutionBody body = [&](ScheduleDriver& driver) {
    Runtime rt;
    TwoConsensusShared shared;
    SwapRegister swap(kBottom);
    for (int p = 0; p < 2; ++p) {
      rt.add_process([&, p](Context& ctx) {
        ctx.decide(consensus2_from_swap(
            ctx, shared, swap, p, inputs[static_cast<std::size_t>(p)]));
      });
    }
    const auto run = rt.run(driver);
    check_all_done_and_decided(run);
    check_validity(inputs, run.decisions);
    check_agreement(run.decisions);
  };
  const Matrix m = run_matrix(body);
  expect_sound(m);
  EXPECT_TRUE(m.none_serial.ok()) << *m.none_serial.violation;
  EXPECT_TRUE(m.none_serial.complete);
}

TEST(ReductionSoundness, SeededRaceViolationStillCaught) {
  // A seeded bug reachable only through one interleaving of *dependent*
  // steps: p1's write lands between p0's write and read. The two writes and
  // the read all touch the same register, so no sleep set may skip the
  // schedule that exposes it.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    Register<> reg(kBottom);
    rt.add_process([&](Context& ctx) {
      reg.write(ctx, 1);
      if (reg.read(ctx) == 2) {
        throw SpecViolation("lost update: overwritten between write and read");
      }
    });
    rt.add_process([&](Context& ctx) { reg.write(ctx, 2); });
    rt.run(driver);
  };
  const Matrix m = run_matrix(body);
  expect_sound(m);
  EXPECT_FALSE(m.none_serial.ok());
  EXPECT_FALSE(m.sleep_serial.ok());
  EXPECT_EQ(*m.sleep_serial.violation,
            "lost update: overwritten between write and read");
}

TEST(ReductionSoundness, SeededViolationBehindCommutingNoiseStillCaught) {
  // The violating schedule sits *past* commuting steps the reduction is
  // free to reorder: two noise processes touch private registers (fully
  // independent), then the dependent race from the previous test must still
  // be reached in some representative interleaving.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> noise(2, kBottom);
    Register<> reg(kBottom);
    rt.add_process([&](Context& ctx) {
      noise[0].write(ctx, 7);
      reg.write(ctx, 1);
      if (reg.read(ctx) == 2) {
        throw SpecViolation("race behind noise");
      }
    });
    rt.add_process([&](Context& ctx) {
      noise[1].write(ctx, 8);
      reg.write(ctx, 2);
    });
    rt.run(driver);
  };
  const Matrix m = run_matrix(body);
  expect_sound(m);
  EXPECT_FALSE(m.sleep_serial.ok());
  EXPECT_EQ(*m.sleep_serial.violation, "race behind noise");
  EXPECT_GT(m.sleep_serial.reduced_subtrees, 0);
}

TEST(ReductionSoundness, ChooseDecisionsComposeWithReduction) {
  // Object nondeterminism (driver.choose via ctx.choose) interleaved with
  // commuting register steps: choose decision points carry no footprint and
  // must never be skipped, while the register noise still reduces.
  const ExecutionBody body = [](ScheduleDriver& driver) {
    Runtime rt;
    RegisterArray<> regs(2, kBottom);
    std::array<std::uint32_t, 2> picks{0, 0};
    for (int p = 0; p < 2; ++p) {
      rt.add_process([&, p](Context& ctx) {
        regs[p].write(ctx, p);
        picks[static_cast<std::size_t>(p)] = ctx.choose(3);
      });
    }
    rt.run(driver);
    if (picks[0] >= 3 || picks[1] >= 3) {
      throw SpecViolation("choose out of range");
    }
  };
  const Matrix m = run_matrix(body);
  expect_sound(m);
  EXPECT_TRUE(m.none_serial.ok()) << *m.none_serial.violation;
  // Both choose arms must survive reduction: 3 × 3 choice combinations.
  EXPECT_GE(m.sleep_serial.executions, 9);
}

}  // namespace
}  // namespace subc
